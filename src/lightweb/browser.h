// The lightweb browser (paper §3.2).
//
// A minimal client that speaks ZLTP and renders LightScript pages:
//
//   1. Parse the requested path into (domain, rest).
//   2. Fetch the domain's code blob over the code channel — unless cached.
//      Code blobs change rarely, so the browser caches them aggressively
//      (LRU); a network observer learns only *when* the user first visits a
//      domain, not which one.
//   3. Run the code blob's route planner, then issue EXACTLY
//      fetches_per_page data-blob requests: the plan's real fetches first,
//      then dummy fetches at random indices. Every page view therefore has
//      an identical traffic signature.
//   4. Decrypt access-controlled blobs with the per-domain client keyring,
//      parse JSON, render the page, and extract links.
//
// The browser enforces domain separation on local storage and keyrings.
#pragma once

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include "lightweb/access.h"
#include "lightweb/channel.h"
#include "lightweb/lightscript.h"
#include "lightweb/local_storage.h"
#include "util/status.h"

namespace lw::lightweb {

struct BrowserConfig {
  // Must equal the universe's fixed budget; every Visit issues exactly this
  // many data-channel queries.
  int fetches_per_page = 5;
  std::size_t code_cache_capacity = 8;
};

struct RenderedPage {
  std::string full_path;   // "nytimes.com/world/africa"
  std::string domain;
  std::string site_name;
  std::string style;
  std::string text;        // rendered page body
  std::vector<PageLink> links;

  int real_fetches = 0;
  int dummy_fetches = 0;
  bool code_cache_hit = false;
  // Per-real-fetch status (OK, NOT_FOUND, PERMISSION_DENIED, ...): pages
  // render best-effort with nulls for failed blobs, like a browser showing
  // a page with a broken widget.
  std::vector<Status> fetch_status;
};

class Browser {
 public:
  Browser(std::unique_ptr<BlobChannel> code_channel,
          std::unique_ptr<BlobChannel> data_channel, BrowserConfig config);

  // Loads and renders a lightweb page.
  Result<RenderedPage> Visit(std::string_view path);

  // Performs a page load's worth of cover traffic (exactly
  // fetches_per_page dummy data queries) without rendering anything — on
  // the wire it is indistinguishable from Visit() of a cached-code domain.
  // Used by PacedBrowser to flatten the user's request timeline.
  Status DecoyPageLoad();

  // Per-domain client state (created on first use).
  LocalStorage& local_storage(std::string_view domain);
  ClientKeyring& keyring(std::string_view domain);

  // Drops a cached code blob (e.g. after a publisher update notice).
  void InvalidateCode(std::string_view domain);

  std::uint64_t code_cache_hits() const { return cache_hits_; }
  std::uint64_t code_cache_misses() const { return cache_misses_; }
  const BlobChannel& data_channel() const { return *data_channel_; }
  const BlobChannel& code_channel() const { return *code_channel_; }

 private:
  Result<const CodeProgram*> GetProgram(const std::string& domain,
                                        bool* cache_hit);

  BrowserConfig config_;
  std::unique_ptr<BlobChannel> code_channel_;
  std::unique_ptr<BlobChannel> data_channel_;

  // LRU cache of parsed code blobs.
  std::list<std::pair<std::string, CodeProgram>> cache_;  // front = newest
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;

  std::map<std::string, LocalStorage, std::less<>> local_;
  std::map<std::string, ClientKeyring, std::less<>> keyrings_;
};

}  // namespace lw::lightweb
