#include "lightweb/paced.h"

namespace lw::lightweb {

Result<std::optional<RenderedPage>> PacedBrowser::Tick() {
  if (queue_.empty()) {
    ++decoy_loads_;
    LW_RETURN_IF_ERROR(browser_.DecoyPageLoad());
    return std::optional<RenderedPage>();
  }
  const std::string path = std::move(queue_.front());
  queue_.pop_front();
  ++real_loads_;
  LW_ASSIGN_OR_RETURN(RenderedPage page, browser_.Visit(path));
  return std::optional<RenderedPage>(std::move(page));
}

}  // namespace lw::lightweb
