#include "lightweb/universe.h"

#include "crypto/hkdf.h"
#include "lightweb/lightscript.h"
#include "lightweb/path.h"
#include "util/rand.h"

namespace lw::lightweb {
namespace {

UniverseConfig Normalize(UniverseConfig config) {
  if (config.master_seed.empty()) {
    config.master_seed = SecureRandom(16);
  }
  return config;
}

zltp::PirStoreConfig StoreConfig(const UniverseConfig& u, bool code) {
  zltp::PirStoreConfig c;
  c.domain_bits = code ? u.code_domain_bits : u.data_domain_bits;
  c.record_size = code ? u.code_blob_size : u.data_blob_size;
  c.shard_top_bits = code ? 0 : u.data_shard_top_bits;
  c.keyword_seed = crypto::Hkdf(
      u.master_seed, /*salt=*/{},
      code ? "lightweb/code-universe" : "lightweb/data-universe", 16);
  return c;
}

}  // namespace

Universe::Universe(UniverseConfig config)
    : config_(Normalize(std::move(config))),
      code_store_(StoreConfig(config_, /*code=*/true)),
      data_store_(StoreConfig(config_, /*code=*/false)) {}

Status Universe::ClaimDomain(std::string_view domain,
                             std::string_view publisher_id) {
  if (!IsValidDomain(domain)) {
    return InvalidArgumentError("invalid domain '" + std::string(domain) +
                                "'");
  }
  if (publisher_id.empty()) {
    return InvalidArgumentError("publisher id must be non-empty");
  }
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = domain_owner_.find(domain);
  if (it != domain_owner_.end()) {
    if (it->second == publisher_id) return Status::Ok();
    return CollisionError("domain '" + std::string(domain) +
                          "' is owned by publisher '" + it->second + "'");
  }
  domain_owner_.emplace(std::string(domain), std::string(publisher_id));
  return Status::Ok();
}

Result<std::string> Universe::OwnerOf(std::string_view domain) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = domain_owner_.find(domain);
  if (it == domain_owner_.end()) return NotFoundError("domain unclaimed");
  return it->second;
}

Status Universe::CheckOwnership(std::string_view domain,
                                std::string_view publisher_id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = domain_owner_.find(domain);
  if (it == domain_owner_.end()) {
    return FailedPreconditionError("domain '" + std::string(domain) +
                                   "' not claimed; claim it first");
  }
  if (it->second != publisher_id) {
    return PermissionDeniedError("domain '" + std::string(domain) +
                                 "' belongs to publisher '" + it->second +
                                 "'");
  }
  return Status::Ok();
}

Status Universe::PushCode(std::string_view publisher_id,
                          std::string_view domain,
                          std::string_view code_blob_text) {
  return PushCodeInternal(publisher_id, domain, code_blob_text,
                          /*propagate=*/true);
}

Status Universe::PushCodeInternal(std::string_view publisher_id,
                                  std::string_view domain,
                                  std::string_view code_blob_text,
                                  bool propagate) {
  if (!IsValidDomain(domain)) {
    return InvalidArgumentError("invalid domain");
  }
  LW_RETURN_IF_ERROR(CheckOwnership(domain, publisher_id));

  // Validate the program before accepting it into the universe.
  auto program = CodeProgram::Parse(code_blob_text);
  if (!program.ok()) {
    return Status(program.status().code(),
                  "code blob rejected: " + program.status().message());
  }
  if (program->max_fetches() >
      static_cast<std::size_t>(config_.fetches_per_page)) {
    return FailedPreconditionError(
        "a route fetches " + std::to_string(program->max_fetches()) +
        " blobs but this universe's fixed budget is " +
        std::to_string(config_.fetches_per_page));
  }

  LW_RETURN_IF_ERROR(code_store_.Publish(domain, ToBytes(code_blob_text)));

  if (propagate) {
    std::vector<Universe*> peers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      peers = peers_;
    }
    for (Universe* peer : peers) {
      // Peered CDNs agree on domain ownership (§3.5): claim on behalf of
      // the same publisher, then push without further propagation.
      (void)peer->ClaimDomain(domain, publisher_id);
      (void)peer->PushCodeInternal(publisher_id, domain, code_blob_text,
                                   /*propagate=*/false);
    }
  }
  return Status::Ok();
}

Status Universe::PushData(std::string_view publisher_id,
                          std::string_view path, ByteSpan payload) {
  return PushDataInternal(publisher_id, path, payload, /*propagate=*/true);
}

Status Universe::PushDataInternal(std::string_view publisher_id,
                                  std::string_view path, ByteSpan payload,
                                  bool propagate) {
  LW_ASSIGN_OR_RETURN(const ParsedPath parsed, ParsePath(path));
  LW_RETURN_IF_ERROR(CheckOwnership(parsed.domain, publisher_id));
  LW_RETURN_IF_ERROR(
      data_store_.Publish(JoinPath(parsed.domain, parsed.rest), payload));

  if (propagate) {
    std::vector<Universe*> peers;
    {
      std::lock_guard<std::mutex> lock(mu_);
      peers = peers_;
    }
    for (Universe* peer : peers) {
      (void)peer->ClaimDomain(parsed.domain, publisher_id);
      (void)peer->PushDataInternal(publisher_id, path, payload,
                                   /*propagate=*/false);
    }
  }
  return Status::Ok();
}

Status Universe::RemoveData(std::string_view publisher_id,
                            std::string_view path) {
  LW_ASSIGN_OR_RETURN(const ParsedPath parsed, ParsePath(path));
  LW_RETURN_IF_ERROR(CheckOwnership(parsed.domain, publisher_id));
  return data_store_.Unpublish(JoinPath(parsed.domain, parsed.rest));
}

void Universe::AddPeer(Universe& peer) {
  std::lock_guard<std::mutex> lock(mu_);
  peers_.push_back(&peer);
}

std::size_t Universe::total_domains() const {
  std::lock_guard<std::mutex> lock(mu_);
  return domain_owner_.size();
}

std::map<std::string, std::string> Universe::DomainOwners() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {domain_owner_.begin(), domain_owner_.end()};
}

}  // namespace lw::lightweb
