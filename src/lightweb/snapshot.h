// Universe snapshots: serialize a universe's complete content (ownership,
// code blobs, data blobs) to a single JSON document and restore it — the
// persistence story for a CDN restart, and the transfer format for seeding
// a new peer with an existing universe's catalogue (§3.5).
//
// Data blob payloads are base64-free: stored as hex (payloads may be
// AEAD ciphertext for access-controlled content, so raw JSON embedding is
// not possible).
#pragma once

#include <string>

#include "lightweb/universe.h"
#include "util/status.h"

namespace lw::lightweb {

// Serializes ownership + all blobs. The universe's PIR configuration is
// included so Load can refuse mismatched targets.
Result<std::string> SaveUniverseSnapshot(const Universe& universe);

// Restores a snapshot into an EMPTY universe whose configuration matches
// the snapshot's (fetch budget, blob sizes, domains). Domains are claimed
// for their recorded owners.
Status LoadUniverseSnapshot(Universe& universe, std::string_view snapshot);

// File convenience wrappers.
Status SaveUniverseSnapshotToFile(const Universe& universe,
                                  const std::string& path);
Status LoadUniverseSnapshotFromFile(Universe& universe,
                                    const std::string& path);

}  // namespace lw::lightweb
