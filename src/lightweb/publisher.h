// Publisher tooling: building code blobs and pushing content.
//
// Publishers "produce content as a single root code blob ... and a large
// number of data blobs" (paper §3.1). SiteBuilder assembles the LightScript
// code blob; Publisher owns an identity, a content keyring for
// access-controlled pages, and push helpers that register ownership and
// upload blobs to one or more universes.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "json/json.h"
#include "lightweb/access.h"
#include "lightweb/universe.h"
#include "util/status.h"

namespace lw::lightweb {

class SiteBuilder {
 public:
  explicit SiteBuilder(std::string domain);

  SiteBuilder& SetSiteName(std::string name);
  SiteBuilder& SetStyle(std::string style);

  // Adds a route; first match wins, so add specific routes before
  // catch-alls.
  SiteBuilder& AddRoute(std::string pattern,
                        std::vector<std::string> fetch_templates,
                        std::string render_template);

  const std::string& domain() const { return domain_; }

  // Serializes the code blob (canonical JSON).
  std::string BuildCodeBlob() const;

 private:
  std::string domain_;
  std::string site_name_;
  std::string style_ = "plain";
  json::Array routes_;
};

class Publisher {
 public:
  explicit Publisher(std::string id);

  const std::string& id() const { return id_; }
  PublisherKeyring& keyring() { return keyring_; }
  const PublisherKeyring& keyring() const { return keyring_; }

  // Claims the domain and pushes the site's code blob.
  Status PublishSite(Universe& universe, const SiteBuilder& site);

  // Publishes a public JSON data blob at `path`.
  Status PublishData(Universe& universe, std::string_view path,
                     const json::Value& data);

  // Publishes an access-controlled JSON data blob (encrypted under the
  // keyring's current epoch; only subscribed clients can read it).
  Status PublishProtectedData(Universe& universe, std::string_view path,
                              const json::Value& data);

  // Key material handed to a subscribing client for an epoch (out-of-band
  // in a real deployment — account signup happens outside lightweb).
  Bytes IssueClientKey(std::uint32_t epoch) const {
    return keyring_.EpochKey(epoch);
  }

 private:
  std::string id_;
  PublisherKeyring keyring_;
};

}  // namespace lw::lightweb
