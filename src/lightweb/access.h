// Access control for lightweb content (paper §3.3–3.4).
//
// Publishers who gate content (paywalls, members-only pages) publish
// AEAD-encrypted data blobs; the CDN stores only ciphertext and never learns
// per-user permissions. A subscribing client obtains the publisher's current
// epoch key out-of-band (account signup happens outside lightweb) and
// decrypts locally after the private-GET. Revocation = the publisher rotates
// to a new epoch and re-encrypts future content; clients with stale keys can
// still read old epochs they were subscribed for, but nothing new — exactly
// the paper's "periodically rotate keys in order to revoke users' access".
//
// Encrypted payload wire format:
//   "LWE1" magic || u32 epoch || 12-byte nonce || AEAD ciphertext
// with the blob's path as associated data (a ciphertext cannot be replayed
// under a different path).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/status.h"

namespace lw::lightweb {

// True if a payload looks like access-controlled content.
bool IsEncryptedPayload(ByteSpan payload);

// Publisher-side key management: master secret → per-epoch content keys.
class PublisherKeyring {
 public:
  // Fresh random master secret.
  PublisherKeyring();
  // Deterministic (for tests / key escrow).
  explicit PublisherKeyring(Bytes master_secret);

  std::uint32_t current_epoch() const { return epoch_; }

  // Rotates to the next epoch (revokes clients not re-issued keys).
  void RotateEpoch() { ++epoch_; }

  // The key a subscribed client receives for an epoch.
  Bytes EpochKey(std::uint32_t epoch) const;

  // Encrypts a payload for `path` under the current epoch.
  Bytes Encrypt(std::string_view path, ByteSpan plaintext) const;

 private:
  Bytes master_;
  std::uint32_t epoch_ = 1;
};

// Client-side keys for one publisher (domain).
class ClientKeyring {
 public:
  void AddEpochKey(std::uint32_t epoch, Bytes key) {
    keys_[epoch] = std::move(key);
  }
  bool HasEpoch(std::uint32_t epoch) const { return keys_.contains(epoch); }
  std::size_t size() const { return keys_.size(); }

  // Decrypts an encrypted payload fetched from `path`.
  // PERMISSION_DENIED if the client lacks the epoch key or the ciphertext
  // does not authenticate.
  Result<Bytes> Decrypt(std::string_view path, ByteSpan payload) const;

 private:
  std::map<std::uint32_t, Bytes> keys_;
};

}  // namespace lw::lightweb
