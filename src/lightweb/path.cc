#include "lightweb/path.h"

namespace lw::lightweb {
namespace {

bool IsLabelChar(char c) {
  return (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c == '-';
}

}  // namespace

bool IsValidDomain(std::string_view domain) {
  if (domain.empty() || domain.size() > 253) return false;
  int labels = 0;
  std::size_t start = 0;
  while (start <= domain.size()) {
    const std::size_t dot = domain.find('.', start);
    const std::string_view label =
        domain.substr(start, dot == std::string_view::npos
                                 ? domain.size() - start
                                 : dot - start);
    if (label.empty() || label.size() > 63) return false;
    if (label.front() == '-' || label.back() == '-') return false;
    for (char c : label) {
      if (!IsLabelChar(c)) return false;
    }
    ++labels;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return labels >= 2;
}

Result<ParsedPath> ParsePath(std::string_view path) {
  if (path.empty()) return InvalidArgumentError("empty path");
  // Tolerate a leading slash ("/nytimes.com/x" == "nytimes.com/x").
  if (path.front() == '/') path.remove_prefix(1);
  const std::size_t slash = path.find('/');
  ParsedPath out;
  out.domain = std::string(path.substr(0, slash));
  out.rest = slash == std::string_view::npos
                 ? "/"
                 : std::string(path.substr(slash));
  if (!IsValidDomain(out.domain)) {
    return InvalidArgumentError("invalid domain in path: '" + out.domain +
                                "'");
  }
  return out;
}

Result<std::vector<std::string>> SplitSegments(std::string_view rest) {
  std::vector<std::string> out;
  if (rest.empty() || rest == "/") return out;
  if (rest.front() == '/') rest.remove_prefix(1);
  if (!rest.empty() && rest.back() == '/') rest.remove_suffix(1);
  std::size_t start = 0;
  while (start <= rest.size()) {
    const std::size_t slash = rest.find('/', start);
    const std::string_view seg =
        rest.substr(start, slash == std::string_view::npos
                               ? rest.size() - start
                               : slash - start);
    if (seg.empty()) return InvalidArgumentError("empty path segment");
    if (seg == "." || seg == "..") {
      return InvalidArgumentError("path traversal segment rejected");
    }
    out.emplace_back(seg);
    if (slash == std::string_view::npos) break;
    start = slash + 1;
  }
  return out;
}

std::string JoinPath(std::string_view domain, std::string_view rest) {
  std::string out(domain);
  if (rest.empty()) {
    out.push_back('/');
  } else {
    if (rest.front() != '/') out.push_back('/');
    out.append(rest);
  }
  return out;
}

}  // namespace lw::lightweb
