#include "lightweb/snapshot.h"

#include "json/json.h"
#include "lightweb/path.h"
#include "util/file.h"
#include "util/hex.h"

namespace lw::lightweb {
namespace {

constexpr char kFormat[] = "lightweb-universe-v1";

}  // namespace

Result<std::string> SaveUniverseSnapshot(const Universe& universe) {
  json::Object root;
  root["format"] = kFormat;

  const UniverseConfig& config = universe.config();
  json::Object cfg;
  cfg["code_domain_bits"] = config.code_domain_bits;
  cfg["code_blob_size"] = static_cast<double>(config.code_blob_size);
  cfg["data_domain_bits"] = config.data_domain_bits;
  cfg["data_blob_size"] = static_cast<double>(config.data_blob_size);
  cfg["fetches_per_page"] = config.fetches_per_page;
  root["config"] = std::move(cfg);

  json::Object owners;
  for (const auto& [domain, owner] : universe.DomainOwners()) {
    owners[domain] = owner;
  }
  root["owners"] = std::move(owners);

  json::Object code;
  for (const std::string& domain : universe.code_store().Keys()) {
    LW_ASSIGN_OR_RETURN(const Bytes blob,
                        universe.code_store().DirectLookup(domain));
    code[domain] = ToString(blob);  // code blobs are JSON text
  }
  root["code"] = std::move(code);

  json::Object data;
  for (const std::string& path : universe.data_store().Keys()) {
    LW_ASSIGN_OR_RETURN(const Bytes payload,
                        universe.data_store().DirectLookup(path));
    data[path] = HexEncode(payload);  // payloads may be ciphertext
  }
  root["data"] = std::move(data);

  return json::Write(json::Value(std::move(root)));
}

Status LoadUniverseSnapshot(Universe& universe, std::string_view snapshot) {
  LW_ASSIGN_OR_RETURN(const json::Value doc, json::Parse(snapshot));
  if (doc.GetString("format") != kFormat) {
    return InvalidArgumentError("not a lightweb universe snapshot");
  }
  const UniverseConfig& config = universe.config();
  if (doc.GetNumber("config.data_blob_size") !=
          static_cast<double>(config.data_blob_size) ||
      doc.GetNumber("config.code_blob_size") !=
          static_cast<double>(config.code_blob_size) ||
      doc.GetNumber("config.data_domain_bits") != config.data_domain_bits ||
      doc.GetNumber("config.code_domain_bits") != config.code_domain_bits ||
      doc.GetNumber("config.fetches_per_page") != config.fetches_per_page) {
    return FailedPreconditionError(
        "target universe configuration does not match snapshot");
  }
  if (universe.total_pages() != 0 || universe.total_domains() != 0) {
    return FailedPreconditionError("target universe is not empty");
  }

  const json::Value* owners = doc.Find("owners");
  if (owners == nullptr || !owners->is_object()) {
    return InvalidArgumentError("snapshot missing owners");
  }
  for (const auto& [domain, owner] : owners->AsObject()) {
    if (!owner.is_string()) return InvalidArgumentError("bad owner entry");
    LW_RETURN_IF_ERROR(universe.ClaimDomain(domain, owner.AsString()));
  }

  if (const json::Value* code = doc.Find("code");
      code != nullptr && code->is_object()) {
    for (const auto& [domain, blob] : code->AsObject()) {
      if (!blob.is_string()) return InvalidArgumentError("bad code entry");
      LW_ASSIGN_OR_RETURN(const std::string owner,
                          universe.OwnerOf(domain));
      LW_RETURN_IF_ERROR(universe.PushCode(owner, domain, blob.AsString()));
    }
  }
  if (const json::Value* data = doc.Find("data");
      data != nullptr && data->is_object()) {
    for (const auto& [path, payload_hex] : data->AsObject()) {
      if (!payload_hex.is_string()) {
        return InvalidArgumentError("bad data entry");
      }
      LW_ASSIGN_OR_RETURN(const Bytes payload,
                          HexDecode(payload_hex.AsString()));
      LW_ASSIGN_OR_RETURN(const ParsedPath parsed, ParsePath(path));
      LW_ASSIGN_OR_RETURN(const std::string owner,
                          universe.OwnerOf(parsed.domain));
      LW_RETURN_IF_ERROR(universe.PushData(owner, path, payload));
    }
  }
  return Status::Ok();
}

Status SaveUniverseSnapshotToFile(const Universe& universe,
                                  const std::string& path) {
  LW_ASSIGN_OR_RETURN(const std::string snapshot,
                      SaveUniverseSnapshot(universe));
  return WriteFile(path, ToBytes(snapshot));
}

Status LoadUniverseSnapshotFromFile(Universe& universe,
                                    const std::string& path) {
  LW_ASSIGN_OR_RETURN(const std::string snapshot, ReadFileToString(path));
  return LoadUniverseSnapshot(universe, snapshot);
}

}  // namespace lw::lightweb
