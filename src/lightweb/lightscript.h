// LightScript: the lightweb code-blob language.
//
// The paper's code blobs contain "a blob of JavaScript code and style
// information" whose single job is: given the requested path (and local
// client state), issue a small fixed number of data-blob fetches and render
// the fetched JSON into a page (paper §3.1–3.2). This repo replaces the
// JavaScript engine with a declarative interpreter that performs exactly
// that contract (see DESIGN.md, substitutions):
//
//   {
//     "site": "The New York Times",
//     "style": "serif",
//     "routes": [
//       { "pattern": "/world/:region",
//         "fetch": ["nytimes.com/data/world/{region}.json"],
//         "render": "# {{site}}: {{region}}\n{{#each data0.headlines}}\n- [{{.title}}]({{.link}}){{/each}}" }
//     ]
//   }
//
// Route patterns are slash-separated segments: literals, ":name" captures
// (one segment), "*name" captures the remaining segments (last position
// only). The first matching route wins.
//
// Fetch templates substitute "{var}" with captures, "{local.key}" with
// client local storage (optional "{local.key|fallback}" default), plus
// "{domain}" and "{path}".
//
// Render templates support:
//   {{expr}}                   interpolation ("" for missing values)
//   {{#each expr}}...{{/each}} array iteration ({{.}} = element,
//                              {{.field.sub}} drill-down, {{@index}})
//   {{#if expr}}...{{/if}}     truthy section
//   {{^if expr}}...{{/if}}     falsy (inverted) section
// where expr resolves against: "." scope (inside #each), "dataN[.jsonpath]"
// (the N-th fetched blob, parsed as JSON), "local.key", "site", "domain",
// "path", "@index", or a capture name.
//
// Rendered pages are plain text; hyperlinks use "[label](target-path)",
// which the browser extracts for navigation.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "json/json.h"
#include "lightweb/local_storage.h"
#include "util/status.h"

namespace lw::lightweb {

// A planned page load: which route matched and the exact data-blob paths to
// fetch. The browser pads/truncates to the universe's fixed fetch budget.
struct PagePlan {
  std::size_t route_index = 0;
  std::map<std::string, std::string> captures;
  std::vector<std::string> fetch_paths;
};

namespace internal {
struct TemplateNode;  // parsed render-template AST
}

class CodeProgram {
 public:
  CodeProgram(CodeProgram&&) noexcept;
  CodeProgram& operator=(CodeProgram&&) noexcept;
  ~CodeProgram();

  // Parses and validates a code blob (JSON text). Every route's render
  // template is compiled here, so Render cannot fail on syntax later.
  static Result<CodeProgram> Parse(std::string_view code_blob_text);

  const std::string& site_name() const { return site_; }
  const std::string& style() const { return style_; }
  std::size_t route_count() const { return routes_.size(); }

  // Largest number of fetches any route performs. The universe's
  // fetches-per-page budget must be >= this for the site to work.
  std::size_t max_fetches() const;

  // Matches `rest` against the routes and builds the fetch list.
  // NOT_FOUND if no route matches.
  Result<PagePlan> Plan(std::string_view domain, std::string_view rest,
                        const LocalStorage& local) const;

  // Renders the page given the fetched data blobs (parsed JSON; a blob that
  // failed to fetch or parse should be passed as json::Value() null).
  Result<std::string> Render(const PagePlan& plan, std::string_view domain,
                             std::string_view rest, const LocalStorage& local,
                             const std::vector<json::Value>& data) const;

 private:
  struct Route {
    std::vector<std::string> pattern;  // segments; ":x" capture, "*x" tail
    std::vector<std::string> fetch_templates;
    std::unique_ptr<internal::TemplateNode> render;
  };

  CodeProgram();

  std::string site_;
  std::string style_;
  std::vector<Route> routes_;
};

// Extracts "[label](target)" links from rendered page text, in order.
struct PageLink {
  std::string label;
  std::string target;
  bool operator==(const PageLink&) const = default;
};
std::vector<PageLink> ExtractLinks(std::string_view rendered_text);

}  // namespace lw::lightweb
