// Constant-rate cover traffic (hardening against the paper's residual
// timing leakage).
//
// ZLTP hides WHICH pages are fetched, but "an attacker that controls the
// network can see when a client fetches a webpage and how many pages the
// client fetches" (§1), and §3.2 gives the example of inferring news
// reading from a page fetch every five minutes. PacedBrowser removes that
// channel: it performs exactly ONE page load per tick — the user's oldest
// queued navigation if any, otherwise a decoy load of dummy fetches. The
// observer sees a constant-rate Poisson-free drumbeat regardless of user
// behaviour; the cost is queueing latency and decoy bandwidth.
//
// Ticks are driven by the caller (a timer in a real client; tests call
// Tick() directly), keeping the class deterministic and clock-free.
#pragma once

#include <deque>
#include <optional>
#include <string>

#include "lightweb/browser.h"
#include "util/status.h"

namespace lw::lightweb {

class PacedBrowser {
 public:
  explicit PacedBrowser(Browser& browser) : browser_(browser) {}

  // Queues a user navigation; it will be executed by a future Tick().
  void Navigate(std::string path) { queue_.push_back(std::move(path)); }

  std::size_t pending() const { return queue_.size(); }
  std::uint64_t real_loads() const { return real_loads_; }
  std::uint64_t decoy_loads() const { return decoy_loads_; }

  // Executes one scheduled page load. Returns the rendered page when a
  // queued navigation ran, std::nullopt when this tick was a decoy.
  // A navigation that fails to render still consumed its tick (the traffic
  // happened); the error is returned.
  Result<std::optional<RenderedPage>> Tick();

 private:
  Browser& browser_;
  std::deque<std::string> queue_;
  std::uint64_t real_loads_ = 0;
  std::uint64_t decoy_loads_ = 0;
};

}  // namespace lw::lightweb
