#include "lightweb/channel.h"

#include "pir/keyword.h"
#include "pir/packing.h"
#include "pir/two_server.h"
#include "util/rand.h"

namespace lw::lightweb {

Result<std::vector<Result<Bytes>>> BlobChannel::FetchPage(
    const std::vector<std::string>& keys, int dummies) {
  std::vector<Result<Bytes>> out;
  out.reserve(keys.size());
  for (const std::string& key : keys) {
    out.push_back(PrivateGet(key));
  }
  for (int i = 0; i < dummies; ++i) {
    LW_RETURN_IF_ERROR(DummyGet());
  }
  return out;
}

// -------------------------------------------------- InProcessPirChannel

InProcessPirChannel::InProcessPirChannel(const zltp::PirStore& store)
    : store_(store) {}

Result<Bytes> InProcessPirChannel::GetIndex(std::uint64_t index,
                                            Bytes* out_record) {
  ++queries_;
  const pir::QueryKeys q = pir::MakeIndexQuery(index, store_.domain_bits());
  // Both logical servers answer (the second replica is the same store).
  LW_ASSIGN_OR_RETURN(const Bytes a0, store_.AnswerQuery(q.key0));
  LW_ASSIGN_OR_RETURN(const Bytes a1, store_.AnswerQuery(q.key1));
  LW_ASSIGN_OR_RETURN(*out_record, pir::CombineAnswers(a0, a1));
  return *out_record;
}

Result<Bytes> InProcessPirChannel::PrivateGet(std::string_view key) {
  const std::uint64_t index = store_.mapper().IndexOf(key);
  Bytes record;
  LW_RETURN_IF_ERROR(GetIndex(index, &record).status());
  LW_ASSIGN_OR_RETURN(const pir::UnpackedRecord un, pir::UnpackRecord(record));
  if (un.fingerprint == 0 && un.payload.empty()) {
    return NotFoundError("key not published in this universe");
  }
  if (un.fingerprint != store_.mapper().Fingerprint(key)) {
    return CollisionError("record belongs to a different key");
  }
  return un.payload;
}

Status InProcessPirChannel::DummyGet() {
  std::uint8_t buf[8];
  SecureRandomBytes(MutableByteSpan(buf, 8));
  const std::uint64_t index =
      LoadLE64(buf) & ((std::uint64_t{1} << store_.domain_bits()) - 1);
  Bytes record;
  auto r = GetIndex(index, &record);
  if (!r.ok()) return r.status();
  return Status::Ok();
}

std::size_t InProcessPirChannel::record_size() const {
  return store_.record_size();
}

// ---------------------------------------------------------- ZltpChannel

ZltpChannel::ZltpChannel(std::unique_ptr<zltp::Session> session)
    : session_(std::move(session)) {}

Result<Bytes> ZltpChannel::PrivateGet(std::string_view key) {
  return session_->PrivateGet(key);
}

Status ZltpChannel::DummyGet() { return session_->DummyGet(); }

std::size_t ZltpChannel::record_size() const {
  return session_->record_size();
}

std::uint64_t ZltpChannel::observed_queries() const {
  return session_->traffic().requests;
}

Result<std::vector<Result<Bytes>>> ZltpChannel::FetchPage(
    const std::vector<std::string>& keys, int dummies) {
  return session_->PrivateGetBatch(keys, dummies);
}

}  // namespace lw::lightweb
