#include "lightweb/access.h"

#include "crypto/aead.h"
#include "crypto/hkdf.h"
#include "util/rand.h"

namespace lw::lightweb {
namespace {

constexpr char kMagic[4] = {'L', 'W', 'E', '1'};
constexpr std::size_t kHeaderSize = 4 + 4 + crypto::kAeadNonceSize;

}  // namespace

bool IsEncryptedPayload(ByteSpan payload) {
  return payload.size() >= kHeaderSize &&
         std::equal(kMagic, kMagic + 4, payload.begin());
}

PublisherKeyring::PublisherKeyring() : master_(SecureRandom(32)) {}

PublisherKeyring::PublisherKeyring(Bytes master_secret)
    : master_(std::move(master_secret)) {}

Bytes PublisherKeyring::EpochKey(std::uint32_t epoch) const {
  return crypto::Hkdf(master_, /*salt=*/{},
                      "lightweb/content-epoch-" + std::to_string(epoch),
                      crypto::kAeadKeySize);
}

Bytes PublisherKeyring::Encrypt(std::string_view path,
                                ByteSpan plaintext) const {
  const Bytes key = EpochKey(epoch_);
  const Bytes nonce = SecureRandom(crypto::kAeadNonceSize);

  Bytes out(kMagic, kMagic + 4);
  out.resize(8);
  StoreLE32(out.data() + 4, epoch_);
  out.insert(out.end(), nonce.begin(), nonce.end());
  const Bytes ct = crypto::AeadSeal(key, nonce, ToBytes(path), plaintext);
  out.insert(out.end(), ct.begin(), ct.end());
  return out;
}

Result<Bytes> ClientKeyring::Decrypt(std::string_view path,
                                     ByteSpan payload) const {
  if (!IsEncryptedPayload(payload)) {
    return InvalidArgumentError("payload is not access-controlled content");
  }
  const std::uint32_t epoch = LoadLE32(payload.data() + 4);
  const auto it = keys_.find(epoch);
  if (it == keys_.end()) {
    return PermissionDeniedError(
        "no key for content epoch " + std::to_string(epoch) +
        " (subscription lapsed or never issued)");
  }
  const ByteSpan nonce = payload.subspan(8, crypto::kAeadNonceSize);
  return crypto::AeadOpen(it->second, nonce, ToBytes(path),
                          payload.subspan(kHeaderSize));
}

}  // namespace lw::lightweb
