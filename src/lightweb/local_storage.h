// Per-domain client-side storage.
//
// Lightweb keeps today's client-side niceties — "client-side interaction,
// local storage, and so on" (paper §3.2) — and the browser enforces domain
// separation exactly as today's web does. Dynamic content flows through
// here: weather.com's code blob reads the user's cached postal code to pick
// which per-postal-code data blob to fetch (paper §3.3), all without any
// server-side state.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <string_view>

namespace lw::lightweb {

class LocalStorage {
 public:
  void Set(std::string_view key, std::string_view value) {
    // Client-local map: the host never observes these accesses.
    values_[std::string(key)] = std::string(value);  // lwlint: allow(secret-index)
  }

  std::optional<std::string> Get(std::string_view key) const {
    const auto it = values_.find(std::string(key));
    if (it == values_.end()) return std::nullopt;
    return it->second;
  }

  void Erase(std::string_view key) { values_.erase(std::string(key)); }
  std::size_t size() const { return values_.size(); }
  void Clear() { values_.clear(); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace lw::lightweb
