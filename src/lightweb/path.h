// Lightweb paths.
//
// Every data blob has a unique path whose only structural constraint is that
// the top-level component is a valid domain (paper §3.1):
//   nytimes.com/world/africa/2023/06/headlines.json
// The code blob for a site is addressed by the domain alone.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lw::lightweb {

struct ParsedPath {
  std::string domain;  // "nytimes.com"
  std::string rest;    // "/world/africa/..." (always begins with '/'; "/" if
                       // the path was just the domain)
};

// True for syntactically valid lightweb domains: lowercase ASCII labels
// separated by dots, at least two labels, letters/digits/hyphens only,
// no leading/trailing hyphen in a label.
bool IsValidDomain(std::string_view domain);

// Splits "domain/rest..." and validates the domain.
Result<ParsedPath> ParsePath(std::string_view path);

// Splits "/a/b/c" into {"a","b","c"} ("" or "/" → empty vector).
// Rejects empty segments ("//") and "." / ".." traversal segments.
Result<std::vector<std::string>> SplitSegments(std::string_view rest);

// Joins a domain and rest back into a full path.
std::string JoinPath(std::string_view domain, std::string_view rest);

}  // namespace lw::lightweb
