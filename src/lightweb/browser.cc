#include "lightweb/browser.h"

#include "lightweb/path.h"
#include "util/check.h"

namespace lw::lightweb {

Browser::Browser(std::unique_ptr<BlobChannel> code_channel,
                 std::unique_ptr<BlobChannel> data_channel,
                 BrowserConfig config)
    : config_(config),
      code_channel_(std::move(code_channel)),
      data_channel_(std::move(data_channel)) {
  LW_CHECK_MSG(config_.fetches_per_page >= 1,
               "fetch budget must be at least 1");
  LW_CHECK_MSG(config_.code_cache_capacity >= 1,
               "code cache needs at least one slot");
}

LocalStorage& Browser::local_storage(std::string_view domain) {
  const auto it = local_.find(domain);
  if (it != local_.end()) return it->second;
  return local_.emplace(std::string(domain), LocalStorage{}).first->second;
}

ClientKeyring& Browser::keyring(std::string_view domain) {
  const auto it = keyrings_.find(domain);
  if (it != keyrings_.end()) return it->second;
  return keyrings_.emplace(std::string(domain), ClientKeyring{})
      .first->second;
}

void Browser::InvalidateCode(std::string_view domain) {
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->first == domain) {
      cache_.erase(it);
      return;
    }
  }
}

Result<const CodeProgram*> Browser::GetProgram(const std::string& domain,
                                               bool* cache_hit) {
  for (auto it = cache_.begin(); it != cache_.end(); ++it) {
    if (it->first == domain) {
      // LRU bump.
      cache_.splice(cache_.begin(), cache_, it);
      ++cache_hits_;
      *cache_hit = true;
      return &cache_.front().second;
    }
  }
  ++cache_misses_;
  *cache_hit = false;

  LW_ASSIGN_OR_RETURN(const Bytes blob, code_channel_->PrivateGet(domain));
  LW_ASSIGN_OR_RETURN(CodeProgram program, CodeProgram::Parse(ToString(blob)));
  cache_.emplace_front(domain, std::move(program));
  while (cache_.size() > config_.code_cache_capacity) {
    cache_.pop_back();
  }
  return &cache_.front().second;
}

Status Browser::DecoyPageLoad() {
  auto fetched = data_channel_->FetchPage({}, config_.fetches_per_page);
  if (!fetched.ok()) return fetched.status();
  return Status::Ok();
}

Result<RenderedPage> Browser::Visit(std::string_view path) {
  LW_ASSIGN_OR_RETURN(const ParsedPath parsed, ParsePath(path));

  RenderedPage page;
  page.domain = parsed.domain;
  page.full_path = JoinPath(parsed.domain, parsed.rest);

  LW_ASSIGN_OR_RETURN(const CodeProgram* program,
                      GetProgram(parsed.domain, &page.code_cache_hit));
  page.site_name = program->site_name();
  page.style = program->style();

  LocalStorage& local = local_storage(parsed.domain);
  LW_ASSIGN_OR_RETURN(const PagePlan plan,
                      program->Plan(parsed.domain, parsed.rest, local));

  const int budget = config_.fetches_per_page;
  if (plan.fetch_paths.size() > static_cast<std::size_t>(budget)) {
    // The universe validates this at publish time; a violating blob here
    // means a hostile or corrupted code blob. Refusing (rather than
    // fetching more) keeps the traffic invariant intact.
    return FailedPreconditionError(
        "code blob plans " + std::to_string(plan.fetch_paths.size()) +
        " fetches, exceeding the fixed budget of " + std::to_string(budget));
  }

  // Issue exactly `budget` data-channel queries in one page-load unit:
  // real fetches plus dummy padding (pipelined when the channel supports
  // it).
  page.real_fetches = static_cast<int>(plan.fetch_paths.size());
  page.dummy_fetches = budget - page.real_fetches;
  LW_ASSIGN_OR_RETURN(
      const std::vector<Result<Bytes>> fetched,
      data_channel_->FetchPage(plan.fetch_paths, page.dummy_fetches));

  std::vector<json::Value> data;
  data.reserve(plan.fetch_paths.size());
  const ClientKeyring& keys = keyring(parsed.domain);
  for (std::size_t i = 0; i < plan.fetch_paths.size(); ++i) {
    const std::string& fetch_path = plan.fetch_paths[i];
    const Result<Bytes>& payload = fetched[i];
    if (!payload.ok()) {
      page.fetch_status.push_back(payload.status());
      data.emplace_back();  // null
      continue;
    }
    Bytes plaintext = *payload;
    if (IsEncryptedPayload(plaintext)) {
      auto decrypted = keys.Decrypt(fetch_path, plaintext);
      if (!decrypted.ok()) {
        page.fetch_status.push_back(decrypted.status());
        data.emplace_back();
        continue;
      }
      plaintext = std::move(*decrypted);
    }
    auto parsed_json = json::Parse(ToString(plaintext));
    if (!parsed_json.ok()) {
      page.fetch_status.push_back(parsed_json.status());
      data.emplace_back();
      continue;
    }
    page.fetch_status.push_back(Status::Ok());
    data.push_back(std::move(*parsed_json));
  }

  LW_ASSIGN_OR_RETURN(
      page.text, program->Render(plan, parsed.domain, parsed.rest, local, data));
  page.links = ExtractLinks(page.text);
  return page;
}

}  // namespace lw::lightweb
