// A lightweb content universe (paper §3.1).
//
// A universe is the unit of privacy and of cost: one logical ZLTP deployment
// serving every page in it. Code blobs (one per domain, large, rarely
// changing) and data blobs (many, small) live in two separate PIR stores —
// the paper's two ZLTP sessions ("one for fetching the large code blobs and
// one for fetching the small data blobs", §3.2) — so that code-blob fetches
// don't pay the data universe's scan and vice versa.
//
// The universe also manages domain ownership ("the CDN is responsible for
// managing ownership of path prefixes") and pushes publisher updates to
// peered universes on other CDNs (§3.5).
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"
#include "zltp/store.h"

namespace lw::lightweb {

struct UniverseConfig {
  std::string name = "default";

  // Code universe: one blob per domain. The paper suggests ~1 MiB code
  // blobs; tests and examples shrink this.
  int code_domain_bits = 16;
  std::size_t code_blob_size = 64 * 1024;

  // Data universe: paper §5.1 defaults (2^22 domain, 4 KiB blobs).
  int data_domain_bits = 22;
  std::size_t data_blob_size = 4096;
  int data_shard_top_bits = 0;

  // Fixed number of data-blob fetches per page view (paper §3.2: "the
  // number of data blobs fetched per page view must be fixed").
  int fetches_per_page = 5;

  // Universe master seed; code/data keyword seeds are derived. Random if
  // empty.
  Bytes master_seed;
};

class Universe {
 public:
  explicit Universe(UniverseConfig config);

  const UniverseConfig& config() const { return config_; }
  const std::string& name() const { return config_.name; }
  int fetches_per_page() const { return config_.fetches_per_page; }

  const zltp::PirStore& code_store() const { return code_store_; }
  const zltp::PirStore& data_store() const { return data_store_; }

  // ------------------------------------------------------------ ownership

  // Claims a domain for a publisher. COLLISION if another publisher holds
  // it; idempotent for the same publisher.
  Status ClaimDomain(std::string_view domain, std::string_view publisher_id);

  Result<std::string> OwnerOf(std::string_view domain) const;

  // ------------------------------------------------------------ publishing

  // Pushes a domain's (single) code blob. Validates: ownership, domain
  // syntax, that the blob parses as LightScript, and that no route exceeds
  // the universe's fetch budget.
  Status PushCode(std::string_view publisher_id, std::string_view domain,
                  std::string_view code_blob_text);

  // Pushes one data blob at a full path ("domain/..."). Validates ownership
  // of the path's domain. Payload may be plaintext JSON or access-controlled
  // ciphertext — the CDN cannot tell and does not care.
  Status PushData(std::string_view publisher_id, std::string_view path,
                  ByteSpan payload);

  Status RemoveData(std::string_view publisher_id, std::string_view path);

  // ------------------------------------------------------------- peering

  // Registers a peer universe: future pushes here are forwarded to it
  // (one hop; forwarded pushes do not cascade — §3.5). The peer must
  // outlive this universe.
  void AddPeer(Universe& peer);

  std::size_t total_pages() const { return data_store_.record_count(); }
  std::size_t total_domains() const;

  // Snapshot of the domain→publisher assignments (for persistence/peering).
  std::map<std::string, std::string> DomainOwners() const;

 private:
  Status PushCodeInternal(std::string_view publisher_id,
                          std::string_view domain,
                          std::string_view code_blob_text, bool propagate);
  Status PushDataInternal(std::string_view publisher_id,
                          std::string_view path, ByteSpan payload,
                          bool propagate);
  Status CheckOwnership(std::string_view domain,
                        std::string_view publisher_id);

  UniverseConfig config_;
  zltp::PirStore code_store_;
  zltp::PirStore data_store_;

  mutable std::mutex mu_;  // ownership + peers
  std::map<std::string, std::string, std::less<>> domain_owner_;
  std::vector<Universe*> peers_;
};

}  // namespace lw::lightweb
