#include "lightweb/cdn.h"

namespace lw::lightweb {

Result<Universe*> Cdn::CreateUniverse(UniverseConfig config) {
  if (config.name.empty()) {
    return InvalidArgumentError("universe needs a name");
  }
  if (universes_.contains(config.name)) {
    return InvalidArgumentError("universe '" + config.name +
                                "' already exists");
  }
  auto universe = std::make_unique<Universe>(std::move(config));
  Universe* ptr = universe.get();
  universes_.emplace(ptr->name(), std::move(universe));
  return ptr;
}

Result<Universe*> Cdn::GetUniverse(std::string_view name) {
  const auto it = universes_.find(name);
  if (it == universes_.end()) {
    return NotFoundError("no universe named '" + std::string(name) + "'");
  }
  return it->second.get();
}

std::vector<std::string> Cdn::UniverseNames() const {
  std::vector<std::string> names;
  names.reserve(universes_.size());
  for (const auto& [name, u] : universes_) names.push_back(name);
  return names;
}

std::vector<UniverseConfig> Cdn::TieredConfigs() {
  // Page-size tiers per §3.5: the larger the fixed blob, the costlier each
  // request, so users pick the tier matching the content they read.
  UniverseConfig small;
  small.name = "small";
  small.data_blob_size = 1024;
  small.data_domain_bits = 22;

  UniverseConfig medium;
  medium.name = "medium";
  medium.data_blob_size = 4096;
  medium.data_domain_bits = 22;

  UniverseConfig large;
  large.name = "large";
  large.data_blob_size = 16 * 1024;
  large.data_domain_bits = 20;

  return {small, medium, large};
}

}  // namespace lw::lightweb
