#include "lightweb/lightscript.h"

#include <cmath>
#include <cstdio>

#include "lightweb/path.h"
#include "util/check.h"

namespace lw::lightweb {

namespace internal {

// Render-template AST.
struct TemplateNode {
  enum class Kind { kSequence, kText, kVar, kEach, kIf };
  Kind kind = Kind::kSequence;
  std::string text;                          // kText: literal; kVar/kEach/kIf: expr
  bool inverted = false;                     // kIf only
  std::vector<std::unique_ptr<TemplateNode>> children;  // kSequence/kEach/kIf
};

}  // namespace internal

namespace {

using internal::TemplateNode;

// ------------------------------------------------------- template parsing

// Section nesting bound: the parser (and the renderer walking its AST)
// recurses once per open {{#each}}/{{#if}} section, and code blobs are
// attacker-supplied, so an unbounded depth is a remote stack overflow.
constexpr int kMaxTemplateDepth = 64;

struct TemplateParser {
  std::string_view text;
  std::size_t pos = 0;

  Result<std::unique_ptr<TemplateNode>> ParseSequence(bool expect_close,
                                                      int depth = 0) {
    if (depth > kMaxTemplateDepth) {
      return InvalidArgumentError("template sections nested too deep");
    }
    auto seq = std::make_unique<TemplateNode>();
    seq->kind = TemplateNode::Kind::kSequence;
    std::string literal;
    const auto flush = [&] {
      if (!literal.empty()) {
        auto node = std::make_unique<TemplateNode>();
        node->kind = TemplateNode::Kind::kText;
        node->text = std::move(literal);
        literal.clear();
        seq->children.push_back(std::move(node));
      }
    };

    while (pos < text.size()) {
      if (text[pos] == '{' && pos + 1 < text.size() && text[pos + 1] == '{') {
        const std::size_t close = text.find("}}", pos + 2);
        if (close == std::string_view::npos) {
          return InvalidArgumentError("unterminated {{ tag in template");
        }
        std::string_view tag = text.substr(pos + 2, close - pos - 2);
        pos = close + 2;

        if (tag.starts_with("#each ")) {
          flush();
          auto node = std::make_unique<TemplateNode>();
          node->kind = TemplateNode::Kind::kEach;
          node->text = Trim(tag.substr(6));
          LW_ASSIGN_OR_RETURN(auto body, ParseSequence(true, depth + 1));
          node->children = std::move(body->children);
          seq->children.push_back(std::move(node));
        } else if (tag.starts_with("#if ") || tag.starts_with("^if ")) {
          flush();
          auto node = std::make_unique<TemplateNode>();
          node->kind = TemplateNode::Kind::kIf;
          node->inverted = tag.front() == '^';
          node->text = Trim(tag.substr(4));
          LW_ASSIGN_OR_RETURN(auto body, ParseSequence(true, depth + 1));
          node->children = std::move(body->children);
          seq->children.push_back(std::move(node));
        } else if (tag.starts_with("/")) {
          flush();
          if (!expect_close) {
            return InvalidArgumentError("unmatched closing tag {{" +
                                        std::string(tag) + "}}");
          }
          return seq;  // caller owns the section node
        } else {
          flush();
          auto node = std::make_unique<TemplateNode>();
          node->kind = TemplateNode::Kind::kVar;
          node->text = Trim(tag);
          if (node->text.empty()) {
            return InvalidArgumentError("empty {{}} tag");
          }
          seq->children.push_back(std::move(node));
        }
      } else {
        literal.push_back(text[pos]);
        ++pos;
      }
    }
    flush();
    if (expect_close) {
      return InvalidArgumentError("unterminated section in template");
    }
    return seq;
  }

  static std::string Trim(std::string_view s) {
    while (!s.empty() && s.front() == ' ') s.remove_prefix(1);
    while (!s.empty() && s.back() == ' ') s.remove_suffix(1);
    return std::string(s);
  }
};

// ------------------------------------------------------- expr resolution

struct RenderScope {
  std::string_view domain;
  std::string_view path;
  std::string_view site;
  const std::map<std::string, std::string>* captures;
  const LocalStorage* local;
  const std::vector<json::Value>* data;

  // #each nesting: current element and index.
  std::vector<const json::Value*> dots;
  std::vector<std::size_t> indices;
};

std::string NumberToString(double d) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    return buf;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%g", d);
  return buf;
}

std::string JsonToDisplayString(const json::Value& v) {
  switch (v.type()) {
    case json::Type::kNull: return "";
    case json::Type::kBool: return v.AsBool() ? "true" : "false";
    case json::Type::kNumber: return NumberToString(v.AsNumber());
    case json::Type::kString: return v.AsString();
    default: return json::Write(v);  // arrays/objects render as JSON
  }
}

// Resolves an expression to a JSON value (by value; scalars are cheap and
// container results are only produced for #each/#if).
json::Value ResolveExpr(std::string_view expr, const RenderScope& scope) {
  if (expr == "@index") {
    return scope.indices.empty()
               ? json::Value()
               : json::Value(static_cast<double>(scope.indices.back()));
  }
  if (expr == "domain") return json::Value(std::string(scope.domain));
  if (expr == "path") return json::Value(std::string(scope.path));
  if (expr == "site") return json::Value(std::string(scope.site));

  if (expr == "." || expr.starts_with(".")) {
    if (scope.dots.empty()) return json::Value();
    const json::Value* cur = scope.dots.back();
    if (expr == ".") return *cur;
    const json::Value* found = cur->FindPath(expr.substr(1));
    return found == nullptr ? json::Value() : *found;
  }

  if (expr.starts_with("local.")) {
    const auto v = scope.local->Get(expr.substr(6));
    return v.has_value() ? json::Value(*v) : json::Value();
  }

  if (expr.starts_with("data")) {
    // dataN or dataN.json.path
    std::size_t i = 4;
    std::size_t n = 0;
    bool has_digit = false;
    while (i < expr.size() && expr[i] >= '0' && expr[i] <= '9') {
      n = n * 10 + static_cast<std::size_t>(expr[i] - '0');
      ++i;
      has_digit = true;
    }
    if (has_digit && (i == expr.size() || expr[i] == '.')) {
      if (n >= scope.data->size()) return json::Value();
      const json::Value& root = (*scope.data)[n];
      if (i == expr.size()) return root;
      const json::Value* found = root.FindPath(expr.substr(i + 1));
      return found == nullptr ? json::Value() : *found;
    }
    // else fall through: maybe a capture literally named "data..."
  }

  const auto it = scope.captures->find(std::string(expr));
  if (it != scope.captures->end()) return json::Value(it->second);
  return json::Value();
}

bool Truthy(const json::Value& v) {
  switch (v.type()) {
    case json::Type::kNull: return false;
    case json::Type::kBool: return v.AsBool();
    case json::Type::kNumber: return v.AsNumber() != 0;
    case json::Type::kString: return !v.AsString().empty();
    case json::Type::kArray: return !v.AsArray().empty();
    case json::Type::kObject: return !v.AsObject().empty();
  }
  return false;
}

void RenderNode(const TemplateNode& node, RenderScope& scope,
                std::string& out) {
  switch (node.kind) {
    case TemplateNode::Kind::kSequence:
      for (const auto& child : node.children) {
        RenderNode(*child, scope, out);
      }
      break;
    case TemplateNode::Kind::kText:
      out += node.text;
      break;
    case TemplateNode::Kind::kVar:
      out += JsonToDisplayString(ResolveExpr(node.text, scope));
      break;
    case TemplateNode::Kind::kIf: {
      const bool truthy = Truthy(ResolveExpr(node.text, scope));
      if (truthy != node.inverted) {
        for (const auto& child : node.children) {
          RenderNode(*child, scope, out);
        }
      }
      break;
    }
    case TemplateNode::Kind::kEach: {
      const json::Value arr = ResolveExpr(node.text, scope);
      if (!arr.is_array()) break;
      const json::Array& items = arr.AsArray();
      for (std::size_t i = 0; i < items.size(); ++i) {
        scope.dots.push_back(&items[i]);
        scope.indices.push_back(i);
        for (const auto& child : node.children) {
          RenderNode(*child, scope, out);
        }
        scope.dots.pop_back();
        scope.indices.pop_back();
      }
      break;
    }
  }
}

// -------------------------------------------------------- fetch templates

// Substitutes {var} / {local.key} / {local.key|fallback} / {domain} / {path}.
Result<std::string> SubstituteFetchTemplate(
    std::string_view tmpl, std::string_view domain, std::string_view rest,
    const std::map<std::string, std::string>& captures,
    const LocalStorage& local) {
  std::string out;
  std::size_t pos = 0;
  while (pos < tmpl.size()) {
    const char c = tmpl[pos];
    if (c != '{') {
      out.push_back(c);
      ++pos;
      continue;
    }
    const std::size_t close = tmpl.find('}', pos);
    if (close == std::string_view::npos) {
      return InvalidArgumentError("unterminated { in fetch template");
    }
    std::string_view var = tmpl.substr(pos + 1, close - pos - 1);
    pos = close + 1;

    std::string_view fallback;
    bool has_fallback = false;
    if (const std::size_t bar = var.find('|'); bar != std::string_view::npos) {
      fallback = var.substr(bar + 1);
      var = var.substr(0, bar);
      has_fallback = true;
    }

    if (var == "domain") {
      out += domain;
    } else if (var == "path") {
      out += rest;
    } else if (var.starts_with("local.")) {
      const auto v = local.Get(var.substr(6));
      if (v.has_value()) {
        out += *v;
      } else if (has_fallback) {
        out += fallback;
      } else {
        return FailedPreconditionError(
            "fetch template needs local storage key '" +
            std::string(var.substr(6)) + "' and no fallback was given");
      }
    } else {
      const auto it = captures.find(std::string(var));
      if (it != captures.end()) {
        out += it->second;
      } else if (has_fallback) {
        out += fallback;
      } else {
        return InvalidArgumentError("fetch template references unknown "
                                    "capture '" + std::string(var) + "'");
      }
    }
  }
  return out;
}

// -------------------------------------------------------- route matching

bool MatchRoute(const std::vector<std::string>& pattern,
                const std::vector<std::string>& segments,
                std::map<std::string, std::string>& captures) {
  captures.clear();
  std::size_t i = 0;
  for (; i < pattern.size(); ++i) {
    const std::string& p = pattern[i];
    if (!p.empty() && p.front() == '*') {
      // Tail capture: the rest of the path (possibly empty).
      std::string tail;
      for (std::size_t j = i; j < segments.size(); ++j) {
        if (!tail.empty()) tail.push_back('/');
        tail += segments[j];
      }
      captures[p.substr(1)] = tail;
      return true;
    }
    if (i >= segments.size()) return false;
    if (!p.empty() && p.front() == ':') {
      captures[p.substr(1)] = segments[i];
    } else if (p != segments[i]) {
      return false;
    }
  }
  return i == segments.size();
}

}  // namespace

// ------------------------------------------------------------ CodeProgram

CodeProgram::CodeProgram() = default;
CodeProgram::CodeProgram(CodeProgram&&) noexcept = default;
CodeProgram& CodeProgram::operator=(CodeProgram&&) noexcept = default;
CodeProgram::~CodeProgram() = default;

Result<CodeProgram> CodeProgram::Parse(std::string_view code_blob_text) {
  LW_ASSIGN_OR_RETURN(const json::Value doc, json::Parse(code_blob_text));
  if (!doc.is_object()) {
    return InvalidArgumentError("code blob must be a JSON object");
  }
  CodeProgram program;
  program.site_ = doc.GetString("site", "untitled site");
  program.style_ = doc.GetString("style", "plain");

  const json::Value* routes = doc.Find("routes");
  if (routes == nullptr || !routes->is_array() || routes->AsArray().empty()) {
    return InvalidArgumentError("code blob must declare at least one route");
  }
  for (const json::Value& r : routes->AsArray()) {
    Route route;
    const json::Value* pattern = r.Find("pattern");
    if (pattern == nullptr || !pattern->is_string()) {
      return InvalidArgumentError("route missing string 'pattern'");
    }
    LW_ASSIGN_OR_RETURN(route.pattern, SplitSegments(pattern->AsString()));
    // Validate: '*' capture only in last position; captures named.
    for (std::size_t i = 0; i < route.pattern.size(); ++i) {
      const std::string& seg = route.pattern[i];
      if (seg.front() == '*' && i + 1 != route.pattern.size()) {
        return InvalidArgumentError("'*' capture must be last in pattern");
      }
      if ((seg.front() == '*' || seg.front() == ':') && seg.size() == 1) {
        return InvalidArgumentError("unnamed capture in pattern");
      }
    }

    if (const json::Value* fetch = r.Find("fetch"); fetch != nullptr) {
      if (!fetch->is_array()) {
        return InvalidArgumentError("route 'fetch' must be an array");
      }
      for (const json::Value& f : fetch->AsArray()) {
        if (!f.is_string()) {
          return InvalidArgumentError("fetch entries must be strings");
        }
        route.fetch_templates.push_back(f.AsString());
      }
    }

    const json::Value* render = r.Find("render");
    if (render == nullptr || !render->is_string()) {
      return InvalidArgumentError("route missing string 'render'");
    }
    TemplateParser parser{render->AsString()};
    LW_ASSIGN_OR_RETURN(route.render, parser.ParseSequence(false));

    program.routes_.push_back(std::move(route));
  }
  return program;
}

std::size_t CodeProgram::max_fetches() const {
  std::size_t m = 0;
  for (const Route& r : routes_) {
    m = std::max(m, r.fetch_templates.size());
  }
  return m;
}

Result<PagePlan> CodeProgram::Plan(std::string_view domain,
                                   std::string_view rest,
                                   const LocalStorage& local) const {
  LW_ASSIGN_OR_RETURN(const std::vector<std::string> segments,
                      SplitSegments(rest));
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    PagePlan plan;
    if (!MatchRoute(routes_[i].pattern, segments, plan.captures)) continue;
    plan.route_index = i;
    for (const std::string& tmpl : routes_[i].fetch_templates) {
      LW_ASSIGN_OR_RETURN(
          std::string fetch_path,
          SubstituteFetchTemplate(tmpl, domain, rest, plan.captures, local));
      plan.fetch_paths.push_back(std::move(fetch_path));
    }
    return plan;
  }
  return NotFoundError("no route matches path '" + std::string(rest) + "'");
}

Result<std::string> CodeProgram::Render(
    const PagePlan& plan, std::string_view domain, std::string_view rest,
    const LocalStorage& local, const std::vector<json::Value>& data) const {
  if (plan.route_index >= routes_.size()) {
    return InvalidArgumentError("plan's route index out of range");
  }
  RenderScope scope;
  scope.domain = domain;
  scope.path = rest;
  scope.site = site_;
  scope.captures = &plan.captures;
  scope.local = &local;
  scope.data = &data;

  std::string out;
  RenderNode(*routes_[plan.route_index].render, scope, out);
  return out;
}

std::vector<PageLink> ExtractLinks(std::string_view text) {
  std::vector<PageLink> links;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t open = text.find('[', pos);
    if (open == std::string_view::npos) break;
    const std::size_t close = text.find(']', open);
    if (close == std::string_view::npos) break;
    if (close + 1 >= text.size() || text[close + 1] != '(') {
      pos = close + 1;
      continue;
    }
    const std::size_t paren = text.find(')', close + 2);
    if (paren == std::string_view::npos) break;
    PageLink link;
    link.label = std::string(text.substr(open + 1, close - open - 1));
    link.target = std::string(text.substr(close + 2, paren - close - 2));
    if (!link.target.empty()) links.push_back(std::move(link));
    pos = paren + 1;
  }
  return links;
}

}  // namespace lw::lightweb
