#include "lightweb/publisher.h"

#include "lightweb/path.h"
#include "util/check.h"

namespace lw::lightweb {

SiteBuilder::SiteBuilder(std::string domain) : domain_(std::move(domain)) {
  LW_CHECK_MSG(IsValidDomain(domain_), "invalid domain for SiteBuilder");
  site_name_ = domain_;
}

SiteBuilder& SiteBuilder::SetSiteName(std::string name) {
  site_name_ = std::move(name);
  return *this;
}

SiteBuilder& SiteBuilder::SetStyle(std::string style) {
  style_ = std::move(style);
  return *this;
}

SiteBuilder& SiteBuilder::AddRoute(std::string pattern,
                                   std::vector<std::string> fetch_templates,
                                   std::string render_template) {
  json::Object route;
  route["pattern"] = std::move(pattern);
  json::Array fetch;
  for (auto& f : fetch_templates) fetch.emplace_back(std::move(f));
  route["fetch"] = std::move(fetch);
  route["render"] = std::move(render_template);
  routes_.emplace_back(std::move(route));
  return *this;
}

std::string SiteBuilder::BuildCodeBlob() const {
  json::Object blob;
  blob["site"] = site_name_;
  blob["style"] = style_;
  blob["routes"] = routes_;
  return json::Write(json::Value(blob));
}

Publisher::Publisher(std::string id) : id_(std::move(id)) {}

Status Publisher::PublishSite(Universe& universe, const SiteBuilder& site) {
  LW_RETURN_IF_ERROR(universe.ClaimDomain(site.domain(), id_));
  return universe.PushCode(id_, site.domain(), site.BuildCodeBlob());
}

Status Publisher::PublishData(Universe& universe, std::string_view path,
                              const json::Value& data) {
  return universe.PushData(id_, path, ToBytes(json::Write(data)));
}

Status Publisher::PublishProtectedData(Universe& universe,
                                       std::string_view path,
                                       const json::Value& data) {
  // Normalize the path the same way the universe stores it, so the AEAD
  // associated data matches what the browser will present at decrypt time.
  LW_ASSIGN_OR_RETURN(const ParsedPath parsed, ParsePath(path));
  const std::string canonical = JoinPath(parsed.domain, parsed.rest);
  const Bytes ciphertext =
      keyring_.Encrypt(canonical, ToBytes(json::Write(data)));
  return universe.PushData(id_, canonical, ciphertext);
}

}  // namespace lw::lightweb
