// A content-distribution network hosting lightweb universes (paper §3.1,
// §3.5).
//
// One CDN may run several universes with different cost/coverage trade-offs
// — the paper's "small / medium / large" tiering, where blob size (and so
// per-request scan cost) differs per universe and an observer learns only
// WHICH universe a user queries, never which page.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "lightweb/universe.h"
#include "util/status.h"

namespace lw::lightweb {

class Cdn {
 public:
  explicit Cdn(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  // Creates a universe; its config.name must be unique within the CDN.
  Result<Universe*> CreateUniverse(UniverseConfig config);

  Result<Universe*> GetUniverse(std::string_view name);

  std::vector<std::string> UniverseNames() const;

  // Standard three-tier configs (paper §3.5: "small", "medium", "large"
  // universes with different fixed page sizes).
  static std::vector<UniverseConfig> TieredConfigs();

 private:
  std::string name_;
  std::map<std::string, std::unique_ptr<Universe>, std::less<>> universes_;
};

}  // namespace lw::lightweb
