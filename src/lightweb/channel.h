// BlobChannel: the browser's view of a ZLTP session.
//
// The browser needs exactly two operations per universe: a keyword
// private-GET and a dummy GET that is indistinguishable on the wire (used to
// pad every page load to the fixed fetch budget). Implementations:
//
//  * InProcessPirChannel — runs the complete two-server PIR math (DPF keygen,
//    both servers' scans, XOR reconstruction, fingerprint check) against a
//    PirStore in-process. Used by tests, benches, and single-binary examples;
//    it exercises the identical code path as the networked client minus the
//    socket hops.
//  * ZltpChannel — adapts any live zltp::Session (two-server PIR or
//    enclave mode); the browser never learns which deployment it talks to.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"
#include "zltp/client.h"
#include "zltp/store.h"

namespace lw::lightweb {

class BlobChannel {
 public:
  virtual ~BlobChannel() = default;

  virtual Result<Bytes> PrivateGet(std::string_view key) = 0;
  virtual Status DummyGet() = 0;
  virtual std::size_t record_size() const = 0;

  // Fetches a whole page load — every key plus `dummies` cover queries — as
  // one unit. The default implementation loops PrivateGet/DummyGet;
  // session-backed channels override it with a pipelined batch so a page
  // load costs one round trip and the servers co-batch the scans.
  // Returns one result per key (dummy results are discarded).
  virtual Result<std::vector<Result<Bytes>>> FetchPage(
      const std::vector<std::string>& keys, int dummies);

  // Total private-GETs issued (real + dummy): what a network observer sees.
  virtual std::uint64_t observed_queries() const = 0;
};

class InProcessPirChannel final : public BlobChannel {
 public:
  // The store plays both (replicated) logical servers; correctness and
  // traffic shape are identical to a two-replica deployment.
  explicit InProcessPirChannel(const zltp::PirStore& store);

  Result<Bytes> PrivateGet(std::string_view key) override;
  Status DummyGet() override;
  std::size_t record_size() const override;
  std::uint64_t observed_queries() const override { return queries_; }

 private:
  Result<Bytes> GetIndex(std::uint64_t index, Bytes* out_record);

  const zltp::PirStore& store_;
  std::uint64_t queries_ = 0;
};

// Mode-agnostic adapter over any established zltp::Session. Resilience
// (deadlines, retries, redial) is the session's business — configure it via
// zltp::EstablishOptions; the channel and browser above it just see a page
// load that survived a server blip.
class ZltpChannel final : public BlobChannel {
 public:
  explicit ZltpChannel(std::unique_ptr<zltp::Session> session);

  Result<Bytes> PrivateGet(std::string_view key) override;
  Status DummyGet() override;
  std::size_t record_size() const override;
  std::uint64_t observed_queries() const override;

  // Pipelined page load via Session::PrivateGetBatch.
  Result<std::vector<Result<Bytes>>> FetchPage(
      const std::vector<std::string>& keys, int dummies) override;

  zltp::Session& session() { return *session_; }

 private:
  std::unique_ptr<zltp::Session> session_;
};

}  // namespace lw::lightweb
