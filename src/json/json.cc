#include "json/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>

#include "util/check.h"

namespace lw::json {

bool Value::AsBool() const {
  LW_CHECK_MSG(is_bool(), "JSON value is not a bool");
  return std::get<bool>(data_);
}

double Value::AsNumber() const {
  LW_CHECK_MSG(is_number(), "JSON value is not a number");
  return std::get<double>(data_);
}

std::int64_t Value::AsInt() const {
  const double d = AsNumber();
  // Casting a double outside int64's range is undefined behaviour, and
  // programmatically built values can hold any double; saturate instead.
  // 2^63 is exactly representable, so `d < 2^63` is the precise upper test.
  constexpr double kTwo63 = 9223372036854775808.0;
  if (std::isnan(d)) return 0;
  if (d >= kTwo63) return std::numeric_limits<std::int64_t>::max();
  if (d < -kTwo63) return std::numeric_limits<std::int64_t>::min();
  return static_cast<std::int64_t>(d);
}

const std::string& Value::AsString() const {
  LW_CHECK_MSG(is_string(), "JSON value is not a string");
  return std::get<std::string>(data_);
}

const Array& Value::AsArray() const {
  LW_CHECK_MSG(is_array(), "JSON value is not an array");
  return std::get<Array>(data_);
}
Array& Value::AsArray() {
  LW_CHECK_MSG(is_array(), "JSON value is not an array");
  return std::get<Array>(data_);
}

const Object& Value::AsObject() const {
  LW_CHECK_MSG(is_object(), "JSON value is not an object");
  return std::get<Object>(data_);
}
Object& Value::AsObject() {
  LW_CHECK_MSG(is_object(), "JSON value is not an object");
  return std::get<Object>(data_);
}

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const Object& o = std::get<Object>(data_);
  const auto it = o.find(std::string(key));
  return it == o.end() ? nullptr : &it->second;
}

const Value* Value::At(std::size_t index) const {
  if (!is_array()) return nullptr;
  const Array& a = std::get<Array>(data_);
  return index < a.size() ? &a[index] : nullptr;
}

const Value* Value::FindPath(std::string_view path) const {
  const Value* cur = this;
  std::size_t pos = 0;
  while (pos <= path.size() && cur != nullptr) {
    if (pos == path.size()) break;
    const std::size_t dot = path.find('.', pos);
    const std::string_view step =
        path.substr(pos, dot == std::string_view::npos ? path.size() - pos
                                                       : dot - pos);
    if (step.empty()) return nullptr;
    if (cur->is_array()) {
      std::size_t idx = 0;
      for (char c : step) {
        if (c < '0' || c > '9') return nullptr;
        idx = idx * 10 + static_cast<std::size_t>(c - '0');
      }
      cur = cur->At(idx);
    } else {
      cur = cur->Find(step);
    }
    if (dot == std::string_view::npos) break;
    pos = dot + 1;
  }
  return cur;
}

std::string Value::GetString(std::string_view path, std::string fallback) const {
  const Value* v = FindPath(path);
  if (v == nullptr || !v->is_string()) return fallback;
  return v->AsString();
}

double Value::GetNumber(std::string_view path, double fallback) const {
  const Value* v = FindPath(path);
  if (v == nullptr || !v->is_number()) return fallback;
  return v->AsNumber();
}

// ----------------------------------------------------------------- writing

namespace {

void WriteString(std::string& out, const std::string& s) {
  out.push_back('"');
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  out.push_back('"');
}

void WriteNumber(std::string& out, double d) {
  if (std::isnan(d) || std::isinf(d)) {
    out += "null";  // JSON has no NaN/Inf
    return;
  }
  // Integers print without a fractional part.
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

void WriteValue(std::string& out, const Value& v, const WriteOptions& opts,
                int depth) {
  const auto newline = [&](int d) {
    if (opts.pretty) {
      out.push_back('\n');
      out.append(static_cast<std::size_t>(d * opts.indent), ' ');
    }
  };
  switch (v.type()) {
    case Type::kNull:
      out += "null";
      break;
    case Type::kBool:
      out += v.AsBool() ? "true" : "false";
      break;
    case Type::kNumber:
      WriteNumber(out, v.AsNumber());
      break;
    case Type::kString:
      WriteString(out, v.AsString());
      break;
    case Type::kArray: {
      const Array& a = v.AsArray();
      if (a.empty()) {
        out += "[]";
        break;
      }
      out.push_back('[');
      bool first = true;
      for (const Value& e : a) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        WriteValue(out, e, opts, depth + 1);
      }
      newline(depth);
      out.push_back(']');
      break;
    }
    case Type::kObject: {
      const Object& o = v.AsObject();
      if (o.empty()) {
        out += "{}";
        break;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, val] : o) {
        if (!first) out.push_back(',');
        first = false;
        newline(depth + 1);
        WriteString(out, key);
        out.push_back(':');
        if (opts.pretty) out.push_back(' ');
        WriteValue(out, val, opts, depth + 1);
      }
      newline(depth);
      out.push_back('}');
      break;
    }
  }
}

}  // namespace

std::string Write(const Value& v, const WriteOptions& opts) {
  std::string out;
  WriteValue(out, v, opts, 0);
  return out;
}

// ----------------------------------------------------------------- parsing

namespace {

constexpr int kMaxDepth = 128;

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    LW_ASSIGN_OR_RETURN(Value v, ParseValue(0));
    SkipWhitespace();
    if (pos_ != text_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& msg) {
    return InvalidArgumentError("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + msg);
  }

  void SkipWhitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> ParseValue(int depth) {
    if (depth > kMaxDepth) return Error("nesting too deep");
    SkipWhitespace();
    if (pos_ >= text_.size()) return Error("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject(depth);
      case '[': return ParseArray(depth);
      case '"': {
        LW_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value(std::move(s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Value(true);
        }
        return Error("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Value(false);
        }
        return Error("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Value(nullptr);
        }
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject(int depth) {
    LW_CHECK(Consume('{'));
    Object obj;
    SkipWhitespace();
    if (Consume('}')) return Value(std::move(obj));
    for (;;) {
      SkipWhitespace();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Error("expected object key string");
      }
      LW_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      LW_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      // JSON object keys are public document structure, not key material.
      obj[std::move(key)] = std::move(v);  // lwlint: allow(secret-index)
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value(std::move(obj));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray(int depth) {
    LW_CHECK(Consume('['));
    Array arr;
    SkipWhitespace();
    if (Consume(']')) return Value(std::move(arr));
    for (;;) {
      LW_ASSIGN_OR_RETURN(Value v, ParseValue(depth + 1));
      arr.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value(std::move(arr));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<int> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Error("truncated \\u escape");
    int v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= c - '0';
      else if (c >= 'a' && c <= 'f') v |= c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') v |= c - 'A' + 10;
      else return Error("invalid \\u escape");
    }
    pos_ += 4;
    return v;
  }

  static void AppendUtf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    } else {
      out.push_back(static_cast<char>(0xf0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
    }
  }

  Result<std::string> ParseString() {
    LW_CHECK(Consume('"'));
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) return Error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Error("truncated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            LW_ASSIGN_OR_RETURN(int cp, ParseHex4());
            if (cp >= 0xd800 && cp <= 0xdbff) {
              // High surrogate: must be followed by \uDC00-\uDFFF.
              if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                  text_[pos_ + 1] != 'u') {
                return Error("unpaired surrogate");
              }
              pos_ += 2;
              LW_ASSIGN_OR_RETURN(int lo, ParseHex4());
              if (lo < 0xdc00 || lo > 0xdfff) {
                return Error("invalid low surrogate");
              }
              const std::uint32_t full = 0x10000 +
                  ((static_cast<std::uint32_t>(cp) - 0xd800) << 10) +
                  (static_cast<std::uint32_t>(lo) - 0xdc00);
              AppendUtf8(out, full);
            } else if (cp >= 0xdc00 && cp <= 0xdfff) {
              return Error("unpaired low surrogate");
            } else {
              AppendUtf8(out, static_cast<std::uint32_t>(cp));
            }
            break;
          }
          default:
            return Error("invalid escape character");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return Error("unescaped control character in string");
      } else {
        out.push_back(c);
      }
    }
  }

  Result<Value> ParseNumber() {
    const std::size_t start = pos_;
    if (Consume('-')) {
      // fallthrough to digits
    }
    if (pos_ >= text_.size()) return Error("truncated number");
    if (text_[pos_] == '0') {
      ++pos_;
    } else if (text_[pos_] >= '1' && text_[pos_] <= '9') {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    } else {
      return Error("invalid number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return Error("digits required in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
      }
    }
    const std::string num(text_.substr(start, pos_ - start));
    const double d = std::strtod(num.c_str(), nullptr);
    // A huge exponent overflows strtod to ±inf, which JSON cannot represent
    // (the writer would re-serialize it as null, breaking the canonical
    // parse→write→parse fixpoint). Underflow to 0 is fine.
    if (!std::isfinite(d)) {
      return Error("number out of range for double");
    }
    return Value(d);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace lw::json
