// Minimal-but-complete JSON library.
//
// Lightweb data blobs carry "relatively small JSON data objects" (paper §3.1)
// and code blobs are JSON-encoded LightScript programs, so the browser,
// publisher tooling, and interpreter all need a JSON value model, parser,
// and serializer. Objects preserve deterministic (sorted) key order so that
// serialization is canonical — blob bytes must be reproducible for tests.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace lw::json {

class Value;
using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

class Value {
 public:
  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}
  Value(bool b) : data_(b) {}
  Value(double d) : data_(d) {}
  Value(int i) : data_(static_cast<double>(i)) {}
  Value(std::int64_t i) : data_(static_cast<double>(i)) {}
  Value(std::uint64_t i) : data_(static_cast<double>(i)) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(Array a) : data_(std::move(a)) {}
  Value(Object o) : data_(std::move(o)) {}

  Type type() const {
    switch (data_.index()) {
      case 0: return Type::kNull;
      case 1: return Type::kBool;
      case 2: return Type::kNumber;
      case 3: return Type::kString;
      case 4: return Type::kArray;
      default: return Type::kObject;
    }
  }

  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  // Typed accessors; LW_CHECK on type mismatch (programming error).
  bool AsBool() const;
  double AsNumber() const;
  std::int64_t AsInt() const;
  const std::string& AsString() const;
  const Array& AsArray() const;
  Array& AsArray();
  const Object& AsObject() const;
  Object& AsObject();

  // Object field lookup; returns nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;
  // Array element; nullptr when out of range or not an array.
  const Value* At(std::size_t index) const;

  // Dotted-path lookup, e.g. "headlines.0.title": object keys and array
  // indices separated by '.'. Returns nullptr when any step is missing.
  const Value* FindPath(std::string_view path) const;

  // Convenience: string at dotted path, or `fallback`.
  std::string GetString(std::string_view path, std::string fallback = "") const;
  double GetNumber(std::string_view path, double fallback = 0) const;

  bool operator==(const Value& other) const { return data_ == other.data_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> data_;
};

struct WriteOptions {
  bool pretty = false;
  int indent = 2;
};

// Serializes to canonical JSON (object keys sorted by std::map ordering).
std::string Write(const Value& v, const WriteOptions& opts = {});

// Parses a complete JSON document (rejects trailing garbage). Supports the
// full grammar incl. \uXXXX escapes and surrogate pairs; depth-limited.
Result<Value> Parse(std::string_view text);

}  // namespace lw::json
