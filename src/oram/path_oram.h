// Path ORAM (Stefanov et al., CCS'13) over untrusted bucket storage.
//
// The enclave-mode ZLTP server keeps its key-value store in a Path ORAM so
// that the host-visible access pattern is a uniformly random tree path per
// logical access, independent of which key a client requested (paper §2.2).
// Buckets are AEAD-encrypted and re-randomized on every write-back, so the
// adversary learns bucket indices and timing only. Position map and stash
// live inside the enclave's private memory (position-map recursion is
// unnecessary when the map fits in enclave memory; see DESIGN.md).
//
// Costs are polylogarithmic per access — (Z)·(log N) bucket transfers —
// which is the "appealingly low server-side computational cost" the paper
// contrasts against the PIR mode's linear scan.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/secret.h"
#include "oram/storage.h"
#include "util/bytes.h"
#include "util/rand.h"
#include "util/status.h"

namespace lw::oram {

struct PathOramConfig {
  // Maximum number of logical blocks (block ids are 0..capacity-1).
  std::uint64_t capacity = 0;
  // Every logical block is exactly this many bytes.
  std::size_t block_size = 0;
  // Blocks per bucket (Z). 4 keeps stash small w.h.p. (the paper the
  // construction comes from recommends Z >= 4).
  int bucket_capacity = 4;
};

// Number of buckets a PathOram with this config needs its storage to have.
std::size_t RequiredBucketCount(const PathOramConfig& config);

class PathOram {
 public:
  // `storage` must outlive the ORAM and have at least
  // RequiredBucketCount(config) buckets. `encryption_key` (32 bytes) seals
  // buckets; it lives inside the enclave.
  PathOram(const PathOramConfig& config, UntrustedStorage& storage,
           ByteSpan encryption_key);

  // Reads a logical block. NOT_FOUND if never written — but the untrusted
  // access pattern is identical to a successful read (a full path is read
  // and rewritten either way). The block id names WHICH record the client
  // wants, i.e. the very thing ORAM exists to hide.
  Result<Bytes> Read(LW_SECRET std::uint64_t block_id);

  // Writes a logical block (data must be exactly block_size bytes).
  Status Write(LW_SECRET std::uint64_t block_id, ByteSpan data);

  // Performs an access indistinguishable from Read/Write without touching
  // any real block: used by the enclave to mask absent keys and to pad
  // fixed-rate access schedules.
  void DummyAccess();

  std::size_t stash_size() const { return stash_.size(); }
  int tree_levels() const { return levels_; }
  std::uint64_t leaf_count() const { return std::uint64_t{1} << (levels_ - 1); }

 private:
  struct Block {
    std::uint64_t id;
    Bytes data;
  };

  enum class Op { kRead, kWrite, kDummy };
  Result<Bytes> Access(Op op, LW_SECRET std::uint64_t block_id,
                       ByteSpan new_data);

  std::size_t BucketIndex(int level, std::uint64_t leaf) const;
  Bytes SealBucket(const std::vector<Block>& blocks);
  std::vector<Block> OpenBucket(ByteSpan sealed);

  PathOramConfig config_;
  UntrustedStorage& storage_;
  Bytes key_;          // bucket AEAD key (enclave-private)
  int levels_;         // tree levels; leaves = 2^(levels_-1)
  // Enclave-private state: position map (block -> leaf) and stash.
  std::vector<std::uint64_t> position_;
  std::unordered_map<std::uint64_t, Bytes> stash_;
};

// Constant-time stash selection (the data-oblivious core of PathOram::Read,
// exposed as a free function so tools/ctcheck can time it in isolation):
// touches every entry of `stash` and copies the block whose id equals
// `block_id` into `out` with masks. `out` must be pre-sized to the block
// size. Returns the all-ones mask if the block was present, 0 otherwise;
// runtime depends only on the stash size and block size, never on which
// entry (if any) matched.
std::uint64_t CtStashScan(const std::unordered_map<std::uint64_t, Bytes>& stash,
                          LW_SECRET std::uint64_t block_id,
                          MutableByteSpan out);

}  // namespace lw::oram
