// Untrusted bucket storage underneath the (simulated) enclave.
//
// The security-relevant surface of ZLTP's enclave mode is the sequence of
// reads/writes the enclave issues against memory outside its protection
// boundary (paper §2.2: "the hardware enclave must use an oblivious-RAM
// protocol ... to ensure that the memory-access patterns do not leak which
// key-value pairs a client is requesting"). This interface *is* that
// boundary: everything behind it is adversary-visible. TracingStorage
// records the access pattern so tests and benches can check obliviousness.
#pragma once

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace lw::oram {

class UntrustedStorage {
 public:
  virtual ~UntrustedStorage() = default;

  virtual std::size_t bucket_count() const = 0;

  // Reads bucket `index` (empty if never written).
  virtual Bytes ReadBucket(std::size_t index) = 0;

  virtual void WriteBucket(std::size_t index, ByteSpan data) = 0;
};

// Plain in-memory storage (the "untrustworthy memory" of the host).
class MemoryStorage final : public UntrustedStorage {
 public:
  explicit MemoryStorage(std::size_t bucket_count)
      : buckets_(bucket_count) {}

  std::size_t bucket_count() const override { return buckets_.size(); }
  Bytes ReadBucket(std::size_t index) override;
  void WriteBucket(std::size_t index, ByteSpan data) override;

 private:
  std::vector<Bytes> buckets_;
};

// What the adversary observes: operation kind and bucket index. Contents are
// AEAD ciphertexts, so indices + ordering are the entire leakage surface.
struct AccessEvent {
  enum class Kind { kRead, kWrite };
  Kind kind;
  std::size_t index;

  bool operator==(const AccessEvent&) const = default;
};

// Wraps a storage and records every access.
class TracingStorage final : public UntrustedStorage {
 public:
  explicit TracingStorage(UntrustedStorage& inner) : inner_(inner) {}

  std::size_t bucket_count() const override { return inner_.bucket_count(); }
  Bytes ReadBucket(std::size_t index) override;
  void WriteBucket(std::size_t index, ByteSpan data) override;

  const std::vector<AccessEvent>& trace() const { return trace_; }
  void ClearTrace() { trace_.clear(); }

 private:
  UntrustedStorage& inner_;
  std::vector<AccessEvent> trace_;
};

}  // namespace lw::oram
