#include "oram/path_oram.h"

#include <cstring>

#include "crypto/aead.h"
#include "crypto/ct.h"
#include "util/check.h"

namespace lw::oram {
namespace {

constexpr std::size_t kSlotHeader = 9;  // u8 occupied + u64 block id

int LevelsForCapacity(std::uint64_t capacity) {
  // Leaves = smallest power of two >= capacity (>= 2).
  std::uint64_t leaves = 2;
  int levels = 2;
  while (leaves < capacity) {
    leaves <<= 1;
    ++levels;
  }
  return levels;
}

std::uint64_t RandomLeaf(std::uint64_t leaf_count) {
  // leaf_count is a power of two; mask keeps the draw uniform. Leaves must
  // be unpredictable to the host, so this draws from the secure RNG.
  std::uint8_t buf[8];
  SecureRandomBytes(MutableByteSpan(buf, 8));
  return LoadLE64(buf) & (leaf_count - 1);
}

}  // namespace

std::size_t RequiredBucketCount(const PathOramConfig& config) {
  const int levels = LevelsForCapacity(config.capacity);
  return (std::size_t{1} << levels) - 1;
}

PathOram::PathOram(const PathOramConfig& config, UntrustedStorage& storage,
                   ByteSpan encryption_key)
    : config_(config),
      storage_(storage),
      key_(encryption_key.begin(), encryption_key.end()),
      levels_(LevelsForCapacity(config.capacity)) {
  LW_CHECK_MSG(config.capacity > 0, "capacity must be positive");
  LW_CHECK_MSG(config.block_size > 0, "block_size must be positive");
  LW_CHECK_MSG(config.bucket_capacity >= 1, "bucket_capacity must be >= 1");
  LW_CHECK_MSG(key_.size() == crypto::kAeadKeySize,
               "encryption key must be 32 bytes");
  LW_CHECK_MSG(storage.bucket_count() >= RequiredBucketCount(config),
               "storage too small for ORAM tree");
  position_.resize(config.capacity);
  for (auto& p : position_) p = RandomLeaf(leaf_count());
}

std::size_t PathOram::BucketIndex(int level, std::uint64_t leaf) const {
  // Root is bucket 0; level l holds 2^l buckets; the path to `leaf` passes
  // through node (leaf >> (levels-1-l)) of that level.
  return ((std::size_t{1} << level) - 1) +
         static_cast<std::size_t>(leaf >> (levels_ - 1 - level));
}

Bytes PathOram::SealBucket(const std::vector<Block>& blocks) {
  const std::size_t z = static_cast<std::size_t>(config_.bucket_capacity);
  LW_CHECK(blocks.size() <= z);
  Bytes plain(z * (kSlotHeader + config_.block_size), 0);
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    std::uint8_t* slot = plain.data() + i * (kSlotHeader + config_.block_size);
    slot[0] = 1;
    StoreLE64(slot + 1, blocks[i].id);
    LW_CHECK(blocks[i].data.size() == config_.block_size);
    std::memcpy(slot + kSlotHeader, blocks[i].data.data(), config_.block_size);
  }
  const Bytes nonce = SecureRandom(crypto::kAeadNonceSize);
  Bytes sealed = nonce;
  const Bytes ct = crypto::AeadSeal(key_, nonce, ToBytes("oram-bucket"), plain);
  sealed.insert(sealed.end(), ct.begin(), ct.end());
  return sealed;
}

std::vector<PathOram::Block> PathOram::OpenBucket(ByteSpan sealed) {
  if (sealed.empty()) return {};  // never-written bucket
  if (sealed.size() < crypto::kAeadNonceSize) return {};
  const ByteSpan nonce = sealed.first(crypto::kAeadNonceSize);
  auto plain = crypto::AeadOpen(key_, nonce, ToBytes("oram-bucket"),
                                sealed.subspan(crypto::kAeadNonceSize));
  // ZLTP does not promise integrity/availability against a malicious host
  // (paper §2.1 non-goals); a tampered bucket is treated as empty.
  if (!plain.ok()) return {};
  std::vector<Block> out;
  const std::size_t slot_size = kSlotHeader + config_.block_size;
  for (std::size_t off = 0; off + slot_size <= plain->size();
       off += slot_size) {
    const std::uint8_t* slot = plain->data() + off;
    if (slot[0] != 1) continue;
    Block b;
    b.id = LoadLE64(slot + 1);
    b.data.assign(slot + kSlotHeader, slot + slot_size);
    out.push_back(std::move(b));
  }
  return out;
}

Result<Bytes> PathOram::Access(Op op, LW_SECRET std::uint64_t block_id,
                               ByteSpan new_data) {
  std::uint64_t leaf;
  if (op == Op::kDummy) {
    leaf = RandomLeaf(leaf_count());
  } else {
    LW_CHECK_MSG(block_id < config_.capacity, "block id out of range");
    // The position map lives in enclave-private memory (see class comment),
    // and the leaf it yields is deliberately declassified: it is a uniform
    // random value, independent of block_id, consumed exactly once — the
    // path the host is about to watch us read and rewrite IS this value.
    // lwlint: allow(secret-taint-index, secret-taint)
    leaf = position_[block_id];
    position_[block_id] =        // lwlint: allow(secret-taint-index)
        RandomLeaf(leaf_count());
  }

  // Read the whole path into the stash.
  for (int level = 0; level < levels_; ++level) {
    for (Block& b : OpenBucket(storage_.ReadBucket(BucketIndex(level, leaf)))) {
      stash_.emplace(b.id, std::move(b.data));
    }
  }

  Result<Bytes> result = NotFoundError("block never written");
  if (op != Op::kDummy) {
    if (op == Op::kRead) {
      // Constant-time stash selection (CtStashScan): touch every block
      // pulled from the path and pick the target with masks, so which slot
      // held the requested block is not observable through the access
      // pattern or timing of this scan (the path itself is already
      // randomized). A block that was never written is in no bucket and no
      // stash entry, so the mask stays zero and the read reports NOT_FOUND
      // with the exact same scan.
      Bytes found(config_.block_size, 0);
      const std::uint64_t found_mask = CtStashScan(stash_, block_id, found);
      // Hit/miss is deliberately revealed to the in-enclave caller as a
      // status; the host-visible access pattern above is identical for both
      // outcomes. lwlint: allow(secret-taint-branch)
      if (found_mask != 0) result = std::move(found);
    }
    if (op == Op::kWrite) {
      // The stash is an enclave-private map; this keyed insert is not
      // host-visible (the write-back below touches the whole path).
      stash_[block_id] =  // lwlint: allow(secret-taint-index)
          Bytes(new_data.begin(), new_data.end());
      result = Bytes{};
    }
  } else {
    result = Bytes{};
  }

  // Write the path back, evicting stash blocks as deep as their (new)
  // positions allow.
  for (int level = levels_ - 1; level >= 0; --level) {
    const std::size_t bucket = BucketIndex(level, leaf);
    std::vector<Block> chosen;
    for (auto it = stash_.begin();
         it != stash_.end() &&
         chosen.size() < static_cast<std::size_t>(config_.bucket_capacity);) {
      const std::uint64_t p = position_[it->first];
      if (BucketIndex(level, p) == bucket) {
        chosen.push_back(Block{it->first, std::move(it->second)});
        it = stash_.erase(it);
      } else {
        ++it;
      }
    }
    storage_.WriteBucket(bucket, SealBucket(chosen));
  }
  return result;
}

std::uint64_t CtStashScan(const std::unordered_map<std::uint64_t, Bytes>& stash,
                          LW_SECRET std::uint64_t block_id,
                          MutableByteSpan out) {
  std::uint64_t found_mask = 0;
  for (const auto& [id, data] : stash) {
    const std::uint64_t m = crypto::ct::EqMask(id, block_id);
    crypto::ct::CondAssign(m, out, data);
    found_mask |= m;
  }
  return found_mask;
}

Result<Bytes> PathOram::Read(LW_SECRET std::uint64_t block_id) {
  return Access(Op::kRead, block_id, {});
}

Status PathOram::Write(LW_SECRET std::uint64_t block_id, ByteSpan data) {
  if (data.size() != config_.block_size) {
    return InvalidArgumentError("block size mismatch");
  }
  auto r = Access(Op::kWrite, block_id, data);
  if (!r.ok()) return r.status();
  return Status::Ok();
}

void PathOram::DummyAccess() { Access(Op::kDummy, 0, {}).ok(); }

}  // namespace lw::oram
