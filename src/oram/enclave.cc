#include "oram/enclave.h"

#include <cstring>

#include "crypto/aead.h"
#include "crypto/hkdf.h"
#include "crypto/secret.h"
#include "crypto/x25519.h"
#include "util/check.h"
#include "util/rand.h"

namespace lw::oram {
namespace {

constexpr char kChannelInfo[] = "zltp/enclave-channel";
constexpr char kRequestAad[] = "zltp-enclave-get";
constexpr char kResponseAad[] = "zltp-enclave-resp";

Bytes DeriveChannelKey(ByteSpan shared_secret) {
  return crypto::Hkdf(shared_secret, /*salt=*/{}, kChannelInfo,
                      crypto::kAeadKeySize);
}

// ORAM block layout: [u32 value length][value][zero pad].
std::size_t BlockSizeFor(std::size_t value_size) { return 4 + value_size; }

}  // namespace

// ------------------------------------------------------------- client

EnclaveClient::EnclaveClient(ByteSpan enclave_public_key)
    : enclave_public_(enclave_public_key.begin(), enclave_public_key.end()) {
  LW_CHECK_MSG(enclave_public_.size() == crypto::kX25519KeySize,
               "enclave public key must be 32 bytes");
}

Bytes EnclaveClient::SealGetRequest(std::string_view key) {
  const crypto::X25519KeyPair eph = crypto::X25519Generate();
  const Bytes shared =
      crypto::X25519SharedSecret(eph.private_key, enclave_public_);
  last_channel_key_ = DeriveChannelKey(shared);

  const Bytes nonce = SecureRandom(crypto::kAeadNonceSize);
  Bytes out = eph.public_key;
  out.insert(out.end(), nonce.begin(), nonce.end());
  const Bytes ct = crypto::AeadSeal(last_channel_key_, nonce,
                                    ToBytes(kRequestAad), ToBytes(key));
  out.insert(out.end(), ct.begin(), ct.end());
  return out;
}

Result<Bytes> EnclaveClient::OpenResponse(ByteSpan response) {
  if (last_channel_key_.empty()) {
    return FailedPreconditionError("no request in flight");
  }
  if (response.size() < crypto::kAeadNonceSize) {
    return ProtocolError("enclave response too short");
  }
  const ByteSpan nonce = response.first(crypto::kAeadNonceSize);
  LW_ASSIGN_OR_RETURN(
      Bytes plain,
      crypto::AeadOpen(last_channel_key_, nonce, ToBytes(kResponseAad),
                       response.subspan(crypto::kAeadNonceSize)));
  if (plain.size() < 5) return ProtocolError("malformed enclave response");
  const std::uint8_t status = plain[0];
  if (status == 0) return NotFoundError("key not present in enclave store");
  const std::uint32_t len = LoadLE32(plain.data() + 1);
  if (len > plain.size() - 5) {
    return ProtocolError("enclave response length field corrupt");
  }
  return Bytes(plain.begin() + 5, plain.begin() + 5 + len);
}

// ------------------------------------------------------------- enclave

std::size_t KvEnclave::RequiredStorageBuckets(const EnclaveConfig& config) {
  PathOramConfig oc;
  oc.capacity = config.capacity;
  oc.block_size = BlockSizeFor(config.value_size);
  return RequiredBucketCount(oc);
}

KvEnclave::KvEnclave(const EnclaveConfig& config, UntrustedStorage& storage)
    : config_(config),
      oram_key_(SecureRandom(crypto::kAeadKeySize)),
      oram_(PathOramConfig{config.capacity, BlockSizeFor(config.value_size), 4},
            storage, oram_key_) {
  const crypto::X25519KeyPair kp = crypto::X25519Generate();
  private_key_ = kp.private_key;
  public_key_ = kp.public_key;
}

Status KvEnclave::Put(LW_SECRET std::string_view key, ByteSpan value) {
  if (value.size() > config_.value_size) {
    return InvalidArgumentError("value exceeds fixed blob size");
  }
  std::uint64_t block;
  // The key->block map is enclave-private and update-vs-insert is masked
  // downstream: both paths perform exactly one ORAM write, so the host
  // learns nothing from this lookup's outcome.
  // lwlint: allow(secret-taint-call, secret-taint)
  const auto it = block_of_.find(std::string(key));
  if (it != block_of_.end()) {
    block = it->second;
  } else {
    if (next_block_ >= config_.capacity) {
      return ResourceExhaustedError("enclave store full");
    }
    block = next_block_++;
    block_of_.emplace(std::string(key), block);
  }
  Bytes padded(BlockSizeFor(config_.value_size), 0);
  StoreLE32(padded.data(), static_cast<std::uint32_t>(value.size()));
  std::copy(value.begin(), value.end(), padded.begin() + 4);
  return oram_.Write(block, padded);
}

Result<Bytes> KvEnclave::LookupInsideEnclave(LW_SECRET std::string_view key) {
  // Enclave-private map lookup; a miss is masked by the dummy ORAM access
  // below and a fixed-size response, so the outcome is deliberately
  // declassified inside the enclave.
  // lwlint: allow(secret-taint-call, secret-taint)
  const auto it = block_of_.find(std::string(key));
  if (it == block_of_.end()) {
    // Miss: perform a dummy ORAM access so the host-visible pattern is
    // identical to a hit.
    oram_.DummyAccess();
    return NotFoundError("no such key");
  }
  return oram_.Read(it->second);
}

Result<Bytes> KvEnclave::HandleEncryptedRequest(ByteSpan request) {
  if (request.size() < crypto::kX25519KeySize + crypto::kAeadNonceSize) {
    return ProtocolError("enclave request too short");
  }
  const ByteSpan client_pub = request.first(crypto::kX25519KeySize);
  const ByteSpan nonce =
      request.subspan(crypto::kX25519KeySize, crypto::kAeadNonceSize);
  const Bytes shared = crypto::X25519SharedSecret(private_key_, client_pub);
  const Bytes channel_key = DeriveChannelKey(shared);

  LW_ASSIGN_OR_RETURN(
      LW_SECRET Bytes key_bytes,
      crypto::AeadOpen(channel_key, nonce, ToBytes(kRequestAad),
                       request.subspan(crypto::kX25519KeySize +
                                       crypto::kAeadNonceSize)));
  const std::string key = ToString(key_bytes);

  // Fixed-size response plaintext regardless of hit/miss: the host cannot
  // distinguish outcomes by length.
  Bytes plain(1 + 4 + config_.value_size, 0);
  auto looked_up = LookupInsideEnclave(key);
  if (looked_up.ok()) {
    plain[0] = 1;
    const std::uint32_t len = LoadLE32(looked_up->data());
    StoreLE32(plain.data() + 1, len);
    std::copy(looked_up->begin() + 4, looked_up->end(), plain.begin() + 5);
    // Hit/miss steers only the contents of the fixed-size encrypted
    // response, which the host cannot read. lwlint: allow(secret-taint-branch)
  } else if (looked_up.status().code() != StatusCode::kNotFound) {
    return looked_up.status();
  }

  const Bytes resp_nonce = SecureRandom(crypto::kAeadNonceSize);
  Bytes out = resp_nonce;
  const Bytes ct = crypto::AeadSeal(channel_key, resp_nonce,
                                    ToBytes(kResponseAad), plain);
  out.insert(out.end(), ct.begin(), ct.end());
  return out;
}

}  // namespace lw::oram
