// Simulated hardware enclave hosting an ORAM-backed key-value store.
//
// This models the ZLTP enclave mode of operation (paper §2.2): a hardware
// enclave (e.g. Intel SGX) holds the decryption keys and the ORAM client
// state, while the bulk data lives in untrusted host memory. We simulate the
// enclave boundary in software: everything inside KvEnclave is "sealed"
// (the host-visible surface is exactly the public key, the AEAD-encrypted
// request/response bytes, and the UntrustedStorage access trace).
//
// Clients establish a per-request secure channel by sending an ephemeral
// X25519 public key; both sides derive the AEAD channel key with
// HKDF-SHA256. The lookup key travels only inside that channel, so the
// host never sees it in plaintext — the ZLTP security goal (§2.1).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "oram/path_oram.h"
#include "oram/storage.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lw::oram {

struct EnclaveConfig {
  std::uint64_t capacity = 1024;  // maximum number of key-value pairs
  std::size_t value_size = 256;   // fixed blob size (ZLTP serves fixed blobs)
};

// Client-side helper: builds encrypted requests and opens encrypted
// responses, given the enclave's public key (obtained via attestation in a
// real deployment).
class EnclaveClient {
 public:
  explicit EnclaveClient(ByteSpan enclave_public_key);

  // Encrypts a GET for `key`. Each request uses a fresh ephemeral keypair.
  Bytes SealGetRequest(std::string_view key);

  // Opens the enclave's response to the most recent request.
  // NOT_FOUND if the enclave reported the key absent.
  Result<Bytes> OpenResponse(ByteSpan response);

 private:
  Bytes enclave_public_;
  Bytes last_channel_key_;  // channel key of the request in flight
};

class KvEnclave {
 public:
  // `storage` is the untrusted host memory; it must provide at least
  // RequiredStorageBuckets(config) buckets.
  KvEnclave(const EnclaveConfig& config, UntrustedStorage& storage);

  static std::size_t RequiredStorageBuckets(const EnclaveConfig& config);

  // The enclave's attestation public key (host-visible).
  const Bytes& public_key() const { return public_key_; }

  // The fixed blob size this enclave serves (announced in the ServerHello).
  std::size_t value_size() const { return config_.value_size; }

  // Provisioning path (publisher pushes content). In a real deployment this
  // also arrives via a secure channel; the ORAM access it performs is
  // indistinguishable from a query. `value` must be <= value_size;
  // it is padded internally.
  Status Put(LW_SECRET std::string_view key, ByteSpan value);

  // Host-visible query path: opaque encrypted request in, opaque encrypted
  // response out. The host cannot distinguish hits from misses.
  Result<Bytes> HandleEncryptedRequest(ByteSpan request);

  std::size_t key_count() const { return block_of_.size(); }
  std::size_t stash_size() const { return oram_.stash_size(); }

 private:
  Result<Bytes> LookupInsideEnclave(LW_SECRET std::string_view key);

  EnclaveConfig config_;
  Bytes private_key_;  // enclave-sealed
  Bytes public_key_;
  Bytes oram_key_;     // bucket encryption key, enclave-sealed
  PathOram oram_;
  std::unordered_map<std::string, std::uint64_t> block_of_;  // enclave-sealed
  std::uint64_t next_block_ = 0;
};

}  // namespace lw::oram
