#include "oram/storage.h"

#include "util/check.h"

namespace lw::oram {

Bytes MemoryStorage::ReadBucket(std::size_t index) {
  LW_CHECK_MSG(index < buckets_.size(), "bucket index out of range");
  return buckets_[index];
}

void MemoryStorage::WriteBucket(std::size_t index, ByteSpan data) {
  LW_CHECK_MSG(index < buckets_.size(), "bucket index out of range");
  buckets_[index].assign(data.begin(), data.end());
}

Bytes TracingStorage::ReadBucket(std::size_t index) {
  trace_.push_back({AccessEvent::Kind::kRead, index});
  return inner_.ReadBucket(index);
}

void TracingStorage::WriteBucket(std::size_t index, ByteSpan data) {
  trace_.push_back({AccessEvent::Kind::kWrite, index});
  inner_.WriteBucket(index, data);
}

}  // namespace lw::oram
