// Two-party distributed point functions (DPFs), tree construction of
// Boyle–Gilboa–Ishai (CCS'16) with single-bit outputs.
//
// A DPF splits the point function f_alpha (f_alpha(alpha)=1, 0 elsewhere,
// over domain {0,...,2^d - 1}) into two keys. Each key alone reveals nothing
// about alpha, yet the two parties' evaluations XOR to f_alpha at every
// point. This is exactly what ZLTP's two-server PIR mode needs (paper §2.2):
// the client sends one key to each non-colluding server; each server XORs
// together the records whose evaluation bit is 1; the XOR of the two answers
// is the record at alpha.
//
// Key size is Θ((λ+2)·d) bits (λ = 128), matching the paper's §5.1
// communication analysis. Full-domain evaluation costs 2^d PRG expansions,
// which is the "DPF evaluation" half of the paper's per-request server
// compute; the module also implements the §5.2 front-end/data-server split
// where the top of the tree is evaluated once and sub-tree roots are shipped
// to shards.
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/secret.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lw {
class ThreadPool;
}

namespace lw::dpf {

inline constexpr std::size_t kSeedSize = 16;
inline constexpr int kMaxDomainBits = 40;
inline constexpr int kLambdaBits = 128;  // PRG seed length (security param)

// Per-level correction word: a seed plus one control-bit correction per side.
// One correction word alone is secret-correlated with alpha (it is the XOR
// of the two parties' off-path seeds); treat it like key material.
struct CorrectionWord {
  LW_SECRET std::uint8_t seed[kSeedSize];
  std::uint8_t t_left;   // 0 or 1
  std::uint8_t t_right;  // 0 or 1
};

// One party's share of the DPF. Level i of the tree consumes bit i of the
// evaluation point (least-significant first): with levels laid out as
// [left children || right children], the PRG's batch output lands directly
// in place and leaf p still ends up at array position p.
struct DpfKey {
  std::uint8_t party = 0;        // 0 or 1
  std::uint8_t domain_bits = 0;  // d; domain size is 2^d
  LW_SECRET std::uint8_t root_seed[kSeedSize] = {};
  std::vector<CorrectionWord> correction_words;  // d entries

  std::size_t SerializedSize() const;
  Bytes Serialize() const;
  static Result<DpfKey> Deserialize(ByteSpan data);

  bool operator==(const DpfKey& other) const;
};

struct KeyPair {
  DpfKey key0;
  DpfKey key1;
};

// Generates the two shares of f_alpha over a 2^domain_bits domain.
// alpha must be < 2^domain_bits; 1 <= domain_bits <= kMaxDomainBits.
// alpha is the queried index — THE secret the whole protocol protects.
KeyPair Generate(LW_SECRET std::uint64_t alpha, int domain_bits);

// Evaluates this party's share bit at a single point x.
std::uint8_t EvalPoint(const DpfKey& key, std::uint64_t x);

// Packed bit vector: bit i of the evaluation lives at
// word[i >> 6] >> (i & 63) & 1.
using BitVector = std::vector<std::uint64_t>;

inline std::uint8_t GetBit(const BitVector& bits, std::uint64_t i) {
  return static_cast<std::uint8_t>((bits[i >> 6] >> (i & 63)) & 1);
}

// Full-domain evaluation: all 2^d share bits, breadth-first (two AES batch
// calls per level over contiguous buffers).
BitVector EvalFull(const DpfKey& key);

// Multi-core full-domain evaluation; bit-identical to EvalFull. The top
// k >= 7 tree levels are expanded once on the caller (cheap), then the
// 2^k sub-trees are evaluated on the pool in blocks of 64. Because level i
// consumes evaluation-point bit i (LSB first), sub-tree s covers the
// residue class {x : x mod 2^k == s} — its leaves interleave through the
// output with stride 2^k — but a block of 64 consecutive sub-trees owns
// whole 64-bit output words (words w ≡ block (mod 2^(k-6))), so workers
// write disjoint words of the shared result with no synchronization.
// Serial fallback (== EvalFull) when pool is null, single-threaded, or the
// domain is too small to split (d < 8).
BitVector EvalFullParallel(const DpfKey& key, ThreadPool* pool);

// ------------------------------------------------------------------------
// Distributed evaluation (paper §5.2, "Distributing DPF evaluation").
//
// The front-end expands the top `top_bits` levels of the tree once and sends
// each of the 2^top_bits data servers its sub-tree root; each data server
// then pays only the cost of a DPF evaluation over the smaller
// 2^(d - top_bits) domain.
// ------------------------------------------------------------------------

struct SubtreeKey {
  std::uint8_t party = 0;
  std::uint8_t domain_bits = 0;  // remaining depth below this root
  LW_SECRET std::uint8_t seed[kSeedSize] = {};
  std::uint8_t t = 0;  // control bit at the sub-tree root
  std::vector<CorrectionWord> correction_words;  // remaining levels

  std::size_t SerializedSize() const;
  Bytes Serialize() const;
  static Result<SubtreeKey> Deserialize(ByteSpan data);
};

// Splits a key into 2^top_bits sub-tree keys. Because the tree consumes
// evaluation-point bits LSB-first, shard s covers the residue class
// { x : x mod 2^top_bits == s }, and leaf j of shard s is the point
// x = s + (j << top_bits). Requires 0 <= top_bits <= domain_bits.
std::vector<SubtreeKey> SplitForShards(const DpfKey& key, int top_bits);

// Evaluates all 2^domain_bits leaves under a sub-tree root.
BitVector EvalSubtree(const SubtreeKey& key);

// Multi-core EvalSubtree (same scheme and fallbacks as EvalFullParallel):
// a data server answering §5.2 sub-tree queries parallelizes exactly like a
// monolithic server.
BitVector EvalSubtreeParallel(const SubtreeKey& key, ThreadPool* pool);

}  // namespace lw::dpf
