#include "dpf/dpf.h"

#include <cstring>
#include <memory>

#include "crypto/ct.h"
#include "crypto/prg.h"
#include "util/check.h"
#include "util/io.h"
#include "util/rand.h"
#include "util/thread_pool.h"

namespace lw::dpf {
namespace {

using crypto::SharedDpfPrg;

// Conditionally XORs a 16-byte correction seed, branchlessly.
void MaskedXorSeed(std::uint8_t* dst, const std::uint8_t* src,
                   std::uint8_t flag) {
  const std::uint64_t mask = 0 - static_cast<std::uint64_t>(flag);
  lw::StoreLE64(dst, lw::LoadLE64(dst) ^ (lw::LoadLE64(src) & mask));
  lw::StoreLE64(dst + 8, lw::LoadLE64(dst + 8) ^ (lw::LoadLE64(src + 8) & mask));
}

Status CheckDomainBits(int domain_bits) {
  if (domain_bits < 1 || domain_bits > kMaxDomainBits) {
    return InvalidArgumentError("domain_bits out of range");
  }
  return Status::Ok();
}

// Serialization helpers shared by DpfKey and SubtreeKey.
void WriteCorrectionWords(Writer& w, const std::vector<CorrectionWord>& cws) {
  for (const CorrectionWord& cw : cws) {
    w.Raw(ByteSpan(cw.seed, kSeedSize));
    w.U8(static_cast<std::uint8_t>(cw.t_left | (cw.t_right << 1)));
  }
}

Status ReadCorrectionWords(Reader& r, int count,
                           std::vector<CorrectionWord>& out) {
  out.resize(static_cast<std::size_t>(count));
  for (CorrectionWord& cw : out) {
    LW_ASSIGN_OR_RETURN(Bytes seed, r.Raw(kSeedSize));
    std::memcpy(cw.seed, seed.data(), kSeedSize);
    LW_ASSIGN_OR_RETURN(const std::uint8_t bits, r.U8());
    if (bits > 3) return ProtocolError("invalid correction-word bits");
    cw.t_left = bits & 1;
    cw.t_right = (bits >> 1) & 1;
  }
  return Status::Ok();
}

// ---------------------------------------------------------------------------
// Tree expansion.
//
// Bit order: level i consumes bit i of the evaluation point (LSB first).
// A level is laid out as [all left children || all right children], so the
// PRG's batch output lands in its final position with no interleaving copy,
// and after d levels leaf p sits at array position p (p's bit i chose the
// branch at level i, contributing 2^i to the position — exactly p).
// ---------------------------------------------------------------------------

// Expands `levels` levels starting from `n` roots (seeds/ts), returning only
// the leaf control bits, packed. Ping-pongs two uninitialized buffers: this
// is the per-request hot loop of a ZLTP server (§5.1's "DPF evaluation").
BitVector ExpandToLeafBits(LW_SECRET const std::uint8_t* root_seeds,
                           const std::uint8_t* root_ts, std::size_t n,
                           LW_SECRET const CorrectionWord* cws, int levels) {
  const std::size_t final_n = n << levels;
  if (levels == 0) {
    BitVector out((n + 63) / 64, 0);
    for (std::size_t i = 0; i < n; ++i) {
      out[i >> 6] |= std::uint64_t{root_ts[i]} << (i & 63);
    }
    return out;
  }

  // Uninitialized, thread-local scratch reused across queries: a ZLTP
  // server evaluates one of these per request, and re-faulting ~130 MB of
  // fresh pages each time would dominate the DPF cost (std::vector would
  // additionally zero-fill it). Both ping-pong buffers need full capacity:
  // the final level lands in either one depending on the parity of
  // `levels`.
  struct Scratch {
    std::unique_ptr<std::uint8_t[]> data;
    std::size_t size = 0;
    std::uint8_t* Get(std::size_t want) {
      if (size < want) {
        data = std::make_unique_for_overwrite<std::uint8_t[]>(want);
        size = want;
      }
      return data.get();
    }
  };
  thread_local Scratch seeds_a, seeds_b, ts_a, ts_b;

  std::uint8_t* cur = seeds_a.Get(final_n * kSeedSize);
  std::uint8_t* next = seeds_b.Get(final_n * kSeedSize);
  std::uint8_t* cur_t = ts_a.Get(final_n);
  std::uint8_t* next_t = ts_b.Get(final_n);
  std::memcpy(cur, root_seeds, n * kSeedSize);
  std::memcpy(cur_t, root_ts, n);

  for (int level = 0; level < levels; ++level) {
    SharedDpfPrg().ExpandBatch(cur, n, /*left=*/next,
                               /*right=*/next + n * kSeedSize,
                               /*t_left=*/next_t, /*t_right=*/next_t + n);
    const CorrectionWord& cw = cws[level];
    const std::uint64_t cw_lo = lw::LoadLE64(cw.seed);
    const std::uint64_t cw_hi = lw::LoadLE64(cw.seed + 8);
    std::uint8_t* const right = next + n * kSeedSize;
    // The deepest level's seeds are dead — only its control bits feed the
    // output — so skip their correction and save a full pass over the
    // largest buffer.
    if (level + 1 < levels) {
      for (std::size_t j = 0; j < n; ++j) {
        const std::uint64_t mask = 0 - std::uint64_t{cur_t[j]};
        std::uint8_t* l = next + j * kSeedSize;
        std::uint8_t* r = right + j * kSeedSize;
        lw::StoreLE64(l, lw::LoadLE64(l) ^ (cw_lo & mask));
        lw::StoreLE64(l + 8, lw::LoadLE64(l + 8) ^ (cw_hi & mask));
        lw::StoreLE64(r, lw::LoadLE64(r) ^ (cw_lo & mask));
        lw::StoreLE64(r + 8, lw::LoadLE64(r + 8) ^ (cw_hi & mask));
      }
    }
    for (std::size_t j = 0; j < n; ++j) {
      next_t[j] = static_cast<std::uint8_t>(next_t[j] ^ (cur_t[j] & cw.t_left));
      next_t[n + j] =
          static_cast<std::uint8_t>(next_t[n + j] ^ (cur_t[j] & cw.t_right));
    }
    std::swap(cur, next);
    std::swap(cur_t, next_t);
    n <<= 1;
  }

  BitVector out((final_n + 63) / 64, 0);
  for (std::size_t i = 0; i < final_n; ++i) {
    out[i >> 6] |= std::uint64_t{cur_t[i]} << (i & 63);
  }
  return out;
}

// Small-scale expansion keeping seeds AND control bits (used by the
// front-end's top-of-tree split, where n stays tiny).
void ExpandKeepingSeeds(LW_SECRET Bytes& seeds, Bytes& ts,
                        LW_SECRET const CorrectionWord* cws, int levels) {
  for (int level = 0; level < levels; ++level) {
    const std::size_t n = ts.size();
    Bytes next_seeds(2 * n * kSeedSize);
    Bytes next_ts(2 * n);
    SharedDpfPrg().ExpandBatch(seeds.data(), n, next_seeds.data(),
                               next_seeds.data() + n * kSeedSize,
                               next_ts.data(), next_ts.data() + n);
    const CorrectionWord& cw = cws[level];
    for (std::size_t j = 0; j < n; ++j) {
      MaskedXorSeed(next_seeds.data() + j * kSeedSize, cw.seed, ts[j]);
      MaskedXorSeed(next_seeds.data() + (n + j) * kSeedSize, cw.seed, ts[j]);
      next_ts[j] = static_cast<std::uint8_t>(next_ts[j] ^ (ts[j] & cw.t_left));
      next_ts[n + j] =
          static_cast<std::uint8_t>(next_ts[n + j] ^ (ts[j] & cw.t_right));
    }
    seeds = std::move(next_seeds);
    ts = std::move(next_ts);
  }
}

// Thread-pooled expansion of one root (paper §5.1's "servers can use
// multiple cores"). Split depth k is chosen so that (a) sub-trees come in
// blocks of 64 — because the tree consumes point bits LSB-first, sub-tree s
// covers {x : x mod 2^k == s}, and with 64 | 2^k the leaves of 64
// consecutive sub-trees tile whole 64-bit words of the packed output
// (block b owns exactly the words w ≡ b (mod 2^(k-6))), making the workers'
// writes disjoint word-granular strided copies — and (b) there are at least
// two blocks per pool thread for handoff balance. The serial top-of-tree
// expansion is 2^(k+1) PRG calls against 2^(levels+1) total, well under 1%
// at the paper's domain sizes.
BitVector ExpandToLeafBitsParallel(LW_SECRET const std::uint8_t* root_seed,
                                   std::uint8_t root_t,
                                   LW_SECRET const CorrectionWord* cws,
                                   int levels, ThreadPool* pool) {
  const int threads = pool == nullptr ? 1 : pool->thread_count();
  int k = 7;  // minimum split with >= 2 blocks of 64 sub-trees
  while (k < 14 && (std::size_t{1} << (k - 6)) < 2 * static_cast<std::size_t>(
                                                      threads)) {
    ++k;
  }
  if (threads <= 1 || levels < 8) {
    return ExpandToLeafBits(root_seed, &root_t, 1, cws, levels);
  }
  if (k >= levels) k = levels - 1;  // levels >= 8, so k stays >= 7

  Bytes seeds(kSeedSize);
  std::memcpy(seeds.data(), root_seed, kSeedSize);
  Bytes ts(1, root_t);
  ExpandKeepingSeeds(seeds, ts, cws, k);

  const std::size_t blocks = std::size_t{1} << (k - 6);
  const int remaining = levels - k;
  const std::size_t words_per_block = std::size_t{1} << remaining;
  const CorrectionWord* tail = cws + k;
  BitVector out(std::size_t{1} << (levels - 6));

  pool->ParallelFor(0, blocks, 1, [&](std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b) {
      // Block b = sub-trees [64b, 64b + 64). Batch expansion keeps leaf
      // r + (j << 6) of the 64-root batch at local position r + j*64, i.e.
      // local word j, bit r — exactly global word b + j*blocks, bit r.
      const BitVector local =
          ExpandToLeafBits(seeds.data() + (b << 6) * kSeedSize,
                           ts.data() + (b << 6), 64, tail, remaining);
      std::uint64_t* dst = out.data() + b;
      for (std::size_t j = 0; j < words_per_block; ++j) {
        dst[j * blocks] = local[j];
      }
    }
  });
  return out;
}

}  // namespace

// ----------------------------------------------------------- serialization

std::size_t DpfKey::SerializedSize() const {
  return 2 + kSeedSize + correction_words.size() * (kSeedSize + 1);
}

Bytes DpfKey::Serialize() const {
  Writer w;
  w.U8(party);
  w.U8(domain_bits);
  w.Raw(ByteSpan(root_seed, kSeedSize));
  WriteCorrectionWords(w, correction_words);
  return std::move(w).Take();
}

Result<DpfKey> DpfKey::Deserialize(ByteSpan data) {
  Reader r(data);
  DpfKey key;
  LW_ASSIGN_OR_RETURN(key.party, r.U8());
  if (key.party > 1) return ProtocolError("DPF party must be 0 or 1");
  LW_ASSIGN_OR_RETURN(key.domain_bits, r.U8());
  LW_RETURN_IF_ERROR(CheckDomainBits(key.domain_bits));
  LW_ASSIGN_OR_RETURN(Bytes seed, r.Raw(kSeedSize));
  std::memcpy(key.root_seed, seed.data(), kSeedSize);
  LW_RETURN_IF_ERROR(
      ReadCorrectionWords(r, key.domain_bits, key.correction_words));
  LW_RETURN_IF_ERROR(r.ExpectEnd());
  return key;
}

bool DpfKey::operator==(const DpfKey& other) const {
  if (party != other.party || domain_bits != other.domain_bits) return false;
  if (!crypto::ct::Eq(ByteSpan(root_seed, kSeedSize),
                      ByteSpan(other.root_seed, kSeedSize))) {
    return false;
  }
  if (correction_words.size() != other.correction_words.size()) return false;
  for (std::size_t i = 0; i < correction_words.size(); ++i) {
    const CorrectionWord& a = correction_words[i];
    const CorrectionWord& b = other.correction_words[i];
    if (!crypto::ct::Eq(ByteSpan(a.seed, kSeedSize),
                        ByteSpan(b.seed, kSeedSize)) ||
        a.t_left != b.t_left || a.t_right != b.t_right) {
      return false;
    }
  }
  return true;
}

std::size_t SubtreeKey::SerializedSize() const {
  return 3 + kSeedSize + correction_words.size() * (kSeedSize + 1);
}

Bytes SubtreeKey::Serialize() const {
  Writer w;
  w.U8(party);
  w.U8(domain_bits);
  w.U8(t);
  w.Raw(ByteSpan(seed, kSeedSize));
  WriteCorrectionWords(w, correction_words);
  return std::move(w).Take();
}

Result<SubtreeKey> SubtreeKey::Deserialize(ByteSpan data) {
  Reader r(data);
  SubtreeKey key;
  LW_ASSIGN_OR_RETURN(key.party, r.U8());
  if (key.party > 1) return ProtocolError("DPF party must be 0 or 1");
  LW_ASSIGN_OR_RETURN(key.domain_bits, r.U8());
  if (key.domain_bits > kMaxDomainBits) {
    return ProtocolError("subtree domain_bits out of range");
  }
  LW_ASSIGN_OR_RETURN(key.t, r.U8());
  if (key.t > 1) return ProtocolError("control bit must be 0 or 1");
  LW_ASSIGN_OR_RETURN(Bytes seed, r.Raw(kSeedSize));
  std::memcpy(key.seed, seed.data(), kSeedSize);
  LW_RETURN_IF_ERROR(
      ReadCorrectionWords(r, key.domain_bits, key.correction_words));
  LW_RETURN_IF_ERROR(r.ExpectEnd());
  return key;
}

// ------------------------------------------------------------- generation

KeyPair Generate(LW_SECRET std::uint64_t alpha, int domain_bits) {
  LW_CHECK_MSG(CheckDomainBits(domain_bits).ok(), "invalid domain_bits");
  LW_CHECK_MSG(alpha < (std::uint64_t{1} << domain_bits),
               "alpha outside domain");

  KeyPair pair;
  pair.key0.party = 0;
  pair.key1.party = 1;
  pair.key0.domain_bits = static_cast<std::uint8_t>(domain_bits);
  pair.key1.domain_bits = static_cast<std::uint8_t>(domain_bits);
  SecureRandomBytes(MutableByteSpan(pair.key0.root_seed, kSeedSize));
  SecureRandomBytes(MutableByteSpan(pair.key1.root_seed, kSeedSize));
  pair.key0.correction_words.resize(static_cast<std::size_t>(domain_bits));
  pair.key1.correction_words.resize(static_cast<std::size_t>(domain_bits));

  std::uint8_t s0[kSeedSize], s1[kSeedSize];
  std::memcpy(s0, pair.key0.root_seed, kSeedSize);
  std::memcpy(s1, pair.key1.root_seed, kSeedSize);
  std::uint8_t t0 = 0, t1 = 1;

  for (int level = 0; level < domain_bits; ++level) {
    std::uint8_t l0[kSeedSize], r0[kSeedSize], l1[kSeedSize], r1[kSeedSize];
    std::uint8_t tl0, tr0, tl1, tr1;
    SharedDpfPrg().Expand(s0, l0, r0, &tl0, &tr0);
    SharedDpfPrg().Expand(s1, l1, r1, &tl1, &tr1);

    // Level i consumes bit i of alpha (LSB first; see ExpandToLeafBits).
    const std::uint8_t alpha_bit =
        static_cast<std::uint8_t>((alpha >> level) & 1);

    // The "lose" side (the branch alpha does NOT take) gets a correction
    // that makes the two parties' seeds collapse to equality off-path.
    const std::uint8_t* lose0 = alpha_bit ? l0 : r0;
    const std::uint8_t* lose1 = alpha_bit ? l1 : r1;

    CorrectionWord cw;
    for (std::size_t i = 0; i < kSeedSize; ++i) {
      cw.seed[i] = static_cast<std::uint8_t>(lose0[i] ^ lose1[i]);
    }
    cw.t_left = static_cast<std::uint8_t>(tl0 ^ tl1 ^ alpha_bit ^ 1);
    cw.t_right = static_cast<std::uint8_t>(tr0 ^ tr1 ^ alpha_bit);
    pair.key0.correction_words[static_cast<std::size_t>(level)] = cw;
    pair.key1.correction_words[static_cast<std::size_t>(level)] = cw;

    // Each party advances along the alpha path, applying the correction iff
    // its current control bit is set.
    const std::uint8_t* keep0 = alpha_bit ? r0 : l0;
    const std::uint8_t* keep1 = alpha_bit ? r1 : l1;
    const std::uint8_t keep_t0 = alpha_bit ? tr0 : tl0;
    const std::uint8_t keep_t1 = alpha_bit ? tr1 : tl1;
    const std::uint8_t cw_t_keep = alpha_bit ? cw.t_right : cw.t_left;

    std::uint8_t new_s0[kSeedSize], new_s1[kSeedSize];
    std::memcpy(new_s0, keep0, kSeedSize);
    std::memcpy(new_s1, keep1, kSeedSize);
    MaskedXorSeed(new_s0, cw.seed, t0);
    MaskedXorSeed(new_s1, cw.seed, t1);
    const std::uint8_t new_t0 =
        static_cast<std::uint8_t>(keep_t0 ^ (t0 & cw_t_keep));
    const std::uint8_t new_t1 =
        static_cast<std::uint8_t>(keep_t1 ^ (t1 & cw_t_keep));

    std::memcpy(s0, new_s0, kSeedSize);
    std::memcpy(s1, new_s1, kSeedSize);
    t0 = new_t0;
    t1 = new_t1;
  }
  return pair;
}

// ------------------------------------------------------------- evaluation

std::uint8_t EvalPoint(const DpfKey& key, std::uint64_t x) {
  const int d = key.domain_bits;
  LW_CHECK_MSG(x < (std::uint64_t{1} << d), "x outside domain");

  std::uint8_t s[kSeedSize];
  std::memcpy(s, key.root_seed, kSeedSize);
  std::uint8_t t = key.party;

  for (int level = 0; level < d; ++level) {
    std::uint8_t l[kSeedSize], r[kSeedSize];
    std::uint8_t tl, tr;
    SharedDpfPrg().Expand(s, l, r, &tl, &tr);
    const CorrectionWord& cw =
        key.correction_words[static_cast<std::size_t>(level)];
    const std::uint8_t bit = static_cast<std::uint8_t>((x >> level) & 1);
    const std::uint8_t* next = bit ? r : l;
    const std::uint8_t next_t_raw = bit ? tr : tl;
    const std::uint8_t cw_t = bit ? cw.t_right : cw.t_left;
    std::uint8_t new_s[kSeedSize];
    std::memcpy(new_s, next, kSeedSize);
    MaskedXorSeed(new_s, cw.seed, t);
    const std::uint8_t new_t =
        static_cast<std::uint8_t>(next_t_raw ^ (t & cw_t));
    std::memcpy(s, new_s, kSeedSize);
    t = new_t;
  }
  return t;
}

BitVector EvalFull(const DpfKey& key) {
  const std::uint8_t root_t = key.party;
  return ExpandToLeafBits(key.root_seed, &root_t, 1,
                          key.correction_words.data(), key.domain_bits);
}

BitVector EvalFullParallel(const DpfKey& key, ThreadPool* pool) {
  return ExpandToLeafBitsParallel(key.root_seed, key.party,
                                  key.correction_words.data(),
                                  key.domain_bits, pool);
}

std::vector<SubtreeKey> SplitForShards(const DpfKey& key, int top_bits) {
  LW_CHECK_MSG(top_bits >= 0 && top_bits <= key.domain_bits,
               "top_bits out of range");
  Bytes seeds(kSeedSize);
  std::memcpy(seeds.data(), key.root_seed, kSeedSize);
  Bytes ts(1, key.party);
  ExpandKeepingSeeds(seeds, ts, key.correction_words.data(), top_bits);

  const std::size_t shards = ts.size();
  const int remaining = key.domain_bits - top_bits;
  const std::vector<CorrectionWord> tail(
      key.correction_words.begin() + top_bits, key.correction_words.end());

  std::vector<SubtreeKey> out(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    out[s].party = key.party;
    out[s].domain_bits = static_cast<std::uint8_t>(remaining);
    std::memcpy(out[s].seed, seeds.data() + s * kSeedSize, kSeedSize);
    out[s].t = ts[s];
    out[s].correction_words = tail;
  }
  return out;
}

BitVector EvalSubtree(const SubtreeKey& key) {
  return ExpandToLeafBits(key.seed, &key.t, 1, key.correction_words.data(),
                          key.domain_bits);
}

BitVector EvalSubtreeParallel(const SubtreeKey& key, ThreadPool* pool) {
  return ExpandToLeafBitsParallel(key.seed, key.t, key.correction_words.data(),
                                  key.domain_bits, pool);
}

}  // namespace lw::dpf
