#include <algorithm>
#include <condition_variable>
#include <deque>
#include <mutex>

#include "net/transport.h"

namespace lw::net {
namespace {

// Upper bound on any single cv wait when a finite deadline is set. Finite
// deadlines may run against a FakeClock that the condition variable knows
// nothing about, so we slice the wait and re-check the deadline's own clock
// each iteration; 5ms keeps fake-clock expiry latency negligible for tests
// while costing nothing on the (already-expired or real-time) common paths.
constexpr std::chrono::milliseconds kWaitSlice{5};

// Shared state of one direction of the pair.
struct Channel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Frame> queue;
  bool closed = false;

  Status Push(Frame frame, const Deadline& deadline) {
    // The queue is unbounded, so a send never has to wait — but an already
    // blown budget still fails fast, mirroring a socket that would block.
    if (deadline.expired()) {
      return DeadlineExceededError("send deadline expired");
    }
    {
      std::lock_guard<std::mutex> lock(mu);
      if (closed) return UnavailableError("transport closed");
      queue.push_back(std::move(frame));
    }
    cv.notify_one();
    return Status::Ok();
  }

  Result<Frame> Pop(const Deadline& deadline) {
    std::unique_lock<std::mutex> lock(mu);
    while (queue.empty() && !closed) {
      if (deadline.is_infinite()) {
        cv.wait(lock);
        continue;
      }
      const std::chrono::nanoseconds rem = deadline.remaining();
      if (rem <= std::chrono::nanoseconds::zero()) {
        return DeadlineExceededError("receive deadline expired");
      }
      cv.wait_for(lock, std::min<std::chrono::nanoseconds>(rem, kWaitSlice));
    }
    if (queue.empty()) return UnavailableError("transport closed");
    Frame f = std::move(queue.front());
    queue.pop_front();
    return f;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

struct SharedState {
  Channel a_to_b;
  Channel b_to_a;
};

class InMemoryTransport final : public Transport {
 public:
  InMemoryTransport(std::shared_ptr<SharedState> state, Channel* out,
                    Channel* in)
      : state_(std::move(state)), out_(out), in_(in) {}

  ~InMemoryTransport() override { Close(); }

  using Transport::Receive;
  using Transport::Send;

  Status Send(const Frame& frame, const Deadline& deadline) override {
    return out_->Push(frame, deadline);
  }

  Result<Frame> Receive(const Deadline& deadline) override {
    return in_->Pop(deadline);
  }

  void Close() override {
    // Closing either end tears down both directions, like a socket close.
    out_->Close();
    in_->Close();
  }

 private:
  std::shared_ptr<SharedState> state_;
  Channel* out_;
  Channel* in_;
};

}  // namespace

TransportPair CreateInMemoryPair() {
  auto state = std::make_shared<SharedState>();
  TransportPair pair;
  pair.a = std::make_unique<InMemoryTransport>(state, &state->a_to_b,
                                               &state->b_to_a);
  pair.b = std::make_unique<InMemoryTransport>(state, &state->b_to_a,
                                               &state->a_to_b);
  return pair;
}

}  // namespace lw::net
