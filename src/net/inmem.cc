#include <condition_variable>
#include <deque>
#include <mutex>

#include "net/transport.h"

namespace lw::net {
namespace {

// Shared state of one direction of the pair.
struct Channel {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Frame> queue;
  bool closed = false;

  Status Push(Frame frame) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (closed) return UnavailableError("transport closed");
      queue.push_back(std::move(frame));
    }
    cv.notify_one();
    return Status::Ok();
  }

  Result<Frame> Pop() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [this] { return !queue.empty() || closed; });
    if (queue.empty()) return UnavailableError("transport closed");
    Frame f = std::move(queue.front());
    queue.pop_front();
    return f;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu);
      closed = true;
    }
    cv.notify_all();
  }
};

struct SharedState {
  Channel a_to_b;
  Channel b_to_a;
};

class InMemoryTransport final : public Transport {
 public:
  InMemoryTransport(std::shared_ptr<SharedState> state, Channel* out,
                    Channel* in)
      : state_(std::move(state)), out_(out), in_(in) {}

  ~InMemoryTransport() override { Close(); }

  Status Send(const Frame& frame) override { return out_->Push(frame); }

  Result<Frame> Receive() override { return in_->Pop(); }

  void Close() override {
    // Closing either end tears down both directions, like a socket close.
    out_->Close();
    in_->Close();
  }

 private:
  std::shared_ptr<SharedState> state_;
  Channel* out_;
  Channel* in_;
};

}  // namespace

TransportPair CreateInMemoryPair() {
  auto state = std::make_shared<SharedState>();
  TransportPair pair;
  pair.a = std::make_unique<InMemoryTransport>(state, &state->a_to_b,
                                               &state->b_to_a);
  pair.b = std::make_unique<InMemoryTransport>(state, &state->b_to_a,
                                               &state->a_to_b);
  return pair;
}

}  // namespace lw::net
