// Message-oriented transport abstraction.
//
// ZLTP is an application-layer protocol (paper §2); it runs over any
// reliable, ordered, message-preserving byte channel. We provide two
// implementations: an in-process loopback pair (tests, benches, and the
// in-process CDN used by the lightweb examples) and a framed TCP transport
// (net/tcp.h). A frame is a 1-byte type tag plus an opaque payload.
#pragma once

#include <cstdint>
#include <memory>

#include "util/bytes.h"
#include "util/status.h"

namespace lw::net {

// Frames larger than this are rejected as a protocol violation — ZLTP
// messages are small (DPF keys + one record), so a huge length prefix is
// either corruption or abuse.
inline constexpr std::size_t kMaxFrameSize = 64 * 1024 * 1024;

struct Frame {
  std::uint8_t type = 0;
  Bytes payload;

  bool operator==(const Frame&) const = default;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Sends one frame. UNAVAILABLE if the peer has closed.
  virtual Status Send(const Frame& frame) = 0;

  // Blocks for the next frame. UNAVAILABLE on orderly close,
  // PROTOCOL_ERROR on malformed framing.
  virtual Result<Frame> Receive() = 0;

  // Closes the channel; concurrent and subsequent Sends/Receives (on both
  // endpoints for the in-memory pair) fail with UNAVAILABLE.
  virtual void Close() = 0;
};

// Creates a connected pair of in-process transports. Thread-safe: the two
// ends may live on different threads. Frames sent on one end are received
// on the other, in order.
struct TransportPair {
  std::unique_ptr<Transport> a;
  std::unique_ptr<Transport> b;
};
TransportPair CreateInMemoryPair();

}  // namespace lw::net
