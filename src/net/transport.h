// Message-oriented transport abstraction.
//
// ZLTP is an application-layer protocol (paper §2); it runs over any
// reliable, ordered, message-preserving byte channel. We provide two
// implementations: an in-process loopback pair (tests, benches, and the
// in-process CDN used by the lightweb examples) and a framed TCP transport
// (net/tcp.h). A frame is a 1-byte type tag plus an opaque payload.
//
// Every blocking operation takes a Deadline (net/deadline.h): a production
// client must never hang forever on a dead CDN node. An expired or
// unsatisfiable deadline surfaces as DEADLINE_EXCEEDED; the retry layer
// (net/retry.h, zltp sessions) treats it like UNAVAILABLE and re-issues the
// operation with fresh DPF randomness on a redialed connection. Fault
// injection decorators for testing this machinery live in net/faulty.h.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "net/deadline.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lw::net {

// Frames larger than this are rejected as a protocol violation — ZLTP
// messages are small (DPF keys + one record), so a huge length prefix is
// either corruption or abuse.
inline constexpr std::size_t kMaxFrameSize = 64 * 1024 * 1024;

struct Frame {
  std::uint8_t type = 0;
  Bytes payload;

  bool operator==(const Frame&) const = default;
};

class Transport {
 public:
  virtual ~Transport() = default;

  // Sends one frame, blocking at most until `deadline`. UNAVAILABLE if the
  // peer has closed; DEADLINE_EXCEEDED if the channel would not accept the
  // frame in time (the stream may be left mid-frame — treat the transport
  // as dead afterwards).
  virtual Status Send(const Frame& frame, const Deadline& deadline) = 0;

  // Blocks for the next frame until `deadline`. UNAVAILABLE on orderly
  // close, PROTOCOL_ERROR on malformed framing, DEADLINE_EXCEEDED on
  // timeout (mid-frame timeouts leave the stream unsynchronized — treat
  // the transport as dead afterwards).
  virtual Result<Frame> Receive(const Deadline& deadline) = 0;

  // Closes the channel; concurrent and subsequent Sends/Receives (on both
  // endpoints for the in-memory pair) fail with UNAVAILABLE.
  virtual void Close() = 0;

  // Unbounded convenience forms. Call sites outside src/net must pass a
  // deadline (or an explicit Deadline::Infinite()) instead — enforced by
  // lwlint's `receive-without-deadline` rule.
  Status Send(const Frame& frame) { return Send(frame, Deadline::Infinite()); }
  Result<Frame> Receive() { return Receive(Deadline::Infinite()); }
};

// Dials a fresh connection to the same logical endpoint. Sessions use this
// to re-establish after a dead transport (zltp::EstablishOptions); every
// invocation must return an independent connection.
using TransportFactory =
    std::function<Result<std::unique_ptr<Transport>>()>;

// Creates a connected pair of in-process transports. Thread-safe: the two
// ends may live on different threads. Frames sent on one end are received
// on the other, in order.
struct TransportPair {
  std::unique_ptr<Transport> a;
  std::unique_ptr<Transport> b;
};
TransportPair CreateInMemoryPair();

}  // namespace lw::net
