// Retry policy: bounded attempts with jittered exponential backoff.
//
// The policy is pure data plus a Backoff helper that owns the escalation
// state; WHAT gets retried is the caller's business. For ZLTP sessions the
// rule is strict (docs/ROBUSTNESS.md): a retried private GET must regenerate
// fresh DPF key shares and is sent over redialed connections — resending
// captured bytes would let the network link two sightings of the same
// query, which a fresh share (indistinguishable from a dummy) does not.
//
// Backoff sleeps on the policy's injectable clock, so tests drive the full
// retry schedule with a FakeClock and zero wall-clock waiting.
#pragma once

#include <chrono>
#include <cstdint>

#include "util/clock.h"
#include "util/rand.h"
#include "util/status.h"

namespace lw::net {

struct RetryPolicy {
  // Total tries including the first; 1 = no retries.
  int max_attempts = 3;

  // Backoff before retry k (1-based) is
  //   min(initial_backoff * multiplier^(k-1), max_backoff)
  // scaled by a uniform factor in [1 - jitter, 1 + jitter].
  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(10);
  double multiplier = 2.0;
  std::chrono::nanoseconds max_backoff = std::chrono::seconds(1);
  double jitter = 0.2;

  // Clock backoff sleeps against; null = Clock::Real().
  Clock* clock = nullptr;

  static RetryPolicy NoRetry() {
    RetryPolicy p;
    p.max_attempts = 1;
    return p;
  }

  Clock& clock_or_real() const {
    return clock != nullptr ? *clock : Clock::Real();
  }
};

// Whether a failed attempt is worth repeating: transport faults
// (UNAVAILABLE) and blown deadlines (DEADLINE_EXCEEDED). Protocol
// violations, corruption and logic errors are not — repeating them cannot
// help and may retransmit information.
bool IsRetryable(const Status& s);

// Per-operation escalation state. Construct one per logical operation;
// each SleepBeforeRetry() blocks (on the policy clock) for the next
// jittered delay and escalates the base.
class Backoff {
 public:
  // `jitter_seed` feeds a deterministic generator — callers wanting
  // unpredictable jitter seed from SecureRandom, tests pass a constant.
  Backoff(const RetryPolicy& policy, std::uint64_t jitter_seed);

  // Computes the next jittered delay and escalates. Exposed separately
  // from the sleep so tests can inspect the schedule.
  std::chrono::nanoseconds NextDelay();

  void SleepBeforeRetry() { policy_.clock_or_real().SleepFor(NextDelay()); }

 private:
  RetryPolicy policy_;
  std::chrono::nanoseconds base_;
  Rng rng_;
};

}  // namespace lw::net
