#include "net/retry.h"

#include <algorithm>

namespace lw::net {

bool IsRetryable(const Status& s) {
  return s.code() == StatusCode::kUnavailable ||
         s.code() == StatusCode::kDeadlineExceeded;
}

Backoff::Backoff(const RetryPolicy& policy, std::uint64_t jitter_seed)
    : policy_(policy),
      base_(std::max(policy.initial_backoff, std::chrono::nanoseconds(1))),
      rng_(jitter_seed) {}

std::chrono::nanoseconds Backoff::NextDelay() {
  const std::chrono::nanoseconds capped = std::min(base_, policy_.max_backoff);
  // Escalate for next time, saturating at max_backoff to avoid overflow on
  // long retry loops.
  const double next = static_cast<double>(base_.count()) * policy_.multiplier;
  base_ = next >= static_cast<double>(policy_.max_backoff.count())
              ? policy_.max_backoff
              : std::chrono::nanoseconds(static_cast<std::int64_t>(next));
  const double jitter = std::clamp(policy_.jitter, 0.0, 1.0);
  const double scale = 1.0 - jitter + 2.0 * jitter * rng_.UniformDouble();
  return std::chrono::nanoseconds(
      static_cast<std::int64_t>(static_cast<double>(capped.count()) * scale));
}

}  // namespace lw::net
