// Deadline: an absolute point in (injectable) monotonic time by which a
// transport operation must complete.
//
// A deadline is created once per logical operation (a hello exchange, one
// private-GET attempt, a whole page-load batch attempt) and threaded through
// every Send/Receive that operation performs, so the budget is shared: a
// slow first frame leaves less time for the rest. Deadline::Infinite()
// expresses an *intentional* unbounded wait (server long-polls); lwlint's
// `receive-without-deadline` rule forces call sites outside src/net to make
// that choice explicitly.
#pragma once

#include <chrono>
#include <optional>

#include "util/clock.h"

namespace lw::net {

class Deadline {
 public:
  // Default-constructed deadlines are infinite.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  // Expires `timeout` after now on `clock` (null = the real clock).
  // A zero or negative timeout is already expired.
  static Deadline After(std::chrono::nanoseconds timeout,
                        Clock* clock = nullptr) {
    Deadline d;
    d.clock_ = clock;
    d.when_ = d.clock().Now() + timeout;
    return d;
  }

  bool is_infinite() const { return !when_.has_value(); }

  bool expired() const {
    return when_.has_value() && clock().Now() >= *when_;
  }

  // Time left on the budget; zero once expired. Callers must check
  // is_infinite() first — an infinite deadline has no meaningful remainder
  // (we return the maximum representable duration).
  std::chrono::nanoseconds remaining() const {
    if (!when_.has_value()) return std::chrono::nanoseconds::max();
    const std::chrono::nanoseconds left = *when_ - clock().Now();
    return left > std::chrono::nanoseconds::zero()
               ? left
               : std::chrono::nanoseconds::zero();
  }

  Clock& clock() const { return clock_ != nullptr ? *clock_ : Clock::Real(); }

 private:
  Clock* clock_ = nullptr;  // null = Clock::Real()
  std::optional<std::chrono::nanoseconds> when_;  // absolute, per clock()
};

}  // namespace lw::net
