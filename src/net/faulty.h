// Fault-injection transport decorators.
//
// Reusable failure models for exercising the resilience layer (retry,
// deadlines, redial) from tests and benches without real networks or real
// time. Each decorator wraps an inner Transport and perturbs one axis:
//
//   DyingTransport       — connection dies after N operations (crash)
//   FlakyTransport       — next N operations fail, then it recovers
//   DelayTransport       — peer is slow: burns deadline budget on receive
//   CorruptingTransport  — in-path tamperer flips a payload bit
//   RecordingTransport   — captures sent frames for wire-level assertions
//
// DelayTransport is what makes deadline tests deterministic: it sleeps on
// the *deadline's* clock, so with a FakeClock a "slow peer" consumes the
// whole budget and returns DEADLINE_EXCEEDED in zero wall-clock time —
// exactly the observable behaviour of a real stall (docs/ROBUSTNESS.md).
//
// All decorators are thread-safe to the same degree as the inner transport
// (counters are atomic; RecordingTransport's log is mutex-guarded).
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "net/transport.h"

namespace lw::net {

// Kills the connection after a fixed number of operations (sends +
// receives), simulating a mid-protocol crash. Once dead, every operation
// fails UNAVAILABLE and the inner transport is closed.
class DyingTransport final : public Transport {
 public:
  DyingTransport(std::unique_ptr<Transport> inner, int ops_before_death)
      : inner_(std::move(inner)), remaining_(ops_before_death) {}

  using Transport::Receive;
  using Transport::Send;

  Status Send(const Frame& frame, const Deadline& deadline) override {
    if (Expired()) return UnavailableError("injected failure");
    return inner_->Send(frame, deadline);
  }
  Result<Frame> Receive(const Deadline& deadline) override {
    if (Expired()) return UnavailableError("injected failure");
    return inner_->Receive(deadline);
  }
  void Close() override { inner_->Close(); }

 private:
  bool Expired() {
    if (remaining_.fetch_sub(1) <= 0) {
      inner_->Close();
      return true;
    }
    return false;
  }

  std::unique_ptr<Transport> inner_;
  std::atomic<int> remaining_;
};

// Intermittent failure: the next `failures` operations fail UNAVAILABLE
// without touching the inner transport, after which everything succeeds.
// Models a transient network blip that a retry can ride out.
class FlakyTransport final : public Transport {
 public:
  FlakyTransport(std::unique_ptr<Transport> inner, int failures)
      : inner_(std::move(inner)), failures_left_(failures) {}

  using Transport::Receive;
  using Transport::Send;

  Status Send(const Frame& frame, const Deadline& deadline) override {
    if (ConsumeFailure()) return UnavailableError("injected blip");
    return inner_->Send(frame, deadline);
  }
  Result<Frame> Receive(const Deadline& deadline) override {
    if (ConsumeFailure()) return UnavailableError("injected blip");
    return inner_->Receive(deadline);
  }
  void Close() override { inner_->Close(); }

 private:
  bool ConsumeFailure() {
    int left = failures_left_.load(std::memory_order_relaxed);
    while (left > 0) {
      if (failures_left_.compare_exchange_weak(left, left - 1,
                                               std::memory_order_relaxed)) {
        return true;
      }
    }
    return false;
  }

  std::unique_ptr<Transport> inner_;
  std::atomic<int> failures_left_;
};

// A slow peer: every Receive costs `delay` of the deadline's clock before
// the inner transport is consulted. If the delay exceeds the remaining
// budget, the remaining budget is consumed and DEADLINE_EXCEEDED returned —
// under a FakeClock this is instantaneous, making timeout paths fully
// deterministic. Sends are not delayed (the local kernel buffers them).
class DelayTransport final : public Transport {
 public:
  DelayTransport(std::unique_ptr<Transport> inner,
                 std::chrono::nanoseconds delay)
      : inner_(std::move(inner)), delay_(delay) {}

  using Transport::Receive;
  using Transport::Send;

  Status Send(const Frame& frame, const Deadline& deadline) override {
    return inner_->Send(frame, deadline);
  }
  Result<Frame> Receive(const Deadline& deadline) override {
    if (!deadline.is_infinite()) {
      const std::chrono::nanoseconds rem = deadline.remaining();
      if (delay_ >= rem) {
        deadline.clock().SleepFor(rem);
        return DeadlineExceededError("injected slow peer");
      }
    }
    deadline.clock().SleepFor(delay_);
    return inner_->Receive(deadline);
  }
  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<Transport> inner_;
  std::chrono::nanoseconds delay_;
};

// Corrupts every received frame's payload (bit flip mid-payload),
// simulating an in-path tamperer. The client stack must detect this via
// fingerprints/AEAD — never surface fabricated content.
class CorruptingTransport final : public Transport {
 public:
  explicit CorruptingTransport(std::unique_ptr<Transport> inner)
      : inner_(std::move(inner)) {}

  using Transport::Receive;
  using Transport::Send;

  Status Send(const Frame& frame, const Deadline& deadline) override {
    return inner_->Send(frame, deadline);
  }
  Result<Frame> Receive(const Deadline& deadline) override {
    auto frame = inner_->Receive(deadline);
    if (frame.ok() && !frame->payload.empty()) {
      frame->payload[frame->payload.size() / 2] ^= 0x40;
    }
    return frame;
  }
  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<Transport> inner_;
};

// Shared capture log for RecordingTransport. One log can back transports
// from several dial attempts, so a test can compare the wire frames of
// attempt 1 against attempt 2 (e.g. assert retried GETs carry *different*
// DPF key shares).
class FrameLog {
 public:
  void Append(const Frame& frame) {
    std::lock_guard<std::mutex> lock(mu_);
    frames_.push_back(frame);
  }

  std::vector<Frame> Snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return frames_.size();
  }

 private:
  mutable std::mutex mu_;
  std::vector<Frame> frames_;
};

// Records every successfully sent frame into a FrameLog (owned by the
// test) before forwarding. Receives pass through untouched.
class RecordingTransport final : public Transport {
 public:
  RecordingTransport(std::unique_ptr<Transport> inner, FrameLog* log)
      : inner_(std::move(inner)), log_(log) {}

  using Transport::Receive;
  using Transport::Send;

  Status Send(const Frame& frame, const Deadline& deadline) override {
    const Status s = inner_->Send(frame, deadline);
    if (s.ok()) log_->Append(frame);
    return s;
  }
  Result<Frame> Receive(const Deadline& deadline) override {
    return inner_->Receive(deadline);
  }
  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<Transport> inner_;
  FrameLog* log_;
};

}  // namespace lw::net
