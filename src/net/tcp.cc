#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstring>

#include "obs/metrics.h"
#include "util/bytes.h"

namespace lw::net {
namespace {

Status ErrnoStatus(const std::string& what) {
  return UnavailableError(what + ": " + std::strerror(errno));
}

// Waits until `fd` is ready for `events` (POLLIN/POLLOUT) or the deadline
// expires. Infinite deadlines skip the poll entirely — send/recv block in
// the kernel as before — unless `force_poll` is set, which the EAGAIN
// resume path uses: a non-blocking descriptor never blocks in the kernel,
// so the poll is the only wait there is. Note the wait is real time even if
// the deadline carries a fake clock: a TCP socket cannot be driven by
// virtual time, so deterministic deadline tests use the
// in-memory/fault-injection transports instead (docs/ROBUSTNESS.md).
Status WaitReady(int fd, short events, const Deadline& deadline,
                 const char* what, bool force_poll = false) {
  if (deadline.is_infinite()) {
    if (!force_poll) return Status::Ok();
    for (;;) {
      pollfd pfd{fd, events, 0};
      const int rc = ::poll(&pfd, 1, -1);
      if (rc > 0) return Status::Ok();
      if (rc < 0 && errno != EINTR) return ErrnoStatus("poll");
      obs::M().net_eintr_retries.Inc();
    }
  }
  for (;;) {
    const std::chrono::nanoseconds rem = deadline.remaining();
    if (rem <= std::chrono::nanoseconds::zero()) {
      return DeadlineExceededError(std::string(what) + " deadline expired");
    }
    const auto ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(rem).count() + 1;
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, ms > 60'000 ? 60'000 : static_cast<int>(ms));
    if (rc < 0) {
      if (errno == EINTR) {
        obs::M().net_eintr_retries.Inc();
        continue;
      }
      return ErrnoStatus("poll");
    }
    if (rc > 0) return Status::Ok();  // readable/writable, or error/hup —
                                      // let send/recv report the real error.
  }
}

// Full-buffer send, EINTR-safe, SIGPIPE suppressed, bounded by `deadline`.
Status SendAll(int fd, const std::uint8_t* data, std::size_t n,
               const Deadline& deadline) {
  std::size_t done = 0;
  while (done < n) {
    LW_RETURN_IF_ERROR(WaitReady(fd, POLLOUT, deadline, "send"));
    // Blocking by design: this is the threaded A/B serve path; the reactor
    // path writes via per-connection send queues (net/reactor.cc).
    // lwlint: allow(blocking-in-reactor)
    const ssize_t w = ::send(fd, data + done, n - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        obs::M().net_eintr_retries.Inc();
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // A non-blocking descriptor (or a full socket buffer after a short
        // write) is not a transport error: wait for writability — even
        // under an infinite deadline, where the pre-send WaitReady skipped
        // the poll — and resume from `done`.
        LW_RETURN_IF_ERROR(
            WaitReady(fd, POLLOUT, deadline, "send", /*force_poll=*/true));
        continue;
      }
      obs::M().net_write_errors.Inc();
      return ErrnoStatus("send");
    }
    obs::M().net_bytes_sent.Inc(static_cast<std::uint64_t>(w));
    done += static_cast<std::size_t>(w);
  }
  return Status::Ok();
}

// Full-buffer receive; UNAVAILABLE on orderly close mid-message too (the
// caller distinguishes close-at-frame-boundary via the `eof_ok` flag).
Status RecvAll(int fd, std::uint8_t* data, std::size_t n, bool eof_ok,
               bool* clean_eof, const Deadline& deadline) {
  if (clean_eof != nullptr) *clean_eof = false;
  std::size_t done = 0;
  while (done < n) {
    LW_RETURN_IF_ERROR(WaitReady(fd, POLLIN, deadline, "receive"));
    // Blocking by design: threaded A/B serve path (see SendAll).
    // lwlint: allow(blocking-in-reactor)
    const ssize_t r = ::recv(fd, data + done, n - done, 0);
    if (r < 0) {
      if (errno == EINTR) {
        obs::M().net_eintr_retries.Inc();
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Same resume rule as SendAll: poll for readability and continue.
        LW_RETURN_IF_ERROR(
            WaitReady(fd, POLLIN, deadline, "receive", /*force_poll=*/true));
        continue;
      }
      obs::M().net_read_errors.Inc();
      return ErrnoStatus("recv");
    }
    if (r == 0) {
      if (done == 0 && eof_ok && clean_eof != nullptr) *clean_eof = true;
      // Orderly close at a frame boundary is the normal end of a
      // connection, not a read error.
      if (done != 0 || !eof_ok) obs::M().net_read_errors.Inc();
      return UnavailableError("connection closed by peer");
    }
    obs::M().net_bytes_received.Inc(static_cast<std::uint64_t>(r));
    done += static_cast<std::size_t>(r);
  }
  return Status::Ok();
}

class TcpTransport final : public Transport {
 public:
  explicit TcpTransport(int fd) : fd_(fd) {}

  ~TcpTransport() override {
    Close();
    const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
    if (fd >= 0) ::close(fd);
  }

  using Transport::Receive;
  using Transport::Send;

  Status Send(const Frame& frame, const Deadline& deadline) override {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0 || closed_.load(std::memory_order_acquire)) {
      return UnavailableError("transport closed");
    }
    const std::size_t body = 1 + frame.payload.size();
    if (body > kMaxFrameSize) {
      return InvalidArgumentError("frame exceeds kMaxFrameSize");
    }
    Bytes wire(4 + body);
    StoreLE32(wire.data(), static_cast<std::uint32_t>(body));
    wire[4] = frame.type;
    std::copy(frame.payload.begin(), frame.payload.end(), wire.begin() + 5);
    return SendAll(fd, wire.data(), wire.size(), deadline);
  }

  Result<Frame> Receive(const Deadline& deadline) override {
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd < 0 || closed_.load(std::memory_order_acquire)) {
      return UnavailableError("transport closed");
    }
    std::uint8_t header[4];
    bool clean_eof = false;
    LW_RETURN_IF_ERROR(
        RecvAll(fd, header, 4, /*eof_ok=*/true, &clean_eof, deadline));
    const std::uint32_t body = LoadLE32(header);
    if (body == 0 || body > kMaxFrameSize) {
      return ProtocolError("bad frame length " + std::to_string(body));
    }
    Bytes buf(body);
    LW_RETURN_IF_ERROR(RecvAll(fd, buf.data(), body, false, nullptr, deadline));
    Frame f;
    f.type = buf[0];
    f.payload.assign(buf.begin() + 1, buf.end());
    return f;
  }

  // Wakes any thread blocked in Send/Receive (shutdown makes recv return 0)
  // and marks the transport closed. The descriptor itself is released only
  // in the destructor, after every user is gone: closing here would race a
  // concurrent recv, and the kernel could reuse the fd number mid-call.
  void Close() override {
    if (closed_.exchange(true, std::memory_order_acq_rel)) return;
    const int fd = fd_.load(std::memory_order_acquire);
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }

 private:
  std::atomic<int> fd_;
  std::atomic<bool> closed_{false};
};

void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

}  // namespace

Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                              std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("invalid IPv4 address: " + host);
  }
  int rc;
  do {
    // Blocking by design: the thread-per-connection A/B dial path; the
    // reactor dials via TcpConnectStart + EPOLLOUT (net/reactor.cc).
    // lwlint: allow(blocking-in-reactor)
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) {
    const Status s = ErrnoStatus("connect");
    ::close(fd);
    return s;
  }
  SetNoDelay(fd);
  return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(fd));
}

Result<int> TcpConnectStart(const std::string& host, std::uint16_t port) {
  const int fd =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) return ErrnoStatus("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return InvalidArgumentError("invalid IPv4 address: " + host);
  }
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
  } while (rc < 0 && errno == EINTR);
  // EINPROGRESS is the non-blocking success: the three-way handshake
  // continues in the kernel and completion (or refusal) is reported via
  // EPOLLOUT + SO_ERROR. rc == 0 (instant loopback connect) is fine too —
  // the epoll registration still sees the socket writable immediately.
  if (rc < 0 && errno != EINPROGRESS) {
    const Status s = ErrnoStatus("connect");
    ::close(fd);
    return s;
  }
  return fd;
}

Result<TcpListener> TcpListener::Listen(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const Status s = ErrnoStatus("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 64) < 0) {
    const Status s = ErrnoStatus("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const Status s = ErrnoStatus("getsockname");
    ::close(fd);
    return s;
  }
  return TcpListener(fd, ntohs(addr.sin_port));
}

TcpListener::TcpListener(TcpListener&& other) noexcept
    : fd_(other.fd_.exchange(-1)), port_(other.port_) {}

TcpListener& TcpListener::operator=(TcpListener&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1));
    port_ = other.port_;
  }
  return *this;
}

TcpListener::~TcpListener() { Close(); }

Result<std::unique_ptr<Transport>> TcpListener::Accept() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return UnavailableError("listener closed");
  int client;
  do {
    // Blocking by design: the thread-per-connection A/B path accepts here;
    // the reactor accepts non-blockingly via accept4 (net/reactor.cc).
    // lwlint: allow(blocking-in-reactor)
    client = ::accept(fd, nullptr, nullptr);
    if (client < 0 && errno == EINTR) obs::M().net_eintr_retries.Inc();
  } while (client < 0 && errno == EINTR);
  if (client < 0) {
    obs::M().net_accept_errors.Inc();
    return ErrnoStatus("accept");
  }
  obs::M().net_accepts.Inc();
  SetNoDelay(client);
  return std::unique_ptr<Transport>(std::make_unique<TcpTransport>(client));
}

void TcpListener::Close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

}  // namespace lw::net
