// Event-driven server core: a non-blocking epoll reactor.
//
// One loop thread owns every registered socket: it accepts new connections
// (accept4 + SOCK_NONBLOCK), drains readable sockets into per-connection
// receive buffers, parses complete ZLTP frames out of them, and flushes
// per-connection send queues as sockets become writable. Nothing on the
// loop ever blocks in the kernel, so one thread multiplexes thousands of
// connections — the thread-per-connection serve path keeps the kernel
// scheduler in charge of who runs; the reactor hands that decision to the
// batch scheduler's admission queue instead (docs/ARCHITECTURE.md).
//
// Division of labor:
//
//   loop thread      accept, read, frame parsing, write flushing, timers.
//                    Handler::on_frame runs here and MUST NOT block — it
//                    decodes and hands off (e.g. BatchScheduler::SubmitAsync
//                    or a ReactorDispatcher worker) and returns.
//   any thread       Send() appends wire bytes to the connection's send
//                    queue and wakes the loop via an eventfd; the loop owns
//                    the actual write() calls, including partial-write
//                    resume under EAGAIN.
//   compute threads  completion callbacks (batch scan workers, dispatcher
//                    workers) call Send()/CloseAfterFlush() to queue
//                    replies; they never touch the socket directly.
//
// Deadlines ride the loop, not per-thread poll() calls: an idle timeout
// (no complete frame in N ms — the slow-loris guard) and a write-stall
// timeout (queued reply bytes making no progress) are checked against an
// injectable lw::Clock each iteration, so FakeClock tests drive expiry
// deterministically via Advance() + Wakeup() with zero real waiting.
//
// The blocking thread-per-connection path (tcp.h + ServeConnection loops)
// stays compilable behind --serve-mode=threaded for A/B runs and
// equivalence tests, mirroring the batch engine's --serial-batches knob.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/tcp.h"
#include "net/transport.h"
#include "util/clock.h"
#include "util/status.h"

namespace lw::net {

class Reactor {
 public:
  // Identifies one accepted connection for the lifetime of the reactor.
  // Ids are never reused, so a stale id after a close is a harmless no-op,
  // never a message to the wrong peer.
  using ConnId = std::uint64_t;

  // Per-listener callbacks. All three run on the loop thread.
  struct Handler {
    // A connection was accepted and registered.
    std::function<void(ConnId)> on_open;
    // One complete frame arrived. Must not block (see file comment).
    std::function<void(ConnId, Frame)> on_frame;
    // The connection is gone (peer close, protocol error, timer expiry, or
    // an explicit close); the id is dead after this returns.
    std::function<void(ConnId, const Status&)> on_close;
  };

  struct Options {
    // Time source for the idle/write-stall timers. null = Clock::Real().
    Clock* clock = nullptr;
    // Close a connection that has not completed a frame in this long
    // (slow-loris guard: a peer trickling one byte per minute holds a
    // buffer, not a thread, but should still not hold it forever).
    // zero = disabled.
    std::chrono::milliseconds idle_timeout{0};
    // Close a connection whose queued replies make no write progress in
    // this long (peer stopped reading). zero = disabled.
    std::chrono::milliseconds write_stall_timeout{0};
    // Hard cap on bytes queued for one connection; exceeding it closes the
    // connection (a reader this far behind is abusive or dead — unbounded
    // queues are how one slow peer eats the server's memory).
    std::size_t max_send_queue_bytes = 64 * 1024 * 1024;
  };

  Reactor();  // default Options
  explicit Reactor(Options options);
  ~Reactor();  // Stop()s.

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  // Registers a listening socket; every connection it accepts is served
  // with `handler`. Callable before or after Start(). The listener is
  // owned (and closed) by the reactor from here on.
  Status AddListener(TcpListener listener, Handler handler);

  // Dials host:port without blocking the caller: the connect starts
  // non-blocking (TcpConnectStart) and the loop completes the handshake on
  // EPOLLOUT via SO_ERROR. The returned id is usable immediately — Send()
  // queues frames that flush once the handshake finishes; on_open fires
  // (loop thread) when it does, and a refused or unreachable peer surfaces
  // as on_close with the connect error. Outbound connections are exempt
  // from idle_timeout once established — a healthy client link is quiet
  // between requests — but the handshake itself is covered by it, so a
  // peer that never completes the dial is shed like a slow-loris.
  Result<ConnId> Connect(const std::string& host, std::uint16_t port,
                         Handler handler);

  // Spawns the loop thread. INVALID_ARGUMENT if already started.
  Status Start();

  // Closes every connection and listener, then joins the loop thread.
  // on_close fires for each open connection. Idempotent.
  void Stop();

  // Blocks until Stop() is called (serving mains park here).
  void Join();

  // Queues one frame for `id` and wakes the loop to flush it. Thread-safe;
  // callable from handlers and from compute threads. UNAVAILABLE if the
  // connection is gone or closing; RESOURCE_EXHAUSTED if the send queue is
  // over max_send_queue_bytes (the connection is then closed).
  Status Send(ConnId id, const Frame& frame);

  // Immediate close: drops queued writes, fires on_close from the loop.
  void Close(ConnId id);

  // Graceful close: stops reading, flushes the send queue, then closes.
  // The ZLTP "error frame then hang up" and Bye paths need this — an
  // immediate close would race the reply out of existence.
  void CloseAfterFlush(ConnId id);

  // Open (accepted, not yet closed) connections.
  std::size_t connection_count() const;

  // Wakes the loop for a timer re-check; FakeClock tests call this after
  // Advance() so expiry does not wait for real-time epoll timeouts.
  void Wakeup();

 private:
  struct Conn {
    int fd = -1;
    ConnId id = 0;
    std::shared_ptr<const Handler> handler;
    // Receive side (loop thread only): unparsed wire bytes.
    Bytes rbuf;
    std::size_t rhead = 0;  // parse cursor into rbuf
    // Send side (guarded by Reactor::mu_): wire-encoded frames, with a
    // resume offset into the front frame after a short write.
    std::deque<Bytes> sendq;
    std::size_t send_off = 0;
    std::size_t queued_bytes = 0;
    bool want_write = false;     // EPOLLOUT armed
    bool draining = false;       // CloseAfterFlush: no reads, flush, close
    bool dead = false;           // removal scheduled
    bool outbound = false;       // dialed by Connect(), not accepted
    bool connecting = false;     // handshake pending; EPOLLOUT completes it
    Status close_reason = Status::Ok();        // first MarkDead reason wins
    std::chrono::nanoseconds last_frame{};     // idle timer basis
    std::chrono::nanoseconds last_progress{};  // write-stall timer basis
  };

  struct Listener {
    TcpListener listener;
    std::shared_ptr<const Handler> handler;
  };

  void LoopThread();
  void HandleAccept(Listener& lst);
  // Completes (or fails) an outbound handshake once epoll reports the
  // socket writable: SO_ERROR == 0 establishes the connection and flushes
  // any frames queued while connecting; anything else closes it.
  void FinishConnect(Conn& conn, std::uint32_t events);
  void HandleReadable(Conn& conn);
  // Parses complete frames out of conn.rbuf and dispatches them. Returns
  // false (and schedules removal) on a framing violation.
  bool ParseFrames(Conn& conn);
  // Flushes the send queue until empty or EAGAIN; arms/disarms EPOLLOUT.
  // Returns false if the connection died on a write error.
  bool FlushSends(Conn& conn);
  // Marks a connection for removal; the loop's sweep phase does the actual
  // teardown so handlers can close the connection they are handling without
  // pulling the rug out from under the frame-dispatch loop. mu_ held.
  void MarkDeadLocked(Conn& conn, Status why);
  // Re-registers epoll interest from draining/want_write. mu_ held.
  void UpdateInterestLocked(Conn& conn);
  void RemoveConn(ConnId id);  // loop thread: epoll DEL, close, on_close
  void SweepDead();            // loop thread: RemoveConn every marked conn
  void DrainAll();             // shutdown: every conn + listener torn down
  void CheckTimers();
  int NextTimeoutMs();
  void ArmWrites();  // applies Send()'s cross-thread write-interest marks

  Options options_;
  Clock* clock_;  // never null

  int epoll_fd_ = -1;
  int wake_fd_ = -1;  // eventfd: cross-thread Send()/Wakeup()/Stop() signal

  mutable std::mutex mu_;  // conns_ map, send queues, write_pending_, state
  std::map<ConnId, std::unique_ptr<Conn>> conns_;
  std::map<ConnId, Listener> listeners_;  // listener ids share the id space
  std::vector<ConnId> write_pending_;     // Send() marks, loop drains
  std::vector<ConnId> dead_pending_;      // MarkDead marks, sweep removes
  ConnId next_id_ = 1;
  bool started_ = false;
  bool stopping_ = false;

  std::mutex join_mu_;
  std::condition_variable join_cv_;
  bool stopped_ = false;

  std::thread loop_;
};

}  // namespace lw::net
