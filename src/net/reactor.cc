#include "net/reactor.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/bytes.h"
#include "util/check.h"

namespace lw::net {
namespace {

// The eventfd's slot in epoll's user-data id space; connection and listener
// ids start at 1 so 0 is unambiguous.
constexpr Reactor::ConnId kWakeId = 0;

// Per-recv scratch: large enough that one syscall usually drains a request
// frame, small enough to live on the loop's stack.
constexpr std::size_t kReadChunk = 64 * 1024;

// A parse cursor this deep into the receive buffer triggers compaction, so
// a pipelining client cannot grow the buffer without bound.
constexpr std::size_t kCompactThreshold = 64 * 1024;

Status ErrnoStatus(const std::string& what) {
  return UnavailableError(what + ": " + std::strerror(errno));
}

void SetNoDelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
}

// Wire-encodes one frame exactly as TcpTransport::Send does: u32 LE body
// length, then type byte, then payload.
Bytes EncodeWire(const Frame& frame) {
  const std::size_t body = 1 + frame.payload.size();
  Bytes wire(4 + body);
  StoreLE32(wire.data(), static_cast<std::uint32_t>(body));
  wire[4] = frame.type;
  std::copy(frame.payload.begin(), frame.payload.end(), wire.begin() + 5);
  return wire;
}

}  // namespace

Reactor::Reactor() : Reactor(Options{}) {}

Reactor::Reactor(Options options)
    : options_(options),
      clock_(options.clock != nullptr ? options.clock : &Clock::Real()) {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  LW_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  LW_CHECK_MSG(wake_fd_ >= 0, "eventfd failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeId;
  LW_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev) == 0,
               "epoll_ctl(wake) failed");
}

Reactor::~Reactor() {
  Stop();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

Status Reactor::AddListener(TcpListener listener, Handler handler) {
  const int fd = listener.fd();
  if (fd < 0) return InvalidArgumentError("listener is closed");
  // The loop must never block in accept: the listening socket goes
  // non-blocking here, and HandleAccept drains until EAGAIN.
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return ErrnoStatus("fcntl(O_NONBLOCK)");
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_) return UnavailableError("reactor stopped");
  const ConnId id = next_id_++;
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.u64 = id;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
    return ErrnoStatus("epoll_ctl(listener)");
  }
  listeners_.emplace(
      id, Listener{std::move(listener),
                   std::make_shared<const Handler>(std::move(handler))});
  return Status::Ok();
}

Result<Reactor::ConnId> Reactor::Connect(const std::string& host,
                                         std::uint16_t port,
                                         Handler handler) {
  LW_ASSIGN_OR_RETURN(const int fd, TcpConnectStart(host, port));
  auto conn = std::make_unique<Conn>();
  conn->fd = fd;
  conn->outbound = true;
  conn->connecting = true;
  conn->handler = std::make_shared<const Handler>(std::move(handler));
  const std::chrono::nanoseconds now = clock_->Now();
  conn->last_frame = now;
  conn->last_progress = now;
  ConnId id = 0;
  {
    // Registration is atomic with the stopping check: a Stop() racing this
    // call either sees the connection in conns_ (and tears it down) or the
    // fd is closed right here.
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      ::close(fd);
      return UnavailableError("reactor stopped");
    }
    id = next_id_++;
    conn->id = id;
    epoll_event ev{};
    // EPOLLOUT reports handshake completion (with EPOLLERR on failure);
    // read interest is armed by FinishConnect once established.
    ev.events = EPOLLOUT;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      const Status s = ErrnoStatus("epoll_ctl(connect)");
      ::close(fd);
      return s;
    }
    conns_.emplace(id, std::move(conn));
  }
  obs::M().reactor_connections.Add(1);
  Wakeup();
  return id;
}

Status Reactor::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (started_) return InvalidArgumentError("reactor already started");
  if (stopping_) return UnavailableError("reactor stopped");
  started_ = true;
  loop_ = std::thread([this] { LoopThread(); });
  return Status::Ok();
}

void Reactor::Stop() {
  std::thread loop;
  bool was_started = false;
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      // A concurrent (or earlier) Stop owns the teardown; wait it out.
      lock.unlock();
      Join();
      return;
    }
    stopping_ = true;
    was_started = started_;
    loop = std::move(loop_);
  }
  Wakeup();
  if (loop.joinable()) loop.join();
  // The loop tears everything down on its way out; when it never ran, the
  // stopping thread does it here.
  if (!was_started) DrainAll();
  {
    std::lock_guard<std::mutex> lock(join_mu_);
    stopped_ = true;
  }
  join_cv_.notify_all();
}

void Reactor::Join() {
  std::unique_lock<std::mutex> lock(join_mu_);
  join_cv_.wait(lock, [this] { return stopped_; });
}

void Reactor::Wakeup() {
  const std::uint64_t one = 1;
  if (wake_fd_ >= 0) {
    [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
  }
}

std::size_t Reactor::connection_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conns_.size();
}

Status Reactor::Send(ConnId id, const Frame& frame) {
  if (1 + frame.payload.size() > kMaxFrameSize) {
    return InvalidArgumentError("frame exceeds kMaxFrameSize");
  }
  Bytes wire = EncodeWire(frame);
  Status result = Status::Ok();
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(id);
    if (it == conns_.end() || it->second->dead || it->second->draining) {
      return UnavailableError("connection closed");
    }
    Conn& conn = *it->second;
    if (conn.queued_bytes + wire.size() > options_.max_send_queue_bytes) {
      // A reader this far behind never catches up; shedding the connection
      // bounds per-connection memory (see Options::max_send_queue_bytes).
      result = ResourceExhaustedError("send queue over max_send_queue_bytes");
      MarkDeadLocked(conn, result);
    } else {
      conn.queued_bytes += wire.size();
      obs::M().reactor_send_backlog_bytes.Add(
          static_cast<std::int64_t>(wire.size()));
      conn.sendq.push_back(std::move(wire));
      write_pending_.push_back(id);
    }
  }
  Wakeup();
  return result;
}

void Reactor::Close(ConnId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;
    MarkDeadLocked(*it->second, Status::Ok());
  }
  Wakeup();
}

void Reactor::CloseAfterFlush(ConnId id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(id);
    if (it == conns_.end() || it->second->dead) return;
    Conn& conn = *it->second;
    conn.draining = true;
    if (conn.sendq.empty()) {
      MarkDeadLocked(conn, Status::Ok());
    } else {
      // The flush path owns the rest: stop reading, keep EPOLLOUT until
      // the queue drains, then MarkDead from FlushSends.
      write_pending_.push_back(id);
    }
  }
  Wakeup();
}

void Reactor::MarkDeadLocked(Conn& conn, Status why) {
  if (conn.dead) return;
  conn.dead = true;
  conn.close_reason = std::move(why);
  dead_pending_.push_back(conn.id);
}

void Reactor::UpdateInterestLocked(Conn& conn) {
  epoll_event ev{};
  // A connecting socket stays EPOLLOUT-only until the handshake resolves —
  // even a CloseAfterFlush mid-dial must keep it armed or the connect
  // never completes and the drain never finishes.
  ev.events = conn.connecting
                  ? EPOLLOUT
                  : ((conn.draining ? 0u : (EPOLLIN | EPOLLRDHUP)) |
                     (conn.want_write ? EPOLLOUT : 0u));
  ev.data.u64 = conn.id;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &ev);
}

void Reactor::LoopThread() {
  std::vector<epoll_event> events(128);
  for (;;) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) break;
    }
    // Flush cross-thread Send() marks before sleeping so no queued reply
    // waits for an unrelated event.
    ArmWrites();
    SweepDead();
    const int timeout_ms = NextTimeoutMs();
    const int n = ::epoll_wait(epoll_fd_, events.data(),
                               static_cast<int>(events.size()), timeout_ms);
    const auto busy_start = obs::TraceNow();
    if (n < 0) {
      if (errno == EINTR) {
        obs::M().net_eintr_retries.Inc();
        continue;
      }
      break;  // epoll fd itself is broken; tear down
    }
    obs::M().reactor_wakeups.Inc();
    for (int i = 0; i < n; ++i) {
      const ConnId id = events[i].data.u64;
      const std::uint32_t ev = events[i].events;
      if (id == kWakeId) {
        std::uint64_t drained = 0;
        [[maybe_unused]] const ssize_t r =
            ::read(wake_fd_, &drained, sizeof drained);
        continue;
      }
      Conn* conn = nullptr;
      Listener* listener = nullptr;
      {
        std::lock_guard<std::mutex> lock(mu_);
        auto cit = conns_.find(id);
        if (cit != conns_.end()) {
          if (cit->second->dead) continue;
          conn = cit->second.get();
        } else {
          auto lit = listeners_.find(id);
          if (lit == listeners_.end()) continue;  // removed mid-batch
          listener = &lit->second;
        }
      }
      // Conn/Listener objects are only destroyed by this thread (SweepDead
      // / DrainAll), so the raw pointers stay valid past the unlock.
      if (listener != nullptr) {
        HandleAccept(*listener);
        continue;
      }
      {
        bool connecting = false;
        {
          std::lock_guard<std::mutex> lock(mu_);
          connecting = conn->connecting;
        }
        if (connecting) {
          // Any event on a connecting socket resolves the handshake:
          // EPOLLOUT alone is success, EPOLLERR/EPOLLHUP carry the error
          // in SO_ERROR.
          FinishConnect(*conn, ev);
          continue;
        }
      }
      if ((ev & EPOLLOUT) != 0) {
        if (!FlushSends(*conn)) continue;
      }
      if ((ev & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP)) != 0) {
        HandleReadable(*conn);
      }
    }
    CheckTimers();
    SweepDead();
    obs::M().reactor_loop_ns.Observe(obs::ElapsedNs(busy_start));
  }
  DrainAll();
}

void Reactor::HandleAccept(Listener& lst) {
  for (;;) {
    const int cfd = ::accept4(lst.listener.fd(), nullptr, nullptr,
                              SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (cfd < 0) {
      if (errno == EINTR) {
        obs::M().net_eintr_retries.Inc();
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      // EMFILE/ECONNABORTED and friends: count it and keep serving the
      // connections we do have rather than taking the loop down.
      obs::M().net_accept_errors.Inc();
      return;
    }
    obs::M().net_accepts.Inc();
    SetNoDelay(cfd);
    auto conn = std::make_unique<Conn>();
    conn->fd = cfd;
    conn->handler = lst.handler;
    const std::chrono::nanoseconds now = clock_->Now();
    conn->last_frame = now;
    conn->last_progress = now;
    ConnId id = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      id = next_id_++;
      conn->id = id;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP;
    ev.data.u64 = id;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, cfd, &ev) != 0) {
      ::close(cfd);
      obs::M().net_accept_errors.Inc();
      continue;
    }
    const Handler& handler = *lst.handler;
    {
      std::lock_guard<std::mutex> lock(mu_);
      conns_.emplace(id, std::move(conn));
    }
    obs::M().reactor_connections.Add(1);
    if (handler.on_open) handler.on_open(id);
  }
}

void Reactor::FinishConnect(Conn& conn, std::uint32_t events) {
  int err = 0;
  socklen_t len = sizeof err;
  if (::getsockopt(conn.fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0) {
    err = errno;
  }
  if (err == 0 && (events & (EPOLLERR | EPOLLHUP)) != 0) {
    // Belt and braces: an error event with a clean SO_ERROR still means
    // the dial did not produce a usable connection.
    err = ECONNREFUSED;
  }
  if (err != 0) {
    std::lock_guard<std::mutex> lock(mu_);
    MarkDeadLocked(conn, UnavailableError(std::string("connect: ") +
                                          std::strerror(err)));
    return;
  }
  SetNoDelay(conn.fd);
  std::shared_ptr<const Handler> handler;
  bool flush = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conn.connecting = false;
    const std::chrono::nanoseconds now = clock_->Now();
    conn.last_frame = now;
    conn.last_progress = now;
    conn.want_write = false;
    UpdateInterestLocked(conn);
    handler = conn.handler;
    flush = !conn.sendq.empty();
  }
  if (handler->on_open) handler->on_open(conn.id);
  // Frames queued by Send() while the handshake was pending go out now.
  if (flush) FlushSends(conn);
}

void Reactor::HandleReadable(Conn& conn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    // A draining connection reads nothing more; stale EPOLLIN from before
    // the interest update is ignored.
    if (conn.dead || conn.draining) return;
  }
  std::uint8_t buf[kReadChunk];
  for (;;) {
    const ssize_t r = ::recv(conn.fd, buf, sizeof buf, MSG_DONTWAIT);
    if (r > 0) {
      obs::M().net_bytes_received.Inc(static_cast<std::uint64_t>(r));
      conn.rbuf.insert(conn.rbuf.end(), buf, buf + r);
      if (!ParseFrames(conn)) return;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (conn.dead || conn.draining) return;  // a handler closed us
      }
      continue;
    }
    if (r == 0) {
      // EOF. Orderly close at a frame boundary is the normal end of a
      // connection; bytes of an unfinished frame make it a read error.
      const bool mid_frame = conn.rhead < conn.rbuf.size();
      if (mid_frame) obs::M().net_read_errors.Inc();
      std::lock_guard<std::mutex> lock(mu_);
      MarkDeadLocked(conn, mid_frame ? UnavailableError(
                                           "connection closed mid-frame")
                                     : Status::Ok());
      return;
    }
    if (errno == EINTR) {
      obs::M().net_eintr_retries.Inc();
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    obs::M().net_read_errors.Inc();
    std::lock_guard<std::mutex> lock(mu_);
    MarkDeadLocked(conn, ErrnoStatus("recv"));
    return;
  }
}

bool Reactor::ParseFrames(Conn& conn) {
  for (;;) {
    const std::size_t avail = conn.rbuf.size() - conn.rhead;
    if (avail < 4) break;
    const std::uint32_t body = LoadLE32(conn.rbuf.data() + conn.rhead);
    if (body == 0 || body > kMaxFrameSize) {
      std::lock_guard<std::mutex> lock(mu_);
      MarkDeadLocked(conn,
                     ProtocolError("bad frame length " + std::to_string(body)));
      return false;
    }
    if (avail < 4 + static_cast<std::size_t>(body)) break;
    Frame frame;
    frame.type = conn.rbuf[conn.rhead + 4];
    frame.payload.assign(conn.rbuf.begin() + conn.rhead + 5,
                         conn.rbuf.begin() + conn.rhead + 4 + body);
    conn.rhead += 4 + body;
    conn.last_frame = clock_->Now();
    obs::M().reactor_frames.Inc();
    if (conn.handler->on_frame) conn.handler->on_frame(conn.id, std::move(frame));
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (conn.dead || conn.draining) break;
    }
  }
  if (conn.rhead == conn.rbuf.size()) {
    conn.rbuf.clear();
    conn.rhead = 0;
  } else if (conn.rhead > kCompactThreshold) {
    conn.rbuf.erase(conn.rbuf.begin(),
                    conn.rbuf.begin() + static_cast<std::ptrdiff_t>(conn.rhead));
    conn.rhead = 0;
  }
  return true;
}

bool Reactor::FlushSends(Conn& conn) {
  std::lock_guard<std::mutex> lock(mu_);
  if (conn.dead) return false;
  // No writes mid-handshake: FinishConnect flushes the queue on success.
  if (conn.connecting) return true;
  while (!conn.sendq.empty()) {
    const Bytes& front = conn.sendq.front();
    const std::size_t left = front.size() - conn.send_off;
    const ssize_t w = ::send(conn.fd, front.data() + conn.send_off, left,
                             MSG_DONTWAIT | MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) {
        obs::M().net_eintr_retries.Inc();
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Socket buffer full: remember where we are in the front frame and
        // let EPOLLOUT resume the write exactly there.
        obs::M().reactor_partial_writes.Inc();
        if (!conn.want_write) {
          conn.want_write = true;
          UpdateInterestLocked(conn);
        }
        return true;
      }
      obs::M().net_write_errors.Inc();
      MarkDeadLocked(conn, ErrnoStatus("send"));
      return false;
    }
    obs::M().net_bytes_sent.Inc(static_cast<std::uint64_t>(w));
    obs::M().reactor_send_backlog_bytes.Sub(static_cast<std::int64_t>(w));
    conn.queued_bytes -= static_cast<std::size_t>(w);
    conn.send_off += static_cast<std::size_t>(w);
    conn.last_progress = clock_->Now();
    if (conn.send_off == front.size()) {
      conn.sendq.pop_front();
      conn.send_off = 0;
    } else {
      // Short write: the kernel took part of the frame. Stay in the loop —
      // the next send either takes more or reports EAGAIN.
      obs::M().reactor_partial_writes.Inc();
    }
  }
  if (conn.want_write) {
    conn.want_write = false;
    UpdateInterestLocked(conn);
  }
  if (conn.draining) MarkDeadLocked(conn, Status::Ok());
  return true;
}

void Reactor::ArmWrites() {
  std::vector<ConnId> pending;
  {
    std::lock_guard<std::mutex> lock(mu_);
    pending.swap(write_pending_);
  }
  for (const ConnId id : pending) {
    Conn* conn = nullptr;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = conns_.find(id);
      if (it == conns_.end() || it->second->dead) continue;
      conn = it->second.get();
      if (conn->draining) UpdateInterestLocked(*conn);  // drop EPOLLIN
    }
    FlushSends(*conn);
  }
}

void Reactor::CheckTimers() {
  const bool idle_on = options_.idle_timeout.count() > 0;
  const bool stall_on = options_.write_stall_timeout.count() > 0;
  if (!idle_on && !stall_on) return;
  const std::chrono::nanoseconds now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [id, conn] : conns_) {
    if (conn->dead) continue;
    // Established outbound links are exempt from the idle timer: a healthy
    // client link is quiet between requests. The handshake itself is still
    // covered (connecting == true), so a dial that never completes is shed.
    if (idle_on && !conn->draining && (!conn->outbound || conn->connecting) &&
        now - conn->last_frame >= options_.idle_timeout) {
      obs::M().reactor_timer_closes.Inc();
      MarkDeadLocked(*conn, DeadlineExceededError(
                                "no complete frame within idle_timeout"));
      continue;
    }
    if (stall_on && !conn->sendq.empty() &&
        now - conn->last_progress >= options_.write_stall_timeout) {
      obs::M().reactor_timer_closes.Inc();
      MarkDeadLocked(*conn, DeadlineExceededError(
                                "queued replies made no write progress"));
    }
  }
}

int Reactor::NextTimeoutMs() {
  const bool idle_on = options_.idle_timeout.count() > 0;
  const bool stall_on = options_.write_stall_timeout.count() > 0;
  if (!idle_on && !stall_on) return -1;  // pure event-driven
  std::lock_guard<std::mutex> lock(mu_);
  if (conns_.empty()) return -1;
  // A FakeClock advances without real time passing; short real slices keep
  // the timers honest even if a test forgets to Wakeup() after Advance().
  if (clock_ != &Clock::Real()) return 10;
  const std::chrono::nanoseconds now = clock_->Now();
  std::chrono::nanoseconds next = std::chrono::nanoseconds::max();
  for (const auto& [id, conn] : conns_) {
    if (conn->dead) continue;
    if (idle_on && !conn->draining && (!conn->outbound || conn->connecting)) {
      next = std::min(next, conn->last_frame + options_.idle_timeout - now);
    }
    if (stall_on && !conn->sendq.empty()) {
      next = std::min(next,
                      conn->last_progress + options_.write_stall_timeout - now);
    }
  }
  if (next == std::chrono::nanoseconds::max()) return -1;
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(next).count() + 1;
  if (ms < 1) return 1;
  return ms > 60'000 ? 60'000 : static_cast<int>(ms);
}

void Reactor::SweepDead() {
  std::vector<ConnId> ids;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ids.swap(dead_pending_);
  }
  for (const ConnId id : ids) RemoveConn(id);
}

void Reactor::RemoveConn(ConnId id) {
  std::unique_ptr<Conn> conn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = conns_.find(id);
    if (it == conns_.end()) return;  // already removed
    conn = std::move(it->second);
    conns_.erase(it);
  }
  obs::M().reactor_send_backlog_bytes.Sub(
      static_cast<std::int64_t>(conn->queued_bytes));
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
  ::close(conn->fd);
  obs::M().reactor_connections.Add(-1);
  if (conn->handler->on_close) conn->handler->on_close(id, conn->close_reason);
}

void Reactor::DrainAll() {
  std::vector<std::unique_ptr<Conn>> conns;
  std::map<ConnId, Listener> listeners;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns.reserve(conns_.size());
    for (auto& [id, conn] : conns_) conns.push_back(std::move(conn));
    conns_.clear();
    listeners.swap(listeners_);
    write_pending_.clear();
    dead_pending_.clear();
  }
  for (auto& [id, lst] : listeners) lst.listener.Close();
  const Status stopped = UnavailableError("reactor stopped");
  for (auto& conn : conns) {
    obs::M().reactor_send_backlog_bytes.Sub(
        static_cast<std::int64_t>(conn->queued_bytes));
    ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, conn->fd, nullptr);
    ::close(conn->fd);
    obs::M().reactor_connections.Add(-1);
    if (conn->handler->on_close) {
      conn->handler->on_close(conn->id,
                              conn->dead ? conn->close_reason : stopped);
    }
  }
}

}  // namespace lw::net
