// Framed TCP transport (POSIX sockets).
//
// Wire format per frame: u32 little-endian length N, then N bytes of
// (u8 type || payload). Reads and writes loop over partial transfers and
// retry EINTR; SIGPIPE is suppressed per-send. A ZLTP deployment would run
// this over TLS; framing and protocol are independent of that choice.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/transport.h"
#include "util/status.h"

namespace lw::net {

// Connects to host:port (numeric IPv4 string, e.g. "127.0.0.1").
Result<std::unique_ptr<Transport>> TcpConnect(const std::string& host,
                                              std::uint16_t port);

// Begins a non-blocking connect to host:port and returns the in-progress
// descriptor (SOCK_NONBLOCK | SOCK_CLOEXEC). The caller — in practice
// net::Reactor::Connect — registers it with epoll and completes the
// handshake on EPOLLOUT via getsockopt(SO_ERROR); a refused or unreachable
// peer surfaces there, not here. Only an unresolvable address or socket
// exhaustion fails synchronously. The caller owns (and must close) the fd.
Result<int> TcpConnectStart(const std::string& host, std::uint16_t port);

class TcpListener {
 public:
  // Binds and listens on 127.0.0.1:port. Pass port 0 for an ephemeral port
  // (see bound_port()).
  static Result<TcpListener> Listen(std::uint16_t port);

  TcpListener(TcpListener&& other) noexcept;
  TcpListener& operator=(TcpListener&& other) noexcept;
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;
  ~TcpListener();

  std::uint16_t bound_port() const { return port_; }

  // The raw listening descriptor (-1 once closed). net::Reactor registers
  // it with epoll and accepts non-blockingly; everyone else should use
  // Accept().
  int fd() const { return fd_.load(std::memory_order_acquire); }

  // Blocks for the next connection. UNAVAILABLE once the listener is closed.
  Result<std::unique_ptr<Transport>> Accept();

  void Close();

 private:
  TcpListener(int fd, std::uint16_t port) : fd_(fd), port_(port) {}

  // Atomic so the accept-loop pattern (one thread parked in Accept(),
  // another calling Close() to end the loop) is race-free.
  std::atomic<int> fd_{-1};
  std::uint16_t port_ = 0;
};

}  // namespace lw::net
