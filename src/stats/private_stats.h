// Private collection of aggregate statistics (paper §4).
//
// "Some CDNs could choose to charge publishers proportionally to the number
// of queries received for their domain. In order to privately collect data
// on the number of queries received for each domain, the CDN could use a
// system for the private collection of aggregate statistics [Prio et al.]."
//
// This module implements the additive-secret-sharing core of such a system:
// a client reporting a visit to domain bucket b splits the indicator vector
// e_b into two uniformly random vectors over Z_2^64 that sum to e_b. Each of
// two non-colluding aggregation servers receives one share — individually a
// uniformly random vector, revealing nothing — and adds it into its
// accumulator. At billing time the servers publish their accumulator totals,
// whose sum is the exact per-domain query count.
//
// (Production systems add client-robustness proofs — Prio's SNIPs — so a
// malicious client cannot contribute more than one count; we document that
// extension in DESIGN.md and keep the aggregation core here.)
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace lw::stats {

using Share = std::vector<std::uint64_t>;

// Splits the indicator vector e_bucket (length num_buckets) into two
// additive shares. bucket must be < num_buckets.
struct ReportShares {
  Share for_server0;
  Share for_server1;
};
ReportShares SplitIndicator(std::size_t num_buckets, std::size_t bucket);

// Share (de)serialization for transport.
Bytes SerializeShare(const Share& share);
Result<Share> DeserializeShare(ByteSpan data);

// One of the two aggregation servers.
class AggregationServer {
 public:
  explicit AggregationServer(std::size_t num_buckets);

  std::size_t num_buckets() const { return totals_.size(); }
  std::uint64_t reports_accepted() const { return reports_; }

  // Adds a client share into the accumulator. INVALID_ARGUMENT on length
  // mismatch.
  Status Accept(const Share& share);

  // The accumulator (meaningless alone; publish at epoch end).
  const Share& totals() const { return totals_; }

  void Reset();

 private:
  Share totals_;
  std::uint64_t reports_ = 0;
};

// Combines the two servers' published totals into the true counts.
Result<std::vector<std::uint64_t>> CombineTotals(const Share& a,
                                                 const Share& b);

// Convenience wrapper tying buckets to domain names: the CDN registers the
// domains it bills for; clients report by name.
class DomainQueryStats {
 public:
  explicit DomainQueryStats(std::vector<std::string> domains);

  std::size_t num_domains() const { return domains_.size(); }
  const std::vector<std::string>& domains() const { return domains_; }

  // Client side: build the two shares for one page visit.
  Result<ReportShares> MakeReport(std::string_view domain) const;

  // Billing side: label combined totals with domain names.
  struct DomainCount {
    std::string domain;
    std::uint64_t count;
  };
  Result<std::vector<DomainCount>> LabelTotals(
      const std::vector<std::uint64_t>& combined) const;

 private:
  std::vector<std::string> domains_;  // sorted; bucket = index
};

}  // namespace lw::stats
