#include "stats/private_stats.h"

#include <algorithm>

#include "util/check.h"
#include "util/io.h"
#include "util/rand.h"

namespace lw::stats {

ReportShares SplitIndicator(std::size_t num_buckets, std::size_t bucket) {
  LW_CHECK_MSG(bucket < num_buckets, "bucket out of range");
  ReportShares out;
  out.for_server0.resize(num_buckets);
  out.for_server1.resize(num_buckets);
  // Share 0 is uniformly random; share 1 = e_bucket - share 0 (mod 2^64).
  Bytes random(num_buckets * 8);
  SecureRandomBytes(random);
  for (std::size_t i = 0; i < num_buckets; ++i) {
    const std::uint64_t r = LoadLE64(random.data() + i * 8);
    out.for_server0[i] = r;
    out.for_server1[i] = (i == bucket ? 1u : 0u) - r;  // wraps mod 2^64
  }
  return out;
}

Bytes SerializeShare(const Share& share) {
  Writer w;
  w.U32(static_cast<std::uint32_t>(share.size()));
  for (std::uint64_t v : share) w.U64(v);
  return std::move(w).Take();
}

Result<Share> DeserializeShare(ByteSpan data) {
  Reader r(data);
  LW_ASSIGN_OR_RETURN(const std::uint32_t n, r.U32());
  if (r.remaining() != static_cast<std::size_t>(n) * 8) {
    return ProtocolError("share length mismatch");
  }
  Share share(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    LW_ASSIGN_OR_RETURN(share[i], r.U64());
  }
  return share;
}

AggregationServer::AggregationServer(std::size_t num_buckets)
    : totals_(num_buckets, 0) {}

Status AggregationServer::Accept(const Share& share) {
  if (share.size() != totals_.size()) {
    return InvalidArgumentError("share has wrong bucket count");
  }
  for (std::size_t i = 0; i < share.size(); ++i) {
    totals_[i] += share[i];  // mod 2^64
  }
  ++reports_;
  return Status::Ok();
}

void AggregationServer::Reset() {
  std::fill(totals_.begin(), totals_.end(), 0);
  reports_ = 0;
}

Result<std::vector<std::uint64_t>> CombineTotals(const Share& a,
                                                 const Share& b) {
  if (a.size() != b.size()) {
    return InvalidArgumentError("server totals have different bucket counts");
  }
  std::vector<std::uint64_t> out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] + b[i];
  return out;
}

DomainQueryStats::DomainQueryStats(std::vector<std::string> domains)
    : domains_(std::move(domains)) {
  std::sort(domains_.begin(), domains_.end());
  domains_.erase(std::unique(domains_.begin(), domains_.end()),
                 domains_.end());
}

Result<ReportShares> DomainQueryStats::MakeReport(
    std::string_view domain) const {
  const auto it =
      std::lower_bound(domains_.begin(), domains_.end(), domain);
  if (it == domains_.end() || *it != domain) {
    return NotFoundError("domain not registered for billing");
  }
  return SplitIndicator(domains_.size(),
                        static_cast<std::size_t>(it - domains_.begin()));
}

Result<std::vector<DomainQueryStats::DomainCount>>
DomainQueryStats::LabelTotals(
    const std::vector<std::uint64_t>& combined) const {
  if (combined.size() != domains_.size()) {
    return InvalidArgumentError("combined totals have wrong bucket count");
  }
  std::vector<DomainCount> out;
  out.reserve(domains_.size());
  for (std::size_t i = 0; i < domains_.size(); ++i) {
    out.push_back(DomainCount{domains_[i], combined[i]});
  }
  return out;
}

}  // namespace lw::stats
