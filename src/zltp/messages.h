// ZLTP wire messages.
//
// A ZLTP session (paper §2) begins with a hello exchange in which the server
// announces the fixed blob size it serves and the two sides settle on a mode
// of operation; each private-GET is then one request/response exchange whose
// body is mode-specific (a serialized DPF key share for two-server PIR, or
// an encrypted enclave request). Requests carry ids so clients may pipeline.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "net/transport.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lw::zltp {

inline constexpr std::uint16_t kProtocolVersion = 1;

enum class MsgType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kGetRequest = 3,
  kGetResponse = 4,
  kError = 5,
  kBye = 6,
};

// Modes of operation (paper §2.2).
enum class Mode : std::uint8_t {
  kTwoServerPir = 1,  // cryptographic; requires two non-colluding servers
  kEnclave = 2,       // hardware-trust; ORAM-backed enclave
};

const char* ModeName(Mode mode);

struct ClientHello {
  std::uint16_t version = kProtocolVersion;
  std::vector<Mode> supported_modes;
};

struct ServerHello {
  std::uint16_t version = kProtocolVersion;
  Mode mode = Mode::kTwoServerPir;
  // Which of the two logical PIR servers this endpoint is (0 or 1);
  // meaningless in enclave mode.
  std::uint8_t server_role = 0;
  std::uint8_t domain_bits = 0;       // PIR mode: DPF output domain
  std::uint32_t record_size = 0;      // fixed blob size served
  Bytes keyword_seed;                 // PIR mode: 16-byte universe seed
  Bytes enclave_public_key;           // enclave mode: 32-byte X25519 key
};

struct GetRequest {
  std::uint32_t request_id = 0;
  Bytes body;  // serialized DPF key (PIR) or sealed enclave request
};

struct GetResponse {
  std::uint32_t request_id = 0;
  Bytes body;  // record share (PIR) or sealed enclave response
};

struct ErrorMsg {
  StatusCode code = StatusCode::kInternal;
  std::string message;
};

net::Frame Encode(const ClientHello& m);
net::Frame Encode(const ServerHello& m);
net::Frame Encode(const GetRequest& m);
net::Frame Encode(const GetResponse& m);
net::Frame Encode(const ErrorMsg& m);
net::Frame EncodeBye();

Result<ClientHello> DecodeClientHello(const net::Frame& f);
Result<ServerHello> DecodeServerHello(const net::Frame& f);
Result<GetRequest> DecodeGetRequest(const net::Frame& f);
Result<GetResponse> DecodeGetResponse(const net::Frame& f);
Result<ErrorMsg> DecodeError(const net::Frame& f);

// Converts a received kError frame into a Status (for surfacing to callers).
Status StatusFromError(const ErrorMsg& e);

}  // namespace lw::zltp
