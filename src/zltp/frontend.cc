#include "zltp/frontend.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <optional>
#include <unordered_set>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace lw::zltp {
namespace {

void SendErrorFrame(net::Transport& t, StatusCode code,
                    const std::string& msg) {
  ErrorMsg e;
  e.code = code;
  e.message = msg;
  (void)t.Send(Encode(e));
}

// Reactor-mode twin of SendErrorFrame (see server.cc for the discipline).
void SendErrorFrameTo(net::Reactor& reactor, net::Reactor::ConnId id,
                      StatusCode code, const std::string& msg) {
  ErrorMsg e;
  e.code = code;
  e.message = msg;
  (void)reactor.Send(id, Encode(e));
}

}  // namespace

// ---------------------------------------------------------- data shard

ShardDataServer::ShardDataServer(const ShardTopology& topology,
                                 std::size_t shard_index, int num_threads)
    : topology_(topology),
      shard_index_(shard_index),
      pool_(num_threads == 1 ? nullptr
                             : std::make_unique<ThreadPool>(num_threads)),
      db_(topology.shard_domain_bits(), topology.record_size) {
  LW_CHECK_MSG(shard_index < topology.shard_count(), "shard index range");
}

ShardDataServer::~ShardDataServer() {
  // Snapshot-then-join (see ZltpPirServer::~ZltpPirServer): handlers may
  // still be enqueueing via ServeConnectionDetached, so the lock covers
  // only the state swap.
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<net::Transport>> transports;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    stopping_ = true;
    threads.swap(threads_);
    transports.swap(owned_transports_);
  }
  for (auto& t : transports) t->Close();
  for (auto& th : threads) {
    if (th.joinable()) th.join();
  }
}

std::size_t ShardDataServer::record_count() const {
  std::lock_guard<std::mutex> lock(db_mu_);
  return db_.record_count();
}

Status ShardDataServer::Load(std::uint64_t global_index, ByteSpan record) {
  const std::uint64_t mask = topology_.shard_count() - 1;
  if ((global_index & mask) != shard_index_) {
    return InvalidArgumentError("index belongs to a different shard");
  }
  std::lock_guard<std::mutex> lock(db_mu_);
  return db_.Upsert(global_index >> topology_.top_bits, record);
}

Result<Bytes> ShardDataServer::Answer(const dpf::SubtreeKey& key) const {
  if (key.domain_bits != topology_.shard_domain_bits()) {
    return ProtocolError("sub-tree key has wrong depth for this shard");
  }
  const auto expand_start = obs::TraceNow();
  const dpf::BitVector bits = dpf::EvalSubtreeParallel(key, pool_.get());
  const std::uint64_t expand_ns = obs::ElapsedNs(expand_start);
  obs::M().dpf_expand_ns.Observe(expand_ns);
  obs::AddExpandNs(expand_ns);
  Bytes out(topology_.record_size);
  std::lock_guard<std::mutex> lock(db_mu_);
  db_.Answer(bits, out, pool_.get());
  return out;
}

void ShardDataServer::ServeConnection(net::Transport& transport) {
  for (;;) {
    auto frame = transport.Receive(net::Deadline::Infinite());
    if (!frame.ok()) return;
    if (frame->type == static_cast<std::uint8_t>(MsgType::kBye)) return;
    auto request = DecodeGetRequest(*frame);
    if (!request.ok()) {
      SendErrorFrame(transport, StatusCode::kProtocolError,
                     request.status().message());
      return;
    }
    auto key = dpf::SubtreeKey::Deserialize(request->body);
    if (!key.ok()) {
      SendErrorFrame(transport, StatusCode::kProtocolError,
                     "malformed sub-tree key: " + key.status().message());
      return;
    }
    auto answer = Answer(*key);
    if (!answer.ok()) {
      SendErrorFrame(transport, answer.status().code(),
                     answer.status().message());
      continue;
    }
    obs::M().shard_requests.Inc();
    GetResponse response;
    response.request_id = request->request_id;
    response.body = std::move(*answer);
    if (!transport.Send(Encode(response)).ok()) return;
  }
}

void ShardDataServer::ServeConnectionDetached(
    std::unique_ptr<net::Transport> transport) {
  std::lock_guard<std::mutex> lock(threads_mu_);
  if (stopping_) {
    transport->Close();
    return;
  }
  net::Transport* raw = transport.get();
  owned_transports_.push_back(std::move(transport));
  threads_.emplace_back([this, raw] { ServeConnection(*raw); });
}

Status ShardDataServer::ServeOnReactor(net::Reactor& reactor,
                                       net::TcpListener listener) {
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (dispatch_ == nullptr) dispatch_ = std::make_unique<TaskQueue>(1);
  }
  net::Reactor::Handler handler;
  // Shard links are CDN-internal: bare GetRequest frames, no hello.
  handler.on_frame = [this, &reactor](net::Reactor::ConnId id,
                                      net::Frame frame) {
    if (frame.type == static_cast<std::uint8_t>(MsgType::kBye)) {
      reactor.CloseAfterFlush(id);
      return;
    }
    auto request = DecodeGetRequest(frame);
    if (!request.ok()) {
      SendErrorFrameTo(reactor, id, StatusCode::kProtocolError,
                       request.status().message());
      reactor.CloseAfterFlush(id);
      return;
    }
    auto key = dpf::SubtreeKey::Deserialize(request->body);
    if (!key.ok()) {
      SendErrorFrameTo(reactor, id, StatusCode::kProtocolError,
                       "malformed sub-tree key: " + key.status().message());
      reactor.CloseAfterFlush(id);
      return;
    }
    // The sub-tree expansion + XOR scan is the shard's heavy compute.
    dispatch_->Post([this, &reactor, id, request_id = request->request_id,
                     k = std::move(*key)] {
      auto answer = Answer(k);
      if (!answer.ok()) {
        SendErrorFrameTo(reactor, id, answer.status().code(),
                         answer.status().message());
        return;
      }
      obs::M().shard_requests.Inc();
      GetResponse response;
      response.request_id = request_id;
      response.body = std::move(*answer);
      (void)reactor.Send(id, Encode(response));
    });
  };
  return reactor.AddListener(std::move(listener), std::move(handler));
}

// ------------------------------------------------------------- fan-out
//
// The multiplexed fan-out engine. One Mux owns the pending-op correlation
// table and a Link per shard; ops are keyed by a unique request id that is
// sent to every shard, so a reply is matched to its op no matter when or
// in what order it arrives. Failure containment:
//
//   reply for unknown id      stale (its op already completed) — dropped,
//                             never attributed to another op.
//   wrong record size         the reply correlated, so only that op fails;
//                             the link's framing is intact and stays up.
//   send failure on shard k   that op fails immediately; replies already
//                             owed by shards 0..k-1 are stale-dropped by
//                             id, so the next request is not poisoned.
//   transport error / shard   the stream is desynced (error frames carry
//   error frame               no request id): every op awaiting the link
//                             fails, the link closes and — with a redial
//                             factory — a fresh connection is dialed.
//   per-op deadline           the expiry sweeper fails the op with
//                             DEADLINE_EXCEEDED; a reply that limps in
//                             later is a stale drop.

class ShardFanout::Mux {
 public:
  // One outstanding private GET: the XOR accumulator, which links still
  // owe a reply, and the completion callback.
  struct Op {
    Bytes acc;
    std::vector<bool> awaiting;
    std::size_t remaining = 0;
    AnswerCallback done;
    bool has_deadline = false;
    std::chrono::nanoseconds deadline{};
    std::chrono::nanoseconds start{};
  };

  // One shard link. Enqueue never blocks the caller; failures are routed
  // back through FailOp/OnLinkDown.
  class Link {
   public:
    virtual ~Link() = default;
    virtual void Enqueue(std::uint32_t op_id, net::Frame frame) = 0;
    virtual void Shutdown() = 0;
  };

  Mux(const ShardTopology& topology, FanoutOptions options)
      : topology_(topology),
        options_(std::move(options)),
        clock_(options_.clock != nullptr ? options_.clock : &Clock::Real()) {}

  ~Mux() { Shutdown(); }

  const ShardTopology& topology() const { return topology_; }
  Clock* clock() const { return clock_; }
  const FanoutOptions& options() const { return options_; }

  // Called once per shard, in shard order, before Seal().
  void AddLink(std::unique_ptr<Link> link) {
    links_.push_back(std::move(link));
  }

  // Links are complete; start the expiry sweeper if ops carry deadlines.
  void Seal() {
    LW_CHECK_MSG(links_.size() == topology_.shard_count(),
                 "need one link per shard");
    if (options_.op_timeout.count() > 0) {
      expiry_ = std::thread([this] { ExpiryLoop(); });
    }
  }

  void AnswerAsync(const dpf::DpfKey& key, AnswerCallback done) {
    if (key.domain_bits != topology_.domain_bits) {
      done(ProtocolError("DPF domain does not match deployment"));
      return;
    }
    // Front-end work: expand the top of the tree once (cheap; §5.2), then
    // ship each shard its sub-tree root. Requests pipeline onto every link
    // without waiting for any reply — concurrent ops interleave freely.
    const std::vector<dpf::SubtreeKey> subkeys =
        dpf::SplitForShards(key, topology_.top_bits);
    const std::size_t n = links_.size();
    std::uint32_t id = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!stopping_) {
        id = next_id_++;
        if (next_id_ == 0) next_id_ = 1;  // id 0 stays reserved on wrap
        Op op;
        op.acc.assign(topology_.record_size, 0);
        op.awaiting.assign(n, true);
        op.remaining = n;
        op.done = std::move(done);
        op.start = clock_->Now();
        if (options_.op_timeout.count() > 0) {
          op.has_deadline = true;
          op.deadline = op.start + options_.op_timeout;
        }
        ops_.emplace(id, std::move(op));
      }
    }
    if (id == 0) {
      done(UnavailableError("fan-out shut down"));
      return;
    }
    obs::M().fanout_inflight.Add(1);
    expiry_cv_.notify_all();  // a new deadline may now be the earliest
    for (std::size_t s = 0; s < n; ++s) {
      GetRequest request;
      request.request_id = id;
      request.body = subkeys[s].Serialize();
      links_[s]->Enqueue(id, Encode(request));
    }
  }

  // A frame arrived on link `link`. Returns non-OK when the link's stream
  // can no longer be trusted (shard error frame — uncorrelatable by
  // design, messages.h — or an undecodable reply): the link must close
  // and redial.
  Status OnReply(std::size_t link, const net::Frame& frame) {
    if (frame.type == static_cast<std::uint8_t>(MsgType::kError)) {
      auto e = DecodeError(frame);
      return e.ok() ? StatusFromError(*e) : e.status();
    }
    auto response = DecodeGetResponse(frame);
    if (!response.ok()) return response.status();
    std::optional<Op> finished;
    Status op_failure = Status::Ok();
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = ops_.find(response->request_id);
      if (it == ops_.end() || !it->second.awaiting[link]) {
        // Late or duplicate: the op already completed (deadline, another
        // link's failure) or this link already answered it. Correlation
        // by id means we drop it here instead of handing it to the next
        // request — the old lock-step desync bug.
        obs::M().fanout_stale_drops.Inc();
        return Status::Ok();
      }
      Op& op = it->second;
      op.awaiting[link] = false;
      if (response->body.size() != topology_.record_size) {
        // Correlated but broken: the framing is intact, so fail only this
        // op and keep the link.
        op_failure = ProtocolError("shard answer has wrong record size");
        finished = std::move(op);
        ops_.erase(it);
      } else {
        XorInto(op.acc, response->body);
        obs::M().fanout_shard_rtt_ns.Observe(
            static_cast<std::uint64_t>((clock_->Now() - op.start).count()));
        if (--op.remaining == 0) {
          finished = std::move(op);
          ops_.erase(it);
        }
      }
    }
    if (finished.has_value()) {
      obs::M().fanout_inflight.Add(-1);
      if (op_failure.ok()) {
        finished->done(std::move(finished->acc));
      } else {
        finished->done(op_failure);
      }
    }
    return Status::Ok();
  }

  // A send for `op_id` failed on `link`: the op cannot complete. Replies
  // other shards already owe it become stale drops.
  void FailOp(std::uint32_t op_id, std::size_t link, const Status& why) {
    std::optional<Op> op;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = ops_.find(op_id);
      if (it == ops_.end()) return;
      op = std::move(it->second);
      ops_.erase(it);
    }
    obs::M().fanout_inflight.Add(-1);
    op->done(ShardStatus(link, why));
  }

  // The link's stream is gone or desynced: every op still awaiting it
  // fails now, rather than reading someone else's reply later.
  void OnLinkDown(std::size_t link, const Status& why) {
    std::vector<Op> hit;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto it = ops_.begin(); it != ops_.end();) {
        if (it->second.awaiting[link]) {
          hit.push_back(std::move(it->second));
          it = ops_.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (Op& op : hit) {
      obs::M().fanout_inflight.Add(-1);
      op.done(ShardStatus(link, why));
    }
  }

  net::TransportFactory redial_factory(std::size_t link) const {
    if (link < options_.redial.size()) return options_.redial[link];
    return nullptr;
  }

  // Stops the sweeper and every link, then completes whatever is left.
  // Idempotent; called by ~Mux and usable for explicit teardown.
  void Shutdown() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      stopping_ = true;
    }
    expiry_cv_.notify_all();
    if (expiry_.joinable()) expiry_.join();
    for (auto& link : links_) link->Shutdown();
    std::map<std::uint32_t, Op> left;
    {
      std::lock_guard<std::mutex> lock(mu_);
      left.swap(ops_);
    }
    for (auto& [id, op] : left) {
      obs::M().fanout_inflight.Add(-1);
      op.done(UnavailableError("fan-out shut down"));
    }
  }

 private:
  static Status ShardStatus(std::size_t link, const Status& why) {
    return Status(why.code(),
                  "shard " + std::to_string(link) + ": " + why.message());
  }

  // Per-op deadlines are enforced here, against the pending table, not by
  // per-receive timeouts: the link readers stay blocked demultiplexing
  // while an expired op fails fast with DEADLINE_EXCEEDED. Under a
  // FakeClock the cv wait uses short real slices (the net/inmem.cc
  // discipline) so tests advance virtual time and see prompt expiry.
  void ExpiryLoop() {
    constexpr std::chrono::milliseconds kFakeClockSlice{5};
    std::unique_lock<std::mutex> lock(mu_);
    while (!stopping_) {
      const std::chrono::nanoseconds now = clock_->Now();
      std::vector<Op> due;
      std::chrono::nanoseconds next = std::chrono::nanoseconds::max();
      for (auto it = ops_.begin(); it != ops_.end();) {
        if (it->second.has_deadline && it->second.deadline <= now) {
          due.push_back(std::move(it->second));
          it = ops_.erase(it);
        } else {
          if (it->second.has_deadline) {
            next = std::min(next, it->second.deadline);
          }
          ++it;
        }
      }
      if (!due.empty()) {
        lock.unlock();
        for (Op& op : due) {
          obs::M().fanout_deadline_expired.Inc();
          obs::M().fanout_inflight.Add(-1);
          op.done(DeadlineExceededError(
              "shard fan-out deadline expired (dead or slow shard)"));
        }
        lock.lock();
        continue;
      }
      if (next == std::chrono::nanoseconds::max()) {
        expiry_cv_.wait(lock);
        continue;
      }
      if (clock_ != &Clock::Real()) {
        expiry_cv_.wait_for(lock, kFakeClockSlice);
        continue;
      }
      expiry_cv_.wait_for(
          lock, std::min(next - now, std::chrono::nanoseconds(
                                         std::chrono::seconds(60))));
    }
  }

  const ShardTopology topology_;
  const FanoutOptions options_;
  Clock* clock_;  // never null

  std::mutex mu_;  // ops_, next_id_, stopping_
  std::condition_variable expiry_cv_;
  std::map<std::uint32_t, Op> ops_;
  std::uint32_t next_id_ = 1;
  bool stopping_ = false;

  std::vector<std::unique_ptr<Link>> links_;
  std::thread expiry_;
};

namespace {

// Threaded shard link over a net::Transport: a writer thread drains an
// outbox (so AnswerAsync never blocks on a slow send) and a reader thread
// demultiplexes replies into the correlation table. Composes with the
// net/faulty.h decorators and the in-memory pair; a redial factory makes
// the link self-healing after a failure.
class TransportLink final : public ShardFanout::Mux::Link {
 public:
  TransportLink(ShardFanout::Mux* mux, std::size_t index,
                std::unique_ptr<net::Transport> transport,
                net::TransportFactory redial)
      : mux_(mux),
        index_(index),
        redial_(std::move(redial)),
        transport_(std::move(transport)) {
    reader_ = std::thread([this] { ReaderLoop(); });
    writer_ = std::thread([this] { WriterLoop(); });
  }

  ~TransportLink() override { Shutdown(); }

  void Enqueue(std::uint32_t op_id, net::Frame frame) override {
    {
      std::lock_guard<std::mutex> lock(mu_);
      // A null transport with a redial factory means a fresh dial may be
      // mid-flight: queue, and the writer picks the frame up once the new
      // stream is installed (the op deadline bounds the wait either way).
      if (!stopping_ && (transport_ != nullptr || redial_)) {
        outbox_.push_back({op_id, std::move(frame)});
        cv_.notify_all();
        return;
      }
    }
    // Link permanently down (dead with no redial factory, or shut down):
    // fail fast rather than queueing against a shard that cannot answer.
    mux_->FailOp(op_id, index_,
                 UnavailableError(stopped() ? "shard link shut down"
                                            : "shard link down"));
  }

  void Shutdown() override {
    std::shared_ptr<net::Transport> t;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      stopping_ = true;
      t = transport_;
    }
    cv_.notify_all();
    if (t != nullptr) t->Close();  // unblocks the reader's Receive
    if (writer_.joinable()) writer_.join();
    if (reader_.joinable()) reader_.join();
  }

 private:
  bool stopped() {
    std::lock_guard<std::mutex> lock(mu_);
    return stopping_;
  }

  void ReaderLoop() {
    for (;;) {
      std::shared_ptr<net::Transport> t;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock,
                 [this] { return stopping_ || transport_ != nullptr; });
        if (stopping_) return;
        t = transport_;
      }
      // Demultiplexer receive: per-op deadlines are enforced by the mux's
      // expiry sweeper against the pending table, so this wait is
      // intentionally unbounded — a dead shard fails its ops fast via the
      // sweeper, and a reply that arrives after that is dropped by id,
      // never misattributed. Shutdown/Reset close the transport to
      // unblock this thread.
      auto frame = t->Receive(net::Deadline::Infinite());
      if (!frame.ok()) {
        Reset(t, frame.status());
        continue;
      }
      const Status s = mux_->OnReply(index_, *frame);
      if (!s.ok()) Reset(t, s);
    }
  }

  void WriterLoop() {
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      // Waits out a redial too: frames stay queued until a transport
      // exists to carry them.
      cv_.wait(lock, [this] {
        return stopping_ || (!outbox_.empty() && transport_ != nullptr);
      });
      if (stopping_) return;
      auto [op_id, frame] = std::move(outbox_.front());
      outbox_.pop_front();
      std::shared_ptr<net::Transport> t = transport_;
      lock.unlock();
      // The op deadline (sweeper) bounds the caller; a send wedged past
      // it keeps only this writer busy, and Shutdown's Close unblocks it.
      const Status s = t->Send(frame, net::Deadline::Infinite());
      if (!s.ok()) {
        // The op cannot complete (this shard never saw its sub-query) —
        // fail it directly rather than relying on Reset's OnLinkDown,
        // which no-ops if another thread already swapped the transport.
        // Replies other shards already owe the op become stale drops.
        mux_->FailOp(op_id, index_, s);
        // A failed send may leave the stream mid-frame: reset the link.
        Reset(t, s);
      }
      lock.lock();
    }
  }

  // Drops `failed` (if still current), fails every op awaiting this link,
  // and — with a factory — dials a replacement. Reader and writer both
  // funnel here; whichever loses the race becomes a no-op.
  void Reset(const std::shared_ptr<net::Transport>& failed,
             const Status& why) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_ || transport_ != failed) return;
      transport_.reset();
      // Queued frames belong to ops the OnLinkDown below is about to fail;
      // sending them on a fresh stream would only produce stale replies.
      outbox_.clear();
    }
    failed->Close();
    mux_->OnLinkDown(index_, why);
    if (!redial_) return;
    auto fresh = redial_();
    if (!fresh.ok()) return;  // stays down; ops fail fast in Enqueue
    obs::M().fanout_redials.Inc();
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      (*fresh)->Close();
      return;
    }
    transport_ = std::move(*fresh);
    cv_.notify_all();  // wake the reader onto the new stream
  }

  ShardFanout::Mux* mux_;
  const std::size_t index_;
  const net::TransportFactory redial_;

  std::mutex mu_;
  std::condition_variable cv_;
  // shared_ptr: reader and writer use the transport outside the lock while
  // Reset swaps it; the failed instance stays alive until both let go.
  std::shared_ptr<net::Transport> transport_;
  std::deque<std::pair<std::uint32_t, net::Frame>> outbox_;
  bool stopping_ = false;

  std::thread reader_;
  std::thread writer_;
};

// Reactor-backed shard link: the outbound connection lives on the reactor
// loop (net::Reactor::Connect), sends are queue pushes, and replies arrive
// as on_frame callbacks — no per-link threads at all. A link-level failure
// closes the connection; the next op re-dials on demand (no reconnect
// storm against a down shard: at most one dial per op).
class ReactorLink final : public ShardFanout::Mux::Link {
 public:
  ReactorLink(ShardFanout::Mux* mux, std::size_t index,
              net::Reactor& reactor, std::string host, std::uint16_t port)
      : mux_(mux),
        index_(index),
        reactor_(reactor),
        host_(std::move(host)),
        port_(port) {}

  ~ReactorLink() override { Shutdown(); }

  Status Dial() {
    net::Reactor::Handler handler;
    handler.on_frame = [this](net::Reactor::ConnId id, net::Frame frame) {
      const Status s = mux_->OnReply(index_, std::move(frame));
      if (!s.ok()) {
        // Desynced stream (uncorrelatable shard error frame): fail the
        // ops awaiting us and drop the connection; the next op re-dials.
        Forget(id);
        mux_->OnLinkDown(index_, s);
        reactor_.Close(id);
      }
    };
    handler.on_close = [this](net::Reactor::ConnId id, const Status& why) {
      // Forget() false: Shutdown or the on_frame error path already
      // disowned this conn, or the dial lost so quickly that Dial() has
      // not stored the id yet (recorded so Dial does not adopt a corpse).
      if (Forget(id)) {
        mux_->OnLinkDown(
            index_, why.ok() ? UnavailableError("shard link closed") : why);
      }
      std::lock_guard<std::mutex> lock(mu_);
      early_closed_.push_back(id);
      --pending_closes_;
      closed_cv_.notify_all();
    };
    {
      // Count the close before Connect: on_close may fire (loop thread)
      // before Connect even returns here. Stale early-close records from
      // prior dials are irrelevant to the fresh id about to be minted.
      std::lock_guard<std::mutex> lock(mu_);
      ++pending_closes_;
      early_closed_.clear();
    }
    auto id = reactor_.Connect(host_, port_, std::move(handler));
    std::lock_guard<std::mutex> lock(mu_);
    if (!id.ok()) {
      --pending_closes_;  // never registered; no on_close will come
      return id.status();
    }
    if (std::find(early_closed_.begin(), early_closed_.end(), *id) !=
        early_closed_.end()) {
      // Refused before we got to store the id: the link stays down and the
      // next op re-dials.
      early_closed_.clear();
      return UnavailableError("shard connection closed during dial");
    }
    conn_ = *id;
    return Status::Ok();
  }

  void Enqueue(std::uint32_t op_id, net::Frame frame) override {
    net::Reactor::ConnId conn = 0;
    {
      // dial_mu_ serializes redials: two concurrent ops hitting a downed
      // link get one fresh connection, not one each. Never taken by the
      // loop-thread callbacks, so it cannot deadlock against them.
      std::lock_guard<std::mutex> dial_lock(dial_mu_);
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_) {
          conn = 0;
        } else {
          conn = conn_;
        }
      }
      if (conn == 0) {
        if (stopped()) {
          mux_->FailOp(op_id, index_,
                       UnavailableError("shard link shut down"));
          return;
        }
        // Redial on demand: at most one dial per op against a down shard,
        // so a dead peer costs each request one failed connect, never a
        // reconnect storm.
        const Status dialed = Dial();
        if (!dialed.ok()) {
          mux_->FailOp(op_id, index_, dialed);
          return;
        }
        obs::M().fanout_redials.Inc();
        std::lock_guard<std::mutex> lock(mu_);
        conn = conn_;
      }
    }
    const Status sent = reactor_.Send(conn, frame);
    if (!sent.ok()) mux_->FailOp(op_id, index_, sent);
  }

  void Shutdown() override {
    net::Reactor::ConnId conn = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) return;
      stopping_ = true;
      conn = conn_;
      conn_ = 0;
    }
    // Safe even after reactor.Stop(): a stale id is a no-op (reactor.h).
    if (conn != 0) reactor_.Close(conn);
    // Wait for every dialed connection's on_close to be delivered (the
    // documented teardown order guarantees it comes: either the reactor
    // was already stopped, which drained all conns, or it is running and
    // the Close above reaches the loop). After this, no loop callback can
    // touch this link or the mux again — destruction is safe.
    std::unique_lock<std::mutex> lock(mu_);
    closed_cv_.wait(lock, [this] { return pending_closes_ == 0; });
  }

 private:
  bool stopped() {
    std::lock_guard<std::mutex> lock(mu_);
    return stopping_;
  }

  // Clears conn_ if it still names `id`; false means this close was
  // already handled (Shutdown or a newer dial took over), or the id was
  // never stored (the dial lost instantly).
  bool Forget(net::Reactor::ConnId id) {
    std::lock_guard<std::mutex> lock(mu_);
    if (conn_ != id) return false;
    conn_ = 0;
    return true;
  }

  ShardFanout::Mux* mux_;
  const std::size_t index_;
  net::Reactor& reactor_;
  const std::string host_;
  const std::uint16_t port_;

  std::mutex dial_mu_;  // held across Dial(); taken before mu_
  std::mutex mu_;
  net::Reactor::ConnId conn_ = 0;
  // Dials whose on_close has not yet been delivered; Shutdown waits for 0.
  int pending_closes_ = 0;
  std::condition_variable closed_cv_;
  // Conn ids whose on_close beat Dial()'s store of the id (instant refuse).
  std::vector<net::Reactor::ConnId> early_closed_;
  bool stopping_ = false;
};

}  // namespace

ShardFanout::ShardFanout(std::unique_ptr<Mux> mux) : mux_(std::move(mux)) {}

ShardFanout::ShardFanout(const ShardTopology& topology,
                         std::vector<std::unique_ptr<net::Transport>> links,
                         FanoutOptions options)
    : mux_(std::make_unique<Mux>(topology, std::move(options))) {
  LW_CHECK_MSG(links.size() == topology.shard_count(),
               "need one transport per shard");
  for (std::size_t s = 0; s < links.size(); ++s) {
    mux_->AddLink(std::make_unique<TransportLink>(
        mux_.get(), s, std::move(links[s]), mux_->redial_factory(s)));
  }
  mux_->Seal();
}

Result<ShardFanout> ShardFanout::ConnectOnReactor(
    const ShardTopology& topology, net::Reactor& reactor,
    std::vector<ShardAddr> shards, FanoutOptions options) {
  if (shards.size() != topology.shard_count()) {
    return InvalidArgumentError("need one shard address per shard");
  }
  auto mux = std::make_unique<Mux>(topology, std::move(options));
  for (std::size_t s = 0; s < shards.size(); ++s) {
    auto link = std::make_unique<ReactorLink>(
        mux.get(), s, reactor, std::move(shards[s].host), shards[s].port);
    LW_RETURN_IF_ERROR(link->Dial());
    mux->AddLink(std::move(link));
  }
  mux->Seal();
  return ShardFanout(std::move(mux));
}

ShardFanout::ShardFanout(ShardFanout&&) noexcept = default;
ShardFanout& ShardFanout::operator=(ShardFanout&&) noexcept = default;
ShardFanout::~ShardFanout() = default;

const ShardTopology& ShardFanout::topology() const {
  return mux_->topology();
}

void ShardFanout::AnswerAsync(const dpf::DpfKey& key, AnswerCallback done) {
  mux_->AnswerAsync(key, std::move(done));
}

Result<Bytes> ShardFanout::Answer(const dpf::DpfKey& key) {
  struct Waiter {
    std::mutex m;
    std::condition_variable cv;
    std::optional<Result<Bytes>> result;
  };
  auto waiter = std::make_shared<Waiter>();
  mux_->AnswerAsync(key, [waiter](Result<Bytes> r) {
    std::lock_guard<std::mutex> lock(waiter->m);
    waiter->result = std::move(r);
    waiter->cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(waiter->m);
  waiter->cv.wait(lock, [&] { return waiter->result.has_value(); });
  return std::move(*waiter->result);
}

// ------------------------------------------------------------ front-end

FrontEndServer::FrontEndServer(std::uint8_t role, Bytes keyword_seed,
                               ShardFanout fanout)
    : role_(role),
      keyword_seed_(std::move(keyword_seed)),
      fanout_(std::move(fanout)) {
  LW_CHECK_MSG(role <= 1, "front-end role must be 0 or 1");
}

FrontEndServer::~FrontEndServer() {
  // Snapshot-then-join (see ZltpPirServer::~ZltpPirServer).
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<net::Transport>> transports;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    stopping_ = true;
    threads.swap(threads_);
    transports.swap(owned_transports_);
  }
  for (auto& t : transports) t->Close();
  for (auto& th : threads) {
    if (th.joinable()) th.join();
  }
}

void FrontEndServer::ServeConnection(net::Transport& transport) {
  // Standard ZLTP hello.
  auto frame = transport.Receive(net::Deadline::Infinite());
  if (!frame.ok()) return;
  auto hello = DecodeClientHello(*frame);
  if (!hello.ok()) {
    SendErrorFrame(transport, StatusCode::kProtocolError,
                   hello.status().message());
    return;
  }
  bool supports_pir = false;
  for (Mode m : hello->supported_modes) {
    supports_pir |= (m == Mode::kTwoServerPir);
  }
  if (hello->version != kProtocolVersion || !supports_pir) {
    SendErrorFrame(transport, StatusCode::kFailedPrecondition,
                   "front-end requires two-server-pir mode");
    return;
  }
  ServerHello server_hello;
  server_hello.mode = Mode::kTwoServerPir;
  server_hello.server_role = role_;
  server_hello.domain_bits =
      static_cast<std::uint8_t>(fanout_.topology().domain_bits);
  server_hello.record_size =
      static_cast<std::uint32_t>(fanout_.topology().record_size);
  server_hello.keyword_seed = keyword_seed_;
  if (!transport.Send(Encode(server_hello)).ok()) return;

  for (;;) {
    auto next = transport.Receive(net::Deadline::Infinite());
    if (!next.ok()) return;
    if (next->type == static_cast<std::uint8_t>(MsgType::kBye)) return;
    const auto req_start = obs::TraceNow();
    obs::RequestTrace trace;
    trace.start_unix_ms = obs::UnixMillis();
    auto request = DecodeGetRequest(*next);
    if (!request.ok()) {
      obs::M().frontend_request_errors.Inc();
      SendErrorFrame(transport, StatusCode::kProtocolError,
                     request.status().message());
      return;
    }
    auto key = dpf::DpfKey::Deserialize(request->body);
    if (!key.ok()) {
      obs::M().frontend_request_errors.Inc();
      SendErrorFrame(transport, StatusCode::kProtocolError,
                     "malformed DPF key: " + key.status().message());
      return;
    }
    trace.stages.decode_ns = obs::ElapsedNs(req_start);
    auto answer = fanout_.Answer(*key);
    if (!answer.ok()) {
      obs::M().frontend_request_errors.Inc();
      SendErrorFrame(transport, answer.status().code(),
                     answer.status().message());
      continue;
    }
    GetResponse response;
    response.request_id = request->request_id;
    response.body = std::move(*answer);
    const auto reply_start = obs::TraceNow();
    const bool sent = transport.Send(Encode(response)).ok();
    // Expansion and scanning happen on the data shards, so the front-end's
    // trace carries decode/reply only; the shard wait rides in total_ns.
    trace.stages.reply_ns = obs::ElapsedNs(reply_start);
    trace.total_ns = obs::ElapsedNs(req_start);
    obs::M().frontend_requests.Inc();
    obs::TraceRing::Default().Record(trace);
    if (!sent) return;
  }
}

void FrontEndServer::ServeConnectionDetached(
    std::unique_ptr<net::Transport> transport) {
  std::lock_guard<std::mutex> lock(threads_mu_);
  if (stopping_) {
    transport->Close();
    return;
  }
  net::Transport* raw = transport.get();
  owned_transports_.push_back(std::move(transport));
  threads_.emplace_back([this, raw] { ServeConnection(*raw); });
}

Status FrontEndServer::ServeOnReactor(net::Reactor& reactor,
                                      net::TcpListener listener) {
  auto awaiting_hello =
      std::make_shared<std::unordered_set<net::Reactor::ConnId>>();
  net::Reactor::Handler handler;
  handler.on_open = [awaiting_hello](net::Reactor::ConnId id) {
    awaiting_hello->insert(id);
  };
  handler.on_close = [awaiting_hello](net::Reactor::ConnId id,
                                      const Status&) {
    awaiting_hello->erase(id);
  };
  handler.on_frame = [this, awaiting_hello, &reactor](net::Reactor::ConnId id,
                                                      net::Frame frame) {
    if (awaiting_hello->erase(id) > 0) {
      auto hello = DecodeClientHello(frame);
      bool supports_pir = false;
      if (hello.ok()) {
        for (Mode m : hello->supported_modes) {
          supports_pir |= (m == Mode::kTwoServerPir);
        }
      }
      if (!hello.ok() || hello->version != kProtocolVersion ||
          !supports_pir) {
        SendErrorFrameTo(reactor, id, StatusCode::kFailedPrecondition,
                         "front-end requires two-server-pir mode");
        reactor.CloseAfterFlush(id);
        return;
      }
      ServerHello server_hello;
      server_hello.mode = Mode::kTwoServerPir;
      server_hello.server_role = role_;
      server_hello.domain_bits =
          static_cast<std::uint8_t>(fanout_.topology().domain_bits);
      server_hello.record_size =
          static_cast<std::uint32_t>(fanout_.topology().record_size);
      server_hello.keyword_seed = keyword_seed_;
      (void)reactor.Send(id, Encode(server_hello));
      return;
    }
    if (frame.type == static_cast<std::uint8_t>(MsgType::kBye)) {
      reactor.CloseAfterFlush(id);
      return;
    }
    const auto req_start = obs::TraceNow();
    const std::uint64_t start_unix_ms = obs::UnixMillis();
    auto request = DecodeGetRequest(frame);
    if (!request.ok()) {
      obs::M().frontend_request_errors.Inc();
      SendErrorFrameTo(reactor, id, StatusCode::kProtocolError,
                       request.status().message());
      reactor.CloseAfterFlush(id);
      return;
    }
    auto key = dpf::DpfKey::Deserialize(request->body);
    if (!key.ok()) {
      obs::M().frontend_request_errors.Inc();
      SendErrorFrameTo(reactor, id, StatusCode::kProtocolError,
                       "malformed DPF key: " + key.status().message());
      reactor.CloseAfterFlush(id);
      return;
    }
    const std::uint64_t decode_ns = obs::ElapsedNs(req_start);
    // The fan-out is non-blocking: the op pipelines onto the shard links
    // and this handler returns to the loop. The completion callback (a
    // link reader thread or the reactor loop, depending on the link
    // backend) queues the reply with the thread-safe reactor.Send — out of
    // order across GETs, matched to the right client by the captured id.
    fanout_.AnswerAsync(
        *key, [&reactor, id, request_id = request->request_id, req_start,
               start_unix_ms, decode_ns](Result<Bytes> answer) {
          if (!answer.ok()) {
            obs::M().frontend_request_errors.Inc();
            SendErrorFrameTo(reactor, id, answer.status().code(),
                             answer.status().message());
            return;
          }
          obs::RequestTrace trace;
          trace.start_unix_ms = start_unix_ms;
          trace.stages.decode_ns = decode_ns;
          GetResponse response;
          response.request_id = request_id;
          response.body = std::move(*answer);
          const auto reply_start = obs::TraceNow();
          (void)reactor.Send(id, Encode(response));
          trace.stages.reply_ns = obs::ElapsedNs(reply_start);
          trace.total_ns = obs::ElapsedNs(req_start);
          obs::M().frontend_requests.Inc();
          obs::TraceRing::Default().Record(trace);
        });
  };
  return reactor.AddListener(std::move(listener), std::move(handler));
}

}  // namespace lw::zltp
