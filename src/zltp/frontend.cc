#include "zltp/frontend.h"

#include <chrono>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"

namespace lw::zltp {
namespace {

void SendErrorFrame(net::Transport& t, StatusCode code,
                    const std::string& msg) {
  ErrorMsg e;
  e.code = code;
  e.message = msg;
  (void)t.Send(Encode(e));
}

// Reactor-mode twin of SendErrorFrame (see server.cc for the discipline).
void SendErrorFrameTo(net::Reactor& reactor, net::Reactor::ConnId id,
                      StatusCode code, const std::string& msg) {
  ErrorMsg e;
  e.code = code;
  e.message = msg;
  (void)reactor.Send(id, Encode(e));
}

}  // namespace

// ---------------------------------------------------------- data shard

ShardDataServer::ShardDataServer(const ShardTopology& topology,
                                 std::size_t shard_index, int num_threads)
    : topology_(topology),
      shard_index_(shard_index),
      pool_(num_threads == 1 ? nullptr
                             : std::make_unique<ThreadPool>(num_threads)),
      db_(topology.shard_domain_bits(), topology.record_size) {
  LW_CHECK_MSG(shard_index < topology.shard_count(), "shard index range");
}

ShardDataServer::~ShardDataServer() {
  // Snapshot-then-join (see ZltpPirServer::~ZltpPirServer): handlers may
  // still be enqueueing via ServeConnectionDetached, so the lock covers
  // only the state swap.
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<net::Transport>> transports;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    stopping_ = true;
    threads.swap(threads_);
    transports.swap(owned_transports_);
  }
  for (auto& t : transports) t->Close();
  for (auto& th : threads) {
    if (th.joinable()) th.join();
  }
}

std::size_t ShardDataServer::record_count() const {
  std::lock_guard<std::mutex> lock(db_mu_);
  return db_.record_count();
}

Status ShardDataServer::Load(std::uint64_t global_index, ByteSpan record) {
  const std::uint64_t mask = topology_.shard_count() - 1;
  if ((global_index & mask) != shard_index_) {
    return InvalidArgumentError("index belongs to a different shard");
  }
  std::lock_guard<std::mutex> lock(db_mu_);
  return db_.Upsert(global_index >> topology_.top_bits, record);
}

Result<Bytes> ShardDataServer::Answer(const dpf::SubtreeKey& key) const {
  if (key.domain_bits != topology_.shard_domain_bits()) {
    return ProtocolError("sub-tree key has wrong depth for this shard");
  }
  const auto expand_start = obs::TraceNow();
  const dpf::BitVector bits = dpf::EvalSubtreeParallel(key, pool_.get());
  const std::uint64_t expand_ns = obs::ElapsedNs(expand_start);
  obs::M().dpf_expand_ns.Observe(expand_ns);
  obs::AddExpandNs(expand_ns);
  Bytes out(topology_.record_size);
  std::lock_guard<std::mutex> lock(db_mu_);
  db_.Answer(bits, out, pool_.get());
  return out;
}

void ShardDataServer::ServeConnection(net::Transport& transport) {
  for (;;) {
    auto frame = transport.Receive(net::Deadline::Infinite());
    if (!frame.ok()) return;
    if (frame->type == static_cast<std::uint8_t>(MsgType::kBye)) return;
    auto request = DecodeGetRequest(*frame);
    if (!request.ok()) {
      SendErrorFrame(transport, StatusCode::kProtocolError,
                     request.status().message());
      return;
    }
    auto key = dpf::SubtreeKey::Deserialize(request->body);
    if (!key.ok()) {
      SendErrorFrame(transport, StatusCode::kProtocolError,
                     "malformed sub-tree key: " + key.status().message());
      return;
    }
    auto answer = Answer(*key);
    if (!answer.ok()) {
      SendErrorFrame(transport, answer.status().code(),
                     answer.status().message());
      continue;
    }
    obs::M().shard_requests.Inc();
    GetResponse response;
    response.request_id = request->request_id;
    response.body = std::move(*answer);
    if (!transport.Send(Encode(response)).ok()) return;
  }
}

void ShardDataServer::ServeConnectionDetached(
    std::unique_ptr<net::Transport> transport) {
  std::lock_guard<std::mutex> lock(threads_mu_);
  if (stopping_) {
    transport->Close();
    return;
  }
  net::Transport* raw = transport.get();
  owned_transports_.push_back(std::move(transport));
  threads_.emplace_back([this, raw] { ServeConnection(*raw); });
}

Status ShardDataServer::ServeOnReactor(net::Reactor& reactor,
                                       net::TcpListener listener) {
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (dispatch_ == nullptr) dispatch_ = std::make_unique<TaskQueue>(1);
  }
  net::Reactor::Handler handler;
  // Shard links are CDN-internal: bare GetRequest frames, no hello.
  handler.on_frame = [this, &reactor](net::Reactor::ConnId id,
                                      net::Frame frame) {
    if (frame.type == static_cast<std::uint8_t>(MsgType::kBye)) {
      reactor.CloseAfterFlush(id);
      return;
    }
    auto request = DecodeGetRequest(frame);
    if (!request.ok()) {
      SendErrorFrameTo(reactor, id, StatusCode::kProtocolError,
                       request.status().message());
      reactor.CloseAfterFlush(id);
      return;
    }
    auto key = dpf::SubtreeKey::Deserialize(request->body);
    if (!key.ok()) {
      SendErrorFrameTo(reactor, id, StatusCode::kProtocolError,
                       "malformed sub-tree key: " + key.status().message());
      reactor.CloseAfterFlush(id);
      return;
    }
    // The sub-tree expansion + XOR scan is the shard's heavy compute.
    dispatch_->Post([this, &reactor, id, request_id = request->request_id,
                     k = std::move(*key)] {
      auto answer = Answer(k);
      if (!answer.ok()) {
        SendErrorFrameTo(reactor, id, answer.status().code(),
                         answer.status().message());
        return;
      }
      obs::M().shard_requests.Inc();
      GetResponse response;
      response.request_id = request_id;
      response.body = std::move(*answer);
      (void)reactor.Send(id, Encode(response));
    });
  };
  return reactor.AddListener(std::move(listener), std::move(handler));
}

// ------------------------------------------------------------- fan-out

ShardFanout::ShardFanout(const ShardTopology& topology,
                         std::vector<std::unique_ptr<net::Transport>> links)
    : topology_(topology), shards_(std::move(links)) {
  LW_CHECK_MSG(shards_.size() == topology_.shard_count(),
               "need one transport per shard");
}

Result<Bytes> ShardFanout::Answer(const dpf::DpfKey& key) {
  if (key.domain_bits != topology_.domain_bits) {
    return ProtocolError("DPF domain does not match deployment");
  }
  std::lock_guard<std::mutex> lock(*mu_);
  const std::uint32_t id = next_request_id_++;

  // Front-end work: expand the top of the tree once (cheap; §5.2), then
  // ship each shard its sub-tree root. Requests are pipelined to all
  // shards before collecting any response.
  const std::vector<dpf::SubtreeKey> subkeys =
      dpf::SplitForShards(key, topology_.top_bits);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    GetRequest request;
    request.request_id = id;
    request.body = subkeys[s].Serialize();
    LW_RETURN_IF_ERROR(shards_[s]->Send(Encode(request)));
  }

  Bytes combined(topology_.record_size, 0);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    LW_ASSIGN_OR_RETURN(const net::Frame frame,
                        shards_[s]->Receive(net::Deadline::Infinite()));
    if (frame.type == static_cast<std::uint8_t>(MsgType::kError)) {
      LW_ASSIGN_OR_RETURN(const ErrorMsg e, DecodeError(frame));
      return StatusFromError(e);
    }
    LW_ASSIGN_OR_RETURN(const GetResponse response, DecodeGetResponse(frame));
    if (response.request_id != id) {
      return ProtocolError("shard response id mismatch");
    }
    if (response.body.size() != topology_.record_size) {
      return ProtocolError("shard answer has wrong record size");
    }
    XorInto(combined, response.body);
  }
  return combined;
}

// ------------------------------------------------------------ front-end

FrontEndServer::FrontEndServer(std::uint8_t role, Bytes keyword_seed,
                               ShardFanout fanout)
    : role_(role),
      keyword_seed_(std::move(keyword_seed)),
      fanout_(std::move(fanout)) {
  LW_CHECK_MSG(role <= 1, "front-end role must be 0 or 1");
}

FrontEndServer::~FrontEndServer() {
  // Snapshot-then-join (see ZltpPirServer::~ZltpPirServer).
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<net::Transport>> transports;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    stopping_ = true;
    threads.swap(threads_);
    transports.swap(owned_transports_);
  }
  for (auto& t : transports) t->Close();
  for (auto& th : threads) {
    if (th.joinable()) th.join();
  }
}

void FrontEndServer::ServeConnection(net::Transport& transport) {
  // Standard ZLTP hello.
  auto frame = transport.Receive(net::Deadline::Infinite());
  if (!frame.ok()) return;
  auto hello = DecodeClientHello(*frame);
  if (!hello.ok()) {
    SendErrorFrame(transport, StatusCode::kProtocolError,
                   hello.status().message());
    return;
  }
  bool supports_pir = false;
  for (Mode m : hello->supported_modes) {
    supports_pir |= (m == Mode::kTwoServerPir);
  }
  if (hello->version != kProtocolVersion || !supports_pir) {
    SendErrorFrame(transport, StatusCode::kFailedPrecondition,
                   "front-end requires two-server-pir mode");
    return;
  }
  ServerHello server_hello;
  server_hello.mode = Mode::kTwoServerPir;
  server_hello.server_role = role_;
  server_hello.domain_bits =
      static_cast<std::uint8_t>(fanout_.topology().domain_bits);
  server_hello.record_size =
      static_cast<std::uint32_t>(fanout_.topology().record_size);
  server_hello.keyword_seed = keyword_seed_;
  if (!transport.Send(Encode(server_hello)).ok()) return;

  for (;;) {
    auto next = transport.Receive(net::Deadline::Infinite());
    if (!next.ok()) return;
    if (next->type == static_cast<std::uint8_t>(MsgType::kBye)) return;
    const auto req_start = obs::TraceNow();
    obs::RequestTrace trace;
    trace.start_unix_ms = obs::UnixMillis();
    auto request = DecodeGetRequest(*next);
    if (!request.ok()) {
      obs::M().frontend_request_errors.Inc();
      SendErrorFrame(transport, StatusCode::kProtocolError,
                     request.status().message());
      return;
    }
    auto key = dpf::DpfKey::Deserialize(request->body);
    if (!key.ok()) {
      obs::M().frontend_request_errors.Inc();
      SendErrorFrame(transport, StatusCode::kProtocolError,
                     "malformed DPF key: " + key.status().message());
      return;
    }
    trace.stages.decode_ns = obs::ElapsedNs(req_start);
    auto answer = fanout_.Answer(*key);
    if (!answer.ok()) {
      obs::M().frontend_request_errors.Inc();
      SendErrorFrame(transport, answer.status().code(),
                     answer.status().message());
      continue;
    }
    GetResponse response;
    response.request_id = request->request_id;
    response.body = std::move(*answer);
    const auto reply_start = obs::TraceNow();
    const bool sent = transport.Send(Encode(response)).ok();
    // Expansion and scanning happen on the data shards, so the front-end's
    // trace carries decode/reply only; the shard wait rides in total_ns.
    trace.stages.reply_ns = obs::ElapsedNs(reply_start);
    trace.total_ns = obs::ElapsedNs(req_start);
    obs::M().frontend_requests.Inc();
    obs::TraceRing::Default().Record(trace);
    if (!sent) return;
  }
}

void FrontEndServer::ServeConnectionDetached(
    std::unique_ptr<net::Transport> transport) {
  std::lock_guard<std::mutex> lock(threads_mu_);
  if (stopping_) {
    transport->Close();
    return;
  }
  net::Transport* raw = transport.get();
  owned_transports_.push_back(std::move(transport));
  threads_.emplace_back([this, raw] { ServeConnection(*raw); });
}

Status FrontEndServer::ServeOnReactor(net::Reactor& reactor,
                                      net::TcpListener listener) {
  {
    // One worker: ShardFanout::Answer serializes callers anyway (the shard
    // links are single-stream), so extra workers would only queue on its
    // mutex.
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (dispatch_ == nullptr) dispatch_ = std::make_unique<TaskQueue>(1);
  }
  auto awaiting_hello =
      std::make_shared<std::unordered_set<net::Reactor::ConnId>>();
  net::Reactor::Handler handler;
  handler.on_open = [awaiting_hello](net::Reactor::ConnId id) {
    awaiting_hello->insert(id);
  };
  handler.on_close = [awaiting_hello](net::Reactor::ConnId id,
                                      const Status&) {
    awaiting_hello->erase(id);
  };
  handler.on_frame = [this, awaiting_hello, &reactor](net::Reactor::ConnId id,
                                                      net::Frame frame) {
    if (awaiting_hello->erase(id) > 0) {
      auto hello = DecodeClientHello(frame);
      bool supports_pir = false;
      if (hello.ok()) {
        for (Mode m : hello->supported_modes) {
          supports_pir |= (m == Mode::kTwoServerPir);
        }
      }
      if (!hello.ok() || hello->version != kProtocolVersion ||
          !supports_pir) {
        SendErrorFrameTo(reactor, id, StatusCode::kFailedPrecondition,
                         "front-end requires two-server-pir mode");
        reactor.CloseAfterFlush(id);
        return;
      }
      ServerHello server_hello;
      server_hello.mode = Mode::kTwoServerPir;
      server_hello.server_role = role_;
      server_hello.domain_bits =
          static_cast<std::uint8_t>(fanout_.topology().domain_bits);
      server_hello.record_size =
          static_cast<std::uint32_t>(fanout_.topology().record_size);
      server_hello.keyword_seed = keyword_seed_;
      (void)reactor.Send(id, Encode(server_hello));
      return;
    }
    if (frame.type == static_cast<std::uint8_t>(MsgType::kBye)) {
      reactor.CloseAfterFlush(id);
      return;
    }
    const auto req_start = obs::TraceNow();
    const std::uint64_t start_unix_ms = obs::UnixMillis();
    auto request = DecodeGetRequest(frame);
    if (!request.ok()) {
      obs::M().frontend_request_errors.Inc();
      SendErrorFrameTo(reactor, id, StatusCode::kProtocolError,
                       request.status().message());
      reactor.CloseAfterFlush(id);
      return;
    }
    auto key = dpf::DpfKey::Deserialize(request->body);
    if (!key.ok()) {
      obs::M().frontend_request_errors.Inc();
      SendErrorFrameTo(reactor, id, StatusCode::kProtocolError,
                       "malformed DPF key: " + key.status().message());
      reactor.CloseAfterFlush(id);
      return;
    }
    const std::uint64_t decode_ns = obs::ElapsedNs(req_start);
    // Fanning out blocks on every shard's reply; run it off the loop.
    dispatch_->Post([this, &reactor, id, request_id = request->request_id,
                     k = std::move(*key), req_start, start_unix_ms,
                     decode_ns] {
      auto answer = fanout_.Answer(k);
      if (!answer.ok()) {
        obs::M().frontend_request_errors.Inc();
        SendErrorFrameTo(reactor, id, answer.status().code(),
                         answer.status().message());
        return;
      }
      obs::RequestTrace trace;
      trace.start_unix_ms = start_unix_ms;
      trace.stages.decode_ns = decode_ns;
      GetResponse response;
      response.request_id = request_id;
      response.body = std::move(*answer);
      const auto reply_start = obs::TraceNow();
      (void)reactor.Send(id, Encode(response));
      trace.stages.reply_ns = obs::ElapsedNs(reply_start);
      trace.total_ns = obs::ElapsedNs(req_start);
      obs::M().frontend_requests.Inc();
      obs::TraceRing::Default().Record(trace);
    });
  };
  return reactor.AddListener(std::move(listener), std::move(handler));
}

}  // namespace lw::zltp
