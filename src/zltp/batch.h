// Pipelined, admission-controlled request batching for ZLTP PIR servers.
//
// The dominant per-request cost is the linear scan over stored records;
// batching B requests lets the server make ONE pass over the data per batch,
// trading latency for throughput (paper §5.1, "Batching requests to
// increase throughput": batch 16 → 2.6 s latency / 6 req/s vs batch 1 →
// 0.51 s / 2 req/s on their shard).
//
// This scheduler pushes that design to production shape:
//
//  Pipeline.  A batch's work is two stages — DPF expansion (pure compute,
//  no store lock: PirStore::ExpandBatch) and the fused record scan
//  (PirStore::ScanBatch). In pipelined mode an expand worker and a scan
//  worker run them on different batches concurrently: while batch N is
//  scanning, batch N+1 is already expanding, handed off through a bounded
//  (double-buffered) staging queue so expanded selection vectors for at
//  most kPipelineDepth batches exist at once. When expansion keeps up, the
//  scan stage — the part whose duty cycle bounds server throughput — never
//  idles; the lw_batch_pipeline_stall_ns_total counter records when it
//  does. Serial mode (pipelined=false) runs both stages on one thread,
//  kept for A/B measurement and output-equivalence tests.
//
//  Admission control.  Submit sheds load with RESOURCE_EXHAUSTED once
//  queue_limit requests are already waiting — bounding queue wait instead
//  of letting tail latency grow without limit. With a deadline_budget, each
//  request carries deadline = enqueue + budget, and a batch closes at
//      min(first_arrival + max_wait,
//          earliest rider deadline - EWMA of recent scan times)
//  so a batch starts early enough for its most impatient rider to make its
//  deadline given how long scans have recently taken. Riders whose
//  deadline has already passed at batch formation fail DEADLINE_EXCEEDED
//  rather than riding (and delaying) the batch.
//
// Time is read through an injectable lw::Clock so admission-control tests
// drive deadlines deterministically with a FakeClock; condition waits use
// short real-time slices and re-check the injected clock.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "dpf/dpf.h"
#include "obs/trace.h"
#include "util/clock.h"
#include "util/status.h"
#include "zltp/store.h"

namespace lw {
class ThreadPool;
}

namespace lw::zltp {

struct BatchConfig {
  std::size_t max_batch = 16;
  // Co-rider window: how long the first rider of a batch waits for company.
  std::chrono::milliseconds max_wait{2};
  // Admission queue bound: submissions beyond this many waiting requests
  // are shed with RESOURCE_EXHAUSTED. 0 = unbounded (no shedding).
  std::size_t queue_limit = 0;
  // Per-request deadline budget: a request wants its answer within this
  // long of submission; batches close early so riders make it, and riders
  // already past their deadline at formation fail DEADLINE_EXCEEDED.
  // 0 = disabled (batches close on max_batch/max_wait only).
  std::chrono::milliseconds deadline_budget{0};
  // Overlap DPF expansion of batch N+1 with the scan of batch N.
  bool pipelined = true;
  // Time source for the queue/deadline machinery. null = Clock::Real().
  Clock* clock = nullptr;
};

class BatchScheduler {
 public:
  // Expanded batches staged between the pipeline's two workers: one being
  // scanned plus one queued behind it (double buffering). Deeper staging
  // would only add memory and queue wait, not throughput — the scan stage
  // is the bottleneck it feeds.
  static constexpr std::size_t kPipelineDepth = 2;

  // `pool` (optional, not owned, must outlive the scheduler) parallelizes
  // each batch's DPF expansions and data scans across its workers.
  BatchScheduler(const PirStore& store, BatchConfig config,
                 ThreadPool* pool = nullptr);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  // Completion callback for SubmitAsync: invoked exactly once with the
  // record share (or the failure) and the batch-level expand/scan timings
  // (every co-rider of a batch is credited the full fused pass). Runs on a
  // scheduler worker thread — the scan worker for answered requests, the
  // submitting or stopping thread for rejections — so it must be quick and
  // must not block on the scheduler itself.
  using SubmitCallback =
      std::function<void(Result<Bytes>, const obs::StageTimings&)>;

  // Queues one query and returns immediately; `done` fires when its batch
  // has been scanned (or the request failed admission: UNAVAILABLE after
  // Stop(), RESOURCE_EXHAUSTED when shed, DEADLINE_EXCEEDED when the
  // deadline budget expired before its batch formed). This is how the
  // event-driven serve path rides the batcher without parking a thread per
  // request: the reactor's on_frame decodes, calls SubmitAsync, and the
  // callback queues the reply frame (docs/ARCHITECTURE.md).
  void SubmitAsync(dpf::DpfKey key, SubmitCallback done);

  // Blocking convenience over SubmitAsync (the thread-per-connection serve
  // path): waits for the callback, returns the record share. When `stages`
  // is non-null, the batch's expand/scan nanoseconds are written into it
  // before this call returns.
  Result<Bytes> Submit(dpf::DpfKey key, obs::StageTimings* stages = nullptr);

  // Drains queued and in-flight batches, then joins both workers
  // (idempotent; dtor calls it). Every callback outstanding at the time of
  // the call fires — answered if its batch was already formed or formable
  // from the queue, UNAVAILABLE otherwise.
  void Stop();

  struct Stats {
    std::uint64_t requests = 0;  // admitted into the queue
    std::uint64_t batches = 0;   // non-empty batches executed
    std::uint64_t shed = 0;      // refused RESOURCE_EXHAUSTED at admission
    std::uint64_t expired = 0;   // failed DEADLINE_EXCEEDED at formation
    // Why batches closed: reached max_batch / closed early for a rider's
    // deadline / co-rider window elapsed.
    std::uint64_t full_closes = 0;
    std::uint64_t deadline_closes = 0;
    std::uint64_t wait_closes = 0;
    double average_batch_size() const {
      return batches == 0 ? 0.0
                          : static_cast<double>(requests - expired) /
                                static_cast<double>(batches);
    }
  };
  // A consistent snapshot: every field is mutated under the queue mutex,
  // so concurrent Submit/worker progress never yields torn stats.
  Stats stats() const;

 private:
  struct Pending {
    dpf::DpfKey key;
    SubmitCallback done;                  // fires exactly once
    std::chrono::nanoseconds enqueued{};  // on config_.clock
    std::chrono::nanoseconds deadline{};  // enqueued + budget, or ns::max()
  };

  // A formed batch after stage 1 (expansion), queued for stage 2 (scan).
  struct StagedBatch {
    std::vector<Pending> riders;
    PirStore::ExpandedBatch expanded;
    Status expand_status = Status::Ok();
    obs::StageTimings stages;  // expand_ns filled by stage 1
    // Instrumentation stamp of batch formation: the earliest instant the
    // scan could have started had expansion been free (stall accounting).
    std::chrono::steady_clock::time_point formed_at{};
  };

  void ExpandLoop();
  void ScanLoop();
  // Forms one batch under mu_ (waiting out the close rule), or returns
  // false when stopping with an empty queue. Expired riders are failed
  // inside.
  bool FormBatch(std::vector<Pending>& batch);
  // Stage 1 for a formed batch: expand and stage (pipelined) or expand and
  // scan inline (serial).
  void ExpandAndDispatch(std::vector<Pending> batch);
  // Stage 2: scan, update the EWMA, fan out timings, fulfill promises.
  void ScanAndFulfill(StagedBatch staged);

  const PirStore& store_;
  BatchConfig config_;
  ThreadPool* pool_;  // may be null (serial scans)
  Clock* clock_;      // never null

  mutable std::mutex mu_;  // queue, stats, scan-time EWMA
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  Stats stats_;
  // EWMA of recent batch scan durations (ns), the close rule's estimate of
  // how long a batch started now will take to answer. 0 until first batch.
  std::uint64_t scan_estimate_ns_ = 0;

  std::mutex staged_mu_;  // pipeline handoff (pipelined mode only)
  std::condition_variable staged_cv_;
  std::deque<StagedBatch> staged_;
  bool scan_stop_ = false;

  std::thread expand_worker_;
  std::thread scan_worker_;  // pipelined mode only
};

}  // namespace lw::zltp
