// Request batching for ZLTP PIR servers.
//
// The dominant per-request cost is the linear scan over stored records;
// batching B requests lets the server make ONE pass over the data per batch,
// trading latency for throughput (paper §5.1, "Batching requests to
// increase throughput": batch 16 → 2.6 s latency / 6 req/s vs batch 1 →
// 0.51 s / 2 req/s on their shard).
//
// Connection threads Submit() queries; a worker thread drains the queue into
// batches of at most `max_batch`, waiting up to `max_wait` for co-riders
// once the first query of a batch has arrived.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>

#include "dpf/dpf.h"
#include "obs/trace.h"
#include "util/status.h"
#include "zltp/store.h"

namespace lw {
class ThreadPool;
}

namespace lw::zltp {

struct BatchConfig {
  std::size_t max_batch = 16;
  std::chrono::milliseconds max_wait{2};
};

class BatchScheduler {
 public:
  // `pool` (optional, not owned, must outlive the scheduler) parallelizes
  // each batch's DPF expansions and data scans across its workers.
  BatchScheduler(const PirStore& store, BatchConfig config,
                 ThreadPool* pool = nullptr);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  // Blocks until this query's batch has been scanned; returns the record
  // share. UNAVAILABLE after Stop(). When `stages` is non-null, the
  // batch's expand/scan nanoseconds are written into it before this call
  // returns (batch-level attribution: every co-rider of a batch is
  // credited the full batch expansion+scan cost, since the pass is fused).
  Result<Bytes> Submit(dpf::DpfKey key, obs::StageTimings* stages = nullptr);

  // Drains the queue and joins the worker (idempotent; dtor calls it).
  void Stop();

  struct Stats {
    std::uint64_t requests = 0;
    std::uint64_t batches = 0;
    double average_batch_size() const {
      return batches == 0 ? 0.0
                          : static_cast<double>(requests) /
                                static_cast<double>(batches);
    }
  };
  Stats stats() const;

 private:
  struct Pending {
    dpf::DpfKey key;
    std::promise<Result<Bytes>> promise;
    obs::StageTimings* stages = nullptr;  // not owned; may be null
    std::chrono::steady_clock::time_point enqueued;
  };

  void WorkerLoop();

  const PirStore& store_;
  BatchConfig config_;
  ThreadPool* pool_;  // may be null (serial scans)

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  bool stopping_ = false;
  Stats stats_;

  std::thread worker_;
};

}  // namespace lw::zltp
