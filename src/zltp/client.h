// ZLTP client sessions.
//
// Session is the mode-agnostic interface the browser stack programs
// against: keyword private-GET, pipelined batch, and a dummy GET that is
// indistinguishable on the wire (used to pad every page load to a fixed
// fetch count, paper §3.2). Two implementations:
//
//  * PirSession — two connections to the two non-colluding logical servers;
//    implements the full keyword private-GET: hash the key into the DPF
//    domain, generate the two key shares, collect and XOR the answers,
//    unpack, and verify the embedded fingerprint (detecting absence and
//    hash collisions without trusting the servers).
//  * EnclaveSession — the single-server enclave-mode equivalent.
//
// Both are resilient (docs/ROBUSTNESS.md): operations carry per-attempt
// deadlines, retryable failures (UNAVAILABLE, DEADLINE_EXCEEDED) trigger
// jittered-backoff retries, and — when EstablishOptions supplies transport
// factories — dead connections are redialed and the hello re-run before
// the retry. A retried private GET always regenerates fresh DPF key
// shares; resending captured bytes would let the network correlate two
// sightings of one query, which a fresh share cannot.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/retry.h"
#include "net/transport.h"
#include "oram/enclave.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/status.h"
#include "zltp/messages.h"

namespace lw::zltp {

// Per-session communication accounting (for the §5.1/§5.2 communication
// benches and traffic-shape tests). The same quantities are mirrored into
// the process-wide obs registry (lw_client_* metrics).
struct TrafficCounters {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t requests = 0;  // completed private GETs (incl. dummies)
  std::uint64_t retries = 0;   // attempts re-issued with fresh queries
  std::uint64_t redials = 0;   // connections re-dialed + hello re-run
};

// Mode-agnostic client session: what the lightweb browser needs from ZLTP,
// regardless of whether the deployment is two-server PIR or enclave.
class Session {
 public:
  virtual ~Session() = default;

  // Fixed blob size announced by the server hello(s).
  virtual std::size_t record_size() const = 0;

  // Keyword private-GET. NOT_FOUND if the key is unpublished; COLLISION if
  // the returned record belongs to a different key.
  virtual Result<Bytes> PrivateGet(std::string_view key) = 0;

  // A whole page load — every key plus `extra_dummies` cover queries — as
  // one unit. Results are per-key, in order; dummy results are discarded.
  // A transport failure (after retries) fails the whole batch.
  virtual Result<std::vector<Result<Bytes>>> PrivateGetBatch(
      const std::vector<std::string>& keys, int extra_dummies = 0) = 0;

  // Cover-traffic fetch, byte-for-byte indistinguishable from a real query
  // on the wire; discards the result.
  virtual Status DummyGet() = 0;

  virtual const TrafficCounters& traffic() const = 0;

  // Sends Bye and closes the connection(s). Further ops fail
  // FAILED_PRECONDITION.
  virtual void Close() = 0;
};

// How to establish (and re-establish) a session. Move-only: transports are
// consumed by Establish.
//
// Transports and factories: each server slot needs at least one of the
// two. If only the factory is given, the initial dial goes through it too;
// if only the transport is given, the session cannot redial — a dead
// connection then fails the session permanently (after in-place retries).
// Every factory invocation must reach the same logical endpoint: on redial
// the hello is re-run and the announced role and universe parameters must
// match what the session first established.
struct EstablishOptions {
  std::unique_ptr<net::Transport> transport0;
  std::unique_ptr<net::Transport> transport1;  // two-server PIR only
  net::TransportFactory factory0;
  net::TransportFactory factory1;  // two-server PIR only

  // Budget for one hello exchange / one private-GET attempt (the whole
  // pipelined batch counts as one attempt). Zero = unbounded.
  std::chrono::nanoseconds hello_timeout{0};
  std::chrono::nanoseconds op_timeout{0};

  // Governs establish, per-operation retries, and backoff pacing.
  net::RetryPolicy retry = net::RetryPolicy::NoRetry();

  // Clock for deadlines (and, unless the policy names its own, backoff).
  // Null = Clock::Real().
  Clock* clock = nullptr;

  // Optional extra accounting destination, accumulated alongside the
  // session's own traffic() — lets one caller aggregate several sessions.
  TrafficCounters* traffic_sink = nullptr;

  // Convenience for the common transports-only case (no deadlines, no
  // retries, no redial). Enclave mode passes one transport.
  static EstablishOptions FromTransports(
      std::unique_ptr<net::Transport> t0,
      std::unique_ptr<net::Transport> t1 = nullptr) {
    EstablishOptions options;
    options.transport0 = std::move(t0);
    options.transport1 = std::move(t1);
    return options;
  }
};

class PirSession final : public Session {
 public:
  // Performs the hello exchange on both connections. Fails unless the two
  // servers agree on blob size / domain / keyword seed and present distinct
  // roles (a misconfigured deployment pointing both connections at the same
  // trust domain would void the non-collusion assumption).
  static Result<PirSession> Establish(EstablishOptions options);

  // Deprecated: positional form kept for transition; equivalent to options
  // with only the two transports set (no deadlines, no retries, no redial).
  static Result<PirSession> Establish(std::unique_ptr<net::Transport> server0,
                                      std::unique_ptr<net::Transport> server1);

  PirSession(PirSession&&) = default;
  PirSession& operator=(PirSession&&) = default;

  int domain_bits() const { return domain_bits_; }
  std::size_t record_size() const override { return record_size_; }
  const Bytes& keyword_seed() const { return keyword_seed_; }

  Result<Bytes> PrivateGet(std::string_view key) override;

  // Pipelined batch: all requests (for every key, plus `extra_dummies`
  // random-index cover queries) are sent to both servers before any
  // response is read. One network round trip for the whole page load, and
  // the server co-batches the scans (§5.1).
  Result<std::vector<Result<Bytes>>> PrivateGetBatch(
      const std::vector<std::string>& keys, int extra_dummies = 0) override;

  // Raw private-GET of a domain index (returns the packed record).
  Result<Bytes> PrivateGetIndex(std::uint64_t index);

  Status DummyGet() override;

  const TrafficCounters& traffic() const override { return traffic_; }

  void Close() override;

 private:
  PirSession() = default;

  net::Deadline OpDeadline() const;
  net::Deadline HelloDeadline() const;
  Result<ServerHello> HelloOn(net::Transport& transport);

  // Hellos both transports and installs them. On first establish the pair
  // is ordered by announced role; on redial (`reestablish`) each slot must
  // re-announce the role and universe parameters recorded at establish.
  Status AdoptConnections(std::unique_ptr<net::Transport> t0,
                          std::unique_ptr<net::Transport> t1,
                          net::TransportFactory dial0,
                          net::TransportFactory dial1, bool reestablish);

  bool connected() const;
  bool CanRedial() const;
  Status Redial();
  void DropConnections();

  // Runs `op` under the retry policy: per-attempt deadline, backoff between
  // attempts, redial (fresh connections + hello) before each retry. `op`
  // must generate fresh queries on every call.
  template <typename Op>
  auto WithRetries(Op&& op) -> decltype(op(net::Deadline()));

  Result<Bytes> RoundTrip(net::Transport& transport, const Bytes& body,
                          std::uint32_t request_id,
                          const net::Deadline& deadline);

  void AccountSent(std::size_t n);
  void AccountReceived(std::size_t n);
  void AccountRequests(std::uint64_t n);
  void AccountRetry();
  void AccountRedial();

  struct Link {
    std::unique_ptr<net::Transport> transport;
    net::TransportFactory dial;
  };
  Link link0_;  // role 0
  Link link1_;  // role 1
  bool closed_ = false;

  int domain_bits_ = 0;
  std::size_t record_size_ = 0;
  Bytes keyword_seed_;
  std::uint32_t next_request_id_ = 1;

  std::chrono::nanoseconds hello_timeout_{0};
  std::chrono::nanoseconds op_timeout_{0};
  net::RetryPolicy retry_ = net::RetryPolicy::NoRetry();
  Clock* clock_ = nullptr;
  TrafficCounters* sink_ = nullptr;
  TrafficCounters traffic_;
};

class EnclaveSession final : public Session {
 public:
  // Single-server: uses the transport0/factory0 slots; setting the *1
  // slots is an error.
  static Result<EnclaveSession> Establish(EstablishOptions options);

  // Deprecated: positional form kept for transition.
  static Result<EnclaveSession> Establish(
      std::unique_ptr<net::Transport> server);

  EnclaveSession(EnclaveSession&&) = default;
  EnclaveSession& operator=(EnclaveSession&&) = default;

  // Fixed blob size announced by the enclave's ServerHello.
  std::size_t record_size() const override { return record_size_; }

  Result<Bytes> PrivateGet(std::string_view key) override;

  // Sequential (the enclave round trip is one message each way already);
  // per-key errors are reported per slot, transport failures fail the
  // whole batch.
  Result<std::vector<Result<Bytes>>> PrivateGetBatch(
      const std::vector<std::string>& keys, int extra_dummies = 0) override;

  // A fetch for a random never-published key: the enclave's access pattern
  // and response are indistinguishable from a hit.
  Status DummyGet() override;

  const TrafficCounters& traffic() const override { return traffic_; }

  void Close() override;

 private:
  EnclaveSession() = default;

  net::Deadline OpDeadline() const;
  net::Deadline HelloDeadline() const;
  Status Adopt(std::unique_ptr<net::Transport> transport, bool reestablish);
  Status Redial();

  template <typename Op>
  auto WithRetries(Op&& op) -> decltype(op(net::Deadline()));

  std::unique_ptr<net::Transport> server_;
  net::TransportFactory dial_;
  bool closed_ = false;

  std::unique_ptr<oram::EnclaveClient> enclave_client_;
  Bytes enclave_public_key_;
  std::size_t record_size_ = 0;
  std::uint32_t next_request_id_ = 1;

  std::chrono::nanoseconds hello_timeout_{0};
  std::chrono::nanoseconds op_timeout_{0};
  net::RetryPolicy retry_ = net::RetryPolicy::NoRetry();
  Clock* clock_ = nullptr;
  TrafficCounters* sink_ = nullptr;
  TrafficCounters traffic_;
};

}  // namespace lw::zltp
