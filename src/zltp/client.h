// ZLTP client sessions.
//
// PirSession holds connections to the two non-colluding logical servers and
// implements the full keyword private-GET: hash the key into the DPF domain,
// generate the two key shares, collect and XOR the answers, unpack, and
// verify the embedded fingerprint (detecting absence and hash collisions
// without trusting the servers). DummyGet() fetches a uniformly random index
// — byte-for-byte indistinguishable from a real query on the wire — which
// the lightweb browser uses to pad every page load to a fixed fetch count
// (paper §3.2).
//
// EnclaveSession is the single-server enclave-mode equivalent.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "net/transport.h"
#include "oram/enclave.h"
#include "util/bytes.h"
#include "util/status.h"
#include "zltp/messages.h"

namespace lw::zltp {

// Communication accounting (for the §5.1/§5.2 communication benches).
struct TrafficCounters {
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t requests = 0;
};

class PirSession {
 public:
  // Performs the hello exchange on both connections. Fails unless the two
  // servers agree on blob size / domain / keyword seed and present distinct
  // roles (a misconfigured deployment pointing both connections at the same
  // trust domain would void the non-collusion assumption).
  static Result<PirSession> Establish(
      std::unique_ptr<net::Transport> server0,
      std::unique_ptr<net::Transport> server1);

  PirSession(PirSession&&) = default;
  PirSession& operator=(PirSession&&) = default;

  int domain_bits() const { return domain_bits_; }
  std::size_t record_size() const { return record_size_; }
  const Bytes& keyword_seed() const { return keyword_seed_; }

  // Keyword private-GET. NOT_FOUND if the key is unpublished; COLLISION if
  // the returned record belongs to a different key.
  Result<Bytes> PrivateGet(std::string_view key);

  // Pipelined batch: all requests (for every key, plus `extra_dummies`
  // random-index cover queries) are sent to both servers before any
  // response is read. One network round trip for the whole page load, and
  // the server co-batches the scans (§5.1). Results are per-key, in order;
  // dummy results are discarded. A transport failure fails the whole batch.
  Result<std::vector<Result<Bytes>>> PrivateGetBatch(
      const std::vector<std::string>& keys, int extra_dummies = 0);

  // Raw private-GET of a domain index (returns the packed record).
  Result<Bytes> PrivateGetIndex(std::uint64_t index);

  // Cover-traffic fetch of a uniformly random index; discards the result.
  Status DummyGet();

  const TrafficCounters& traffic() const { return traffic_; }

  // Sends Bye on both connections and closes them.
  void Close();

 private:
  PirSession() = default;

  Result<Bytes> RoundTrip(net::Transport& transport, const Bytes& body,
                          std::uint32_t request_id);

  std::unique_ptr<net::Transport> server0_;
  std::unique_ptr<net::Transport> server1_;
  int domain_bits_ = 0;
  std::size_t record_size_ = 0;
  Bytes keyword_seed_;
  std::uint32_t next_request_id_ = 1;
  TrafficCounters traffic_;
};

class EnclaveSession {
 public:
  static Result<EnclaveSession> Establish(
      std::unique_ptr<net::Transport> server);

  EnclaveSession(EnclaveSession&&) = default;
  EnclaveSession& operator=(EnclaveSession&&) = default;

  // Fixed blob size announced by the enclave's ServerHello.
  std::size_t record_size() const { return record_size_; }

  Result<Bytes> PrivateGet(std::string_view key);

  const TrafficCounters& traffic() const { return traffic_; }

  void Close();

 private:
  EnclaveSession() = default;

  std::unique_ptr<net::Transport> server_;
  std::unique_ptr<oram::EnclaveClient> enclave_client_;
  std::size_t record_size_ = 0;
  std::uint32_t next_request_id_ = 1;
  TrafficCounters traffic_;
};

}  // namespace lw::zltp
