#include "zltp/messages.h"

#include "dpf/dpf.h"
#include "util/io.h"

namespace lw::zltp {
namespace {

Status CheckType(const net::Frame& f, MsgType expected) {
  if (f.type != static_cast<std::uint8_t>(expected)) {
    return ProtocolError("unexpected frame type " + std::to_string(f.type));
  }
  return Status::Ok();
}

net::Frame MakeFrame(MsgType type, Bytes payload) {
  net::Frame f;
  f.type = static_cast<std::uint8_t>(type);
  f.payload = std::move(payload);
  return f;
}

}  // namespace

const char* ModeName(Mode mode) {
  switch (mode) {
    case Mode::kTwoServerPir: return "two-server-pir";
    case Mode::kEnclave: return "enclave";
  }
  return "unknown";
}

net::Frame Encode(const ClientHello& m) {
  Writer w;
  w.U16(m.version);
  w.U8(static_cast<std::uint8_t>(m.supported_modes.size()));
  for (Mode mode : m.supported_modes) w.U8(static_cast<std::uint8_t>(mode));
  return MakeFrame(MsgType::kClientHello, std::move(w).Take());
}

Result<ClientHello> DecodeClientHello(const net::Frame& f) {
  LW_RETURN_IF_ERROR(CheckType(f, MsgType::kClientHello));
  Reader r(f.payload);
  ClientHello m;
  LW_ASSIGN_OR_RETURN(m.version, r.U16());
  LW_ASSIGN_OR_RETURN(const std::uint8_t n, r.U8());
  for (int i = 0; i < n; ++i) {
    LW_ASSIGN_OR_RETURN(const std::uint8_t mode, r.U8());
    if (mode != 1 && mode != 2) return ProtocolError("unknown mode");
    m.supported_modes.push_back(static_cast<Mode>(mode));
  }
  LW_RETURN_IF_ERROR(r.ExpectEnd());
  return m;
}

net::Frame Encode(const ServerHello& m) {
  Writer w;
  w.U16(m.version);
  w.U8(static_cast<std::uint8_t>(m.mode));
  w.U8(m.server_role);
  w.U8(m.domain_bits);
  w.U32(m.record_size);
  w.LengthPrefixed(m.keyword_seed);
  w.LengthPrefixed(m.enclave_public_key);
  return MakeFrame(MsgType::kServerHello, std::move(w).Take());
}

Result<ServerHello> DecodeServerHello(const net::Frame& f) {
  LW_RETURN_IF_ERROR(CheckType(f, MsgType::kServerHello));
  Reader r(f.payload);
  ServerHello m;
  LW_ASSIGN_OR_RETURN(m.version, r.U16());
  LW_ASSIGN_OR_RETURN(const std::uint8_t mode, r.U8());
  if (mode != 1 && mode != 2) return ProtocolError("unknown mode");
  m.mode = static_cast<Mode>(mode);
  LW_ASSIGN_OR_RETURN(m.server_role, r.U8());
  if (m.server_role > 1) return ProtocolError("server role must be 0 or 1");
  LW_ASSIGN_OR_RETURN(m.domain_bits, r.U8());
  // 0 is legitimate in enclave mode (no PIR domain); anything above the DPF
  // bound would later size allocations as 2^d.
  if (m.domain_bits > dpf::kMaxDomainBits) {
    return ProtocolError("server hello domain_bits out of range");
  }
  LW_ASSIGN_OR_RETURN(m.record_size, r.U32());
  LW_ASSIGN_OR_RETURN(m.keyword_seed, r.LengthPrefixed());
  if (!m.keyword_seed.empty() && m.keyword_seed.size() != dpf::kSeedSize) {
    return ProtocolError("keyword seed must be empty or 16 bytes");
  }
  LW_ASSIGN_OR_RETURN(m.enclave_public_key, r.LengthPrefixed());
  if (!m.enclave_public_key.empty() && m.enclave_public_key.size() != 32) {
    return ProtocolError("enclave public key must be empty or 32 bytes");
  }
  LW_RETURN_IF_ERROR(r.ExpectEnd());
  return m;
}

net::Frame Encode(const GetRequest& m) {
  Writer w;
  w.U32(m.request_id);
  w.LengthPrefixed(m.body);
  return MakeFrame(MsgType::kGetRequest, std::move(w).Take());
}

Result<GetRequest> DecodeGetRequest(const net::Frame& f) {
  LW_RETURN_IF_ERROR(CheckType(f, MsgType::kGetRequest));
  Reader r(f.payload);
  GetRequest m;
  LW_ASSIGN_OR_RETURN(m.request_id, r.U32());
  LW_ASSIGN_OR_RETURN(m.body, r.LengthPrefixed());
  LW_RETURN_IF_ERROR(r.ExpectEnd());
  return m;
}

net::Frame Encode(const GetResponse& m) {
  Writer w;
  w.U32(m.request_id);
  w.LengthPrefixed(m.body);
  return MakeFrame(MsgType::kGetResponse, std::move(w).Take());
}

Result<GetResponse> DecodeGetResponse(const net::Frame& f) {
  LW_RETURN_IF_ERROR(CheckType(f, MsgType::kGetResponse));
  Reader r(f.payload);
  GetResponse m;
  LW_ASSIGN_OR_RETURN(m.request_id, r.U32());
  LW_ASSIGN_OR_RETURN(m.body, r.LengthPrefixed());
  LW_RETURN_IF_ERROR(r.ExpectEnd());
  return m;
}

net::Frame Encode(const ErrorMsg& m) {
  Writer w;
  w.U8(static_cast<std::uint8_t>(m.code));
  w.String(m.message);
  return MakeFrame(MsgType::kError, std::move(w).Take());
}

Result<ErrorMsg> DecodeError(const net::Frame& f) {
  LW_RETURN_IF_ERROR(CheckType(f, MsgType::kError));
  Reader r(f.payload);
  ErrorMsg m;
  LW_ASSIGN_OR_RETURN(const std::uint8_t code, r.U8());
  if (code > static_cast<std::uint8_t>(StatusCode::kDeadlineExceeded)) {
    return ProtocolError("unknown status code in error frame");
  }
  m.code = static_cast<StatusCode>(code);
  LW_ASSIGN_OR_RETURN(m.message, r.String());
  LW_RETURN_IF_ERROR(r.ExpectEnd());
  return m;
}

net::Frame EncodeBye() { return MakeFrame(MsgType::kBye, {}); }

Status StatusFromError(const ErrorMsg& e) {
  return Status(e.code, "server error: " + e.message);
}

}  // namespace lw::zltp
