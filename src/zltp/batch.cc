#include "zltp/batch.h"

#include <vector>

namespace lw::zltp {

BatchScheduler::BatchScheduler(const PirStore& store, BatchConfig config,
                               ThreadPool* pool)
    : store_(store), config_(config), pool_(pool) {
  LW_CHECK_MSG(config_.max_batch >= 1, "max_batch must be >= 1");
  worker_ = std::thread([this] { WorkerLoop(); });
}

BatchScheduler::~BatchScheduler() { Stop(); }

Result<Bytes> BatchScheduler::Submit(dpf::DpfKey key) {
  // Validate up front so one malformed query cannot fail co-riders' batch.
  if (key.domain_bits != store_.domain_bits()) {
    return ProtocolError("DPF domain does not match universe domain");
  }
  std::future<Result<Bytes>> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return UnavailableError("batch scheduler stopped");
    queue_.push_back(Pending{std::move(key), {}});
    future = queue_.back().promise.get_future();
  }
  cv_.notify_one();
  return future.get();
}

void BatchScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already stopped; nothing to join twice.
      if (!worker_.joinable()) return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  // Fail any queries that never made it into a batch.
  std::deque<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
  }
  for (Pending& p : leftovers) {
    p.promise.set_value(UnavailableError("batch scheduler stopped"));
  }
}

BatchScheduler::Stats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BatchScheduler::WorkerLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && stopping_) return;
      // First rider arrived; give co-riders a short window to join unless
      // the batch is already full.
      if (queue_.size() < config_.max_batch && !stopping_) {
        cv_.wait_for(lock, config_.max_wait, [this] {
          return queue_.size() >= config_.max_batch || stopping_;
        });
      }
      const std::size_t take = std::min(queue_.size(), config_.max_batch);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.requests += take;
      stats_.batches += 1;
    }

    std::vector<dpf::DpfKey> keys;
    keys.reserve(batch.size());
    for (Pending& p : batch) keys.push_back(std::move(p.key));
    auto answers = store_.AnswerBatch(keys, pool_);
    if (!answers.ok()) {
      for (Pending& p : batch) p.promise.set_value(answers.status());
      continue;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move((*answers)[i]));
    }
  }
}

}  // namespace lw::zltp
