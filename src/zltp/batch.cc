#include "zltp/batch.h"

#include <algorithm>
#include <utility>

#include "obs/metrics.h"

namespace lw::zltp {
namespace {

// Real-time slice for condition waits driven by an injected clock: a
// FakeClock advances without notifying anyone, so waiters re-check it at
// least this often. Deadlines stay exact in injected time; only the wake-up
// granularity is real.
constexpr std::chrono::milliseconds kFakeClockWaitSlice{1};

constexpr std::chrono::nanoseconds kNoDeadline =
    std::chrono::nanoseconds::max();

}  // namespace

BatchScheduler::BatchScheduler(const PirStore& store, BatchConfig config,
                               ThreadPool* pool)
    : store_(store),
      config_(config),
      pool_(pool),
      clock_(config.clock != nullptr ? config.clock : &Clock::Real()) {
  LW_CHECK_MSG(config_.max_batch >= 1, "max_batch must be >= 1");
  if (config_.pipelined) {
    scan_worker_ = std::thread([this] { ScanLoop(); });
  }
  expand_worker_ = std::thread([this] { ExpandLoop(); });
}

BatchScheduler::~BatchScheduler() { Stop(); }

void BatchScheduler::SubmitAsync(dpf::DpfKey key, SubmitCallback done) {
  // Validate up front so one malformed query cannot fail co-riders' batch.
  if (key.domain_bits != store_.domain_bits()) {
    done(ProtocolError("DPF domain does not match universe domain"),
         obs::StageTimings{});
    return;
  }
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (stopping_) {
      lock.unlock();
      done(UnavailableError("batch scheduler stopped"), obs::StageTimings{});
      return;
    }
    if (config_.queue_limit > 0 && queue_.size() >= config_.queue_limit) {
      // Admission control: refusing now with a cheap error beats accepting
      // a request whose queue wait alone would blow its latency budget.
      ++stats_.shed;
      obs::M().batch_shed.Inc();
      lock.unlock();
      done(ResourceExhaustedError("batch queue over queue_limit"),
           obs::StageTimings{});
      return;
    }
    const std::chrono::nanoseconds now = clock_->Now();
    Pending p;
    p.key = std::move(key);
    p.done = std::move(done);
    p.enqueued = now;
    p.deadline = config_.deadline_budget.count() > 0
                     ? now + config_.deadline_budget
                     : kNoDeadline;
    queue_.push_back(std::move(p));
    ++stats_.requests;
    obs::M().batch_queue_depth.Set(static_cast<std::int64_t>(queue_.size()));
  }
  cv_.notify_all();
}

Result<Bytes> BatchScheduler::Submit(dpf::DpfKey key,
                                     obs::StageTimings* stages) {
  std::promise<Result<Bytes>> done;
  std::future<Result<Bytes>> future = done.get_future();
  // The callback writes *stages before fulfilling the promise; the
  // promise/future handoff orders that write before this return.
  SubmitAsync(std::move(key),
              [&done, stages](Result<Bytes> answer,
                              const obs::StageTimings& timings) {
                if (stages != nullptr) {
                  stages->expand_ns = timings.expand_ns;
                  stages->scan_ns = timings.scan_ns;
                }
                done.set_value(std::move(answer));
              });
  return future.get();
}

void BatchScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !expand_worker_.joinable() && !scan_worker_.joinable()) {
      return;  // already fully stopped
    }
    stopping_ = true;
  }
  cv_.notify_all();
  // The expand worker drains the queue into final batches before exiting,
  // so every admitted request still gets a real answer.
  if (expand_worker_.joinable()) expand_worker_.join();
  // Only then stop the scan stage: it must first consume everything the
  // expand stage staged.
  {
    std::lock_guard<std::mutex> lock(staged_mu_);
    scan_stop_ = true;
  }
  staged_cv_.notify_all();
  if (scan_worker_.joinable()) scan_worker_.join();
  // Defensively fail anything still queued (unreachable in the normal
  // interleaving — Submit refuses once stopping_ is set).
  std::deque<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
    obs::M().batch_queue_depth.Set(0);
  }
  for (Pending& p : leftovers) {
    p.done(UnavailableError("batch scheduler stopped"), obs::StageTimings{});
  }
}

BatchScheduler::Stats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BatchScheduler::ExpandLoop() {
  for (;;) {
    std::vector<Pending> batch;
    if (!FormBatch(batch)) return;
    if (batch.empty()) continue;  // every taken rider had expired
    ExpandAndDispatch(std::move(batch));
  }
}

bool BatchScheduler::FormBatch(std::vector<Pending>& batch) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
  if (queue_.empty()) return false;  // stopping with nothing left to drain

  // First rider arrived; hold the batch open for co-riders until the close
  // rule fires: min(max_wait, earliest rider deadline - scan estimate),
  // re-evaluated as riders join, or max_batch fills, or Stop() drains.
  const std::chrono::nanoseconds t0 = clock_->Now();
  const bool real_clock = clock_ == &Clock::Real();
  bool deadline_driven = false;
  while (!stopping_ && queue_.size() < config_.max_batch) {
    const std::chrono::nanoseconds wait_close = t0 + config_.max_wait;
    std::chrono::nanoseconds close_at = wait_close;
    deadline_driven = false;
    if (config_.deadline_budget.count() > 0) {
      std::chrono::nanoseconds earliest = kNoDeadline;
      for (const Pending& p : queue_) {
        earliest = std::min(earliest, p.deadline);
      }
      const std::chrono::nanoseconds deadline_close =
          earliest - std::chrono::nanoseconds(scan_estimate_ns_);
      if (deadline_close < close_at) {
        close_at = deadline_close;
        deadline_driven = true;
      }
    }
    const std::chrono::nanoseconds now = clock_->Now();
    if (now >= close_at) break;
    // Real clock: sleep the full remainder (a new rider notifies cv_, and
    // the loop recomputes the close with its deadline). Injected clock:
    // short real slices, re-checking the fake time each wake.
    const std::chrono::nanoseconds remaining = close_at - now;
    cv_.wait_for(lock, real_clock
                           ? remaining
                           : std::min<std::chrono::nanoseconds>(
                                 remaining, kFakeClockWaitSlice));
  }

  const bool full = queue_.size() >= config_.max_batch;
  const std::chrono::nanoseconds formed = clock_->Now();
  std::vector<Pending> expired;
  while (batch.size() < config_.max_batch && !queue_.empty()) {
    Pending p = std::move(queue_.front());
    queue_.pop_front();
    if (p.deadline != kNoDeadline && formed >= p.deadline) {
      // Too late to be worth scanning for: answer DEADLINE_EXCEEDED now
      // rather than spend batch capacity on an answer nobody is waiting
      // for anymore.
      ++stats_.expired;
      expired.push_back(std::move(p));
      continue;
    }
    obs::M().batch_queue_wait_ns.Observe(
        static_cast<std::uint64_t>((formed - p.enqueued).count()));
    batch.push_back(std::move(p));
  }
  obs::M().batch_queue_depth.Set(static_cast<std::int64_t>(queue_.size()));
  if (!batch.empty()) {
    ++stats_.batches;
    if (full) {
      ++stats_.full_closes;
      obs::M().batch_full_closes.Inc();
    } else if (deadline_driven) {
      ++stats_.deadline_closes;
      obs::M().batch_deadline_closes.Inc();
    } else {
      ++stats_.wait_closes;
      obs::M().batch_wait_closes.Inc();
    }
  }
  lock.unlock();
  cv_.notify_all();  // queue shrank; a shed-side waiter may want to know
  for (Pending& p : expired) {
    obs::M().batch_expired.Inc();
    p.done(DeadlineExceededError("deadline budget expired before batch start"),
           obs::StageTimings{});
  }
  return true;
}

void BatchScheduler::ExpandAndDispatch(std::vector<Pending> batch) {
  obs::M().batch_requests.Inc(batch.size());
  obs::M().batch_batches.Inc();
  obs::M().batch_size.Observe(batch.size());

  StagedBatch staged;
  staged.formed_at = obs::TraceNow();
  std::vector<dpf::DpfKey> keys;
  keys.reserve(batch.size());
  for (Pending& p : batch) keys.push_back(std::move(p.key));
  staged.riders = std::move(batch);
  {
    // Stage 1. The thread-local sink collects expand_ns from inside
    // PirStore::ExpandBatch; scan_ns is credited later by the scan stage.
    obs::ScopedStageSink sink(&staged.stages);
    Result<PirStore::ExpandedBatch> expanded =
        store_.ExpandBatch(keys, pool_);
    if (expanded.ok()) {
      staged.expanded = std::move(*expanded);
    } else {
      staged.expand_status = expanded.status();
    }
  }

  if (!config_.pipelined) {
    // Serial mode: both stages on this thread, one batch at a time.
    ScanAndFulfill(std::move(staged));
    return;
  }
  {
    // Bounded handoff: at most kPipelineDepth expanded batches exist at
    // once (one scanning + one buffered), so expansion can run at most one
    // batch ahead — double buffering, not an unbounded queue of expensive
    // expanded selection vectors.
    std::unique_lock<std::mutex> lock(staged_mu_);
    staged_cv_.wait(lock, [this] {
      return staged_.size() < kPipelineDepth || scan_stop_;
    });
    if (scan_stop_) {
      lock.unlock();
      for (Pending& p : staged.riders) {
        p.done(UnavailableError("batch scheduler stopped"),
               obs::StageTimings{});
      }
      return;
    }
    staged_.push_back(std::move(staged));
  }
  staged_cv_.notify_all();
}

void BatchScheduler::ScanLoop() {
  for (;;) {
    StagedBatch staged;
    {
      std::unique_lock<std::mutex> lock(staged_mu_);
      if (staged_.empty() && !scan_stop_) {
        const auto idle_since = obs::TraceNow();
        staged_cv_.wait(lock,
                        [this] { return !staged_.empty() || scan_stop_; });
        if (!staged_.empty()) {
          // Stall accounting: the scan could have started at batch
          // formation had expansion been instant, so idle time before
          // that instant (an empty pipeline, not a slow expand) does not
          // count.
          const auto now = obs::TraceNow();
          const auto start = std::max(idle_since, staged_.front().formed_at);
          if (now > start) {
            obs::M().batch_pipeline_stall_ns.Inc(static_cast<std::uint64_t>(
                std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                                     start)
                    .count()));
          }
        }
      }
      if (staged_.empty()) return;  // scan_stop_ and fully drained
      staged = std::move(staged_.front());
      staged_.pop_front();
    }
    staged_cv_.notify_all();  // a staging slot freed for the expand worker
    ScanAndFulfill(std::move(staged));
  }
}

void BatchScheduler::ScanAndFulfill(StagedBatch staged) {
  if (!staged.expand_status.ok()) {
    for (Pending& p : staged.riders) {
      p.done(staged.expand_status, staged.stages);
    }
    return;
  }
  // Stage 2, with its own sink so scan_ns is attributable separately from
  // the (possibly concurrent) expansion of the next batch.
  obs::StageTimings scan_stages;
  Result<std::vector<Bytes>> answers = [&] {
    obs::ScopedStageSink sink(&scan_stages);
    return store_.ScanBatch(staged.expanded, pool_);
  }();
  staged.stages.scan_ns = scan_stages.scan_ns;
  {
    // Feed the admission controller's scan-time estimate: EWMA with
    // alpha = 1/4, so the close rule tracks recent scans without one
    // outlier whipsawing it.
    std::lock_guard<std::mutex> lock(mu_);
    scan_estimate_ns_ =
        scan_estimate_ns_ == 0
            ? staged.stages.scan_ns
            : (3 * scan_estimate_ns_ + staged.stages.scan_ns) / 4;
  }
  // Each callback receives the batch-level timings (each co-rider is
  // credited the full fused pass).
  if (!answers.ok()) {
    for (Pending& p : staged.riders) p.done(answers.status(), staged.stages);
    return;
  }
  for (std::size_t i = 0; i < staged.riders.size(); ++i) {
    staged.riders[i].done(std::move((*answers)[i]), staged.stages);
  }
}

}  // namespace lw::zltp
