#include "zltp/batch.h"

#include <vector>

#include "obs/metrics.h"

namespace lw::zltp {

BatchScheduler::BatchScheduler(const PirStore& store, BatchConfig config,
                               ThreadPool* pool)
    : store_(store), config_(config), pool_(pool) {
  LW_CHECK_MSG(config_.max_batch >= 1, "max_batch must be >= 1");
  worker_ = std::thread([this] { WorkerLoop(); });
}

BatchScheduler::~BatchScheduler() { Stop(); }

Result<Bytes> BatchScheduler::Submit(dpf::DpfKey key,
                                     obs::StageTimings* stages) {
  // Validate up front so one malformed query cannot fail co-riders' batch.
  if (key.domain_bits != store_.domain_bits()) {
    return ProtocolError("DPF domain does not match universe domain");
  }
  std::future<Result<Bytes>> future;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return UnavailableError("batch scheduler stopped");
    queue_.push_back(
        Pending{std::move(key), {}, stages, std::chrono::steady_clock::now()});
    future = queue_.back().promise.get_future();
  }
  cv_.notify_one();
  // The worker writes *stages before fulfilling the promise; the
  // promise/future handoff orders that write before this return.
  return future.get();
}

void BatchScheduler::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      // Already stopped; nothing to join twice.
      if (!worker_.joinable()) return;
    }
    stopping_ = true;
  }
  cv_.notify_all();
  if (worker_.joinable()) worker_.join();
  // Fail any queries that never made it into a batch.
  std::deque<Pending> leftovers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    leftovers.swap(queue_);
  }
  for (Pending& p : leftovers) {
    p.promise.set_value(UnavailableError("batch scheduler stopped"));
  }
}

BatchScheduler::Stats BatchScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void BatchScheduler::WorkerLoop() {
  for (;;) {
    std::vector<Pending> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return !queue_.empty() || stopping_; });
      if (queue_.empty() && stopping_) return;
      // First rider arrived; give co-riders a short window to join unless
      // the batch is already full.
      if (queue_.size() < config_.max_batch && !stopping_) {
        cv_.wait_for(lock, config_.max_wait, [this] {
          return queue_.size() >= config_.max_batch || stopping_;
        });
      }
      const std::size_t take = std::min(queue_.size(), config_.max_batch);
      for (std::size_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      stats_.requests += take;
      stats_.batches += 1;
    }

    const auto dequeued = std::chrono::steady_clock::now();
    for (const Pending& p : batch) {
      obs::M().batch_queue_wait_ns.Observe(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(dequeued -
                                                               p.enqueued)
              .count()));
    }
    obs::M().batch_requests.Inc(batch.size());
    obs::M().batch_batches.Inc();
    obs::M().batch_size.Observe(batch.size());

    std::vector<dpf::DpfKey> keys;
    keys.reserve(batch.size());
    for (Pending& p : batch) keys.push_back(std::move(p.key));

    // Collect the batch's expand/scan time via the thread-local stage sink
    // (PirStore and BlobDatabase credit it from deep inside AnswerBatch),
    // then fan the batch-level timings out to every rider before
    // fulfilling its promise.
    obs::StageTimings batch_stages;
    Result<std::vector<Bytes>> answers = [&] {
      obs::ScopedStageSink sink(&batch_stages);
      return store_.AnswerBatch(keys, pool_);
    }();
    for (Pending& p : batch) {
      if (p.stages != nullptr) {
        p.stages->expand_ns = batch_stages.expand_ns;
        p.stages->scan_ns = batch_stages.scan_ns;
      }
    }
    if (!answers.ok()) {
      for (Pending& p : batch) p.promise.set_value(answers.status());
      continue;
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      batch[i].promise.set_value(std::move((*answers)[i]));
    }
  }
}

}  // namespace lw::zltp
