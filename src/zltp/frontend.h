// Networked sharded deployment (paper §5.2).
//
// "To scale up from 1 GiB with a single c5.large data server, we consider a
// deployment of 305 c5.large data servers, each managing 1 GiB of the
// dataset. Such a deployment would also need several front-end servers to
// intercept incoming client requests, route them to the data servers, and
// combine the results. ... the front-end server can build the top part of
// the tree and then, for each sub-tree, send the sub-tree root to the
// corresponding server."
//
// ShardDataServer holds one residue class of the universe (shard s owns
// indices ≡ s mod 2^top_bits, matching dpf::SplitForShards) and answers
// sub-tree queries over an internal framed transport. FrontEndServer speaks
// standard ZLTP to clients; per GET it expands the top of the client's DPF
// key once, fans the sub-tree roots out to every shard, and XOR-combines
// the shard answers into the client's record share.
//
// The front-end/shard link is CDN-internal (one trust domain per logical
// server), so it uses bare GetRequest/GetResponse frames without a hello.
#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "dpf/dpf.h"
#include "net/reactor.h"
#include "net/transport.h"
#include "pir/blob_db.h"
#include "util/bytes.h"
#include "util/status.h"
#include "util/task_queue.h"
#include "util/thread_pool.h"
#include "zltp/messages.h"

namespace lw::zltp {

struct ShardTopology {
  int domain_bits = 22;       // full universe domain
  int top_bits = 2;           // 2^top_bits shards
  std::size_t record_size = 4096;

  int shard_domain_bits() const { return domain_bits - top_bits; }
  std::size_t shard_count() const { return std::size_t{1} << top_bits; }
};

class ShardDataServer {
 public:
  // `num_threads` drives the shard's sub-tree DPF expansion and XOR scan
  // through a private pool (0 = hardware_concurrency(), 1 = serial; the
  // default stays serial because deployments typically pack one shard per
  // small instance — paper §5.2).
  ShardDataServer(const ShardTopology& topology, std::size_t shard_index,
                  int num_threads = 1);
  ~ShardDataServer();

  ShardDataServer(const ShardDataServer&) = delete;
  ShardDataServer& operator=(const ShardDataServer&) = delete;

  std::size_t shard_index() const { return shard_index_; }
  std::size_t record_count() const;

  // Loads a record at a universe-global index. INVALID_ARGUMENT if the
  // index does not belong to this shard's residue class.
  Status Load(std::uint64_t global_index, ByteSpan record);

  // Local answer to one sub-tree query (for in-process use and tests).
  Result<Bytes> Answer(const dpf::SubtreeKey& key) const;

  // Serves framed sub-tree queries until the peer disconnects.
  void ServeConnection(net::Transport& transport);
  void ServeConnectionDetached(std::unique_ptr<net::Transport> transport);

  // Event-driven serving: sub-tree queries decode on the loop and compute
  // on a dispatcher worker (teardown order: see ZltpPirServer, server.h).
  Status ServeOnReactor(net::Reactor& reactor, net::TcpListener listener);

 private:
  ShardTopology topology_;
  std::size_t shard_index_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1
  mutable std::mutex db_mu_;
  pir::BlobDatabase db_;

  std::mutex threads_mu_;  // snapshot-then-join discipline (see server.h)
  bool stopping_ = false;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<net::Transport>> owned_transports_;
  std::unique_ptr<TaskQueue> dispatch_;  // last member: joins first
};

// The front-end's private-GET engine: splits a client key and queries every
// shard over its transport. Exposed separately from the ZLTP session loop
// so ZltpPirServer-style serving and benches can share it.
class ShardFanout {
 public:
  // One transport per shard, in shard order. The front-end owns them.
  ShardFanout(const ShardTopology& topology,
              std::vector<std::unique_ptr<net::Transport>> shard_links);

  const ShardTopology& topology() const { return topology_; }

  // Splits, fans out, and XOR-combines. Serializes concurrent callers (the
  // shard links are single-stream).
  Result<Bytes> Answer(const dpf::DpfKey& key);

 private:
  ShardTopology topology_;
  // unique_ptr keeps ShardFanout movable (it is constructed and handed to
  // a FrontEndServer by value).
  std::unique_ptr<std::mutex> mu_ = std::make_unique<std::mutex>();
  std::vector<std::unique_ptr<net::Transport>> shards_;
  std::uint32_t next_request_id_ = 1;
};

// A complete logical ZLTP server built from a fan-out: speaks the standard
// client protocol (hello + GETs), so PirSession works unchanged against a
// sharded deployment.
class FrontEndServer {
 public:
  FrontEndServer(std::uint8_t role, Bytes keyword_seed, ShardFanout fanout);
  ~FrontEndServer();

  FrontEndServer(const FrontEndServer&) = delete;
  FrontEndServer& operator=(const FrontEndServer&) = delete;

  void ServeConnection(net::Transport& transport);
  void ServeConnectionDetached(std::unique_ptr<net::Transport> transport);

  // Event-driven serving: GETs decode on the loop and fan out to the
  // shards from a dispatcher worker — the shard links are single-stream
  // and the fan-out blocks on their replies, so it must not run on the
  // loop (teardown order: see ZltpPirServer, server.h).
  Status ServeOnReactor(net::Reactor& reactor, net::TcpListener listener);

 private:
  std::uint8_t role_;
  Bytes keyword_seed_;
  ShardFanout fanout_;

  std::mutex threads_mu_;  // snapshot-then-join discipline (see server.h)
  bool stopping_ = false;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<net::Transport>> owned_transports_;
  std::unique_ptr<TaskQueue> dispatch_;  // last member: joins first
};

}  // namespace lw::zltp
