// Networked sharded deployment (paper §5.2).
//
// "To scale up from 1 GiB with a single c5.large data server, we consider a
// deployment of 305 c5.large data servers, each managing 1 GiB of the
// dataset. Such a deployment would also need several front-end servers to
// intercept incoming client requests, route them to the data servers, and
// combine the results. ... the front-end server can build the top part of
// the tree and then, for each sub-tree, send the sub-tree root to the
// corresponding server."
//
// ShardDataServer holds one residue class of the universe (shard s owns
// indices ≡ s mod 2^top_bits, matching dpf::SplitForShards) and answers
// sub-tree queries over an internal framed transport. FrontEndServer speaks
// standard ZLTP to clients; per GET it expands the top of the client's DPF
// key once, fans the sub-tree roots out to every shard, and XOR-combines
// the shard answers into the client's record share.
//
// The front-end/shard link is CDN-internal (one trust domain per logical
// server), so it uses bare GetRequest/GetResponse frames without a hello.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dpf/dpf.h"
#include "net/reactor.h"
#include "net/transport.h"
#include "pir/blob_db.h"
#include "util/bytes.h"
#include "util/clock.h"
#include "util/status.h"
#include "util/task_queue.h"
#include "util/thread_pool.h"
#include "zltp/messages.h"

namespace lw::zltp {

struct ShardTopology {
  int domain_bits = 22;       // full universe domain
  int top_bits = 2;           // 2^top_bits shards
  std::size_t record_size = 4096;

  int shard_domain_bits() const { return domain_bits - top_bits; }
  std::size_t shard_count() const { return std::size_t{1} << top_bits; }
};

class ShardDataServer {
 public:
  // `num_threads` drives the shard's sub-tree DPF expansion and XOR scan
  // through a private pool (0 = hardware_concurrency(), 1 = serial; the
  // default stays serial because deployments typically pack one shard per
  // small instance — paper §5.2).
  ShardDataServer(const ShardTopology& topology, std::size_t shard_index,
                  int num_threads = 1);
  ~ShardDataServer();

  ShardDataServer(const ShardDataServer&) = delete;
  ShardDataServer& operator=(const ShardDataServer&) = delete;

  std::size_t shard_index() const { return shard_index_; }
  std::size_t record_count() const;

  // Loads a record at a universe-global index. INVALID_ARGUMENT if the
  // index does not belong to this shard's residue class.
  Status Load(std::uint64_t global_index, ByteSpan record);

  // Local answer to one sub-tree query (for in-process use and tests).
  Result<Bytes> Answer(const dpf::SubtreeKey& key) const;

  // Serves framed sub-tree queries until the peer disconnects.
  void ServeConnection(net::Transport& transport);
  void ServeConnectionDetached(std::unique_ptr<net::Transport> transport);

  // Event-driven serving: sub-tree queries decode on the loop and compute
  // on a dispatcher worker (teardown order: see ZltpPirServer, server.h).
  Status ServeOnReactor(net::Reactor& reactor, net::TcpListener listener);

 private:
  ShardTopology topology_;
  std::size_t shard_index_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1
  mutable std::mutex db_mu_;
  pir::BlobDatabase db_;

  std::mutex threads_mu_;  // snapshot-then-join discipline (see server.h)
  bool stopping_ = false;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<net::Transport>> owned_transports_;
  std::unique_ptr<TaskQueue> dispatch_;  // last member: joins first
};

// Tuning for the multiplexed fan-out (ShardFanout).
struct FanoutOptions {
  // Per-op budget: a private GET that has not combined every shard reply
  // within this window fails DEADLINE_EXCEEDED — a dead shard must never
  // wedge the front-end (the deadline-everywhere discipline,
  // docs/ROBUSTNESS.md). zero = unbounded (tests only).
  std::chrono::milliseconds op_timeout{5000};
  // Time source for op deadlines. null = Clock::Real().
  Clock* clock = nullptr;
  // Optional per-shard redial factories, in shard order (empty, or one per
  // shard). After a link-level failure — transport error, or a shard error
  // frame, which carries no request id and so poisons the stream's only
  // remaining correlation — the fan-out closes the link and dials a fresh
  // one instead of trying to resynchronize a stream it no longer trusts.
  // Without a factory a failed link stays down and ops touching it fail
  // fast with the link's error.
  std::vector<net::TransportFactory> redial;
};

// The front-end's private-GET engine: splits a client key and queries every
// shard. Exposed separately from the ZLTP session loop so FrontEndServer
// serving and benches can share it.
//
// The fan-out is a client-side multiplexer: every op gets a unique request
// id, its sub-queries are pipelined onto all shard links at once, and a
// pending-op correlation table matches replies as they arrive — out of
// order across ops, concurrently across links. A late or stale reply is
// matched by id or dropped, never misattributed to the next request, which
// structurally removes the desync bug class the old lock-step fan-out had
// (an early error return leaving unread replies in other shards' pipes).
class ShardFanout {
 public:
  // Invoked exactly once per AnswerAsync, possibly on a link reader
  // thread, a reactor loop thread, or (for immediate failures) the calling
  // thread. Must not block.
  using AnswerCallback = std::function<void(Result<Bytes>)>;

  // One transport per shard, in shard order. The fan-out owns them and
  // runs a reader/writer thread pair per link.
  ShardFanout(const ShardTopology& topology,
              std::vector<std::unique_ptr<net::Transport>> shard_links,
              FanoutOptions options = {});

  // Reactor-multiplexed links: dials every shard address through `reactor`
  // (non-blocking connects; net::Reactor::Connect), so one loop thread
  // carries all outbound shard traffic and no fan-out threads exist.
  // Teardown order matches the serving contract (server.h): stop the
  // reactor first, then destroy the fan-out, then the reactor object.
  struct ShardAddr {
    std::string host;
    std::uint16_t port = 0;
  };
  static Result<ShardFanout> ConnectOnReactor(const ShardTopology& topology,
                                              net::Reactor& reactor,
                                              std::vector<ShardAddr> shards,
                                              FanoutOptions options = {});

  // Defined in frontend.cc, where Mux is a complete type.
  ShardFanout(ShardFanout&&) noexcept;
  ShardFanout& operator=(ShardFanout&&) noexcept;
  ~ShardFanout();  // completes every pending op with UNAVAILABLE

  const ShardTopology& topology() const;

  // Non-blocking: splits the key, pipelines one sub-query per shard link,
  // and registers the op in the correlation table; `done` fires when the
  // last shard reply has been XOR-combined or the op fails (per-op
  // deadline, link failure). Many ops may be in flight at once.
  void AnswerAsync(const dpf::DpfKey& key, AnswerCallback done);

  // Blocking wrapper around AnswerAsync for the threaded serve path and
  // direct callers. Concurrent callers pipeline — there is no fan-out-wide
  // mutex around the shard round trips.
  Result<Bytes> Answer(const dpf::DpfKey& key);

  // The correlation table + links. Defined in frontend.cc; public only so
  // the link backends there (plain classes, not members) can derive from
  // Mux::Link.
  class Mux;

 private:
  explicit ShardFanout(std::unique_ptr<Mux> mux);
  std::unique_ptr<Mux> mux_;
};

// A complete logical ZLTP server built from a fan-out: speaks the standard
// client protocol (hello + GETs), so PirSession works unchanged against a
// sharded deployment.
class FrontEndServer {
 public:
  FrontEndServer(std::uint8_t role, Bytes keyword_seed, ShardFanout fanout);
  ~FrontEndServer();

  FrontEndServer(const FrontEndServer&) = delete;
  FrontEndServer& operator=(const FrontEndServer&) = delete;

  void ServeConnection(net::Transport& transport);
  void ServeConnectionDetached(std::unique_ptr<net::Transport> transport);

  // Event-driven serving: GETs decode on the loop and go straight into
  // ShardFanout::AnswerAsync — the fan-out is non-blocking, so no
  // dispatcher worker sits between decode and the shard links; replies
  // complete out of order via the fan-out's correlation table and are sent
  // from its completion callbacks. Teardown order: reactor.Stop() first,
  // then destroy this server (the fan-out fails pending ops with
  // UNAVAILABLE), then the reactor object (see ZltpPirServer, server.h).
  Status ServeOnReactor(net::Reactor& reactor, net::TcpListener listener);

 private:
  std::uint8_t role_;
  Bytes keyword_seed_;
  ShardFanout fanout_;

  std::mutex threads_mu_;  // snapshot-then-join discipline (see server.h)
  bool stopping_ = false;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<net::Transport>> owned_transports_;
};

}  // namespace lw::zltp
