// PirStore: the content store behind a ZLTP PIR-mode server.
//
// Combines the keyword registry (key → DPF domain index, collision
// detection), record packing (fingerprint + padding to the universe's fixed
// blob size), and one or more blob-database shards. With shard_top_bits > 0
// the store models the paper's §5.2 deployment: the front-end expands the
// top of the client's DPF tree once and each shard evaluates only its
// sub-tree over its slice of the data.
//
// Thread-safe: queries take a shared lock, publishes an exclusive one — a
// CDN publishes new pages while serving private-GETs.
#pragma once

#include <memory>
#include <shared_mutex>
#include <string_view>
#include <vector>

#include "dpf/dpf.h"
#include "pir/blob_db.h"
#include "pir/keyword.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lw {
class ThreadPool;
}

namespace lw::zltp {

struct PirStoreConfig {
  int domain_bits = 22;          // paper §5.1 default
  std::size_t record_size = 4096;  // paper's 4 KiB data blobs
  Bytes keyword_seed;            // 16 bytes; random if empty
  int shard_top_bits = 0;        // 2^shard_top_bits data shards
};

class PirStore {
 public:
  explicit PirStore(PirStoreConfig config);

  const PirStoreConfig& config() const { return config_; }
  const pir::KeywordMapper& mapper() const { return registry_.mapper(); }
  int domain_bits() const { return config_.domain_bits; }
  std::size_t record_size() const { return config_.record_size; }
  std::size_t shard_count() const { return shards_.size(); }

  // Publishes (or re-publishes) a key's payload. COLLISION if a different
  // key occupies the same domain index; INVALID_ARGUMENT if the payload
  // does not fit the fixed record size.
  Status Publish(std::string_view key, ByteSpan payload);

  Status Unpublish(std::string_view key);

  bool Contains(std::string_view key) const;
  std::size_t record_count() const;
  std::size_t stored_bytes() const;

  // Answers one PIR query (full scan). The DPF key's domain must match.
  // A non-null pool parallelizes the DPF expansion and the data scan
  // across its workers (identical answers either way).
  Result<Bytes> AnswerQuery(const dpf::DpfKey& key,
                            ThreadPool* pool = nullptr) const;

  // Answers a batch with one fused pass over each shard's data.
  // Equivalent to ExpandBatch followed by ScanBatch.
  Result<std::vector<Bytes>> AnswerBatch(const std::vector<dpf::DpfKey>& keys,
                                         ThreadPool* pool = nullptr) const;

  // A batch's DPF expansion, decoupled from its data scan so a pipelined
  // scheduler can overlap stage 1 of batch N+1 with stage 2 of batch N
  // (zltp::BatchScheduler's two-stage pipeline).
  struct ExpandedBatch {
    // shard_bits[s][q]: query q's selection bits over shard s's sub-domain.
    std::vector<std::vector<dpf::BitVector>> shard_bits;
    std::size_t query_count = 0;
  };

  // Stage 1: evaluates every key's DPF (full-domain, or per-shard sub-trees
  // when sharded). Pure compute over immutable config — takes no store
  // lock, so it runs concurrently with a ScanBatch of another batch.
  Result<ExpandedBatch> ExpandBatch(const std::vector<dpf::DpfKey>& keys,
                                    ThreadPool* pool = nullptr) const;

  // Stage 2: one fused pass over each shard's records under the shared
  // lock, XOR-combining shard answers per query.
  Result<std::vector<Bytes>> ScanBatch(const ExpandedBatch& expanded,
                                       ThreadPool* pool = nullptr) const;

  // Non-private direct read (publisher tooling / tests).
  Result<Bytes> DirectLookup(std::string_view key) const;

  // Every published key (used by universe peering). Not cheap; exclusive of
  // serving hot paths.
  std::vector<std::string> Keys() const;

 private:
  struct ShardRef {
    std::size_t shard;
    std::uint64_t local_index;
  };
  ShardRef Locate(std::uint64_t global_index) const;

  PirStoreConfig config_;
  int shard_bits_;  // domain bits per shard
  mutable std::shared_mutex mu_;
  pir::KeywordRegistry registry_;
  std::vector<std::unique_ptr<pir::BlobDatabase>> shards_;
};

}  // namespace lw::zltp
