#include "zltp/server.h"

#include <atomic>
#include <chrono>
#include <unordered_set>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"

namespace lw::zltp {
namespace {

// Counts the connection and holds the active-connections gauge up for the
// lifetime of a ServeConnection call.
struct ActiveConnection {
  ActiveConnection() {
    obs::M().server_connections.Inc();
    obs::M().server_active_connections.Add(1);
  }
  ~ActiveConnection() { obs::M().server_active_connections.Add(-1); }
  ActiveConnection(const ActiveConnection&) = delete;
  ActiveConnection& operator=(const ActiveConnection&) = delete;
};

// Sends an error frame, ignoring transport failures (we are already on the
// way out if the send fails).
void SendError(net::Transport& t, StatusCode code, const std::string& msg) {
  ErrorMsg e;
  e.code = code;
  e.message = msg;
  (void)t.Send(Encode(e));
}

// Shared hello handling: reads the ClientHello and checks the mode.
Status ExpectHelloWithMode(net::Transport& t, Mode required) {
  auto frame = t.Receive(net::Deadline::Infinite());
  if (!frame.ok()) return frame.status();
  auto hello = DecodeClientHello(*frame);
  if (!hello.ok()) {
    SendError(t, StatusCode::kProtocolError, hello.status().message());
    return hello.status();
  }
  if (hello->version != kProtocolVersion) {
    SendError(t, StatusCode::kProtocolError, "unsupported protocol version");
    return ProtocolError("client speaks version " +
                         std::to_string(hello->version));
  }
  for (Mode m : hello->supported_modes) {
    if (m == required) return Status::Ok();
  }
  SendError(t, StatusCode::kFailedPrecondition,
            std::string("server only supports mode ") + ModeName(required));
  return FailedPreconditionError("client does not support required mode");
}

// --- reactor-mode helpers -------------------------------------------------
//
// Per-listener connection state for event-driven serving. Every reactor
// handler (on_open/on_frame/on_close) runs on the loop thread, so this
// needs no lock.
struct ReactorSessions {
  std::unordered_set<net::Reactor::ConnId> awaiting_hello;
};

// Queues an error frame; like SendError, failures are ignored (the
// connection is on its way out or the queue will notice).
void SendErrorFrameTo(net::Reactor& reactor, net::Reactor::ConnId id,
                      StatusCode code, const std::string& msg) {
  ErrorMsg e;
  e.code = code;
  e.message = msg;
  (void)reactor.Send(id, Encode(e));
}

// Reactor-mode twin of ExpectHelloWithMode, operating on an already-parsed
// frame: checks version and mode, and on failure queues the error and a
// graceful close (error frame then hang up, same as the threaded path).
Status CheckHelloFrame(net::Reactor& reactor, net::Reactor::ConnId id,
                       const net::Frame& frame, Mode required) {
  auto hello = DecodeClientHello(frame);
  Status bad = Status::Ok();
  if (!hello.ok()) {
    bad = hello.status();
    SendErrorFrameTo(reactor, id, StatusCode::kProtocolError, bad.message());
  } else if (hello->version != kProtocolVersion) {
    bad = ProtocolError("client speaks version " +
                        std::to_string(hello->version));
    SendErrorFrameTo(reactor, id, StatusCode::kProtocolError,
                     "unsupported protocol version");
  } else {
    bool supported = false;
    for (Mode m : hello->supported_modes) supported |= (m == required);
    if (!supported) {
      bad = FailedPreconditionError("client does not support required mode");
      SendErrorFrameTo(reactor, id, StatusCode::kFailedPrecondition,
                       std::string("server only supports mode ") +
                           ModeName(required));
    }
  }
  if (!bad.ok()) reactor.CloseAfterFlush(id);
  return bad;
}

}  // namespace

// --------------------------------------------------------------- PIR

ZltpPirServer::ZltpPirServer(const PirStore& store, std::uint8_t role,
                             ServerOptions options)
    : store_(store),
      role_(role),
      pool_(options.num_threads == 1
                ? nullptr
                : std::make_unique<ThreadPool>(options.num_threads)),
      batcher_(store, options.batch_config, pool_.get()) {
  LW_CHECK_MSG(role <= 1, "PIR server role must be 0 or 1");
}

ZltpPirServer::ZltpPirServer(const PirStore& store, std::uint8_t role,
                             BatchConfig batch_config)
    : ZltpPirServer(store, role, ServerOptions{batch_config, 0}) {}

ZltpPirServer::~ZltpPirServer() {
  batcher_.Stop();
  // Snapshot-then-join: handlers may still be enqueueing via
  // ServeConnectionDetached, and a joined thread must never be waiting on
  // threads_mu_ itself, so the lock covers only the state swap.
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<net::Transport>> transports;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    stopping_ = true;
    threads.swap(threads_);
    transports.swap(owned_transports_);
  }
  for (auto& t : transports) t->Close();
  for (auto& th : threads) {
    if (th.joinable()) th.join();
  }
}

void ZltpPirServer::ServeConnection(net::Transport& transport) {
  ActiveConnection conn_guard;
  if (!ExpectHelloWithMode(transport, Mode::kTwoServerPir).ok()) return;

  ServerHello hello;
  hello.mode = Mode::kTwoServerPir;
  hello.server_role = role_;
  hello.domain_bits = static_cast<std::uint8_t>(store_.domain_bits());
  hello.record_size = static_cast<std::uint32_t>(store_.record_size());
  hello.keyword_seed = store_.config().keyword_seed;
  if (!transport.Send(Encode(hello)).ok()) return;

  // Pipelined requests from one connection are handled concurrently so they
  // co-ride the batch scheduler's scans (responses may be sent out of
  // order; the protocol matches them by request id). Worker count is
  // bounded: excess requests are handled inline, which naturally
  // back-pressures a flooding client.
  constexpr int kMaxInflight = 32;
  std::mutex send_mu;
  std::atomic<int> inflight{0};
  std::vector<std::thread> workers;

  const auto handle = [this, &transport, &send_mu](
                          std::uint32_t request_id, dpf::DpfKey key,
                          std::uint64_t start_unix_ms,
                          std::chrono::steady_clock::time_point req_start,
                          std::uint64_t decode_ns) {
    obs::RequestTrace trace;
    trace.start_unix_ms = start_unix_ms;
    trace.stages.decode_ns = decode_ns;
    // Submit fills in the batch-attributed expand/scan stage timings.
    auto answer = batcher_.Submit(std::move(key), &trace.stages);
    std::lock_guard<std::mutex> lock(send_mu);
    if (!answer.ok()) {
      obs::M().server_request_errors.Inc();
      SendError(transport, answer.status().code(),
                answer.status().message());
      return;
    }
    GetResponse response;
    response.request_id = request_id;
    response.body = std::move(*answer);
    const auto reply_start = obs::TraceNow();
    (void)transport.Send(Encode(response));
    trace.stages.reply_ns = obs::ElapsedNs(reply_start);
    trace.total_ns = obs::ElapsedNs(req_start);
    obs::M().server_requests.Inc();
    obs::M().server_request_ns.Observe(trace.total_ns);
    obs::TraceRing::Default().Record(trace);
  };

  for (;;) {
    // The batcher's long-poll: the server deliberately waits forever for
    // the next pipelined request; the client owns all timeout decisions.
    // lwlint: allow(receive-without-deadline)
    auto frame = transport.Receive();
    if (!frame.ok()) break;  // disconnect
    if (frame->type == static_cast<std::uint8_t>(MsgType::kBye)) break;

    const auto req_start = obs::TraceNow();
    const std::uint64_t start_unix_ms = obs::UnixMillis();
    auto request = DecodeGetRequest(*frame);
    if (!request.ok()) {
      obs::M().server_request_errors.Inc();
      std::lock_guard<std::mutex> lock(send_mu);
      SendError(transport, StatusCode::kProtocolError,
                request.status().message());
      break;
    }
    auto key = dpf::DpfKey::Deserialize(request->body);
    if (!key.ok()) {
      obs::M().server_request_errors.Inc();
      std::lock_guard<std::mutex> lock(send_mu);
      SendError(transport, StatusCode::kProtocolError,
                "malformed DPF key: " + key.status().message());
      break;
    }
    const std::uint64_t decode_ns = obs::ElapsedNs(req_start);
    if (inflight.load() < kMaxInflight) {
      ++inflight;
      workers.emplace_back(
          [&handle, &inflight, id = request->request_id, start_unix_ms,
           req_start, decode_ns, k = std::move(*key)]() mutable {
            handle(id, std::move(k), start_unix_ms, req_start, decode_ns);
            --inflight;
          });
    } else {
      handle(request->request_id, std::move(*key), start_unix_ms, req_start,
             decode_ns);
    }
  }
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
}

void ZltpPirServer::ServeConnectionDetached(
    std::unique_ptr<net::Transport> transport) {
  std::lock_guard<std::mutex> lock(threads_mu_);
  if (stopping_) {
    transport->Close();
    return;
  }
  net::Transport* raw = transport.get();
  owned_transports_.push_back(std::move(transport));
  threads_.emplace_back([this, raw] { ServeConnection(*raw); });
}

Status ZltpPirServer::ServeOnReactor(net::Reactor& reactor,
                                     net::TcpListener listener) {
  auto sessions = std::make_shared<ReactorSessions>();
  net::Reactor::Handler handler;
  handler.on_open = [sessions](net::Reactor::ConnId id) {
    obs::M().server_connections.Inc();
    obs::M().server_active_connections.Add(1);
    sessions->awaiting_hello.insert(id);
  };
  handler.on_close = [sessions](net::Reactor::ConnId id, const Status&) {
    obs::M().server_active_connections.Add(-1);
    sessions->awaiting_hello.erase(id);
  };
  handler.on_frame = [this, sessions, &reactor](net::Reactor::ConnId id,
                                                net::Frame frame) {
    if (sessions->awaiting_hello.erase(id) > 0) {
      if (!CheckHelloFrame(reactor, id, frame, Mode::kTwoServerPir).ok()) {
        return;
      }
      ServerHello hello;
      hello.mode = Mode::kTwoServerPir;
      hello.server_role = role_;
      hello.domain_bits = static_cast<std::uint8_t>(store_.domain_bits());
      hello.record_size = static_cast<std::uint32_t>(store_.record_size());
      hello.keyword_seed = store_.config().keyword_seed;
      (void)reactor.Send(id, Encode(hello));
      return;
    }
    if (frame.type == static_cast<std::uint8_t>(MsgType::kBye)) {
      reactor.CloseAfterFlush(id);
      return;
    }
    const auto req_start = obs::TraceNow();
    const std::uint64_t start_unix_ms = obs::UnixMillis();
    auto request = DecodeGetRequest(frame);
    if (!request.ok()) {
      obs::M().server_request_errors.Inc();
      SendErrorFrameTo(reactor, id, StatusCode::kProtocolError,
                       request.status().message());
      reactor.CloseAfterFlush(id);
      return;
    }
    auto key = dpf::DpfKey::Deserialize(request->body);
    if (!key.ok()) {
      obs::M().server_request_errors.Inc();
      SendErrorFrameTo(reactor, id, StatusCode::kProtocolError,
                       "malformed DPF key: " + key.status().message());
      reactor.CloseAfterFlush(id);
      return;
    }
    const std::uint64_t decode_ns = obs::ElapsedNs(req_start);
    // The admission queue is the scheduler: no per-request thread exists.
    // The scan worker runs this callback and queues the reply; reply_ns
    // covers the enqueue (the loop owns the socket write).
    batcher_.SubmitAsync(
        std::move(*key),
        [&reactor, id, request_id = request->request_id, start_unix_ms,
         req_start, decode_ns](Result<Bytes> answer,
                               const obs::StageTimings& timings) {
          if (!answer.ok()) {
            obs::M().server_request_errors.Inc();
            SendErrorFrameTo(reactor, id, answer.status().code(),
                             answer.status().message());
            return;
          }
          obs::RequestTrace trace;
          trace.start_unix_ms = start_unix_ms;
          trace.stages.decode_ns = decode_ns;
          trace.stages.expand_ns = timings.expand_ns;
          trace.stages.scan_ns = timings.scan_ns;
          GetResponse response;
          response.request_id = request_id;
          response.body = std::move(*answer);
          const auto reply_start = obs::TraceNow();
          (void)reactor.Send(id, Encode(response));
          trace.stages.reply_ns = obs::ElapsedNs(reply_start);
          trace.total_ns = obs::ElapsedNs(req_start);
          obs::M().server_requests.Inc();
          obs::M().server_request_ns.Observe(trace.total_ns);
          obs::TraceRing::Default().Record(trace);
        });
  };
  return reactor.AddListener(std::move(listener), std::move(handler));
}

// ------------------------------------------------------------ enclave

ZltpEnclaveServer::ZltpEnclaveServer(oram::KvEnclave& enclave)
    : enclave_(enclave) {}

ZltpEnclaveServer::~ZltpEnclaveServer() {
  // Snapshot-then-join (see ZltpPirServer::~ZltpPirServer).
  std::vector<std::thread> threads;
  std::vector<std::unique_ptr<net::Transport>> transports;
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    stopping_ = true;
    threads.swap(threads_);
    transports.swap(owned_transports_);
  }
  for (auto& t : transports) t->Close();
  for (auto& th : threads) {
    if (th.joinable()) th.join();
  }
}

void ZltpEnclaveServer::ServeConnection(net::Transport& transport) {
  ActiveConnection conn_guard;
  if (!ExpectHelloWithMode(transport, Mode::kEnclave).ok()) return;

  ServerHello hello;
  hello.mode = Mode::kEnclave;
  hello.record_size = static_cast<std::uint32_t>(enclave_.value_size());
  hello.enclave_public_key = enclave_.public_key();
  if (!transport.Send(Encode(hello)).ok()) return;

  for (;;) {
    auto frame = transport.Receive(net::Deadline::Infinite());
    if (!frame.ok()) return;
    if (frame->type == static_cast<std::uint8_t>(MsgType::kBye)) return;

    const auto req_start = obs::TraceNow();
    obs::RequestTrace trace;
    trace.start_unix_ms = obs::UnixMillis();
    auto request = DecodeGetRequest(*frame);
    if (!request.ok()) {
      obs::M().server_request_errors.Inc();
      SendError(transport, StatusCode::kProtocolError,
                request.status().message());
      return;
    }
    trace.stages.decode_ns = obs::ElapsedNs(req_start);
    Result<Bytes> sealed = UnavailableError("unset");
    {
      std::lock_guard<std::mutex> lock(enclave_mu_);
      sealed = enclave_.HandleEncryptedRequest(request->body);
    }
    if (!sealed.ok()) {
      obs::M().server_request_errors.Inc();
      SendError(transport, sealed.status().code(), sealed.status().message());
      continue;
    }
    GetResponse response;
    response.request_id = request->request_id;
    response.body = std::move(*sealed);
    const auto reply_start = obs::TraceNow();
    const bool sent = transport.Send(Encode(response)).ok();
    // Enclave requests have no DPF expansion or scan pass, so those stage
    // timings stay zero; the enclave compute rides in total_ns.
    trace.stages.reply_ns = obs::ElapsedNs(reply_start);
    trace.total_ns = obs::ElapsedNs(req_start);
    obs::M().server_requests.Inc();
    obs::M().server_request_ns.Observe(trace.total_ns);
    obs::TraceRing::Default().Record(trace);
    if (!sent) return;
  }
}

void ZltpEnclaveServer::ServeConnectionDetached(
    std::unique_ptr<net::Transport> transport) {
  std::lock_guard<std::mutex> lock(threads_mu_);
  if (stopping_) {
    transport->Close();
    return;
  }
  net::Transport* raw = transport.get();
  owned_transports_.push_back(std::move(transport));
  threads_.emplace_back([this, raw] { ServeConnection(*raw); });
}

Status ZltpEnclaveServer::ServeOnReactor(net::Reactor& reactor,
                                         net::TcpListener listener) {
  {
    // One dispatcher worker: the enclave is serialized by enclave_mu_
    // anyway, and one worker preserves per-connection reply order.
    std::lock_guard<std::mutex> lock(threads_mu_);
    if (dispatch_ == nullptr) dispatch_ = std::make_unique<TaskQueue>(1);
  }
  auto sessions = std::make_shared<ReactorSessions>();
  net::Reactor::Handler handler;
  handler.on_open = [sessions](net::Reactor::ConnId id) {
    obs::M().server_connections.Inc();
    obs::M().server_active_connections.Add(1);
    sessions->awaiting_hello.insert(id);
  };
  handler.on_close = [sessions](net::Reactor::ConnId id, const Status&) {
    obs::M().server_active_connections.Add(-1);
    sessions->awaiting_hello.erase(id);
  };
  handler.on_frame = [this, sessions, &reactor](net::Reactor::ConnId id,
                                                net::Frame frame) {
    if (sessions->awaiting_hello.erase(id) > 0) {
      if (!CheckHelloFrame(reactor, id, frame, Mode::kEnclave).ok()) return;
      ServerHello hello;
      hello.mode = Mode::kEnclave;
      hello.record_size = static_cast<std::uint32_t>(enclave_.value_size());
      hello.enclave_public_key = enclave_.public_key();
      (void)reactor.Send(id, Encode(hello));
      return;
    }
    if (frame.type == static_cast<std::uint8_t>(MsgType::kBye)) {
      reactor.CloseAfterFlush(id);
      return;
    }
    const auto req_start = obs::TraceNow();
    const std::uint64_t start_unix_ms = obs::UnixMillis();
    auto request = DecodeGetRequest(frame);
    if (!request.ok()) {
      obs::M().server_request_errors.Inc();
      SendErrorFrameTo(reactor, id, StatusCode::kProtocolError,
                       request.status().message());
      reactor.CloseAfterFlush(id);
      return;
    }
    const std::uint64_t decode_ns = obs::ElapsedNs(req_start);
    // The enclave's ORAM access is blocking compute; hop off the loop.
    dispatch_->Post([this, &reactor, id, req = std::move(*request),
                     req_start, start_unix_ms, decode_ns] {
      Result<Bytes> sealed = UnavailableError("unset");
      {
        std::lock_guard<std::mutex> lock(enclave_mu_);
        sealed = enclave_.HandleEncryptedRequest(req.body);
      }
      if (!sealed.ok()) {
        obs::M().server_request_errors.Inc();
        SendErrorFrameTo(reactor, id, sealed.status().code(),
                         sealed.status().message());
        return;
      }
      obs::RequestTrace trace;
      trace.start_unix_ms = start_unix_ms;
      trace.stages.decode_ns = decode_ns;
      GetResponse response;
      response.request_id = req.request_id;
      response.body = std::move(*sealed);
      const auto reply_start = obs::TraceNow();
      (void)reactor.Send(id, Encode(response));
      trace.stages.reply_ns = obs::ElapsedNs(reply_start);
      trace.total_ns = obs::ElapsedNs(req_start);
      obs::M().server_requests.Inc();
      obs::M().server_request_ns.Observe(trace.total_ns);
      obs::TraceRing::Default().Record(trace);
    });
  };
  return reactor.AddListener(std::move(listener), std::move(handler));
}

}  // namespace lw::zltp
