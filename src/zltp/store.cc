#include "zltp/store.h"

#include <chrono>
#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "pir/packing.h"
#include "util/check.h"
#include "util/rand.h"

namespace lw::zltp {
namespace {

PirStoreConfig Normalize(PirStoreConfig config) {
  if (config.keyword_seed.empty()) {
    config.keyword_seed = SecureRandom(16);
  }
  return config;
}

}  // namespace

PirStore::PirStore(PirStoreConfig config)
    : config_(Normalize(std::move(config))),
      shard_bits_(config_.domain_bits - config_.shard_top_bits),
      registry_(config_.keyword_seed, config_.domain_bits) {
  LW_CHECK_MSG(config_.shard_top_bits >= 0 &&
                   config_.shard_top_bits < config_.domain_bits,
               "shard_top_bits out of range");
  LW_CHECK_MSG(config_.record_size > pir::kRecordHeaderSize,
               "record_size too small for packing header");
  const std::size_t shards = std::size_t{1} << config_.shard_top_bits;
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    shards_.push_back(
        std::make_unique<pir::BlobDatabase>(shard_bits_, config_.record_size));
  }
}

PirStore::ShardRef PirStore::Locate(std::uint64_t global_index) const {
  // Shards cover residue classes mod 2^shard_top_bits (matching the DPF
  // tree's LSB-first split; see dpf::SplitForShards).
  ShardRef ref;
  ref.shard = static_cast<std::size_t>(
      global_index & ((std::uint64_t{1} << config_.shard_top_bits) - 1));
  ref.local_index = global_index >> config_.shard_top_bits;
  return ref;
}

Status PirStore::Publish(std::string_view key, ByteSpan payload) {
  std::unique_lock lock(mu_);
  LW_ASSIGN_OR_RETURN(const std::uint64_t index, registry_.Register(key));
  auto packed = pir::PackRecord(registry_.mapper().Fingerprint(key), payload,
                                config_.record_size);
  if (!packed.ok()) {
    // Roll back the registration if the payload cannot be packed — unless
    // the key was already registered with earlier content.
    if (!shards_[Locate(index).shard]->Contains(Locate(index).local_index)) {
      (void)registry_.Unregister(key);
    }
    return packed.status();
  }
  const ShardRef ref = Locate(index);
  const bool existed = shards_[ref.shard]->Contains(ref.local_index);
  const Status s = shards_[ref.shard]->Upsert(ref.local_index, *packed);
  if (s.ok() && !existed) obs::M().store_records.Add(1);
  return s;
}

Status PirStore::Unpublish(std::string_view key) {
  std::unique_lock lock(mu_);
  if (!registry_.IsRegistered(key)) return NotFoundError("key not published");
  const std::uint64_t index = registry_.mapper().IndexOf(key);
  LW_RETURN_IF_ERROR(registry_.Unregister(key));
  const ShardRef ref = Locate(index);
  const Status s = shards_[ref.shard]->Remove(ref.local_index);
  if (s.ok()) obs::M().store_records.Add(-1);
  return s;
}

bool PirStore::Contains(std::string_view key) const {
  std::shared_lock lock(mu_);
  return registry_.IsRegistered(key);
}

std::size_t PirStore::record_count() const {
  std::shared_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->record_count();
  return n;
}

std::size_t PirStore::stored_bytes() const {
  std::shared_lock lock(mu_);
  std::size_t n = 0;
  for (const auto& s : shards_) n += s->stored_bytes();
  return n;
}

Result<Bytes> PirStore::AnswerQuery(const dpf::DpfKey& key,
                                    ThreadPool* pool) const {
  if (key.domain_bits != config_.domain_bits) {
    return ProtocolError("DPF domain does not match universe domain");
  }
  std::shared_lock lock(mu_);
  Bytes out(config_.record_size, 0);
  std::uint64_t expand_ns = 0;  // summed over shards, one sample per query
  if (shards_.size() == 1) {
    const auto t0 = obs::TraceNow();
    const dpf::BitVector bits = dpf::EvalFullParallel(key, pool);
    expand_ns = obs::ElapsedNs(t0);
    obs::M().dpf_expand_ns.Observe(expand_ns);
    obs::AddExpandNs(expand_ns);
    shards_[0]->Answer(bits, out, pool);
    return out;
  }
  // §5.2 path: expand the top of the tree once, then answer per shard and
  // XOR the shard answers (the front-end's combine step).
  const auto subkeys = dpf::SplitForShards(key, config_.shard_top_bits);
  Bytes shard_answer(config_.record_size);
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const auto t0 = obs::TraceNow();
    const dpf::BitVector bits = dpf::EvalSubtreeParallel(subkeys[s], pool);
    expand_ns += obs::ElapsedNs(t0);
    shards_[s]->Answer(bits, shard_answer, pool);
    XorInto(out, shard_answer);
  }
  obs::M().dpf_expand_ns.Observe(expand_ns);
  obs::AddExpandNs(expand_ns);
  return out;
}

Result<std::vector<Bytes>> PirStore::AnswerBatch(
    const std::vector<dpf::DpfKey>& keys, ThreadPool* pool) const {
  LW_ASSIGN_OR_RETURN(const ExpandedBatch expanded, ExpandBatch(keys, pool));
  return ScanBatch(expanded, pool);
}

Result<PirStore::ExpandedBatch> PirStore::ExpandBatch(
    const std::vector<dpf::DpfKey>& keys, ThreadPool* pool) const {
  for (const dpf::DpfKey& k : keys) {
    if (k.domain_bits != config_.domain_bits) {
      return ProtocolError("DPF domain does not match universe domain");
    }
  }
  // No store lock: expansion reads only the keys and the immutable domain
  // geometry, which is what lets the pipelined scheduler expand batch N+1
  // while batch N is still scanning under the shared lock.
  const auto t0 = obs::TraceNow();
  ExpandedBatch out;
  out.query_count = keys.size();
  out.shard_bits.resize(shards_.size());
  for (auto& per_shard : out.shard_bits) per_shard.resize(keys.size());
  for (std::size_t q = 0; q < keys.size(); ++q) {
    if (shards_.size() == 1) {
      out.shard_bits[0][q] = dpf::EvalFullParallel(keys[q], pool);
    } else {
      // §5.2: expand the top of the tree once, then each shard's sub-tree.
      const auto subkeys =
          dpf::SplitForShards(keys[q], config_.shard_top_bits);
      for (std::size_t s = 0; s < shards_.size(); ++s) {
        out.shard_bits[s][q] = dpf::EvalSubtreeParallel(subkeys[s], pool);
      }
    }
  }
  const std::uint64_t expand_ns = obs::ElapsedNs(t0);
  obs::M().dpf_expand_ns.Observe(expand_ns);
  obs::AddExpandNs(expand_ns);
  return out;
}

Result<std::vector<Bytes>> PirStore::ScanBatch(const ExpandedBatch& expanded,
                                               ThreadPool* pool) const {
  if (expanded.shard_bits.size() != shards_.size()) {
    return InternalError("expanded batch shard count mismatch");
  }
  std::shared_lock lock(mu_);
  std::vector<Bytes> out(expanded.query_count,
                         Bytes(config_.record_size, 0));
  std::vector<Bytes> shard_answers;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    shards_[s]->AnswerBatch(expanded.shard_bits[s], shard_answers, pool);
    for (std::size_t q = 0; q < expanded.query_count; ++q) {
      XorInto(out[q], shard_answers[q]);
    }
  }
  return out;
}

Result<Bytes> PirStore::DirectLookup(std::string_view key) const {
  std::shared_lock lock(mu_);
  if (!registry_.IsRegistered(key)) return NotFoundError("key not published");
  const ShardRef ref = Locate(registry_.mapper().IndexOf(key));
  LW_ASSIGN_OR_RETURN(Bytes record, shards_[ref.shard]->Get(ref.local_index));
  LW_ASSIGN_OR_RETURN(pir::UnpackedRecord un, pir::UnpackRecord(record));
  return un.payload;
}

std::vector<std::string> PirStore::Keys() const {
  std::shared_lock lock(mu_);
  return registry_.AllKeys();
}

}  // namespace lw::zltp
