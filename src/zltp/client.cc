#include "zltp/client.h"

#include <map>

#include "crypto/siphash.h"
#include "crypto/x25519.h"
#include "pir/keyword.h"
#include "pir/packing.h"
#include "pir/two_server.h"
#include "util/rand.h"

namespace lw::zltp {
namespace {

std::size_t FrameWireSize(const net::Frame& f) {
  return 4 + 1 + f.payload.size();  // length prefix + type + payload
}

Result<ServerHello> HelloExchange(net::Transport& transport, Mode mode,
                                  TrafficCounters& traffic) {
  ClientHello hello;
  hello.supported_modes = {mode};
  const net::Frame out = Encode(hello);
  LW_RETURN_IF_ERROR(transport.Send(out));
  traffic.bytes_sent += FrameWireSize(out);

  LW_ASSIGN_OR_RETURN(const net::Frame in, transport.Receive());
  traffic.bytes_received += FrameWireSize(in);
  if (in.type == static_cast<std::uint8_t>(MsgType::kError)) {
    LW_ASSIGN_OR_RETURN(const ErrorMsg e, DecodeError(in));
    return StatusFromError(e);
  }
  LW_ASSIGN_OR_RETURN(ServerHello server_hello, DecodeServerHello(in));
  if (server_hello.version != kProtocolVersion) {
    return ProtocolError("server speaks unsupported version");
  }
  if (server_hello.mode != mode) {
    return ProtocolError("server selected a mode we did not offer");
  }
  return server_hello;
}

}  // namespace

// ----------------------------------------------------------- PirSession

Result<PirSession> PirSession::Establish(
    std::unique_ptr<net::Transport> server0,
    std::unique_ptr<net::Transport> server1) {
  PirSession session;
  LW_ASSIGN_OR_RETURN(
      const ServerHello h0,
      HelloExchange(*server0, Mode::kTwoServerPir, session.traffic_));
  LW_ASSIGN_OR_RETURN(
      const ServerHello h1,
      HelloExchange(*server1, Mode::kTwoServerPir, session.traffic_));

  if (h0.server_role == h1.server_role) {
    return FailedPreconditionError(
        "both connections reached the same logical server; the "
        "non-collusion assumption requires distinct trust domains");
  }
  if (h0.domain_bits != h1.domain_bits || h0.record_size != h1.record_size ||
      h0.keyword_seed != h1.keyword_seed) {
    return ProtocolError("servers disagree on universe parameters");
  }
  if (h0.keyword_seed.size() != crypto::kSipHashKeySize) {
    return ProtocolError("bad keyword seed size");
  }
  if (h0.domain_bits < 1 || h0.domain_bits > dpf::kMaxDomainBits) {
    return ProtocolError("bad domain_bits");
  }

  // Order the connections by announced role so key0 goes to role 0.
  if (h0.server_role == 0) {
    session.server0_ = std::move(server0);
    session.server1_ = std::move(server1);
  } else {
    session.server0_ = std::move(server1);
    session.server1_ = std::move(server0);
  }
  session.domain_bits_ = h0.domain_bits;
  session.record_size_ = h0.record_size;
  session.keyword_seed_ = h0.keyword_seed;
  return session;
}

Result<Bytes> PirSession::RoundTrip(net::Transport& transport,
                                    const Bytes& body,
                                    std::uint32_t request_id) {
  GetRequest request;
  request.request_id = request_id;
  request.body = body;
  const net::Frame out = Encode(request);
  LW_RETURN_IF_ERROR(transport.Send(out));
  traffic_.bytes_sent += FrameWireSize(out);

  LW_ASSIGN_OR_RETURN(const net::Frame in, transport.Receive());
  traffic_.bytes_received += FrameWireSize(in);
  if (in.type == static_cast<std::uint8_t>(MsgType::kError)) {
    LW_ASSIGN_OR_RETURN(const ErrorMsg e, DecodeError(in));
    return StatusFromError(e);
  }
  LW_ASSIGN_OR_RETURN(const GetResponse response, DecodeGetResponse(in));
  if (response.request_id != request_id) {
    return ProtocolError("response id does not match request");
  }
  return response.body;
}

Result<Bytes> PirSession::PrivateGetIndex(std::uint64_t index) {
  if (server0_ == nullptr) return FailedPreconditionError("session closed");
  if (index >= (std::uint64_t{1} << domain_bits_)) {
    return InvalidArgumentError("index outside universe domain");
  }
  const std::uint32_t id = next_request_id_++;
  const pir::QueryKeys keys = pir::MakeIndexQuery(index, domain_bits_);

  LW_ASSIGN_OR_RETURN(const Bytes a0,
                      RoundTrip(*server0_, keys.key0.Serialize(), id));
  LW_ASSIGN_OR_RETURN(const Bytes a1,
                      RoundTrip(*server1_, keys.key1.Serialize(), id));
  traffic_.requests += 1;
  if (a0.size() != record_size_ || a1.size() != record_size_) {
    return ProtocolError("server answer has wrong record size");
  }
  return pir::CombineAnswers(a0, a1);
}

namespace {

// Interprets a reconstructed record for a keyword query: verifies presence
// and the embedded fingerprint.
Result<Bytes> InterpretRecord(const Bytes& record,
                              std::uint64_t expected_fingerprint) {
  LW_ASSIGN_OR_RETURN(const pir::UnpackedRecord un,
                      pir::UnpackRecord(record));
  if (un.fingerprint == 0 && un.payload.empty()) {
    return NotFoundError("key not published in this universe");
  }
  if (un.fingerprint != expected_fingerprint) {
    return CollisionError(
        "record at this index belongs to a different key (hash collision)");
  }
  return un.payload;
}

}  // namespace

Result<Bytes> PirSession::PrivateGet(std::string_view key) {
  const pir::KeywordMapper mapper(keyword_seed_, domain_bits_);
  LW_ASSIGN_OR_RETURN(const Bytes record,
                      PrivateGetIndex(mapper.IndexOf(key)));
  return InterpretRecord(record, mapper.Fingerprint(key));
}

Result<std::vector<Result<Bytes>>> PirSession::PrivateGetBatch(
    const std::vector<std::string>& keys, int extra_dummies) {
  if (server0_ == nullptr) return FailedPreconditionError("session closed");
  if (extra_dummies < 0) return InvalidArgumentError("negative dummy count");
  const pir::KeywordMapper mapper(keyword_seed_, domain_bits_);
  const std::size_t total = keys.size() + static_cast<std::size_t>(extra_dummies);
  if (total == 0) return std::vector<Result<Bytes>>{};

  // Build every query up front (real keys first, then dummy cover queries
  // at uniformly random indices — indistinguishable on the wire).
  std::vector<std::uint32_t> ids;
  std::vector<pir::QueryKeys> queries;
  ids.reserve(total);
  queries.reserve(total);
  for (const std::string& key : keys) {
    ids.push_back(next_request_id_++);
    queries.push_back(
        pir::MakeIndexQuery(mapper.IndexOf(key), domain_bits_));
  }
  for (int i = 0; i < extra_dummies; ++i) {
    std::uint8_t buf[8];
    SecureRandomBytes(MutableByteSpan(buf, 8));
    ids.push_back(next_request_id_++);
    queries.push_back(pir::MakeIndexQuery(
        LoadLE64(buf) & ((std::uint64_t{1} << domain_bits_) - 1),
        domain_bits_));
  }

  // Pipeline: all requests out to both servers before reading anything.
  for (std::size_t i = 0; i < total; ++i) {
    for (int side = 0; side < 2; ++side) {
      GetRequest request;
      request.request_id = ids[i];
      request.body = (side == 0 ? queries[i].key0 : queries[i].key1)
                         .Serialize();
      const net::Frame out = Encode(request);
      LW_RETURN_IF_ERROR((side == 0 ? server0_ : server1_)->Send(out));
      traffic_.bytes_sent += FrameWireSize(out);
    }
  }

  // Collect both servers' responses; they may arrive out of order.
  const auto collect =
      [&](net::Transport& t) -> Result<std::map<std::uint32_t, Bytes>> {
    std::map<std::uint32_t, Bytes> by_id;
    while (by_id.size() < total) {
      LW_ASSIGN_OR_RETURN(const net::Frame in, t.Receive());
      traffic_.bytes_received += FrameWireSize(in);
      if (in.type == static_cast<std::uint8_t>(MsgType::kError)) {
        LW_ASSIGN_OR_RETURN(const ErrorMsg e, DecodeError(in));
        return StatusFromError(e);
      }
      LW_ASSIGN_OR_RETURN(const GetResponse response, DecodeGetResponse(in));
      if (response.body.size() != record_size_) {
        return ProtocolError("server answer has wrong record size");
      }
      if (!by_id.emplace(response.request_id, response.body).second) {
        return ProtocolError("duplicate response id");
      }
    }
    return by_id;
  };
  LW_ASSIGN_OR_RETURN(const auto answers0, collect(*server0_));
  LW_ASSIGN_OR_RETURN(const auto answers1, collect(*server1_));
  traffic_.requests += total;

  std::vector<Result<Bytes>> out;
  out.reserve(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    const auto it0 = answers0.find(ids[i]);
    const auto it1 = answers1.find(ids[i]);
    if (it0 == answers0.end() || it1 == answers1.end()) {
      out.push_back(ProtocolError("missing response for request id"));
      continue;
    }
    auto record = pir::CombineAnswers(it0->second, it1->second);
    if (!record.ok()) {
      out.push_back(record.status());
      continue;
    }
    out.push_back(
        InterpretRecord(*record, mapper.Fingerprint(keys[i])));
  }
  return out;
}

Status PirSession::DummyGet() {
  std::uint8_t buf[8];
  SecureRandomBytes(MutableByteSpan(buf, 8));
  const std::uint64_t index =
      LoadLE64(buf) & ((std::uint64_t{1} << domain_bits_) - 1);
  auto r = PrivateGetIndex(index);
  if (!r.ok()) return r.status();
  return Status::Ok();
}

void PirSession::Close() {
  for (auto* t : {server0_.get(), server1_.get()}) {
    if (t != nullptr) {
      (void)t->Send(EncodeBye());
      t->Close();
    }
  }
  server0_.reset();
  server1_.reset();
}

// ------------------------------------------------------- EnclaveSession

Result<EnclaveSession> EnclaveSession::Establish(
    std::unique_ptr<net::Transport> server) {
  EnclaveSession session;
  LW_ASSIGN_OR_RETURN(
      const ServerHello hello,
      HelloExchange(*server, Mode::kEnclave, session.traffic_));
  if (hello.enclave_public_key.size() != crypto::kX25519KeySize) {
    return ProtocolError("bad enclave public key");
  }
  session.server_ = std::move(server);
  session.record_size_ = hello.record_size;
  session.enclave_client_ =
      std::make_unique<oram::EnclaveClient>(hello.enclave_public_key);
  return session;
}

Result<Bytes> EnclaveSession::PrivateGet(std::string_view key) {
  if (server_ == nullptr) return FailedPreconditionError("session closed");
  GetRequest request;
  request.request_id = next_request_id_++;
  request.body = enclave_client_->SealGetRequest(key);
  const net::Frame out = Encode(request);
  LW_RETURN_IF_ERROR(server_->Send(out));
  traffic_.bytes_sent += FrameWireSize(out);

  LW_ASSIGN_OR_RETURN(const net::Frame in, server_->Receive());
  traffic_.bytes_received += FrameWireSize(in);
  if (in.type == static_cast<std::uint8_t>(MsgType::kError)) {
    LW_ASSIGN_OR_RETURN(const ErrorMsg e, DecodeError(in));
    return StatusFromError(e);
  }
  LW_ASSIGN_OR_RETURN(const GetResponse response, DecodeGetResponse(in));
  if (response.request_id != request.request_id) {
    return ProtocolError("response id does not match request");
  }
  traffic_.requests += 1;
  return enclave_client_->OpenResponse(response.body);
}

void EnclaveSession::Close() {
  if (server_ != nullptr) {
    (void)server_->Send(EncodeBye());
    server_->Close();
    server_.reset();
  }
}

}  // namespace lw::zltp
