#include "zltp/client.h"

#include <algorithm>
#include <map>
#include <utility>

#include "crypto/siphash.h"
#include "crypto/x25519.h"
#include "obs/metrics.h"
#include "pir/keyword.h"
#include "pir/packing.h"
#include "pir/two_server.h"
#include "util/rand.h"

namespace lw::zltp {
namespace {

std::size_t FrameWireSize(const net::Frame& f) {
  return 4 + 1 + f.payload.size();  // length prefix + type + payload
}

// Unpredictable backoff jitter (tests with a FakeClock never actually wait,
// so determinism of the schedule does not matter there).
std::uint64_t BackoffSeed() {
  std::uint8_t buf[8];
  SecureRandomBytes(MutableByteSpan(buf, 8));
  return LoadLE64(buf);
}

struct HelloBytes {
  std::size_t sent = 0;
  std::size_t received = 0;
};

Result<ServerHello> HelloExchange(net::Transport& transport, Mode mode,
                                  const net::Deadline& deadline,
                                  HelloBytes& bytes) {
  ClientHello hello;
  hello.supported_modes = {mode};
  const net::Frame out = Encode(hello);
  LW_RETURN_IF_ERROR(transport.Send(out, deadline));
  bytes.sent += FrameWireSize(out);

  LW_ASSIGN_OR_RETURN(const net::Frame in, transport.Receive(deadline));
  bytes.received += FrameWireSize(in);
  if (in.type == static_cast<std::uint8_t>(MsgType::kError)) {
    LW_ASSIGN_OR_RETURN(const ErrorMsg e, DecodeError(in));
    return StatusFromError(e);
  }
  LW_ASSIGN_OR_RETURN(ServerHello server_hello, DecodeServerHello(in));
  if (server_hello.version != kProtocolVersion) {
    return ProtocolError("server speaks unsupported version");
  }
  if (server_hello.mode != mode) {
    return ProtocolError("server selected a mode we did not offer");
  }
  return server_hello;
}

net::Deadline MakeDeadline(std::chrono::nanoseconds timeout, Clock* clock) {
  if (timeout <= std::chrono::nanoseconds::zero()) {
    return net::Deadline::Infinite();
  }
  return net::Deadline::After(timeout, clock);
}

[[maybe_unused]] const Status& StatusOf(const Status& s) { return s; }
template <typename T>
const Status& StatusOf(const Result<T>& r) {
  return r.status();
}

// Interprets a reconstructed record for a keyword query: verifies presence
// and the embedded fingerprint.
Result<Bytes> InterpretRecord(const Bytes& record,
                              std::uint64_t expected_fingerprint) {
  LW_ASSIGN_OR_RETURN(const pir::UnpackedRecord un, pir::UnpackRecord(record));
  if (un.fingerprint == 0 && un.payload.empty()) {
    return NotFoundError("key not published in this universe");
  }
  if (un.fingerprint != expected_fingerprint) {
    return CollisionError(
        "record at this index belongs to a different key (hash collision)");
  }
  return un.payload;
}

}  // namespace

// ----------------------------------------------------------- PirSession

Result<PirSession> PirSession::Establish(EstablishOptions options) {
  if ((options.transport0 == nullptr && !options.factory0) ||
      (options.transport1 == nullptr && !options.factory1)) {
    return InvalidArgumentError(
        "EstablishOptions needs a transport or a factory for each server");
  }

  PirSession session;
  session.hello_timeout_ = options.hello_timeout;
  session.op_timeout_ = options.op_timeout;
  session.retry_ = options.retry;
  if (session.retry_.clock == nullptr) session.retry_.clock = options.clock;
  session.clock_ = options.clock;
  session.sink_ = options.traffic_sink;

  std::unique_ptr<net::Transport> t0 = std::move(options.transport0);
  std::unique_ptr<net::Transport> t1 = std::move(options.transport1);
  net::Backoff backoff(session.retry_, BackoffSeed());
  const int max_attempts = std::max(session.retry_.max_attempts, 1);
  const bool can_redial =
      static_cast<bool>(options.factory0) && static_cast<bool>(options.factory1);
  for (int attempt = 1;; ++attempt) {
    Status failure = Status::Ok();
    if (t0 == nullptr) {
      auto dialed = options.factory0();
      if (dialed.ok()) {
        t0 = std::move(*dialed);
      } else {
        failure = dialed.status();
      }
    }
    if (failure.ok() && t1 == nullptr) {
      auto dialed = options.factory1();
      if (dialed.ok()) {
        t1 = std::move(*dialed);
      } else {
        failure = dialed.status();
      }
    }
    if (failure.ok()) {
      failure = session.AdoptConnections(std::move(t0), std::move(t1),
                                         options.factory0, options.factory1,
                                         /*reestablish=*/false);
      if (failure.ok()) return session;
    }
    t0.reset();  // never reuse a connection from a failed attempt
    t1.reset();
    if (!net::IsRetryable(failure)) return failure;
    if (attempt >= max_attempts || !can_redial) return failure;
    backoff.SleepBeforeRetry();
    session.AccountRetry();
  }
}

Result<PirSession> PirSession::Establish(
    std::unique_ptr<net::Transport> server0,
    std::unique_ptr<net::Transport> server1) {
  EstablishOptions options;
  options.transport0 = std::move(server0);
  options.transport1 = std::move(server1);
  return Establish(std::move(options));
}

net::Deadline PirSession::OpDeadline() const {
  return MakeDeadline(op_timeout_, clock_);
}

net::Deadline PirSession::HelloDeadline() const {
  return MakeDeadline(hello_timeout_, clock_);
}

Result<ServerHello> PirSession::HelloOn(net::Transport& transport) {
  HelloBytes bytes;
  auto hello =
      HelloExchange(transport, Mode::kTwoServerPir, HelloDeadline(), bytes);
  AccountSent(bytes.sent);
  AccountReceived(bytes.received);
  return hello;
}

Status PirSession::AdoptConnections(std::unique_ptr<net::Transport> t0,
                                    std::unique_ptr<net::Transport> t1,
                                    net::TransportFactory dial0,
                                    net::TransportFactory dial1,
                                    bool reestablish) {
  const auto fail = [&](Status s) {
    t0->Close();
    t1->Close();
    return s;
  };
  auto h0r = HelloOn(*t0);
  if (!h0r.ok()) return fail(h0r.status());
  auto h1r = HelloOn(*t1);
  if (!h1r.ok()) return fail(h1r.status());
  ServerHello h0 = std::move(*h0r);
  ServerHello h1 = std::move(*h1r);

  if (h0.server_role == h1.server_role) {
    return fail(FailedPreconditionError(
        "both connections reached the same logical server; the "
        "non-collusion assumption requires distinct trust domains"));
  }
  if (h0.domain_bits != h1.domain_bits || h0.record_size != h1.record_size ||
      h0.keyword_seed != h1.keyword_seed) {
    return fail(ProtocolError("servers disagree on universe parameters"));
  }
  if (h0.keyword_seed.size() != crypto::kSipHashKeySize) {
    return fail(ProtocolError("bad keyword seed size"));
  }
  if (h0.domain_bits < 1 || h0.domain_bits > dpf::kMaxDomainBits) {
    return fail(ProtocolError("bad domain_bits"));
  }

  if (reestablish) {
    // Redials are slot-stable: the role-0 factory must reach the role-0
    // server again (a flipped or re-announced role after a blip is a
    // misconfiguration or an attack, not a transient).
    if (h0.server_role != 0 || h1.server_role != 1) {
      return fail(
          FailedPreconditionError("server roles changed across redial"));
    }
    if (h0.domain_bits != domain_bits_ || h0.record_size != record_size_ ||
        h0.keyword_seed != keyword_seed_) {
      return fail(
          ProtocolError("universe parameters changed across redial"));
    }
  } else {
    // Order the connections by announced role so key0 goes to role 0.
    if (h0.server_role != 0) {
      std::swap(h0, h1);
      std::swap(t0, t1);
      std::swap(dial0, dial1);
    }
    if (h0.server_role != 0 || h1.server_role != 1) {
      return fail(ProtocolError("servers announce unknown roles"));
    }
    domain_bits_ = h0.domain_bits;
    record_size_ = h0.record_size;
    keyword_seed_ = h0.keyword_seed;
  }

  link0_ = Link{std::move(t0), std::move(dial0)};
  link1_ = Link{std::move(t1), std::move(dial1)};
  return Status::Ok();
}

bool PirSession::connected() const {
  return link0_.transport != nullptr && link1_.transport != nullptr;
}

bool PirSession::CanRedial() const {
  return static_cast<bool>(link0_.dial) && static_cast<bool>(link1_.dial);
}

Status PirSession::Redial() {
  if (!CanRedial()) {
    return UnavailableError("session disconnected (no redial factory)");
  }
  AccountRedial();
  auto d0 = link0_.dial();
  if (!d0.ok()) return d0.status();
  auto d1 = link1_.dial();
  if (!d1.ok()) {
    (*d0)->Close();
    return d1.status();
  }
  return AdoptConnections(std::move(*d0), std::move(*d1), link0_.dial,
                          link1_.dial, /*reestablish=*/true);
}

void PirSession::DropConnections() {
  // Drop BOTH connections even if only one faulted: an orphaned in-flight
  // response on the healthy side would desynchronize request ids for every
  // later query. The factories survive for redial.
  for (Link* link : {&link0_, &link1_}) {
    if (link->transport != nullptr) {
      link->transport->Close();
      link->transport.reset();
    }
  }
}

template <typename Op>
auto PirSession::WithRetries(Op&& op) -> decltype(op(net::Deadline())) {
  net::Backoff backoff(retry_, BackoffSeed());
  const int max_attempts = std::max(retry_.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    Status failure = Status::Ok();
    if (!connected()) failure = Redial();
    if (failure.ok()) {
      auto result = op(OpDeadline());
      if (result.ok()) return result;
      failure = StatusOf(result);
      if (failure.code() == StatusCode::kDeadlineExceeded) {
        obs::M().client_op_timeouts.Inc();
      }
      if (!net::IsRetryable(failure)) return result;
      DropConnections();
    }
    if (!net::IsRetryable(failure)) return failure;
    if (attempt >= max_attempts || !CanRedial()) return failure;
    backoff.SleepBeforeRetry();
    AccountRetry();
  }
}

Result<Bytes> PirSession::RoundTrip(net::Transport& transport,
                                    const Bytes& body,
                                    std::uint32_t request_id,
                                    const net::Deadline& deadline) {
  GetRequest request;
  request.request_id = request_id;
  request.body = body;
  const net::Frame out = Encode(request);
  LW_RETURN_IF_ERROR(transport.Send(out, deadline));
  AccountSent(FrameWireSize(out));

  LW_ASSIGN_OR_RETURN(const net::Frame in, transport.Receive(deadline));
  AccountReceived(FrameWireSize(in));
  if (in.type == static_cast<std::uint8_t>(MsgType::kError)) {
    LW_ASSIGN_OR_RETURN(const ErrorMsg e, DecodeError(in));
    return StatusFromError(e);
  }
  LW_ASSIGN_OR_RETURN(const GetResponse response, DecodeGetResponse(in));
  if (response.request_id != request_id) {
    return ProtocolError("response id does not match request");
  }
  return response.body;
}

Result<Bytes> PirSession::PrivateGetIndex(std::uint64_t index) {
  if (closed_) return FailedPreconditionError("session closed");
  if (index >= (std::uint64_t{1} << domain_bits_)) {
    return InvalidArgumentError("index outside universe domain");
  }
  return WithRetries([&](const net::Deadline& deadline) -> Result<Bytes> {
    const std::uint32_t id = next_request_id_++;
    // Fresh DPF key shares on every attempt: a resent share would let the
    // network link two sightings of the same query (docs/ROBUSTNESS.md).
    const pir::QueryKeys keys = pir::MakeIndexQuery(index, domain_bits_);
    LW_ASSIGN_OR_RETURN(
        const Bytes a0,
        RoundTrip(*link0_.transport, keys.key0.Serialize(), id, deadline));
    LW_ASSIGN_OR_RETURN(
        const Bytes a1,
        RoundTrip(*link1_.transport, keys.key1.Serialize(), id, deadline));
    AccountRequests(1);
    if (a0.size() != record_size_ || a1.size() != record_size_) {
      return ProtocolError("server answer has wrong record size");
    }
    return pir::CombineAnswers(a0, a1);
  });
}

Result<Bytes> PirSession::PrivateGet(std::string_view key) {
  if (closed_) return FailedPreconditionError("session closed");
  const pir::KeywordMapper mapper(keyword_seed_, domain_bits_);
  LW_ASSIGN_OR_RETURN(const Bytes record, PrivateGetIndex(mapper.IndexOf(key)));
  return InterpretRecord(record, mapper.Fingerprint(key));
}

Result<std::vector<Result<Bytes>>> PirSession::PrivateGetBatch(
    const std::vector<std::string>& keys, int extra_dummies) {
  if (closed_) return FailedPreconditionError("session closed");
  if (extra_dummies < 0) return InvalidArgumentError("negative dummy count");
  const pir::KeywordMapper mapper(keyword_seed_, domain_bits_);
  const std::size_t total =
      keys.size() + static_cast<std::size_t>(extra_dummies);
  if (total == 0) return std::vector<Result<Bytes>>{};

  using BatchResult = std::vector<Result<Bytes>>;
  return WithRetries([&](const net::Deadline& deadline) -> Result<BatchResult> {
    // Build every query up front (real keys first, then dummy cover
    // queries at uniformly random indices — indistinguishable on the
    // wire). Rebuilt from scratch on every attempt so retried requests
    // carry fresh DPF shares and fresh dummy positions.
    std::vector<std::uint32_t> ids;
    std::vector<pir::QueryKeys> queries;
    ids.reserve(total);
    queries.reserve(total);
    for (const std::string& key : keys) {
      ids.push_back(next_request_id_++);
      queries.push_back(
          pir::MakeIndexQuery(mapper.IndexOf(key), domain_bits_));
    }
    for (int i = 0; i < extra_dummies; ++i) {
      std::uint8_t buf[8];
      SecureRandomBytes(MutableByteSpan(buf, 8));
      ids.push_back(next_request_id_++);
      queries.push_back(pir::MakeIndexQuery(
          LoadLE64(buf) & ((std::uint64_t{1} << domain_bits_) - 1),
          domain_bits_));
    }

    // Pipeline: all requests out to both servers before reading anything.
    for (std::size_t i = 0; i < total; ++i) {
      for (int side = 0; side < 2; ++side) {
        GetRequest request;
        request.request_id = ids[i];
        request.body =
            (side == 0 ? queries[i].key0 : queries[i].key1).Serialize();
        const net::Frame out = Encode(request);
        LW_RETURN_IF_ERROR(
            (side == 0 ? link0_ : link1_).transport->Send(out, deadline));
        AccountSent(FrameWireSize(out));
      }
    }

    // Collect both servers' responses; they may arrive out of order.
    const auto collect =
        [&](net::Transport& t) -> Result<std::map<std::uint32_t, Bytes>> {
      std::map<std::uint32_t, Bytes> by_id;
      while (by_id.size() < total) {
        LW_ASSIGN_OR_RETURN(const net::Frame in, t.Receive(deadline));
        AccountReceived(FrameWireSize(in));
        if (in.type == static_cast<std::uint8_t>(MsgType::kError)) {
          LW_ASSIGN_OR_RETURN(const ErrorMsg e, DecodeError(in));
          return StatusFromError(e);
        }
        LW_ASSIGN_OR_RETURN(const GetResponse response,
                            DecodeGetResponse(in));
        if (response.body.size() != record_size_) {
          return ProtocolError("server answer has wrong record size");
        }
        if (!by_id.emplace(response.request_id, response.body).second) {
          return ProtocolError("duplicate response id");
        }
      }
      return by_id;
    };
    LW_ASSIGN_OR_RETURN(const auto answers0, collect(*link0_.transport));
    LW_ASSIGN_OR_RETURN(const auto answers1, collect(*link1_.transport));
    AccountRequests(total);

    BatchResult out;
    out.reserve(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
      const auto it0 = answers0.find(ids[i]);
      const auto it1 = answers1.find(ids[i]);
      if (it0 == answers0.end() || it1 == answers1.end()) {
        out.push_back(ProtocolError("missing response for request id"));
        continue;
      }
      auto record = pir::CombineAnswers(it0->second, it1->second);
      if (!record.ok()) {
        out.push_back(record.status());
        continue;
      }
      out.push_back(InterpretRecord(*record, mapper.Fingerprint(keys[i])));
    }
    return out;
  });
}

Status PirSession::DummyGet() {
  std::uint8_t buf[8];
  SecureRandomBytes(MutableByteSpan(buf, 8));
  const std::uint64_t index =
      LoadLE64(buf) & ((std::uint64_t{1} << domain_bits_) - 1);
  auto r = PrivateGetIndex(index);
  if (!r.ok()) return r.status();
  return Status::Ok();
}

void PirSession::Close() {
  for (Link* link : {&link0_, &link1_}) {
    if (link->transport != nullptr) {
      (void)link->transport->Send(EncodeBye(), net::Deadline::Infinite());
      link->transport->Close();
      link->transport.reset();
    }
  }
  closed_ = true;
}

void PirSession::AccountSent(std::size_t n) {
  traffic_.bytes_sent += n;
  if (sink_ != nullptr) sink_->bytes_sent += n;
  obs::M().client_bytes_sent.Inc(n);
}

void PirSession::AccountReceived(std::size_t n) {
  traffic_.bytes_received += n;
  if (sink_ != nullptr) sink_->bytes_received += n;
  obs::M().client_bytes_received.Inc(n);
}

void PirSession::AccountRequests(std::uint64_t n) {
  traffic_.requests += n;
  if (sink_ != nullptr) sink_->requests += n;
  obs::M().client_requests.Inc(n);
}

void PirSession::AccountRetry() {
  traffic_.retries += 1;
  if (sink_ != nullptr) sink_->retries += 1;
  obs::M().client_retries.Inc();
}

void PirSession::AccountRedial() {
  traffic_.redials += 1;
  if (sink_ != nullptr) sink_->redials += 1;
  obs::M().client_redials.Inc();
}

// ------------------------------------------------------- EnclaveSession

Result<EnclaveSession> EnclaveSession::Establish(EstablishOptions options) {
  if (options.transport1 != nullptr || options.factory1) {
    return InvalidArgumentError("enclave mode uses a single server");
  }
  if (options.transport0 == nullptr && !options.factory0) {
    return InvalidArgumentError(
        "EstablishOptions needs a transport or a factory");
  }

  EnclaveSession session;
  session.hello_timeout_ = options.hello_timeout;
  session.op_timeout_ = options.op_timeout;
  session.retry_ = options.retry;
  if (session.retry_.clock == nullptr) session.retry_.clock = options.clock;
  session.clock_ = options.clock;
  session.sink_ = options.traffic_sink;
  session.dial_ = options.factory0;

  std::unique_ptr<net::Transport> t = std::move(options.transport0);
  net::Backoff backoff(session.retry_, BackoffSeed());
  const int max_attempts = std::max(session.retry_.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    Status failure = Status::Ok();
    if (t == nullptr) {
      auto dialed = options.factory0();
      if (dialed.ok()) {
        t = std::move(*dialed);
      } else {
        failure = dialed.status();
      }
    }
    if (failure.ok()) {
      failure = session.Adopt(std::move(t), /*reestablish=*/false);
      if (failure.ok()) return session;
    }
    t.reset();
    if (!net::IsRetryable(failure)) return failure;
    if (attempt >= max_attempts || !options.factory0) return failure;
    backoff.SleepBeforeRetry();
    session.traffic_.retries += 1;
    obs::M().client_retries.Inc();
  }
}

Result<EnclaveSession> EnclaveSession::Establish(
    std::unique_ptr<net::Transport> server) {
  EstablishOptions options;
  options.transport0 = std::move(server);
  return Establish(std::move(options));
}

net::Deadline EnclaveSession::OpDeadline() const {
  return MakeDeadline(op_timeout_, clock_);
}

net::Deadline EnclaveSession::HelloDeadline() const {
  return MakeDeadline(hello_timeout_, clock_);
}

Status EnclaveSession::Adopt(std::unique_ptr<net::Transport> transport,
                             bool reestablish) {
  HelloBytes bytes;
  auto hello_or =
      HelloExchange(*transport, Mode::kEnclave, HelloDeadline(), bytes);
  traffic_.bytes_sent += bytes.sent;
  traffic_.bytes_received += bytes.received;
  if (sink_ != nullptr) {
    sink_->bytes_sent += bytes.sent;
    sink_->bytes_received += bytes.received;
  }
  obs::M().client_bytes_sent.Inc(bytes.sent);
  obs::M().client_bytes_received.Inc(bytes.received);
  if (!hello_or.ok()) {
    transport->Close();
    return hello_or.status();
  }
  const ServerHello& hello = *hello_or;
  if (hello.enclave_public_key.size() != crypto::kX25519KeySize) {
    transport->Close();
    return ProtocolError("bad enclave public key");
  }
  if (reestablish && hello.record_size != record_size_) {
    transport->Close();
    return ProtocolError("universe parameters changed across redial");
  }
  // A restarted enclave may present a fresh keypair; requests are sealed
  // per-attempt against whatever key the live hello announced, so rotation
  // is safe (attestation of that key is out of scope here).
  record_size_ = hello.record_size;
  enclave_public_key_ = hello.enclave_public_key;
  enclave_client_ =
      std::make_unique<oram::EnclaveClient>(hello.enclave_public_key);
  server_ = std::move(transport);
  return Status::Ok();
}

Status EnclaveSession::Redial() {
  if (!dial_) {
    return UnavailableError("session disconnected (no redial factory)");
  }
  traffic_.redials += 1;
  if (sink_ != nullptr) sink_->redials += 1;
  obs::M().client_redials.Inc();
  auto dialed = dial_();
  if (!dialed.ok()) return dialed.status();
  return Adopt(std::move(*dialed), /*reestablish=*/true);
}

template <typename Op>
auto EnclaveSession::WithRetries(Op&& op) -> decltype(op(net::Deadline())) {
  net::Backoff backoff(retry_, BackoffSeed());
  const int max_attempts = std::max(retry_.max_attempts, 1);
  for (int attempt = 1;; ++attempt) {
    Status failure = Status::Ok();
    if (server_ == nullptr) failure = Redial();
    if (failure.ok()) {
      auto result = op(OpDeadline());
      if (result.ok()) return result;
      failure = StatusOf(result);
      if (failure.code() == StatusCode::kDeadlineExceeded) {
        obs::M().client_op_timeouts.Inc();
      }
      if (!net::IsRetryable(failure)) return result;
      if (server_ != nullptr) {
        server_->Close();
        server_.reset();
      }
    }
    if (!net::IsRetryable(failure)) return failure;
    if (attempt >= max_attempts || !dial_) return failure;
    backoff.SleepBeforeRetry();
    traffic_.retries += 1;
    if (sink_ != nullptr) sink_->retries += 1;
    obs::M().client_retries.Inc();
  }
}

Result<Bytes> EnclaveSession::PrivateGet(std::string_view key) {
  if (closed_) return FailedPreconditionError("session closed");
  return WithRetries([&](const net::Deadline& deadline) -> Result<Bytes> {
    GetRequest request;
    request.request_id = next_request_id_++;
    // Sealed fresh on every attempt: a new ephemeral key and nonce make the
    // retried ciphertext unlinkable to the first attempt, mirroring the
    // fresh-DPF-share rule in PIR mode.
    request.body = enclave_client_->SealGetRequest(key);
    const net::Frame out = Encode(request);
    LW_RETURN_IF_ERROR(server_->Send(out, deadline));
    traffic_.bytes_sent += FrameWireSize(out);
    if (sink_ != nullptr) sink_->bytes_sent += FrameWireSize(out);
    obs::M().client_bytes_sent.Inc(FrameWireSize(out));

    LW_ASSIGN_OR_RETURN(const net::Frame in, server_->Receive(deadline));
    traffic_.bytes_received += FrameWireSize(in);
    if (sink_ != nullptr) sink_->bytes_received += FrameWireSize(in);
    obs::M().client_bytes_received.Inc(FrameWireSize(in));
    if (in.type == static_cast<std::uint8_t>(MsgType::kError)) {
      LW_ASSIGN_OR_RETURN(const ErrorMsg e, DecodeError(in));
      return StatusFromError(e);
    }
    LW_ASSIGN_OR_RETURN(const GetResponse response, DecodeGetResponse(in));
    if (response.request_id != request.request_id) {
      return ProtocolError("response id does not match request");
    }
    traffic_.requests += 1;
    if (sink_ != nullptr) sink_->requests += 1;
    obs::M().client_requests.Inc();
    return enclave_client_->OpenResponse(response.body);
  });
}

Result<std::vector<Result<Bytes>>> EnclaveSession::PrivateGetBatch(
    const std::vector<std::string>& keys, int extra_dummies) {
  if (closed_) return FailedPreconditionError("session closed");
  if (extra_dummies < 0) return InvalidArgumentError("negative dummy count");
  std::vector<Result<Bytes>> out;
  out.reserve(keys.size());
  for (const std::string& key : keys) {
    auto r = PrivateGet(key);
    if (!r.ok() && r.status().code() != StatusCode::kNotFound &&
        r.status().code() != StatusCode::kCollision &&
        r.status().code() != StatusCode::kPermissionDenied) {
      return r.status();  // transport/protocol failure fails the batch
    }
    out.push_back(std::move(r));
  }
  for (int i = 0; i < extra_dummies; ++i) {
    LW_RETURN_IF_ERROR(DummyGet());
  }
  return out;
}

Status EnclaveSession::DummyGet() {
  if (closed_) return FailedPreconditionError("session closed");
  // A fetch for a random never-published key: the enclave's access pattern
  // and response are indistinguishable from a hit.
  const Bytes r = SecureRandom(16);
  std::string key = "dummy/";
  for (std::uint8_t b : r) key += static_cast<char>('a' + (b % 26));
  auto result = PrivateGet(key);
  if (!result.ok() && result.status().code() != StatusCode::kNotFound) {
    return result.status();
  }
  return Status::Ok();
}

void EnclaveSession::Close() {
  if (server_ != nullptr) {
    (void)server_->Send(EncodeBye(), net::Deadline::Infinite());
    server_->Close();
    server_.reset();
  }
  closed_ = true;
}

}  // namespace lw::zltp
