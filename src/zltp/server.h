// ZLTP servers.
//
// ZltpPirServer serves one logical half of the two-server PIR mode: it owns
// no data itself but answers queries against a PirStore (the CDN runs two
// such logical servers on disjoint trust domains, each with a replica of the
// universe). Queries funnel through a BatchScheduler so concurrent clients
// share data scans (paper §5.1 batching).
//
// ZltpEnclaveServer fronts a simulated hardware enclave (paper §2.2's second
// mode): the host merely relays opaque encrypted requests into the enclave.
#pragma once

#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "net/reactor.h"
#include "net/transport.h"
#include "oram/enclave.h"
#include "util/task_queue.h"
#include "util/thread_pool.h"
#include "zltp/batch.h"
#include "zltp/messages.h"
#include "zltp/store.h"

namespace lw::zltp {

struct ServerOptions {
  BatchConfig batch_config;
  // Threads for per-request compute (DPF expansion + data scan, paper
  // §5.1's multi-core server): 0 selects hardware_concurrency(); 1 runs
  // strictly serial with no pool threads at all.
  int num_threads = 0;
};

class ZltpPirServer {
 public:
  // `role` is 0 or 1 — which of the two non-colluding servers this is.
  ZltpPirServer(const PirStore& store, std::uint8_t role,
                ServerOptions options = {});
  // Back-compat convenience: batching knobs only, default threading.
  ZltpPirServer(const PirStore& store, std::uint8_t role,
                BatchConfig batch_config);
  ~ZltpPirServer();

  ZltpPirServer(const ZltpPirServer&) = delete;
  ZltpPirServer& operator=(const ZltpPirServer&) = delete;

  // Serves one client connection until the peer says Bye or disconnects.
  // Blocking; safe to call from many threads at once.
  void ServeConnection(net::Transport& transport);

  // Spawns a thread serving the connection; the thread (and transport) are
  // reaped by the destructor.
  void ServeConnectionDetached(std::unique_ptr<net::Transport> transport);

  // Event-driven serving: registers `listener` on `reactor` and answers
  // every connection it accepts without a thread per connection — frames
  // decode on the loop, ride the batcher via SubmitAsync, and the scan
  // worker's callback queues the reply (docs/ARCHITECTURE.md). Teardown
  // order: reactor.Stop() first (no more callbacks into this server), then
  // destroy the server, then the reactor object. The same order covers
  // reactors that also carry outbound links (a FrontEndServer's
  // ShardFanout::ConnectOnReactor connections): Stop() fires on_close for
  // every outbound conn, after which the fan-out fails its pending ops and
  // its Shutdown's Close(id) calls are stale-id no-ops.
  Status ServeOnReactor(net::Reactor& reactor, net::TcpListener listener);

  BatchScheduler::Stats batch_stats() const { return batcher_.stats(); }

 private:
  const PirStore& store_;
  std::uint8_t role_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_threads == 1
  BatchScheduler batcher_;            // after pool_: it scans on the pool

  // Guards the detached-serving state below. The destructor snapshots and
  // joins OUTSIDE this lock: a joined handler may itself be blocked on
  // ServeConnectionDetached, so joining under the lock can deadlock.
  std::mutex threads_mu_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<net::Transport>> owned_transports_;
};

class ZltpEnclaveServer {
 public:
  explicit ZltpEnclaveServer(oram::KvEnclave& enclave);
  ~ZltpEnclaveServer();

  ZltpEnclaveServer(const ZltpEnclaveServer&) = delete;
  ZltpEnclaveServer& operator=(const ZltpEnclaveServer&) = delete;

  void ServeConnection(net::Transport& transport);
  void ServeConnectionDetached(std::unique_ptr<net::Transport> transport);

  // Event-driven serving (same teardown order as ZltpPirServer). The
  // enclave computes serially behind enclave_mu_, so decoded requests hop
  // to a single dispatcher worker instead of blocking the loop.
  Status ServeOnReactor(net::Reactor& reactor, net::TcpListener listener);

 private:
  oram::KvEnclave& enclave_;
  std::mutex enclave_mu_;  // the enclave processes one request at a time

  std::mutex threads_mu_;  // same snapshot-then-join discipline as above
  bool stopping_ = false;
  std::vector<std::thread> threads_;
  std::vector<std::unique_ptr<net::Transport>> owned_transports_;
  // Reactor-mode dispatcher (created on first ServeOnReactor). Declared
  // last so its destructor joins before the rest of the server goes away.
  std::unique_ptr<TaskQueue> dispatch_;
};

}  // namespace lw::zltp
