#include "pir/keyword.h"

#include "crypto/hkdf.h"
#include "crypto/siphash.h"
#include "util/check.h"

namespace lw::pir {

KeywordMapper::KeywordMapper(ByteSpan seed, int domain_bits)
    : seed_(seed.begin(), seed.end()), domain_bits_(domain_bits) {
  LW_CHECK_MSG(seed.size() == crypto::kSipHashKeySize,
               "keyword seed must be 16 bytes");
  LW_CHECK_MSG(domain_bits >= 1 && domain_bits <= 63,
               "domain_bits out of range");
  fp_seed_ = crypto::Hkdf(seed_, /*salt=*/{}, "lightweb/keyword-fingerprint",
                          crypto::kSipHashKeySize);
}

std::uint64_t KeywordMapper::IndexOf(std::string_view key) const {
  const std::uint64_t h = crypto::SipHash24(seed_, ToBytes(key));
  return h & ((std::uint64_t{1} << domain_bits_) - 1);
}

std::uint64_t KeywordMapper::Fingerprint(std::string_view key) const {
  return crypto::SipHash24(fp_seed_, ToBytes(key));
}

KeywordRegistry::KeywordRegistry(ByteSpan seed, int domain_bits)
    : mapper_(seed, domain_bits) {}

Result<std::uint64_t> KeywordRegistry::Register(std::string_view key) {
  const std::uint64_t index = mapper_.IndexOf(key);
  const auto it = owner_.find(index);
  if (it != owner_.end()) {
    if (it->second == key) return index;  // idempotent
    return CollisionError("keys '" + it->second + "' and '" +
                          std::string(key) + "' hash to the same index");
  }
  owner_.emplace(index, std::string(key));
  return index;
}

Status KeywordRegistry::Unregister(std::string_view key) {
  const std::uint64_t index = mapper_.IndexOf(key);
  const auto it = owner_.find(index);
  if (it == owner_.end() || it->second != key) {
    return NotFoundError("key not registered");
  }
  owner_.erase(it);
  return Status::Ok();
}

Result<std::string> KeywordRegistry::KeyAt(std::uint64_t index) const {
  const auto it = owner_.find(index);
  if (it == owner_.end()) return NotFoundError("index unoccupied");
  return it->second;
}

bool KeywordRegistry::IsRegistered(std::string_view key) const {
  const auto it = owner_.find(mapper_.IndexOf(key));
  return it != owner_.end() && it->second == key;
}

std::vector<std::string> KeywordRegistry::AllKeys() const {
  std::vector<std::string> keys;
  keys.reserve(owner_.size());
  for (const auto& [index, key] : owner_) keys.push_back(key);
  return keys;
}

double KeywordRegistry::LoadFactor() const {
  return static_cast<double>(owner_.size()) /
         static_cast<double>(std::uint64_t{1} << mapper_.domain_bits());
}

}  // namespace lw::pir
