#include "pir/cuckoo_store.h"

#include "crypto/ct.h"
#include "pir/packing.h"
#include "util/check.h"
#include "util/rand.h"

namespace lw::pir {
namespace {

CuckooPirStore::Config Normalize(CuckooPirStore::Config config) {
  if (config.seed.empty()) config.seed = SecureRandom(16);
  return config;
}

}  // namespace

CuckooPirStore::CuckooPirStore(Config config)
    : config_(Normalize(std::move(config))),
      index_(config_.seed, config_.domain_bits),
      fingerprinter_(config_.seed, config_.domain_bits),
      db_(config_.domain_bits, config_.record_size) {
  LW_CHECK_MSG(config_.record_size > kRecordHeaderSize,
               "record_size too small for packing header");
}

Status CuckooPirStore::Publish(std::string_view key, ByteSpan payload) {
  auto packed = PackRecord(Fingerprint(key), payload, config_.record_size);
  if (!packed.ok()) return packed.status();

  // Update in place if the key is already stored.
  if (auto existing = index_.Find(key); existing.ok()) {
    return db_.Update(*existing, *packed);
  }

  LW_ASSIGN_OR_RETURN(const std::vector<CuckooIndex::Move> moves,
                      index_.Insert(key));

  // Relocate evicted records: read every source before writing any
  // destination (a later move's source can be an earlier move's
  // destination), then clear and rewrite.
  std::vector<std::pair<std::uint64_t, Bytes>> relocations;  // (to, record)
  relocations.reserve(moves.size());
  for (const CuckooIndex::Move& mv : moves) {
    LW_ASSIGN_OR_RETURN(Bytes record, db_.Get(mv.from));
    relocations.emplace_back(mv.to, std::move(record));
  }
  for (const CuckooIndex::Move& mv : moves) {
    LW_RETURN_IF_ERROR(db_.Remove(mv.from));
  }
  for (auto& [to, record] : relocations) {
    LW_RETURN_IF_ERROR(db_.Insert(to, record));
  }

  LW_ASSIGN_OR_RETURN(const std::uint64_t slot, index_.Find(key));
  return db_.Insert(slot, *packed);
}

Status CuckooPirStore::Unpublish(std::string_view key) {
  LW_ASSIGN_OR_RETURN(const std::uint64_t slot, index_.Find(key));
  LW_RETURN_IF_ERROR(index_.Remove(key));
  return db_.Remove(slot);
}

bool CuckooPirStore::Contains(std::string_view key) const {
  return index_.Find(key).ok();
}

Result<Bytes> CuckooPirStore::AnswerQuery(const dpf::DpfKey& key) const {
  if (key.domain_bits != config_.domain_bits) {
    return ProtocolError("DPF domain does not match store domain");
  }
  Bytes out(config_.record_size);
  db_.Answer(dpf::EvalFull(key), out);
  return out;
}

Result<Bytes> InterpretCuckooRecords(ByteSpan record_a, ByteSpan record_b,
                                     LW_SECRET std::uint64_t
                                         expected_fingerprint) {
  // Which of the two candidate slots (if either) holds the queried key is a
  // function of the private keyword, so the match must not leak through
  // timing: compare both fingerprints and select the winning record with
  // constant-time masks before unpacking. Record sizes are public.
  if (record_a.size() != record_b.size() ||
      record_a.size() < kRecordHeaderSize) {
    return ProtocolError("malformed cuckoo candidate records");
  }
  const std::uint64_t match_a =
      crypto::ct::EqMask(LoadLE64(record_a.data()), expected_fingerprint);
  const std::uint64_t match_b =
      crypto::ct::EqMask(LoadLE64(record_b.data()), expected_fingerprint) &
      ~match_a;

  Bytes chosen(record_a.size(), 0);
  crypto::ct::CondAssign(match_a, chosen, record_a);
  crypto::ct::CondAssign(match_b, chosen, record_b);
  if ((match_a | match_b) == 0) {
    return NotFoundError("key not present in either cuckoo slot");
  }
  auto un = UnpackRecord(chosen);
  if (!un.ok()) return un.status();
  return std::move(un->payload);
}

}  // namespace lw::pir
