// Runtime-dispatched XOR kernels for the PIR record scan.
//
// The scan's inner operation is "XOR this row into that accumulator". This
// module compiles that operation at three SIMD tiers and picks the widest
// one the running CPU supports, so one binary serves every fleet host:
//
//   kScalar   portable 64-bit word loop (always available)
//   kAvx2     32-byte lanes (compiled with target("avx2"))
//   kAvx512   64-byte lanes (compiled with target("avx512f")) — one whole
//             cache line per op, half the loop iterations of AVX2
//
// Detection uses __builtin_cpu_supports at first use; no global -mavx512*
// flags are needed because each tier's functions carry their own target
// attribute (only the dispatched pointer ever reaches AVX-512 code, so the
// binary still runs on plain SSE hosts). Tests and benches can pin a tier
// with SetXorTier to prove all supported tiers produce identical bytes.
//
// Two kernels are dispatched:
//   XorBytes(dst, src, n)            dst ^= src, the single-query scan op
//   XorRowMulti(row, dsts, k, n)     dsts[i] ^= row for k accumulators —
//                                    the fused batched scan re-uses each
//                                    row load across every selecting query
//                                    instead of re-reading it per query.
#pragma once

#include <cstddef>
#include <cstdint>

namespace lw::pir {

enum class XorTier : int {
  kScalar = 0,
  kAvx2 = 1,
  kAvx512 = 2,
};

const char* XorTierName(XorTier tier);

// Widest tier this CPU can execute (detected once, cached).
XorTier BestSupportedXorTier();

// Tier the dispatched kernels currently use. Defaults to
// BestSupportedXorTier() on first use.
XorTier ActiveXorTier();

// Pins the dispatch to `tier` (equivalence tests, --scan-kernel flag).
// Returns false — leaving the active tier unchanged — if the CPU cannot
// execute it.
bool SetXorTier(XorTier tier);

// Parses "scalar" / "avx2" / "avx512" / "auto" and applies it; returns
// false on an unknown name or unsupported tier.
bool SetXorTierByName(const char* name);

// dst ^= src over n bytes, through the active tier. Both pointers may be
// arbitrarily aligned; aligned inputs take the fast path within a tier.
void XorBytes(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);

// dsts[i] ^= row (i < count) over n bytes each: one pass over `row` feeds
// every destination, so a batched scan pays the row's memory traffic once
// no matter how many queries selected it.
void XorRowMulti(const std::uint8_t* row, std::uint8_t* const* dsts,
                 std::size_t count, std::size_t n);

}  // namespace lw::pir
