// Fixed-size-record blob database with DPF-selected XOR scans.
//
// This is the data structure a ZLTP data server scans per request (paper
// §5.1): records live at sparse indices of the DPF output domain 2^d; an
// answer XORs every record whose DPF evaluation bit is set into a single
// record-sized accumulator. Batched answering amortizes the scan: one pass
// over the data serves B queries, which is exactly the latency/throughput
// trade the paper's batching microbenchmark measures.
//
// Storage is cache-line friendly: rows are padded to a 64-byte stride in a
// 64-byte-aligned (hugepage-advised above 2 MiB) arena, so every row starts
// on a cache line and the runtime-dispatched XOR kernels (scalar/AVX2/
// AVX-512, see pir/xor_kernel.h) run on aligned addresses. Both Answer and
// AnswerBatch accept
// an optional ThreadPool: the scan is sharded into per-worker row ranges,
// each worker XOR-accumulates into private aligned accumulators, and a
// tree reduction combines them (the multi-core server of §5.1).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dpf/dpf.h"
#include "pir/xor_kernel.h"
#include "util/alloc.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lw {
class ThreadPool;
}

namespace lw::pir {

class BlobDatabase {
 public:
  // domain_bits: DPF output domain is 2^domain_bits.
  // record_size: every stored record is exactly this many bytes (ZLTP serves
  // fixed-length blobs; the lightweb layer pads — paper §3.1).
  BlobDatabase(int domain_bits, std::size_t record_size);

  int domain_bits() const { return domain_bits_; }
  std::uint64_t domain_size() const {
    return std::uint64_t{1} << domain_bits_;
  }
  std::size_t record_size() const { return record_size_; }
  std::size_t record_count() const { return index_of_.size(); }
  // Total payload bytes stored (the "1 GiB shard" knob of §5.1).
  std::size_t stored_bytes() const { return record_count() * record_size_; }

  // Bytes between consecutive row starts: record_size rounded up to a
  // 64-byte cache line (padding is zero and never scanned into answers).
  std::size_t row_stride() const { return row_stride_; }
  // Start of a stored row; always 64-byte aligned (tests/benches assert
  // this to keep the XOR kernel on its aligned path).
  const std::uint8_t* row_data(std::size_t row) const {
    return records_.data() + row * row_stride_;
  }

  // Inserts a record at a domain index. Fails with COLLISION if the index is
  // occupied (the paper: "the publisher can simply select another key name").
  // `record` must be exactly record_size bytes.
  Status Insert(std::uint64_t index, ByteSpan record);

  // Replaces the record at an occupied index (publisher content updates).
  Status Update(std::uint64_t index, ByteSpan record);

  // Inserts or replaces.
  Status Upsert(std::uint64_t index, ByteSpan record);

  Status Remove(std::uint64_t index);
  bool Contains(std::uint64_t index) const;

  // Direct (non-private) read, used by tests and the publisher pipeline.
  Result<Bytes> Get(std::uint64_t index) const;

  // PIR answer: XOR of all records whose bit is set in `bits` (a packed
  // 2^domain_bits bit vector from dpf::EvalFull). `out` must be
  // record_size bytes and is overwritten. With a pool, the row range is
  // sharded across workers (identical output — XOR is associative).
  void Answer(const dpf::BitVector& bits, MutableByteSpan out,
              ThreadPool* pool = nullptr) const;

  // Batched PIR answer: a single fused pass walks the records once and
  // applies every query's selection bit per record (B answers for one
  // sweep of memory traffic — §5.1's batching win). answers[q] are each
  // record_size bytes, (re)initialized by the callee. With a pool, row
  // shards each keep B private accumulators, tree-reduced at the end.
  void AnswerBatch(const std::vector<dpf::BitVector>& queries,
                   std::vector<Bytes>& answers,
                   ThreadPool* pool = nullptr) const;

 private:
  // XORs rows [row_begin, row_end) selected by `bits` into acc
  // (record_size bytes).
  void ScanRows(const dpf::BitVector& bits, std::size_t row_begin,
                std::size_t row_end, std::uint8_t* acc) const;
  // Fused variant: applies all queries, accumulating into
  // accs + q * row_stride() per query q.
  void ScanRowsFused(const std::vector<dpf::BitVector>& queries,
                     std::size_t row_begin, std::size_t row_end,
                     std::uint8_t* accs) const;
  // How many row shards a parallel scan should use (1 = serial).
  std::size_t ScanShards(ThreadPool* pool) const;

  int domain_bits_;
  std::size_t record_size_;
  std::size_t row_stride_;
  // Dense row storage: records_ holds record_count rows back to back in
  // insertion order (64-byte aligned, row_stride_ apart); slot_index_[row]
  // is the domain index of that row. Arenas ≥ 2 MiB are hugepage-advised
  // (see util/alloc.h) so a full-shard scan stays TLB-cheap.
  HugeBytes records_;
  std::vector<std::uint64_t> slot_index_;
  std::unordered_map<std::uint64_t, std::size_t> index_of_;  // index -> row
};

// XorBytes / XorRowMulti (the paper's "AVX ... accelerate the scan") live in
// pir/xor_kernel.h, re-exported here for the benches and tests that predate
// the runtime-dispatched tiers.

}  // namespace lw::pir
