// Fixed-size-record blob database with DPF-selected XOR scans.
//
// This is the data structure a ZLTP data server scans per request (paper
// §5.1): records live at sparse indices of the DPF output domain 2^d; an
// answer XORs every record whose DPF evaluation bit is set into a single
// record-sized accumulator. Batched answering amortizes the scan: one pass
// over the data serves B queries, which is exactly the latency/throughput
// trade the paper's batching microbenchmark measures.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "dpf/dpf.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lw::pir {

class BlobDatabase {
 public:
  // domain_bits: DPF output domain is 2^domain_bits.
  // record_size: every stored record is exactly this many bytes (ZLTP serves
  // fixed-length blobs; the lightweb layer pads — paper §3.1).
  BlobDatabase(int domain_bits, std::size_t record_size);

  int domain_bits() const { return domain_bits_; }
  std::uint64_t domain_size() const {
    return std::uint64_t{1} << domain_bits_;
  }
  std::size_t record_size() const { return record_size_; }
  std::size_t record_count() const { return index_of_.size(); }
  // Total payload bytes stored (the "1 GiB shard" knob of §5.1).
  std::size_t stored_bytes() const { return record_count() * record_size_; }

  // Inserts a record at a domain index. Fails with COLLISION if the index is
  // occupied (the paper: "the publisher can simply select another key name").
  // `record` must be exactly record_size bytes.
  Status Insert(std::uint64_t index, ByteSpan record);

  // Replaces the record at an occupied index (publisher content updates).
  Status Update(std::uint64_t index, ByteSpan record);

  // Inserts or replaces.
  Status Upsert(std::uint64_t index, ByteSpan record);

  Status Remove(std::uint64_t index);
  bool Contains(std::uint64_t index) const;

  // Direct (non-private) read, used by tests and the publisher pipeline.
  Result<Bytes> Get(std::uint64_t index) const;

  // PIR answer: XOR of all records whose bit is set in `bits` (a packed
  // 2^domain_bits bit vector from dpf::EvalFull). `out` must be
  // record_size bytes and is overwritten.
  void Answer(const dpf::BitVector& bits, MutableByteSpan out) const;

  // Batched PIR answer: one pass over the stored records serving all
  // queries. answers[q] must each be record_size bytes, zeroed by callee.
  void AnswerBatch(const std::vector<dpf::BitVector>& queries,
                   std::vector<Bytes>& answers) const;

 private:
  void XorRecordInto(std::size_t slot, MutableByteSpan acc) const;

  int domain_bits_;
  std::size_t record_size_;
  // Dense row storage: records_ holds record_count rows back to back in
  // insertion order; slot_index_[row] is the domain index of that row.
  Bytes records_;
  std::vector<std::uint64_t> slot_index_;
  std::unordered_map<std::uint64_t, std::size_t> index_of_;  // index -> row
};

// XORs `src` into `dst` using 32-byte AVX2 lanes when available.
// Exposed for the benches (it is the paper's "AVX ... accelerate the scan").
void XorBytes(std::uint8_t* dst, const std::uint8_t* src, std::size_t n);

}  // namespace lw::pir
