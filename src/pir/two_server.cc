#include "pir/two_server.h"

namespace lw::pir {

QueryKeys MakeIndexQuery(std::uint64_t index, int domain_bits) {
  dpf::KeyPair pair = dpf::Generate(index, domain_bits);
  return QueryKeys{std::move(pair.key0), std::move(pair.key1)};
}

Result<Bytes> CombineAnswers(ByteSpan answer0, ByteSpan answer1) {
  if (answer0.size() != answer1.size()) {
    return ProtocolError("answer size mismatch between servers");
  }
  Bytes out(answer0.begin(), answer0.end());
  XorInto(out, answer1);
  return out;
}

std::size_t QueryUploadBytes(int domain_bits) {
  // party + domain_bits + 16-byte root seed + d * (16-byte CW + t bits).
  return 2 + dpf::kSeedSize +
         static_cast<std::size_t>(domain_bits) * (dpf::kSeedSize + 1);
}

std::size_t TotalCommunicationBytes(int domain_bits,
                                    std::size_t record_size) {
  return 2 * (QueryUploadBytes(domain_bits) + record_size);
}

}  // namespace lw::pir
