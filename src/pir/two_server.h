// Client-side helpers for two-server PIR.
//
// The client turns a desired domain index into a pair of DPF keys (one per
// non-colluding server) and reconstructs the record by XORing the two
// servers' answers (paper §2.2, "Private information retrieval").
#pragma once

#include "dpf/dpf.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lw::pir {

struct QueryKeys {
  dpf::DpfKey key0;  // for server 0
  dpf::DpfKey key1;  // for server 1
};

// Builds the two DPF keys selecting `index` in a 2^domain_bits domain.
QueryKeys MakeIndexQuery(std::uint64_t index, int domain_bits);

// XOR-combines the two servers' record-sized answers.
Result<Bytes> CombineAnswers(ByteSpan answer0, ByteSpan answer1);

// Upload bytes for one query to ONE server (the serialized DPF key), and the
// total per-request communication — used by the §5.1/§5.2 communication
// benches: total = 2 * (upload + record download).
std::size_t QueryUploadBytes(int domain_bits);
std::size_t TotalCommunicationBytes(int domain_bits, std::size_t record_size);

}  // namespace lw::pir
