// Record packing for fixed-size ZLTP blobs.
//
// Layout: [u64 key-fingerprint][u32 payload length][payload][zero padding],
// total exactly record_size bytes. The fingerprint lets a client verify it
// received the record for the key it asked for (detecting hash collisions
// and absences — an all-zero record unpacks to fingerprint 0, length 0).
#pragma once

#include <cstdint>

#include "util/bytes.h"
#include "util/status.h"

namespace lw::pir {

inline constexpr std::size_t kRecordHeaderSize = 12;

// Maximum payload a record of `record_size` can carry.
inline std::size_t MaxPayloadSize(std::size_t record_size) {
  return record_size > kRecordHeaderSize ? record_size - kRecordHeaderSize : 0;
}

// Packs a payload into a record of exactly `record_size` bytes.
// Fails if the payload does not fit.
Result<Bytes> PackRecord(std::uint64_t fingerprint, ByteSpan payload,
                         std::size_t record_size);

struct UnpackedRecord {
  std::uint64_t fingerprint = 0;
  Bytes payload;
};

// Unpacks a record. Fails on malformed length fields (e.g. a corrupted XOR
// reconstruction after an undetected collision).
Result<UnpackedRecord> UnpackRecord(ByteSpan record);

}  // namespace lw::pir
