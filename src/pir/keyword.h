// Keyword-to-index mapping for keyword PIR.
//
// ZLTP keys are arbitrary strings (lightweb paths); the DPF works over a
// dense domain 2^d. A universe-wide SipHash seed maps every key to a domain
// index (paper §5.1 sets d = 22 so that ~2^20 keys collide with probability
// ≤ 1/4 at capacity). The server-side registry detects collisions at publish
// time and rejects them, matching the paper's "the publisher can simply
// select another key name".
//
// A second, independently derived SipHash key produces a 64-bit fingerprint
// stored inside each record so the client can detect silent collisions or
// absent keys without trusting the server.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace lw::pir {

class KeywordMapper {
 public:
  // `seed` is the 16-byte universe seed (distributed in the ServerHello).
  KeywordMapper(ByteSpan seed, int domain_bits);

  int domain_bits() const { return domain_bits_; }
  const Bytes& seed() const { return seed_; }

  // Domain index of a key: SipHash(seed, key) reduced mod 2^d.
  std::uint64_t IndexOf(std::string_view key) const;

  // 64-bit fingerprint embedded in packed records (independent SipHash key).
  std::uint64_t Fingerprint(std::string_view key) const;

 private:
  Bytes seed_;      // 16 bytes, index hashing
  Bytes fp_seed_;   // 16 bytes, fingerprint hashing (derived)
  int domain_bits_;
};

// Server-side registry tracking which key owns which index, to reject
// collisions at publish time.
class KeywordRegistry {
 public:
  KeywordRegistry(ByteSpan seed, int domain_bits);

  const KeywordMapper& mapper() const { return mapper_; }

  // Registers a key; returns its index, or COLLISION if a *different* key
  // already occupies that index (re-registering the same key is idempotent).
  Result<std::uint64_t> Register(std::string_view key);

  Status Unregister(std::string_view key);

  // The key occupying an index, if any.
  Result<std::string> KeyAt(std::uint64_t index) const;

  bool IsRegistered(std::string_view key) const;
  std::size_t size() const { return owner_.size(); }

  // Every registered key (order unspecified). Used by universe peering.
  std::vector<std::string> AllKeys() const;

  // Load factor diagnostics for the collision ablation (E9).
  double LoadFactor() const;

 private:
  KeywordMapper mapper_;
  std::unordered_map<std::uint64_t, std::string> owner_;  // index -> key
};

}  // namespace lw::pir
