#include "pir/cuckoo.h"

#include "crypto/hkdf.h"
#include "crypto/siphash.h"
#include "util/check.h"

namespace lw::pir {

CuckooIndex::CuckooIndex(ByteSpan seed, int domain_bits, int max_kicks)
    : domain_bits_(domain_bits), max_kicks_(max_kicks) {
  LW_CHECK_MSG(seed.size() == crypto::kSipHashKeySize,
               "cuckoo seed must be 16 bytes");
  LW_CHECK_MSG(domain_bits >= 1 && domain_bits <= 63,
               "domain_bits out of range");
  seed1_ = crypto::Hkdf(seed, {}, "lightweb/cuckoo-h1",
                        crypto::kSipHashKeySize);
  seed2_ = crypto::Hkdf(seed, {}, "lightweb/cuckoo-h2",
                        crypto::kSipHashKeySize);
}

std::uint64_t CuckooIndex::Hash(std::string_view key, int which) const {
  const Bytes& s = which == 0 ? seed1_ : seed2_;
  return crypto::SipHash24(s, ToBytes(key)) &
         ((std::uint64_t{1} << domain_bits_) - 1);
}

std::pair<std::uint64_t, std::uint64_t> CuckooIndex::Candidates(
    std::string_view key) const {
  return {Hash(key, 0), Hash(key, 1)};
}

std::uint64_t CuckooIndex::Alternate(std::string_view key,
                                     std::uint64_t current) const {
  const auto [h1, h2] = Candidates(key);
  return current == h1 ? h2 : h1;
}

Result<std::vector<CuckooIndex::Move>> CuckooIndex::Insert(
    std::string_view key) {
  if (slot_of_.contains(std::string(key))) {
    return InvalidArgumentError("key already inserted");
  }

  // Keys displaced during the chain, with the slot they originally held.
  std::vector<std::pair<std::string, std::uint64_t>> displaced;
  std::string carried(key);
  std::uint64_t target = Hash(carried, 0);
  bool placed = false;

  for (int kick = 0; kick <= max_kicks_ && !placed; ++kick) {
    const auto it = occupant_.find(target);
    if (it == occupant_.end()) {
      occupant_.emplace(target, carried);
      slot_of_[carried] = target;
      placed = true;
      break;
    }
    // Try the carried key's other candidate before evicting.
    const std::uint64_t alt = Alternate(carried, target);
    if (alt != target && !occupant_.contains(alt)) {
      occupant_.emplace(alt, carried);
      slot_of_[carried] = alt;
      placed = true;
      break;
    }
    // Evict the occupant and keep going with it.
    std::string evicted = it->second;
    displaced.emplace_back(evicted, target);
    occupant_[target] = carried;
    slot_of_[carried] = target;
    carried = std::move(evicted);
    target = Alternate(carried, target);
  }

  if (!placed) {
    // Undo the chain without snapshots: the chain only ever wrote to the
    // slots it evicted from ({displaced[i].from}); the original key sits at
    // displaced[0].from and the last evicted key is dangling. Reverse
    // replay restores every occupant exactly.
    for (auto it = displaced.rbegin(); it != displaced.rend(); ++it) {
      occupant_[it->second] = it->first;
      slot_of_[it->first] = it->second;
    }
    slot_of_.erase(std::string(key));
    return ResourceExhaustedError("cuckoo eviction chain exceeded max_kicks");
  }

  // Report each displaced key's old → final slot. Long chains can displace
  // the same key twice (cycles), so deduplicate on the FIRST displacement's
  // slot, and drop keys that ended up back where they started. Callers
  // mirroring these moves in a blob store should read all `from` records
  // before writing any `to` slot (a later move's source can be an earlier
  // move's destination).
  std::vector<Move> moves;
  moves.reserve(displaced.size());
  std::unordered_map<std::string, bool> seen;
  for (const auto& [k, from] : displaced) {
    if (seen[k]) continue;
    seen[k] = true;
    const std::uint64_t final_slot = slot_of_.at(k);
    if (final_slot != from) {
      moves.push_back(Move{k, from, final_slot});
    }
  }
  return moves;
}

Status CuckooIndex::Remove(std::string_view key) {
  const auto it = slot_of_.find(std::string(key));
  if (it == slot_of_.end()) return NotFoundError("key not in cuckoo index");
  occupant_.erase(it->second);
  slot_of_.erase(it);
  return Status::Ok();
}

Result<std::uint64_t> CuckooIndex::Find(std::string_view key) const {
  const auto it = slot_of_.find(std::string(key));
  if (it == slot_of_.end()) return NotFoundError("key not in cuckoo index");
  return it->second;
}

Result<std::string> CuckooIndex::KeyAt(std::uint64_t index) const {
  const auto it = occupant_.find(index);
  if (it == occupant_.end()) return NotFoundError("index unoccupied");
  return it->second;
}

}  // namespace lw::pir
