#include "pir/xor_kernel.h"

#include <atomic>
#include <cstring>

#include "util/bytes.h"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define LW_XOR_X86 1
#endif

namespace lw::pir {
namespace {

// ---------------------------------------------------------------------------
// Scalar tier: portable 64-bit words, byte tail. Also the tail handler the
// vector tiers fall through to for the last < lane-size bytes.

void XorBytesScalar(std::uint8_t* dst, const std::uint8_t* src,
                    std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    lw::StoreLE64(dst + i, lw::LoadLE64(dst + i) ^ lw::LoadLE64(src + i));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

void XorRowMultiScalar(const std::uint8_t* row, std::uint8_t* const* dsts,
                       std::size_t count, std::size_t n) {
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const std::uint64_t r = lw::LoadLE64(row + i);
    for (std::size_t k = 0; k < count; ++k) {
      lw::StoreLE64(dsts[k] + i, lw::LoadLE64(dsts[k] + i) ^ r);
    }
  }
  for (; i < n; ++i) {
    const std::uint8_t r = row[i];
    for (std::size_t k = 0; k < count; ++k) dsts[k][i] ^= r;
  }
}

#if defined(LW_XOR_X86)

// ---------------------------------------------------------------------------
// AVX2 tier: 32-byte lanes. Each function carries its own target attribute
// so the file needs no -mavx2 flag (the repo adds one globally today, but
// the kernels must not depend on it — the AVX-512 tier can't get a global
// flag, and both tiers follow the same discipline).

__attribute__((target("avx2"))) void XorBytesAvx2(std::uint8_t* dst,
                                                  const std::uint8_t* src,
                                                  std::size_t n) {
  std::size_t i = 0;
  if (((reinterpret_cast<std::uintptr_t>(dst) |
        reinterpret_cast<std::uintptr_t>(src)) &
       31) == 0) {
    // Aligned path: BlobDatabase rows and scan accumulators are 64-byte
    // aligned, so the hot scan always lands here.
    for (; i + 32 <= n; i += 32) {
      const __m256i a =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(dst + i));
      const __m256i b =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(src + i));
      _mm256_store_si256(reinterpret_cast<__m256i*>(dst + i),
                         _mm256_xor_si256(a, b));
    }
  } else {
    for (; i + 32 <= n; i += 32) {
      const __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
      const __m256i b =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                          _mm256_xor_si256(a, b));
    }
  }
  XorBytesScalar(dst + i, src + i, n - i);
}

__attribute__((target("avx2"))) void XorRowMultiAvx2(
    const std::uint8_t* row, std::uint8_t* const* dsts, std::size_t count,
    std::size_t n) {
  std::size_t i = 0;
  for (; i + 32 <= n; i += 32) {
    // One load of the row lane feeds every destination accumulator.
    const __m256i r =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + i));
    for (std::size_t k = 0; k < count; ++k) {
      const __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dsts[k] + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dsts[k] + i),
                          _mm256_xor_si256(a, r));
    }
  }
  if (i < n) {
    const std::uint8_t* row_tail = row + i;
    for (std::size_t k = 0; k < count; ++k) {
      XorBytesScalar(dsts[k] + i, row_tail, n - i);
    }
  }
}

// ---------------------------------------------------------------------------
// AVX-512 tier: 64-byte lanes — one full cache line (and one full
// BlobDatabase row-stride quantum) per op.

__attribute__((target("avx512f"))) void XorBytesAvx512(std::uint8_t* dst,
                                                       const std::uint8_t* src,
                                                       std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i a = _mm512_loadu_si512(dst + i);
    const __m512i b = _mm512_loadu_si512(src + i);
    _mm512_storeu_si512(dst + i, _mm512_xor_si512(a, b));
  }
  XorBytesScalar(dst + i, src + i, n - i);
}

__attribute__((target("avx512f"))) void XorRowMultiAvx512(
    const std::uint8_t* row, std::uint8_t* const* dsts, std::size_t count,
    std::size_t n) {
  std::size_t i = 0;
  for (; i + 64 <= n; i += 64) {
    const __m512i r = _mm512_loadu_si512(row + i);
    for (std::size_t k = 0; k < count; ++k) {
      const __m512i a = _mm512_loadu_si512(dsts[k] + i);
      _mm512_storeu_si512(dsts[k] + i, _mm512_xor_si512(a, r));
    }
  }
  if (i < n) {
    const std::uint8_t* row_tail = row + i;
    for (std::size_t k = 0; k < count; ++k) {
      XorBytesScalar(dsts[k] + i, row_tail, n - i);
    }
  }
}

#endif  // LW_XOR_X86

// ---------------------------------------------------------------------------
// Dispatch. The active tier is a relaxed atomic: tier changes are a test /
// startup-flag affordance, not a synchronization point, and every tier
// computes identical bytes, so a racing reader seeing the old tier is
// harmless.

bool TierSupported(XorTier tier) {
  switch (tier) {
    case XorTier::kScalar:
      return true;
    case XorTier::kAvx2:
#if defined(LW_XOR_X86)
      return __builtin_cpu_supports("avx2") != 0;
#else
      return false;
#endif
    case XorTier::kAvx512:
#if defined(LW_XOR_X86)
      return __builtin_cpu_supports("avx512f") != 0;
#else
      return false;
#endif
  }
  return false;
}

XorTier DetectBestTier() {
  if (TierSupported(XorTier::kAvx512)) return XorTier::kAvx512;
  if (TierSupported(XorTier::kAvx2)) return XorTier::kAvx2;
  return XorTier::kScalar;
}

std::atomic<XorTier>& ActiveTierStorage() {
  static std::atomic<XorTier> tier{DetectBestTier()};
  return tier;
}

}  // namespace

const char* XorTierName(XorTier tier) {
  switch (tier) {
    case XorTier::kScalar:
      return "scalar";
    case XorTier::kAvx2:
      return "avx2";
    case XorTier::kAvx512:
      return "avx512";
  }
  return "unknown";
}

XorTier BestSupportedXorTier() {
  static const XorTier best = DetectBestTier();
  return best;
}

XorTier ActiveXorTier() {
  return ActiveTierStorage().load(std::memory_order_relaxed);
}

bool SetXorTier(XorTier tier) {
  if (!TierSupported(tier)) return false;
  ActiveTierStorage().store(tier, std::memory_order_relaxed);
  return true;
}

bool SetXorTierByName(const char* name) {
  if (name == nullptr) return false;
  if (std::strcmp(name, "auto") == 0) {
    return SetXorTier(BestSupportedXorTier());
  }
  if (std::strcmp(name, "scalar") == 0) return SetXorTier(XorTier::kScalar);
  if (std::strcmp(name, "avx2") == 0) return SetXorTier(XorTier::kAvx2);
  if (std::strcmp(name, "avx512") == 0) return SetXorTier(XorTier::kAvx512);
  return false;
}

void XorBytes(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  switch (ActiveXorTier()) {
#if defined(LW_XOR_X86)
    case XorTier::kAvx512:
      XorBytesAvx512(dst, src, n);
      return;
    case XorTier::kAvx2:
      XorBytesAvx2(dst, src, n);
      return;
#endif
    default:
      XorBytesScalar(dst, src, n);
      return;
  }
}

void XorRowMulti(const std::uint8_t* row, std::uint8_t* const* dsts,
                 std::size_t count, std::size_t n) {
  if (count == 0) return;
  switch (ActiveXorTier()) {
#if defined(LW_XOR_X86)
    case XorTier::kAvx512:
      XorRowMultiAvx512(row, dsts, count, n);
      return;
    case XorTier::kAvx2:
      XorRowMultiAvx2(row, dsts, count, n);
      return;
#endif
    default:
      XorRowMultiScalar(row, dsts, count, n);
      return;
  }
}

}  // namespace lw::pir
