// Cuckoo-hashing keyword index.
//
// The paper (§5.1) notes the keyword collision probability "could [be]
// decrease[d] ... by using cuckoo hashing and probing several locations per
// request". This index gives every key two candidate domain indices; the
// client issues two private-GETs (one per candidate) and picks the record
// whose fingerprint matches. Insertion uses bounded eviction chains; the
// caller relocates the evicted records in the blob database by replaying the
// returned move list.
#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/bytes.h"
#include "util/status.h"

namespace lw::pir {

class CuckooIndex {
 public:
  // `seed` is 16 bytes; both hash functions are derived from it.
  CuckooIndex(ByteSpan seed, int domain_bits, int max_kicks = 500);

  int domain_bits() const { return domain_bits_; }

  // The two candidate indices for a key (may coincide for unlucky keys).
  std::pair<std::uint64_t, std::uint64_t> Candidates(
      std::string_view key) const;

  // A record relocation the caller must mirror in its blob store.
  struct Move {
    std::string key;
    std::uint64_t from;
    std::uint64_t to;
  };

  // Inserts a key. On success returns the eviction moves performed (possibly
  // empty); the new key's own placement is reported by Find(). Fails with
  // RESOURCE_EXHAUSTED when the eviction chain exceeds max_kicks (table too
  // full). Re-inserting a present key is an error (INVALID_ARGUMENT).
  Result<std::vector<Move>> Insert(std::string_view key);

  Status Remove(std::string_view key);

  // Current index of a key, or NOT_FOUND.
  Result<std::uint64_t> Find(std::string_view key) const;

  // Key stored at an index, or NOT_FOUND.
  Result<std::string> KeyAt(std::uint64_t index) const;

  std::size_t size() const { return slot_of_.size(); }
  double LoadFactor() const {
    return static_cast<double>(slot_of_.size()) /
           static_cast<double>(std::uint64_t{1} << domain_bits_);
  }

 private:
  std::uint64_t Hash(std::string_view key, int which) const;
  std::uint64_t Alternate(std::string_view key, std::uint64_t current) const;

  Bytes seed1_;
  Bytes seed2_;
  int domain_bits_;
  int max_kicks_;
  std::unordered_map<std::uint64_t, std::string> occupant_;  // index -> key
  std::unordered_map<std::string, std::uint64_t> slot_of_;   // key -> index
};

}  // namespace lw::pir
