#include "pir/blob_db.h"

#include <cstring>

#include "util/check.h"

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace lw::pir {

void XorBytes(std::uint8_t* dst, const std::uint8_t* src, std::size_t n) {
  std::size_t i = 0;
#if defined(__AVX2__)
  for (; i + 32 <= n; i += 32) {
    const __m256i a = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(dst + i));
    const __m256i b = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(src + i));
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + i),
                        _mm256_xor_si256(a, b));
  }
#endif
  for (; i + 8 <= n; i += 8) {
    lw::StoreLE64(dst + i, lw::LoadLE64(dst + i) ^ lw::LoadLE64(src + i));
  }
  for (; i < n; ++i) dst[i] ^= src[i];
}

BlobDatabase::BlobDatabase(int domain_bits, std::size_t record_size)
    : domain_bits_(domain_bits), record_size_(record_size) {
  LW_CHECK_MSG(domain_bits >= 1 && domain_bits <= dpf::kMaxDomainBits,
               "domain_bits out of range");
  LW_CHECK_MSG(record_size > 0, "record_size must be positive");
}

Status BlobDatabase::Insert(std::uint64_t index, ByteSpan record) {
  if (index >= domain_size()) {
    return InvalidArgumentError("index outside DPF domain");
  }
  if (record.size() != record_size_) {
    return InvalidArgumentError("record size mismatch");
  }
  if (index_of_.contains(index)) {
    return CollisionError("domain index already occupied");
  }
  index_of_.emplace(index, slot_index_.size());
  slot_index_.push_back(index);
  records_.insert(records_.end(), record.begin(), record.end());
  return Status::Ok();
}

Status BlobDatabase::Update(std::uint64_t index, ByteSpan record) {
  if (record.size() != record_size_) {
    return InvalidArgumentError("record size mismatch");
  }
  const auto it = index_of_.find(index);
  if (it == index_of_.end()) return NotFoundError("no record at index");
  std::memcpy(records_.data() + it->second * record_size_, record.data(),
              record_size_);
  return Status::Ok();
}

Status BlobDatabase::Upsert(std::uint64_t index, ByteSpan record) {
  if (Contains(index)) return Update(index, record);
  return Insert(index, record);
}

Status BlobDatabase::Remove(std::uint64_t index) {
  const auto it = index_of_.find(index);
  if (it == index_of_.end()) return NotFoundError("no record at index");
  const std::size_t row = it->second;
  const std::size_t last = slot_index_.size() - 1;
  if (row != last) {
    // Swap-remove keeps storage dense for the linear scan.
    std::memcpy(records_.data() + row * record_size_,
                records_.data() + last * record_size_, record_size_);
    slot_index_[row] = slot_index_[last];
    index_of_[slot_index_[row]] = row;
  }
  records_.resize(last * record_size_);
  slot_index_.pop_back();
  index_of_.erase(it);
  return Status::Ok();
}

bool BlobDatabase::Contains(std::uint64_t index) const {
  return index_of_.contains(index);
}

Result<Bytes> BlobDatabase::Get(std::uint64_t index) const {
  const auto it = index_of_.find(index);
  if (it == index_of_.end()) return NotFoundError("no record at index");
  const std::uint8_t* p = records_.data() + it->second * record_size_;
  return Bytes(p, p + record_size_);
}

void BlobDatabase::XorRecordInto(std::size_t row, MutableByteSpan acc) const {
  XorBytes(acc.data(), records_.data() + row * record_size_, record_size_);
}

void BlobDatabase::Answer(const dpf::BitVector& bits,
                          MutableByteSpan out) const {
  LW_CHECK_MSG(out.size() == record_size_, "answer buffer size mismatch");
  LW_CHECK_MSG(bits.size() * 64 >= domain_size(), "bit vector too small");
  std::memset(out.data(), 0, out.size());
  const std::size_t n = slot_index_.size();
  for (std::size_t row = 0; row < n; ++row) {
    if (dpf::GetBit(bits, slot_index_[row])) {
      XorRecordInto(row, out);
    }
  }
}

void BlobDatabase::AnswerBatch(const std::vector<dpf::BitVector>& queries,
                               std::vector<Bytes>& answers) const {
  answers.assign(queries.size(), Bytes(record_size_, 0));
  for (const dpf::BitVector& q : queries) {
    LW_CHECK_MSG(q.size() * 64 >= domain_size(), "bit vector too small");
  }
  const std::size_t n = slot_index_.size();
  // One pass over the data: each row is read from memory once and XORed into
  // every selecting query's accumulator (the batching win of §5.1).
  for (std::size_t row = 0; row < n; ++row) {
    const std::uint64_t idx = slot_index_[row];
    for (std::size_t qi = 0; qi < queries.size(); ++qi) {
      if (dpf::GetBit(queries[qi], idx)) {
        XorRecordInto(row, answers[qi]);
      }
    }
  }
}

}  // namespace lw::pir
