#include "pir/blob_db.h"

#include <algorithm>
#include <chrono>
#include <cstring>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace lw::pir {
namespace {

// Rows ahead of the current one to pull into cache during a scan. The XOR
// of one selected row is far slower than a prefetched sequential read, so a
// short distance suffices to hide the miss on the selection-bit lookup.
constexpr std::size_t kPrefetchRows = 4;

inline void PrefetchRow(const std::uint8_t* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p, /*rw=*/0, /*locality=*/3);
#else
  (void)p;
#endif
}

}  // namespace

BlobDatabase::BlobDatabase(int domain_bits, std::size_t record_size)
    : domain_bits_(domain_bits),
      record_size_(record_size),
      row_stride_(AlignUp(record_size, kCacheLineSize)) {
  LW_CHECK_MSG(domain_bits >= 1 && domain_bits <= dpf::kMaxDomainBits,
               "domain_bits out of range");
  LW_CHECK_MSG(record_size > 0, "record_size must be positive");
}

Status BlobDatabase::Insert(std::uint64_t index, ByteSpan record) {
  if (index >= domain_size()) {
    return InvalidArgumentError("index outside DPF domain");
  }
  if (record.size() != record_size_) {
    return InvalidArgumentError("record size mismatch");
  }
  if (index_of_.contains(index)) {
    return CollisionError("domain index already occupied");
  }
  index_of_.emplace(index, slot_index_.size());
  slot_index_.push_back(index);
  records_.resize(records_.size() + row_stride_, 0);  // zero row + padding
  std::memcpy(records_.data() + records_.size() - row_stride_, record.data(),
              record_size_);
  return Status::Ok();
}

Status BlobDatabase::Update(std::uint64_t index, ByteSpan record) {
  if (record.size() != record_size_) {
    return InvalidArgumentError("record size mismatch");
  }
  const auto it = index_of_.find(index);
  if (it == index_of_.end()) return NotFoundError("no record at index");
  std::memcpy(records_.data() + it->second * row_stride_, record.data(),
              record_size_);
  return Status::Ok();
}

Status BlobDatabase::Upsert(std::uint64_t index, ByteSpan record) {
  if (Contains(index)) return Update(index, record);
  return Insert(index, record);
}

Status BlobDatabase::Remove(std::uint64_t index) {
  const auto it = index_of_.find(index);
  if (it == index_of_.end()) return NotFoundError("no record at index");
  const std::size_t row = it->second;
  const std::size_t last = slot_index_.size() - 1;
  if (row != last) {
    // Swap-remove keeps storage dense for the linear scan.
    std::memcpy(records_.data() + row * row_stride_,
                records_.data() + last * row_stride_, row_stride_);
    slot_index_[row] = slot_index_[last];
    index_of_[slot_index_[row]] = row;
  }
  records_.resize(last * row_stride_);
  slot_index_.pop_back();
  index_of_.erase(it);
  return Status::Ok();
}

bool BlobDatabase::Contains(std::uint64_t index) const {
  return index_of_.contains(index);
}

Result<Bytes> BlobDatabase::Get(std::uint64_t index) const {
  const auto it = index_of_.find(index);
  if (it == index_of_.end()) return NotFoundError("no record at index");
  const std::uint8_t* p = records_.data() + it->second * row_stride_;
  return Bytes(p, p + record_size_);
}

std::size_t BlobDatabase::ScanShards(ThreadPool* pool) const {
  if (pool == nullptr || pool->thread_count() <= 1) return 1;
  // At least ~256 rows per shard: below that, accumulator setup and the
  // reduction dwarf the scan itself.
  const std::size_t by_rows = slot_index_.size() / 256;
  return std::max<std::size_t>(
      1, std::min(static_cast<std::size_t>(pool->thread_count()), by_rows));
}

void BlobDatabase::ScanRows(const dpf::BitVector& bits, std::size_t row_begin,
                            std::size_t row_end, std::uint8_t* acc) const {
  for (std::size_t row = row_begin; row < row_end; ++row) {
    if (row + kPrefetchRows < row_end) {
      PrefetchRow(records_.data() + (row + kPrefetchRows) * row_stride_);
    }
    if (dpf::GetBit(bits, slot_index_[row])) {
      XorBytes(acc, records_.data() + row * row_stride_, record_size_);
    }
  }
}

void BlobDatabase::ScanRowsFused(const std::vector<dpf::BitVector>& queries,
                                 std::size_t row_begin, std::size_t row_end,
                                 std::uint8_t* accs) const {
  const std::size_t nq = queries.size();
  // Destinations selected by the current row; hoisted so the inner loop
  // never allocates.
  std::vector<std::uint8_t*> selected;
  selected.reserve(nq);
  for (std::size_t row = row_begin; row < row_end; ++row) {
    if (row + kPrefetchRows < row_end) {
      PrefetchRow(records_.data() + (row + kPrefetchRows) * row_stride_);
    }
    // One read of the row serves every selecting query: gather the
    // accumulators whose bit is set, then a single fused kernel pass loads
    // each row lane once and XORs it into all of them (the batching
    // amortization of §5.1, carried down to the register level).
    const std::uint64_t idx = slot_index_[row];
    const std::uint8_t* rec = records_.data() + row * row_stride_;
    selected.clear();
    for (std::size_t q = 0; q < nq; ++q) {
      if (dpf::GetBit(queries[q], idx)) {
        selected.push_back(accs + q * row_stride_);
      }
    }
    if (!selected.empty()) {
      XorRowMulti(rec, selected.data(), selected.size(), record_size_);
    }
  }
}

void BlobDatabase::Answer(const dpf::BitVector& bits, MutableByteSpan out,
                          ThreadPool* pool) const {
  LW_CHECK_MSG(out.size() == record_size_, "answer buffer size mismatch");
  LW_CHECK_MSG(bits.size() * 64 >= domain_size(), "bit vector too small");
  const auto scan_start = std::chrono::steady_clock::now();
  const std::size_t n = slot_index_.size();
  const std::size_t shards = ScanShards(pool);
  // Accumulate into aligned scratch (one row-stride slot per shard) so
  // XorBytes stays on its aligned path even when `out` is not aligned.
  AlignedBytes accs(shards * row_stride_, 0);
  if (shards <= 1) {
    ScanRows(bits, 0, n, accs.data());
  } else {
    const std::size_t chunk = (n + shards - 1) / shards;
    pool->ParallelFor(0, shards, 1, [&](std::size_t w0, std::size_t w1) {
      for (std::size_t w = w0; w < w1; ++w) {
        ScanRows(bits, w * chunk, std::min(n, (w + 1) * chunk),
                 accs.data() + w * row_stride_);
      }
    });
    // Tree reduction of the per-shard accumulators into slot 0.
    for (std::size_t step = 1; step < shards; step <<= 1) {
      for (std::size_t i = 0; i + step < shards; i += 2 * step) {
        XorBytes(accs.data() + i * row_stride_,
                 accs.data() + (i + step) * row_stride_, record_size_);
      }
    }
  }
  std::memcpy(out.data(), accs.data(), record_size_);
  const std::uint64_t scan_ns = obs::ElapsedNs(scan_start);
  obs::M().scan_pass_ns.Observe(scan_ns);
  obs::M().scan_busy_ns.Inc(scan_ns);
  obs::M().scan_rows_scanned.Inc(n);
  obs::M().scan_passes.Inc();
  obs::AddScanNs(scan_ns);
}

void BlobDatabase::AnswerBatch(const std::vector<dpf::BitVector>& queries,
                               std::vector<Bytes>& answers,
                               ThreadPool* pool) const {
  answers.assign(queries.size(), Bytes(record_size_, 0));
  if (queries.empty()) return;
  for (const dpf::BitVector& q : queries) {
    LW_CHECK_MSG(q.size() * 64 >= domain_size(), "bit vector too small");
  }
  const auto scan_start = std::chrono::steady_clock::now();
  const std::size_t n = slot_index_.size();
  const std::size_t nq = queries.size();
  const std::size_t shards = ScanShards(pool);
  // Per shard, one aligned accumulator per query, row_stride_ apart.
  const std::size_t acc_block = nq * row_stride_;
  AlignedBytes accs(shards * acc_block, 0);
  if (shards <= 1) {
    ScanRowsFused(queries, 0, n, accs.data());
  } else {
    const std::size_t chunk = (n + shards - 1) / shards;
    pool->ParallelFor(0, shards, 1, [&](std::size_t w0, std::size_t w1) {
      for (std::size_t w = w0; w < w1; ++w) {
        ScanRowsFused(queries, w * chunk, std::min(n, (w + 1) * chunk),
                      accs.data() + w * acc_block);
      }
    });
    // Tree reduction across shards; a whole block (all B accumulators) is
    // combined per XOR, padding XORs zero into zero.
    for (std::size_t step = 1; step < shards; step <<= 1) {
      for (std::size_t i = 0; i + step < shards; i += 2 * step) {
        XorBytes(accs.data() + i * acc_block,
                 accs.data() + (i + step) * acc_block, acc_block);
      }
    }
  }
  for (std::size_t q = 0; q < nq; ++q) {
    std::memcpy(answers[q].data(), accs.data() + q * row_stride_,
                record_size_);
  }
  const std::uint64_t scan_ns = obs::ElapsedNs(scan_start);
  obs::M().scan_pass_ns.Observe(scan_ns);
  obs::M().scan_busy_ns.Inc(scan_ns);
  // The fused pass reads each row once no matter how many queries ride it.
  obs::M().scan_rows_scanned.Inc(n);
  obs::M().scan_passes.Inc();
  obs::AddScanNs(scan_ns);
}

}  // namespace lw::pir
