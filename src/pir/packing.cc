#include "pir/packing.h"

#include "util/io.h"

namespace lw::pir {

Result<Bytes> PackRecord(std::uint64_t fingerprint, ByteSpan payload,
                         std::size_t record_size) {
  if (record_size < kRecordHeaderSize) {
    return InvalidArgumentError("record_size smaller than header");
  }
  if (payload.size() > MaxPayloadSize(record_size)) {
    return InvalidArgumentError(
        "payload of " + std::to_string(payload.size()) +
        " bytes does not fit in record of " + std::to_string(record_size));
  }
  Bytes out(record_size, 0);
  StoreLE64(out.data(), fingerprint);
  StoreLE32(out.data() + 8, static_cast<std::uint32_t>(payload.size()));
  std::copy(payload.begin(), payload.end(),
            out.begin() + static_cast<std::ptrdiff_t>(kRecordHeaderSize));
  return out;
}

Result<UnpackedRecord> UnpackRecord(ByteSpan record) {
  if (record.size() < kRecordHeaderSize) {
    return ProtocolError("record shorter than header");
  }
  UnpackedRecord out;
  out.fingerprint = LoadLE64(record.data());
  const std::uint32_t len = LoadLE32(record.data() + 8);
  if (len > record.size() - kRecordHeaderSize) {
    return ProtocolError("record payload length exceeds record size");
  }
  out.payload.assign(record.begin() + kRecordHeaderSize,
                     record.begin() + kRecordHeaderSize + len);
  return out;
}

}  // namespace lw::pir
