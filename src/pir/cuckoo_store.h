// Keyword PIR with cuckoo hashing (paper §5.1):
//
// "We could decrease this [collision] probability by increasing the DPF
// output domain or by using cuckoo hashing and probing several locations
// per request."
//
// Every key has two candidate domain indices. Publishing relocates existing
// records along cuckoo eviction chains instead of failing on a collision,
// so the store packs to ~50% load where direct hashing fails at ~25%. A
// lookup issues TWO private GETs — one per candidate — and keeps the record
// whose embedded fingerprint matches; privacy is unaffected (both queries
// are ordinary private GETs).
#pragma once

#include <string_view>

#include "crypto/secret.h"
#include "dpf/dpf.h"
#include "pir/blob_db.h"
#include "pir/cuckoo.h"
#include "pir/keyword.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lw::pir {

class CuckooPirStore {
 public:
  struct Config {
    int domain_bits = 16;
    std::size_t record_size = 1024;
    Bytes seed;  // 16 bytes; random if empty
  };

  explicit CuckooPirStore(Config config);

  int domain_bits() const { return config_.domain_bits; }
  std::size_t record_size() const { return config_.record_size; }
  std::size_t record_count() const { return db_.record_count(); }
  double load_factor() const { return index_.LoadFactor(); }
  const Bytes& seed() const { return config_.seed; }

  // Publishes (or updates) a key. Evicted records are relocated
  // transparently. RESOURCE_EXHAUSTED only when the table is genuinely too
  // full for the eviction chain to resolve.
  Status Publish(std::string_view key, ByteSpan payload);

  Status Unpublish(std::string_view key);
  bool Contains(std::string_view key) const;

  // The two candidate indices a client probes for a key.
  std::pair<std::uint64_t, std::uint64_t> Candidates(
      std::string_view key) const {
    return index_.Candidates(key);
  }

  std::uint64_t Fingerprint(std::string_view key) const {
    return fingerprinter_.Fingerprint(key);
  }

  // Server-side PIR answer (same scan as the direct store).
  Result<Bytes> AnswerQuery(const dpf::DpfKey& key) const;

 private:
  Config config_;
  CuckooIndex index_;
  KeywordMapper fingerprinter_;  // only its fingerprint half is used
  BlobDatabase db_;
};

// Client-side reconstruction: given the two candidate records (already
// XOR-combined from the two servers), returns the payload whose fingerprint
// matches, NOT_FOUND if neither slot holds the key. The expected
// fingerprint is derived from the private keyword, so it is secret: which
// slot matched must not leak through timing.
Result<Bytes> InterpretCuckooRecords(ByteSpan record_a, ByteSpan record_b,
                                     LW_SECRET std::uint64_t
                                         expected_fingerprint);

}  // namespace lw::pir
