#include "workload/workload.h"

#include <cmath>

#include "util/check.h"

namespace lw::workload {
namespace {

// Deterministic per-page RNG: mixes the corpus seed with the page index.
Rng PageRng(const CorpusSpec& spec, std::uint64_t i) {
  return Rng(spec.seed * 0x9e3779b97f4a7c15ULL + i);
}

}  // namespace

CorpusSpec C4Like(std::uint64_t num_pages, std::uint64_t seed) {
  CorpusSpec spec;
  spec.name = "c4-like";
  spec.num_pages = num_pages;
  spec.num_domains = std::max<std::uint64_t>(1, num_pages / 1024);
  spec.mean_page_bytes = 0.9 * 1024;
  spec.seed = seed;
  return spec;
}

CorpusSpec WikipediaLike(std::uint64_t num_pages, std::uint64_t seed) {
  CorpusSpec spec;
  spec.name = "wikipedia-like";
  spec.num_pages = num_pages;
  spec.num_domains = 1;  // one site
  spec.mean_page_bytes = 0.4 * 1024;
  spec.seed = seed;
  return spec;
}

SyntheticCorpus::SyntheticCorpus(CorpusSpec spec) : spec_(std::move(spec)) {
  LW_CHECK_MSG(spec_.num_pages > 0, "corpus needs pages");
  LW_CHECK_MSG(spec_.num_domains > 0, "corpus needs domains");
  LW_CHECK_MSG(spec_.mean_page_bytes > 0, "mean page size must be positive");
}

std::string SyntheticCorpus::DomainOf(std::uint64_t i) const {
  // Pages are striped over domains deterministically.
  const std::uint64_t d = i % spec_.num_domains;
  return "domain" + std::to_string(d) + ".example";
}

SyntheticPage SyntheticCorpus::GetPage(std::uint64_t i) const {
  LW_CHECK_MSG(i < spec_.num_pages, "page index out of range");
  Rng rng = PageRng(spec_, i);

  SyntheticPage page;
  page.path = DomainOf(i) + "/page/" + std::to_string(i);

  // Log-normal page size with the spec's mean: if X ~ LogNormal(mu, sigma),
  // E[X] = exp(mu + sigma^2/2), so mu = ln(mean) - sigma^2/2.
  const double mu =
      std::log(spec_.mean_page_bytes) - spec_.sigma * spec_.sigma / 2;
  // Box–Muller from two uniforms.
  const double u1 = std::max(rng.UniformDouble(), 1e-12);
  const double u2 = rng.UniformDouble();
  const double z =
      std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  std::size_t size = static_cast<std::size_t>(
      std::llround(std::exp(mu + spec_.sigma * z)));
  size = std::min(std::max<std::size_t>(size, 32), spec_.max_page_bytes);

  // JSON payload padded with deterministic filler text to the target size.
  std::string body = "{\"id\":" + std::to_string(i) + ",\"text\":\"";
  static constexpr char kWords[] =
      "the quick private web has no baggage and fears no observer ";
  while (body.size() + 2 < size) {
    body += kWords[0] == '\0' ? "x" : kWords;
    if (body.size() + 2 >= size) break;
  }
  body.resize(size >= 2 ? size - 2 : 0);
  // Keep JSON valid: strip any dangling escape-prone char and close.
  body += "\"}";
  page.payload = ToBytes(body);
  return page;
}

double SyntheticCorpus::SampleMeanPayloadBytes(std::uint64_t sample) const {
  sample = std::min(sample, spec_.num_pages);
  double total = 0;
  for (std::uint64_t i = 0; i < sample; ++i) {
    const std::uint64_t idx = i * (spec_.num_pages / sample);
    total += static_cast<double>(GetPage(idx).payload.size());
  }
  return total / static_cast<double>(sample);
}

ZipfSampler::ZipfSampler(std::uint64_t n, double s) {
  LW_CHECK_MSG(n > 0, "Zipf needs n > 0");
  cdf_.resize(n);
  double acc = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    acc += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf_[i] = acc;
  }
  for (auto& v : cdf_) v /= acc;
}

std::uint64_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::uint64_t>(it - cdf_.begin());
}

SessionGenerator::SessionGenerator(const SyntheticCorpus& corpus,
                                   double zipf_s, double stay_on_domain,
                                   std::uint64_t seed)
    : corpus_(corpus),
      zipf_(corpus.size(), zipf_s),
      stay_on_domain_(stay_on_domain),
      rng_(seed) {}

std::string SessionGenerator::NextVisit() {
  std::uint64_t page;
  if (has_last_ && rng_.UniformDouble() < stay_on_domain_) {
    // Follow a link within the same domain: jump to a nearby page index in
    // the same residue class (same domain by construction).
    const std::uint64_t d = corpus_.spec().num_domains;
    const std::uint64_t hops = rng_.UniformInt(16) + 1;
    page = (last_page_ + hops * d) % corpus_.size();
    // Keep the domain: striping means index mod num_domains = domain.
    page = page - (page % d) + (last_page_ % d);
    if (page >= corpus_.size()) page = last_page_;
  } else {
    page = zipf_.Sample(rng_);
  }
  last_page_ = page;
  has_last_ = true;
  return corpus_.GetPage(page).path;
}

}  // namespace lw::workload
