// Synthetic workloads standing in for the paper's datasets (see DESIGN.md
// substitutions).
//
// The paper evaluates against the C4 corpus (305 GiB, 360 M pages, 0.9 KiB
// mean compressed page) and Wikipedia (21 GiB, 60 M pages, 0.4 KiB mean) —
// but benchmarks run on "dummy values of the maximum blob size" because the
// server cost depends only on record count/size. This module generates
// deterministic corpora with the same statistics at configurable scale,
// plus Zipf-popularity browsing sessions for end-to-end benches.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/rand.h"

namespace lw::workload {

struct CorpusSpec {
  std::string name = "c4-like";
  std::uint64_t num_pages = 1 << 16;
  std::uint64_t num_domains = 64;
  double mean_page_bytes = 0.9 * 1024;  // C4 average compressed page
  double sigma = 0.6;                   // log-normal shape parameter
  std::size_t max_page_bytes = 4096 - 64;  // fits a 4 KiB record after packing
  std::uint64_t seed = 1;
};

// Corpus specs matching the paper's dataset statistics, scaled down to
// `num_pages` (the per-shard page counts the microbenchmarks need).
CorpusSpec C4Like(std::uint64_t num_pages, std::uint64_t seed = 1);
CorpusSpec WikipediaLike(std::uint64_t num_pages, std::uint64_t seed = 2);

struct SyntheticPage {
  std::string path;  // "domainNNN.example/page/NNNNN"
  Bytes payload;     // JSON text of log-normal size
};

// Deterministic synthetic corpus: page i is reproducible from (spec, i)
// alone, so benches can (re)generate slices without storing the corpus.
class SyntheticCorpus {
 public:
  explicit SyntheticCorpus(CorpusSpec spec);

  const CorpusSpec& spec() const { return spec_; }
  std::uint64_t size() const { return spec_.num_pages; }

  SyntheticPage GetPage(std::uint64_t i) const;

  // The domain a page belongs to.
  std::string DomainOf(std::uint64_t i) const;

  // Mean payload size over a sample (diagnostics: should approximate
  // spec.mean_page_bytes).
  double SampleMeanPayloadBytes(std::uint64_t sample = 1000) const;

 private:
  CorpusSpec spec_;
};

// Zipf-distributed sampler over [0, n) with exponent s (page popularity is
// famously Zipfian; s ≈ 1).
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double s);

  std::uint64_t Sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

// A user's browsing session: a sequence of page visits with Zipf page
// popularity, biased to stay within a domain (link-following behaviour).
class SessionGenerator {
 public:
  SessionGenerator(const SyntheticCorpus& corpus, double zipf_s = 1.0,
                   double stay_on_domain = 0.6, std::uint64_t seed = 7);

  // Next page path to visit.
  std::string NextVisit();

 private:
  const SyntheticCorpus& corpus_;
  ZipfSampler zipf_;
  double stay_on_domain_;
  Rng rng_;
  std::uint64_t last_page_ = 0;
  bool has_last_ = false;
};

}  // namespace lw::workload
