#include "costmodel/costmodel.h"

#include <cmath>

#include "pir/two_server.h"
#include "util/check.h"

namespace lw::cost {

ScaleEstimate EstimateScale(const DatasetSpec& dataset,
                            const ShardMeasurement& shard,
                            const InstanceSpec& instance,
                            std::size_t bucket_bytes) {
  LW_CHECK_MSG(shard.shard_gib > 0, "shard size must be positive");
  ScaleEstimate e;
  e.dataset = dataset;
  e.num_shards = static_cast<int>(
      std::ceil(dataset.total_gib / instance.shard_gib));

  // Each shard performs the measured wall time per request; the instance's
  // vCPUs work in parallel for that interval (the paper's accounting:
  // 167 ms on a 2-vCPU c5.large = 0.334 vCPU-seconds).
  e.wall_ms_per_shard = shard.wall_ms() * (shard.shard_gib > 0
          ? instance.shard_gib / shard.shard_gib
          : 1.0);
  const double vcpu_sec_per_shard =
      e.wall_ms_per_shard / 1000.0 * instance.vcpus;
  e.vcpu_seconds_one_server = vcpu_sec_per_shard * e.num_shards;
  e.vcpu_seconds_system = 2 * e.vcpu_seconds_one_server;
  e.usd_per_request_one_server =
      e.vcpu_seconds_one_server * instance.usd_per_vcpu_second();
  e.usd_per_request_system = 2 * e.usd_per_request_one_server;

  // Communication: one serialized DPF key up and one bucket down, per
  // logical server (×2). (The front-end fan-out to data shards is CDN-
  // internal and excluded, as in the paper.)
  e.upload_kib =
      2.0 * static_cast<double>(pir::QueryUploadBytes(shard.domain_bits)) /
      1024.0;
  e.download_kib = 2.0 * static_cast<double>(bucket_bytes) / 1024.0;
  e.total_comm_kib = e.upload_kib + e.download_kib;
  return e;
}

double MonthlyUserCostUsd(const ScaleEstimate& estimate,
                          const UserProfile& user) {
  const double gets_per_month = user.pages_per_day *
                                user.data_gets_per_page *
                                user.days_per_month;
  return gets_per_month * estimate.usd_per_request_system;
}

double GoogleFiCostForBytes(double bytes) {
  return bytes / (1024.0 * 1024.0 * 1024.0) * kGoogleFiUsdPerGib;
}

double ProjectedRequestCostUsd(double cost_today_usd, double years) {
  // 16× cheaper every 5 years (paper cites 2003→2008: $1 bought 8 then 128
  // CPU-hours). cost(t) = cost(0) / 16^(t/5).
  return cost_today_usd / std::pow(16.0, years / 5.0);
}

}  // namespace lw::cost
