// Deployment cost model (paper §4 "Who pays?" and §5.2 "Estimated costs for
// scaling up ZLTP").
//
// The paper's method: microbenchmark ONE 1-GiB data shard on a c5.large,
// then extrapolate a full deployment as (dataset size / shard size)
// independent shards, each paying the measured per-request wall time; the
// two-server setting doubles everything. This module reproduces that
// arithmetic so the Table 2 bench can feed it our measured shard numbers.
#pragma once

#include <cstddef>
#include <string>

namespace lw::cost {

// AWS instance running one data shard (paper: c5.large, $0.085/h, 2 vCPU).
struct InstanceSpec {
  std::string name = "c5.large";
  int vcpus = 2;
  double usd_per_hour = 0.085;
  double memory_gib = 4.0;
  double shard_gib = 1.0;  // data served per instance

  double usd_per_vcpu_second() const {
    return usd_per_hour / 3600.0 / vcpus;
  }
};

// Per-request measurements from one shard (the §5.1 microbenchmark).
struct ShardMeasurement {
  double dpf_ms = 0;   // full-domain DPF evaluation
  double scan_ms = 0;  // data scan (XOR accumulation)
  double shard_gib = 1.0;
  int domain_bits = 22;

  double wall_ms() const { return dpf_ms + scan_ms; }
};

struct DatasetSpec {
  std::string name;
  double total_gib = 0;
  double pages_millions = 0;
  double avg_page_kib = 0;
};

// The paper's two evaluation corpora (Table 2 inputs).
inline DatasetSpec C4Dataset() { return {"C4", 305.0, 360.0, 0.9}; }
inline DatasetSpec WikipediaDataset() { return {"Wikipedia", 21.0, 60.0, 0.4}; }

// One row of Table 2.
struct ScaleEstimate {
  DatasetSpec dataset;
  int num_shards = 0;

  double wall_ms_per_shard = 0;          // unchanged from the measurement
  double vcpu_seconds_one_server = 0;    // sum over shards, one logical server
  double vcpu_seconds_system = 0;        // × 2 (two-server overhead)
  double usd_per_request_one_server = 0;
  double usd_per_request_system = 0;

  double upload_kib = 0;    // client → both servers (2 DPF keys)
  double download_kib = 0;  // both servers → client (2 records)
  double total_comm_kib = 0;
};

// Scales a shard measurement up to a dataset (the §5.2 extrapolation).
// bucket_bytes is the fixed ZLTP record size (4 KiB in the paper).
ScaleEstimate EstimateScale(const DatasetSpec& dataset,
                            const ShardMeasurement& shard,
                            const InstanceSpec& instance,
                            std::size_t bucket_bytes);

// §4 user-cost estimate: "50 daily page requests where each page request
// results in 5 GET requests for data blobs" → ≈ $15/month on C4.
struct UserProfile {
  double pages_per_day = 50;
  int data_gets_per_page = 5;
  double days_per_month = 30;
};
double MonthlyUserCostUsd(const ScaleEstimate& estimate,
                          const UserProfile& user);

// Comparison points from §5.2.
inline constexpr double kGoogleFiUsdPerGib = 10.0;
inline constexpr double kNytHomepageMib = 22.4;
double GoogleFiCostForBytes(double bytes);

// "Looking forward": compute got 16× cheaper per 5 years (paper's [26]
// figures); projects today's per-request cost `years` out.
double ProjectedRequestCostUsd(double cost_today_usd, double years);

}  // namespace lw::cost
