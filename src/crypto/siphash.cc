#include "crypto/siphash.h"

#include "util/check.h"

namespace lw::crypto {
namespace {

std::uint64_t Rotl(std::uint64_t x, int b) { return (x << b) | (x >> (64 - b)); }

void SipRound(std::uint64_t& v0, std::uint64_t& v1, std::uint64_t& v2,
              std::uint64_t& v3) {
  v0 += v1; v1 = Rotl(v1, 13); v1 ^= v0; v0 = Rotl(v0, 32);
  v2 += v3; v3 = Rotl(v3, 16); v3 ^= v2;
  v0 += v3; v3 = Rotl(v3, 21); v3 ^= v0;
  v2 += v1; v1 = Rotl(v1, 17); v1 ^= v2; v2 = Rotl(v2, 32);
}

}  // namespace

std::uint64_t SipHash24(ByteSpan key, ByteSpan msg) {
  LW_CHECK_MSG(key.size() == kSipHashKeySize, "SipHash key must be 16 bytes");
  const std::uint64_t k0 = lw::LoadLE64(key.data());
  const std::uint64_t k1 = lw::LoadLE64(key.data() + 8);

  std::uint64_t v0 = 0x736f6d6570736575ULL ^ k0;
  std::uint64_t v1 = 0x646f72616e646f6dULL ^ k1;
  std::uint64_t v2 = 0x6c7967656e657261ULL ^ k0;
  std::uint64_t v3 = 0x7465646279746573ULL ^ k1;

  const std::size_t n = msg.size();
  std::size_t off = 0;
  for (; off + 8 <= n; off += 8) {
    const std::uint64_t m = lw::LoadLE64(msg.data() + off);
    v3 ^= m;
    SipRound(v0, v1, v2, v3);
    SipRound(v0, v1, v2, v3);
    v0 ^= m;
  }

  std::uint64_t last = std::uint64_t(n & 0xff) << 56;
  for (std::size_t i = 0; off + i < n; ++i) {
    last |= std::uint64_t(msg[off + i]) << (8 * i);
  }
  v3 ^= last;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  v0 ^= last;

  v2 ^= 0xff;
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  SipRound(v0, v1, v2, v3);
  return v0 ^ v1 ^ v2 ^ v3;
}

}  // namespace lw::crypto
