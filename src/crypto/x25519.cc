#include "crypto/x25519.h"

#include <cstring>

#include "util/check.h"
#include "util/rand.h"

namespace lw::crypto {
namespace {

// Field arithmetic mod p = 2^255 - 19 in radix 2^51 (five 51-bit limbs,
// carried lazily in 64-bit words; products accumulate in unsigned __int128).
using U64 = std::uint64_t;
using U128 = unsigned __int128;

constexpr U64 kMask51 = (U64(1) << 51) - 1;

struct Fe {
  U64 v[5];
};

Fe FeZero() { return {{0, 0, 0, 0, 0}}; }
Fe FeOne() { return {{1, 0, 0, 0, 0}}; }

void FeAdd(Fe& out, const Fe& a, const Fe& b) {
  for (int i = 0; i < 5; ++i) out.v[i] = a.v[i] + b.v[i];
}

// out = a - b, computed as a + 2p - b to stay non-negative.
void FeSub(Fe& out, const Fe& a, const Fe& b) {
  out.v[0] = a.v[0] + ((U64(1) << 52) - 38) - b.v[0];
  out.v[1] = a.v[1] + ((U64(1) << 52) - 2) - b.v[1];
  out.v[2] = a.v[2] + ((U64(1) << 52) - 2) - b.v[2];
  out.v[3] = a.v[3] + ((U64(1) << 52) - 2) - b.v[3];
  out.v[4] = a.v[4] + ((U64(1) << 52) - 2) - b.v[4];
}

void FeCarry(Fe& a, U128 t0, U128 t1, U128 t2, U128 t3, U128 t4) {
  U64 c;
  c = static_cast<U64>(t0 >> 51); a.v[0] = static_cast<U64>(t0) & kMask51; t1 += c;
  c = static_cast<U64>(t1 >> 51); a.v[1] = static_cast<U64>(t1) & kMask51; t2 += c;
  c = static_cast<U64>(t2 >> 51); a.v[2] = static_cast<U64>(t2) & kMask51; t3 += c;
  c = static_cast<U64>(t3 >> 51); a.v[3] = static_cast<U64>(t3) & kMask51; t4 += c;
  c = static_cast<U64>(t4 >> 51); a.v[4] = static_cast<U64>(t4) & kMask51;
  a.v[0] += c * 19;
  c = a.v[0] >> 51; a.v[0] &= kMask51;
  a.v[1] += c;
}

void FeMul(Fe& out, const Fe& a, const Fe& b) {
  const U64 a0 = a.v[0], a1 = a.v[1], a2 = a.v[2], a3 = a.v[3], a4 = a.v[4];
  const U64 b0 = b.v[0], b1 = b.v[1], b2 = b.v[2], b3 = b.v[3], b4 = b.v[4];

  const U128 t0 = U128(a0) * b0 + U128(19) * (U128(a1) * b4 + U128(a2) * b3 +
                                              U128(a3) * b2 + U128(a4) * b1);
  const U128 t1 = U128(a0) * b1 + U128(a1) * b0 +
                  U128(19) * (U128(a2) * b4 + U128(a3) * b3 + U128(a4) * b2);
  const U128 t2 = U128(a0) * b2 + U128(a1) * b1 + U128(a2) * b0 +
                  U128(19) * (U128(a3) * b4 + U128(a4) * b3);
  const U128 t3 = U128(a0) * b3 + U128(a1) * b2 + U128(a2) * b1 +
                  U128(a3) * b0 + U128(19) * (U128(a4) * b4);
  const U128 t4 = U128(a0) * b4 + U128(a1) * b3 + U128(a2) * b2 +
                  U128(a3) * b1 + U128(a4) * b0;
  FeCarry(out, t0, t1, t2, t3, t4);
}

void FeSquare(Fe& out, const Fe& a) { FeMul(out, a, a); }

void FeSquareTimes(Fe& out, const Fe& a, int n) {
  FeSquare(out, a);
  for (int i = 1; i < n; ++i) FeSquare(out, out);
}

// out = a * k for small constant k (used for a24 = 121665).
void FeMulSmall(Fe& out, const Fe& a, U64 k) {
  U128 t0 = U128(a.v[0]) * k;
  U128 t1 = U128(a.v[1]) * k;
  U128 t2 = U128(a.v[2]) * k;
  U128 t3 = U128(a.v[3]) * k;
  U128 t4 = U128(a.v[4]) * k;
  FeCarry(out, t0, t1, t2, t3, t4);
}

// out = a^(p-2) = a^-1, standard 254-squaring addition chain.
void FeInvert(Fe& out, const Fe& z) {
  Fe z2, z9, z11, z2_5_0, z2_10_0, z2_20_0, z2_50_0, z2_100_0, t;
  FeSquare(z2, z);            // 2
  FeSquareTimes(t, z2, 2);    // 8
  FeMul(z9, t, z);            // 9
  FeMul(z11, z9, z2);         // 11
  FeSquare(t, z11);           // 22
  FeMul(z2_5_0, t, z9);       // 2^5 - 2^0 = 31
  FeSquareTimes(t, z2_5_0, 5);
  FeMul(z2_10_0, t, z2_5_0);  // 2^10 - 2^0
  FeSquareTimes(t, z2_10_0, 10);
  FeMul(z2_20_0, t, z2_10_0);  // 2^20 - 2^0
  FeSquareTimes(t, z2_20_0, 20);
  FeMul(t, t, z2_20_0);  // 2^40 - 2^0
  FeSquareTimes(t, t, 10);
  FeMul(z2_50_0, t, z2_10_0);  // 2^50 - 2^0
  FeSquareTimes(t, z2_50_0, 50);
  FeMul(z2_100_0, t, z2_50_0);  // 2^100 - 2^0
  FeSquareTimes(t, z2_100_0, 100);
  FeMul(t, t, z2_100_0);  // 2^200 - 2^0
  FeSquareTimes(t, t, 50);
  FeMul(t, t, z2_50_0);  // 2^250 - 2^0
  FeSquareTimes(t, t, 5);
  FeMul(out, t, z11);  // 2^255 - 21 = p - 2
}

void FeFromBytes(Fe& out, const std::uint8_t s[32]) {
  out.v[0] = lw::LoadLE64(s) & kMask51;
  out.v[1] = (lw::LoadLE64(s + 6) >> 3) & kMask51;
  out.v[2] = (lw::LoadLE64(s + 12) >> 6) & kMask51;
  out.v[3] = (lw::LoadLE64(s + 19) >> 1) & kMask51;
  out.v[4] = (lw::LoadLE64(s + 24) >> 12) & kMask51;
}

void FeToBytes(std::uint8_t s[32], const Fe& a) {
  U64 t[5];
  std::memcpy(t, a.v, sizeof t);

  // Two carry passes bring every limb under 2^51 (+ epsilon).
  for (int pass = 0; pass < 2; ++pass) {
    t[1] += t[0] >> 51; t[0] &= kMask51;
    t[2] += t[1] >> 51; t[1] &= kMask51;
    t[3] += t[2] >> 51; t[2] &= kMask51;
    t[4] += t[3] >> 51; t[3] &= kMask51;
    t[0] += 19 * (t[4] >> 51); t[4] &= kMask51;
  }

  // Canonicalize: add 19, carry, then add 2^255 - 19 - 19 and drop bit 255.
  t[0] += 19;
  t[1] += t[0] >> 51; t[0] &= kMask51;
  t[2] += t[1] >> 51; t[1] &= kMask51;
  t[3] += t[2] >> 51; t[2] &= kMask51;
  t[4] += t[3] >> 51; t[3] &= kMask51;
  t[0] += 19 * (t[4] >> 51); t[4] &= kMask51;

  t[0] += (U64(1) << 51) - 19;
  t[1] += (U64(1) << 51) - 1;
  t[2] += (U64(1) << 51) - 1;
  t[3] += (U64(1) << 51) - 1;
  t[4] += (U64(1) << 51) - 1;

  t[1] += t[0] >> 51; t[0] &= kMask51;
  t[2] += t[1] >> 51; t[1] &= kMask51;
  t[3] += t[2] >> 51; t[2] &= kMask51;
  t[4] += t[3] >> 51; t[3] &= kMask51;
  t[4] &= kMask51;

  // Pack 5×51 bits into 32 little-endian bytes.
  std::uint8_t out[40] = {0};
  for (int i = 0; i < 5; ++i) {
    const std::size_t bit = static_cast<std::size_t>(i) * 51;
    const std::size_t byte = bit / 8;
    const unsigned shift = bit % 8;
    U64 cur = lw::LoadLE64(out + byte);
    cur |= t[i] << shift;
    lw::StoreLE64(out + byte, cur);
    if (shift > 13) {  // value may spill past 8 bytes
      out[byte + 8] = static_cast<std::uint8_t>(t[i] >> (64 - shift));
    }
  }
  std::memcpy(s, out, 32);
}

// Constant-time conditional swap driven by a 0/1 flag.
void FeCswap(Fe& a, Fe& b, U64 swap) {
  const U64 mask = 0 - swap;
  for (int i = 0; i < 5; ++i) {
    const U64 x = mask & (a.v[i] ^ b.v[i]);
    a.v[i] ^= x;
    b.v[i] ^= x;
  }
}

}  // namespace

void X25519(const std::uint8_t scalar[32], const std::uint8_t point[32],
            std::uint8_t out[32]) {
  std::uint8_t e[32];
  std::memcpy(e, scalar, 32);
  e[0] &= 248;
  e[31] &= 127;
  e[31] |= 64;

  std::uint8_t u[32];
  std::memcpy(u, point, 32);
  u[31] &= 127;  // RFC 7748: mask the unused top bit

  Fe x1;
  FeFromBytes(x1, u);
  Fe x2 = FeOne(), z2 = FeZero(), x3 = x1, z3 = FeOne();
  U64 swap = 0;

  for (int t = 254; t >= 0; --t) {
    const U64 bit = (e[t / 8] >> (t % 8)) & 1;
    swap ^= bit;
    FeCswap(x2, x3, swap);
    FeCswap(z2, z3, swap);
    swap = bit;

    Fe a, aa, b, bb, eo, c, d, da, cb, tmp;
    FeAdd(a, x2, z2);       // A = x2 + z2
    FeSquare(aa, a);        // AA = A^2
    FeSub(b, x2, z2);       // B = x2 - z2
    FeSquare(bb, b);        // BB = B^2
    FeSub(eo, aa, bb);      // E = AA - BB
    FeAdd(c, x3, z3);       // C = x3 + z3
    FeSub(d, x3, z3);       // D = x3 - z3
    FeMul(da, d, a);        // DA = D*A
    FeMul(cb, c, b);        // CB = C*B
    FeAdd(tmp, da, cb);
    FeSquare(x3, tmp);      // x3 = (DA + CB)^2
    FeSub(tmp, da, cb);
    FeSquare(tmp, tmp);
    FeMul(z3, x1, tmp);     // z3 = x1 * (DA - CB)^2
    FeMul(x2, aa, bb);      // x2 = AA * BB
    FeMulSmall(tmp, eo, 121665);
    FeAdd(tmp, aa, tmp);
    FeMul(z2, eo, tmp);     // z2 = E * (AA + a24*E)
  }
  FeCswap(x2, x3, swap);
  FeCswap(z2, z3, swap);

  Fe zinv, result;
  FeInvert(zinv, z2);
  FeMul(result, x2, zinv);
  FeToBytes(out, result);
}

void X25519BasePoint(const std::uint8_t scalar[32], std::uint8_t out[32]) {
  std::uint8_t base[32] = {9};
  X25519(scalar, base, out);
}

X25519KeyPair X25519Generate() {
  X25519KeyPair kp;
  kp.private_key = SecureRandom(kX25519KeySize);
  kp.public_key.resize(kX25519KeySize);
  X25519BasePoint(kp.private_key.data(), kp.public_key.data());
  return kp;
}

Bytes X25519SharedSecret(ByteSpan private_key, ByteSpan peer_public) {
  LW_CHECK(private_key.size() == kX25519KeySize);
  LW_CHECK(peer_public.size() == kX25519KeySize);
  Bytes out(kX25519KeySize);
  X25519(private_key.data(), peer_public.data(), out.data());
  return out;
}

}  // namespace lw::crypto
