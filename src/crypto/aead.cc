#include "crypto/aead.h"

#include <cstring>

#include "crypto/chacha20.h"
#include "crypto/ct.h"
#include "crypto/poly1305.h"
#include "util/check.h"

namespace lw::crypto {
namespace {

constexpr std::uint8_t kZeros[16] = {0};

void ComputeTag(ByteSpan poly_key, ByteSpan aad, ByteSpan ct,
                std::uint8_t tag[16]) {
  Poly1305State mac(poly_key);
  mac.Update(aad);
  if (aad.size() % 16 != 0) {
    mac.Update(ByteSpan(kZeros, 16 - aad.size() % 16));
  }
  mac.Update(ct);
  if (ct.size() % 16 != 0) {
    mac.Update(ByteSpan(kZeros, 16 - ct.size() % 16));
  }
  std::uint8_t lengths[16];
  lw::StoreLE64(lengths, aad.size());
  lw::StoreLE64(lengths + 8, ct.size());
  mac.Update(ByteSpan(lengths, 16));
  mac.Finish(tag);
}

Bytes DerivePolyKey(ByteSpan key, ByteSpan nonce) {
  std::uint8_t block[64];
  ChaCha20Block(key, nonce, 0, block);
  return Bytes(block, block + 32);
}

}  // namespace

Bytes AeadSeal(ByteSpan key, ByteSpan nonce, ByteSpan aad,
               ByteSpan plaintext) {
  LW_CHECK(key.size() == kAeadKeySize);
  LW_CHECK(nonce.size() == kAeadNonceSize);
  Bytes out(plaintext.begin(), plaintext.end());
  ChaCha20Xor(key, nonce, 1, out);
  const Bytes poly_key = DerivePolyKey(key, nonce);
  std::uint8_t tag[16];
  ComputeTag(poly_key, aad, out, tag);
  out.insert(out.end(), tag, tag + 16);
  return out;
}

Result<Bytes> AeadOpen(ByteSpan key, ByteSpan nonce, ByteSpan aad,
                       ByteSpan ciphertext_and_tag) {
  LW_CHECK(key.size() == kAeadKeySize);
  LW_CHECK(nonce.size() == kAeadNonceSize);
  if (ciphertext_and_tag.size() < kAeadTagSize) {
    return PermissionDeniedError("ciphertext shorter than tag");
  }
  const ByteSpan ct = ciphertext_and_tag.first(
      ciphertext_and_tag.size() - kAeadTagSize);
  const ByteSpan tag = ciphertext_and_tag.last(kAeadTagSize);

  const Bytes poly_key = DerivePolyKey(key, nonce);
  std::uint8_t expected[16];
  ComputeTag(poly_key, aad, ct, expected);
  if (!ct::Eq(ByteSpan(expected, 16), tag)) {
    return PermissionDeniedError("AEAD tag mismatch");
  }
  Bytes out(ct.begin(), ct.end());
  ChaCha20Xor(key, nonce, 1, out);
  return out;
}

}  // namespace lw::crypto
