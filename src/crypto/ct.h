// Constant-time primitives for handling secret data.
//
// Policy (see docs/STATIC_ANALYSIS.md): any comparison, selection, or copy
// whose operands are key material, MAC tags, fingerprints of private
// queries, or ORAM block identities must go through these helpers instead
// of `==`, `memcmp`, or data-dependent branches. `lwlint` enforces the
// comparison half of this mechanically.
//
// All helpers are branch-free in the secret operands. Sizes of the spans are
// treated as public (they are fixed by the protocol everywhere we use them).
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace lw::crypto::ct {

// Optimization barrier: stops the compiler from tracing the value's origin
// and re-introducing a branch on it (e.g. turning a mask select back into a
// conditional move on a flag it thinks it knows).
inline std::uint64_t ValueBarrier(std::uint64_t v) {
#if defined(__GNUC__) || defined(__clang__)
  __asm__("" : "+r"(v) : :);
#endif
  return v;
}

inline std::uint32_t ValueBarrier32(std::uint32_t v) {
#if defined(__GNUC__) || defined(__clang__)
  __asm__("" : "+r"(v) : :);
#endif
  return v;
}

// All-ones if x != 0, else all-zeros.
inline std::uint64_t NonzeroMask(std::uint64_t x) {
  x = ValueBarrier(x);
  // x | -x has its top bit set iff x != 0.
  return std::uint64_t{0} - ((x | (std::uint64_t{0} - x)) >> 63);
}

// All-ones if x == 0, else all-zeros.
inline std::uint64_t ZeroMask(std::uint64_t x) { return ~NonzeroMask(x); }

// All-ones if a == b, else all-zeros.
inline std::uint64_t EqMask(std::uint64_t a, std::uint64_t b) {
  return ZeroMask(a ^ b);
}

// All-ones if bit == 1; `bit` must be 0 or 1.
inline std::uint32_t MaskFromBit32(std::uint32_t bit) {
  return std::uint32_t{0} - ValueBarrier32(bit);
}

// mask-driven word selects: result is a where mask is all-ones, b where zero.
inline std::uint64_t Select(std::uint64_t mask, std::uint64_t a,
                            std::uint64_t b) {
  return (a & mask) | (b & ~mask);
}
inline std::uint32_t Select32(std::uint32_t mask, std::uint32_t a,
                              std::uint32_t b) {
  return (a & mask) | (b & ~mask);
}

// dst <- src where mask is all-ones, else unchanged. Spans must be the same
// (public) length. Reads and writes every byte of dst either way.
inline void CondAssign(std::uint64_t mask, MutableByteSpan dst, ByteSpan src) {
  const std::uint8_t m = static_cast<std::uint8_t>(mask);
  for (std::size_t i = 0; i < dst.size(); ++i) {
    dst[i] = static_cast<std::uint8_t>((src[i] & m) |
                                       (dst[i] & static_cast<std::uint8_t>(~m)));
  }
}

// Constant-time swap of equal-length buffers when mask is all-ones.
inline void CondSwap(std::uint64_t mask, MutableByteSpan a, MutableByteSpan b) {
  const std::uint8_t m = static_cast<std::uint8_t>(mask);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const std::uint8_t t = static_cast<std::uint8_t>((a[i] ^ b[i]) & m);
    a[i] = static_cast<std::uint8_t>(a[i] ^ t);
    b[i] = static_cast<std::uint8_t>(b[i] ^ t);
  }
}

// All-ones if the buffers are byte-wise equal. Runs in time dependent only on
// the (public) lengths; a length mismatch returns all-zeros immediately,
// since lengths are not secret.
inline std::uint64_t EqBytesMask(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) return 0;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return ZeroMask(acc);
}

// Constant-time equality for secrets; the boolean result itself is assumed
// safe to branch on (e.g. rejecting a forged AEAD tag is observable anyway).
inline bool Eq(ByteSpan a, ByteSpan b) { return EqBytesMask(a, b) != 0; }

}  // namespace lw::crypto::ct
