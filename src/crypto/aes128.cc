#include "crypto/aes128.h"

#include <cstring>

#include "util/check.h"

#if defined(__AES__) && defined(__SSE2__)
#define LW_AESNI_COMPILED 1
#include <immintrin.h>
#include <wmmintrin.h>
#else
#define LW_AESNI_COMPILED 0
#endif

namespace lw::crypto {
namespace {

// ---------------------------------------------------------------------------
// Software AES (used for key schedule everywhere and as the runtime fallback).
// ---------------------------------------------------------------------------

constexpr std::uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

constexpr std::uint8_t kRcon[10] = {0x01, 0x02, 0x04, 0x08, 0x10,
                                    0x20, 0x40, 0x80, 0x1b, 0x36};

std::uint8_t Xtime(std::uint8_t x) {
  return static_cast<std::uint8_t>((x << 1) ^ ((x >> 7) * 0x1b));
}

void SoftSubBytes(std::uint8_t s[16]) {
  for (int i = 0; i < 16; ++i) s[i] = kSbox[s[i]];
}

void SoftShiftRows(std::uint8_t s[16]) {
  // State is column-major: s[4*c + r].
  std::uint8_t t;
  // Row 1: shift left by 1.
  t = s[1];
  s[1] = s[5]; s[5] = s[9]; s[9] = s[13]; s[13] = t;
  // Row 2: shift left by 2.
  t = s[2]; s[2] = s[10]; s[10] = t;
  t = s[6]; s[6] = s[14]; s[14] = t;
  // Row 3: shift left by 3 (== right by 1).
  t = s[15];
  s[15] = s[11]; s[11] = s[7]; s[7] = s[3]; s[3] = t;
}

void SoftMixColumns(std::uint8_t s[16]) {
  for (int c = 0; c < 4; ++c) {
    std::uint8_t* p = s + 4 * c;
    const std::uint8_t a0 = p[0], a1 = p[1], a2 = p[2], a3 = p[3];
    const std::uint8_t all = a0 ^ a1 ^ a2 ^ a3;
    p[0] = static_cast<std::uint8_t>(a0 ^ all ^ Xtime(a0 ^ a1));
    p[1] = static_cast<std::uint8_t>(a1 ^ all ^ Xtime(a1 ^ a2));
    p[2] = static_cast<std::uint8_t>(a2 ^ all ^ Xtime(a2 ^ a3));
    p[3] = static_cast<std::uint8_t>(a3 ^ all ^ Xtime(a3 ^ a0));
  }
}

void SoftAddRoundKey(std::uint8_t s[16], const std::uint8_t rk[16]) {
  for (int i = 0; i < 16; ++i) s[i] ^= rk[i];
}

void SoftEncryptBlock(const std::uint8_t rk[11][16], const std::uint8_t in[16],
                      std::uint8_t out[16]) {
  std::uint8_t s[16];
  std::memcpy(s, in, 16);
  SoftAddRoundKey(s, rk[0]);
  for (int round = 1; round <= 9; ++round) {
    SoftSubBytes(s);
    SoftShiftRows(s);
    SoftMixColumns(s);
    SoftAddRoundKey(s, rk[round]);
  }
  SoftSubBytes(s);
  SoftShiftRows(s);
  SoftAddRoundKey(s, rk[10]);
  std::memcpy(out, s, 16);
}

bool DetectAesni() {
#if LW_AESNI_COMPILED
  return __builtin_cpu_supports("aes") != 0;
#else
  return false;
#endif
}

bool UseAesni() {
  static const bool use = DetectAesni();
  return use;
}

}  // namespace

Aes128::Aes128(ByteSpan key) {
  LW_CHECK_MSG(key.size() == kAes128KeySize, "AES-128 key must be 16 bytes");
  std::memcpy(round_keys_[0], key.data(), 16);
  for (int r = 1; r <= 10; ++r) {
    const std::uint8_t* prev = round_keys_[r - 1];
    std::uint8_t* cur = round_keys_[r];
    // RotWord + SubWord + Rcon on the last word of the previous round key.
    std::uint8_t t[4] = {
        static_cast<std::uint8_t>(kSbox[prev[13]] ^ kRcon[r - 1]),
        kSbox[prev[14]], kSbox[prev[15]], kSbox[prev[12]]};
    for (int i = 0; i < 4; ++i) cur[i] = prev[i] ^ t[i];
    for (int i = 4; i < 16; ++i) cur[i] = prev[i] ^ cur[i - 4];
  }
}

bool Aes128::HasHardwareSupport() { return UseAesni(); }

void Aes128::EncryptBlock(const std::uint8_t in[16], std::uint8_t out[16]) const {
  EncryptBlocks(in, out, 1);
}

#if LW_AESNI_COMPILED
namespace {

// Encrypts `n` blocks, 8 at a time, keeping the pipeline full. AESENC has
// ~4-cycle latency but 1/cycle throughput, so independent blocks overlap.
template <bool kXorInput>
void AesniBlocks(const std::uint8_t rk_bytes[11][16], const std::uint8_t* in,
                 std::uint8_t* out, std::size_t n) {
  __m128i rk[11];
  for (int i = 0; i < 11; ++i) {
    rk[i] = _mm_loadu_si128(reinterpret_cast<const __m128i*>(rk_bytes[i]));
  }
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    __m128i b[8], orig[8];
    for (int j = 0; j < 8; ++j) {
      orig[j] = _mm_loadu_si128(
          reinterpret_cast<const __m128i*>(in + (i + j) * 16));
      b[j] = _mm_xor_si128(orig[j], rk[0]);
    }
    for (int r = 1; r <= 9; ++r) {
      for (int j = 0; j < 8; ++j) b[j] = _mm_aesenc_si128(b[j], rk[r]);
    }
    for (int j = 0; j < 8; ++j) {
      b[j] = _mm_aesenclast_si128(b[j], rk[10]);
      if constexpr (kXorInput) b[j] = _mm_xor_si128(b[j], orig[j]);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(out + (i + j) * 16), b[j]);
    }
  }
  for (; i < n; ++i) {
    const __m128i orig =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(in + i * 16));
    __m128i b = _mm_xor_si128(orig, rk[0]);
    for (int r = 1; r <= 9; ++r) b = _mm_aesenc_si128(b, rk[r]);
    b = _mm_aesenclast_si128(b, rk[10]);
    if constexpr (kXorInput) b = _mm_xor_si128(b, orig);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(out + i * 16), b);
  }
}

}  // namespace
#endif  // LW_AESNI_COMPILED

void Aes128::EncryptBlocks(const std::uint8_t* in, std::uint8_t* out,
                           std::size_t n) const {
#if LW_AESNI_COMPILED
  if (UseAesni()) {
    AesniBlocks<false>(round_keys_, in, out, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    SoftEncryptBlock(round_keys_, in + i * 16, out + i * 16);
  }
}

void Aes128::MmoBlocks(const std::uint8_t* in, std::uint8_t* out,
                       std::size_t n) const {
#if LW_AESNI_COMPILED
  if (UseAesni()) {
    AesniBlocks<true>(round_keys_, in, out, n);
    return;
  }
#endif
  for (std::size_t i = 0; i < n; ++i) {
    std::uint8_t tmp[16];
    SoftEncryptBlock(round_keys_, in + i * 16, tmp);
    for (int j = 0; j < 16; ++j) out[i * 16 + j] = tmp[j] ^ in[i * 16 + j];
  }
}

}  // namespace lw::crypto
