// ChaCha20 stream cipher (RFC 8439).
//
// Used as the cipher half of the ChaCha20-Poly1305 AEAD that protects
// access-controlled lightweb content and enclave-mode query channels.
#pragma once

#include <cstdint>

#include "crypto/secret.h"
#include "util/bytes.h"

namespace lw::crypto {

inline constexpr std::size_t kChaChaKeySize = 32;
inline constexpr std::size_t kChaChaNonceSize = 12;

// XORs the ChaCha20 keystream (key, nonce, starting at block `counter`)
// into `data` in place. Encryption and decryption are the same operation.
void ChaCha20Xor(LW_SECRET ByteSpan key, ByteSpan nonce, std::uint32_t counter,
                 MutableByteSpan data);

// Writes one 64-byte keystream block (used to derive the Poly1305 key).
void ChaCha20Block(LW_SECRET ByteSpan key, ByteSpan nonce,
                   std::uint32_t counter, std::uint8_t out[64]);

}  // namespace lw::crypto
