// SipHash-2-4 (Aumasson–Bernstein), 64-bit output.
//
// This is the keyword→index mapping of the PIR layer: a ZLTP universe hashes
// every record key with a universe-wide 128-bit seed and reduces into the
// DPF output domain 2^d (paper §5.1: "output domain of size 2^22").
#pragma once

#include <cstdint>

#include "crypto/secret.h"
#include "util/bytes.h"

namespace lw::crypto {

inline constexpr std::size_t kSipHashKeySize = 16;

// key must be 16 bytes. `msg` is the record keyword, which on the client
// side is itself private — SipHash's runtime depends only on msg length.
std::uint64_t SipHash24(LW_SECRET ByteSpan key, ByteSpan msg);

}  // namespace lw::crypto
