// LW_SECRET — taint-source annotation for the lwlint dataflow engine.
//
// Mark a declaration whose *value* must never influence a branch, a memory
// address, or the argument of a variable-time function:
//
//   void AeadSeal(LW_SECRET ByteSpan key, ...);
//   LW_SECRET Seed root_seed;
//   LW_SECRET std::uint64_t block_id = ...;
//
// The macro expands to nothing — it exists purely so tools/lint can trace
// flows from annotated values through assignments into sinks
// (secret-taint-branch / secret-taint-index / secret-taint-call). Sizes
// and lengths of secret buffers are public and must NOT be annotated.
// Laundering through the lw::crypto::ct helpers (ct.h) sanitizes a flow;
// a deliberate declassification is spelled with an allow(secret-taint)
// lint annotation plus a justification comment. See
// docs/STATIC_ANALYSIS.md for the full source/sanitizer/sink model.
#pragma once

#define LW_SECRET
