#include "crypto/hkdf.h"

#include "crypto/sha256.h"
#include "util/check.h"

namespace lw::crypto {

Bytes HmacSha256(ByteSpan key, ByteSpan msg) {
  Bytes k(kSha256BlockSize, 0);
  if (key.size() > kSha256BlockSize) {
    const Bytes hashed = Sha256Digest(key);
    std::copy(hashed.begin(), hashed.end(), k.begin());
  } else {
    std::copy(key.begin(), key.end(), k.begin());
  }
  Bytes ipad(kSha256BlockSize), opad(kSha256BlockSize);
  for (std::size_t i = 0; i < kSha256BlockSize; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }
  Sha256 inner;
  inner.Update(ipad);
  inner.Update(msg);
  Bytes inner_digest(kSha256DigestSize);
  inner.Finish(inner_digest.data());

  Sha256 outer;
  outer.Update(opad);
  outer.Update(inner_digest);
  Bytes out(kSha256DigestSize);
  outer.Finish(out.data());
  return out;
}

Bytes Hkdf(ByteSpan ikm, ByteSpan salt, std::string_view info,
           std::size_t length) {
  LW_CHECK_MSG(length <= 255 * kSha256DigestSize, "HKDF output too long");
  const Bytes prk = HmacSha256(salt, ikm);

  Bytes out;
  out.reserve(length);
  Bytes t;
  std::uint8_t counter = 1;
  while (out.size() < length) {
    Bytes block = t;
    block.insert(block.end(), info.begin(), info.end());
    block.push_back(counter++);
    t = HmacSha256(prk, block);
    const std::size_t take = std::min(t.size(), length - out.size());
    out.insert(out.end(), t.begin(), t.begin() + static_cast<std::ptrdiff_t>(take));
  }
  return out;
}

}  // namespace lw::crypto
