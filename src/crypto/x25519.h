// X25519 Diffie–Hellman (RFC 7748).
//
// Enclave-mode ZLTP clients establish a shared secret with the (simulated)
// enclave's public key, then derive an AEAD channel key via HKDF so that the
// untrusted host around the enclave never sees the lookup key.
#pragma once

#include "crypto/secret.h"
#include "util/bytes.h"

namespace lw::crypto {

inline constexpr std::size_t kX25519KeySize = 32;

// out = scalar * point (the X25519 function). scalar and point are 32 bytes.
void X25519(LW_SECRET const std::uint8_t scalar[kX25519KeySize],
            const std::uint8_t point[kX25519KeySize],
            std::uint8_t out[kX25519KeySize]);

// Computes the public key for a private scalar (scalar * base point 9).
void X25519BasePoint(LW_SECRET const std::uint8_t scalar[kX25519KeySize],
                     std::uint8_t public_key[kX25519KeySize]);

struct X25519KeyPair {
  LW_SECRET Bytes private_key;  // 32 bytes
  Bytes public_key;             // 32 bytes
};

// Generates a fresh keypair from the secure RNG.
X25519KeyPair X25519Generate();

// Convenience: shared = private * peer_public. Both 32 bytes.
Bytes X25519SharedSecret(LW_SECRET ByteSpan private_key, ByteSpan peer_public);

}  // namespace lw::crypto
