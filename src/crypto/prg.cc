#include "crypto/prg.h"

namespace lw::crypto {
namespace {

// Arbitrary fixed public constants (digits of pi / e). Distinct keys give
// independent left/right expansions.
constexpr std::uint8_t kLeftKey[16] = {0x31, 0x41, 0x59, 0x26, 0x53, 0x58,
                                       0x97, 0x93, 0x23, 0x84, 0x62, 0x64,
                                       0x33, 0x83, 0x27, 0x95};
constexpr std::uint8_t kRightKey[16] = {0x27, 0x18, 0x28, 0x18, 0x28, 0x45,
                                        0x90, 0x45, 0x23, 0x53, 0x60, 0x28,
                                        0x74, 0x71, 0x35, 0x26};

}  // namespace

DpfPrg::DpfPrg()
    : aes_left_(ByteSpan(kLeftKey, sizeof kLeftKey)),
      aes_right_(ByteSpan(kRightKey, sizeof kRightKey)) {}

void DpfPrg::ExpandBatch(const std::uint8_t* seeds, std::size_t n,
                         std::uint8_t* left, std::uint8_t* right,
                         std::uint8_t* t_left, std::uint8_t* t_right) const {
  aes_left_.MmoBlocks(seeds, left, n);
  aes_right_.MmoBlocks(seeds, right, n);
  for (std::size_t i = 0; i < n; ++i) {
    t_left[i] = left[i * 16] & 1;
    left[i * 16] &= 0xfe;
    t_right[i] = right[i * 16] & 1;
    right[i * 16] &= 0xfe;
  }
}

void DpfPrg::Expand(const std::uint8_t seed[kPrgSeedSize],
                    std::uint8_t left[kPrgSeedSize],
                    std::uint8_t right[kPrgSeedSize], std::uint8_t* t_left,
                    std::uint8_t* t_right) const {
  ExpandBatch(seed, 1, left, right, t_left, t_right);
}

const DpfPrg& SharedDpfPrg() {
  // Deliberately leaked singleton (same rationale as lw::SecureRandomBytes's
  // pool); suppressed in tools/lint/lsan.supp.
  static const DpfPrg* prg = new DpfPrg();  // lwlint: allow(naked-new)
  return *prg;
}

}  // namespace lw::crypto
