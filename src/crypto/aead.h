// ChaCha20-Poly1305 AEAD (RFC 8439).
//
// Used for (a) access-controlled lightweb content: publishers encrypt data
// blobs under per-epoch keys so the CDN stores only ciphertext (§3.3 of the
// paper), and (b) the enclave-mode ZLTP query channel.
#pragma once

#include <cstdint>

#include "crypto/secret.h"
#include "util/bytes.h"
#include "util/status.h"

namespace lw::crypto {

inline constexpr std::size_t kAeadKeySize = 32;
inline constexpr std::size_t kAeadNonceSize = 12;
inline constexpr std::size_t kAeadTagSize = 16;

// Returns ciphertext || 16-byte tag (size = plaintext.size() + 16).
Bytes AeadSeal(LW_SECRET ByteSpan key, ByteSpan nonce, ByteSpan aad,
               ByteSpan plaintext);

// Verifies and decrypts; fails with PERMISSION_DENIED on tag mismatch.
Result<Bytes> AeadOpen(LW_SECRET ByteSpan key, ByteSpan nonce, ByteSpan aad,
                       ByteSpan ciphertext_and_tag);

}  // namespace lw::crypto
