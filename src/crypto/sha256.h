// SHA-256 (FIPS 180-4).
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace lw::crypto {

inline constexpr std::size_t kSha256DigestSize = 32;
inline constexpr std::size_t kSha256BlockSize = 64;

class Sha256 {
 public:
  Sha256();
  void Update(ByteSpan data);
  void Finish(std::uint8_t digest[kSha256DigestSize]);

 private:
  void ProcessBlock(const std::uint8_t block[kSha256BlockSize]);

  std::uint32_t h_[8];
  std::uint8_t buf_[kSha256BlockSize];
  std::size_t buffered_ = 0;
  std::uint64_t total_ = 0;
};

// One-shot convenience.
Bytes Sha256Digest(ByteSpan data);

}  // namespace lw::crypto
