// HMAC-SHA256 (RFC 2104) and HKDF (RFC 5869).
//
// HKDF derives the per-session AEAD channel keys in enclave mode and the
// per-epoch content keys used for lightweb access control.
#pragma once

#include <string_view>

#include "crypto/secret.h"
#include "util/bytes.h"

namespace lw::crypto {

// HMAC-SHA256(key, msg); output is 32 bytes.
Bytes HmacSha256(LW_SECRET ByteSpan key, ByteSpan msg);

// HKDF-Extract + HKDF-Expand. `length` ≤ 255*32.
Bytes Hkdf(LW_SECRET ByteSpan ikm, ByteSpan salt, std::string_view info,
           std::size_t length);

}  // namespace lw::crypto
