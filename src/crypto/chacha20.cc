#include "crypto/chacha20.h"

#include <cstring>

#include "util/check.h"

namespace lw::crypto {
namespace {

std::uint32_t Rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}

void QuarterRound(std::uint32_t& a, std::uint32_t& b, std::uint32_t& c,
                  std::uint32_t& d) {
  a += b; d ^= a; d = Rotl32(d, 16);
  c += d; b ^= c; b = Rotl32(b, 12);
  a += b; d ^= a; d = Rotl32(d, 8);
  c += d; b ^= c; b = Rotl32(b, 7);
}

void BlockCore(const std::uint32_t state[16], std::uint8_t out[64]) {
  std::uint32_t x[16];
  std::memcpy(x, state, sizeof x);
  for (int i = 0; i < 10; ++i) {
    QuarterRound(x[0], x[4], x[8], x[12]);
    QuarterRound(x[1], x[5], x[9], x[13]);
    QuarterRound(x[2], x[6], x[10], x[14]);
    QuarterRound(x[3], x[7], x[11], x[15]);
    QuarterRound(x[0], x[5], x[10], x[15]);
    QuarterRound(x[1], x[6], x[11], x[12]);
    QuarterRound(x[2], x[7], x[8], x[13]);
    QuarterRound(x[3], x[4], x[9], x[14]);
  }
  for (int i = 0; i < 16; ++i) {
    lw::StoreLE32(out + 4 * i, x[i] + state[i]);
  }
}

void InitState(std::uint32_t state[16], ByteSpan key, ByteSpan nonce,
               std::uint32_t counter) {
  LW_CHECK_MSG(key.size() == kChaChaKeySize, "ChaCha20 key must be 32 bytes");
  LW_CHECK_MSG(nonce.size() == kChaChaNonceSize,
               "ChaCha20 nonce must be 12 bytes");
  state[0] = 0x61707865;
  state[1] = 0x3320646e;
  state[2] = 0x79622d32;
  state[3] = 0x6b206574;
  for (int i = 0; i < 8; ++i) state[4 + i] = lw::LoadLE32(key.data() + 4 * i);
  state[12] = counter;
  for (int i = 0; i < 3; ++i) {
    state[13 + i] = lw::LoadLE32(nonce.data() + 4 * i);
  }
}

}  // namespace

void ChaCha20Block(ByteSpan key, ByteSpan nonce, std::uint32_t counter,
                   std::uint8_t out[64]) {
  std::uint32_t state[16];
  InitState(state, key, nonce, counter);
  BlockCore(state, out);
}

void ChaCha20Xor(ByteSpan key, ByteSpan nonce, std::uint32_t counter,
                 MutableByteSpan data) {
  std::uint32_t state[16];
  InitState(state, key, nonce, counter);
  std::uint8_t block[64];
  std::size_t off = 0;
  while (off < data.size()) {
    BlockCore(state, block);
    ++state[12];
    const std::size_t n = std::min<std::size_t>(64, data.size() - off);
    for (std::size_t i = 0; i < n; ++i) data[off + i] ^= block[i];
    off += n;
  }
}

}  // namespace lw::crypto
