#include "crypto/poly1305.h"

#include <cstring>

#include "crypto/ct.h"
#include "util/check.h"

namespace lw::crypto {

// 26-bit-limb implementation (the widely used "donna" formulation),
// arithmetic mod 2^130 - 5 carried in 64-bit accumulators.

Poly1305State::Poly1305State(ByteSpan key) {
  LW_CHECK_MSG(key.size() == kPoly1305KeySize,
               "Poly1305 key must be 32 bytes");
  const std::uint8_t* k = key.data();
  r_[0] = lw::LoadLE32(k + 0) & 0x3ffffff;
  r_[1] = (lw::LoadLE32(k + 3) >> 2) & 0x3ffff03;
  r_[2] = (lw::LoadLE32(k + 6) >> 4) & 0x3ffc0ff;
  r_[3] = (lw::LoadLE32(k + 9) >> 6) & 0x3f03fff;
  r_[4] = (lw::LoadLE32(k + 12) >> 8) & 0x00fffff;
  std::memcpy(pad_, k + 16, 16);
}

void Poly1305State::ProcessBlock(const std::uint8_t m[16],
                                 std::uint32_t hibit) {
  const std::uint32_t r0 = r_[0], r1 = r_[1], r2 = r_[2], r3 = r_[3],
                      r4 = r_[4];
  const std::uint32_t s1 = r1 * 5, s2 = r2 * 5, s3 = r3 * 5, s4 = r4 * 5;

  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];

  h0 += lw::LoadLE32(m + 0) & 0x3ffffff;
  h1 += (lw::LoadLE32(m + 3) >> 2) & 0x3ffffff;
  h2 += (lw::LoadLE32(m + 6) >> 4) & 0x3ffffff;
  h3 += (lw::LoadLE32(m + 9) >> 6) & 0x3ffffff;
  h4 += (lw::LoadLE32(m + 12) >> 8) | (hibit << 24);

  using U64 = std::uint64_t;
  const U64 d0 = U64(h0) * r0 + U64(h1) * s4 + U64(h2) * s3 + U64(h3) * s2 +
                 U64(h4) * s1;
  const U64 d1 = U64(h0) * r1 + U64(h1) * r0 + U64(h2) * s4 + U64(h3) * s3 +
                 U64(h4) * s2;
  const U64 d2 = U64(h0) * r2 + U64(h1) * r1 + U64(h2) * r0 + U64(h3) * s4 +
                 U64(h4) * s3;
  const U64 d3 = U64(h0) * r3 + U64(h1) * r2 + U64(h2) * r1 + U64(h3) * r0 +
                 U64(h4) * s4;
  const U64 d4 = U64(h0) * r4 + U64(h1) * r3 + U64(h2) * r2 + U64(h3) * r1 +
                 U64(h4) * r0;

  U64 c;
  U64 e0 = d0, e1 = d1, e2 = d2, e3 = d3, e4 = d4;
  c = e0 >> 26; h0 = static_cast<std::uint32_t>(e0) & 0x3ffffff; e1 += c;
  c = e1 >> 26; h1 = static_cast<std::uint32_t>(e1) & 0x3ffffff; e2 += c;
  c = e2 >> 26; h2 = static_cast<std::uint32_t>(e2) & 0x3ffffff; e3 += c;
  c = e3 >> 26; h3 = static_cast<std::uint32_t>(e3) & 0x3ffffff; e4 += c;
  c = e4 >> 26; h4 = static_cast<std::uint32_t>(e4) & 0x3ffffff;
  h0 += static_cast<std::uint32_t>(c) * 5;
  c = h0 >> 26; h0 &= 0x3ffffff;
  h1 += static_cast<std::uint32_t>(c);

  h_[0] = h0; h_[1] = h1; h_[2] = h2; h_[3] = h3; h_[4] = h4;
}

void Poly1305State::Update(ByteSpan data) {
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t take = std::min<std::size_t>(16 - buffered_, data.size());
    std::memcpy(buf_ + buffered_, data.data(), take);
    buffered_ += take;
    off += take;
    if (buffered_ == 16) {
      ProcessBlock(buf_, 1);
      buffered_ = 0;
    }
  }
  while (off + 16 <= data.size()) {
    ProcessBlock(data.data() + off, 1);
    off += 16;
  }
  if (off < data.size()) {
    buffered_ = data.size() - off;
    std::memcpy(buf_, data.data() + off, buffered_);
  }
}

void Poly1305State::Finish(std::uint8_t tag[kPoly1305TagSize]) {
  if (buffered_ > 0) {
    // Final partial block: append 0x01 then zero-pad; no high bit.
    buf_[buffered_] = 1;
    for (std::size_t i = buffered_ + 1; i < 16; ++i) buf_[i] = 0;
    ProcessBlock(buf_, 0);
    buffered_ = 0;
  }

  std::uint32_t h0 = h_[0], h1 = h_[1], h2 = h_[2], h3 = h_[3], h4 = h_[4];

  // Full carry propagation.
  std::uint32_t c;
  c = h1 >> 26; h1 &= 0x3ffffff; h2 += c;
  c = h2 >> 26; h2 &= 0x3ffffff; h3 += c;
  c = h3 >> 26; h3 &= 0x3ffffff; h4 += c;
  c = h4 >> 26; h4 &= 0x3ffffff; h0 += c * 5;
  c = h0 >> 26; h0 &= 0x3ffffff; h1 += c;

  // Compute h + -p (i.e. h - (2^130 - 5)) and select.
  std::uint32_t g0 = h0 + 5;
  c = g0 >> 26; g0 &= 0x3ffffff;
  std::uint32_t g1 = h1 + c;
  c = g1 >> 26; g1 &= 0x3ffffff;
  std::uint32_t g2 = h2 + c;
  c = g2 >> 26; g2 &= 0x3ffffff;
  std::uint32_t g3 = h3 + c;
  c = g3 >> 26; g3 &= 0x3ffffff;
  std::uint32_t g4 = h4 + c - (1u << 26);

  // Constant-time select: if g4 underflowed (h < p), keep h; else take g.
  const std::uint32_t take_g = ~ct::MaskFromBit32(g4 >> 31);
  h0 = ct::Select32(take_g, g0, h0);
  h1 = ct::Select32(take_g, g1, h1);
  h2 = ct::Select32(take_g, g2, h2);
  h3 = ct::Select32(take_g, g3, h3);
  h4 = ct::Select32(take_g, g4, h4);

  // Repack into 128 bits.
  const std::uint32_t f0 = h0 | (h1 << 26);
  const std::uint32_t f1 = (h1 >> 6) | (h2 << 20);
  const std::uint32_t f2 = (h2 >> 12) | (h3 << 14);
  const std::uint32_t f3 = (h3 >> 18) | (h4 << 8);

  // Add the pad (second key half) mod 2^128.
  std::uint64_t acc = std::uint64_t(f0) + lw::LoadLE32(pad_ + 0);
  lw::StoreLE32(tag + 0, static_cast<std::uint32_t>(acc));
  acc = (acc >> 32) + f1 + lw::LoadLE32(pad_ + 4);
  lw::StoreLE32(tag + 4, static_cast<std::uint32_t>(acc));
  acc = (acc >> 32) + f2 + lw::LoadLE32(pad_ + 8);
  lw::StoreLE32(tag + 8, static_cast<std::uint32_t>(acc));
  acc = (acc >> 32) + f3 + lw::LoadLE32(pad_ + 12);
  lw::StoreLE32(tag + 12, static_cast<std::uint32_t>(acc));
}

void Poly1305(ByteSpan key, ByteSpan msg, std::uint8_t tag[kPoly1305TagSize]) {
  Poly1305State state(key);
  state.Update(msg);
  state.Finish(tag);
}

}  // namespace lw::crypto
