// Poly1305 one-time authenticator (RFC 8439).
#pragma once

#include <cstdint>

#include "crypto/secret.h"
#include "util/bytes.h"

namespace lw::crypto {

inline constexpr std::size_t kPoly1305KeySize = 32;
inline constexpr std::size_t kPoly1305TagSize = 16;

// Computes the Poly1305 tag of `msg` under a 32-byte one-time key.
void Poly1305(LW_SECRET ByteSpan key, ByteSpan msg,
              std::uint8_t tag[kPoly1305TagSize]);

// Incremental interface (the AEAD feeds AAD, ciphertext, and lengths).
class Poly1305State {
 public:
  explicit Poly1305State(LW_SECRET ByteSpan key);
  void Update(ByteSpan data);
  void Finish(std::uint8_t tag[kPoly1305TagSize]);

 private:
  void ProcessBlock(const std::uint8_t block[16], std::uint32_t hibit);

  std::uint32_t r_[5];
  std::uint32_t h_[5] = {0, 0, 0, 0, 0};
  std::uint8_t pad_[16];
  std::uint8_t buf_[16];
  std::size_t buffered_ = 0;
};

}  // namespace lw::crypto
