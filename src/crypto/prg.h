// Length-doubling PRG used by the DPF tree construction.
//
// G(s) -> (s_L, t_L, s_R, t_R): each 16-byte seed expands into a left and a
// right 16-byte child seed plus one control bit per side. Expansion is
// fixed-key AES-128 in Matyas–Meyer–Oseas mode with two distinct public keys
// (one per side); the child's low bit becomes the control bit and is cleared
// from the seed. Fixed-key AES-MMO is the standard high-throughput choice for
// FSS implementations (it is correlation-robust under the ideal-cipher
// heuristic), and is what makes the per-query linear scan in the paper's
// §5.1 microbenchmark feasible.
#pragma once

#include <cstdint>

#include "crypto/aes128.h"
#include "util/bytes.h"

namespace lw::crypto {

inline constexpr std::size_t kPrgSeedSize = 16;

class DpfPrg {
 public:
  DpfPrg();

  // Expands n seeds: left[i] / right[i] receive the child seeds with control
  // bits already cleared; the bits land in t_left/t_right (one byte each,
  // value 0 or 1). Buffers are n*16 bytes (seeds may not alias outputs).
  void ExpandBatch(const std::uint8_t* seeds, std::size_t n,
                   std::uint8_t* left, std::uint8_t* right,
                   std::uint8_t* t_left, std::uint8_t* t_right) const;

  // Single-seed convenience wrapper.
  void Expand(const std::uint8_t seed[kPrgSeedSize],
              std::uint8_t left[kPrgSeedSize],
              std::uint8_t right[kPrgSeedSize], std::uint8_t* t_left,
              std::uint8_t* t_right) const;

 private:
  Aes128 aes_left_;
  Aes128 aes_right_;
};

// Process-wide PRG instance (the keys are fixed public constants, so one
// instance serves every DPF in the process).
const DpfPrg& SharedDpfPrg();

}  // namespace lw::crypto
