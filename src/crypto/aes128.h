// AES-128 block cipher (encryption direction only).
//
// The DPF pseudorandom generator and the MMO hash below need raw single-block
// AES with a fixed key evaluated millions of times per query, so this class
// exposes a batch interface that pipelines AES-NI rounds across independent
// blocks. A portable software implementation is selected at runtime on CPUs
// without AES-NI.
//
// This is NOT a general-purpose encryption API — use crypto/aead.h for
// authenticated encryption of actual data.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace lw::crypto {

inline constexpr std::size_t kAesBlockSize = 16;
inline constexpr std::size_t kAes128KeySize = 16;

class Aes128 {
 public:
  // `key` must be exactly 16 bytes.
  explicit Aes128(ByteSpan key);

  // out = AES(key, in). `in` and `out` may alias.
  void EncryptBlock(const std::uint8_t in[kAesBlockSize],
                    std::uint8_t out[kAesBlockSize]) const;

  // Encrypts `n` independent blocks (pipelined when AES-NI is available).
  // in/out are n*16 bytes and may alias element-wise.
  void EncryptBlocks(const std::uint8_t* in, std::uint8_t* out,
                     std::size_t n) const;

  // Matyas–Meyer–Oseas one-way compression: out[i] = AES(key, in[i]) ^ in[i].
  // This is the PRG expansion step used by the DPF layer (fixed-key AES is a
  // correlation-robust hash under standard assumptions).
  void MmoBlocks(const std::uint8_t* in, std::uint8_t* out,
                 std::size_t n) const;

  // True when the fast AES-NI path is in use (for diagnostics/benchmarks).
  static bool HasHardwareSupport();

 private:
  alignas(16) std::uint8_t round_keys_[11][kAesBlockSize];
};

}  // namespace lw::crypto
