// Per-request trace spans and the bounded in-memory trace ring.
//
// A RequestTrace records how one private-GET's latency decomposed across
// the server pipeline: decode → DPF expand → scan → reply. Traces carry a
// server-assigned monotonic id and nanosecond stage durations only — no
// request payload, blob name, or client identity ever enters a trace (the
// same aggregate-only privacy rule as metrics; see obs/metrics.h and
// docs/OBSERVABILITY.md).
//
// Stage attribution uses a thread-local sink: the connection handler opens
// a span, and the deep layers that actually do the work (DPF expansion in
// PirStore / ShardDataServer, the XOR scan in BlobDatabase) credit their
// nanoseconds to whatever span is open on the current thread — no context
// parameter threads through every API. The batch scheduler serves B
// requests with one expansion+scan pass, so all B co-riders are credited
// the batch's stage timings (documented batch-level attribution).
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace lw::obs {

struct StageTimings {
  std::uint64_t decode_ns = 0;  // frame decode + DPF key deserialization
  std::uint64_t expand_ns = 0;  // DPF full-domain / sub-tree expansion
  std::uint64_t scan_ns = 0;    // record XOR scan (batch-shared if batched)
  std::uint64_t reply_ns = 0;   // response encode + transport send
};

struct RequestTrace {
  std::uint64_t trace_id = 0;       // assigned by TraceRing::Record
  std::uint64_t start_unix_ms = 0;  // coarse wall-clock start, for operators
  std::uint64_t total_ns = 0;       // decode through reply, wall time
  StageTimings stages;
};

// Fixed-capacity ring of the most recent traces. Record() takes one short
// mutex hold per completed request (well off the per-row/per-chunk hot
// path); once full, the oldest trace is overwritten.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  // The process-wide ring the servers record into. Never destroyed, same
  // rationale as Registry::Default().
  static TraceRing& Default();

  // Assigns the trace id and stores the trace; returns the id.
  std::uint64_t Record(RequestTrace trace);

  // Retained traces, oldest first (at most capacity()).
  std::vector<RequestTrace> Snapshot() const;

  std::size_t capacity() const { return capacity_; }
  // Total ever recorded; total_recorded() - size() have been overwritten.
  std::uint64_t total_recorded() const;

  static constexpr std::size_t kDefaultCapacity = 256;

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::uint64_t next_id_ = 1;
  std::vector<RequestTrace> ring_;  // grows to capacity_, then wraps
  std::size_t head_ = 0;            // next slot to overwrite once full
};

// ------------------------------------------------------ stage-time sinks

// The StageTimings the current thread is serving, or null (bench and test
// code paths run without a span; the adders below are then no-ops).
StageTimings* CurrentStageSink();

// Opens `sink` as the current thread's span for this scope; restores the
// previous sink (usually null) on destruction.
class ScopedStageSink {
 public:
  explicit ScopedStageSink(StageTimings* sink);
  ~ScopedStageSink();
  ScopedStageSink(const ScopedStageSink&) = delete;
  ScopedStageSink& operator=(const ScopedStageSink&) = delete;

 private:
  StageTimings* prev_;
};

// Credit nanoseconds to the open span, if any.
void AddExpandNs(std::uint64_t ns);
void AddScanNs(std::uint64_t ns);

// The instrumentation clock. Trace stamps read it through this helper
// instead of calling std::chrono::steady_clock::now() at the call site:
// instrumentation time is deliberately real (traces measure the wall, even
// under a FakeClock-driven scheduler), and centralizing the read here keeps
// lwlint's raw-steady-clock rule meaningful — scheduling code in src/zltp
// and src/net must go through lw::Clock, and anything else calling the
// clock directly is a finding.
inline std::chrono::steady_clock::time_point TraceNow() {
  return std::chrono::steady_clock::now();
}

// Nanoseconds elapsed on the steady clock since `start`.
inline std::uint64_t ElapsedNs(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

// Coarse wall-clock milliseconds since the Unix epoch (trace start stamps).
std::uint64_t UnixMillis();

}  // namespace lw::obs
