#include "obs/trace.h"

#include "util/check.h"

namespace lw::obs {
namespace {

thread_local StageTimings* tls_stage_sink = nullptr;

}  // namespace

TraceRing::TraceRing(std::size_t capacity) : capacity_(capacity) {
  LW_CHECK_MSG(capacity >= 1, "trace ring capacity must be >= 1");
  ring_.reserve(capacity);
}

TraceRing& TraceRing::Default() {
  // Deliberately leaked (see Registry::Default). lwlint: allow(naked-new)
  static TraceRing* instance = new TraceRing();
  return *instance;
}

std::uint64_t TraceRing::Record(RequestTrace trace) {
  std::lock_guard<std::mutex> lock(mu_);
  trace.trace_id = next_id_++;
  const std::uint64_t id = trace.trace_id;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
  } else {
    ring_[head_] = std::move(trace);
    head_ = (head_ + 1) % capacity_;
  }
  return id;
}

std::vector<RequestTrace> TraceRing::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<RequestTrace> out;
  out.reserve(ring_.size());
  // head_ is the oldest entry once the ring has wrapped.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::uint64_t TraceRing::total_recorded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_id_ - 1;
}

StageTimings* CurrentStageSink() { return tls_stage_sink; }

ScopedStageSink::ScopedStageSink(StageTimings* sink) : prev_(tls_stage_sink) {
  tls_stage_sink = sink;
}

ScopedStageSink::~ScopedStageSink() { tls_stage_sink = prev_; }

void AddExpandNs(std::uint64_t ns) {
  if (tls_stage_sink != nullptr) tls_stage_sink->expand_ns += ns;
}

void AddScanNs(std::uint64_t ns) {
  if (tls_stage_sink != nullptr) tls_stage_sink->scan_ns += ns;
}

std::uint64_t UnixMillis() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

}  // namespace lw::obs
