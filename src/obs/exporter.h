// Operator surface for the obs layer: text/JSON rendering of metric
// snapshots and traces, a periodic JSON file dump, and a minimal HTTP
// endpoint for Prometheus-style scrapes.
//
// The HTTP server is intentionally tiny: one listener thread on loopback,
// one request per connection, GET only. It serves operators and scrapers,
// not clients — ZLTP traffic never touches this port, and everything it
// exposes is the aggregate-only data described in docs/OBSERVABILITY.md.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace lw::obs {

// Prometheus text exposition (version 0.0.4): HELP/TYPE comments, counter
// and gauge samples, cumulative `_bucket{le="..."}` series plus `_sum` and
// `_count` for histograms.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

// JSON object: {"counters": [...], "gauges": [...], "histograms": [...]}.
// Histogram buckets are non-cumulative with explicit upper bounds; the
// overflow bucket has "le": "inf".
std::string ToJson(const MetricsSnapshot& snapshot);

// JSON array of trace objects, oldest first.
std::string ToJson(const std::vector<RequestTrace>& traces);

// The combined operator snapshot of the default registry and trace ring:
// {"unix_ms": ..., "metrics": {...}, "traces": [...]}.
std::string SnapshotJsonPage();

// SnapshotJsonPage() written atomically (temp file + rename), so a reader
// never observes a torn snapshot. For deployments that poll a file instead
// of scraping a port.
Status WriteSnapshotJson(const std::string& path);

// Loopback HTTP/1.0 endpoint:
//   GET /metrics        → Prometheus text
//   GET /metrics.json   → SnapshotJsonPage()
// Pass port 0 for an ephemeral port (see port()).
class MetricsHttpServer {
 public:
  static Result<std::unique_ptr<MetricsHttpServer>> Start(std::uint16_t port);
  ~MetricsHttpServer();

  MetricsHttpServer(const MetricsHttpServer&) = delete;
  MetricsHttpServer& operator=(const MetricsHttpServer&) = delete;

  std::uint16_t port() const { return port_; }
  void Stop();  // idempotent; joins the listener thread

 private:
  MetricsHttpServer(int fd, std::uint16_t port);
  void ServeLoop();

  int listen_fd_;
  std::uint16_t port_;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace lw::obs
