#include "obs/metrics.h"

#include <cmath>

#include "util/check.h"

namespace lw::obs {

Histogram::Histogram(std::vector<std::uint64_t> bounds)
    : bounds_(std::move(bounds)),
      counts_(std::make_unique<PaddedCount[]>(bounds_.size() + 1)) {
  for (std::size_t i = 1; i < bounds_.size(); ++i) {
    LW_CHECK_MSG(bounds_[i - 1] < bounds_[i],
                 "histogram bounds must be strictly ascending");
  }
}

std::vector<std::uint64_t> Histogram::counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = counts_[i].v.load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<std::uint64_t> ExponentialBounds(std::uint64_t start,
                                             double factor, std::size_t n) {
  LW_CHECK_MSG(start > 0 && factor > 1.0 && n > 0,
               "ExponentialBounds needs start>0, factor>1, n>0");
  std::vector<std::uint64_t> bounds;
  bounds.reserve(n);
  double b = static_cast<double>(start);
  for (std::size_t i = 0; i < n; ++i) {
    const auto v = static_cast<std::uint64_t>(std::llround(b));
    // Guard against rounding collisions at small values.
    bounds.push_back(bounds.empty() || v > bounds.back() ? v
                                                         : bounds.back() + 1);
    b *= factor;
  }
  return bounds;
}

Registry& Registry::Default() {
  // Deliberately leaked: detached server threads may still be bumping
  // counters while static destructors run, so the registry must outlive
  // every other static. lwlint: allow(naked-new)
  static Registry* instance = new Registry();
  return *instance;
}

void Registry::CheckNameFree(const char* name) const {
  // Callers hold mu_.
  for (const auto& e : counters_) LW_CHECK_MSG(e.meta.name != name, name);
  for (const auto& e : gauges_) LW_CHECK_MSG(e.meta.name != name, name);
  for (const auto& e : histograms_) LW_CHECK_MSG(e.meta.name != name, name);
}

Counter& Registry::AddCounter(const char* name, const char* help,
                              const char* unit) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckNameFree(name);
  counters_.push_back({{name, help, unit}, std::make_unique<Counter>()});
  return *counters_.back().instrument;
}

Gauge& Registry::AddGauge(const char* name, const char* help,
                          const char* unit) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckNameFree(name);
  gauges_.push_back({{name, help, unit}, std::make_unique<Gauge>()});
  return *gauges_.back().instrument;
}

Histogram& Registry::AddHistogram(const char* name, const char* help,
                                  const char* unit,
                                  std::vector<std::uint64_t> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  CheckNameFree(name);
  histograms_.push_back(
      {{name, help, unit}, std::make_unique<Histogram>(std::move(bounds))});
  return *histograms_.back().instrument;
}

MetricsSnapshot Registry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& e : counters_) {
    snap.counters.push_back(
        {e.meta.name, e.meta.help, e.meta.unit, e.instrument->Value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& e : gauges_) {
    snap.gauges.push_back(
        {e.meta.name, e.meta.help, e.meta.unit, e.instrument->Value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& e : histograms_) {
    HistogramSnapshot h;
    h.name = e.meta.name;
    h.help = e.meta.help;
    h.unit = e.meta.unit;
    h.bounds = e.instrument->bounds();
    h.counts = e.instrument->counts();
    for (const std::uint64_t c : h.counts) h.count += c;
    h.sum = e.instrument->sum();
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

namespace {

// Latency bucket ladder: 1 µs .. ~4.3 s in ×4 steps (12 buckets + overflow)
// — wide enough to cover a sub-ms decode and a multi-second 1 GiB scan.
std::vector<std::uint64_t> LatencyBounds() {
  return ExponentialBounds(1'000, 4.0, 12);
}

}  // namespace

Metrics& M() {
  // Leaked for the same reason as Registry::Default().
  // lwlint: allow(naked-new)
  static Metrics* m = new Metrics{
      Registry::Default().AddCounter(
          "lw_server_connections_total",
          "ZLTP client connections accepted by a server loop", "connections"),
      Registry::Default().AddCounter(
          "lw_server_requests_total",
          "private-GET requests answered by ZLTP servers (PIR + enclave)",
          "requests"),
      Registry::Default().AddCounter(
          "lw_server_request_errors_total",
          "requests answered with an Error frame", "errors"),
      Registry::Default().AddGauge(
          "lw_server_active_connections",
          "currently open ZLTP server connections", "connections"),
      Registry::Default().AddHistogram(
          "lw_server_request_ns",
          "per-request server latency, decode through reply", "ns",
          LatencyBounds()),

      Registry::Default().AddCounter(
          "lw_frontend_requests_total",
          "private-GETs answered by front-end servers (sharded §5.2 mode)",
          "requests"),
      Registry::Default().AddCounter(
          "lw_frontend_request_errors_total",
          "front-end requests answered with an Error frame", "errors"),
      Registry::Default().AddCounter(
          "lw_shard_requests_total",
          "sub-tree queries answered by shard data servers", "requests"),

      Registry::Default().AddGauge(
          "lw_fanout_inflight",
          "private GETs currently in flight across the shard fan-out",
          "requests"),
      Registry::Default().AddHistogram(
          "lw_fanout_shard_rtt_ns",
          "per-shard sub-query round trip inside the fan-out", "ns",
          LatencyBounds()),
      Registry::Default().AddCounter(
          "lw_fanout_stale_drops_total",
          "shard replies dropped because their op already completed",
          "frames"),
      Registry::Default().AddCounter(
          "lw_fanout_redials_total",
          "shard links closed and re-dialed after a failure or desync",
          "redials"),
      Registry::Default().AddCounter(
          "lw_fanout_deadline_expired_total",
          "fan-out ops failed at their per-op deadline", "requests"),

      Registry::Default().AddCounter("lw_batch_requests_total",
                                     "queries submitted to batch schedulers",
                                     "requests"),
      Registry::Default().AddCounter("lw_batch_batches_total",
                                     "batches executed by batch schedulers",
                                     "batches"),
      Registry::Default().AddHistogram(
          "lw_batch_size", "requests per executed batch (fill distribution)",
          "requests", {1, 2, 4, 8, 16, 32, 64, 128}),
      Registry::Default().AddHistogram(
          "lw_batch_queue_wait_ns",
          "queue wait from Submit to batch formation", "ns", LatencyBounds()),
      Registry::Default().AddGauge("lw_batch_queue_depth",
                                   "requests awaiting batch formation",
                                   "requests"),
      Registry::Default().AddCounter(
          "lw_batch_shed_total",
          "submissions refused RESOURCE_EXHAUSTED at the admission queue",
          "requests"),
      Registry::Default().AddCounter(
          "lw_batch_expired_total",
          "co-riders failed DEADLINE_EXCEEDED at batch formation",
          "requests"),
      Registry::Default().AddCounter(
          "lw_batch_full_closes_total",
          "batches closed because they reached max_batch", "batches"),
      Registry::Default().AddCounter(
          "lw_batch_deadline_closes_total",
          "batches closed early to honor a rider's deadline budget",
          "batches"),
      Registry::Default().AddCounter(
          "lw_batch_wait_closes_total",
          "batches closed by the max_wait co-rider window elapsing",
          "batches"),
      Registry::Default().AddCounter(
          "lw_batch_pipeline_stall_ns_total",
          "scan-stage idle time waiting on DPF expansion", "ns"),

      Registry::Default().AddCounter(
          "lw_scan_rows_scanned_total",
          "records walked by blob-database scan passes", "rows"),
      Registry::Default().AddCounter(
          "lw_scan_passes_total",
          "blob-database scan passes (a batched pass counts once)", "passes"),
      Registry::Default().AddCounter(
          "lw_scan_busy_ns_total", "wall time spent inside scan passes",
          "ns"),
      Registry::Default().AddHistogram("lw_scan_pass_ns",
                                       "latency of one scan pass", "ns",
                                       LatencyBounds()),

      Registry::Default().AddHistogram(
          "lw_dpf_expand_ns",
          "latency of one DPF full-domain or sub-tree expansion", "ns",
          LatencyBounds()),

      Registry::Default().AddCounter("lw_pool_parallel_ops_total",
                                     "ParallelFor regions executed",
                                     "regions"),
      Registry::Default().AddCounter("lw_pool_chunks_total",
                                     "chunks executed across all regions",
                                     "chunks"),
      Registry::Default().AddCounter(
          "lw_pool_chunks_stolen_total",
          "chunks executed by pool workers rather than the submitting thread",
          "chunks"),

      Registry::Default().AddGauge(
          "lw_reactor_connections",
          "connections currently owned by epoll reactor loops",
          "connections"),
      Registry::Default().AddCounter(
          "lw_reactor_frames_total",
          "complete frames parsed by reactor loops", "frames"),
      Registry::Default().AddCounter(
          "lw_reactor_wakeups_total",
          "epoll_wait returns (events, eventfd signals, or timer slices)",
          "wakeups"),
      Registry::Default().AddCounter(
          "lw_reactor_partial_writes_total",
          "reactor writes that could not complete in one syscall (short "
          "write or EAGAIN; resumed from the send queue)",
          "writes"),
      Registry::Default().AddCounter(
          "lw_reactor_timer_closes_total",
          "connections closed by the idle or write-stall timer", "closes"),
      Registry::Default().AddGauge(
          "lw_reactor_send_backlog_bytes",
          "reply bytes queued across all reactor connections awaiting "
          "socket-buffer space",
          "bytes"),
      Registry::Default().AddHistogram(
          "lw_reactor_loop_ns",
          "busy time of one reactor loop iteration (excludes the "
          "epoll_wait sleep)",
          "ns", LatencyBounds()),

      Registry::Default().AddCounter("lw_net_bytes_sent_total",
                                     "payload bytes written to TCP sockets",
                                     "bytes"),
      Registry::Default().AddCounter("lw_net_bytes_received_total",
                                     "payload bytes read from TCP sockets",
                                     "bytes"),
      Registry::Default().AddCounter("lw_net_accepts_total",
                                     "TCP connections accepted",
                                     "connections"),
      Registry::Default().AddCounter("lw_net_accept_errors_total",
                                     "accept() failures", "errors"),
      Registry::Default().AddCounter("lw_net_read_errors_total",
                                     "recv() failures (EINTR excluded)",
                                     "errors"),
      Registry::Default().AddCounter("lw_net_write_errors_total",
                                     "send() failures (EINTR excluded)",
                                     "errors"),
      Registry::Default().AddCounter("lw_net_eintr_retries_total",
                                     "send/recv/accept calls retried on EINTR",
                                     "retries"),

      Registry::Default().AddCounter(
          "lw_client_bytes_sent_total",
          "ZLTP frame bytes sent by client sessions (both servers)", "bytes"),
      Registry::Default().AddCounter(
          "lw_client_bytes_received_total",
          "ZLTP frame bytes received by client sessions (both servers)",
          "bytes"),
      Registry::Default().AddCounter(
          "lw_client_requests_total",
          "private GETs issued by client sessions (incl. dummies)",
          "requests"),
      Registry::Default().AddCounter(
          "lw_client_retries_total",
          "private-GET attempts re-issued with fresh DPF shares after a "
          "retryable failure",
          "retries"),
      Registry::Default().AddCounter(
          "lw_client_redials_total",
          "session transports re-dialed and re-helloed after a dead "
          "connection",
          "redials"),
      Registry::Default().AddCounter(
          "lw_client_op_timeouts_total",
          "client operations that failed with DEADLINE_EXCEEDED", "timeouts"),

      Registry::Default().AddGauge("lw_store_records",
                                   "records resident across all PIR stores",
                                   "records"),
  };
  return *m;
}

}  // namespace lw::obs
