// Lock-cheap aggregate metrics for the serving stack.
//
// The registry holds three instrument kinds — monotonic counters, gauges,
// and fixed-bucket histograms — all built on relaxed atomics so the hot
// paths (per-request, per-batch, per-scan-chunk) pay one uncontended
// cache-line RMW, never a lock. Counters and gauges are cache-line padded
// so two instruments updated by different threads never false-share.
//
// PRIVACY INVARIANT (paper §2): ZLTP exists so that no one — not the
// network, not the servers — learns WHICH blob a client fetches. Telemetry
// must therefore be aggregate-only: metric names and label values are
// compile-time string literals, and nothing derived from a request payload,
// blob name, keyword, or domain index may reach a metric name, label, or
// bucket boundary. A per-blob counter would be a readable access log and
// void the whole system. lwlint's `metric-label-from-request` rule enforces
// this mechanically; docs/OBSERVABILITY.md states the policy and catalogs
// every exported metric.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace lw::obs {

// Monotonic event counter. Inc() is one relaxed fetch_add; Value() is a
// relaxed load (scrapes tolerate being a few events behind a racing
// increment — each counter is individually monotonic).
class alignas(64) Counter {
 public:
  void Inc(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

// Instantaneous level (active connections, resident records). Signed so a
// racing Add/Sub pair can transiently dip below zero without UB.
class alignas(64) Gauge {
 public:
  void Set(std::int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(std::int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
  void Sub(std::int64_t d) { v_.fetch_sub(d, std::memory_order_relaxed); }
  std::int64_t Value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

// Fixed-bucket histogram over non-negative integer samples (latencies in
// ns, batch sizes). Bucket i counts samples <= bounds[i]; one extra
// overflow bucket counts the rest. Observe() is a short predictable scan
// plus two relaxed RMWs. The total count is always derived from the bucket
// counts at snapshot time, so `count == sum(bucket counts)` holds for every
// snapshot by construction (the sample sum may trail by in-flight
// observations; it is monotonic).
class Histogram {
 public:
  // `bounds` are strictly ascending inclusive upper bounds. Production
  // histograms are created via Registry::AddHistogram; this is public so
  // tests can exercise bucket mechanics standalone.
  explicit Histogram(std::vector<std::uint64_t> bounds);

  void Observe(std::uint64_t value) {
    std::size_t i = 0;
    const std::size_t n = bounds_.size();
    while (i < n && value > bounds_[i]) ++i;
    counts_[i].v.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  // counts()[i] pairs with bounds()[i]; the final entry is the overflow
  // bucket. Values are non-cumulative.
  std::vector<std::uint64_t> counts() const;
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  struct alignas(64) PaddedCount {
    std::atomic<std::uint64_t> v{0};
  };

  std::vector<std::uint64_t> bounds_;  // ascending inclusive upper bounds
  std::unique_ptr<PaddedCount[]> counts_;  // bounds_.size() + 1 cells
  alignas(64) std::atomic<std::uint64_t> sum_{0};
};

// `n` ascending bounds: start, start*factor, start*factor^2, ...
std::vector<std::uint64_t> ExponentialBounds(std::uint64_t start,
                                             double factor, std::size_t n);

// ---------------------------------------------------------------- snapshot

struct CounterSnapshot {
  std::string name, help, unit;
  std::uint64_t value = 0;
};

struct GaugeSnapshot {
  std::string name, help, unit;
  std::int64_t value = 0;
};

struct HistogramSnapshot {
  std::string name, help, unit;
  std::vector<std::uint64_t> bounds;  // upper bounds; counts has one extra
  std::vector<std::uint64_t> counts;  // non-cumulative, incl. overflow cell
  std::uint64_t sum = 0;
  std::uint64_t count = 0;  // == sum of counts, by construction
};

struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;
};

// ---------------------------------------------------------------- registry

// Owns instruments; registration is mutex-guarded (cold: once per process
// per metric), reads and updates are lock-free. Returned references stay
// valid for the registry's lifetime. Names must be unique across kinds —
// duplicate registration is a programming error (LW_CHECK).
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // The process-wide registry every production metric lives in. Never
  // destroyed (detached server threads may record until process exit).
  static Registry& Default();

  Counter& AddCounter(const char* name, const char* help, const char* unit);
  Gauge& AddGauge(const char* name, const char* help, const char* unit);
  Histogram& AddHistogram(const char* name, const char* help,
                          const char* unit,
                          std::vector<std::uint64_t> bounds);

  // A point-in-time view: every value read with relaxed loads, each
  // instrument internally consistent (see Histogram). Safe to call while
  // writers are hot.
  MetricsSnapshot Snapshot() const;

 private:
  struct Named {
    std::string name, help, unit;
  };
  template <typename T>
  struct Entry {
    Named meta;
    std::unique_ptr<T> instrument;
  };

  void CheckNameFree(const char* name) const;

  mutable std::mutex mu_;  // guards the vectors, not the instruments
  std::vector<Entry<Counter>> counters_;
  std::vector<Entry<Gauge>> gauges_;
  std::vector<Entry<Histogram>> histograms_;
};

// ------------------------------------------------------- the metric set

// Every metric the serving stack exports, registered in
// Registry::Default() on first use. Central on purpose: this struct is the
// single source of truth the docs/OBSERVABILITY.md catalog mirrors, and a
// reviewer can audit the whole privacy surface in one screen — every name
// below is a literal, none is derived from request data.
struct Metrics {
  // ZLTP servers (PIR + enclave modes).
  Counter& server_connections;
  Counter& server_requests;
  Counter& server_request_errors;
  Gauge& server_active_connections;
  Histogram& server_request_ns;  // decode → reply, per request

  // Sharded deployment (§5.2): front-ends and shard data servers.
  Counter& frontend_requests;
  Counter& frontend_request_errors;
  Counter& shard_requests;

  // Front-end shard fan-out (the multiplexed client path, zltp/frontend.cc):
  // ops in flight across all shard links, per-shard sub-query round trips,
  // and the failure-containment events — replies dropped because their op
  // already completed, links closed and re-dialed after a desync, and ops
  // failed at their per-op deadline.
  Gauge& fanout_inflight;
  Histogram& fanout_shard_rtt_ns;
  Counter& fanout_stale_drops;
  Counter& fanout_redials;
  Counter& fanout_deadline_expired;

  // Batch scheduler.
  Counter& batch_requests;
  Counter& batch_batches;
  Histogram& batch_size;           // batch fill distribution
  Histogram& batch_queue_wait_ns;  // submit → batch formation
  Gauge& batch_queue_depth;        // requests awaiting batch formation
  Counter& batch_shed;             // admissions refused (queue over limit)
  Counter& batch_expired;          // co-riders failed at their deadline
  // Why each batch closed: hit max_batch, had to start to make a rider's
  // deadline, or simply waited out max_wait.
  Counter& batch_full_closes;
  Counter& batch_deadline_closes;
  Counter& batch_wait_closes;
  // Time the pipeline's scan stage sat idle waiting for an expanded batch
  // (nonzero = expansion is the bottleneck, not the data pass).
  Counter& batch_pipeline_stall_ns;

  // Blob-database scans. ns/record = busy_ns / rows_scanned; average
  // rows per pass (≈ rows per shard) = rows_scanned / passes.
  Counter& scan_rows_scanned;
  Counter& scan_passes;
  Counter& scan_busy_ns;
  Histogram& scan_pass_ns;

  // DPF expansion (full-domain or shard sub-tree), per evaluation.
  Histogram& dpf_expand_ns;

  // Thread pool. A "stolen" chunk ran on a pool worker rather than the
  // submitting thread — the work-handoff rate.
  Counter& pool_parallel_ops;
  Counter& pool_chunks;
  Counter& pool_chunks_stolen;

  // Epoll reactor (src/net/reactor.cc). One loop thread multiplexes every
  // reactor-served connection; these expose its health: how many sockets
  // it owns, how much reply data sits queued behind slow readers, how
  // often writes could not complete in one syscall, and how long one loop
  // iteration's work takes (the loop must stay fast — a slow iteration
  // delays every connection).
  Gauge& reactor_connections;
  Counter& reactor_frames;
  Counter& reactor_wakeups;
  Counter& reactor_partial_writes;
  Counter& reactor_timer_closes;
  Gauge& reactor_send_backlog_bytes;
  Histogram& reactor_loop_ns;

  // TCP transport.
  Counter& net_bytes_sent;
  Counter& net_bytes_received;
  Counter& net_accepts;
  Counter& net_accept_errors;
  Counter& net_read_errors;
  Counter& net_write_errors;
  Counter& net_eintr_retries;

  // ZLTP client sessions: per-direction traffic accounting (the paper's
  // communication-cost numbers — bench/bench_communication.cc reads these)
  // and the resilience layer's recovery events.
  Counter& client_bytes_sent;
  Counter& client_bytes_received;
  Counter& client_requests;
  Counter& client_retries;      // attempts re-issued with fresh DPF shares
  Counter& client_redials;      // transports re-dialed + hello re-run
  Counter& client_op_timeouts;  // operations that hit DEADLINE_EXCEEDED

  // Content stores.
  Gauge& store_records;
};

// The default-registry metric set (lazily registered, never destroyed).
Metrics& M();

}  // namespace lw::obs
