#include "obs/exporter.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>

namespace lw::obs {
namespace {

// Metric names and units are ASCII literals by construction (the privacy
// invariant), so escaping only has to survive a stray quote or backslash
// in help text.
std::string JsonEscaped(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  }
  return out;
}

void AppendHistogramProm(std::ostringstream& os,
                         const HistogramSnapshot& h) {
  os << "# HELP " << h.name << " " << h.help << "\n";
  os << "# TYPE " << h.name << " histogram\n";
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < h.bounds.size(); ++i) {
    cumulative += h.counts[i];
    os << h.name << "_bucket{le=\"" << h.bounds[i] << "\"} " << cumulative
       << "\n";
  }
  cumulative += h.counts.back();
  os << h.name << "_bucket{le=\"+Inf\"} " << cumulative << "\n";
  os << h.name << "_sum " << h.sum << "\n";
  os << h.name << "_count " << h.count << "\n";
}

}  // namespace

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  for (const CounterSnapshot& c : snapshot.counters) {
    os << "# HELP " << c.name << " " << c.help << "\n";
    os << "# TYPE " << c.name << " counter\n";
    os << c.name << " " << c.value << "\n";
  }
  for (const GaugeSnapshot& g : snapshot.gauges) {
    os << "# HELP " << g.name << " " << g.help << "\n";
    os << "# TYPE " << g.name << " gauge\n";
    os << g.name << " " << g.value << "\n";
  }
  for (const HistogramSnapshot& h : snapshot.histograms) {
    AppendHistogramProm(os, h);
  }
  return os.str();
}

std::string ToJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"counters\":[";
  for (std::size_t i = 0; i < snapshot.counters.size(); ++i) {
    const CounterSnapshot& c = snapshot.counters[i];
    os << (i ? "," : "") << "{\"name\":\"" << JsonEscaped(c.name)
       << "\",\"unit\":\"" << JsonEscaped(c.unit) << "\",\"value\":"
       << c.value << "}";
  }
  os << "],\"gauges\":[";
  for (std::size_t i = 0; i < snapshot.gauges.size(); ++i) {
    const GaugeSnapshot& g = snapshot.gauges[i];
    os << (i ? "," : "") << "{\"name\":\"" << JsonEscaped(g.name)
       << "\",\"unit\":\"" << JsonEscaped(g.unit) << "\",\"value\":"
       << g.value << "}";
  }
  os << "],\"histograms\":[";
  for (std::size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const HistogramSnapshot& h = snapshot.histograms[i];
    os << (i ? "," : "") << "{\"name\":\"" << JsonEscaped(h.name)
       << "\",\"unit\":\"" << JsonEscaped(h.unit) << "\",\"count\":"
       << h.count << ",\"sum\":" << h.sum << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      os << (b ? "," : "") << "{\"le\":";
      if (b < h.bounds.size()) {
        os << h.bounds[b];
      } else {
        os << "\"inf\"";
      }
      os << ",\"count\":" << h.counts[b] << "}";
    }
    os << "]}";
  }
  os << "]}";
  return os.str();
}

std::string ToJson(const std::vector<RequestTrace>& traces) {
  std::ostringstream os;
  os << "[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    const RequestTrace& t = traces[i];
    os << (i ? "," : "") << "{\"trace_id\":" << t.trace_id
       << ",\"start_unix_ms\":" << t.start_unix_ms
       << ",\"total_ns\":" << t.total_ns
       << ",\"decode_ns\":" << t.stages.decode_ns
       << ",\"expand_ns\":" << t.stages.expand_ns
       << ",\"scan_ns\":" << t.stages.scan_ns
       << ",\"reply_ns\":" << t.stages.reply_ns << "}";
  }
  os << "]";
  return os.str();
}

std::string SnapshotJsonPage() {
  std::ostringstream os;
  os << "{\"unix_ms\":" << UnixMillis()
     << ",\"metrics\":" << ToJson(Registry::Default().Snapshot())
     << ",\"traces\":" << ToJson(TraceRing::Default().Snapshot()) << "}\n";
  return os.str();
}

Status WriteSnapshotJson(const std::string& path) {
  const std::string page = SnapshotJsonPage();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "w");
  if (f == nullptr) {
    return UnavailableError("cannot open " + tmp + ": " +
                            std::strerror(errno));
  }
  const std::size_t written = std::fwrite(page.data(), 1, page.size(), f);
  const bool flush_ok = std::fclose(f) == 0;
  if (written != page.size() || !flush_ok) {
    (void)std::remove(tmp.c_str());
    return UnavailableError("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)std::remove(tmp.c_str());
    return UnavailableError("rename to " + path + ": " +
                            std::strerror(errno));
  }
  return Status::Ok();
}

// ------------------------------------------------------------- HTTP

namespace {

Status SocketErrnoStatus(const std::string& what) {
  return UnavailableError(what + ": " + std::strerror(errno));
}

// Best-effort full write; the peer hanging up mid-response is its problem.
void WriteAll(int fd, const std::string& data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t w =
        ::send(fd, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return;
    }
    done += static_cast<std::size_t>(w);
  }
}

std::string HttpResponse(int code, const char* reason,
                         const char* content_type, const std::string& body) {
  std::ostringstream os;
  os << "HTTP/1.0 " << code << " " << reason << "\r\n"
     << "Content-Type: " << content_type << "\r\n"
     << "Content-Length: " << body.size() << "\r\n"
     << "Connection: close\r\n\r\n"
     << body;
  return os.str();
}

}  // namespace

MetricsHttpServer::MetricsHttpServer(int fd, std::uint16_t port)
    : listen_fd_(fd), port_(port) {
  thread_ = std::thread([this] { ServeLoop(); });
}

Result<std::unique_ptr<MetricsHttpServer>> MetricsHttpServer::Start(
    std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return SocketErrnoStatus("socket");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    const Status s = SocketErrnoStatus("bind");
    ::close(fd);
    return s;
  }
  if (::listen(fd, 16) < 0) {
    const Status s = SocketErrnoStatus("listen");
    ::close(fd);
    return s;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    const Status s = SocketErrnoStatus("getsockname");
    ::close(fd);
    return s;
  }
  const std::uint16_t bound = ntohs(addr.sin_port);
  // The ctor is private (it spawns the listener thread), so make_unique
  // cannot reach it; ownership transfers on this very line.
  // lwlint: allow(naked-new)
  return std::unique_ptr<MetricsHttpServer>(new MetricsHttpServer(fd, bound));
}

MetricsHttpServer::~MetricsHttpServer() { Stop(); }

void MetricsHttpServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  ::shutdown(listen_fd_, SHUT_RDWR);
  if (thread_.joinable()) thread_.join();
  ::close(listen_fd_);
}

void MetricsHttpServer::ServeLoop() {
  for (;;) {
    int client;
    do {
      client = ::accept(listen_fd_, nullptr, nullptr);
    } while (client < 0 && errno == EINTR);
    if (client < 0) return;  // listener shut down

    // Scrape requests fit one read; everything we need is the first line.
    char buf[2048];
    ssize_t n;
    do {
      n = ::recv(client, buf, sizeof buf - 1, 0);
    } while (n < 0 && errno == EINTR);
    if (n > 0) {
      buf[n] = '\0';
      const std::string head(buf);
      std::string response;
      if (head.rfind("GET /metrics.json", 0) == 0) {
        response = HttpResponse(200, "OK", "application/json",
                                SnapshotJsonPage());
      } else if (head.rfind("GET /metrics", 0) == 0) {
        response =
            HttpResponse(200, "OK", "text/plain; version=0.0.4",
                         ToPrometheusText(Registry::Default().Snapshot()));
      } else {
        response = HttpResponse(404, "Not Found", "text/plain",
                                "try /metrics or /metrics.json\n");
      }
      WriteAll(client, response);
    }
    ::close(client);
  }
}

}  // namespace lw::obs
