// Hex encoding/decoding for debugging, logging, and test vectors.
#pragma once

#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/status.h"

namespace lw {

// Lower-case hex encoding of a byte span.
std::string HexEncode(ByteSpan bytes);

// Decodes a hex string (case-insensitive). Fails on odd length or
// non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

}  // namespace lw
