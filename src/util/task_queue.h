// A small FIFO task queue with dedicated worker threads.
//
// The epoll reactor's frame handlers must never block (net/reactor.h), but
// some services compute inline and serially — the ORAM enclave processes
// one request at a time, a shard fan-out holds single-stream links. Those
// serve paths post each decoded request here and return to the loop; a
// worker runs the blocking compute and queues the reply via Reactor::Send.
//
// This is deliberately NOT ThreadPool: ParallelFor spreads one big job
// across cores; this queue serializes many small independent jobs off the
// latency-critical loop thread. The PIR path needs neither — the
// BatchScheduler's admission queue is its dispatcher.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace lw {

class TaskQueue {
 public:
  // `workers` threads drain the queue in FIFO order. With one worker,
  // tasks additionally execute in submission order — the property the
  // enclave and fan-out serve paths rely on for their per-connection
  // reply ordering.
  explicit TaskQueue(int workers = 1);
  ~TaskQueue();  // Stop()s.

  TaskQueue(const TaskQueue&) = delete;
  TaskQueue& operator=(const TaskQueue&) = delete;

  // Enqueues a task; false (task dropped) after Stop. Unbounded by design:
  // callers that need admission control shed before posting (the batch
  // scheduler's queue_limit is the model).
  bool Post(std::function<void()> task);

  // Drains already-queued tasks, then joins the workers. Idempotent.
  void Stop();

  std::size_t depth() const;

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> tasks_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace lw
