#include "util/file.h"

#include <cstdio>

namespace lw {

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return UnavailableError("cannot open " + path);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return UnavailableError("error reading " + path);
  return out;
}

Status WriteFile(const std::string& path, ByteSpan contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return UnavailableError("cannot open " + path);
  // An empty span may carry data() == nullptr, which fwrite's nonnull
  // contract forbids even for zero-length writes.
  std::size_t written = 0;
  if (!contents.empty()) {
    written = std::fwrite(contents.data(), 1, contents.size(), f);
  }
  const bool write_ok = written == contents.size();
  const bool close_ok = std::fclose(f) == 0;
  if (!write_ok || !close_ok) return UnavailableError("error writing " + path);
  return Status::Ok();
}

}  // namespace lw
