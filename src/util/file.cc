#include "util/file.h"

#include <cstdio>

namespace lw {

Result<std::string> ReadFileToString(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return UnavailableError("cannot open " + path);
  std::string out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    out.append(buf, n);
  }
  const bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return UnavailableError("error reading " + path);
  return out;
}

Status WriteFile(const std::string& path, ByteSpan contents) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return UnavailableError("cannot open " + path);
  const std::size_t written = std::fwrite(contents.data(), 1,
                                          contents.size(), f);
  const bool ok = written == contents.size() && std::fclose(f) == 0;
  if (!ok) return UnavailableError("error writing " + path);
  return Status::Ok();
}

}  // namespace lw
