// libnuma-free NUMA topology detection and worker pinning.
//
// A PIR scan is memory-bandwidth-bound, so on a multi-socket server the
// worst placement is a worker streaming a shard that lives on the other
// socket's memory controller. We read the kernel's sysfs topology
// (/sys/devices/system/node/node*/cpulist) instead of linking libnuma —
// the container toolchain has no extra packages — and the ThreadPool pins
// its workers round-robin across nodes when more than one is present.
// First-touch allocation then places each shard's pages on the node of the
// workers that scan it most.
//
// Everything is best-effort: on single-node hosts, non-Linux platforms, or
// any sysfs/sched_setaffinity failure, detection reports one synthetic
// node and pinning is a no-op. Chunk stealing in ParallelFor means the
// shard→worker mapping is an affinity hint, not a guarantee — a straggler's
// chunks still migrate to idle (possibly remote) workers rather than idle.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace lw::numa {

struct Node {
  int id = 0;
  std::vector<int> cpus;  // kernel cpu ids on this node, ascending
};

struct Topology {
  std::vector<Node> nodes;  // ascending node id; never empty after Detect
  int node_count() const { return static_cast<int>(nodes.size()); }
  std::size_t cpu_count() const {
    std::size_t n = 0;
    for (const Node& node : nodes) n += node.cpus.size();
    return n;
  }
};

// Parses the kernel's cpulist format ("0-3,8,10-11") into ascending cpu
// ids. Malformed pieces are skipped. Exposed for tests.
std::vector<int> ParseCpuList(std::string_view list);

// Reads sysfs node directories. Returns a single node 0 covering no
// specific cpus (cpus empty) when sysfs is absent or unreadable, so
// callers can treat "nothing to do" uniformly.
Topology DetectTopology();

// DetectTopology() run once and cached for the process.
const Topology& SystemTopology();

// Pins the calling thread to the node's cpu set. Returns true only if the
// affinity call succeeded; no-op (false) when the node lists no cpus or
// the platform has no sched_setaffinity.
bool PinCurrentThreadToNode(const Node& node);

}  // namespace lw::numa
