// Small file I/O helpers for the CLI tools.
#pragma once

#include <string>

#include "util/bytes.h"
#include "util/status.h"

namespace lw {

// Reads an entire file. UNAVAILABLE if it cannot be opened or read.
Result<std::string> ReadFileToString(const std::string& path);

// Writes (truncating) a whole file.
Status WriteFile(const std::string& path, ByteSpan contents);

}  // namespace lw
