// Binary serialization primitives used by the wire protocol and blob formats.
//
// All integers are little-endian. Variable-length fields are length-prefixed
// (u32). The Reader validates every bound before touching memory, so a
// malformed frame produces a ProtocolError rather than undefined behaviour.
#pragma once

#include <cstdint>
#include <limits>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/check.h"
#include "util/status.h"

namespace lw {

class Writer {
 public:
  Writer() = default;

  void U8(std::uint8_t v) { buf_.push_back(v); }
  void U16(std::uint16_t v) {
    buf_.push_back(static_cast<std::uint8_t>(v));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  }
  void U32(std::uint32_t v) {
    const std::size_t n = buf_.size();
    buf_.resize(n + 4);
    StoreLE32(buf_.data() + n, v);
  }
  void U64(std::uint64_t v) {
    const std::size_t n = buf_.size();
    buf_.resize(n + 8);
    StoreLE64(buf_.data() + n, v);
  }
  void Raw(ByteSpan b) { buf_.insert(buf_.end(), b.begin(), b.end()); }

  // Length-prefixed byte field. The prefix is a u32, so a field of 4 GiB or
  // more cannot be represented; silently truncating the length would make
  // the peer mis-frame everything that follows, so an oversized field is an
  // invariant violation at the writer, never on the wire.
  void LengthPrefixed(ByteSpan b) {
    LW_CHECK_MSG(b.size() <= std::numeric_limits<std::uint32_t>::max(),
                 "length-prefixed field exceeds u32 length prefix");
    U32(static_cast<std::uint32_t>(b.size()));
    Raw(b);
  }
  void String(std::string_view s) {
    LW_CHECK_MSG(s.size() <= std::numeric_limits<std::uint32_t>::max(),
                 "string field exceeds u32 length prefix");
    U32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const Bytes& bytes() const& { return buf_; }
  Bytes Take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class Reader {
 public:
  explicit Reader(ByteSpan data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return remaining() == 0; }

  Result<std::uint8_t> U8() {
    if (remaining() < 1) return Truncated("u8");
    return data_[pos_++];
  }
  Result<std::uint16_t> U16() {
    if (remaining() < 2) return Truncated("u16");
    const std::uint16_t v = static_cast<std::uint16_t>(
        data_[pos_] | (std::uint16_t{data_[pos_ + 1]} << 8));
    pos_ += 2;
    return v;
  }
  Result<std::uint32_t> U32() {
    if (remaining() < 4) return Truncated("u32");
    const std::uint32_t v = LoadLE32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }
  Result<std::uint64_t> U64() {
    if (remaining() < 8) return Truncated("u64");
    const std::uint64_t v = LoadLE64(data_.data() + pos_);
    pos_ += 8;
    return v;
  }
  Result<Bytes> Raw(std::size_t n) {
    if (remaining() < n) return Truncated("raw bytes");
    Bytes out(data_.begin() + static_cast<std::ptrdiff_t>(pos_),
              data_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  Result<Bytes> LengthPrefixed() {
    LW_ASSIGN_OR_RETURN(const std::uint32_t n, U32());
    if (remaining() < n) return Truncated("length-prefixed bytes");
    return Raw(n);
  }
  Result<std::string> String() {
    LW_ASSIGN_OR_RETURN(Bytes b, LengthPrefixed());
    return std::string(b.begin(), b.end());
  }

  // Requires that all input has been consumed (strict parsers).
  Status ExpectEnd() const {
    if (!AtEnd()) return ProtocolError("trailing bytes after message");
    return Status::Ok();
  }

 private:
  Status Truncated(const char* what) {
    return ProtocolError(std::string("truncated input reading ") + what);
  }

  ByteSpan data_;
  std::size_t pos_ = 0;
};

}  // namespace lw
