// Status / Result<T>: lightweight expected-style error handling.
//
// The codebase uses Status for recoverable failures (network faults,
// protocol violations, missing keys) and exceptions only for programming
// errors (see check.h). This mirrors the Core Guidelines' advice that error
// codes are appropriate where failure is "normal and expected".
#pragma once

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace lw {

enum class StatusCode {
  kOk = 0,
  kNotFound,        // key absent from the store
  kCollision,       // keyword hash collision detected
  kInvalidArgument,
  kFailedPrecondition,
  kPermissionDenied,  // access control: cannot decrypt
  kUnavailable,       // transport closed / network fault
  kProtocolError,     // malformed or unexpected wire message
  kResourceExhausted,
  kInternal,
  // Appended (wire format: error frames carry the numeric value).
  kDeadlineExceeded,  // a per-operation deadline expired before completion
};

inline const char* StatusCodeName(StatusCode c) {
  switch (c) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kCollision: return "COLLISION";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kProtocolError: return "PROTOCOL_ERROR";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  std::string ToString() const {
    if (ok()) return "OK";
    std::string s = StatusCodeName(code_);
    if (!message_.empty()) {
      s += ": ";
      s += message_;
    }
    return s;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status NotFoundError(std::string m) {
  return Status(StatusCode::kNotFound, std::move(m));
}
inline Status CollisionError(std::string m) {
  return Status(StatusCode::kCollision, std::move(m));
}
inline Status InvalidArgumentError(std::string m) {
  return Status(StatusCode::kInvalidArgument, std::move(m));
}
inline Status FailedPreconditionError(std::string m) {
  return Status(StatusCode::kFailedPrecondition, std::move(m));
}
inline Status PermissionDeniedError(std::string m) {
  return Status(StatusCode::kPermissionDenied, std::move(m));
}
inline Status UnavailableError(std::string m) {
  return Status(StatusCode::kUnavailable, std::move(m));
}
inline Status ProtocolError(std::string m) {
  return Status(StatusCode::kProtocolError, std::move(m));
}
inline Status ResourceExhaustedError(std::string m) {
  return Status(StatusCode::kResourceExhausted, std::move(m));
}
inline Status InternalError(std::string m) {
  return Status(StatusCode::kInternal, std::move(m));
}
inline Status DeadlineExceededError(std::string m) {
  return Status(StatusCode::kDeadlineExceeded, std::move(m));
}

// Result<T> holds either a value or a non-OK Status.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : value_(std::move(value)) {}
  Result(Status status) : status_(std::move(status)) {
    LW_CHECK_MSG(!status_.ok(), "Result constructed from OK status");
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Status& status() const { return status_; }

  T& value() & {
    LW_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  const T& value() const& {
    LW_CHECK_MSG(ok(), status_.ToString());
    return *value_;
  }
  T&& value() && {
    LW_CHECK_MSG(ok(), status_.ToString());
    return std::move(*value_);
  }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::optional<T> value_;
  Status status_;  // OK iff value_ present
};

}  // namespace lw

// Propagates a non-OK status from an expression returning Status.
#define LW_RETURN_IF_ERROR(expr)                \
  do {                                          \
    ::lw::Status lw_status_ = (expr);           \
    if (!lw_status_.ok()) return lw_status_;    \
  } while (0)

// Evaluates an expression returning Result<T>; on error, returns the status;
// otherwise assigns the value to `lhs` (which must be a declaration or lvalue).
#define LW_ASSIGN_OR_RETURN(lhs, expr)              \
  LW_ASSIGN_OR_RETURN_IMPL_(                        \
      LW_STATUS_CONCAT_(lw_result_, __LINE__), lhs, expr)

#define LW_STATUS_CONCAT_INNER_(a, b) a##b
#define LW_STATUS_CONCAT_(a, b) LW_STATUS_CONCAT_INNER_(a, b)

#define LW_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                              \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).value()
