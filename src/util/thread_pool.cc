#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "obs/metrics.h"
#include "util/numa.h"

namespace lw {
namespace {

// Best-effort NUMA affinity: with >1 node, worker i is pinned to node
// i % nodes so scan shards touch memory their worker first-faulted locally
// (see util/numa.h for why this is a hint, not a guarantee). Single-node
// hosts skip the syscall entirely.
void PinWorkerForNuma(std::size_t worker_index) {
  const numa::Topology& topo = numa::SystemTopology();
  if (topo.node_count() <= 1) return;
  numa::PinCurrentThreadToNode(
      topo.nodes[worker_index % topo.nodes.size()]);
}

// True while this thread is executing chunks of some region (worker thread
// or participating caller). Nested ParallelFor calls check it and run
// inline: blocking on region_mu_ from inside a chunk would deadlock.
thread_local bool tls_in_region = false;

}  // namespace

// One ParallelFor invocation. Shared-owned: a worker that wakes up late can
// still be holding the region (touching `next`) after the last chunk
// finished and the caller returned, so lifetime must outlast the slowest
// participant, not just the last chunk.
struct ThreadPool::Region {
  const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t chunk = 1;
  std::size_t nchunks = 0;
  std::atomic<std::size_t> next{0};  // handoff cursor: next chunk to claim
  std::atomic<std::size_t> done{0};  // chunks fully executed

  std::mutex done_mu;
  std::condition_variable done_cv;
  std::exception_ptr error;  // first exception from fn, guarded by done_mu
};

int ThreadPool::HardwareThreads() {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<int>(n);
}

ThreadPool::ThreadPool(int threads) {
  if (threads <= 0) threads = HardwareThreads();
  workers_.reserve(static_cast<std::size_t>(threads - 1));
  for (int i = 0; i + 1 < threads; ++i) {
    workers_.emplace_back([this, i] {
      PinWorkerForNuma(static_cast<std::size_t>(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::RunChunks(Region& region, bool stolen) {
  tls_in_region = true;
  for (;;) {
    const std::size_t i = region.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= region.nchunks) break;
    obs::M().pool_chunks.Inc();
    if (stolen) obs::M().pool_chunks_stolen.Inc();
    const std::size_t b = region.begin + i * region.chunk;
    const std::size_t e = std::min(region.end, b + region.chunk);
    try {
      (*region.fn)(b, e);
    } catch (...) {
      std::lock_guard<std::mutex> lock(region.done_mu);
      if (!region.error) region.error = std::current_exception();
    }
    if (region.done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        region.nchunks) {
      // Last chunk: wake the caller blocked in ParallelFor. Taking done_mu
      // orders the notify against the caller's predicate check.
      std::lock_guard<std::mutex> lock(region.done_mu);
      region.done_cv.notify_all();
    }
  }
  tls_in_region = false;
}

void ThreadPool::WorkerLoop() {
  std::uint64_t seen_epoch = 0;
  for (;;) {
    std::shared_ptr<Region> region;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [&] {
        return stop_ || (active_ != nullptr && epoch_ != seen_epoch);
      });
      if (stop_) return;
      seen_epoch = epoch_;
      region = active_;
    }
    RunChunks(*region, /*stolen=*/true);
  }
}

void ThreadPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t range = end - begin;
  if (workers_.empty() || range <= grain || tls_in_region) {
    fn(begin, end);
    return;
  }
  obs::M().pool_parallel_ops.Inc();

  // Static partition, ~4 chunks per thread so a straggling worker hands
  // leftover chunks to idle peers; `grain` floors the chunk size so tiny
  // ranges do not shred into per-element dispatch.
  const std::size_t target_chunks =
      static_cast<std::size_t>(thread_count()) * 4;
  const std::size_t chunk =
      std::max(grain, (range + target_chunks - 1) / target_chunks);

  auto region = std::make_shared<Region>();
  region->fn = &fn;
  region->begin = begin;
  region->end = end;
  region->chunk = chunk;
  region->nchunks = (range + chunk - 1) / chunk;

  // One region at a time: concurrent ParallelFor callers queue here rather
  // than interleave chunks (the pool is the contended resource either way).
  std::lock_guard<std::mutex> region_lock(region_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_ = region;
    ++epoch_;
  }
  cv_.notify_all();

  RunChunks(*region, /*stolen=*/false);  // the caller always participates

  {
    std::unique_lock<std::mutex> lock(region->done_mu);
    region->done_cv.wait(lock, [&] {
      return region->done.load(std::memory_order_acquire) == region->nchunks;
    });
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    active_.reset();
  }
  if (region->error) std::rethrow_exception(region->error);
}

}  // namespace lw
