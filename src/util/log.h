// Minimal leveled logger. Thread-safe; writes to stderr.
//
// Usage: LW_LOG(Info) << "served " << n << " requests";
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace lw {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Messages below this level are discarded. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLogLine(LogLevel level, const std::string& line);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { EmitLogLine(level_, os_.str()); }

  template <typename T>
  LogMessage& operator<<(const T& v) {
    if (level_ >= GetLogLevel()) os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace internal
}  // namespace lw

#define LW_LOG(severity) \
  ::lw::internal::LogMessage(::lw::LogLevel::k##severity)
