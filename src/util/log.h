// Minimal leveled logger. Thread-safe; writes to stderr.
//
// Usage: LW_LOG(Info) << "served " << n << " requests";
//
// Disabled lines cost one atomic level load and one branch: LW_LOG
// short-circuits BEFORE constructing the LogMessage, so no ostringstream is
// built and the streamed operands are never even evaluated (an expensive
// argument like `Summarize(db)` runs only when the line is live). See
// docs/PERFORMANCE.md ("Logging cost") for the microbench methodology.
#pragma once

#include <mutex>
#include <sstream>
#include <string>

namespace lw {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

// Messages below this level are discarded. Default: kInfo.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLogLine(LogLevel level, const std::string& line);

class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;
  ~LogMessage() { EmitLogLine(level_, os_.str()); }

  // Only constructed when the level is enabled (see LW_LOG), so streaming
  // is unconditional.
  template <typename T>
  LogMessage& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

// Swallows the LogMessage chain so both arms of LW_LOG's conditional are
// void. operator& binds looser than operator<<, so the stream completes
// first.
struct Voidify {
  void operator&(const LogMessage&) const {}
};

}  // namespace internal
}  // namespace lw

// A single expression (usable in unbraced if/else). The level check runs
// before any LogMessage exists; when the line is disabled the entire
// streaming chain to its right is dead code for this evaluation.
#define LW_LOG(severity)                                       \
  (::lw::LogLevel::k##severity < ::lw::GetLogLevel())          \
      ? (void)0                                                \
      : ::lw::internal::Voidify() &                            \
            ::lw::internal::LogMessage(::lw::LogLevel::k##severity)
