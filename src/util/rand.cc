#include "util/rand.h"

#include <cstdio>
#include <mutex>

#include "util/check.h"

namespace lw {
namespace {

// Buffered reader over /dev/urandom. A process-wide lock keeps refills
// thread-safe; the buffer amortizes syscall cost for the many small draws
// the DPF layer makes.
class UrandomPool {
 public:
  void Read(MutableByteSpan out) {
    std::lock_guard<std::mutex> lock(mu_);
    std::size_t done = 0;
    while (done < out.size()) {
      if (pos_ == buf_.size()) Refill();
      const std::size_t take =
          std::min(out.size() - done, buf_.size() - pos_);
      std::copy(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + take),
                out.begin() + static_cast<std::ptrdiff_t>(done));
      pos_ += take;
      done += take;
    }
  }

 private:
  void Refill() {
    if (file_ == nullptr) {
      file_ = std::fopen("/dev/urandom", "rb");
      LW_CHECK_MSG(file_ != nullptr, "cannot open /dev/urandom");
    }
    const std::size_t got = std::fread(buf_.data(), 1, buf_.size(), file_);
    LW_CHECK_MSG(got == buf_.size(), "short read from /dev/urandom");
    pos_ = 0;
  }

  std::mutex mu_;
  std::FILE* file_ = nullptr;
  Bytes buf_ = Bytes(4096);
  std::size_t pos_ = 4096;  // start empty
};

UrandomPool& Pool() {
  // Deliberately leaked singleton: destruction order at exit is undefined and
  // other threads may still draw randomness. Suppressed in tools/lint/lsan.supp.
  static UrandomPool* pool = new UrandomPool();  // lwlint: allow(naked-new)
  return *pool;
}

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void SecureRandomBytes(MutableByteSpan out) { Pool().Read(out); }

Bytes SecureRandom(std::size_t n) {
  Bytes out(n);
  SecureRandomBytes(out);
  return out;
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::UniformInt(std::uint64_t bound) {
  LW_CHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

void Rng::Fill(MutableByteSpan out) {
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    StoreLE64(out.data() + i, Next());
    i += 8;
  }
  if (i < out.size()) {
    std::uint8_t tail[8];
    StoreLE64(tail, Next());
    std::copy(tail, tail + (out.size() - i), out.data() + i);
  }
}

}  // namespace lw
