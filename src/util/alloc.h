// Aligned allocation helpers.
//
// The PIR record scan streams whole cache lines and wants vector loads on
// aligned addresses; AlignedBytes is a std::vector whose backing store is
// always 64-byte (cache-line) aligned so row starts stay aligned when the
// row stride is a multiple of 64 (see pir::BlobDatabase).
//
// HugeBytes extends this for multi-megabyte arenas (the record store a
// scan streams end to end): allocations of at least one hugepage are
// 2 MiB-aligned and madvise(MADV_HUGEPAGE)d, asking the kernel for
// transparent hugepages so a 1 GiB shard costs ~512 TLB entries instead of
// ~262k. Everything degrades gracefully — when THP is disabled, madvise
// fails, or the platform is not Linux, the memory is still valid
// cache-line-aligned memory and the scan just pays 4 KiB TLB pressure.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#if defined(__linux__)
#include <sys/mman.h>
#endif

namespace lw {

inline constexpr std::size_t kCacheLineSize = 64;

// Transparent hugepage quantum on x86-64 Linux.
inline constexpr std::size_t kHugePageSize = std::size_t{2} << 20;

// Rounds n up to the next multiple of `alignment` (a power of two).
constexpr std::size_t AlignUp(std::size_t n, std::size_t alignment) {
  return (n + alignment - 1) & ~(alignment - 1);
}

// Minimal C++17 allocator over std::aligned_alloc. Alignment must be a
// power of two; allocation sizes are rounded up to a multiple of it (an
// aligned_alloc requirement).
template <typename T, std::size_t Alignment = kCacheLineSize>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    const std::size_t bytes = AlignUp(n * sizeof(T), Alignment);
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

// Byte buffer whose data() is always kCacheLineSize-aligned.
using AlignedBytes =
    std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>>;

namespace internal {
inline std::atomic<bool>& HugepagesEnabledFlag() {
  static std::atomic<bool> enabled{true};
  return enabled;
}
inline std::atomic<std::uint64_t>& HugepageAdvisedBytesCounter() {
  static std::atomic<std::uint64_t> bytes{0};
  return bytes;
}
}  // namespace internal

// Process-wide kill switch for the hugepage madvise (--no-hugepages, and
// A/B measurement in the benches). Allocations made while disabled are
// plain cache-line-aligned memory.
inline void SetHugepagesEnabled(bool enabled) {
  internal::HugepagesEnabledFlag().store(enabled, std::memory_order_relaxed);
}
inline bool HugepagesEnabled() {
  return internal::HugepagesEnabledFlag().load(std::memory_order_relaxed);
}

// Total bytes successfully madvise(MADV_HUGEPAGE)d so far — lets tests and
// the bench JSON confirm whether the hugepage path actually engaged on this
// host (THP set to "never" makes madvise fail silently otherwise).
inline std::uint64_t HugepageAdvisedBytes() {
  return internal::HugepageAdvisedBytesCounter().load(
      std::memory_order_relaxed);
}

// Like AlignedAllocator, but allocations of at least one hugepage are
// 2 MiB-aligned and madvised toward transparent hugepages. Small
// allocations keep the cheap cache-line alignment (aligning a 4 KiB vector
// to 2 MiB would waste the rest of the reservation). The advice is
// best-effort: failure (THP disabled, old kernel, non-Linux) is ignored
// and the allocation is still correct.
template <typename T>
class HugepageAllocator {
 public:
  using value_type = T;

  HugepageAllocator() = default;
  template <typename U>
  HugepageAllocator(const HugepageAllocator<U>&) {}

  template <typename U>
  struct rebind {
    using other = HugepageAllocator<U>;
  };

  T* allocate(std::size_t n) {
    const std::size_t raw = n * sizeof(T);
    const bool huge = HugepagesEnabled() && raw >= kHugePageSize;
    const std::size_t alignment = huge ? kHugePageSize : kCacheLineSize;
    const std::size_t bytes = AlignUp(raw, alignment);
    void* p = std::aligned_alloc(alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
#if defined(__linux__)
    if (huge && madvise(p, bytes, MADV_HUGEPAGE) == 0) {
      internal::HugepageAdvisedBytesCounter().fetch_add(
          bytes, std::memory_order_relaxed);
    }
#endif
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const HugepageAllocator&, const HugepageAllocator&) {
    return true;
  }
  friend bool operator!=(const HugepageAllocator&, const HugepageAllocator&) {
    return false;
  }
};

// Byte buffer for large arenas: data() is at least kCacheLineSize-aligned
// always, and kHugePageSize-aligned + THP-advised once it holds ≥ 2 MiB.
using HugeBytes = std::vector<std::uint8_t, HugepageAllocator<std::uint8_t>>;

}  // namespace lw
