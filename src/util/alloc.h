// Aligned allocation helpers.
//
// The PIR record scan streams whole cache lines and wants 32-byte AVX2
// loads on aligned addresses; AlignedBytes is a std::vector whose backing
// store is always 64-byte (cache-line) aligned so row starts stay aligned
// when the row stride is a multiple of 64 (see pir::BlobDatabase).
#pragma once

#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

namespace lw {

inline constexpr std::size_t kCacheLineSize = 64;

// Rounds n up to the next multiple of `alignment` (a power of two).
constexpr std::size_t AlignUp(std::size_t n, std::size_t alignment) {
  return (n + alignment - 1) & ~(alignment - 1);
}

// Minimal C++17 allocator over std::aligned_alloc. Alignment must be a
// power of two; allocation sizes are rounded up to a multiple of it (an
// aligned_alloc requirement).
template <typename T, std::size_t Alignment = kCacheLineSize>
class AlignedAllocator {
 public:
  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  T* allocate(std::size_t n) {
    const std::size_t bytes = AlignUp(n * sizeof(T), Alignment);
    void* p = std::aligned_alloc(Alignment, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }
  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
  friend bool operator!=(const AlignedAllocator&, const AlignedAllocator&) {
    return false;
  }
};

// Byte buffer whose data() is always kCacheLineSize-aligned.
using AlignedBytes =
    std::vector<std::uint8_t, AlignedAllocator<std::uint8_t>>;

}  // namespace lw
