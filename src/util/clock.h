// Injectable monotonic time.
//
// Everything in the resilience layer — transport deadlines, retry backoff,
// browser pacing — measures time through this interface so tests can run
// the full failure/recovery state machine deterministically, with zero
// wall-clock sleeps (docs/ROBUSTNESS.md). Production code uses
// Clock::Real(); tests inject a FakeClock whose Sleep() *advances* the
// fake time instead of blocking.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

namespace lw {

class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic now. Comparable only against the same clock instance.
  virtual std::chrono::nanoseconds Now() const = 0;

  // Blocks the caller for `d` of this clock's time. The real clock sleeps;
  // a fake clock advances its time and returns immediately.
  virtual void SleepFor(std::chrono::nanoseconds d) = 0;

  // The process-wide wall clock (steady_clock + this_thread::sleep_for).
  // Never destroyed: deadline objects may outlive static teardown order.
  static Clock& Real();
};

// Deterministic clock for tests: time moves only when the test says so.
// Thread-safe — a session thread may read Now() while the test thread
// advances it, and SleepFor (retry backoff) advances atomically.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(std::chrono::nanoseconds start = {}) : now_(start.count()) {}

  std::chrono::nanoseconds Now() const override {
    return std::chrono::nanoseconds(now_.load(std::memory_order_acquire));
  }

  void SleepFor(std::chrono::nanoseconds d) override {
    Advance(d);
    sleeps_.fetch_add(1, std::memory_order_relaxed);
  }

  void Advance(std::chrono::nanoseconds d) {
    now_.fetch_add(d.count(), std::memory_order_acq_rel);
  }

  // How many times something "slept" against this clock — lets tests assert
  // that backoff happened without ever waiting for it.
  std::uint64_t sleep_calls() const {
    return sleeps_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> now_;
  std::atomic<std::uint64_t> sleeps_{0};
};

}  // namespace lw
