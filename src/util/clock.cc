#include "util/clock.h"

#include <thread>

namespace lw {
namespace {

class RealClock final : public Clock {
 public:
  std::chrono::nanoseconds Now() const override {
    return std::chrono::steady_clock::now().time_since_epoch();
  }

  void SleepFor(std::chrono::nanoseconds d) override {
    if (d > std::chrono::nanoseconds::zero()) std::this_thread::sleep_for(d);
  }
};

}  // namespace

Clock& Clock::Real() {
  // Intentionally leaked singleton: deadline objects captured in detached
  // server threads may consult it during process teardown, after static
  // destructors would have run.
  // lwlint: allow(naked-new)
  static Clock* const kReal = new RealClock;
  return *kReal;
}

}  // namespace lw
