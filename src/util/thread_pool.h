// Fixed-size worker pool with a chunked ParallelFor.
//
// The ZLTP server's per-request cost is two embarrassingly parallel passes
// (DPF full-domain expansion and the record XOR scan — paper §5.1), and the
// paper's latency figures assume the server "can use multiple cores". This
// pool is the shared substrate for both hot paths: a fixed worker set is
// spawned once per server and reused across requests, so the steady state
// pays no thread creation and each worker keeps its thread-local DPF
// scratch buffers warm.
//
// Scheduling is static partitioning with work handoff: ParallelFor cuts the
// range into a few chunks per thread (never smaller than `grain`) and
// workers pull chunks off a shared atomic cursor, so a straggler sheds its
// remaining chunks to idle peers without any per-element synchronization.
// The calling thread always participates, which gives two graceful
// fallbacks for free: a pool built with threads <= 1 spawns no workers and
// runs everything inline, and nested ParallelFor calls (from inside a chunk
// body) also run inline instead of deadlocking.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace lw {

class ThreadPool {
 public:
  // Total threads ParallelFor may use, including the caller: a pool built
  // with `threads` spawns threads-1 workers. threads <= 0 selects
  // HardwareThreads().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of threads a ParallelFor can occupy (workers + caller); >= 1.
  int thread_count() const { return static_cast<int>(workers_.size()) + 1; }

  // Invokes fn(chunk_begin, chunk_end) over a disjoint partition of
  // [begin, end), with every chunk at least `grain` elements (except the
  // last). Blocks until all chunks have completed; exceptions thrown by fn
  // are rethrown here (first one wins). fn runs concurrently on up to
  // thread_count() threads — chunks must not touch overlapping state.
  // Empty ranges, single-thread pools, ranges no larger than `grain`, and
  // nested calls all run fn(begin, end) inline on the caller.
  void ParallelFor(std::size_t begin, std::size_t end, std::size_t grain,
                   const std::function<void(std::size_t, std::size_t)>& fn);

  // std::thread::hardware_concurrency(), clamped to at least 1.
  static int HardwareThreads();

 private:
  struct Region;

  void WorkerLoop();
  // Pulls chunks from `region` until its cursor is exhausted. `stolen`
  // marks chunks executed by a pool worker (vs the submitting caller) in
  // the lw_pool_chunks_stolen_total metric.
  static void RunChunks(Region& region, bool stolen);

  std::vector<std::thread> workers_;

  std::mutex mu_;  // guards active_/epoch_/stop_ and pairs with cv_
  std::condition_variable cv_;
  // Heap-shared so late-waking workers can still hold the region briefly
  // after the caller has moved on (see ParallelFor).
  std::shared_ptr<Region> active_;
  std::uint64_t epoch_ = 0;  // bumped per region so workers never re-run one
  bool stop_ = false;

  std::mutex region_mu_;  // serializes concurrent ParallelFor callers
};

}  // namespace lw
