// Monotonic stopwatch for benchmarks and latency accounting.
#pragma once

#include <chrono>

namespace lw {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace lw
