// Random number generation.
//
// SecureRandom draws from the operating system (used for cryptographic key
// material). Rng is a fast deterministic generator (xoshiro256**) for
// workloads, simulations, and tests that need reproducibility.
#pragma once

#include <cstdint>

#include "util/bytes.h"

namespace lw {

// Fills `out` with cryptographically secure random bytes from the OS.
void SecureRandomBytes(MutableByteSpan out);

// Returns `n` cryptographically secure random bytes.
Bytes SecureRandom(std::size_t n);

// Deterministic xoshiro256** generator. Not cryptographically secure;
// use only for workload generation and reproducible tests.
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  std::uint64_t Next();

  // Uniform in [0, bound) via rejection sampling (unbiased). bound > 0.
  std::uint64_t UniformInt(std::uint64_t bound);

  // Uniform double in [0, 1).
  double UniformDouble();

  void Fill(MutableByteSpan out);

 private:
  std::uint64_t s_[4];
};

}  // namespace lw
