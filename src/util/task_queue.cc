#include "util/task_queue.h"

#include <utility>

#include "util/check.h"

namespace lw {

TaskQueue::TaskQueue(int workers) {
  LW_CHECK_MSG(workers >= 1, "TaskQueue needs at least one worker");
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TaskQueue::~TaskQueue() { Stop(); }

bool TaskQueue::Post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return false;
    tasks_.push_back(std::move(task));
  }
  cv_.notify_one();
  return true;
}

void TaskQueue::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && workers_.empty()) return;
    stopping_ = true;
  }
  cv_.notify_all();
  // Workers drain what is already queued before exiting, so every accepted
  // Post still runs.
  std::vector<std::thread> workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    workers.swap(workers_);
  }
  for (std::thread& w : workers) {
    if (w.joinable()) w.join();
  }
}

std::size_t TaskQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return tasks_.size();
}

void TaskQueue::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }
    task();
  }
}

}  // namespace lw
