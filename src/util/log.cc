#include "util/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>

namespace lw {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kInfo};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarning: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(level); }
LogLevel GetLogLevel() { return g_level.load(); }

namespace internal {

void EmitLogLine(LogLevel level, const std::string& line) {
  if (level < GetLogLevel()) return;
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%lld.%03lld %s] %s\n",
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), LevelName(level),
               line.c_str());
}

}  // namespace internal
}  // namespace lw
