// Byte-buffer aliases and small helpers used across the lightweb codebase.
//
// We standardize on std::vector<uint8_t> for owned buffers and
// std::span<const uint8_t> for read-only views (Core Guidelines I.13:
// do not pass an array as a single pointer).
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace lw {

using Bytes = std::vector<std::uint8_t>;
using ByteSpan = std::span<const std::uint8_t>;
using MutableByteSpan = std::span<std::uint8_t>;

// Copies a string's characters into a fresh byte buffer.
inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

// Interprets a byte span as text. The bytes are copied.
inline std::string ToString(ByteSpan b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

// Constant-time comparisons for secret material live in crypto/ct.h
// (lw::crypto::ct::Eq and friends); nothing in util/ may compare secrets.

// XORs `src` into `dst`; the spans must be the same length.
inline void XorInto(MutableByteSpan dst, ByteSpan src) {
  for (std::size_t i = 0; i < dst.size(); ++i) dst[i] ^= src[i];
}

// Best-effort secure wipe that the optimizer may not elide.
inline void SecureZero(MutableByteSpan b) {
  volatile std::uint8_t* p = b.data();
  for (std::size_t i = 0; i < b.size(); ++i) p[i] = 0;
}

// Unaligned little-endian loads/stores (safe on all platforms via memcpy).
inline std::uint32_t LoadLE32(const std::uint8_t* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
inline std::uint64_t LoadLE64(const std::uint8_t* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
  return v;
}
inline void StoreLE32(std::uint8_t* p, std::uint32_t v) {
  std::memcpy(p, &v, sizeof v);
}
inline void StoreLE64(std::uint8_t* p, std::uint64_t v) {
  std::memcpy(p, &v, sizeof v);
}
inline std::uint32_t LoadBE32(const std::uint8_t* p) {
  return (std::uint32_t{p[0]} << 24) | (std::uint32_t{p[1]} << 16) |
         (std::uint32_t{p[2]} << 8) | std::uint32_t{p[3]};
}
inline void StoreBE32(std::uint8_t* p, std::uint32_t v) {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}
inline void StoreBE64(std::uint8_t* p, std::uint64_t v) {
  StoreBE32(p, static_cast<std::uint32_t>(v >> 32));
  StoreBE32(p + 4, static_cast<std::uint32_t>(v));
}

}  // namespace lw
