#include "util/numa.h"

#include <algorithm>
#include <charconv>
#include <fstream>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace lw::numa {
namespace {

// Parses a decimal integer from [p, end); returns {value, rest} or
// {-1, p} on no digits.
std::pair<int, const char*> ParseInt(const char* p, const char* end) {
  int value = 0;
  const auto [rest, ec] = std::from_chars(p, end, value);
  if (ec != std::errc() || rest == p) return {-1, p};
  return {value, rest};
}

}  // namespace

std::vector<int> ParseCpuList(std::string_view list) {
  std::vector<int> cpus;
  const char* p = list.data();
  const char* const end = p + list.size();
  while (p < end) {
    auto [lo, after_lo] = ParseInt(p, end);
    if (lo < 0) {
      ++p;  // skip junk (including the ',' separator and trailing '\n')
      continue;
    }
    p = after_lo;
    int hi = lo;
    if (p < end && *p == '-') {
      auto [parsed_hi, after_hi] = ParseInt(p + 1, end);
      if (parsed_hi >= lo) {
        hi = parsed_hi;
        p = after_hi;
      }
    }
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

Topology DetectTopology() {
  Topology topo;
#if defined(__linux__)
  // Node ids are dense in practice but the kernel only promises "present
  // nodes have directories", so probe a generous range and stop after a
  // long run of gaps.
  int misses = 0;
  for (int id = 0; id < 4096 && misses < 16; ++id) {
    const std::string path =
        "/sys/devices/system/node/node" + std::to_string(id) + "/cpulist";
    std::ifstream in(path);
    if (!in) {
      ++misses;
      continue;
    }
    misses = 0;
    std::string line;
    std::getline(in, line);
    Node node;
    node.id = id;
    node.cpus = ParseCpuList(line);
    if (!node.cpus.empty()) topo.nodes.push_back(std::move(node));
  }
#endif
  if (topo.nodes.empty()) topo.nodes.push_back(Node{});  // synthetic node 0
  return topo;
}

const Topology& SystemTopology() {
  static const Topology topo = DetectTopology();
  return topo;
}

bool PinCurrentThreadToNode(const Node& node) {
  if (node.cpus.empty()) return false;
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  for (const int cpu : node.cpus) {
    if (cpu >= 0 && cpu < CPU_SETSIZE) CPU_SET(cpu, &set);
  }
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  return false;
#endif
}

}  // namespace lw::numa
