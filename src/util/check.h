// Precondition checking.
//
// LW_CHECK is for programming errors (violated invariants/preconditions):
// it throws lw::InvariantViolation, which callers are not expected to catch.
// Recoverable conditions (I/O failures, protocol errors, missing keys) use
// lw::Status / lw::Result instead — see status.h.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace lw {

class InvariantViolation : public std::logic_error {
 public:
  explicit InvariantViolation(const std::string& what)
      : std::logic_error(what) {}
};

namespace internal {
[[noreturn]] inline void CheckFailed(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "LW_CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw InvariantViolation(os.str());
}
}  // namespace internal

}  // namespace lw

#define LW_CHECK(expr)                                              \
  do {                                                              \
    if (!(expr)) {                                                  \
      ::lw::internal::CheckFailed(#expr, __FILE__, __LINE__, "");   \
    }                                                               \
  } while (0)

#define LW_CHECK_MSG(expr, msg)                                          \
  do {                                                                   \
    if (!(expr)) {                                                       \
      ::lw::internal::CheckFailed(#expr, __FILE__, __LINE__, (msg));     \
    }                                                                    \
  } while (0)
