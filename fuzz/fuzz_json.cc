// libFuzzer harness for the json decoder target (see fuzz/targets.h).
#include <cstddef>
#include <cstdint>

#include "fuzz/targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return lw::fuzz::FuzzJson(data, size);
}
