// Minimal property-based testing helper for the decoder surfaces.
//
// A property test draws random inputs from a seeded lw::Rng (so every run is
// reproducible), checks a boolean property, and — when the property fails —
// greedily minimizes the failing byte string before reporting it, so the
// counterexample that lands in a test log (and then in fuzz/corpus/ as a
// regression input) is small enough to reason about.
//
// Usage, from a gtest:
//
//   proptest::Config cfg;
//   auto cex = proptest::FindCounterexample(
//       cfg,
//       [](Rng& rng) { return /* Bytes */ GenerateInput(rng); },
//       [](const Bytes& input) { return /* bool */ HoldsFor(input); });
//   EXPECT_FALSE(cex.has_value()) << proptest::Describe(*cex);
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

#include "util/bytes.h"
#include "util/hex.h"
#include "util/rand.h"

namespace lw::proptest {

struct Config {
  int iterations = 300;
  std::uint64_t seed = 0xC0FFEE;
  // Bound on shrink attempts; greedy chunk-removal plus byte-lowering
  // converges long before this for any realistic input.
  int max_shrink_steps = 4096;
};

// Greedy minimizer: repeatedly (a) deletes chunks (halves down to single
// bytes) and (b) lowers bytes toward zero, keeping any change that still
// fails the property. The result is 1-minimal w.r.t. chunk deletion.
template <typename PropFn>
Bytes Shrink(const Config& cfg, Bytes failing, PropFn prop) {
  int steps = 0;
  bool progress = true;
  while (progress && steps < cfg.max_shrink_steps) {
    progress = false;
    // Chunk deletion, large chunks first.
    for (std::size_t chunk = failing.size(); chunk >= 1; chunk /= 2) {
      for (std::size_t off = 0; off + chunk <= failing.size();) {
        Bytes candidate;
        candidate.reserve(failing.size() - chunk);
        candidate.insert(candidate.end(), failing.begin(),
                         failing.begin() + static_cast<std::ptrdiff_t>(off));
        candidate.insert(
            candidate.end(),
            failing.begin() + static_cast<std::ptrdiff_t>(off + chunk),
            failing.end());
        ++steps;
        if (!prop(candidate)) {
          failing = std::move(candidate);
          progress = true;  // offsets shift; retry same position
        } else {
          off += chunk;
        }
        if (steps >= cfg.max_shrink_steps) return failing;
      }
      if (chunk == 1) break;
    }
    // Byte lowering (0, then halving toward the current value).
    for (std::size_t i = 0; i < failing.size(); ++i) {
      for (std::uint8_t v : {std::uint8_t{0}, std::uint8_t{1},
                             static_cast<std::uint8_t>(failing[i] / 2)}) {
        if (v >= failing[i]) continue;
        Bytes candidate = failing;
        candidate[i] = v;
        ++steps;
        if (!prop(candidate)) {
          failing = std::move(candidate);
          progress = true;
          break;
        }
        if (steps >= cfg.max_shrink_steps) return failing;
      }
    }
  }
  return failing;
}

// Runs `prop` on `cfg.iterations` inputs drawn from `gen`. Returns the
// minimized first counterexample, or nullopt when every iteration passed.
template <typename GenFn, typename PropFn>
std::optional<Bytes> FindCounterexample(const Config& cfg, GenFn gen,
                                        PropFn prop) {
  Rng rng(cfg.seed);
  for (int i = 0; i < cfg.iterations; ++i) {
    Bytes input = gen(rng);
    if (prop(input)) continue;
    return Shrink(cfg, std::move(input), prop);
  }
  return std::nullopt;
}

// Human-readable report line for a counterexample ("repro: feed these bytes
// to the decoder / check them into fuzz/corpus/<target>/").
inline std::string Describe(const Bytes& cex) {
  return "minimal counterexample (" + std::to_string(cex.size()) +
         " bytes, hex): " + HexEncode(cex);
}

}  // namespace lw::proptest
