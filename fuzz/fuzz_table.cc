// libFuzzer harness for the table decoder target (see fuzz/targets.h).
#include <cstddef>
#include <cstdint>

#include "fuzz/targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return lw::fuzz::FuzzTable(data, size);
}
