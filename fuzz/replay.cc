#include "fuzz/replay.h"

#include <algorithm>
#include <filesystem>
#include <vector>

#include "fuzz/targets.h"
#include "util/bytes.h"
#include "util/file.h"

namespace lw::fuzz {

Result<ReplayStats> ReplayCorpus(const std::string& corpus_root) {
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(corpus_root, ec)) {
    return InvalidArgumentError("corpus root is not a directory: " +
                                corpus_root);
  }

  ReplayStats stats;
  std::vector<std::string> covered;
  std::vector<fs::path> dirs;
  for (const auto& entry : fs::directory_iterator(corpus_root, ec)) {
    if (entry.is_directory()) dirs.push_back(entry.path());
  }
  std::sort(dirs.begin(), dirs.end());

  for (const fs::path& dir : dirs) {
    const std::string name = dir.filename().string();
    const TargetFn target = FindTarget(name);
    if (target == nullptr) {
      return InvalidArgumentError("corpus directory names no fuzz target: " +
                                  name);
    }
    std::vector<fs::path> files;
    for (const auto& entry : fs::recursive_directory_iterator(dir, ec)) {
      if (entry.is_regular_file()) files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
    if (files.empty()) {
      return FailedPreconditionError("empty corpus for target: " + name);
    }
    for (const fs::path& file : files) {
      LW_ASSIGN_OR_RETURN(const std::string contents,
                          ReadFileToString(file.string()));
      const Bytes bytes = ToBytes(contents);
      target(bytes.data(), bytes.size());
      ++stats.inputs;
    }
    covered.push_back(name);
    ++stats.targets;
  }

  for (const Target& t : AllTargets()) {
    if (std::find(covered.begin(), covered.end(), t.name) == covered.end()) {
      return FailedPreconditionError(
          std::string("target has no corpus directory: ") + t.name);
    }
  }
  return stats;
}

}  // namespace lw::fuzz
