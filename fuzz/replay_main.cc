// fuzz_replay <corpus_root> — deterministic corpus replay (ctest fuzz.replay).
#include <cstdio>

#include "fuzz/replay.h"

int main(int argc, char** argv) {
  const std::string root = argc > 1 ? argv[1] : "fuzz/corpus";
  const auto stats = lw::fuzz::ReplayCorpus(root);
  if (!stats.ok()) {
    std::fprintf(stderr, "fuzz_replay: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf("fuzz_replay: %zu inputs across %zu targets, all clean\n",
              stats->inputs, stats->targets);
  return 0;
}
