// libFuzzer harness for the hex decoder target (see fuzz/targets.h).
#include <cstddef>
#include <cstdint>

#include "fuzz/targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return lw::fuzz::FuzzHex(data, size);
}
