// libFuzzer harness for the zltp decoder target (see fuzz/targets.h).
#include <cstddef>
#include <cstdint>

#include "fuzz/targets.h"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  return lw::fuzz::FuzzZltp(data, size);
}
