// Deterministic corpus replay: runs every checked-in input under
// fuzz/corpus/<target>/ through its target, without libFuzzer. This is what
// the tier-1 ctest `fuzz.replay` and tests/fuzz_replay_test.cc execute, so
// regression inputs keep guarding the decoders on every build and compiler.
#pragma once

#include <cstddef>
#include <string>

#include "util/status.h"

namespace lw::fuzz {

struct ReplayStats {
  std::size_t targets = 0;  // corpus subdirectories replayed
  std::size_t inputs = 0;   // files fed to targets
};

// Replays every file under `corpus_root`/<target>/. Fails if the root is
// missing, a subdirectory names no known target, a file cannot be read, or
// any of the six targets has no corpus (an empty corpus silently stops
// guarding its decoder). Crashing inputs abort the process — that is the
// point: the minimized input gets checked in and must stay green forever.
Result<ReplayStats> ReplayCorpus(const std::string& corpus_root);

}  // namespace lw::fuzz
