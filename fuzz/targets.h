// Fuzz targets for every decoder surface that consumes attacker-controlled
// bytes (paper §2: a malicious peer can send arbitrary frames even though it
// learns nothing from honest ones).
//
// Each target is an ordinary function so that three drivers can share it:
//   * libFuzzer harnesses (fuzz/fuzz_<name>.cc, built with -DLIGHTWEB_FUZZ=ON
//     under clang) for coverage-guided exploration;
//   * the deterministic corpus-replay runner (fuzz/replay_main.cc, registered
//     as the tier-1 ctest `fuzz.replay`) so checked-in corpora run on every
//     build even without clang;
//   * tests/fuzz_replay_test.cc, which replays the same corpora under gtest.
//
// Contract: a target must return 0 and must not crash, leak, or trip a
// sanitizer for ANY input. Inputs the decoder accepts are additionally held
// to their encode→decode→re-encode roundtrip invariants via LW_CHECK, so a
// logic regression aborts the process and the fuzzer minimizes it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string_view>
#include <vector>

namespace lw::fuzz {

// json::Parse + canonical Write/Parse fixpoint.
int FuzzJson(const std::uint8_t* data, std::size_t size);

// zltp::Decode{ClientHello,ServerHello,GetRequest,GetResponse,Error}; the
// first input byte selects the frame type, the rest is the payload.
int FuzzZltp(const std::uint8_t* data, std::size_t size);

// dpf::DpfKey::Deserialize and dpf::SubtreeKey::Deserialize, plus evaluation
// consistency (EvalFull vs EvalPoint, SplitForShards) on small domains.
int FuzzDpf(const std::uint8_t* data, std::size_t size);

// util::Reader driven by an op-script derived from the input, plus a
// Writer→Reader roundtrip of the raw bytes.
int FuzzReader(const std::uint8_t* data, std::size_t size);

// util::HexDecode / HexEncode roundtrip.
int FuzzHex(const std::uint8_t* data, std::size_t size);

// Cuckoo/keyword table load surfaces: lightweb::LoadUniverseSnapshot into a
// tiny universe (exercises JSON, hex, path, and LightScript template
// parsing) plus pir::UnpackRecord and pir::InterpretCuckooRecords.
int FuzzTable(const std::uint8_t* data, std::size_t size);

using TargetFn = int (*)(const std::uint8_t*, std::size_t);

struct Target {
  const char* name;  // also the corpus subdirectory name (fuzz/corpus/<name>)
  TargetFn fn;
};

// All six targets, in corpus-directory order.
const std::vector<Target>& AllTargets();

// nullptr when no target has that name.
TargetFn FindTarget(std::string_view name);

}  // namespace lw::fuzz
