#include "fuzz/targets.h"

#include <algorithm>
#include <string>

#include "dpf/dpf.h"
#include "json/json.h"
#include "lightweb/snapshot.h"
#include "lightweb/universe.h"
#include "net/transport.h"
#include "pir/cuckoo_store.h"
#include "pir/packing.h"
#include "util/bytes.h"
#include "util/check.h"
#include "util/hex.h"
#include "util/io.h"
#include "zltp/messages.h"

namespace lw::fuzz {
namespace {

std::string_view AsText(const std::uint8_t* data, std::size_t size) {
  return std::string_view(reinterpret_cast<const char*>(data), size);
}

// Re-encoding an accepted ZLTP message must reproduce the frame bit for bit:
// the decoders are strict (ExpectEnd + field validation), so decode is a
// bijection between accepted byte strings and message values.
template <typename M>
void CheckZltpRoundTrip(const Result<M>& decoded, const net::Frame& orig) {
  if (!decoded.ok()) return;
  const net::Frame re = zltp::Encode(*decoded);
  LW_CHECK_MSG(re.type == orig.type && re.payload == orig.payload,
               "ZLTP re-encode did not reproduce the accepted frame");
}

}  // namespace

int FuzzJson(const std::uint8_t* data, std::size_t size) {
  const auto parsed = json::Parse(AsText(data, size));
  if (!parsed.ok()) return 0;
  // Canonical-serialization fixpoint: writing an accepted document must
  // re-parse to the same value and to the same bytes.
  const std::string canonical = json::Write(*parsed);
  const auto reparsed = json::Parse(canonical);
  LW_CHECK_MSG(reparsed.ok(), "canonical JSON failed to re-parse");
  LW_CHECK_MSG(*reparsed == *parsed, "JSON canonical roundtrip mismatch");
  LW_CHECK_MSG(json::Write(*reparsed) == canonical,
               "JSON canonical serialization is not a fixpoint");
  return 0;
}

int FuzzZltp(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  net::Frame f;
  f.type = static_cast<std::uint8_t>(1 + data[0] % 5);
  f.payload.assign(data + 1, data + size);
  switch (static_cast<zltp::MsgType>(f.type)) {
    case zltp::MsgType::kClientHello:
      CheckZltpRoundTrip(zltp::DecodeClientHello(f), f);
      break;
    case zltp::MsgType::kServerHello:
      CheckZltpRoundTrip(zltp::DecodeServerHello(f), f);
      break;
    case zltp::MsgType::kGetRequest:
      CheckZltpRoundTrip(zltp::DecodeGetRequest(f), f);
      break;
    case zltp::MsgType::kGetResponse:
      CheckZltpRoundTrip(zltp::DecodeGetResponse(f), f);
      break;
    case zltp::MsgType::kError:
      CheckZltpRoundTrip(zltp::DecodeError(f), f);
      break;
    default:
      break;
  }
  return 0;
}

int FuzzDpf(const std::uint8_t* data, std::size_t size) {
  const ByteSpan span(data, size);
  const Bytes original(span.begin(), span.end());

  if (const auto key = dpf::DpfKey::Deserialize(span); key.ok()) {
    LW_CHECK_MSG(key->Serialize() == original,
                 "DPF key re-serialization mismatch");
    // Deserialize validated domain_bits, so evaluation must be safe.
    const std::uint8_t at_zero = dpf::EvalPoint(*key, 0);
    if (key->domain_bits <= 12) {
      const dpf::BitVector bits = dpf::EvalFull(*key);
      LW_CHECK_MSG(dpf::GetBit(bits, 0) == at_zero,
                   "EvalFull disagrees with EvalPoint");
      const int top = std::min<int>(2, key->domain_bits);
      const auto shards = dpf::SplitForShards(*key, top);
      for (const dpf::SubtreeKey& sub : shards) {
        const auto redone = dpf::SubtreeKey::Deserialize(sub.Serialize());
        LW_CHECK_MSG(redone.ok(), "split subtree key failed to deserialize");
      }
    }
  }
  if (const auto sub = dpf::SubtreeKey::Deserialize(span); sub.ok()) {
    LW_CHECK_MSG(sub->Serialize() == original,
                 "subtree key re-serialization mismatch");
    if (sub->domain_bits <= 12) (void)dpf::EvalSubtree(*sub);
  }
  return 0;
}

int FuzzReader(const std::uint8_t* data, std::size_t size) {
  // The input doubles as op-script and data: each opcode byte selects the
  // next decode call on the bytes that follow it. Every call must either
  // yield a value or a clean ProtocolError; progress is guaranteed because
  // the opcode byte itself is always consumed.
  Reader r(ByteSpan(data, size));
  while (!r.AtEnd()) {
    const auto op = r.U8();
    LW_CHECK_MSG(op.ok(), "U8 failed with bytes remaining");
    switch (*op % 8) {
      case 0: (void)r.U8().ok(); break;
      case 1: (void)r.U16().ok(); break;
      case 2: (void)r.U32().ok(); break;
      case 3: (void)r.U64().ok(); break;
      case 4: (void)r.Raw(*op).ok(); break;
      case 5: (void)r.LengthPrefixed().ok(); break;
      case 6: (void)r.String().ok(); break;
      case 7: (void)r.ExpectEnd().ok(); break;
    }
  }
  LW_CHECK_MSG(r.ExpectEnd().ok(), "reader did not consume all input");

  // Writer→Reader roundtrip of the raw input.
  Writer w;
  w.LengthPrefixed(ByteSpan(data, size));
  w.String(AsText(data, size));
  Reader rr(w.bytes());
  const auto b = rr.LengthPrefixed();
  const auto s = rr.String();
  LW_CHECK_MSG(b.ok() && s.ok() && rr.AtEnd(),
               "writer output failed to read back");
  LW_CHECK_MSG(*b == Bytes(data, data + size) && *s == AsText(data, size),
               "writer/reader roundtrip mismatch");
  return 0;
}

int FuzzHex(const std::uint8_t* data, std::size_t size) {
  const auto decoded = HexDecode(AsText(data, size));
  if (!decoded.ok()) return 0;
  LW_CHECK_MSG(decoded->size() * 2 == size, "hex decode length mismatch");
  // Encoding canonicalizes to lowercase; a second decode must agree.
  const std::string re = HexEncode(*decoded);
  const auto again = HexDecode(re);
  LW_CHECK_MSG(again.ok() && *again == *decoded,
               "hex encode/decode roundtrip mismatch");
  return 0;
}

int FuzzTable(const std::uint8_t* data, std::size_t size) {
  if (size > (std::size_t{1} << 16)) return 0;  // bound per-input work

  // Snapshot load into a deliberately tiny universe; corpus seeds use the
  // same config so valid snapshots exercise the deep paths (ownership, code
  // blob LightScript parsing, hex-encoded data blobs, path validation).
  lightweb::UniverseConfig cfg;
  cfg.code_domain_bits = 4;
  cfg.code_blob_size = 2048;
  cfg.data_domain_bits = 4;
  cfg.data_blob_size = 512;
  cfg.fetches_per_page = 2;
  cfg.master_seed = Bytes(16, 0xa5);
  lightweb::Universe universe(cfg);
  (void)lightweb::LoadUniverseSnapshot(universe, AsText(data, size));

  // Record-level decoders that cuckoo keyword lookups feed on.
  const ByteSpan span(data, size);
  if (const auto rec = pir::UnpackRecord(span); rec.ok()) {
    const auto repacked =
        pir::PackRecord(rec->fingerprint, rec->payload, size);
    LW_CHECK_MSG(repacked.ok(), "unpacked record failed to re-pack");
  }
  if (size >= 2) {
    const std::size_t half = size / 2;
    (void)pir::InterpretCuckooRecords(span.subspan(0, half),
                                      span.subspan(half), /*fingerprint=*/0);
  }
  return 0;
}

const std::vector<Target>& AllTargets() {
  static const std::vector<Target> kTargets = {
      {"json", FuzzJson},   {"zltp", FuzzZltp}, {"dpf", FuzzDpf},
      {"reader", FuzzReader}, {"hex", FuzzHex}, {"table", FuzzTable},
  };
  return kTargets;
}

TargetFn FindTarget(std::string_view name) {
  for (const Target& t : AllTargets()) {
    if (name == t.name) return t.fn;
  }
  return nullptr;
}

}  // namespace lw::fuzz
