// ctcheck — dudect-style dynamic constant-time verifier.
//
// lwlint proves the *shape* of the code is data-oblivious; ctcheck checks
// the *measured* behavior of the binary the compiler actually produced.
// Methodology (Reparaz–Balasch–Verbauwhede, "dude, is my code constant
// time?"): for each target we time the same operation over two classes of
// secret inputs — one fixed, one varying — with the class chosen at random
// per sample, then compare the two timing populations with Welch's t-test
// at several upper-percentile crops (cropping sheds OS/interrupt tails).
// A |t| above the threshold means the distributions differ, i.e. the
// secret leaks into timing.
//
// Targets cover the four constant-time kernels the paper's privacy
// argument leans on:
//   aead-tag-verify   ChaCha20-Poly1305 tag rejection (mismatch position)
//   poly1305-mac      Poly1305 final reduction (fixed vs random message)
//   cuckoo-match      keyword fingerprint match (which slot matched)
//   oram-stash-scan   Path ORAM stash selection (present vs absent id)
// plus one deliberately variable-time reference:
//   vartime-ref       early-exit byte compare — ctcheck must DETECT this
//                     leak, or the harness itself is broken (self-test).
//
// Exit 0 iff every constant-time target measures clean AND the reference
// leaks. `--smoke` keeps the sample count CI-friendly; `--json=PATH`
// writes a machine-readable report next to the bench artifacts.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <unordered_map>
#include <vector>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#else
#include <ctime>
#endif

#include "crypto/aead.h"
#include "crypto/poly1305.h"
#include "oram/path_oram.h"
#include "pir/cuckoo_store.h"
#include "pir/packing.h"
#include "util/bytes.h"

namespace lw::ctcheck {
namespace {

// Deterministic PRNG: ctcheck must produce the same verdict on the same
// binary, so no libc rand and no nondeterministic seeding.
class Xorshift64 {
 public:
  explicit Xorshift64(std::uint64_t state) : s_(state ? state : 0x9e3779b9) {}
  std::uint64_t Next() {
    s_ ^= s_ << 13;
    s_ ^= s_ >> 7;
    s_ ^= s_ << 17;
    return s_;
  }
  std::uint8_t Byte() { return static_cast<std::uint8_t>(Next() >> 32); }
  void Fill(MutableByteSpan out) {
    for (std::size_t i = 0; i < out.size(); ++i) out[i] = Byte();
  }

 private:
  std::uint64_t s_;
};

inline void DoNotOptimize(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __asm__ volatile("" : : "g"(p) : "memory");
#else
  (void)p;
#endif
}

inline std::uint64_t Now() {
#if defined(__x86_64__) || defined(_M_X64)
  unsigned aux;
  return __rdtscp(&aux);  // serializes against earlier instructions
#else
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ull +
         static_cast<std::uint64_t>(ts.tv_nsec);
#endif
}

// Two timing populations: class 0 = fixed secret, class 1 = varying secret.
struct Timings {
  std::vector<double> cls[2];
};

double WelchT(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() < 2 || b.size() < 2) return 0.0;
  auto mean_var = [](const std::vector<double>& v, double& mean,
                     double& var) {
    double sum = 0.0;
    for (double x : v) sum += x;
    mean = sum / static_cast<double>(v.size());
    double acc = 0.0;
    for (double x : v) acc += (x - mean) * (x - mean);
    var = acc / static_cast<double>(v.size() - 1);
  };
  double ma, va, mb, vb;
  mean_var(a, ma, va);
  mean_var(b, mb, vb);
  const double denom = std::sqrt(va / static_cast<double>(a.size()) +
                                 vb / static_cast<double>(b.size()));
  if (denom == 0.0) return 0.0;
  return (ma - mb) / denom;
}

// Max |t| over several upper-percentile crops of the pooled distribution.
// The uncropped test drowns in scheduler tails; heavily cropped tests focus
// on the fast (undisturbed) executions where a data-dependent path shows.
double MaxTOverCrops(const Timings& t) {
  static const double kCrops[] = {1.0, 0.999, 0.99, 0.95, 0.9, 0.8};
  std::vector<double> pooled;
  pooled.reserve(t.cls[0].size() + t.cls[1].size());
  pooled.insert(pooled.end(), t.cls[0].begin(), t.cls[0].end());
  pooled.insert(pooled.end(), t.cls[1].begin(), t.cls[1].end());
  if (pooled.empty()) return 0.0;
  std::sort(pooled.begin(), pooled.end());
  double max_t = 0.0;
  for (const double q : kCrops) {
    const std::size_t idx = std::min(
        pooled.size() - 1,
        static_cast<std::size_t>(q * static_cast<double>(pooled.size() - 1)));
    const double cut = pooled[idx];
    std::vector<double> a, b;
    for (double x : t.cls[0]) {
      if (x <= cut) a.push_back(x);
    }
    for (double x : t.cls[1]) {
      if (x <= cut) b.push_back(x);
    }
    max_t = std::max(max_t, std::fabs(WelchT(a, b)));
  }
  return max_t;
}

// ------------------------------------------------------------- targets

Timings RunAeadTagVerify(std::size_t samples, Xorshift64& rng) {
  // Both classes submit a ciphertext whose tag is WRONG, so both take the
  // rejection path; they differ only in WHERE the forged tag first differs
  // from the correct one (byte 0 vs the whole tag randomized). An early-exit
  // tag compare would reject class 0 faster.
  const Bytes key(crypto::kAeadKeySize, 0x42);
  const Bytes nonce(crypto::kAeadNonceSize, 0x17);
  const Bytes aad = ToBytes("ctcheck-aead");
  Bytes plaintext(1024, 0xab);
  const Bytes sealed = crypto::AeadSeal(key, nonce, aad, plaintext);

  Timings t;
  Bytes forged = sealed;
  for (std::size_t s = 0; s < samples; ++s) {
    const int cls = static_cast<int>(rng.Next() & 1);
    std::memcpy(forged.data(), sealed.data(), sealed.size());
    const std::size_t auth_offset = sealed.size() - crypto::kAeadTagSize;
    if (cls == 0) {
      forged[auth_offset] ^= 0x01;  // differs at the first tag byte only
    } else {
      for (std::size_t i = 0; i < crypto::kAeadTagSize; ++i) {
        forged[auth_offset + i] ^= rng.Byte() | 0x01;
      }
    }
    const std::uint64_t t0 = Now();
    auto r = crypto::AeadOpen(key, nonce, aad, forged);
    const std::uint64_t t1 = Now();
    DoNotOptimize(&r);
    t.cls[cls].push_back(static_cast<double>(t1 - t0));
  }
  return t;
}

Timings RunPoly1305(std::size_t samples, Xorshift64& rng) {
  // Classic fixed-vs-random message under a fixed key: the final mod-p
  // reduction and the per-block carries must not depend on message words.
  const Bytes key(crypto::kPoly1305KeySize, 0x5a);
  Bytes msg(512, 0);
  std::uint8_t tag[crypto::kPoly1305TagSize];

  Timings t;
  for (std::size_t s = 0; s < samples; ++s) {
    const int cls = static_cast<int>(rng.Next() & 1);
    if (cls == 0) {
      std::memset(msg.data(), 0xff, msg.size());  // max limbs: forces carries
    } else {
      rng.Fill(msg);
    }
    const std::uint64_t t0 = Now();
    crypto::Poly1305(key, msg, tag);
    const std::uint64_t t1 = Now();
    DoNotOptimize(tag);
    t.cls[cls].push_back(static_cast<double>(t1 - t0));
  }
  return t;
}

Timings RunCuckooMatch(std::size_t samples, Xorshift64& rng) {
  // Which of the two candidate slots holds the queried keyword is a
  // function of the private query; InterpretCuckooRecords must take the
  // same time whether slot A or slot B matched.
  const std::size_t record_size = 1024;
  const std::uint64_t fp_a = 0x1111222233334444ull;
  const std::uint64_t fp_b = 0x5555666677778888ull;
  Bytes payload(256, 0x33);
  const Bytes rec_a = *pir::PackRecord(fp_a, payload, record_size);
  const Bytes rec_b = *pir::PackRecord(fp_b, payload, record_size);

  Timings t;
  for (std::size_t s = 0; s < samples; ++s) {
    const int cls = static_cast<int>(rng.Next() & 1);
    const std::uint64_t fp = cls == 0 ? fp_a : fp_b;
    const std::uint64_t t0 = Now();
    auto r = pir::InterpretCuckooRecords(rec_a, rec_b, fp);
    const std::uint64_t t1 = Now();
    DoNotOptimize(&r);
    t.cls[cls].push_back(static_cast<double>(t1 - t0));
  }
  return t;
}

Timings RunOramStashScan(std::size_t samples, Xorshift64& rng) {
  // The stash scan must touch every entry identically whether the wanted
  // block is present (class 0: always the same resident id) or absent
  // (class 1: random never-inserted id).
  std::unordered_map<std::uint64_t, Bytes> stash;
  Bytes block(256);
  for (std::uint64_t id = 0; id < 64; ++id) {
    rng.Fill(block);
    stash.emplace(id, block);
  }
  Bytes out(256, 0);

  Timings t;
  for (std::size_t s = 0; s < samples; ++s) {
    const int cls = static_cast<int>(rng.Next() & 1);
    const std::uint64_t want = cls == 0 ? 7 : (rng.Next() | (1ull << 32));
    const std::uint64_t t0 = Now();
    const std::uint64_t mask = oram::CtStashScan(stash, want, out);
    const std::uint64_t t1 = Now();
    DoNotOptimize(&mask);
    t.cls[cls].push_back(static_cast<double>(t1 - t0));
  }
  return t;
}

// Deliberately variable-time reference: the early-exit compare every C
// programmer writes first. ctcheck exists to catch exactly this; if the
// harness cannot, the harness is broken.
bool VariableTimeEqRef(const std::uint8_t* a, const std::uint8_t* b,
                       std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

Timings RunVartimeRef(std::size_t samples, Xorshift64& rng) {
  const std::size_t n = 4096;
  Bytes a(n);
  rng.Fill(a);
  Bytes b = a;

  Timings t;
  for (std::size_t s = 0; s < samples; ++s) {
    const int cls = static_cast<int>(rng.Next() & 1);
    std::memcpy(b.data(), a.data(), n);
    if (cls == 1) b[0] ^= 0xff;  // mismatch at byte 0: early exit
    const std::uint64_t t0 = Now();
    const bool eq = VariableTimeEqRef(a.data(), b.data(), n);
    const std::uint64_t t1 = Now();
    DoNotOptimize(&eq);
    t.cls[cls].push_back(static_cast<double>(t1 - t0));
  }
  return t;
}

// ------------------------------------------------------------- driver

struct Target {
  const char* name;
  Timings (*run)(std::size_t, Xorshift64&);
  bool expect_leak;
};

const Target kTargets[] = {
    {"aead-tag-verify", RunAeadTagVerify, false},
    {"poly1305-mac", RunPoly1305, false},
    {"cuckoo-match", RunCuckooMatch, false},
    {"oram-stash-scan", RunOramStashScan, false},
    {"vartime-ref", RunVartimeRef, true},
};

constexpr double kLeakThreshold = 10.0;  // dudect's "definitely leaking" bar

struct TargetReport {
  std::string name;
  double max_t = 0.0;
  std::size_t samples = 0;
  bool expect_leak = false;
  bool leak = false;
  bool pass = false;
};

std::string JsonReport(const std::vector<TargetReport>& reports,
                       std::size_t samples, bool all_pass) {
  std::string out = "{\n  \"tool\": \"ctcheck\",\n";
  out += "  \"threshold\": " + std::to_string(kLeakThreshold) + ",\n";
  out += "  \"samples_per_target\": " + std::to_string(samples) + ",\n";
  out += std::string("  \"pass\": ") + (all_pass ? "true" : "false") + ",\n";
  out += "  \"targets\": [\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const TargetReport& r = reports[i];
    out += "    {\"name\": \"" + r.name + "\", \"max_t\": " +
           std::to_string(r.max_t) + ", \"leak\": " +
           (r.leak ? "true" : "false") + ", \"expect_leak\": " +
           (r.expect_leak ? "true" : "false") + ", \"pass\": " +
           (r.pass ? "true" : "false") + "}";
    out += i + 1 < reports.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

int Main(int argc, char** argv) {
  std::size_t samples = 100000;
  std::string json_path;
  std::vector<std::string> filters;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      samples = 20000;
    } else if (arg.rfind("--samples=", 0) == 0) {
      samples = static_cast<std::size_t>(std::stoull(arg.substr(10)));
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--list") {
      for (const Target& t : kTargets) std::printf("%s\n", t.name);
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: ctcheck [--smoke] [--samples=N] [--json=PATH] "
                  "[--list] [target...]\n");
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "ctcheck: unknown flag '%s'\n", arg.c_str());
      return 2;
    } else {
      filters.push_back(arg);
    }
  }

  std::vector<TargetReport> reports;
  bool all_pass = true;
  for (const Target& target : kTargets) {
    if (!filters.empty() &&
        std::find(filters.begin(), filters.end(), target.name) ==
            filters.end()) {
      continue;
    }
    Xorshift64 rng(0x6c77637463686b21ull);  // fixed: verdicts reproducible
    // Warm-up pass (caches, branch predictors, frequency scaling) is
    // discarded.
    (void)target.run(samples / 20 + 16, rng);
    const Timings t = target.run(samples, rng);
    TargetReport r;
    r.name = target.name;
    r.samples = t.cls[0].size() + t.cls[1].size();
    r.max_t = MaxTOverCrops(t);
    r.expect_leak = target.expect_leak;
    r.leak = r.max_t > kLeakThreshold;
    r.pass = r.leak == r.expect_leak;
    all_pass = all_pass && r.pass;
    std::printf("%-16s max|t| = %8.2f  %s%s\n", r.name.c_str(), r.max_t,
                r.leak ? "LEAK" : "constant-time",
                r.pass ? "" : "  ** UNEXPECTED **");
    reports.push_back(std::move(r));
  }
  if (reports.empty()) {
    std::fprintf(stderr, "ctcheck: no targets matched\n");
    return 2;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "ctcheck: cannot write %s\n", json_path.c_str());
      return 2;
    }
    const std::string doc = JsonReport(reports, samples, all_pass);
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
  }
  if (!all_pass) {
    std::fprintf(stderr,
                 "ctcheck: FAIL — a constant-time target leaked, or the "
                 "variable-time reference went undetected\n");
  }
  return all_pass ? 0 : 1;
}

}  // namespace
}  // namespace lw::ctcheck

int main(int argc, char** argv) { return lw::ctcheck::Main(argc, argv); }
