// lightweb_serve — host a lightweb universe over TCP.
//
// Loads one or more site files (JSON: domain + LightScript code + data
// blobs), builds a universe, and serves it as four ZLTP endpoints on
// consecutive loopback ports:
//
//   base+0  code universe, logical server role 0
//   base+1  code universe, logical server role 1
//   base+2  data universe, logical server role 0
//   base+3  data universe, logical server role 1
//
// (In production roles 0 and 1 live in separate trust domains; one process
// hosting both is a demo convenience.)
//
// Usage:
//   lightweb_serve <base_port> [--snapshot state.json]
//                  [--serve-mode=reactor|threaded]
//                  [--metrics-port=N] [--metrics-dump=PATH]
//                  [--max-batch=N] [--max-wait-ms=N] [--queue-limit=N]
//                  [--deadline-ms=N] [--serial-batches] [--threads=N]
//                  [--scan-kernel=auto|scalar|avx2|avx512] [--no-hugepages]
//                  <site.json> ...
//
// With --snapshot, an existing snapshot file is loaded before any site
// files, and the final universe (snapshot + newly loaded sites) is written
// back — simple persistence across restarts.
//
// Serving model (docs/ARCHITECTURE.md):
//   --serve-mode=reactor   one epoll loop multiplexes all four endpoints;
//                          complete frames hand off to the batch scheduler
//                          (default)
//   --serve-mode=threaded  one blocking thread per connection (the A/B
//                          baseline the reactor is benchmarked against)
//
// Batching / data-plane knobs (docs/PERFORMANCE.md):
//   --max-batch=N     queries fused per scan pass (default 16)
//   --max-wait-ms=N   co-rider window after a batch's first query
//   --queue-limit=N   shed RESOURCE_EXHAUSTED beyond N queued queries
//   --deadline-ms=N   per-request deadline budget driving early batch close
//   --serial-batches  disable the expand/scan pipeline overlap (A/B knob)
//   --threads=N       per-request compute threads (0 = hardware)
//   --scan-kernel=K   pin the XOR kernel tier (default runtime-detected)
//   --no-hugepages    skip madvise(MADV_HUGEPAGE) on record arenas
//
// Observability (see docs/OBSERVABILITY.md):
//   --metrics-port=N   serve GET /metrics (Prometheus text) and
//                      GET /metrics.json on 127.0.0.1:N (0 = ephemeral)
//   --metrics-dump=P   atomically rewrite P with the JSON snapshot every
//                      10 seconds (for scrape-less setups)
//
// Site file format:
//   {
//     "domain": "planet.example",
//     "publisher": "planet-media",
//     "code": { "site": "...", "routes": [ ... LightScript ... ] },
//     "data": { "planet.example/data/x.json": { ...blob json... }, ... }
//   }
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "json/json.h"
#include "lightweb/snapshot.h"
#include "lightweb/universe.h"
#include "net/reactor.h"
#include "net/tcp.h"
#include "obs/exporter.h"
#include "pir/xor_kernel.h"
#include "util/alloc.h"
#include "util/file.h"
#include "util/log.h"
#include "zltp/server.h"

namespace {

using namespace lw;

// The served universe's parameters. Kept small enough that a laptop serves
// requests interactively; see bench_server_compute for paper-scale costs.
lightweb::UniverseConfig ServeConfig() {
  lightweb::UniverseConfig config;
  config.name = "served";
  config.code_domain_bits = 12;
  config.code_blob_size = 16 * 1024;
  config.data_domain_bits = 16;
  config.data_blob_size = 2048;
  config.fetches_per_page = 5;
  return config;
}

bool LoadSite(lightweb::Universe& universe, const std::string& path) {
  auto text = ReadFileToString(path);
  if (!text.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 text.status().ToString().c_str());
    return false;
  }
  auto doc = json::Parse(*text);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 doc.status().ToString().c_str());
    return false;
  }
  const std::string domain = doc->GetString("domain");
  const std::string publisher = doc->GetString("publisher", "publisher");
  const json::Value* code = doc->Find("code");
  if (domain.empty() || code == nullptr) {
    std::fprintf(stderr, "%s: need \"domain\" and \"code\"\n", path.c_str());
    return false;
  }
  Status s = universe.ClaimDomain(domain, publisher);
  if (s.ok()) s = universe.PushCode(publisher, domain, json::Write(*code));
  if (!s.ok()) {
    std::fprintf(stderr, "%s: push code: %s\n", path.c_str(),
                 s.ToString().c_str());
    return false;
  }
  std::size_t blobs = 0;
  if (const json::Value* data = doc->Find("data");
      data != nullptr && data->is_object()) {
    for (const auto& [blob_path, blob] : data->AsObject()) {
      const Status ps = universe.PushData(publisher, blob_path,
                                          ToBytes(json::Write(blob)));
      if (!ps.ok()) {
        std::fprintf(stderr, "%s: push %s: %s\n", path.c_str(),
                     blob_path.c_str(), ps.ToString().c_str());
        return false;
      }
      ++blobs;
    }
  }
  std::printf("loaded %s: domain %s, %zu data blobs\n", path.c_str(),
              domain.c_str(), blobs);
  return true;
}

// Accept loop: every connection gets a detached server thread.
void AcceptLoop(net::TcpListener listener, zltp::ZltpPirServer& server,
                const char* label) {
  std::printf("listening on 127.0.0.1:%u (%s)\n", listener.bound_port(),
              label);
  for (;;) {
    auto conn = listener.Accept();
    if (!conn.ok()) return;
    server.ServeConnectionDetached(std::move(*conn));
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr,
                 "usage: %s <base_port> <site.json> [more-sites.json ...]\n",
                 argv[0]);
    return 2;
  }
  const int base_port = std::atoi(argv[1]);
  if (base_port <= 0 || base_port > 65531) {
    std::fprintf(stderr, "bad base port\n");
    return 2;
  }

  std::string snapshot_path;
  std::string metrics_dump_path;
  int metrics_port = -1;  // -1 = disabled; 0 = ephemeral port
  bool use_reactor = true;
  zltp::ServerOptions server_options;
  std::vector<std::string> site_files;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--snapshot" && i + 1 < argc) {
      snapshot_path = argv[++i];
    } else if (arg.rfind("--metrics-port=", 0) == 0) {
      metrics_port = std::atoi(arg.c_str() + 15);
      if (metrics_port < 0 || metrics_port > 65535) {
        std::fprintf(stderr, "bad --metrics-port\n");
        return 2;
      }
    } else if (arg.rfind("--metrics-dump=", 0) == 0) {
      metrics_dump_path = arg.substr(15);
    } else if (arg.rfind("--max-batch=", 0) == 0) {
      const int v = std::atoi(arg.c_str() + 12);
      if (v < 1) {
        std::fprintf(stderr, "bad --max-batch (need >= 1)\n");
        return 2;
      }
      server_options.batch_config.max_batch = static_cast<std::size_t>(v);
    } else if (arg.rfind("--max-wait-ms=", 0) == 0) {
      const int v = std::atoi(arg.c_str() + 14);
      if (v < 0) {
        std::fprintf(stderr, "bad --max-wait-ms\n");
        return 2;
      }
      server_options.batch_config.max_wait = std::chrono::milliseconds(v);
    } else if (arg.rfind("--queue-limit=", 0) == 0) {
      const int v = std::atoi(arg.c_str() + 14);
      if (v < 0) {
        std::fprintf(stderr, "bad --queue-limit\n");
        return 2;
      }
      server_options.batch_config.queue_limit = static_cast<std::size_t>(v);
    } else if (arg.rfind("--deadline-ms=", 0) == 0) {
      const int v = std::atoi(arg.c_str() + 14);
      if (v < 0) {
        std::fprintf(stderr, "bad --deadline-ms\n");
        return 2;
      }
      server_options.batch_config.deadline_budget =
          std::chrono::milliseconds(v);
    } else if (arg.rfind("--serve-mode=", 0) == 0) {
      const std::string mode = arg.substr(13);
      if (mode == "reactor") {
        use_reactor = true;
      } else if (mode == "threaded") {
        use_reactor = false;
      } else {
        std::fprintf(stderr, "bad --serve-mode (want reactor|threaded)\n");
        return 2;
      }
    } else if (arg == "--serial-batches") {
      server_options.batch_config.pipelined = false;
    } else if (arg.rfind("--threads=", 0) == 0) {
      server_options.num_threads = std::atoi(arg.c_str() + 10);
    } else if (arg.rfind("--scan-kernel=", 0) == 0) {
      if (!pir::SetXorTierByName(arg.c_str() + 14)) {
        std::fprintf(stderr,
                     "bad --scan-kernel (unknown or unsupported on this "
                     "CPU; want auto|scalar|avx2|avx512)\n");
        return 2;
      }
    } else if (arg == "--no-hugepages") {
      SetHugepagesEnabled(false);
    } else {
      site_files.emplace_back(arg);
    }
  }
  std::printf("scan kernel: %s%s\n", pir::XorTierName(pir::ActiveXorTier()),
              HugepagesEnabled() ? ", hugepages advised" : ", hugepages off");

  lightweb::Universe universe(ServeConfig());
  if (!snapshot_path.empty()) {
    const Status s =
        lightweb::LoadUniverseSnapshotFromFile(universe, snapshot_path);
    if (s.ok()) {
      std::printf("restored snapshot %s (%zu pages)\n",
                  snapshot_path.c_str(), universe.total_pages());
    } else if (s.code() != StatusCode::kUnavailable) {
      // Missing file is fine on first run; anything else is a real error.
      std::fprintf(stderr, "snapshot load: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  for (const std::string& site : site_files) {
    if (!LoadSite(universe, site)) return 1;
  }
  if (!snapshot_path.empty()) {
    const Status s =
        lightweb::SaveUniverseSnapshotToFile(universe, snapshot_path);
    if (!s.ok()) {
      std::fprintf(stderr, "snapshot save: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("saved snapshot to %s\n", snapshot_path.c_str());
  }
  std::printf("universe ready: %zu pages, %zu domains\n\n",
              universe.total_pages(), universe.total_domains());

  std::unique_ptr<obs::MetricsHttpServer> metrics_server;
  if (metrics_port >= 0) {
    auto started =
        obs::MetricsHttpServer::Start(static_cast<std::uint16_t>(metrics_port));
    if (!started.ok()) {
      std::fprintf(stderr, "metrics server: %s\n",
                   started.status().ToString().c_str());
      return 1;
    }
    metrics_server = std::move(*started);
    std::printf("metrics: http://127.0.0.1:%u/metrics (and /metrics.json)\n",
                metrics_server->port());
  }
  if (!metrics_dump_path.empty()) {
    // Detached dumper: the process serves until killed, so there is no
    // clean shutdown to join against.
    std::thread([path = metrics_dump_path] {
      for (;;) {
        const Status s = obs::WriteSnapshotJson(path);
        if (!s.ok()) {
          std::fprintf(stderr, "metrics dump: %s\n", s.ToString().c_str());
        }
        std::this_thread::sleep_for(std::chrono::seconds(10));
      }
    }).detach();
    std::printf("metrics: dumping JSON snapshot to %s every 10s\n",
                metrics_dump_path.c_str());
  }

  zltp::ZltpPirServer code0(universe.code_store(), 0, server_options);
  zltp::ZltpPirServer code1(universe.code_store(), 1, server_options);
  zltp::ZltpPirServer data0(universe.data_store(), 0, server_options);
  zltp::ZltpPirServer data1(universe.data_store(), 1, server_options);

  struct Endpoint {
    zltp::ZltpPirServer* server;
    const char* label;
  };
  const Endpoint endpoints[4] = {{&code0, "code role 0"},
                                 {&code1, "code role 1"},
                                 {&data0, "data role 0"},
                                 {&data1, "data role 1"}};
  if (use_reactor) {
    // One epoll loop owns all four listening sockets; each complete frame
    // hands off to the endpoint server's batch scheduler, whose admission
    // queue — not the kernel thread scheduler — decides what runs next.
    net::Reactor reactor;
    for (int i = 0; i < 4; ++i) {
      auto listener =
          net::TcpListener::Listen(static_cast<std::uint16_t>(base_port + i));
      if (!listener.ok()) {
        std::fprintf(stderr, "listen %d: %s\n", base_port + i,
                     listener.status().ToString().c_str());
        return 1;
      }
      std::printf("listening on 127.0.0.1:%u (%s, reactor)\n",
                  listener->bound_port(), endpoints[i].label);
      const Status s =
          endpoints[i].server->ServeOnReactor(reactor, std::move(*listener));
      if (!s.ok()) {
        std::fprintf(stderr, "serve %d: %s\n", base_port + i,
                     s.ToString().c_str());
        return 1;
      }
    }
    if (const Status s = reactor.Start(); !s.ok()) {
      std::fprintf(stderr, "reactor: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nbrowse with: lightweb_browse 127.0.0.1 %d "
                "<domain/path>\n",
                base_port);
    reactor.Join();
    return 0;
  }

  std::vector<std::thread> loops;
  for (int i = 0; i < 4; ++i) {
    auto listener =
        net::TcpListener::Listen(static_cast<std::uint16_t>(base_port + i));
    if (!listener.ok()) {
      std::fprintf(stderr, "listen %d: %s\n", base_port + i,
                   listener.status().ToString().c_str());
      return 1;
    }
    loops.emplace_back(AcceptLoop, std::move(*listener),
                       std::ref(*endpoints[i].server), endpoints[i].label);
  }
  std::printf("\nbrowse with: lightweb_browse 127.0.0.1 %d "
              "<domain/path>\n",
              base_port);
  for (auto& t : loops) t.join();
  return 0;
}
