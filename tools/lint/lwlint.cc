// lwlint command line driver.
//
//   lwlint [--list-rules] [path...]
//
// Paths default to "src". Exit code 0 = clean, 1 = violations found,
// 2 = usage or I/O error. Registered as the `lwlint.src` ctest so tier-1
// catches regressions; see docs/STATIC_ANALYSIS.md for the rules and the
// `lwlint: allow(<rule>)` escape hatch.
#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : lw::lint::AllRules()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf("usage: lwlint [--list-rules] [path...]\n");
      return 0;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lwlint: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) paths.push_back("src");

  const std::vector<lw::lint::Finding> findings = lw::lint::LintPaths(paths);
  bool io_error = false;
  for (const lw::lint::Finding& f : findings) {
    std::fprintf(stderr, "%s\n", lw::lint::FormatFinding(f).c_str());
    io_error |= (f.rule == "io-error");
  }
  if (io_error) return 2;
  if (!findings.empty()) {
    std::fprintf(stderr, "lwlint: %zu violation(s)\n", findings.size());
    return 1;
  }
  return 0;
}
