// lwlint command line driver.
//
//   lwlint [--list-rules] [--format=text|github|sarif] [--exclude=substr]
//          [path...]
//
// Paths default to "src". Exit code 0 = clean, 1 = violations found,
// 2 = usage or I/O error. `--format=github` emits workflow-command
// annotations so findings land inline on PRs; `--format=sarif` emits a
// SARIF 2.1.0 document on stdout for code-scanning upload. Registered as
// the `lwlint.src` ctest so tier-1 catches regressions; see
// docs/STATIC_ANALYSIS.md for the rules and the allow(<rule>) escape
// hatch.
#include <cstdio>
#include <string>
#include <vector>

#include "lint.h"

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  std::string format = "text";
  lw::lint::LintOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list-rules") {
      for (const std::string& rule : lw::lint::AllRules()) {
        std::printf("%s\n", rule.c_str());
      }
      return 0;
    }
    if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: lwlint [--list-rules] [--format=text|github|sarif] "
          "[--exclude=substr] [path...]\n");
      return 0;
    }
    if (arg.rfind("--format=", 0) == 0) {
      format = arg.substr(9);
      if (format != "text" && format != "github" && format != "sarif") {
        std::fprintf(stderr, "lwlint: unknown format '%s'\n", format.c_str());
        return 2;
      }
      continue;
    }
    if (arg.rfind("--exclude=", 0) == 0) {
      options.excludes.push_back(arg.substr(10));
      continue;
    }
    if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "lwlint: unknown flag '%s'\n", arg.c_str());
      return 2;
    }
    paths.push_back(arg);
  }
  if (paths.empty()) paths.push_back("src");

  const std::vector<lw::lint::Finding> findings =
      lw::lint::LintPaths(paths, options);
  bool io_error = false;
  for (const lw::lint::Finding& f : findings) {
    io_error |= (f.rule == "io-error");
  }
  if (format == "sarif") {
    std::printf("%s\n", lw::lint::FormatSarif(findings).c_str());
  } else {
    for (const lw::lint::Finding& f : findings) {
      if (format == "github") {
        // Annotation on stdout (the runner parses it), readable line on
        // stderr for the raw log.
        std::printf("%s\n", lw::lint::FormatFindingGithub(f).c_str());
      }
      std::fprintf(stderr, "%s\n", lw::lint::FormatFinding(f).c_str());
    }
  }
  if (io_error) return 2;
  if (!findings.empty()) {
    std::fprintf(stderr, "lwlint: %zu violation(s)\n", findings.size());
    return 1;
  }
  return 0;
}
