// lwlint — project-specific static checks for the Lightweb tree.
//
// The linter enforces the security idioms the compiler cannot see (see
// docs/STATIC_ANALYSIS.md for the policy rationale):
//
//   ct-compare       memcmp/==/!= on key or tag material; secrets must be
//                    compared with lw::crypto::ct::Eq / EqMask.
//   secret-index     array access indexed by secret-named data anywhere, or
//                    nested data-dependent table lookups (tbl[x[i]]) inside
//                    src/crypto, outside the whitelisted files.
//   insecure-rand    rand()/srand()/std::rand and friends; use lw::Rng for
//                    simulation and lw::SecureRandom for secrets.
//   naked-new        naked new/delete; use std::make_unique or containers.
//   unchecked-result lw::Result<T> unwrapped with .value() with no visible
//                    ok() check / LW_CHECK / assertion nearby.
//   unchecked-reader Reader decode results (U8/U16/U32/U64/Raw/
//                    LengthPrefixed/String) dereferenced in the same
//                    expression or discarded without a status check; a
//                    truncated frame must surface as ProtocolError, never
//                    as silently-wrong data — see docs/FUZZING.md.
//   var-time-loop    early exits (break/return) or secret-dependent bounds
//                    in loops inside src/crypto.
//   metric-label-from-request
//                    metric names/labels built from request-derived data;
//                    telemetry must be aggregate-only (literal names).
//   receive-without-deadline
//                    Transport::Receive() with no deadline argument outside
//                    src/net; unbounded reads must name Deadline::Infinite()
//                    explicitly (or carry an allow for the batcher
//                    long-poll) — see docs/ROBUSTNESS.md.
//
// Escape hatch: a comment `lwlint: allow(rule)` (comma-separate several
// rules) on the offending line or the line directly above suppresses the
// finding; `lwlint: allowfile(rule)` anywhere in a file suppresses the rule
// for the whole file. Every allow should come with a justification comment.
#pragma once

#include <string>
#include <vector>

namespace lw::lint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

// Names of all rules, for --list-rules and the self-tests.
const std::vector<std::string>& AllRules();

// Lints one translation unit. `path` (repo-relative or absolute) decides
// which rule subsets apply: crypto-only rules fire for paths containing
// "src/crypto", and whitelisted files are matched by path suffix.
std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content);

// Recursively lints every .cc/.h file under each of `paths` (files are
// accepted too). I/O problems are reported as findings with rule "io-error".
std::vector<Finding> LintPaths(const std::vector<std::string>& paths);

// "file:line: [rule] message" — matches compiler diagnostics so editors can
// jump to findings.
std::string FormatFinding(const Finding& f);

}  // namespace lw::lint
