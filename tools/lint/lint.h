// lwlint — project-specific static checks for the Lightweb tree.
//
// The linter enforces the security idioms the compiler cannot see (see
// docs/STATIC_ANALYSIS.md for the policy rationale). Since PR 6 the core is
// a token-stream engine with an intra-procedural secret-taint dataflow
// analysis, not per-line regexes: sources are `LW_SECRET`-annotated
// declarations (src/crypto/secret.h) plus secret-name heuristics in
// src/crypto; sanitizers are the lw::crypto::ct helpers and explicit
// declassification; sinks are branches, array subscripts, pointer
// arithmetic, and variable-time library calls.
//
//   ct-compare       memcmp/==/!= on key or tag material; secrets must be
//                    compared with lw::crypto::ct::Eq / EqMask.
//   secret-index     array access indexed by secret-named data anywhere, or
//                    nested data-dependent table lookups (tbl[x[i]]) inside
//                    src/crypto, outside the whitelisted files.
//   secret-taint-branch
//                    if/while/for/switch condition depends on a value the
//                    taint engine traced back to a secret source.
//   secret-taint-index
//                    array subscript or pointer offset computed from a
//                    taint-traced secret (cache side channel).
//   secret-taint-call
//                    taint-traced secret passed to a curated variable-time
//                    function (memcmp/strcmp/std::find/.find/.count/...).
//   insecure-rand    rand()/srand()/std::rand and friends; use lw::Rng for
//                    simulation and lw::SecureRandom for secrets.
//   naked-new        naked new/delete; use std::make_unique or containers.
//   unchecked-result lw::Result<T> unwrapped with .value() with no visible
//                    ok() check / LW_CHECK / assertion nearby.
//   unchecked-reader Reader decode results (U8/U16/U32/U64/Raw/
//                    LengthPrefixed/String) dereferenced in the same
//                    expression or discarded without a status check; a
//                    truncated frame must surface as ProtocolError, never
//                    as silently-wrong data — see docs/FUZZING.md.
//   var-time-loop    early exits (break/return) or secret-dependent bounds
//                    in loops inside src/crypto.
//   metric-label-from-request
//                    metric names/labels built from request-derived data;
//                    telemetry must be aggregate-only (literal names).
//   receive-without-deadline
//                    Transport::Receive() with no deadline argument outside
//                    src/net; unbounded reads must name Deadline::Infinite()
//                    explicitly (or carry an allow for the batcher
//                    long-poll) — see docs/ROBUSTNESS.md.
//   raw-steady-clock std::chrono::steady_clock::now() in src/zltp or
//                    src/net; scheduling code must read time through the
//                    injectable lw::Clock (trace stamps through
//                    obs::TraceNow()) so FakeClock tests drive deadlines
//                    and batch closes deterministically.
//   blocking-in-reactor
//                    bare accept()/recv()/send() syscalls in src/net; the
//                    epoll reactor's loop thread owns every connection
//                    there, so kernel blocking stalls all of them — use
//                    accept4(SOCK_NONBLOCK) and MSG_DONTWAIT. The
//                    thread-per-connection A/B path (tcp.cc) blocks by
//                    design and carries allow hatches.
//   stale-allow      an allow/allowfile annotation that suppressed nothing;
//                    dead escape hatches hide real regressions, so they are
//                    findings themselves.
//
// Escape hatch: an allow(rule) comment — the word `lwlint`, a colon, then
// allow(rule), comma-separate several rules — on the offending line or the
// line directly above suppresses the finding; allowfile(rule) in the same
// comment form anywhere in a file suppresses the rule for the whole file.
// The pseudo-rule allow(secret-taint) declassifies: placed on an
// assignment it stops taint from propagating through that assignment.
// Every allow should come with a justification comment; an allow that
// suppresses nothing is reported as stale-allow.
#pragma once

#include <string>
#include <vector>

namespace lw::lint {

struct Finding {
  std::string file;
  int line = 0;  // 1-based
  std::string rule;
  std::string message;
};

// Names of all rules, for --list-rules and the self-tests.
const std::vector<std::string>& AllRules();

// Lints one translation unit. `path` (repo-relative or absolute) decides
// which rule subsets apply: crypto-only rules fire for paths containing
// "src/crypto", and whitelisted files are matched by path suffix.
std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content);

struct LintOptions {
  // Path substrings to skip while walking directories. The lint fixtures
  // (tools/lint/testdata) are always skipped: they are deliberate true
  // positives.
  std::vector<std::string> excludes;
};

// Recursively lints every .cc/.h file under each of `paths` (files are
// accepted too). I/O problems are reported as findings with rule "io-error".
std::vector<Finding> LintPaths(const std::vector<std::string>& paths);
std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const LintOptions& options);

// "file:line: [rule] message" — matches compiler diagnostics so editors can
// jump to findings.
std::string FormatFinding(const Finding& f);

// GitHub Actions workflow-command form, one line per finding:
//   ::error file=F,line=N,title=lwlint RULE::MESSAGE
// so findings annotate the diff inline on PRs.
std::string FormatFindingGithub(const Finding& f);

// Minimal SARIF 2.1.0 document covering all findings (one run, one result
// per finding), for code-scanning upload.
std::string FormatSarif(const std::vector<Finding>& findings);

}  // namespace lw::lint
