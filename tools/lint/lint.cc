#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>

#include "token.h"

namespace lw::lint {
namespace {

// ---------------------------------------------------------------- rules

const char kCtCompare[] = "ct-compare";
const char kSecretIndex[] = "secret-index";
const char kTaintBranch[] = "secret-taint-branch";
const char kTaintIndex[] = "secret-taint-index";
const char kTaintCall[] = "secret-taint-call";
const char kInsecureRand[] = "insecure-rand";
const char kNakedNew[] = "naked-new";
const char kUncheckedResult[] = "unchecked-result";
const char kUncheckedReader[] = "unchecked-reader";
const char kVarTimeLoop[] = "var-time-loop";
const char kMetricLabelFromRequest[] = "metric-label-from-request";
const char kReceiveWithoutDeadline[] = "receive-without-deadline";
const char kRawSteadyClock[] = "raw-steady-clock";
const char kBlockingInReactor[] = "blocking-in-reactor";
const char kStaleAllow[] = "stale-allow";

// Pseudo-rule: an allow(secret-taint) annotation on an assignment
// declassifies the flow (taint does not propagate through it). It never
// appears as a finding itself, so it is not in AllRules().
const char kSecretTaintDeclassify[] = "secret-taint";

// Files exempt from secret-index / secret-taint-index: the software AES
// fallback is a table cipher (kSbox[state[i]] is its definition); the AES-NI
// path used in production is constant-time, and the fallback is documented
// in docs/STATIC_ANALYSIS.md.
const char* kSecretIndexWhitelist[] = {
    "src/crypto/aes128.cc",
};

// Identifier fragments that mark a value as secret material.
const char* kSecretTokens[] = {"key", "secret", "tag", "mac", "digest", "seed"};

// Fragments that neutralize a secret token inside the same identifier
// ("keyword" is a public dictionary word, not key material).
const char* kTokenExceptions[] = {"keyword", "tagline"};

// Operand fragments that make a comparison public even when a secret-named
// identifier appears (lengths, counts, status checks, metadata).
const char* kPublicOperandMarks[] = {
    ".size", ".length", ".empty", ".ok",    "sizeof",  "bits",
    "count", "version", "type",   "nullptr", ".end()", "null",
};

// Identifier fragments that mark a value as request-derived. A metric name
// or label built from one of these would record which blob or keyword a
// client touched — exactly the access pattern ZLTP's PIR layer exists to
// hide (paper §2). Metric names must be compile-time string literals; see
// docs/OBSERVABILITY.md ("Privacy rule").
const char* kRequestTaintTokens[] = {
    "request", "payload", "blob",  "url",     "uri",  "page",
    "path",    "domain",  "query", "keyword", "body",
};

// lw::crypto::ct helpers (src/crypto/ct.h). A call through `ct::` to one of
// these is a sanitizer: its result is branch/index-safe by construction, so
// taint does not flow out of the call expression.
const char* kCtSanitizers[] = {
    "ValueBarrier", "ValueBarrier32", "NonzeroMask", "ZeroMask",  "EqMask",
    "MaskFromBit32", "Select",        "Select32",    "CondAssign", "CondSwap",
    "EqBytesMask",   "Eq",
};

// Curated variable-time functions: their running time depends on the
// argument values (early-exit compares, hash probes, branchy search).
const char* kVarTimeFree[] = {"memcmp", "strcmp", "strncmp", "strlen",
                              "strstr", "strchr", "memchr"};
const char* kVarTimeStd[] = {"find",        "search",       "count",
                             "lower_bound", "upper_bound",  "binary_search",
                             "sort"};
const char* kVarTimeMember[] = {"find", "count", "at"};

// Members whose value is public even when the object is secret: the size of
// a key is not the key.
const char* kPublicMembers[] = {"size", "length", "empty",   "ok",
                                "begin", "end",   "capacity"};

// Identifiers that can never open a function definition's parameter list.
const char* kNotFunctionNames[] = {
    "if",     "for",      "while",    "switch",   "return",  "sizeof",
    "catch",  "new",      "delete",   "throw",    "alignof", "decltype",
    "static_assert",      "constexpr", "defined", "assert",  "co_await",
    "co_return",          "co_yield",
};

// ------------------------------------------------------------- helpers

bool EndsWithPath(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsCryptoFile(const std::string& path) {
  return path.find("src/crypto/") != std::string::npos;
}

bool IsNetFile(const std::string& path) {
  return path.find("src/net/") != std::string::npos;
}

bool InList(const std::string& s, const char* const* list, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    if (s == list[i]) return true;
  }
  return false;
}
#define LW_IN_LIST(s, list) InList((s), (list), sizeof(list) / sizeof(*(list)))

std::string Lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), ::tolower);
  return s;
}

// Project constants (kFooSize, kAeadKeySize, ...) are compile-time public
// values, not secret data.
bool IsKConstant(const std::string& ident) {
  return ident.size() >= 2 && ident[0] == 'k' &&
         std::isupper(static_cast<unsigned char>(ident[1]));
}

// Secret-name heuristic on a single identifier: carries a secret token and
// is not a known-benign word. Sizes and lengths of secret buffers are
// public; LW_SECRET itself is the annotation macro, not a value.
bool NameHasSecretToken(const std::string& ident) {
  if (ident == "LW_SECRET") return false;
  if (IsKConstant(ident)) return false;
  const std::string low = Lower(ident);
  for (const char* ex : kTokenExceptions) {
    if (low.find(ex) != std::string::npos) return false;
  }
  if (low.find("size") != std::string::npos ||
      low.find("len") != std::string::npos) {
    return false;
  }
  for (const char* tok : kSecretTokens) {
    if (low.find(tok) != std::string::npos) return true;
  }
  return false;
}

// One propagation step recorded by the assignment collector: at `line`,
// `lhs` receives the value of the token range [rhs_a, rhs_b].
struct AssignEvent {
  int line = 0;
  std::string lhs;
  size_t rhs_a = 0;
  size_t rhs_b = 0;  // inclusive
};

class Linter {
 public:
  Linter(std::string path, const TokenizedFile& tf)
      : path_(std::move(path)), tf_(tf), t_(tf.tokens) {}

  std::vector<Finding> Run();

 private:
  // ---- infrastructure
  void ComputeMatches();
  void ComputeSanitizedSpans();
  void CollectSecretNames();
  void ComputeGuardLines();
  bool Allowed(int line, const std::string& rule) const;
  void MarkUsed(int line, const std::string& rule);
  void Report(int line, const std::string& rule, const std::string& message);

  // ---- token utilities
  bool IsIdent(size_t i, const char* text) const {
    return i < t_.size() && t_[i].kind == Tk::kIdent && t_[i].text == text;
  }
  bool IsPunct(size_t i, const char* text) const {
    return i < t_.size() && t_[i].kind == Tk::kPunct && t_[i].text == text;
  }
  // Matching bracket for an opener/closer, or npos.
  size_t Match(size_t i) const {
    return (i < match_.size() && match_[i] != SIZE_MAX) ? match_[i] : SIZE_MAX;
  }
  std::string JoinRange(size_t a, size_t b) const;
  bool LooksPublicOperandRange(size_t a, size_t b) const;
  bool HasSecretIdentRange(size_t a, size_t b) const;
  bool HasRequestTaintedRange(size_t a, size_t b) const;
  bool TaintedRange(size_t a, size_t b,
                    const std::set<std::string>& fn_tainted) const;
  bool IsSubscript(size_t i) const;

  // ---- ported rules (token scans)
  void CheckInsecureRand();
  void CheckNakedNew();
  void CheckMemcmp();
  void CheckCtEquality();
  void CheckSecretIndex();
  void CheckMetricLabel();
  void CheckReceiveDeadline();
  void CheckRawSteadyClock();
  void CheckBlockingInReactor();
  void CheckUncheckedResult();
  void CheckUncheckedReader();
  void CheckVarTimeLoops();

  // ---- taint engine
  void AnalyzeFunctions();
  void ProcessFunction(size_t body_a, size_t body_b);
  void CollectAssignments(size_t body_a, size_t body_b,
                          std::vector<AssignEvent>& events) const;
  bool DeclassifiedAt(int line) const;
  void CheckTaintSinks(size_t body_a, size_t body_b,
                       const std::set<std::string>& fn_tainted);

  void CheckStaleAllows();

  const std::string path_;
  const TokenizedFile& tf_;
  const std::vector<Token>& t_;
  std::vector<Finding> findings_;
  std::set<std::pair<std::string, int>> reported_;  // (rule, line) dedupe

  bool crypto_ = false;
  bool net_ = false;
  bool secret_index_whitelisted_ = false;

  std::vector<size_t> match_;          // bracket matching, both directions
  std::vector<bool> sanitized_;        // token is inside a ct::Helper(...) call
  std::set<std::string> secret_names_; // LW_SECRET-annotated declarations
  std::vector<bool> guard_result_;     // per 1-based line, size line_count+2
  std::vector<bool> guard_reader_;
  std::vector<bool> allow_used_;       // parallel to tf_.allow_sites
};

// ------------------------------------------------ infrastructure

void Linter::ComputeMatches() {
  match_.assign(t_.size(), SIZE_MAX);
  std::vector<size_t> paren, bracket, brace;
  for (size_t i = 0; i < t_.size(); ++i) {
    if (t_[i].kind != Tk::kPunct) continue;
    const std::string& x = t_[i].text;
    if (x == "(") paren.push_back(i);
    else if (x == "[") bracket.push_back(i);
    else if (x == "{") brace.push_back(i);
    else if (x == ")" && !paren.empty()) {
      match_[i] = paren.back();
      match_[paren.back()] = i;
      paren.pop_back();
    } else if (x == "]" && !bracket.empty()) {
      match_[i] = bracket.back();
      match_[bracket.back()] = i;
      bracket.pop_back();
    } else if (x == "}" && !brace.empty()) {
      match_[i] = brace.back();
      match_[brace.back()] = i;
      brace.pop_back();
    }
  }
}

void Linter::ComputeSanitizedSpans() {
  sanitized_.assign(t_.size(), false);
  for (size_t i = 0; i + 3 < t_.size(); ++i) {
    if (!IsIdent(i, "ct") || !IsPunct(i + 1, "::")) continue;
    if (t_[i + 2].kind != Tk::kIdent ||
        !LW_IN_LIST(t_[i + 2].text, kCtSanitizers)) {
      continue;
    }
    if (!IsPunct(i + 3, "(")) continue;
    const size_t close = Match(i + 3);
    if (close == SIZE_MAX) continue;
    for (size_t j = i; j <= close; ++j) sanitized_[j] = true;
  }
}

void Linter::CollectSecretNames() {
  for (size_t i = 0; i < t_.size(); ++i) {
    if (t_[i].pp || !IsIdent(i, "LW_SECRET")) continue;
    // The declared name is the last identifier before the declarator ends
    // (`;`/`,`/`)`/`=`/`{`/`[`/`:`), skipping template argument lists.
    std::string last;
    int angle = 0;
    for (size_t j = i + 1; j < t_.size(); ++j) {
      const Token& tok = t_[j];
      if (tok.kind == Tk::kPunct) {
        if (tok.text == "<") { ++angle; continue; }
        if (tok.text == ">") { if (angle > 0) --angle; continue; }
        if (tok.text == ">>") { angle = std::max(0, angle - 2); continue; }
        if (angle > 0) continue;
        if (tok.text == ";" || tok.text == "," || tok.text == ")" ||
            tok.text == "=" || tok.text == "{" || tok.text == "[" ||
            tok.text == ":") {
          break;
        }
        continue;
      }
      if (angle > 0) continue;
      if (tok.kind == Tk::kIdent) last = tok.text;
    }
    if (!last.empty()) secret_names_.insert(last);
  }
}

void Linter::ComputeGuardLines() {
  guard_result_.assign(static_cast<size_t>(tf_.line_count) + 2, false);
  guard_reader_.assign(static_cast<size_t>(tf_.line_count) + 2, false);
  auto mark = [&](int line, bool result_too) {
    if (line < 1 || line >= static_cast<int>(guard_result_.size())) return;
    guard_reader_[static_cast<size_t>(line)] = true;
    if (result_too) guard_result_[static_cast<size_t>(line)] = true;
  };
  for (size_t i = 0; i < t_.size(); ++i) {
    if (t_[i].kind != Tk::kIdent) continue;
    const std::string& x = t_[i].text;
    if (x == "ok" && i > 0 &&
        (IsPunct(i - 1, ".") || IsPunct(i - 1, "->")) && IsPunct(i + 1, "(")) {
      mark(t_[i].line, true);
    } else if (x.rfind("LW_CHECK", 0) == 0 || x == "LW_ASSIGN_OR_RETURN" ||
               x.rfind("ASSERT_", 0) == 0 || x.rfind("EXPECT_", 0) == 0) {
      mark(t_[i].line, true);
    } else if (x == "LW_RETURN_IF_ERROR") {
      mark(t_[i].line, false);
    }
  }
}

bool Linter::Allowed(int line, const std::string& rule) const {
  if (tf_.file_allows.count(rule) != 0) return true;
  const int idx = line - 1;  // 0-based
  if (idx >= 0 && idx < static_cast<int>(tf_.line_allows.size()) &&
      tf_.line_allows[static_cast<size_t>(idx)].count(rule) != 0) {
    return true;
  }
  // An annotation on the line directly above also applies.
  if (idx - 1 >= 0 && idx - 1 < static_cast<int>(tf_.line_allows.size()) &&
      tf_.line_allows[static_cast<size_t>(idx - 1)].count(rule) != 0) {
    return true;
  }
  return false;
}

void Linter::MarkUsed(int line, const std::string& rule) {
  for (size_t i = 0; i < tf_.allow_sites.size(); ++i) {
    const AllowSite& site = tf_.allow_sites[i];
    if (site.rule != rule) continue;
    if (site.whole_file || site.line == line || site.line == line - 1) {
      allow_used_[i] = true;
    }
  }
}

void Linter::Report(int line, const std::string& rule,
                    const std::string& message) {
  if (Allowed(line, rule)) {
    MarkUsed(line, rule);
    return;
  }
  if (!reported_.insert({rule, line}).second) return;
  findings_.push_back(Finding{path_, line, rule, message});
}

// ------------------------------------------------ token utilities

std::string Linter::JoinRange(size_t a, size_t b) const {
  std::string out;
  for (size_t i = a; i <= b && i < t_.size(); ++i) out += t_[i].text;
  return out;
}

bool Linter::LooksPublicOperandRange(size_t a, size_t b) const {
  const std::string joined = JoinRange(a, b);
  for (const char* mark : kPublicOperandMarks) {
    if (joined.find(mark) != std::string::npos) return true;
  }
  return false;
}

bool Linter::HasSecretIdentRange(size_t a, size_t b) const {
  for (size_t i = a; i <= b && i < t_.size(); ++i) {
    if (t_[i].kind != Tk::kIdent || t_[i].pp) continue;
    if (NameHasSecretToken(t_[i].text)) return true;
  }
  return false;
}

bool Linter::HasRequestTaintedRange(size_t a, size_t b) const {
  for (size_t i = a; i <= b && i < t_.size(); ++i) {
    if (t_[i].kind != Tk::kIdent || t_[i].pp) continue;
    if (IsKConstant(t_[i].text)) continue;
    const std::string low = Lower(t_[i].text);
    for (const char* tok : kRequestTaintTokens) {
      if (low.find(tok) != std::string::npos) return true;
    }
  }
  return false;
}

bool Linter::TaintedRange(size_t a, size_t b,
                          const std::set<std::string>& fn_tainted) const {
  for (size_t i = a; i <= b && i < t_.size(); ++i) {
    if (t_[i].pp) continue;
    if (sanitized_[i]) continue;  // inside a ct:: sanitizer call
    if (t_[i].kind != Tk::kIdent) continue;
    const std::string& name = t_[i].text;
    if (name == "sizeof" && IsPunct(i + 1, "(")) {
      const size_t close = Match(i + 1);
      if (close != SIZE_MAX && close <= b) { i = close; continue; }
    }
    if (name == "LW_SECRET" || IsKConstant(name)) continue;
    // The size of a secret buffer is public: `key.size()` contributes no
    // taint even though `key` does.
    if ((IsPunct(i + 1, ".") || IsPunct(i + 1, "->")) && i + 2 < t_.size() &&
        t_[i + 2].kind == Tk::kIdent &&
        LW_IN_LIST(t_[i + 2].text, kPublicMembers)) {
      i += 2;
      continue;
    }
    if (secret_names_.count(name) != 0) return true;
    if (fn_tainted.count(name) != 0) return true;
    if (crypto_ && NameHasSecretToken(name)) return true;
  }
  return false;
}

// A `[` is an array subscript only when it follows a postfix expression
// (identifier, `)`, or `]`). Everything else — lambda capture lists,
// attributes, structured bindings — is not a memory access. Keywords that
// can directly precede a lambda are excluded too.
bool Linter::IsSubscript(size_t i) const {
  if (!IsPunct(i, "[")) return false;
  if (IsPunct(i + 1, "[")) return false;  // [[attribute]]
  if (i == 0) return false;
  const Token& p = t_[i - 1];
  if (p.kind == Tk::kPunct) return p.text == ")" || p.text == "]";
  if (p.kind != Tk::kIdent) return false;
  static const char* kNotPostfix[] = {"auto",   "return", "case",
                                      "new",    "delete", "throw",
                                      "co_return", "co_yield"};
  return !LW_IN_LIST(p.text, kNotPostfix);
}

// ------------------------------------------------ ported rules

void Linter::CheckInsecureRand() {
  static const char* kRandNames[] = {"rand", "srand", "drand48", "lrand48",
                                     "random_shuffle"};
  for (size_t i = 0; i < t_.size(); ++i) {
    if (t_[i].pp || t_[i].kind != Tk::kIdent) continue;
    if (!LW_IN_LIST(t_[i].text, kRandNames)) continue;
    if (!IsPunct(i + 1, "(")) continue;
    // `std::rand(` is flagged; `lw::Rng::rand(` or any other qualified name
    // is someone else's rand.
    if (i >= 2 && IsPunct(i - 1, "::") && !IsIdent(i - 2, "std")) continue;
    Report(t_[i].line, kInsecureRand,
           "libc randomness is not seedable/secure enough for this "
           "codebase; use lw::Rng (simulation) or lw::SecureRandom "
           "(secrets)");
  }
}

void Linter::CheckNakedNew() {
  for (size_t i = 0; i < t_.size(); ++i) {
    if (t_[i].pp || t_[i].kind != Tk::kIdent) continue;
    if (t_[i].text == "new") {
      if (i > 0 && (IsPunct(i - 1, ".") || IsPunct(i - 1, "->") ||
                    IsPunct(i - 1, "::") || IsIdent(i - 1, "operator"))) {
        continue;
      }
      if (i + 1 < t_.size() &&
          (t_[i + 1].kind == Tk::kIdent || IsPunct(i + 1, "::"))) {
        Report(t_[i].line, kNakedNew,
               "naked new; use std::make_unique/containers so ownership is "
               "explicit and exception-safe");
      }
    } else if (t_[i].text == "delete") {
      if (i > 0 && (IsPunct(i - 1, "=") || IsIdent(i - 1, "operator"))) {
        continue;
      }
      Report(t_[i].line, kNakedNew,
             "naked delete; owning raw pointers are banned outside the "
             "allocator layer");
    }
  }
}

void Linter::CheckMemcmp() {
  for (size_t i = 0; i < t_.size(); ++i) {
    if (t_[i].pp || !IsIdent(i, "memcmp") || !IsPunct(i + 1, "(")) continue;
    const size_t close = Match(i + 1);
    if (close == SIZE_MAX) continue;
    if (HasSecretIdentRange(i + 2, close - 1)) {
      Report(t_[i].line, kCtCompare,
             "memcmp on secret material leaks a timing side channel; use "
             "lw::crypto::ct::Eq");
    }
  }
}

void Linter::CheckCtEquality() {
  // Operands of ==/!= in crypto sources must not be secret-named values.
  for (size_t i = 0; i < t_.size(); ++i) {
    if (t_[i].pp || t_[i].kind != Tk::kPunct) continue;
    if (t_[i].text != "==" && t_[i].text != "!=") continue;
    // Left operand: a postfix chain ending just before the operator.
    size_t l = i;  // exclusive lower bound walker
    while (l > 0) {
      const Token& p = t_[l - 1];
      if (p.kind == Tk::kIdent || p.kind == Tk::kNumber) { --l; continue; }
      if (p.kind == Tk::kPunct &&
          (p.text == "." || p.text == "->" || p.text == "::" ||
           p.text == "-")) { --l; continue; }
      if (p.kind == Tk::kPunct && (p.text == ")" || p.text == "]")) {
        const size_t open = Match(l - 1);
        if (open == SIZE_MAX) break;
        l = open;
        continue;
      }
      break;
    }
    // Right operand.
    size_t r = i;  // exclusive upper bound walker
    while (r + 1 < t_.size()) {
      const Token& n = t_[r + 1];
      if (n.kind == Tk::kIdent || n.kind == Tk::kNumber) { ++r; continue; }
      if (n.kind == Tk::kPunct &&
          (n.text == "." || n.text == "->" || n.text == "::" ||
           n.text == "-")) { ++r; continue; }
      if (n.kind == Tk::kPunct && (n.text == "(" || n.text == "[")) {
        const size_t close = Match(r + 1);
        if (close == SIZE_MAX) break;
        r = close;
        continue;
      }
      break;
    }
    if (l >= i || r <= i) continue;  // an operand is empty
    if (LooksPublicOperandRange(l, i - 1) ||
        LooksPublicOperandRange(i + 1, r)) {
      continue;
    }
    if (HasSecretIdentRange(l, i - 1) || HasSecretIdentRange(i + 1, r)) {
      Report(t_[i].line, kCtCompare,
             "variable-time comparison of secret material; use "
             "lw::crypto::ct::Eq / EqMask");
    }
  }
}

void Linter::CheckSecretIndex() {
  if (secret_index_whitelisted_) return;
  for (size_t i = 0; i < t_.size(); ++i) {
    if (t_[i].pp || !IsSubscript(i)) continue;
    const size_t close = Match(i);
    if (close == SIZE_MAX || close <= i + 1) continue;
    bool nested = false;
    for (size_t j = i + 1; j < close; ++j) {
      if (IsPunct(j, "[")) nested = true;
    }
    if (HasSecretIdentRange(i + 1, close - 1)) {
      Report(t_[i].line, kSecretIndex,
             "array access indexed by secret material; memory addresses "
             "leak through the cache — use a constant-time scan "
             "(crypto::ct::CondAssign over all slots)");
    } else if (crypto_ && nested &&
               !LooksPublicOperandRange(i + 1, close - 1)) {
      Report(t_[i].line, kSecretIndex,
             "nested data-dependent table lookup in crypto code; table "
             "indices derived from processed data leak through the cache");
    }
  }
}

void Linter::CheckMetricLabel() {
  // Metric registration must use compile-time literal names. Literal bodies
  // are blanked by the tokenizer, so any request-tainted identifier among a
  // registration's arguments means the metric name/label is being built
  // from per-request data, which would record the access pattern PIR hides
  // (paper §2).
  static const char* kRegisterNames[] = {
      "AddCounter",      "AddGauge",      "AddHistogram",
      "RegisterCounter", "RegisterGauge", "RegisterHistogram"};
  for (size_t i = 0; i < t_.size(); ++i) {
    if (t_[i].pp || t_[i].kind != Tk::kIdent) continue;
    if (!LW_IN_LIST(t_[i].text, kRegisterNames)) continue;
    if (!IsPunct(i + 1, "(")) continue;
    const size_t close = Match(i + 1);
    if (close == SIZE_MAX || close <= i + 2) continue;
    if (HasRequestTaintedRange(i + 2, close - 1)) {
      Report(t_[i].line, kMetricLabelFromRequest,
             "metric name/label built from request-derived data; telemetry "
             "must be aggregate-only (literal names), or it re-leaks the "
             "access pattern PIR hides — see docs/OBSERVABILITY.md");
    }
  }
}

void Linter::CheckReceiveDeadline() {
  // Outside the transport layer every Receive must name a deadline, even
  // if it is Deadline::Infinite() — an unbounded read should be a visible,
  // deliberate decision (docs/ROBUSTNESS.md), not the default a hung peer
  // exploits. The one sanctioned exception is the server's long-poll on
  // the batcher loop, which carries an allow annotation.
  for (size_t i = 1; i < t_.size(); ++i) {
    if (t_[i].pp || !IsIdent(i, "Receive")) continue;
    if (!IsPunct(i - 1, ".") && !IsPunct(i - 1, "->")) continue;
    if (!IsPunct(i + 1, "(") || !IsPunct(i + 2, ")")) continue;
    Report(t_[i].line, kReceiveWithoutDeadline,
           "Receive() with no deadline blocks forever on a hung peer; pass "
           "a net::Deadline (Deadline::Infinite() if waiting forever is "
           "truly intended) — see docs/ROBUSTNESS.md");
  }
}

void Linter::CheckRawSteadyClock() {
  // Scheduling and transport code (src/zltp, src/net) must read time
  // through lw::Clock: the batch scheduler's admission controller and the
  // transport deadlines are tested with a FakeClock, and a raw
  // steady_clock::now() is wall time those tests cannot advance — the
  // deadline machinery silently stops being deterministic. Instrumentation
  // stamps (trace spans) go through obs::TraceNow() instead, which keeps
  // the one sanctioned direct read in src/obs.
  for (size_t i = 0; i + 3 < t_.size(); ++i) {
    if (t_[i].pp || !IsIdent(i, "steady_clock")) continue;
    if (!IsPunct(i + 1, "::") || !IsIdent(i + 2, "now") ||
        !IsPunct(i + 3, "(")) {
      continue;
    }
    Report(t_[i].line, kRawSteadyClock,
           "raw steady_clock::now() in scheduling code; read time through "
           "the injectable lw::Clock (or obs::TraceNow() for trace stamps) "
           "so FakeClock tests stay deterministic");
  }
}

void Linter::CheckBlockingInReactor() {
  // src/net is reactor-owned territory: one loop thread multiplexes every
  // connection, so a single blocking accept/recv/send there stalls all of
  // them. Accepts must be accept4(..., SOCK_NONBLOCK); recv/send must pass
  // MSG_DONTWAIT (or run on descriptors a dedicated thread owns — the
  // thread-per-connection A/B path in tcp.cc, which carries allow hatches
  // because blocking is its design). See docs/ARCHITECTURE.md.
  for (size_t i = 0; i < t_.size(); ++i) {
    if (t_[i].pp) continue;
    const bool is_accept = IsIdent(i, "accept");
    const bool is_recv = IsIdent(i, "recv");
    const bool is_send = IsIdent(i, "send");
    const bool is_connect = IsIdent(i, "connect");
    if (!is_accept && !is_recv && !is_send && !is_connect) continue;
    if (!IsPunct(i + 1, "(")) continue;
    // x.send(...) / x->recv(...) are method calls on our own framed
    // abstractions, not POSIX syscalls.
    if (i > 0 && (IsPunct(i - 1, ".") || IsPunct(i - 1, "->"))) continue;
    // `ssize_t recv(` is a declaration, not a call: a preceding identifier
    // is a return type unless it is an expression-context keyword.
    if (i > 0 && t_[i - 1].kind == Tk::kIdent) {
      static const char* kExprKeywords[] = {"return", "co_return", "co_await",
                                            "co_yield", "throw", "else", "do"};
      if (!LW_IN_LIST(t_[i - 1].text, kExprKeywords)) continue;
    }
    if (is_accept) {
      Report(t_[i].line, kBlockingInReactor,
             "blocking accept() in reactor-owned code stalls every "
             "connection the loop serves; use accept4(..., SOCK_NONBLOCK) "
             "on an epoll-registered listener (threaded A/B path: justify "
             "with an allow) — see docs/ARCHITECTURE.md");
      continue;
    }
    if (is_connect) {
      // A bare ::connect on a blocking socket wedges the loop for a full
      // TCP handshake (or its multi-second timeout). The non-blocking dial
      // idiom necessarily treats EINPROGRESS as success and finishes via
      // EPOLLOUT + SO_ERROR (TcpConnectStart / Reactor::Connect), so a
      // connect call with no EINPROGRESS handling in sight is the blocking
      // form.
      bool einprogress = false;
      const int limit = t_[i].line + 8;
      for (size_t j = i + 1; j < t_.size() && t_[j].line <= limit; ++j) {
        if (IsIdent(j, "EINPROGRESS")) {
          einprogress = true;
          break;
        }
      }
      if (einprogress) continue;
      Report(t_[i].line, kBlockingInReactor,
             "blocking connect() in reactor-owned code stalls every "
             "connection the loop serves for a full handshake; start the "
             "dial non-blocking (SOCK_NONBLOCK, EINPROGRESS) and finish it "
             "via EPOLLOUT + SO_ERROR (threaded A/B path: justify with an "
             "allow) — see docs/ARCHITECTURE.md");
      continue;
    }
    const size_t close = Match(i + 1);
    bool dontwait = false;
    if (close != SIZE_MAX) {
      for (size_t j = i + 2; j < close; ++j) {
        if (IsIdent(j, "MSG_DONTWAIT")) {
          dontwait = true;
          break;
        }
      }
    }
    if (dontwait) continue;
    Report(t_[i].line, kBlockingInReactor,
           std::string("blocking ") + (is_recv ? "recv()" : "send()") +
               " in reactor-owned code stalls every connection the loop "
               "serves; pass MSG_DONTWAIT and resume via the connection's "
               "frame queue on EAGAIN (threaded A/B path: justify with an "
               "allow) — see docs/ARCHITECTURE.md");
  }
}

void Linter::CheckUncheckedResult() {
  for (size_t i = 0; i + 3 < t_.size(); ++i) {
    if (t_[i].pp || !IsPunct(i, ".")) continue;
    if (!IsIdent(i + 1, "value") || !IsPunct(i + 2, "(") ||
        !IsPunct(i + 3, ")")) {
      continue;
    }
    // A visible guard on the same or the three preceding lines counts:
    // .ok() tests, LW_CHECK/LW_ASSIGN_OR_RETURN, or test assertions.
    const int line = t_[i + 1].line;
    bool guarded = false;
    for (int g = std::max(1, line - 3); g <= line; ++g) {
      if (guard_result_[static_cast<size_t>(g)]) guarded = true;
    }
    if (guarded) continue;
    Report(line, kUncheckedResult,
           "Result<T>::value() without a visible ok() check; use "
           "LW_ASSIGN_OR_RETURN or LW_CHECK the status first");
  }
}

void Linter::CheckUncheckedReader() {
  // Every lw::Reader decode returns Result<T>; wiring that value into the
  // surrounding expression without a status check turns a truncated frame
  // into an InvariantViolation at best and silently-wrong data at worst.
  // Three shapes are flagged:
  //   *r.U32()                    dereference of the temporary
  //   r.LengthPrefixed(...)->...  member access through the temporary
  //   r.U32();                    discarded read (bytes consumed, value
  //                               and status both dropped)
  // Writer methods of the same names all take arguments and return void,
  // so the zero-arg discard pattern cannot fire on a Writer.
  static const char* kDecodeNames[] = {"U8",  "U16",    "U32",
                                       "U64", "Raw",    "LengthPrefixed",
                                       "String"};
  static const char* kDiscardNames[] = {"U8",  "U16",            "U32",
                                        "U64", "LengthPrefixed", "String"};
  auto guarded = [&](int line) {
    for (int g = std::max(1, line - 3); g <= line; ++g) {
      if (guard_reader_[static_cast<size_t>(g)]) return true;
    }
    return false;
  };
  auto report = [&](int line) {
    if (guarded(line)) return;
    Report(line, kUncheckedReader,
           "Reader decode result used without a status check; a short or "
           "malformed frame must become a ProtocolError, not data — use "
           "LW_ASSIGN_OR_RETURN (see docs/FUZZING.md)");
  };
  for (size_t i = 0; i < t_.size(); ++i) {
    if (t_[i].pp) continue;
    // *r.U32( — dereference of the decode temporary.
    if (IsPunct(i, "*") && i + 4 < t_.size() &&
        t_[i + 1].kind == Tk::kIdent && IsPunct(i + 2, ".") &&
        t_[i + 3].kind == Tk::kIdent &&
        LW_IN_LIST(t_[i + 3].text, kDecodeNames) && IsPunct(i + 4, "(")) {
      report(t_[i + 3].line);
    }
    // .U32(args)-> or .U32(args).value — reading through the temporary.
    if (IsPunct(i, ".") && i + 2 < t_.size() &&
        t_[i + 1].kind == Tk::kIdent &&
        LW_IN_LIST(t_[i + 1].text, kDecodeNames) && IsPunct(i + 2, "(")) {
      const size_t close = Match(i + 2);
      if (close != SIZE_MAX && close + 1 < t_.size()) {
        if (IsPunct(close + 1, "->") ||
            (IsPunct(close + 1, ".") && IsIdent(close + 2, "value"))) {
          report(t_[i + 1].line);
        }
      }
    }
    // Statement of the exact shape `obj.member...U16();` — discarded read.
    const bool stmt_start =
        i == 0 || IsPunct(i - 1, ";") || IsPunct(i - 1, "{") ||
        IsPunct(i - 1, "}");
    if (stmt_start && t_[i].kind == Tk::kIdent) {
      size_t k = i;
      while (k + 2 < t_.size() && IsPunct(k + 1, ".") &&
             t_[k + 2].kind == Tk::kIdent) {
        k += 2;
      }
      if (k > i && LW_IN_LIST(t_[k].text, kDiscardNames) &&
          IsPunct(k + 1, "(") && IsPunct(k + 2, ")") && IsPunct(k + 3, ";")) {
        report(t_[k].line);
      }
    }
  }
}

void Linter::CheckVarTimeLoops() {
  // Sequential walk tracking which brace depths are loop bodies; an early
  // exit while any loop is open, or a secret-named loop bound, is
  // variable time. Crypto-only.
  int depth = 0;
  bool pending_loop = false;
  std::vector<int> loop_depths;
  for (size_t i = 0; i < t_.size(); ++i) {
    if (t_[i].pp) continue;
    const Token& tok = t_[i];
    if (tok.kind == Tk::kIdent &&
        (tok.text == "for" || tok.text == "while") && IsPunct(i + 1, "(")) {
      const size_t close = Match(i + 1);
      if (close == SIZE_MAX) continue;
      // Only the parenthesized head is the loop bound; the body may
      // legitimately touch secrets.
      if (close > i + 2 && !LooksPublicOperandRange(i + 1, close) &&
          HasSecretIdentRange(i + 2, close - 1)) {
        Report(tok.line, kVarTimeLoop,
               "loop bound depends on secret material; iteration counts "
               "leak through timing — bound by the (public) buffer size");
      }
      pending_loop = true;
      i = close;  // the head's own `;` tokens must not clear the flag
      continue;
    }
    if (tok.kind == Tk::kPunct) {
      if (tok.text == "{") {
        ++depth;
        if (pending_loop) {
          loop_depths.push_back(depth);
          pending_loop = false;
        }
      } else if (tok.text == "}") {
        if (!loop_depths.empty() && loop_depths.back() == depth) {
          loop_depths.pop_back();
        }
        --depth;
      } else if (tok.text == ";" && pending_loop) {
        // Braceless loop body or a do-while tail; nothing to track.
        pending_loop = false;
      }
      continue;
    }
    if (!loop_depths.empty() && tok.kind == Tk::kIdent &&
        (tok.text == "return" ||
         (tok.text == "break" && IsPunct(i + 1, ";")))) {
      Report(tok.line, kVarTimeLoop,
             "early exit from a loop in crypto code is variable-time; "
             "accumulate into a mask and exit at the bound instead");
    }
  }
}

// ------------------------------------------------ taint engine

// Walks the token stream for function definitions: `name(params)` followed
// (possibly via const/noexcept/trailing return/ctor-init) by a `{` body.
void Linter::AnalyzeFunctions() {
  const size_t n = t_.size();
  size_t i = 0;
  while (i < n) {
    if (t_[i].pp || !IsPunct(i, "(") || i == 0 ||
        t_[i - 1].kind != Tk::kIdent ||
        LW_IN_LIST(t_[i - 1].text, kNotFunctionNames)) {
      ++i;
      continue;
    }
    const size_t close = Match(i);
    if (close == SIZE_MAX) {
      ++i;
      continue;
    }
    // Walk the declaration suffix looking for the body `{`.
    size_t body = SIZE_MAX;
    size_t k = close + 1;
    while (k < n && body == SIZE_MAX) {
      const Token& tok = t_[k];
      if (tok.pp) { ++k; continue; }
      if (tok.kind == Tk::kIdent) { ++k; continue; }  // const, noexcept, types
      if (tok.kind != Tk::kPunct) break;
      const std::string& x = tok.text;
      if (x == "{") { body = k; break; }
      if (x == "->" || x == "::" || x == "<" || x == ">" || x == "*" ||
          x == "&" || x == "&&") { ++k; continue; }
      if (x == "(" || x == "[") {  // noexcept(...), [[attributes]]
        const size_t m = Match(k);
        if (m == SIZE_MAX) break;
        k = m + 1;
        continue;
      }
      if (x == ":") {  // constructor initializer list
        ++k;
        while (k < n) {
          if (IsPunct(k, "(")) {
            const size_t m = Match(k);
            if (m == SIZE_MAX) break;
            k = m + 1;
          } else if (IsPunct(k, "{")) {
            // `member_{init}` braces follow an identifier; the body brace
            // follows `)` or `}` of the previous initializer.
            if (k > 0 && t_[k - 1].kind == Tk::kIdent) {
              const size_t m = Match(k);
              if (m == SIZE_MAX) break;
              k = m + 1;
            } else {
              body = k;
              break;
            }
          } else if (IsPunct(k, ";") || IsPunct(k, "}")) {
            break;
          } else {
            ++k;
          }
        }
        break;
      }
      break;  // `;` (declaration), `=`, `,`, operators: not a definition
    }
    if (body == SIZE_MAX) {
      i = close + 1;
      continue;
    }
    const size_t body_close = Match(body);
    if (body_close == SIZE_MAX) {
      i = body + 1;
      continue;
    }
    if (body_close > body + 1) ProcessFunction(body + 1, body_close - 1);
    i = body_close + 1;
  }
}

void Linter::CollectAssignments(size_t body_a, size_t body_b,
                                std::vector<AssignEvent>& events) const {
  static const char* kAssignOps[] = {"=",  "+=", "-=", "*=",  "/=", "%=",
                                     "&=", "|=", "^=", "<<=", ">>="};
  auto rhs_end = [&](size_t from) {
    int depth = 0;
    size_t j = from;
    for (; j <= body_b && j < t_.size(); ++j) {
      if (t_[j].kind != Tk::kPunct) continue;
      const std::string& x = t_[j].text;
      if (x == "(" || x == "[" || x == "{") ++depth;
      else if (x == ")" || x == "]" || x == "}") {
        if (depth == 0) break;
        --depth;
      } else if ((x == ";" || x == ",") && depth == 0) {
        break;
      }
    }
    return j;  // exclusive
  };
  for (size_t i = body_a; i <= body_b && i < t_.size(); ++i) {
    if (t_[i].pp) continue;
    const Token& tok = t_[i];
    if (tok.kind == Tk::kPunct && LW_IN_LIST(tok.text, kAssignOps)) {
      if (i > 0 && IsIdent(i - 1, "operator")) continue;
      // Find the base identifier of the lvalue chain (a.b[c] = x taints a).
      // The walk crosses subscript/call groups and member/scope connectors
      // only; a second identifier with no connector is a declaration's type
      // (`const std::uint64_t mask = ...` must bind `mask`, not `const`).
      size_t j = i;
      std::string base;
      bool expect_ident = true;
      while (j > body_a) {
        const Token& p = t_[j - 1];
        if (expect_ident) {
          if (p.kind == Tk::kIdent) {
            base = p.text;
            --j;
            expect_ident = false;
            continue;
          }
          if (p.kind == Tk::kPunct && (p.text == "]" || p.text == ")")) {
            const size_t open = Match(j - 1);
            if (open == SIZE_MAX) break;
            j = open;
            continue;
          }
          break;
        }
        if (p.kind == Tk::kPunct &&
            (p.text == "." || p.text == "->" || p.text == "::")) {
          --j;
          expect_ident = true;
          continue;
        }
        break;
      }
      if (base.empty()) continue;
      const size_t end = rhs_end(i + 1);
      if (end > i + 1) {
        events.push_back({tok.line, base, i + 1, end - 1});
      }
      continue;
    }
    if (tok.kind != Tk::kIdent) continue;
    // Range-for: `for (decl : container)` — the loop variable takes the
    // container's taint.
    if (tok.text == "for" && IsPunct(i + 1, "(")) {
      const size_t close = Match(i + 1);
      if (close == SIZE_MAX) continue;
      size_t colon = SIZE_MAX;
      int depth = 0;
      for (size_t j = i + 2; j < close; ++j) {
        if (t_[j].kind != Tk::kPunct) continue;
        const std::string& x = t_[j].text;
        if (x == "(" || x == "[" || x == "<") ++depth;
        else if (x == ")" || x == "]" || x == ">") --depth;
        else if (x == ";" && depth == 0) break;  // classic for
        else if (x == ":" && depth == 0) { colon = j; break; }
      }
      if (colon != SIZE_MAX && colon > i + 2 && colon + 1 < close) {
        std::string var;
        for (size_t j = i + 2; j < colon; ++j) {
          if (t_[j].kind == Tk::kIdent) var = t_[j].text;
        }
        if (!var.empty()) {
          events.push_back({tok.line, var, colon + 1, close - 1});
        }
      }
      continue;
    }
    // LW_ASSIGN_OR_RETURN(decl, expr): decl's last identifier gets expr's
    // taint.
    if (tok.text == "LW_ASSIGN_OR_RETURN" && IsPunct(i + 1, "(")) {
      const size_t close = Match(i + 1);
      if (close == SIZE_MAX) continue;
      size_t comma = SIZE_MAX;
      int depth = 0;
      for (size_t j = i + 2; j < close; ++j) {
        if (t_[j].kind != Tk::kPunct) continue;
        const std::string& x = t_[j].text;
        if (x == "(" || x == "[" || x == "{" || x == "<") ++depth;
        else if (x == ")" || x == "]" || x == "}" || x == ">") --depth;
        else if (x == "," && depth == 0) { comma = j; break; }
      }
      if (comma != SIZE_MAX && comma + 1 < close) {
        std::string var;
        for (size_t j = i + 2; j < comma; ++j) {
          if (t_[j].kind == Tk::kIdent) var = t_[j].text;
        }
        if (!var.empty()) {
          events.push_back({tok.line, var, comma + 1, close - 1});
        }
      }
      continue;
    }
    // Constructor-style declaration `Type name(init);`.
    if (i > body_a && IsPunct(i + 1, "(")) {
      const Token& prev = t_[i - 1];
      const bool type_before =
          (prev.kind == Tk::kIdent &&
           !LW_IN_LIST(prev.text, kNotFunctionNames) &&
           prev.text != "operator") ||
          (prev.kind == Tk::kPunct &&
           (prev.text == ">" || prev.text == "*" || prev.text == "&"));
      if (!type_before || LW_IN_LIST(tok.text, kNotFunctionNames)) continue;
      const size_t close = Match(i + 1);
      if (close != SIZE_MAX && close > i + 2 && IsPunct(close + 1, ";")) {
        events.push_back({tok.line, tok.text, i + 2, close - 1});
      }
    }
  }
}

bool Linter::DeclassifiedAt(int line) const {
  return Allowed(line, kSecretTaintDeclassify);
}

void Linter::ProcessFunction(size_t body_a, size_t body_b) {
  std::vector<AssignEvent> events;
  CollectAssignments(body_a, body_b, events);
  std::set<std::string> fn_tainted;
  bool changed = true;
  while (changed) {
    changed = false;
    for (const AssignEvent& e : events) {
      if (fn_tainted.count(e.lhs) != 0) continue;
      if (!TaintedRange(e.rhs_a, e.rhs_b, fn_tainted)) continue;
      if (DeclassifiedAt(e.line)) {
        MarkUsed(e.line, kSecretTaintDeclassify);
        continue;
      }
      fn_tainted.insert(e.lhs);
      changed = true;
    }
  }
  CheckTaintSinks(body_a, body_b, fn_tainted);
}

void Linter::CheckTaintSinks(size_t body_a, size_t body_b,
                             const std::set<std::string>& fn_tainted) {
  auto tainted = [&](size_t a, size_t b) {
    return a <= b && TaintedRange(a, b, fn_tainted);
  };
  for (size_t i = body_a; i <= body_b && i < t_.size(); ++i) {
    if (t_[i].pp) continue;
    const Token& tok = t_[i];
    if (tok.kind == Tk::kIdent) {
      // Branch sinks: if/while/switch conditions and the middle clause of a
      // classic for. Range-for and ?: are not branch sinks (a ct-select is
      // the sanctioned way to use masks).
      if ((tok.text == "if" || tok.text == "while" ||
           tok.text == "switch") &&
          IsPunct(i + 1, "(")) {
        const size_t close = Match(i + 1);
        if (close != SIZE_MAX && close > i + 2 &&
            tainted(i + 2, close - 1)) {
          Report(tok.line, kTaintBranch,
                 "branch condition depends on secret-tainted data; the "
                 "taken path leaks the secret through timing — restructure "
                 "with lw::crypto::ct masks (Select/CondAssign), or "
                 "declassify with lwlint: allow(secret-taint)");
        }
        continue;
      }
      if (tok.text == "for" && IsPunct(i + 1, "(")) {
        const size_t close = Match(i + 1);
        if (close == SIZE_MAX) continue;
        size_t s1 = SIZE_MAX, s2 = SIZE_MAX;
        int depth = 0;
        for (size_t j = i + 2; j < close; ++j) {
          if (t_[j].kind != Tk::kPunct) continue;
          const std::string& x = t_[j].text;
          if (x == "(" || x == "[" || x == "{") ++depth;
          else if (x == ")" || x == "]" || x == "}") --depth;
          else if (x == ";" && depth == 0) {
            if (s1 == SIZE_MAX) s1 = j;
            else { s2 = j; break; }
          }
        }
        if (s1 != SIZE_MAX && s2 != SIZE_MAX && s2 > s1 + 1 &&
            tainted(s1 + 1, s2 - 1)) {
          Report(tok.line, kTaintBranch,
                 "loop condition depends on secret-tainted data; iteration "
                 "counts leak through timing — bound the loop by a public "
                 "size, or declassify with lwlint: allow(secret-taint)");
        }
        continue;
      }
      // Variable-time call sinks.
      if (IsPunct(i + 1, "(")) {
        bool var_time = false;
        if (LW_IN_LIST(tok.text, kVarTimeFree)) {
          var_time = true;
        } else if (LW_IN_LIST(tok.text, kVarTimeStd) && i >= 2 &&
                   IsPunct(i - 1, "::") && IsIdent(i - 2, "std")) {
          var_time = true;
        } else if (LW_IN_LIST(tok.text, kVarTimeMember) && i >= 1 &&
                   (IsPunct(i - 1, ".") || IsPunct(i - 1, "->"))) {
          var_time = true;
        }
        if (var_time) {
          const size_t close = Match(i + 1);
          if (close != SIZE_MAX && close > i + 2 &&
              tainted(i + 2, close - 1)) {
            Report(tok.line, kTaintCall,
                   "secret-tainted data passed to the variable-time "
                   "function '" + tok.text +
                       "'; its running time depends on the argument — use "
                       "lw::crypto::ct helpers (EqMask + a full scan), or "
                       "declassify with lwlint: allow(secret-taint)");
          }
        }
      }
      // Pointer arithmetic on a buffer base: `.data() + tainted`.
      if (tok.text == "data" && i >= 1 &&
          (IsPunct(i - 1, ".") || IsPunct(i - 1, "->")) &&
          IsPunct(i + 1, "(") && IsPunct(i + 2, ")") &&
          (IsPunct(i + 3, "+") || IsPunct(i + 3, "+="))) {
        size_t r = i + 3;
        while (r + 1 < t_.size()) {
          const Token& n = t_[r + 1];
          if (n.kind == Tk::kIdent || n.kind == Tk::kNumber) { ++r; continue; }
          if (n.kind == Tk::kPunct &&
              (n.text == "." || n.text == "->" || n.text == "::")) {
            ++r;
            continue;
          }
          if (n.kind == Tk::kPunct && (n.text == "(" || n.text == "[")) {
            const size_t close = Match(r + 1);
            if (close == SIZE_MAX) break;
            r = close;
            continue;
          }
          break;
        }
        if (r > i + 3 && tainted(i + 4, r)) {
          Report(t_[i + 3].line, kTaintIndex,
                 "pointer offset computed from secret-tainted data; the "
                 "address touched leaks through the cache — use a "
                 "constant-time scan, or declassify with lwlint: "
                 "allow(secret-taint)");
        }
      }
      continue;
    }
    // Index sinks: array subscripts with a tainted index expression.
    if (IsSubscript(i) && !secret_index_whitelisted_) {
      const size_t close = Match(i);
      if (close != SIZE_MAX && close > i + 1 && tainted(i + 1, close - 1)) {
        Report(tok.line, kTaintIndex,
               "array subscript computed from secret-tainted data; memory "
               "addresses leak through the cache — use a constant-time "
               "scan (ct::CondAssign over all slots), or declassify with "
               "lwlint: allow(secret-taint)");
      }
    }
  }
}

// ------------------------------------------------ stale allows

void Linter::CheckStaleAllows() {
  for (size_t i = 0; i < tf_.allow_sites.size(); ++i) {
    if (allow_used_[i]) continue;
    const AllowSite& site = tf_.allow_sites[i];
    // allow(stale-allow) hatches are consumed by the reports below, never
    // reported themselves — that way acknowledging a dead hatch is one
    // annotation, not an infinite regress.
    if (site.rule == kStaleAllow) continue;
    const std::string kind = site.whole_file ? "allowfile" : "allow";
    Report(site.line, kStaleAllow,
           "lwlint: " + kind + "(" + site.rule +
               ") suppresses no findings; stale escape hatches hide "
               "regressions — remove it (or fix the rule name)");
  }
}

// ------------------------------------------------ driver

std::vector<Finding> Linter::Run() {
  crypto_ = IsCryptoFile(path_);
  net_ = IsNetFile(path_);
  for (const char* wl : kSecretIndexWhitelist) {
    if (EndsWithPath(path_, wl)) secret_index_whitelisted_ = true;
  }
  allow_used_.assign(tf_.allow_sites.size(), false);
  ComputeMatches();
  ComputeSanitizedSpans();
  CollectSecretNames();
  ComputeGuardLines();

  CheckInsecureRand();
  CheckNakedNew();
  CheckMemcmp();
  CheckUncheckedResult();
  CheckUncheckedReader();
  CheckMetricLabel();
  if (!net_) CheckReceiveDeadline();
  if (net_ || path_.find("src/zltp/") != std::string::npos) {
    CheckRawSteadyClock();
  }
  if (net_) CheckBlockingInReactor();
  CheckSecretIndex();
  if (crypto_) {
    CheckCtEquality();
    CheckVarTimeLoops();
  }
  AnalyzeFunctions();
  CheckStaleAllows();

  std::sort(findings_.begin(), findings_.end(),
            [](const Finding& a, const Finding& b) {
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  return std::move(findings_);
}

bool IsSourceFile(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".hpp" || ext == ".cpp";
}

}  // namespace

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> kRules = {
      kCtCompare,       kSecretIndex,     kTaintBranch,
      kTaintIndex,      kTaintCall,       kInsecureRand,
      kNakedNew,        kUncheckedResult, kUncheckedReader,
      kVarTimeLoop,     kMetricLabelFromRequest,
      kReceiveWithoutDeadline,            kRawSteadyClock,
      kBlockingInReactor,                 kStaleAllow,
  };
  return kRules;
}

std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content) {
  const TokenizedFile tf = Tokenize(content);
  return Linter(path, tf).Run();
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths) {
  return LintPaths(paths, LintOptions{});
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const LintOptions& options) {
  namespace fs = std::filesystem;
  std::vector<std::string> excludes = options.excludes;
  // The fixtures are deliberate true positives; linting them would make
  // every full-tree run fail by design.
  excludes.push_back("tools/lint/testdata");
  auto excluded = [&](const std::string& generic) {
    for (const std::string& e : excludes) {
      if (!e.empty() && generic.find(e) != std::string::npos) return true;
    }
    return false;
  };
  std::vector<Finding> findings;
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path()) &&
            !excluded(entry.path().generic_string())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      if (!excluded(fs::path(p).generic_string())) files.push_back(p);
    } else {
      findings.push_back(Finding{p, 0, "io-error", "no such file or directory"});
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      findings.push_back(
          Finding{file.string(), 0, "io-error", "cannot open file"});
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    // Normalize the path so whitelists match regardless of invocation dir.
    const std::string display = file.generic_string();
    std::vector<Finding> file_findings = LintSource(display, ss.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return os.str();
}

namespace {

// GitHub workflow-command escaping: data escapes %, \r, \n; property values
// additionally escape : and , (the command's own delimiters).
std::string GhEscape(const std::string& s, bool property) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '%': out += "%25"; break;
      case '\r': out += "%0D"; break;
      case '\n': out += "%0A"; break;
      case ':': if (property) { out += "%3A"; break; } out += c; break;
      case ',': if (property) { out += "%2C"; break; } out += c; break;
      default: out += c;
    }
  }
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string FormatFindingGithub(const Finding& f) {
  std::ostringstream os;
  os << "::error file=" << GhEscape(f.file, true)
     << ",line=" << f.line << ",title=lwlint " << GhEscape(f.rule, true)
     << "::" << GhEscape(f.message, false);
  return os.str();
}

std::string FormatSarif(const std::vector<Finding>& findings) {
  std::set<std::string> rules;
  for (const Finding& f : findings) rules.insert(f.rule);
  std::ostringstream os;
  os << "{\"version\":\"2.1.0\","
     << "\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\","
     << "\"runs\":[{\"tool\":{\"driver\":{\"name\":\"lwlint\","
     << "\"informationUri\":\"docs/STATIC_ANALYSIS.md\",\"rules\":[";
  bool first = true;
  for (const std::string& r : rules) {
    if (!first) os << ",";
    first = false;
    os << "{\"id\":\"" << JsonEscape(r) << "\"}";
  }
  os << "]}},\"results\":[";
  first = true;
  for (const Finding& f : findings) {
    if (!first) os << ",";
    first = false;
    os << "{\"ruleId\":\"" << JsonEscape(f.rule) << "\","
       << "\"level\":\"error\","
       << "\"message\":{\"text\":\"" << JsonEscape(f.message) << "\"},"
       << "\"locations\":[{\"physicalLocation\":{"
       << "\"artifactLocation\":{\"uri\":\"" << JsonEscape(f.file) << "\"},"
       << "\"region\":{\"startLine\":" << std::max(1, f.line) << "}}}]}";
  }
  os << "]}]}";
  return os.str();
}

}  // namespace lw::lint
