#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace lw::lint {
namespace {

// ---------------------------------------------------------------- rules

const char kCtCompare[] = "ct-compare";
const char kSecretIndex[] = "secret-index";
const char kInsecureRand[] = "insecure-rand";
const char kNakedNew[] = "naked-new";
const char kUncheckedResult[] = "unchecked-result";
const char kUncheckedReader[] = "unchecked-reader";
const char kVarTimeLoop[] = "var-time-loop";
const char kMetricLabelFromRequest[] = "metric-label-from-request";
const char kReceiveWithoutDeadline[] = "receive-without-deadline";

// Files exempt from secret-index: the software AES fallback is a table
// cipher (kSbox[state[i]] is its definition); the AES-NI path used in
// production is constant-time, and the fallback is documented in
// docs/STATIC_ANALYSIS.md.
const char* kSecretIndexWhitelist[] = {
    "src/crypto/aes128.cc",
};

// Identifier fragments that mark a value as secret material.
const char* kSecretTokens[] = {"key", "secret", "tag", "mac", "digest", "seed"};

// Fragments that neutralize a secret token inside the same identifier
// ("keyword" is a public dictionary word, not key material).
const char* kTokenExceptions[] = {"keyword", "tagline"};

// Operand fragments that make a comparison public even when a secret-named
// identifier appears (lengths, counts, status checks, metadata).
const char* kPublicOperandMarks[] = {
    ".size", ".length", ".empty", ".ok",    "sizeof",  "bits",
    "count", "version", "type",   "nullptr", ".end()", "null",
};

// Identifier fragments that mark a value as request-derived. A metric name
// or label built from one of these would record which blob or keyword a
// client touched — exactly the access pattern ZLTP's PIR layer exists to
// hide (paper §2). Metric names must be compile-time string literals; see
// docs/OBSERVABILITY.md ("Privacy rule").
const char* kRequestTaintTokens[] = {
    "request", "payload", "blob",  "url",     "uri",  "page",
    "path",    "domain",  "query", "keyword", "body",
};

// --------------------------------------------------- scanning machinery

struct ScannedFile {
  // Source lines with comments and string/char literal bodies blanked out,
  // so the rules never fire on prose or log messages.
  std::vector<std::string> code;
  // allows[i] = rules suppressed on line i (0-based), via `lwlint: allow`.
  std::vector<std::set<std::string>> allows;
  std::set<std::string> file_allows;  // via `lwlint: allowfile`
};

void ParseAnnotations(const std::string& comment, std::size_t line_index,
                      ScannedFile& out) {
  static const std::regex kAnnot(R"(lwlint:\s*(allowfile|allow)\s*\(([^)]*)\))");
  for (auto it = std::sregex_iterator(comment.begin(), comment.end(), kAnnot);
       it != std::sregex_iterator(); ++it) {
    const bool whole_file = (*it)[1] == "allowfile";
    std::stringstream rules((*it)[2].str());
    std::string rule;
    while (std::getline(rules, rule, ',')) {
      rule.erase(std::remove_if(rule.begin(), rule.end(), ::isspace),
                 rule.end());
      if (rule.empty()) continue;
      if (whole_file) {
        out.file_allows.insert(rule);
      } else {
        out.allows[line_index].insert(rule);
      }
    }
  }
}

// Splits into lines, strips comments and literal bodies, collects allows.
ScannedFile Scan(const std::string& content) {
  ScannedFile out;
  std::vector<std::string> lines;
  {
    std::stringstream ss(content);
    std::string line;
    while (std::getline(ss, line)) lines.push_back(line);
  }
  out.code.resize(lines.size());
  out.allows.resize(lines.size());

  bool in_block_comment = false;
  for (std::size_t ln = 0; ln < lines.size(); ++ln) {
    const std::string& src = lines[ln];
    std::string code;
    code.reserve(src.size());
    std::string comment_text;
    for (std::size_t i = 0; i < src.size(); ++i) {
      if (in_block_comment) {
        comment_text += src[i];
        if (src[i] == '/' && i > 0 && src[i - 1] == '*') in_block_comment = false;
        continue;
      }
      const char c = src[i];
      const char next = i + 1 < src.size() ? src[i + 1] : '\0';
      if (c == '/' && next == '/') {
        comment_text.append(src, i, std::string::npos);
        break;
      }
      if (c == '/' && next == '*') {
        in_block_comment = true;
        ++i;
        continue;
      }
      if (c == '"' || c == '\'') {
        // Blank the literal body; keep the quotes so expressions still parse.
        code += c;
        ++i;
        while (i < src.size()) {
          if (src[i] == '\\') {
            i += 2;
            continue;
          }
          if (src[i] == c) break;
          ++i;
        }
        code += c;
        continue;
      }
      code += c;
    }
    out.code[ln] = std::move(code);
    if (!comment_text.empty()) ParseAnnotations(comment_text, ln, out);
  }
  return out;
}

bool EndsWithPath(const std::string& path, const std::string& suffix) {
  return path.size() >= suffix.size() &&
         path.compare(path.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool IsCryptoFile(const std::string& path) {
  return path.find("src/crypto/") != std::string::npos;
}

bool IsNetFile(const std::string& path) {
  return path.find("src/net/") != std::string::npos;
}

// True if `text` contains an identifier carrying a secret token (and not a
// known-benign word like "keyword").
bool HasSecretIdentifier(const std::string& text) {
  static const std::regex kIdent(R"([A-Za-z_][A-Za-z0-9_]*)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kIdent);
       it != std::sregex_iterator(); ++it) {
    std::string ident = it->str();
    // Project constants (kFooSize, kAeadKeySize, ...) are compile-time
    // public values, not secret data.
    if (ident.size() >= 2 && ident[0] == 'k' &&
        std::isupper(static_cast<unsigned char>(ident[1]))) {
      continue;
    }
    std::transform(ident.begin(), ident.end(), ident.begin(), ::tolower);
    bool benign = false;
    for (const char* ex : kTokenExceptions) {
      if (ident.find(ex) != std::string::npos) benign = true;
    }
    // Sizes and lengths of secret buffers are public.
    if (ident.find("size") != std::string::npos ||
        ident.find("len") != std::string::npos) {
      benign = true;
    }
    if (benign) continue;
    for (const char* tok : kSecretTokens) {
      if (ident.find(tok) != std::string::npos) return true;
    }
  }
  return false;
}

bool LooksPublicOperand(const std::string& operand) {
  for (const char* mark : kPublicOperandMarks) {
    if (operand.find(mark) != std::string::npos) return true;
  }
  return false;
}

// True if `text` contains an identifier carrying a request-taint token.
// kConstant-style identifiers (kPageSize, ...) are compile-time values,
// not request data.
bool HasRequestTaintedIdentifier(const std::string& text) {
  static const std::regex kIdent(R"([A-Za-z_][A-Za-z0-9_]*)");
  for (auto it = std::sregex_iterator(text.begin(), text.end(), kIdent);
       it != std::sregex_iterator(); ++it) {
    std::string ident = it->str();
    if (ident.size() >= 2 && ident[0] == 'k' &&
        std::isupper(static_cast<unsigned char>(ident[1]))) {
      continue;
    }
    std::transform(ident.begin(), ident.end(), ident.begin(), ::tolower);
    for (const char* tok : kRequestTaintTokens) {
      if (ident.find(tok) != std::string::npos) return true;
    }
  }
  return false;
}

class Linter {
 public:
  Linter(std::string path, const ScannedFile& scan)
      : path_(std::move(path)), scan_(scan) {}

  std::vector<Finding> Run() {
    const bool crypto = IsCryptoFile(path_);
    const bool net = IsNetFile(path_);
    bool secret_index_whitelisted = false;
    for (const char* wl : kSecretIndexWhitelist) {
      if (EndsWithPath(path_, wl)) secret_index_whitelisted = true;
    }
    for (std::size_t ln = 0; ln < scan_.code.size(); ++ln) {
      const std::string& code = scan_.code[ln];
      if (code.empty()) {
        TrackLoops(code);
        continue;
      }
      CheckInsecureRand(ln, code);
      CheckNakedNew(ln, code);
      CheckMemcmp(ln, code);
      CheckUncheckedResult(ln, code);
      CheckUncheckedReader(ln, code);
      CheckMetricLabel(ln, code);
      if (!net) CheckReceiveDeadline(ln, code);
      if (!secret_index_whitelisted) CheckSecretIndex(ln, code, crypto);
      if (crypto) {
        CheckCtEquality(ln, code);
        CheckVarTimeLoop(ln, code);
      }
      TrackLoops(code);
    }
    return std::move(findings_);
  }

 private:
  bool Allowed(std::size_t ln, const std::string& rule) const {
    if (scan_.file_allows.count(rule) != 0) return true;
    if (scan_.allows[ln].count(rule) != 0) return true;
    // An annotation on the line directly above also applies.
    if (ln > 0 && scan_.allows[ln - 1].count(rule) != 0) return true;
    return false;
  }

  void Report(std::size_t ln, const std::string& rule, std::string message) {
    if (Allowed(ln, rule)) return;
    findings_.push_back(
        Finding{path_, static_cast<int>(ln + 1), rule, std::move(message)});
  }

  void CheckInsecureRand(std::size_t ln, const std::string& code) {
    static const std::regex kRand(
        R"((^|[^:A-Za-z0-9_])(std::)?(rand|srand|drand48|lrand48|random_shuffle)\s*\()");
    if (std::regex_search(code, kRand)) {
      Report(ln, kInsecureRand,
             "libc randomness is not seedable/secure enough for this "
             "codebase; use lw::Rng (simulation) or lw::SecureRandom "
             "(secrets)");
    }
  }

  void CheckNakedNew(std::size_t ln, const std::string& code) {
    static const std::regex kNew(R"((^|[^A-Za-z0-9_.:])new\s+[A-Za-z_:])");
    static const std::regex kDelete(R"((^|[^A-Za-z0-9_])delete(\s|\[|;))");
    if (std::regex_search(code, kNew)) {
      Report(ln, kNakedNew,
             "naked new; use std::make_unique/containers so ownership is "
             "explicit and exception-safe");
    }
    if (std::regex_search(code, kDelete) &&
        code.find("= delete") == std::string::npos) {
      Report(ln, kNakedNew,
             "naked delete; owning raw pointers are banned outside the "
             "allocator layer");
    }
  }

  void CheckMemcmp(std::size_t ln, const std::string& code) {
    static const std::regex kMemcmp(R"((^|[^A-Za-z0-9_])(std::)?memcmp\s*\()");
    std::smatch m;
    if (!std::regex_search(code, m, kMemcmp)) return;
    const std::string args = code.substr(m.position(0));
    if (HasSecretIdentifier(args)) {
      Report(ln, kCtCompare,
             "memcmp on secret material leaks a timing side channel; use "
             "lw::crypto::ct::Eq");
    }
  }

  void CheckCtEquality(std::size_t ln, const std::string& code) {
    // Operands of ==/!= in crypto sources must not be secret-named values.
    static const std::regex kCmp(
        R"(([A-Za-z0-9_.:\]\[()>-]+)\s*(==|!=)\s*([A-Za-z0-9_.:\]\[()>-]+))");
    for (auto it = std::sregex_iterator(code.begin(), code.end(), kCmp);
         it != std::sregex_iterator(); ++it) {
      const std::string lhs = (*it)[1].str();
      const std::string rhs = (*it)[3].str();
      if (LooksPublicOperand(lhs) || LooksPublicOperand(rhs)) continue;
      if (HasSecretIdentifier(lhs) || HasSecretIdentifier(rhs)) {
        Report(ln, kCtCompare,
               "variable-time comparison of secret material; use "
               "lw::crypto::ct::Eq / EqMask");
        return;
      }
    }
  }

  void CheckSecretIndex(std::size_t ln, const std::string& code, bool crypto) {
    // (a) Everywhere: an index expression naming secret material.
    // (b) In src/crypto: nested data-dependent lookups tbl[x[i]] — the
    //     classic cache-timing shape even when nothing is named "key".
    for (std::size_t i = 0; i < code.size(); ++i) {
      if (code[i] != '[') continue;
      // Structured bindings (`auto& [key, val]`) are not array accesses.
      std::size_t before = i;
      while (before > 0 && code[before - 1] == ' ') --before;
      if (before > 0 && code[before - 1] == '&') continue;
      if (before >= 4 && code.compare(before - 4, 4, "auto") == 0) continue;
      int depth = 1;
      std::size_t j = i + 1;
      bool nested = false;
      while (j < code.size() && depth > 0) {
        if (code[j] == '[') {
          ++depth;
          nested = true;
        }
        if (code[j] == ']') --depth;
        ++j;
      }
      const std::string index = code.substr(i + 1, j - i - 2);
      // Attribute syntax [[...]] is not an index expression.
      if (index.empty() || code.compare(i, 2, "[[") == 0) continue;
      if (HasSecretIdentifier(index)) {
        Report(ln, kSecretIndex,
               "array access indexed by secret material; memory addresses "
               "leak through the cache — use a constant-time scan "
               "(crypto::ct::CondAssign over all slots)");
        return;
      }
      if (crypto && nested && !LooksPublicOperand(index)) {
        Report(ln, kSecretIndex,
               "nested data-dependent table lookup in crypto code; table "
               "indices derived from processed data leak through the cache");
        return;
      }
    }
  }

  void CheckMetricLabel(std::size_t ln, const std::string& code) {
    // Metric registration must use compile-time literal names. String
    // literals are blanked before this runs, so a clean registration shows
    // only `""` arguments; any surviving request-tainted identifier means
    // the metric name/label is being built from per-request data, which
    // would record the access pattern PIR hides (paper §2).
    static const std::regex kRegister(
        R"((^|[^A-Za-z0-9_])(AddCounter|AddGauge|AddHistogram|RegisterCounter|RegisterGauge|RegisterHistogram)\s*\()");
    std::smatch m;
    if (!std::regex_search(code, m, kRegister)) return;
    const std::string args =
        code.substr(static_cast<std::size_t>(m.position(2)));
    if (HasRequestTaintedIdentifier(args)) {
      Report(ln, kMetricLabelFromRequest,
             "metric name/label built from request-derived data; telemetry "
             "must be aggregate-only (literal names), or it re-leaks the "
             "access pattern PIR hides — see docs/OBSERVABILITY.md");
    }
  }

  void CheckReceiveDeadline(std::size_t ln, const std::string& code) {
    // Outside the transport layer every Receive must name a deadline, even
    // if it is Deadline::Infinite() — an unbounded read should be a visible,
    // deliberate decision (docs/ROBUSTNESS.md), not the default a hung peer
    // exploits. The one sanctioned exception is the server's long-poll on
    // the batcher loop, which carries an allow annotation.
    static const std::regex kBareReceive(R"((\.|->)\s*Receive\s*\(\s*\))");
    if (std::regex_search(code, kBareReceive)) {
      Report(ln, kReceiveWithoutDeadline,
             "Receive() with no deadline blocks forever on a hung peer; pass "
             "a net::Deadline (Deadline::Infinite() if waiting forever is "
             "truly intended) — see docs/ROBUSTNESS.md");
    }
  }

  void CheckUncheckedResult(std::size_t ln, const std::string& code) {
    static const std::regex kValue(R"(\.\s*value\s*\(\s*\))");
    if (!std::regex_search(code, kValue)) return;
    // A visible guard on the same or the three preceding lines counts:
    // .ok() tests, LW_CHECK/LW_ASSIGN_OR_RETURN, or test assertions.
    static const std::regex kGuard(
        R"(\.ok\s*\(|LW_CHECK|LW_ASSIGN_OR_RETURN|ASSERT_|EXPECT_)");
    const std::size_t first = ln >= 3 ? ln - 3 : 0;
    for (std::size_t g = first; g <= ln; ++g) {
      if (std::regex_search(scan_.code[g], kGuard)) return;
    }
    Report(ln, kUncheckedResult,
           "Result<T>::value() without a visible ok() check; use "
           "LW_ASSIGN_OR_RETURN or LW_CHECK the status first");
  }

  void CheckUncheckedReader(std::size_t ln, const std::string& code) {
    // Every lw::Reader decode returns Result<T>; wiring that value into the
    // surrounding expression without a status check turns a truncated frame
    // into an InvariantViolation at best and silently-wrong data at worst.
    // Three shapes are flagged:
    //   *r.U32()                    dereference of the temporary
    //   r.LengthPrefixed(...)->...  member access through the temporary
    //   r.U32();                    discarded read (bytes consumed, value
    //                               and status both dropped)
    // Writer methods of the same names all take arguments and return void,
    // so the zero-arg discard pattern cannot fire on a Writer.
    static const std::regex kDerefTemp(
        R"(\*\s*[A-Za-z_][A-Za-z0-9_]*\s*\.\s*(U8|U16|U32|U64|Raw|LengthPrefixed|String)\s*\()");
    static const std::regex kThroughTemp(
        R"(\.\s*(U8|U16|U32|U64|Raw|LengthPrefixed|String)\s*\([^()]*\)\s*(->|\.\s*value\b))");
    static const std::regex kDiscarded(
        R"(^\s*[A-Za-z_][A-Za-z0-9_.]*\s*\.\s*(U8|U16|U32|U64|LengthPrefixed|String)\s*\(\s*\)\s*;\s*$)");
    const bool hit = std::regex_search(code, kDerefTemp) ||
                     std::regex_search(code, kThroughTemp) ||
                     std::regex_search(code, kDiscarded);
    if (!hit) return;
    // Same guard window as unchecked-result: a visible check on this line
    // or the three preceding ones counts.
    static const std::regex kGuard(
        R"(\.ok\s*\(|LW_CHECK|LW_ASSIGN_OR_RETURN|LW_RETURN_IF_ERROR|ASSERT_|EXPECT_)");
    const std::size_t first = ln >= 3 ? ln - 3 : 0;
    for (std::size_t g = first; g <= ln; ++g) {
      if (std::regex_search(scan_.code[g], kGuard)) return;
    }
    Report(ln, kUncheckedReader,
           "Reader decode result used without a status check; a short or "
           "malformed frame must become a ProtocolError, not data — use "
           "LW_ASSIGN_OR_RETURN (see docs/FUZZING.md)");
  }

  // Loop tracking for var-time-loop: maintains brace depth and the depths at
  // which loop bodies opened, fed one code line at a time.
  void TrackLoops(const std::string& code) {
    static const std::regex kLoopHead(R"((^|[^A-Za-z0-9_])(for|while)\s*\()");
    if (std::regex_search(code, kLoopHead)) pending_loop_ = true;
    for (const char c : code) {
      if (c == '(') {
        ++paren_depth_;
      } else if (c == ')') {
        if (paren_depth_ > 0) --paren_depth_;
      } else if (c == '{') {
        ++depth_;
        if (pending_loop_) {
          loop_depths_.push_back(depth_);
          pending_loop_ = false;
        }
      } else if (c == '}') {
        if (!loop_depths_.empty() && loop_depths_.back() == depth_) {
          loop_depths_.pop_back();
        }
        --depth_;
      } else if (c == ';' && pending_loop_ && paren_depth_ == 0) {
        // Braceless loop body or a do-while tail; nothing to track. The
        // semicolons inside a for(;;) head sit at paren depth > 0 and must
        // not clear the pending flag.
        pending_loop_ = false;
      }
    }
  }

  void CheckVarTimeLoop(std::size_t ln, const std::string& code) {
    // Secret-dependent bound in the loop head.
    static const std::regex kLoopHead(R"((^|[^A-Za-z0-9_])(for|while)\s*\()");
    std::smatch m;
    if (std::regex_search(code, m, kLoopHead)) {
      // Only the parenthesized condition is the loop bound; the body on the
      // same line may legitimately touch secrets.
      std::size_t open = code.find('(', static_cast<std::size_t>(m.position(0)));
      std::size_t close = open;
      int pdepth = 0;
      while (close < code.size()) {
        if (code[close] == '(') ++pdepth;
        if (code[close] == ')' && --pdepth == 0) break;
        ++close;
      }
      const std::string head = code.substr(open, close - open + 1);
      if (!LooksPublicOperand(head) && HasSecretIdentifier(head)) {
        Report(ln, kVarTimeLoop,
               "loop bound depends on secret material; iteration counts "
               "leak through timing — bound by the (public) buffer size");
      }
    }
    // Early exits inside any loop body in crypto code.
    if (!loop_depths_.empty()) {
      static const std::regex kEarlyExit(
          R"((^|[^A-Za-z0-9_])(break\s*;|return\b))");
      if (std::regex_search(code, kEarlyExit)) {
        Report(ln, kVarTimeLoop,
               "early exit from a loop in crypto code is variable-time; "
               "accumulate into a mask and exit at the bound instead");
      }
    }
  }

  const std::string path_;
  const ScannedFile& scan_;
  std::vector<Finding> findings_;

  int depth_ = 0;
  int paren_depth_ = 0;
  bool pending_loop_ = false;
  std::vector<int> loop_depths_;
};

bool IsSourceFile(const std::filesystem::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".hpp" || ext == ".cpp";
}

}  // namespace

const std::vector<std::string>& AllRules() {
  static const std::vector<std::string> kRules = {
      kCtCompare,       kSecretIndex,     kInsecureRand,
      kNakedNew,        kUncheckedResult, kUncheckedReader,
      kVarTimeLoop,     kMetricLabelFromRequest,
      kReceiveWithoutDeadline,
  };
  return kRules;
}

std::vector<Finding> LintSource(const std::string& path,
                                const std::string& content) {
  const ScannedFile scan = Scan(content);
  return Linter(path, scan).Run();
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths) {
  namespace fs = std::filesystem;
  std::vector<Finding> findings;
  std::vector<fs::path> files;
  for (const std::string& p : paths) {
    std::error_code ec;
    if (fs::is_directory(p, ec)) {
      for (const auto& entry : fs::recursive_directory_iterator(p, ec)) {
        if (entry.is_regular_file() && IsSourceFile(entry.path())) {
          files.push_back(entry.path());
        }
      }
    } else if (fs::is_regular_file(p, ec)) {
      files.push_back(p);
    } else {
      findings.push_back(Finding{p, 0, "io-error", "no such file or directory"});
    }
  }
  std::sort(files.begin(), files.end());
  for (const fs::path& file : files) {
    std::ifstream in(file, std::ios::binary);
    if (!in) {
      findings.push_back(
          Finding{file.string(), 0, "io-error", "cannot open file"});
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    // Normalize the path so whitelists match regardless of invocation dir.
    const std::string display = file.generic_string();
    std::vector<Finding> file_findings = LintSource(display, ss.str());
    findings.insert(findings.end(),
                    std::make_move_iterator(file_findings.begin()),
                    std::make_move_iterator(file_findings.end()));
  }
  return findings;
}

std::string FormatFinding(const Finding& f) {
  std::ostringstream os;
  os << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message;
  return os.str();
}

}  // namespace lw::lint
