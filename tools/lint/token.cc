#include "token.h"

#include <cctype>
#include <regex>

namespace lw::lint {
namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}
bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

// Multi-character punctuators, longest first so maximal munch falls out of
// first-match order.
const char* const kPuncts[] = {
    "...", "->*", "<<=", ">>=", "<=>",
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "##",
    ".*",
};

// True when the raw-string prefix ending at `i` (exclusive) spells one of
// R, u8R, uR, UR, LR and the identifier is exactly that prefix.
bool IsRawPrefix(const std::string& s, size_t start, size_t end) {
  const std::string p = s.substr(start, end - start);
  return p == "R" || p == "u8R" || p == "uR" || p == "UR" || p == "LR";
}

}  // namespace

TokenizedFile Tokenize(const std::string& content) {
  // Splice line continuations first, remembering each spliced character's
  // original line so token line numbers stay meaningful.
  std::string s;
  std::vector<int> line_of;  // 0-based original line per spliced char
  s.reserve(content.size());
  line_of.reserve(content.size());
  int line = 0;
  int max_line = 0;
  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (c == '\\' &&
        (i + 1 < content.size() && (content[i + 1] == '\n' ||
                                    (content[i + 1] == '\r' &&
                                     i + 2 < content.size() &&
                                     content[i + 2] == '\n')))) {
      i += (content[i + 1] == '\r') ? 2 : 1;
      ++line;
      max_line = std::max(max_line, line);
      continue;
    }
    s.push_back(c);
    line_of.push_back(line);
    if (c == '\n') {
      ++line;
      max_line = std::max(max_line, line);
    }
  }
  if (!content.empty() && content.back() != '\n') max_line = line;

  TokenizedFile out;
  out.line_count = max_line + 1;
  if (content.empty()) out.line_count = 0;

  // Comment text gathered per original line, scanned for annotations after
  // lexing. A block comment spanning lines contributes to each line it
  // touches so `lwlint: allow` works from either comment style.
  std::vector<std::string> comment_text(
      static_cast<size_t>(out.line_count) + 1);
  auto add_comment_char = [&](int ln, char c) {
    if (ln >= 0 && ln < static_cast<int>(comment_text.size())) {
      comment_text[static_cast<size_t>(ln)].push_back(c);
    }
  };

  bool in_pp = false;  // current logical line is a preprocessor directive
  bool at_line_start = true;  // only whitespace seen since last newline
  const size_t n = s.size();
  size_t i = 0;
  auto push = [&](Tk kind, std::string text, size_t at) {
    Token t;
    t.kind = kind;
    t.text = std::move(text);
    t.line = line_of[at] + 1;
    t.pp = in_pp;
    out.tokens.push_back(std::move(t));
  };

  while (i < n) {
    const char c = s[i];
    if (c == '\n') {
      in_pp = false;
      at_line_start = true;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '/' && i + 1 < n && s[i + 1] == '/') {
      const size_t start = i;
      while (i < n && s[i] != '\n') {
        add_comment_char(line_of[i], s[i]);
        ++i;
      }
      (void)start;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && s[i + 1] == '*') {
      i += 2;
      while (i < n && !(s[i] == '*' && i + 1 < n && s[i + 1] == '/')) {
        if (s[i] != '\n') add_comment_char(line_of[i], s[i]);
        ++i;
      }
      if (i < n) i += 2;
      continue;
    }
    if (c == '#' && at_line_start) {
      in_pp = true;
      push(Tk::kPunct, "#", i);
      at_line_start = false;
      ++i;
      continue;
    }
    at_line_start = false;
    // Identifier — possibly a raw-string prefix.
    if (IsIdentStart(c)) {
      const size_t start = i;
      while (i < n && IsIdentChar(s[i])) ++i;
      if (i < n && s[i] == '"' && IsRawPrefix(s, start, i)) {
        // Raw string literal: R"delim( ... )delim"
        ++i;  // past the quote
        std::string delim;
        while (i < n && s[i] != '(') delim.push_back(s[i++]);
        if (i < n) ++i;  // past '('
        const std::string close = ")" + delim + "\"";
        const size_t end = s.find(close, i);
        i = (end == std::string::npos) ? n : end + close.size();
        push(Tk::kString, "\"\"", start);
        continue;
      }
      // Ordinary string/char prefix (u8"...", L'...') — treat the literal
      // below; the prefix itself is harmless as an ident, but fold it into
      // the literal when directly adjacent.
      if (i < n && (s[i] == '"' || s[i] == '\'')) {
        const std::string p = s.substr(start, i - start);
        if (p == "u8" || p == "u" || p == "U" || p == "L") {
          const char q = s[i];
          ++i;
          while (i < n && s[i] != q) {
            if (s[i] == '\\' && i + 1 < n) ++i;
            ++i;
          }
          if (i < n) ++i;
          push(q == '"' ? Tk::kString : Tk::kChar,
               q == '"' ? "\"\"" : "''", start);
          continue;
        }
      }
      push(Tk::kIdent, s.substr(start, i - start), start);
      continue;
    }
    // Number: leading digit, or .digit.
    if (IsDigit(c) || (c == '.' && i + 1 < n && IsDigit(s[i + 1]))) {
      const size_t start = i;
      ++i;
      while (i < n) {
        const char d = s[i];
        if (IsIdentChar(d) || d == '.') {
          // Exponent sign: 1e+5, 0x1p-3.
          if ((d == 'e' || d == 'E' || d == 'p' || d == 'P') && i + 1 < n &&
              (s[i + 1] == '+' || s[i + 1] == '-')) {
            i += 2;
            continue;
          }
          ++i;
          continue;
        }
        // Digit separator: ' between digits continues the number.
        if (d == '\'' && i + 1 < n && IsIdentChar(s[i + 1])) {
          i += 2;
          continue;
        }
        break;
      }
      push(Tk::kNumber, s.substr(start, i - start), start);
      continue;
    }
    // String literal.
    if (c == '"') {
      const size_t start = i;
      ++i;
      while (i < n && s[i] != '"') {
        if (s[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n) ++i;
      push(Tk::kString, "\"\"", start);
      continue;
    }
    // Character literal.
    if (c == '\'') {
      const size_t start = i;
      ++i;
      while (i < n && s[i] != '\'') {
        if (s[i] == '\\' && i + 1 < n) ++i;
        ++i;
      }
      if (i < n) ++i;
      push(Tk::kChar, "''", start);
      continue;
    }
    // Punctuator, maximal munch.
    {
      bool matched = false;
      for (const char* p : kPuncts) {
        const size_t len = std::char_traits<char>::length(p);
        if (s.compare(i, len, p) == 0) {
          push(Tk::kPunct, p, i);
          i += len;
          matched = true;
          break;
        }
      }
      if (!matched) {
        push(Tk::kPunct, std::string(1, c), i);
        ++i;
      }
    }
  }

  // Annotation parsing over the collected comment text.
  out.line_allows.assign(static_cast<size_t>(out.line_count) + 1, {});
  static const std::regex kAllowRe(
      R"(lwlint:\s*(allowfile|allow)\s*\(([^)]*)\))");
  for (size_t ln = 0; ln < comment_text.size(); ++ln) {
    const std::string& text = comment_text[ln];
    if (text.empty()) continue;
    auto begin = std::sregex_iterator(text.begin(), text.end(), kAllowRe);
    for (auto it = begin; it != std::sregex_iterator(); ++it) {
      const bool whole_file = (*it)[1].str() == "allowfile";
      const std::string list = (*it)[2].str();
      size_t pos = 0;
      while (pos <= list.size()) {
        size_t comma = list.find(',', pos);
        if (comma == std::string::npos) comma = list.size();
        std::string rule = list.substr(pos, comma - pos);
        // trim
        while (!rule.empty() && std::isspace(
                   static_cast<unsigned char>(rule.front()))) {
          rule.erase(rule.begin());
        }
        while (!rule.empty() && std::isspace(
                   static_cast<unsigned char>(rule.back()))) {
          rule.pop_back();
        }
        if (!rule.empty()) {
          if (whole_file) {
            out.file_allows.insert(rule);
          } else if (ln < out.line_allows.size()) {
            out.line_allows[ln].insert(rule);
          }
          out.allow_sites.push_back(
              {static_cast<int>(ln) + 1, rule, whole_file});
        }
        pos = comma + 1;
      }
    }
  }
  return out;
}

}  // namespace lw::lint
