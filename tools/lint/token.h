// C++ tokenizer shared by every lwlint rule.
//
// The old engine re-derived "is this inside a comment / string?" per rule
// with line regexes; this tokenizer settles it once. It handles the lexical
// corners that matter for linting real code:
//
//   - line (//) and block (/* */) comments, including the allow/allowfile
//     annotations inside them, which are parsed out per line;
//   - string and character literals with escapes, and raw string literals
//     R"delim(...)delim" with any prefix (u8R, uR, UR, LR) — literal bodies
//     are dropped so rules never fire on prose;
//   - digit separators (1'000'000) so the ' does not open a char literal;
//   - line continuations (backslash-newline), spliced before lexing with the
//     original line numbers preserved;
//   - multi-character punctuators by maximal munch (::, ->, <=>, <<=, ...),
//     so `==` is one token and `a = =b` can never be confused with it.
//
// Tokens inside preprocessor directives are marked `pp` so rules can skip
// macro definitions (a rule firing on the *definition* of LW_CHECK would be
// noise; its uses are ordinary tokens).
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <vector>

namespace lw::lint {

enum class Tk : std::uint8_t {
  kIdent,    // identifiers and keywords
  kNumber,   // numeric literals (body kept: suffixes can matter)
  kString,   // string literal, body blanked; text is "\"\""
  kChar,     // character literal, body blanked; text is "''"
  kPunct,    // operators and punctuation, maximal munch
};

struct Token {
  Tk kind;
  std::string text;
  int line = 0;  // 1-based line of the token's first character
  bool pp = false;  // token belongs to a preprocessor directive
};

// One allow(...) / allowfile(...) annotation occurrence, kept positionally
// so the stale-suppression rule can report hatches that shield nothing.
struct AllowSite {
  int line = 0;  // 1-based line the annotation appears on
  std::string rule;
  bool whole_file = false;
};

struct TokenizedFile {
  std::vector<Token> tokens;
  int line_count = 0;
  // allows[i]: rules suppressed on 0-based line i via `lwlint: allow`.
  std::vector<std::set<std::string>> line_allows;
  std::set<std::string> file_allows;  // via `lwlint: allowfile`
  std::vector<AllowSite> allow_sites;
};

TokenizedFile Tokenize(const std::string& content);

}  // namespace lw::lint
