#!/bin/sh
# Checks that relative markdown links resolve to real files.
#
# Usage: check_md_links.sh <repo_root>
#
# Scans the curated doc set (README, DESIGN, EXPERIMENTS, ROADMAP and
# docs/*.md — not SNIPPETS.md/PAPERS.md, whose bodies quote external code
# and papers) for inline links `[text](target)`, skips absolute URLs and
# pure #anchors, strips any #fragment, and verifies the target exists
# relative to the linking file. Exits non-zero listing every broken link.
set -u

root=${1:-.}
status=0

for md in "$root"/README.md "$root"/DESIGN.md "$root"/EXPERIMENTS.md \
          "$root"/ROADMAP.md "$root"/docs/*.md; do
  [ -f "$md" ] || continue
  # One inline link target per line; targets are cut at the first ')'.
  # Fenced code blocks and inline `code` spans are stripped first: link
  # syntax inside examples (docs/LIGHTSCRIPT.md templates) is not a link.
  broken=$(
    dir=$(dirname "$md")
    awk '/^```/ { fenced = !fenced; next } !fenced' "$md" |
    sed 's/`[^`]*`//g' |
    grep -o '](\([^)]*\))' 2>/dev/null | sed 's/^](//; s/)$//' |
    while IFS= read -r target; do
      case $target in
        http://*|https://*|mailto:*) continue ;;  # external
        '#'*) continue ;;                         # same-file anchor
        '') continue ;;
      esac
      path=${target%%#*}
      [ -z "$path" ] && continue
      [ -e "$dir/$path" ] || echo "$md: broken link -> $target"
    done
  )
  if [ -n "$broken" ]; then
    printf '%s\n' "$broken"
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "check_md_links: broken relative links found" >&2
  exit 1
fi
echo "check_md_links: all relative links resolve"
exit 0
