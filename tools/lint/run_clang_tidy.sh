#!/usr/bin/env bash
# Runs clang-tidy (config: .clang-tidy at the repo root) over the Lightweb
# sources using a CMake compile database.
#
#   tools/lint/run_clang_tidy.sh [build-dir] [path...]
#
#   build-dir  directory containing compile_commands.json
#              (default: build/default, then build)
#   path...    files or directories to check (default: src)
#
# Exits 0 with a notice when clang-tidy is not installed, so the script is
# safe to call unconditionally from CI and pre-commit hooks on machines
# without the clang toolchain (the baked toolchain here is gcc-only; lwlint
# and the sanitizer presets provide the enforced coverage).
set -u -o pipefail

repo_root="$(cd "$(dirname "$0")/../.." && pwd)"
cd "$repo_root"

if ! command -v clang-tidy >/dev/null 2>&1; then
  echo "run_clang_tidy.sh: clang-tidy not found in PATH; skipping." >&2
  echo "Install LLVM/clang-tidy to run this check locally." >&2
  exit 0
fi

build_dir="${1:-}"
if [ -n "$build_dir" ]; then
  shift
else
  for candidate in build/default build; do
    if [ -f "$candidate/compile_commands.json" ]; then
      build_dir="$candidate"
      break
    fi
  done
fi

if [ -z "$build_dir" ] || [ ! -f "$build_dir/compile_commands.json" ]; then
  echo "run_clang_tidy.sh: no compile_commands.json found." >&2
  echo "Configure with -DCMAKE_EXPORT_COMPILE_COMMANDS=ON first, e.g.:" >&2
  echo "  cmake --preset default -DCMAKE_EXPORT_COMPILE_COMMANDS=ON" >&2
  exit 2
fi

paths=("$@")
if [ "${#paths[@]}" -eq 0 ]; then
  paths=(src)
fi

files=()
for p in "${paths[@]}"; do
  if [ -d "$p" ]; then
    while IFS= read -r f; do
      files+=("$f")
    done < <(find "$p" -name '*.cc' | sort)
  else
    files+=("$p")
  fi
done

if [ "${#files[@]}" -eq 0 ]; then
  echo "run_clang_tidy.sh: no sources under: ${paths[*]}" >&2
  exit 2
fi

echo "clang-tidy ($(clang-tidy --version | head -n1)) on ${#files[@]} files..."
status=0
clang-tidy -p "$build_dir" --quiet "${files[@]}" || status=$?
exit "$status"
