// lwlint fixture: allow() hatches that suppress nothing are findings, and
// allow(stale-allow) acknowledges one deliberately kept hatch.
#include <cstdint>

int CleanButAnnotated(int x) {
  return x + 1;  // lwlint: allow(insecure-rand)  line 6: stale
}

// lwlint: allow(naked-new)  line 9: stale (nothing below to suppress)
int AlsoClean(int y) { return y * 2; }

// A hatch kept on purpose (e.g. for code that only exists in some builds)
// is acknowledged with stale-allow so it does not fire forever:
// lwlint: allow(insecure-rand, stale-allow)
int Acknowledged(int z) { return z - 1; }
