// lwlint fixture: allow(secret-taint) declassifies at an assignment, and
// downstream uses of the declassified value stop firing.
#include <cstdint>

std::uint64_t RevealPath(LW_SECRET std::uint64_t ident,
                         const std::uint64_t* position) {
  // Fixture mirror of the Path ORAM leaf reveal: the mapped value is
  // uniform random and consumed exactly once, so exposing it is the design.
  // lwlint: allow(secret-taint-index, secret-taint)
  const std::uint64_t leaf = position[ident];
  if (leaf > 7) return leaf - 7;  // leaf was declassified: must not fire
  return leaf;
}

std::uint64_t StillTainted(LW_SECRET std::uint64_t ident) {
  const std::uint64_t copy = ident + 1;  // no allow here: taint flows
  if (copy > 7) return 1;  // line 17: still fires
  return 0;
}
