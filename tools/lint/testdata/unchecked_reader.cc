// lwlint fixture: unchecked-reader true positives and guarded negatives.
#include "util/io.h"

unsigned BadDerefTemporary(lw::Reader& r) {
  return *r.U32();  // line 5: dereferences the Result temporary unchecked
}

unsigned long BadThroughTemporary(lw::Reader& r) {
  return r.LengthPrefixed()->size();  // line 9: member access, unchecked
}

void BadDiscardedRead(lw::Reader& r) {
  r.U16();  // line 13: bytes consumed, status and value dropped
}

lw::Result<unsigned> GoodAssignOrReturn(lw::Reader& r) {
  LW_ASSIGN_OR_RETURN(const unsigned v, r.U32());  // macro guard: no finding
  return v;
}

int GoodOkChecked(lw::Reader& r) {
  auto v = r.U32();
  if (!v.ok()) return -1;
  return static_cast<int>(*v);  // named variable, not a decode temporary
}
