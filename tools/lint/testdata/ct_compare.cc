// lwlint fixture: ct-compare true positives. Linted as if under src/crypto/.
#include <cstring>

bool BadMemcmp(const unsigned char* key_a, const unsigned char* key_b) {
  return std::memcmp(key_a, key_b, 32) == 0;  // line 5: memcmp on key material
}

bool BadTagEquality(unsigned long tag, unsigned long expected_tag) {
  return tag == expected_tag;  // line 9: ==/!= on tag material
}

bool OkPublicComparison(const unsigned char* key, unsigned long n) {
  (void)key;
  return n == 16;  // public scalar: no finding
}
