// lwlint fixture: receive-without-deadline true/false positives.

struct FakeDeadline {
  static FakeDeadline Infinite();
};

struct FakeTransport {
  int Receive();
  int Receive(const FakeDeadline& deadline);
};

int BadBareReceive(FakeTransport& t) {
  return t.Receive();  // line 13: no deadline
}

int BadBareReceiveThroughPointer(FakeTransport* t) {
  return t->Receive();  // line 17: no deadline
}

int ExplicitDeadlineIsFine(FakeTransport& t, const FakeDeadline& d) {
  return t.Receive(d);  // no finding: deadline passed
}

int ExplicitInfiniteIsFine(FakeTransport& t) {
  // Waiting forever is allowed when it is spelled out.
  return t.Receive(FakeDeadline::Infinite());  // no finding
}

int AllowedLongPoll(FakeTransport& t) {
  // The batcher's long-poll escape hatch.
  // lwlint: allow(receive-without-deadline)
  return t.Receive();  // no finding: allowed on the line above
}
