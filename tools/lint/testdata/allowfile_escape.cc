// lwlint fixture: allowfile suppresses a rule for the whole file.
// lwlint: allowfile(insecure-rand) — fixture exercising the file-wide hatch
#include <cstdlib>

int First() {
  return std::rand();  // suppressed by the allowfile above
}

int Second() {
  return std::rand();  // suppressed too, any distance from the annotation
}
