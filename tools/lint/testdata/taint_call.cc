// lwlint fixture: secret-taint-call — tainted data handed to functions
// whose running time depends on their argument.
#include <cstddef>
#include <cstring>
#include <unordered_map>

bool MemcmpOnSecret(LW_SECRET const unsigned char* token,
                    const unsigned char* pub, std::size_t n) {
  return memcmp(token, pub, n) == 0;  // line 9: variable-time compare
}

bool MapProbe(LW_SECRET std::uint64_t token,
              const std::unordered_map<std::uint64_t, int>& m) {
  return m.count(token) != 0;  // line 14: hash probe leaks via timing
}

bool PublicProbe(std::uint64_t slot,
                 const std::unordered_map<std::uint64_t, int>& m) {
  return m.count(slot) != 0;  // public argument: must not fire
}
