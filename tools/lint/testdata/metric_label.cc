// lwlint fixture: metric-label-from-request true/false positives.
#include <string>

struct FakeRegistry {
  int& AddCounter(const std::string& name, const std::string& help,
                  const std::string& unit);
  int& AddGauge(const std::string& name, const std::string& help,
                const std::string& unit);
};

FakeRegistry& Reg();

constexpr const char* kScanCounterName = "lw_scan_rows_total";

void LiteralNamesAreFine() {
  Reg().AddCounter("lw_server_requests_total", "requests served",
                   "requests");  // no finding: compile-time literal
  Reg().AddCounter(kScanCounterName, "rows scanned",
                   "rows");  // no finding: kConstant identifier
}

void BadPerBlobCounter(const std::string& blob_name) {
  Reg().AddCounter("lw_fetches_" + blob_name,  // line 23: per-blob name
                   "per-blob fetches", "requests");
}

void BadPerRequestGauge(const std::string& request_payload) {
  Reg().AddGauge(request_payload,  // line 28: name from request payload
                 "last payload seen", "bytes");
}

void BadKeywordLabel(const std::string& query_keyword) {
  Reg().AddCounter("lw_hits_" + query_keyword,  // line 33: keyword label
                   "keyword hits", "requests");
}

void AllowedEscapeHatch(const std::string& blob_class) {
  // lwlint: allow(metric-label-from-request) — fixture, not prod
  Reg().AddCounter(blob_class, "suppressed", "requests");
}
