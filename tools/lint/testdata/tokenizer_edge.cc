// lwlint fixture: tokenizer edge cases. Raw strings, digit separators and
// preprocessor lines must all be inert — this file lints clean even under
// src/crypto with every heuristic armed.
#include <cstdint>

const char* kRaw = R"(rand(); new Widget; memcmp(key, b, 16); key[idx])";
const char* kRawDelim = R"ab(std::srand(7); delete p; while (key) {})ab";
const char* kEscapes = "tag == expected \"key[3]\" \\";

constexpr std::uint64_t kBigPrime = 1'000'000'007ull;  // digit separators

// Line continuations keep the whole macro a preprocessor line, so the
// `new` below is never a naked-new finding.
#define LW_FIXTURE_ALLOC(T) \
  new T()

int Use(int n) { return static_cast<int>(kBigPrime % (n + 1)); }
