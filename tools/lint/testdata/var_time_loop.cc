// lwlint fixture: var-time-loop true positives. Linted as if under src/crypto/.
bool BadEarlyExit(const unsigned char* a, const unsigned char* b) {
  for (int i = 0; i < 16; ++i) {
    if (a[i] != b[i]) {
      return false;  // line 5: early exit inside a crypto loop
    }
  }
  return true;
}

int BadSecretBound(int secret_rounds) {
  int acc = 0;
  while (acc < secret_rounds) {  // line 13: secret-dependent loop bound
    ++acc;
  }
  return acc;
}

int OkFixedLoop(const unsigned char* a) {
  int acc = 0;
  for (int i = 0; i < 16; ++i) {
    acc |= a[i];
  }
  return acc;
}
