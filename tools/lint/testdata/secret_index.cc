// lwlint fixture: secret-index true positives.
extern const unsigned char kTable[256];

unsigned char BadSecretIndexed(const unsigned char* key) {
  return kTable[key[0]];  // line 5: index expression names secret material
}

unsigned char BadNestedLookup(const unsigned char* s) {
  return kTable[s[3]];  // line 9: nested data-dependent lookup (crypto only)
}

unsigned char OkPublicIndex(const unsigned char* buf, unsigned i) {
  return buf[i];  // public loop index: no finding
}
