// lwlint fixture: secret-taint-index — subscripts and pointer offsets
// computed from tainted data.
#include <cstddef>
#include <cstdint>
#include <vector>

int DirectSubscript(LW_SECRET std::uint32_t token, const int* table) {
  return table[token & 0xff];  // line 8: subscript on a secret
}

const unsigned char* PointerOffset(LW_SECRET std::uint64_t token,
                                   const std::vector<unsigned char>& buf) {
  return buf.data() + (token % buf.size());  // line 13: .data() + secret
}

int PublicSubscript(const int* table, std::size_t i) {
  return table[i];  // public index: must not fire
}
