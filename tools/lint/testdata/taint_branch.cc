// lwlint fixture: secret-taint-branch — control flow on tainted values.
#include <cstdint>

bool DirectBranch(LW_SECRET std::uint64_t token) {
  if (token != 0) return true;  // line 5: branch directly on a secret
  return false;
}

int LoopBound(LW_SECRET std::uint64_t token) {
  int rounds = 0;
  while (token > 3) {  // line 11: while condition on a secret
    token >>= 1;
    ++rounds;
  }
  return rounds;
}

int ForMiddleClause(LW_SECRET std::uint64_t token) {
  int acc = 0;
  for (std::uint64_t i = 0; i < token; ++i) acc += 1;  // line 20: for bound
  return acc;
}

int PublicBranch(std::uint64_t counter) {
  if (counter != 0) return 1;  // public condition: must not fire
  return 0;
}
