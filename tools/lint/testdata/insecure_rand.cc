// lwlint fixture: insecure-rand true positives.
#include <cstdlib>

int BadRand() {
  std::srand(42);        // line 5: srand
  return std::rand();    // line 6: std::rand
}

int OkMentionInString() {
  const char* msg = "rand() is banned";  // literal body is ignored
  return msg[0];
}
