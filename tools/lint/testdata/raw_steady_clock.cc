// lwlint fixture: raw-steady-clock true/false positives.

#include <chrono>

namespace fake_obs {
inline std::chrono::steady_clock::time_point TraceNow() {
  return std::chrono::steady_clock::time_point{};
}
}  // namespace fake_obs

struct FakeClock {
  std::chrono::nanoseconds Now() const;
};

long BadRawNow() {
  return std::chrono::steady_clock::now()  // line 16: raw read
      .time_since_epoch()
      .count();
}

long BadUsingNamespaceNow() {
  using std::chrono::steady_clock;
  return steady_clock::now().time_since_epoch().count();  // line 23: raw read
}

long InjectedClockIsFine(const FakeClock& clock) {
  return clock.Now().count();  // no finding: reads the injectable clock
}

long TraceStampIsFine() {
  // Instrumentation goes through the central helper.
  return fake_obs::TraceNow().time_since_epoch().count();  // no finding
}

long AllowedRawNow() {
  // A sanctioned direct read carries the hatch.
  // lwlint: allow(raw-steady-clock)
  return std::chrono::steady_clock::now().time_since_epoch().count();
}
