// lwlint fixture: the sanctioned constant-time patterns. This file must
// lint clean even under src/crypto, where every heuristic is armed.
#include <cstddef>
#include <cstdint>

std::uint64_t CtScan(LW_SECRET std::uint64_t token, const std::uint64_t* ids,
                     std::size_t n) {
  // Touch every slot; collapse the matches into a mask instead of branching.
  std::uint64_t found = 0;
  for (std::size_t i = 0; i < n; ++i) {
    found |= ct::EqMask(ids[i], token);
  }
  return found;
}

bool TagVerify(ByteSpan got_tag, ByteSpan want_tag) {
  // Secret-named operands are fine inside a ct.h comparison.
  return ct::Eq(got_tag, want_tag);
}

std::uint64_t MaskedPick(LW_SECRET std::uint64_t token, std::uint64_t a,
                         std::uint64_t b) {
  return ct::Select(ct::NonzeroMask(token), a, b);
}
