// lwlint fixture: naked-new true positives.
#include <memory>

struct Widget {
  int x = 0;
};

Widget* BadNew() {
  return new Widget();  // line 9: naked new
}

void BadDelete(Widget* w) {
  delete w;  // line 13: naked delete
}

std::unique_ptr<Widget> OkMakeUnique() {
  return std::make_unique<Widget>();  // no finding
}

struct NoCopy {
  NoCopy(const NoCopy&) = delete;  // deleted member fn: no finding
};
