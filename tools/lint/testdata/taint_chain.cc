// lwlint fixture: taint propagates through chains of local assignments,
// and ct:: sanitizers cut the chain.
#include <cstdint>

int ChainedLeak(LW_SECRET std::uint64_t token, const int* table) {
  std::uint64_t hop = token >> 8;  // 1st hop: hop is now tainted
  std::uint64_t slot = hop & 0xff;  // 2nd hop: slot is now tainted
  if (slot != 0) return -1;  // line 8: branch on two-hop taint
  return table[slot];  // line 9: subscript on two-hop taint
}

std::uint64_t ChainedSanitized(LW_SECRET std::uint64_t token,
                               std::uint64_t wanted, const int* table) {
  // The mask comes out of a ct.h helper, so the chain below is public.
  std::uint64_t m = ct::EqMask(token, wanted);
  std::uint64_t pick = m & 1;
  if (pick != 0) return 1;  // sanitized at the source: must not fire
  return static_cast<std::uint64_t>(table[pick]);  // must not fire
}
