// lwlint fixture: blocking-in-reactor true/false positives.

struct sockaddr;
using socklen_t = unsigned int;
using ssize_t = long;
constexpr int MSG_DONTWAIT = 0x40;
constexpr int MSG_NOSIGNAL = 0x4000;
int accept(int, sockaddr*, socklen_t*);
int accept4(int, sockaddr*, socklen_t*, int);
ssize_t recv(int, void*, unsigned long, int);
ssize_t send(int, const void*, unsigned long, int);

struct FramedSock {
  ssize_t recv(void* buf, unsigned long n);
  ssize_t send(const void* buf, unsigned long n);
};

int BadBlockingAccept(int fd) {
  return accept(fd, nullptr, nullptr);  // line 19: blocking accept
}

ssize_t BadBlockingRecv(int fd, char* buf) {
  return recv(fd, buf, 16, 0);  // line 23: no MSG_DONTWAIT
}

ssize_t BadBlockingSend(int fd, const char* buf) {
  return ::send(fd, buf, 16, MSG_NOSIGNAL);  // line 27: no MSG_DONTWAIT
}

int NonBlockingAcceptIsFine(int fd) {
  // accept4 is a different identifier; the reactor uses it with
  // SOCK_NONBLOCK.
  return accept4(fd, nullptr, nullptr, 0);  // no finding
}

ssize_t DontwaitRecvIsFine(int fd, char* buf) {
  return ::recv(fd, buf, 16, MSG_DONTWAIT);  // no finding
}

ssize_t DontwaitSendIsFine(int fd, const char* buf) {
  return ::send(fd, buf, 16, MSG_DONTWAIT | MSG_NOSIGNAL);  // no finding
}

ssize_t MethodCallsAreFine(FramedSock& sock, char* buf) {
  // .send()/.recv() are our framed abstractions, not POSIX syscalls.
  return sock.recv(buf, 16) + sock.send(buf, 16);  // no finding
}

ssize_t AllowedBlockingRecv(int fd, char* buf) {
  // The thread-per-connection A/B path blocks by design.
  // lwlint: allow(blocking-in-reactor)
  return recv(fd, buf, 16, 0);
}

int connect(int, const sockaddr*, unsigned int);
constexpr int EINPROGRESS = 115;
extern int errno_value;

int NonBlockingConnectIsFine(int fd, const sockaddr* addr) {
  // The non-blocking dial: EINPROGRESS means the handshake continues in
  // the kernel and completes via EPOLLOUT + SO_ERROR.
  const int rc = connect(fd, addr, 16);  // no finding
  if (rc < 0 && errno_value != EINPROGRESS) return -1;
  return 0;
}

int BadBlockingConnect(int fd, const sockaddr* addr) {
  return connect(fd, addr, 16);  // line 68: blocking connect
}

int AllowedBlockingConnect(int fd, const sockaddr* addr) {
  // The thread-per-connection A/B dial path blocks by design.
  // lwlint: allow(blocking-in-reactor)
  return connect(fd, addr, 16);
}
