// lwlint fixture: unchecked-result true positive.
#include "util/status.h"

lw::Result<int> Fetch();

int BadImmediateUnwrap() {
  return Fetch().value();  // line 7: no visible ok() check
}

int OkGuardedUnwrap() {
  auto r = Fetch();
  if (!r.ok()) return -1;
  return r.value();  // guarded on the previous line: no finding
}
