// lwlint fixture: the allow() escape hatch.
#include <cstdlib>

int SameLineAllow() {
  return std::rand();  // lwlint: allow(insecure-rand) — fixture, not prod
}

int LineAboveAllow() {
  // lwlint: allow(insecure-rand) — fixture, not prod
  return std::rand();
}

int WrongRuleAllowDoesNotSuppress() {
  return std::rand();  // lwlint: allow(naked-new)  line 14: still fires
}
