#!/usr/bin/env python3
"""Compare a bench_throughput JSON against a checked-in baseline.

Usage:
    compare_bench.py BASELINE.json CURRENT.json [--threshold 0.15]
                     [--github]

Exits 1 if any scenario's sustained req/s dropped more than --threshold
(default 15%) below the baseline, or if a baseline scenario disappeared.
Scenarios present only in CURRENT are reported but never fail the run, so
adding a scenario does not require regenerating the baseline in the same
change.

With --github, regressions are also emitted as GitHub workflow-command
warnings so they annotate the PR even when the CI step is configured as
non-blocking.

CI keeps absolute numbers honest by always comparing like-for-like shapes:
the baseline records its config (clients, domain, smoke) and a mismatch is
a hard error — comparing an 8-client run against a 3-client baseline would
make every number meaningless.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"compare_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)


def scenarios(doc, path):
    table = doc.get("throughput")
    if not isinstance(table, list) or not table:
        print(f"compare_bench: {path} has no throughput table",
              file=sys.stderr)
        sys.exit(2)
    return {row["name"]: row for row in table}


# Config keys that change what the numbers mean. xor_tier and hugepages are
# deliberately absent: they vary by host and are part of what we measure.
SHAPE_KEYS = ("domain_bits", "record_size", "clients",
              "requests_per_client", "smoke")


def main():
    parser = argparse.ArgumentParser()
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--threshold", type=float, default=0.15,
                        help="max fractional req/s drop (default 0.15)")
    parser.add_argument("--github", action="store_true",
                        help="emit GitHub workflow-command annotations")
    args = parser.parse_args()

    base_doc = load(args.baseline)
    cur_doc = load(args.current)

    base_cfg = base_doc.get("config", {})
    cur_cfg = cur_doc.get("config", {})
    for key in SHAPE_KEYS:
        if base_cfg.get(key) != cur_cfg.get(key):
            print(f"compare_bench: config mismatch on '{key}': baseline "
                  f"{base_cfg.get(key)} vs current {cur_cfg.get(key)}; "
                  "regenerate the baseline with the same shape",
                  file=sys.stderr)
            sys.exit(2)

    base = scenarios(base_doc, args.baseline)
    cur = scenarios(cur_doc, args.current)

    failed = False
    print(f"{'scenario':<24} {'baseline':>10} {'current':>10} {'delta':>8}")
    for name, base_row in sorted(base.items()):
        if name not in cur:
            print(f"{name:<24} {'':>10} {'':>10}  MISSING")
            failed = True
            continue
        b = float(base_row["req_per_s"])
        c = float(cur[name]["req_per_s"])
        delta = 0.0 if b == 0 else (c - b) / b
        verdict = ""
        if b > 0 and delta < -args.threshold:
            verdict = "  REGRESSION"
            failed = True
            if args.github:
                print(f"::warning title=bench_throughput regression::"
                      f"{name}: {b:.1f} -> {c:.1f} req/s "
                      f"({delta * 100:+.1f}%)")
        print(f"{name:<24} {b:>10.1f} {c:>10.1f} {delta * 100:>+7.1f}%"
              f"{verdict}")
    for name in sorted(set(cur) - set(base)):
        print(f"{name:<24} {'(new)':>10} "
              f"{float(cur[name]['req_per_s']):>10.1f}")

    if failed:
        print(f"compare_bench: req/s regressed more than "
              f"{args.threshold * 100:.0f}% (or a scenario vanished)",
              file=sys.stderr)
        sys.exit(1)
    print("compare_bench: ok")


if __name__ == "__main__":
    main()
