// lightweb_browse — a terminal lightweb browser over TCP.
//
// Connects to the four ZLTP endpoints published by lightweb_serve and
// renders pages. With a path argument it fetches one page and exits
// (scriptable); without one it runs an interactive prompt where you enter
// a path, a link number from the last page, or 'q'.
//
// Usage:  lightweb_browse <host> <base_port> [path]
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "lightweb/browser.h"
#include "lightweb/channel.h"
#include "net/tcp.h"
#include "zltp/client.h"

namespace {

using namespace lw;

Result<zltp::PirSession> ConnectPair(const std::string& host, int port0,
                                     int port1) {
  // Dial via factories so the session can redial and retry (with fresh DPF
  // shares) if a CDN node blips mid-browse.
  const auto dial = [&host](int port) -> net::TransportFactory {
    return [host, port] {
      return net::TcpConnect(host, static_cast<std::uint16_t>(port));
    };
  };
  zltp::EstablishOptions options;
  options.factory0 = dial(port0);
  options.factory1 = dial(port1);
  options.hello_timeout = std::chrono::seconds(5);
  options.op_timeout = std::chrono::seconds(10);
  options.retry.max_attempts = 3;
  return zltp::PirSession::Establish(std::move(options));
}

void Render(const lightweb::RenderedPage& page) {
  std::printf("\n==================== %s ====================\n",
              page.full_path.c_str());
  std::printf("%s\n", page.text.c_str());
  if (!page.links.empty()) {
    std::printf("---- links ----\n");
    for (std::size_t i = 0; i < page.links.size(); ++i) {
      std::printf("  [%zu] %s -> %s\n", i + 1, page.links[i].label.c_str(),
                  page.links[i].target.c_str());
    }
  }
  std::printf("---- traffic: %d real + %d dummy data fetches, code %s "
              "----\n\n",
              page.real_fetches, page.dummy_fetches,
              page.code_cache_hit ? "cached" : "fetched");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    std::fprintf(stderr, "usage: %s <host> <base_port> [path]\n", argv[0]);
    return 2;
  }
  const std::string host = argv[1];
  const int base_port = std::atoi(argv[2]);

  auto code_session = ConnectPair(host, base_port, base_port + 1);
  auto data_session = ConnectPair(host, base_port + 2, base_port + 3);
  if (!code_session.ok() || !data_session.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 (!code_session.ok() ? code_session.status()
                                     : data_session.status())
                     .ToString()
                     .c_str());
    return 1;
  }

  lightweb::BrowserConfig config;
  config.fetches_per_page = 5;  // must match the served universe
  lightweb::Browser browser(
      std::make_unique<lightweb::ZltpChannel>(
          std::make_unique<zltp::PirSession>(std::move(*code_session))),
      std::make_unique<lightweb::ZltpChannel>(
          std::make_unique<zltp::PirSession>(std::move(*data_session))),
      config);

  std::vector<lightweb::PageLink> last_links;
  const auto visit = [&](const std::string& path) {
    auto page = browser.Visit(path);
    if (!page.ok()) {
      std::printf("error: %s\n", page.status().ToString().c_str());
      return;
    }
    last_links = page->links;
    Render(*page);
  };

  if (argc >= 4) {
    visit(argv[3]);
    return 0;
  }

  std::printf("lightweb interactive browser. Enter a path "
              "(e.g. planet.example), a link number, or q.\n");
  std::string line;
  while (std::printf("lightweb> "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line == "q" || line == "quit") break;
    if (line.empty()) continue;
    // A pure number selects a link from the last page.
    const bool numeric =
        line.find_first_not_of("0123456789") == std::string::npos;
    if (numeric) {
      const std::size_t n = std::strtoull(line.c_str(), nullptr, 10);
      if (n == 0 || n > last_links.size()) {
        std::printf("no such link\n");
        continue;
      }
      visit(last_links[n - 1].target);
    } else {
      visit(line);
    }
  }
  return 0;
}
