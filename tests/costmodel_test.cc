// Cost-model tests: the module must reproduce the paper's own arithmetic
// when fed the paper's measured numbers (167 ms/request on a 1 GiB shard),
// i.e. Table 2's C4 row and the §4 monthly-cost estimate.
#include <gtest/gtest.h>

#include "costmodel/costmodel.h"

namespace lw::cost {
namespace {

ShardMeasurement PaperShard() {
  // §5.1: 64 ms DPF evaluation + 103 ms scan on a 1 GiB shard, d = 22.
  ShardMeasurement m;
  m.dpf_ms = 64;
  m.scan_ms = 103;
  m.shard_gib = 1.0;
  m.domain_bits = 22;
  return m;
}

TEST(CostModel, ReproducesTable2C4Row) {
  const ScaleEstimate e =
      EstimateScale(C4Dataset(), PaperShard(), InstanceSpec{}, 4096);
  EXPECT_EQ(e.num_shards, 305);
  // Paper: "each request requires 1.7 vCPU minutes" per logical server and
  // 3.4 vCPU-minutes (= 204 vCPU-sec, the Table 2 cell) system-wide.
  EXPECT_NEAR(e.vcpu_seconds_one_server, 102.0, 2.0);
  EXPECT_NEAR(e.vcpu_seconds_system, 204.0, 4.0);
  // Paper: $0.001 per request per logical server, $0.002 system-wide.
  EXPECT_NEAR(e.usd_per_request_one_server, 0.001, 0.0003);
  EXPECT_NEAR(e.usd_per_request_system, 0.002, 0.0006);
  // Download: two 4 KiB buckets.
  EXPECT_NEAR(e.download_kib, 8.0, 0.01);
  // Our DPF keys are (λ+2)·d BITS (~0.4 KiB each); the paper's library
  // ships ~2.8 KiB keys. Check our own accounting, not theirs.
  EXPECT_GT(e.upload_kib, 0.5);
  EXPECT_LT(e.upload_kib, 2.0);
  EXPECT_NEAR(e.total_comm_kib, e.upload_kib + e.download_kib, 1e-9);
}

TEST(CostModel, WikipediaRowShape) {
  const ScaleEstimate wiki =
      EstimateScale(WikipediaDataset(), PaperShard(), InstanceSpec{}, 4096);
  const ScaleEstimate c4 =
      EstimateScale(C4Dataset(), PaperShard(), InstanceSpec{}, 4096);
  EXPECT_EQ(wiki.num_shards, 21);
  // Table 2 shape: Wikipedia ≈ 10 vCPU-sec vs C4's 204 — about 15-20×
  // cheaper, with identical per-request communication.
  EXPECT_LT(wiki.vcpu_seconds_system, c4.vcpu_seconds_system / 10);
  EXPECT_NEAR(wiki.vcpu_seconds_system, 14.0, 4.0);
  EXPECT_LT(wiki.usd_per_request_system, 0.0002);
  EXPECT_NEAR(wiki.total_comm_kib, c4.total_comm_kib, 1e-9);
}

TEST(CostModel, MonthlyUserCostNearFifteenDollars) {
  // §4: 50 pages/day × 5 data-GETs × 30 days at the C4 per-request cost
  // "roughly $15 (comparable to the cost of a Netflix membership)".
  const ScaleEstimate e =
      EstimateScale(C4Dataset(), PaperShard(), InstanceSpec{}, 4096);
  const double monthly = MonthlyUserCostUsd(e, UserProfile{});
  EXPECT_NEAR(monthly, 15.0, 4.0);
}

TEST(CostModel, GoogleFiComparisons) {
  // §5.2: loading the 22.4 MiB NYT homepage over $10/GiB Fi ≈ $0.218.
  EXPECT_NEAR(GoogleFiCostForBytes(kNytHomepageMib * 1024 * 1024), 0.218,
              0.002);
  // Loading one 4 KiB value over Fi ≈ $0.000038 — about two orders of
  // magnitude below ZLTP's $0.002.
  const double fi_4k = GoogleFiCostForBytes(4096);
  EXPECT_NEAR(fi_4k, 0.000038, 0.000002);
  const ScaleEstimate e =
      EstimateScale(C4Dataset(), PaperShard(), InstanceSpec{}, 4096);
  const double ratio = e.usd_per_request_system / fi_4k;
  EXPECT_GT(ratio, 20);
  EXPECT_LT(ratio, 200);
}

TEST(CostModel, TrendProjection) {
  // 16× per 5 years → "in 5 years ... drop by an order of magnitude".
  EXPECT_NEAR(ProjectedRequestCostUsd(0.002, 5), 0.002 / 16, 1e-6);
  EXPECT_NEAR(ProjectedRequestCostUsd(0.002, 0), 0.002, 1e-12);
  EXPECT_LT(ProjectedRequestCostUsd(0.002, 10), 0.002 / 100);
}

TEST(CostModel, ScalesWithShardMeasurement) {
  // Twice the per-shard wall time → twice the cost.
  ShardMeasurement slow = PaperShard();
  slow.scan_ms *= 2;
  slow.dpf_ms *= 2;
  const ScaleEstimate base =
      EstimateScale(C4Dataset(), PaperShard(), InstanceSpec{}, 4096);
  const ScaleEstimate doubled =
      EstimateScale(C4Dataset(), slow, InstanceSpec{}, 4096);
  EXPECT_NEAR(doubled.usd_per_request_system,
              2 * base.usd_per_request_system, 1e-9);
}

TEST(CostModel, InstanceSpecDefaultsMatchPaper) {
  const InstanceSpec spec;
  EXPECT_EQ(spec.name, "c5.large");
  EXPECT_EQ(spec.vcpus, 2);
  EXPECT_DOUBLE_EQ(spec.usd_per_hour, 0.085);
}

}  // namespace
}  // namespace lw::cost
