// LightScript interpreter tests: code-blob parsing, route matching, fetch
// templates, render templates, and link extraction.
#include <gtest/gtest.h>

#include "json/json.h"
#include "lightweb/lightscript.h"
#include "lightweb/local_storage.h"

namespace lw::lightweb {
namespace {

CodeProgram MustParse(std::string_view text) {
  auto p = CodeProgram::Parse(text);
  EXPECT_TRUE(p.ok()) << p.status().ToString();
  return std::move(p).value();
}

json::Value MustJson(std::string_view text) {
  auto v = json::Parse(text);
  EXPECT_TRUE(v.ok());
  return std::move(v).value();
}

constexpr char kNewsBlob[] = R"({
  "site": "The Daily Planet",
  "style": "serif",
  "routes": [
    {"pattern": "/world/:region",
     "fetch": ["planet.com/data/world/{region}.json"],
     "render": "# {{site}} — {{region}}\n{{#each data0.headlines}}- [{{.title}}]({{.link}})\n{{/each}}"},
    {"pattern": "/about",
     "fetch": [],
     "render": "About {{site}}."},
    {"pattern": "/*rest",
     "fetch": ["planet.com/data/home.json"],
     "render": "{{data0.greeting}} You asked for '{{rest}}'."}
  ]
})";

TEST(CodeProgram, ParseValidBlob) {
  const CodeProgram p = MustParse(kNewsBlob);
  EXPECT_EQ(p.site_name(), "The Daily Planet");
  EXPECT_EQ(p.style(), "serif");
  EXPECT_EQ(p.route_count(), 3u);
  EXPECT_EQ(p.max_fetches(), 1u);
}

TEST(CodeProgram, ParseRejectsMalformed) {
  EXPECT_FALSE(CodeProgram::Parse("not json").ok());
  EXPECT_FALSE(CodeProgram::Parse("[]").ok());
  EXPECT_FALSE(CodeProgram::Parse("{}").ok());  // no routes
  EXPECT_FALSE(CodeProgram::Parse(R"({"routes": []})").ok());
  EXPECT_FALSE(CodeProgram::Parse(R"({"routes": [{"render":"x"}]})").ok());
  EXPECT_FALSE(
      CodeProgram::Parse(R"({"routes": [{"pattern":"/a"}]})").ok());
  // '*' not in last position.
  EXPECT_FALSE(CodeProgram::Parse(
                   R"({"routes":[{"pattern":"/*x/y","render":"r"}]})")
                   .ok());
  // Unnamed captures.
  EXPECT_FALSE(CodeProgram::Parse(
                   R"({"routes":[{"pattern":"/:","render":"r"}]})")
                   .ok());
  // Bad template syntax is caught at parse time.
  EXPECT_FALSE(CodeProgram::Parse(
                   R"({"routes":[{"pattern":"/a","render":"{{#each x}}no close"}]})")
                   .ok());
  EXPECT_FALSE(CodeProgram::Parse(
                   R"({"routes":[{"pattern":"/a","render":"{{unclosed"}]})")
                   .ok());
}

TEST(CodeProgram, PlanMatchesFirstRoute) {
  const CodeProgram p = MustParse(kNewsBlob);
  LocalStorage local;
  auto plan = p.Plan("planet.com", "/world/africa", local);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->route_index, 0u);
  EXPECT_EQ(plan->captures.at("region"), "africa");
  ASSERT_EQ(plan->fetch_paths.size(), 1u);
  EXPECT_EQ(plan->fetch_paths[0], "planet.com/data/world/africa.json");
}

TEST(CodeProgram, PlanLiteralRoute) {
  const CodeProgram p = MustParse(kNewsBlob);
  LocalStorage local;
  auto plan = p.Plan("planet.com", "/about", local);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->route_index, 1u);
  EXPECT_TRUE(plan->fetch_paths.empty());
}

TEST(CodeProgram, PlanFallsThroughToCatchAll) {
  const CodeProgram p = MustParse(kNewsBlob);
  LocalStorage local;
  auto plan = p.Plan("planet.com", "/anything/else/here", local);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->route_index, 2u);
  EXPECT_EQ(plan->captures.at("rest"), "anything/else/here");
}

TEST(CodeProgram, CatchAllMatchesRoot) {
  const CodeProgram p = MustParse(kNewsBlob);
  LocalStorage local;
  auto plan = p.Plan("planet.com", "/", local);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->route_index, 2u);
  EXPECT_EQ(plan->captures.at("rest"), "");
}

TEST(CodeProgram, NoMatchIsNotFound) {
  const CodeProgram p = MustParse(R"({
    "routes": [{"pattern": "/only/this", "render": "x"}]})");
  LocalStorage local;
  auto plan = p.Plan("a.com", "/other", local);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kNotFound);
}

TEST(CodeProgram, FetchTemplateUsesLocalStorage) {
  const CodeProgram p = MustParse(R"({
    "routes": [{
      "pattern": "/",
      "fetch": ["weather.com/by-zip/{local.postal_code}.json"],
      "render": "ok"}]})");
  LocalStorage local;
  local.Set("postal_code", "94703");
  auto plan = p.Plan("weather.com", "/", local);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->fetch_paths[0], "weather.com/by-zip/94703.json");
}

TEST(CodeProgram, FetchTemplateLocalFallback) {
  const CodeProgram p = MustParse(R"({
    "routes": [{
      "pattern": "/",
      "fetch": ["weather.com/by-zip/{local.postal_code|00000}.json"],
      "render": "ok"}]})");
  LocalStorage local;  // no postal code cached yet
  auto plan = p.Plan("weather.com", "/", local);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->fetch_paths[0], "weather.com/by-zip/00000.json");
}

TEST(CodeProgram, FetchTemplateMissingLocalWithoutFallbackFails) {
  const CodeProgram p = MustParse(R"({
    "routes": [{
      "pattern": "/",
      "fetch": ["weather.com/{local.missing}.json"],
      "render": "ok"}]})");
  LocalStorage local;
  auto plan = p.Plan("weather.com", "/", local);
  EXPECT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kFailedPrecondition);
}

TEST(CodeProgram, FetchTemplateUnknownCaptureFails) {
  const CodeProgram p = MustParse(R"({
    "routes": [{
      "pattern": "/:a",
      "fetch": ["x.com/{typo}.json"],
      "render": "ok"}]})");
  LocalStorage local;
  EXPECT_FALSE(p.Plan("x.com", "/v", local).ok());
}

TEST(CodeProgram, RenderInterpolation) {
  const CodeProgram p = MustParse(kNewsBlob);
  LocalStorage local;
  const auto plan = p.Plan("planet.com", "/world/europe", local).value();
  const std::vector<json::Value> data = {MustJson(R"({
    "headlines": [
      {"title": "Alpha", "link": "planet.com/story/alpha"},
      {"title": "Beta",  "link": "planet.com/story/beta"}
    ]})")};
  const std::string out =
      p.Render(plan, "planet.com", "/world/europe", local, data).value();
  EXPECT_NE(out.find("The Daily Planet — europe"), std::string::npos);
  EXPECT_NE(out.find("- [Alpha](planet.com/story/alpha)"), std::string::npos);
  EXPECT_NE(out.find("- [Beta](planet.com/story/beta)"), std::string::npos);
}

TEST(CodeProgram, RenderMissingDataIsEmpty) {
  const CodeProgram p = MustParse(kNewsBlob);
  LocalStorage local;
  const auto plan = p.Plan("planet.com", "/world/mars", local).value();
  // Fetch failed: null stands in.
  const std::vector<json::Value> data = {json::Value()};
  const std::string out =
      p.Render(plan, "planet.com", "/world/mars", local, data).value();
  EXPECT_NE(out.find("The Daily Planet — mars"), std::string::npos);
  // No headlines rendered, no crash.
  EXPECT_EQ(out.find("- ["), std::string::npos);
}

TEST(Template, IfSections) {
  const CodeProgram p = MustParse(R"({
    "routes": [{
      "pattern": "/",
      "fetch": ["a.com/d.json"],
      "render": "{{#if data0.premium}}PREMIUM{{/if}}{{^if data0.premium}}FREE{{/if}}"}]})");
  LocalStorage local;
  const auto plan = p.Plan("a.com", "/", local).value();
  EXPECT_EQ(p.Render(plan, "a.com", "/", local,
                     {MustJson(R"({"premium": true})")})
                .value(),
            "PREMIUM");
  EXPECT_EQ(p.Render(plan, "a.com", "/", local,
                     {MustJson(R"({"premium": false})")})
                .value(),
            "FREE");
  EXPECT_EQ(p.Render(plan, "a.com", "/", local, {json::Value()}).value(),
            "FREE");
}

TEST(Template, NestedEachWithIndex) {
  const CodeProgram p = MustParse(R"({
    "routes": [{
      "pattern": "/",
      "fetch": ["a.com/d.json"],
      "render": "{{#each data0.sections}}{{@index}}:{{.name}}({{#each .items}}{{.}},{{/each}}) {{/each}}"}]})");
  LocalStorage local;
  const auto plan = p.Plan("a.com", "/", local).value();
  const std::string out =
      p.Render(plan, "a.com", "/", local, {MustJson(R"({
        "sections": [
          {"name": "world", "items": ["a", "b"]},
          {"name": "tech",  "items": ["c"]}
        ]})")})
          .value();
  EXPECT_EQ(out, "0:world(a,b,) 1:tech(c,) ");
}

TEST(Template, LocalAndBuiltins) {
  const CodeProgram p = MustParse(R"({
    "site": "W",
    "routes": [{
      "pattern": "/:city",
      "fetch": [],
      "render": "{{site}}|{{domain}}|{{path}}|{{city}}|{{local.units}}"}]})");
  LocalStorage local;
  local.Set("units", "celsius");
  const auto plan = p.Plan("w.com", "/berlin", local).value();
  EXPECT_EQ(p.Render(plan, "w.com", "/berlin", local, {}).value(),
            "W|w.com|/berlin|berlin|celsius");
}

TEST(Template, NumbersRenderCleanly) {
  const CodeProgram p = MustParse(R"({
    "routes": [{"pattern": "/", "fetch": ["a.com/d.json"],
                "render": "{{data0.n}}/{{data0.f}}"}]})");
  LocalStorage local;
  const auto plan = p.Plan("a.com", "/", local).value();
  EXPECT_EQ(p.Render(plan, "a.com", "/", local,
                     {MustJson(R"({"n": 42, "f": 2.5})")})
                .value(),
            "42/2.5");
}

std::string DeepIfBlob(int nesting) {
  std::string tpl;
  for (int i = 0; i < nesting; ++i) tpl += "{{#if a}}";
  tpl += "x";
  for (int i = 0; i < nesting; ++i) tpl += "{{/if}}";
  return R"({"routes":[{"pattern":"/","fetch":[],"render":")" + tpl +
         R"("}]})";
}

TEST(Template, NestingDepthExactBoundary) {
  // kMaxTemplateDepth nesting parses; one deeper is rejected with a clean
  // error at CodeProgram::Parse time.
  constexpr int kMaxTemplateDepth = 64;  // mirrors lightscript.cc
  EXPECT_TRUE(CodeProgram::Parse(DeepIfBlob(kMaxTemplateDepth)).ok());
  EXPECT_FALSE(CodeProgram::Parse(DeepIfBlob(kMaxTemplateDepth + 1)).ok());
}

TEST(Template, PathologicalNestingDoesNotOverflowStack) {
  // Pre-fix, the recursive-descent template parser had no depth bound, so a
  // hostile code blob with thousands of nested sections overflowed the
  // stack (the parser recurses twice per section). Must now error cleanly.
  const auto p = CodeProgram::Parse(DeepIfBlob(5000));
  EXPECT_FALSE(p.ok());
}

TEST(Links, ExtractLinks) {
  const auto links = ExtractLinks(
      "Read [Alpha](planet.com/story/alpha) and "
      "[Beta](planet.com/story/beta). Broken [nope] and [empty]().");
  ASSERT_EQ(links.size(), 2u);
  EXPECT_EQ(links[0], (PageLink{"Alpha", "planet.com/story/alpha"}));
  EXPECT_EQ(links[1], (PageLink{"Beta", "planet.com/story/beta"}));
}

TEST(Links, NoLinks) {
  EXPECT_TRUE(ExtractLinks("plain text only").empty());
  EXPECT_TRUE(ExtractLinks("").empty());
}

}  // namespace
}  // namespace lw::lightweb
