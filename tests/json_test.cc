// JSON library tests: parsing (full grammar incl. escapes and surrogate
// pairs), serialization, round-trips, path lookup, and malformed inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "json/json.h"
#include "util/check.h"

namespace lw::json {
namespace {

Value MustParse(std::string_view text) {
  auto r = Parse(text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << text;
  return std::move(r).value();
}

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(MustParse("null").is_null());
  EXPECT_EQ(MustParse("true").AsBool(), true);
  EXPECT_EQ(MustParse("false").AsBool(), false);
  EXPECT_DOUBLE_EQ(MustParse("42").AsNumber(), 42.0);
  EXPECT_DOUBLE_EQ(MustParse("-3.25").AsNumber(), -3.25);
  EXPECT_DOUBLE_EQ(MustParse("1e3").AsNumber(), 1000.0);
  EXPECT_DOUBLE_EQ(MustParse("2.5E-2").AsNumber(), 0.025);
  EXPECT_EQ(MustParse("\"hi\"").AsString(), "hi");
}

TEST(JsonParse, Containers) {
  const Value v = MustParse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(v.is_object());
  EXPECT_EQ(v.AsObject().size(), 2u);
  const Value* a = v.Find("a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->AsArray().size(), 3u);
  EXPECT_DOUBLE_EQ(a->At(0)->AsNumber(), 1.0);
  EXPECT_EQ(a->At(2)->Find("b")->AsString(), "c");
  EXPECT_TRUE(v.Find("d")->is_null());
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(MustParse(R"("a\"b\\c\/d\b\f\n\r\t")").AsString(),
            "a\"b\\c/d\b\f\n\r\t");
  EXPECT_EQ(MustParse(R"("Aé")").AsString(), "A\xc3\xa9");
  // Surrogate pair: U+1F600 (emoji).
  EXPECT_EQ(MustParse(R"("😀")").AsString(), "\xf0\x9f\x98\x80");
}

TEST(JsonParse, WhitespaceTolerant) {
  const Value v = MustParse("  {\n\t\"k\" :\r [ 1 , 2 ]\n} ");
  EXPECT_EQ(v.Find("k")->AsArray().size(), 2u);
}

TEST(JsonParse, EmptyContainers) {
  EXPECT_TRUE(MustParse("{}").AsObject().empty());
  EXPECT_TRUE(MustParse("[]").AsArray().empty());
}

TEST(JsonParse, RejectsMalformed) {
  const char* bad[] = {
      "",           "{",          "}",        "[1,]",     "{\"a\":}",
      "{\"a\" 1}",  "tru",        "nul",      "01",       "1.",
      "1e",         "\"unterminated", "\"\\q\"",  "[1 2]",
      "{\"a\":1,}", "\"\\ud800\"",  // unpaired surrogate
      "{\"a\":1} extra",
      "\"tab\tinside\"",  // unescaped control character
  };
  for (const char* text : bad) {
    EXPECT_FALSE(Parse(text).ok()) << "should reject: " << text;
  }
}

TEST(JsonParse, DepthLimit) {
  std::string deep(200, '[');
  deep += std::string(200, ']');
  EXPECT_FALSE(Parse(deep).ok());
  std::string shallow(50, '[');
  shallow += std::string(50, ']');
  EXPECT_TRUE(Parse(shallow).ok());
}

TEST(JsonParse, RejectsHugeExponents) {
  // Pre-fix these parsed to ±inf, which the writer then serialized as
  // "null" — silently changing the document on a write/parse roundtrip.
  EXPECT_FALSE(Parse("1e999").ok());
  EXPECT_FALSE(Parse("-1e999").ok());
  EXPECT_FALSE(Parse("[1, 1e400]").ok());
  // Underflow to zero is representable, not an error.
  const auto tiny = Parse("1e-999");
  ASSERT_TRUE(tiny.ok());
  EXPECT_EQ(tiny->AsNumber(), 0.0);
}

TEST(JsonParse, RejectsLoneSurrogates) {
  EXPECT_FALSE(Parse("\"\\ud800\"").ok()) << "unpaired high surrogate";
  EXPECT_FALSE(Parse("\"\\udc00\"").ok()) << "lone low surrogate";
  EXPECT_FALSE(Parse("\"\\ud800\\ud800\"").ok()) << "high followed by high";
  EXPECT_TRUE(Parse("\"\\ud83d\\ude00\"").ok()) << "valid surrogate pair";
}

TEST(JsonParse, DepthLimitExactBoundary) {
  // kMaxDepth nesting must parse; one deeper must not. Pinning the exact
  // boundary keeps the recursion budget from drifting in either direction.
  // kMaxDepth = 128 in json.cc; the root value enters ParseValue at depth
  // 0 and the check is `depth > kMaxDepth`, so 129 nested containers are
  // the deepest accepted shape.
  constexpr int kDeepestAccepted = 129;
  std::string at_limit(kDeepestAccepted, '[');
  at_limit += std::string(kDeepestAccepted, ']');
  EXPECT_TRUE(Parse(at_limit).ok());
  std::string over(kDeepestAccepted + 1, '[');
  over += std::string(kDeepestAccepted + 1, ']');
  EXPECT_FALSE(Parse(over).ok());
}

TEST(JsonParse, NulByteInStringRoundTrips) {
  const auto v = Parse("\"a\\u0000b\"");
  ASSERT_TRUE(v.ok());
  const std::string s = v->AsString();
  ASSERT_EQ(s.size(), 3u);
  EXPECT_EQ(s[1], '\0');
  const std::string written = Write(*v);
  const auto again = Parse(written);
  ASSERT_TRUE(again.ok()) << written;
  EXPECT_TRUE(*again == *v);
}

TEST(JsonValue, AsIntSaturatesOutsideInt64Range) {
  // Pre-fix this cast was UB for values outside int64's range.
  EXPECT_EQ(MustParse("9.3e18").AsInt(),
            std::numeric_limits<std::int64_t>::max());
  EXPECT_EQ(MustParse("-9.3e18").AsInt(),
            std::numeric_limits<std::int64_t>::min());
  EXPECT_EQ(MustParse("1e308").AsInt(),
            std::numeric_limits<std::int64_t>::max());
}

TEST(JsonWrite, Scalars) {
  EXPECT_EQ(Write(Value(nullptr)), "null");
  EXPECT_EQ(Write(Value(true)), "true");
  EXPECT_EQ(Write(Value(3)), "3");
  EXPECT_EQ(Write(Value(-2.5)), "-2.5");
  EXPECT_EQ(Write(Value("hi")), "\"hi\"");
}

TEST(JsonWrite, EscapesSpecials) {
  EXPECT_EQ(Write(Value("a\"b\\c\n\x01")), R"("a\"b\\c\n\u0001")");
}

TEST(JsonWrite, CanonicalKeyOrder) {
  Object o;
  o["zebra"] = 1;
  o["apple"] = 2;
  EXPECT_EQ(Write(Value(o)), R"({"apple":2,"zebra":1})");
}

TEST(JsonWrite, Pretty) {
  Object o;
  o["a"] = Array{1, 2};
  WriteOptions opts;
  opts.pretty = true;
  EXPECT_EQ(Write(Value(o), opts), "{\n  \"a\": [\n    1,\n    2\n  ]\n}");
}

TEST(JsonWrite, NonFiniteBecomesNull) {
  EXPECT_EQ(Write(Value(std::nan(""))), "null");
}

TEST(JsonRoundTrip, ParseWriteParse) {
  const std::string docs[] = {
      R"({"headlines":[{"title":"A","link":"x"},{"title":"B"}],"n":3})",
      R"([true,false,null,0.5,"s",{"k":[]}])",
      R"({"unicode":"café","nested":{"deep":{"deeper":[1]}}})",
  };
  for (const auto& doc : docs) {
    const Value v1 = MustParse(doc);
    const std::string out = Write(v1);
    const Value v2 = MustParse(out);
    EXPECT_TRUE(v1 == v2) << doc;
    EXPECT_EQ(out, Write(v2));  // canonical: stable under re-serialization
  }
}

TEST(JsonPath, FindPath) {
  const Value v = MustParse(
      R"({"site":{"sections":[{"name":"world"},{"name":"tech"}]}})");
  ASSERT_NE(v.FindPath("site.sections.1.name"), nullptr);
  EXPECT_EQ(v.FindPath("site.sections.1.name")->AsString(), "tech");
  EXPECT_EQ(v.FindPath("site.sections.7.name"), nullptr);
  EXPECT_EQ(v.FindPath("site.missing"), nullptr);
  EXPECT_EQ(v.FindPath("site.sections.x"), nullptr);
}

TEST(JsonPath, GetStringAndNumberFallbacks) {
  const Value v = MustParse(R"({"a":{"b":"text","n":7}})");
  EXPECT_EQ(v.GetString("a.b"), "text");
  EXPECT_EQ(v.GetString("a.z", "fallback"), "fallback");
  EXPECT_EQ(v.GetString("a.n", "not-a-string"), "not-a-string");
  EXPECT_DOUBLE_EQ(v.GetNumber("a.n"), 7.0);
  EXPECT_DOUBLE_EQ(v.GetNumber("a.b", -1.0), -1.0);
}

TEST(JsonValue, TypeMismatchThrows) {
  const Value v = MustParse("42");
  EXPECT_THROW(v.AsString(), InvariantViolation);
  EXPECT_THROW(v.AsObject(), InvariantViolation);
  EXPECT_NO_THROW(v.AsNumber());
}

TEST(JsonValue, AsIntTruncates) {
  EXPECT_EQ(MustParse("3.9").AsInt(), 3);
  EXPECT_EQ(MustParse("-2.5").AsInt(), -2);
}

TEST(JsonValue, LargeDocument) {
  Array arr;
  for (int i = 0; i < 1000; ++i) {
    Object o;
    o["i"] = i;
    o["s"] = "item-" + std::to_string(i);
    arr.push_back(std::move(o));
  }
  const std::string text = Write(Value(arr));
  const Value parsed = MustParse(text);
  EXPECT_EQ(parsed.AsArray().size(), 1000u);
  EXPECT_EQ(parsed.FindPath("999.s")->AsString(), "item-999");
}

}  // namespace
}  // namespace lw::json
