// Tests for the observability layer (src/obs): metric instruments under
// concurrency, snapshot consistency, histogram bucket edges, the trace
// ring, stage-time sinks, both export formats, the HTTP endpoint, and an
// end-to-end PIR round trip asserting the serving stack actually records.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "json/json.h"
#include "net/transport.h"
#include "obs/exporter.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "zltp/client.h"
#include "zltp/server.h"
#include "zltp/store.h"

namespace lw::obs {
namespace {

// ----------------------------------------------------------- instruments

TEST(Counter, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Inc();
  c.Inc(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(Gauge, SetAddSub) {
  Gauge g;
  g.Set(10);
  g.Add(5);
  g.Sub(7);
  EXPECT_EQ(g.Value(), 8);
  g.Sub(20);
  EXPECT_EQ(g.Value(), -12) << "gauges may go negative";
}

TEST(Histogram, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({10, 100, 1000});
  h.Observe(0);     // -> bucket 0 (<= 10)
  h.Observe(10);    // -> bucket 0 (inclusive)
  h.Observe(11);    // -> bucket 1
  h.Observe(100);   // -> bucket 1 (inclusive)
  h.Observe(1000);  // -> bucket 2 (inclusive)
  h.Observe(1001);  // -> overflow
  const std::vector<std::uint64_t> counts = h.counts();
  ASSERT_EQ(counts.size(), 4u) << "bounds + one overflow cell";
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 1u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.sum(), 0u + 10 + 11 + 100 + 1000 + 1001);
}

TEST(Histogram, ExponentialBoundsAscend) {
  const auto bounds = ExponentialBounds(1000, 4.0, 12);
  ASSERT_EQ(bounds.size(), 12u);
  EXPECT_EQ(bounds[0], 1000u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_GT(bounds[i], bounds[i - 1]);
  }
}

// ------------------------------------------------------------- registry

TEST(Registry, SnapshotCarriesMetadata) {
  Registry r;
  r.AddCounter("test_events_total", "events", "events").Inc(3);
  r.AddGauge("test_level", "level", "items").Set(-5);
  r.AddHistogram("test_lat_ns", "latency", "ns", {1, 2}).Observe(2);
  const MetricsSnapshot snap = r.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "test_events_total");
  EXPECT_EQ(snap.counters[0].unit, "events");
  EXPECT_EQ(snap.counters[0].value, 3u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, -5);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 1u);
  EXPECT_EQ(snap.histograms[0].sum, 2u);
  ASSERT_EQ(snap.histograms[0].counts.size(), 3u);
  EXPECT_EQ(snap.histograms[0].counts[1], 1u);
}

// Hammer one counter and one histogram from many threads while a reader
// keeps snapshotting. Every snapshot must be internally consistent
// (histogram count == sum of its bucket counts — the by-construction
// invariant), and the final totals must be exact.
TEST(Registry, ConcurrentHammeringKeepsSnapshotsConsistent) {
  Registry r;
  Counter& c = r.AddCounter("hammer_total", "hammered", "ops");
  Histogram& h = r.AddHistogram("hammer_ns", "hammered", "ns", {8, 64, 512});

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 20000;
  std::atomic<bool> done{false};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const MetricsSnapshot snap = r.Snapshot();
      for (const HistogramSnapshot& hs : snap.histograms) {
        std::uint64_t bucket_total = 0;
        for (const std::uint64_t n : hs.counts) bucket_total += n;
        EXPECT_EQ(hs.count, bucket_total)
            << "snapshot count must equal the bucket sum it was derived "
               "from";
      }
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        c.Inc();
        h.Observe(static_cast<std::uint64_t>((t * kOpsPerThread + i) % 1024));
      }
    });
  }
  for (std::thread& w : writers) w.join();
  done.store(true, std::memory_order_release);
  reader.join();

  EXPECT_EQ(c.Value(), static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  const MetricsSnapshot final_snap = r.Snapshot();
  ASSERT_EQ(final_snap.histograms.size(), 1u);
  EXPECT_EQ(final_snap.histograms[0].count,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
}

TEST(Metrics, DefaultCatalogIsRegisteredOnce) {
  Metrics& m1 = M();
  Metrics& m2 = M();
  EXPECT_EQ(&m1, &m2);
  // Spot-check the catalog reaches the default registry under the
  // documented names.
  const MetricsSnapshot snap = Registry::Default().Snapshot();
  bool found = false;
  for (const CounterSnapshot& c : snap.counters) {
    found |= (c.name == "lw_server_requests_total");
  }
  EXPECT_TRUE(found);
}

// ------------------------------------------------------------ trace ring

TEST(TraceRing, AssignsIdsAndKeepsRecentOldestFirst) {
  TraceRing ring(4);
  for (int i = 0; i < 10; ++i) {
    RequestTrace t;
    t.total_ns = static_cast<std::uint64_t>(i);
    ring.Record(t);
  }
  EXPECT_EQ(ring.total_recorded(), 10u);
  const std::vector<RequestTrace> kept = ring.Snapshot();
  ASSERT_EQ(kept.size(), 4u) << "ring is bounded at capacity";
  for (std::size_t i = 0; i < kept.size(); ++i) {
    EXPECT_EQ(kept[i].trace_id, 7u + i) << "oldest-first, newest retained";
    EXPECT_EQ(kept[i].total_ns, 6u + i);
  }
}

TEST(TraceRing, SnapshotBeforeFullReturnsAllRecorded) {
  TraceRing ring(8);
  ring.Record(RequestTrace{});
  ring.Record(RequestTrace{});
  EXPECT_EQ(ring.Snapshot().size(), 2u);
}

TEST(StageSink, AddersCreditOpenSpanOnly) {
  EXPECT_EQ(CurrentStageSink(), nullptr);
  AddExpandNs(100);  // no open span: must be a safe no-op
  StageTimings outer;
  {
    ScopedStageSink sink(&outer);
    ASSERT_EQ(CurrentStageSink(), &outer);
    AddExpandNs(5);
    AddScanNs(7);
    StageTimings inner;
    {
      ScopedStageSink nested(&inner);
      AddExpandNs(100);
    }
    ASSERT_EQ(CurrentStageSink(), &outer) << "nested scope restores";
    AddExpandNs(5);
    EXPECT_EQ(inner.expand_ns, 100u);
  }
  EXPECT_EQ(CurrentStageSink(), nullptr);
  EXPECT_EQ(outer.expand_ns, 10u);
  EXPECT_EQ(outer.scan_ns, 7u);
}

// -------------------------------------------------------------- exporters

TEST(Exporter, PrometheusTextFormat) {
  Registry r;
  r.AddCounter("exp_events_total", "events seen", "events").Inc(7);
  r.AddGauge("exp_level", "current level", "items").Set(3);
  Histogram& h = r.AddHistogram("exp_ns", "latency", "ns", {10, 100});
  h.Observe(5);
  h.Observe(50);
  h.Observe(5000);
  const std::string text = ToPrometheusText(r.Snapshot());
  EXPECT_NE(text.find("# TYPE exp_events_total counter"), std::string::npos);
  EXPECT_NE(text.find("exp_events_total 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE exp_level gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE exp_ns histogram"), std::string::npos);
  // Buckets are cumulative in the Prometheus exposition.
  EXPECT_NE(text.find("exp_ns_bucket{le=\"10\"} 1"), std::string::npos);
  EXPECT_NE(text.find("exp_ns_bucket{le=\"100\"} 2"), std::string::npos);
  EXPECT_NE(text.find("exp_ns_bucket{le=\"+Inf\"} 3"), std::string::npos);
  EXPECT_NE(text.find("exp_ns_sum 5055"), std::string::npos);
  EXPECT_NE(text.find("exp_ns_count 3"), std::string::npos);
}

TEST(Exporter, JsonSnapshotParsesAndMatches) {
  Registry r;
  r.AddCounter("j_events_total", "events", "events").Inc(9);
  Histogram& h = r.AddHistogram("j_ns", "lat", "ns", {10});
  h.Observe(4);
  h.Observe(400);
  auto doc = json::Parse(ToJson(r.Snapshot()));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const json::Value* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  ASSERT_TRUE(counters->is_array());
  ASSERT_EQ(counters->AsArray().size(), 1u);
  EXPECT_EQ(counters->AsArray()[0].GetString("name"), "j_events_total");
  EXPECT_EQ(counters->AsArray()[0].GetNumber("value"), 9.0);
  const json::Value* hists = doc->Find("histograms");
  ASSERT_NE(hists, nullptr);
  ASSERT_EQ(hists->AsArray().size(), 1u);
  const json::Value& jh = hists->AsArray()[0];
  EXPECT_EQ(jh.GetNumber("count"), 2.0);
  EXPECT_EQ(jh.GetNumber("sum"), 404.0);
  const json::Value* buckets = jh.Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_EQ(buckets->AsArray().size(), 2u) << "one bound + overflow";
  EXPECT_EQ(buckets->AsArray()[1].GetString("le"), "inf");
  EXPECT_EQ(buckets->AsArray()[1].GetNumber("count"), 1.0);
}

TEST(Exporter, SnapshotJsonPageParses) {
  auto doc = json::Parse(SnapshotJsonPage());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_GT(doc->GetNumber("unix_ms"), 0.0);
  ASSERT_NE(doc->Find("metrics"), nullptr);
  ASSERT_NE(doc->Find("traces"), nullptr);
  EXPECT_TRUE(doc->Find("traces")->is_array());
}

TEST(Exporter, WriteSnapshotJsonProducesParsableFile) {
  const std::string path =
      ::testing::TempDir() + "/obs_snapshot_test.json";
  ASSERT_TRUE(WriteSnapshotJson(path).ok());
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string content;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) content.append(buf, n);
  std::fclose(f);
  std::remove(path.c_str());
  auto doc = json::Parse(content);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_NE(doc->Find("metrics"), nullptr);
}

// ------------------------------------------------------------ HTTP server

// Minimal loopback HTTP GET for exercising MetricsHttpServer.
std::string HttpGet(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    ::close(fd);
    return "";
  }
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  (void)::send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof buf, 0)) > 0) {
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return response;
}

TEST(MetricsHttpServer, ServesTextAndJsonAndRejectsUnknown) {
  auto server = MetricsHttpServer::Start(0);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const std::uint16_t port = (*server)->port();
  ASSERT_NE(port, 0);

  M().server_requests.Inc(0);  // force catalog registration
  const std::string text = HttpGet(port, "/metrics");
  EXPECT_NE(text.find("200 OK"), std::string::npos);
  EXPECT_NE(text.find("lw_server_requests_total"), std::string::npos);

  const std::string json_response = HttpGet(port, "/metrics.json");
  EXPECT_NE(json_response.find("200 OK"), std::string::npos);
  const std::size_t body_at = json_response.find("\r\n\r\n");
  ASSERT_NE(body_at, std::string::npos);
  auto doc = json::Parse(json_response.substr(body_at + 4));
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_NE(doc->Find("metrics"), nullptr);

  EXPECT_NE(HttpGet(port, "/nope").find("404"), std::string::npos);
  (*server)->Stop();
}

// ------------------------------------------------- end-to-end round trip

// A full PIR session against ZltpPirServer must move every layer's
// metrics: server, batcher, DPF expansion, blob scan, and the store gauge.
// Deltas are used throughout because the default registry is process-wide.
TEST(EndToEnd, PirRoundTripPopulatesServingMetrics) {
  Metrics& m = M();
  const std::uint64_t connections0 = m.server_connections.Value();
  const std::uint64_t requests0 = m.server_requests.Value();
  const std::uint64_t batch_requests0 = m.batch_requests.Value();
  const std::uint64_t batches0 = m.batch_batches.Value();
  const std::uint64_t passes0 = m.scan_passes.Value();
  const std::uint64_t rows0 = m.scan_rows_scanned.Value();
  const std::int64_t records0 = m.store_records.Value();
  const std::uint64_t traces0 = TraceRing::Default().total_recorded();

  zltp::PirStoreConfig config;
  config.domain_bits = 12;
  config.record_size = 128;
  config.keyword_seed = Bytes(16, 0x5a);
  zltp::PirStore store(config);
  ASSERT_TRUE(store.Publish("obs.example/page", ToBytes("observed")).ok());
  EXPECT_EQ(m.store_records.Value(), records0 + 1);

  {
    zltp::ZltpPirServer server0(store, 0);
    zltp::ZltpPirServer server1(store, 1);
    net::TransportPair p0 = net::CreateInMemoryPair();
    net::TransportPair p1 = net::CreateInMemoryPair();
    server0.ServeConnectionDetached(std::move(p0.b));
    server1.ServeConnectionDetached(std::move(p1.b));
    auto session =
        zltp::PirSession::Establish(
            zltp::EstablishOptions::FromTransports(
      std::move(p0.a), std::move(p1.a)));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    auto value = session->PrivateGet("obs.example/page");
    ASSERT_TRUE(value.ok()) << value.status().ToString();
    EXPECT_EQ(ToString(*value), "observed");
    session->Close();
    // Scope end joins the server threads, so every metric write (including
    // the post-send request count) lands before the assertions below.
  }

  EXPECT_EQ(m.server_connections.Value(), connections0 + 2)
      << "one connection per logical server";
  EXPECT_GE(m.server_requests.Value(), requests0 + 2)
      << "the private GET hits both servers";
  EXPECT_GE(m.batch_requests.Value(), batch_requests0 + 2);
  EXPECT_GE(m.batch_batches.Value(), batches0 + 2);
  EXPECT_GE(m.scan_passes.Value(), passes0 + 2);
  EXPECT_GT(m.scan_rows_scanned.Value(), rows0);
  EXPECT_EQ(m.server_active_connections.Value(), 0)
      << "active-connection gauge returns to zero after the session";

  ASSERT_GE(TraceRing::Default().total_recorded(), traces0 + 2);
  const std::vector<RequestTrace> traces = TraceRing::Default().Snapshot();
  ASSERT_FALSE(traces.empty());
  const RequestTrace& last = traces.back();
  EXPECT_GT(last.total_ns, 0u);
  EXPECT_GT(last.stages.expand_ns, 0u)
      << "batch-attributed DPF expansion time must reach the trace";
  EXPECT_GT(last.start_unix_ms, 0u);

  ASSERT_TRUE(store.Unpublish("obs.example/page").ok());
  EXPECT_EQ(m.store_records.Value(), records0);
}

}  // namespace
}  // namespace lw::obs
