// CuckooPirStore tests: publishing with relocation, two-probe lookups, and
// the capacity advantage over direct hashing (the E9 claim, end-to-end).
#include <gtest/gtest.h>

#include "pir/cuckoo_store.h"
#include "pir/packing.h"
#include "pir/keyword.h"
#include "pir/two_server.h"
#include "util/rand.h"

namespace lw::pir {
namespace {

CuckooPirStore::Config SmallConfig(int domain_bits = 10) {
  CuckooPirStore::Config c;
  c.domain_bits = domain_bits;
  c.record_size = 128;
  c.seed = Bytes(16, 0x21);
  return c;
}

// Full two-probe private lookup against the store (both logical servers
// simulated by the same store, as elsewhere).
Result<Bytes> CuckooLookup(const CuckooPirStore& store,
                           std::string_view key) {
  const auto [idx_a, idx_b] = store.Candidates(key);
  Bytes combined[2];
  int i = 0;
  for (const std::uint64_t idx : {idx_a, idx_b}) {
    const QueryKeys q = MakeIndexQuery(idx, store.domain_bits());
    LW_ASSIGN_OR_RETURN(const Bytes a0, store.AnswerQuery(q.key0));
    LW_ASSIGN_OR_RETURN(const Bytes a1, store.AnswerQuery(q.key1));
    LW_ASSIGN_OR_RETURN(combined[i], CombineAnswers(a0, a1));
    ++i;
  }
  return InterpretCuckooRecords(combined[0], combined[1],
                                store.Fingerprint(key));
}

TEST(CuckooStore, PublishAndLookup) {
  CuckooPirStore store(SmallConfig());
  ASSERT_TRUE(store.Publish("a.com/x", ToBytes("hello")).ok());
  auto v = CuckooLookup(store, "a.com/x");
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  EXPECT_EQ(ToString(*v), "hello");
}

TEST(CuckooStore, MissingKeyNotFound) {
  CuckooPirStore store(SmallConfig());
  ASSERT_TRUE(store.Publish("a.com/x", ToBytes("hello")).ok());
  EXPECT_EQ(CuckooLookup(store, "a.com/y").status().code(),
            StatusCode::kNotFound);
}

TEST(CuckooStore, UpdateInPlace) {
  CuckooPirStore store(SmallConfig());
  ASSERT_TRUE(store.Publish("k", ToBytes("v1")).ok());
  ASSERT_TRUE(store.Publish("k", ToBytes("v2")).ok());
  EXPECT_EQ(ToString(CuckooLookup(store, "k").value()), "v2");
  EXPECT_EQ(store.record_count(), 1u);
}

TEST(CuckooStore, UnpublishRemoves) {
  CuckooPirStore store(SmallConfig());
  ASSERT_TRUE(store.Publish("k", ToBytes("v")).ok());
  ASSERT_TRUE(store.Unpublish("k").ok());
  EXPECT_FALSE(store.Contains("k"));
  EXPECT_FALSE(CuckooLookup(store, "k").ok());
  EXPECT_FALSE(store.Unpublish("k").ok());
  EXPECT_EQ(store.record_count(), 0u);
}

TEST(CuckooStore, RelocationsPreserveEveryRecord) {
  // Pack a small table to ~45% — far beyond direct hashing's comfort —
  // forcing many eviction chains, then verify EVERY key still resolves.
  CuckooPirStore store(SmallConfig(8));  // 256 slots
  std::vector<std::string> published;
  for (int i = 0; i < 115; ++i) {
    const std::string key = "key-" + std::to_string(i);
    const Status s = store.Publish(key, ToBytes("payload-" + std::to_string(i)));
    if (s.ok()) published.push_back(key);
  }
  EXPECT_GT(published.size(), 100u);
  EXPECT_EQ(store.record_count(), published.size());
  for (const std::string& key : published) {
    auto v = CuckooLookup(store, key);
    ASSERT_TRUE(v.ok()) << key << ": " << v.status().ToString();
    EXPECT_EQ(ToString(*v),
              "payload-" + key.substr(std::string("key-").size()));
  }
}

TEST(CuckooStore, BeatsDirectHashingCapacity) {
  // At 40% load, direct hashing rejects a large fraction of inserts while
  // cuckoo accepts (essentially) all of them.
  const Bytes seed(16, 0x42);
  const int d = 10;
  const auto target = static_cast<int>(0.4 * (1 << d));

  KeywordRegistry direct(seed, d);
  int direct_failures = 0;
  for (int i = 0; i < target; ++i) {
    direct_failures += !direct.Register("k" + std::to_string(i)).ok();
  }

  CuckooPirStore::Config config;
  config.domain_bits = d;
  config.record_size = 64;
  config.seed = seed;
  CuckooPirStore cuckoo(config);
  int cuckoo_failures = 0;
  for (int i = 0; i < target; ++i) {
    cuckoo_failures += !cuckoo.Publish("k" + std::to_string(i), {}).ok();
  }
  EXPECT_GT(direct_failures, target / 10);
  EXPECT_EQ(cuckoo_failures, 0);
}

TEST(CuckooStore, InterpretPrefersMatchingFingerprint) {
  const Bytes rec_match = PackRecord(42, ToBytes("mine"), 64).value();
  const Bytes rec_other = PackRecord(7, ToBytes("theirs"), 64).value();
  EXPECT_EQ(ToString(InterpretCuckooRecords(rec_match, rec_other, 42).value()),
            "mine");
  EXPECT_EQ(ToString(InterpretCuckooRecords(rec_other, rec_match, 42).value()),
            "mine");
  EXPECT_FALSE(InterpretCuckooRecords(rec_other, rec_other, 42).ok());
  // Zero records (both misses) are NOT_FOUND.
  const Bytes zeros(64, 0);
  EXPECT_EQ(InterpretCuckooRecords(zeros, zeros, 42).status().code(),
            StatusCode::kNotFound);
}

TEST(CuckooStore, OversizedPayloadRejected) {
  CuckooPirStore store(SmallConfig());
  EXPECT_FALSE(store.Publish("k", Bytes(200, 1)).ok());
  EXPECT_FALSE(store.Contains("k"));
}

}  // namespace
}  // namespace lw::pir
