// Failure injection: transports that die mid-protocol, servers vanishing
// between requests, and shard outages. The client stack must surface clean
// UNAVAILABLE/PROTOCOL errors — never hang, crash, or fabricate data.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "lightweb/browser.h"
#include "lightweb/channel.h"
#include "lightweb/publisher.h"
#include "lightweb/universe.h"
#include "net/faulty.h"
#include "net/transport.h"
#include "pir/keyword.h"
#include "pir/packing.h"
#include "pir/two_server.h"
#include "util/clock.h"
#include "zltp/client.h"
#include "zltp/frontend.h"
#include "zltp/server.h"
#include "zltp/store.h"

namespace lw {
namespace {

// All establishes in this file go through EstablishOptions (the redesigned
// API); resilience knobs default to NoRetry so injected faults surface.
Result<zltp::PirSession> EstablishPair(std::unique_ptr<net::Transport> t0,
                                       std::unique_ptr<net::Transport> t1) {
  return zltp::PirSession::Establish(
      zltp::EstablishOptions::FromTransports(std::move(t0), std::move(t1)));
}

zltp::PirStoreConfig StoreConfig() {
  zltp::PirStoreConfig c;
  c.domain_bits = 12;
  c.record_size = 128;
  c.keyword_seed = Bytes(16, 0x5a);
  return c;
}

TEST(FailureInjection, SessionDiesDuringEstablish) {
  zltp::PirStore store(StoreConfig());
  zltp::ZltpPirServer server0(store, 0);
  zltp::ZltpPirServer server1(store, 1);
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  server0.ServeConnectionDetached(std::move(p0.b));
  server1.ServeConnectionDetached(std::move(p1.b));

  // Connection 0 dies before the hello completes.
  auto session = EstablishPair(
      std::make_unique<net::DyingTransport>(std::move(p0.a), 1),
      std::move(p1.a));
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kUnavailable);
}

TEST(FailureInjection, ServerDiesBetweenRequests) {
  zltp::PirStore store(StoreConfig());
  ASSERT_TRUE(store.Publish("k", ToBytes("v")).ok());
  zltp::ZltpPirServer server0(store, 0);
  zltp::ZltpPirServer server1(store, 1);
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  server0.ServeConnectionDetached(std::move(p0.b));
  server1.ServeConnectionDetached(std::move(p1.b));

  // Hello (2 ops) + first GET (2 ops) survive; the link dies afterwards.
  auto session = EstablishPair(
      std::make_unique<net::DyingTransport>(std::move(p0.a), 4),
      std::move(p1.a));
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->PrivateGet("k").ok());

  auto second = session->PrivateGet("k");
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  // Subsequent calls keep failing cleanly rather than crashing.
  EXPECT_FALSE(session->PrivateGet("k").ok());
  session->Close();
}

TEST(FailureInjection, BatchFailsCleanlyWhenServerDies) {
  zltp::PirStore store(StoreConfig());
  for (int i = 0; i < 5; ++i) {
    (void)store.Publish("k" + std::to_string(i), ToBytes("v"));
  }
  zltp::ZltpPirServer server0(store, 0);
  zltp::ZltpPirServer server1(store, 1);
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  server0.ServeConnectionDetached(std::move(p0.b));
  server1.ServeConnectionDetached(std::move(p1.b));

  auto session = EstablishPair(
      std::move(p0.a),
      std::make_unique<net::DyingTransport>(std::move(p1.a), 6));
  ASSERT_TRUE(session.ok());
  auto batch = session->PrivateGetBatch({"k0", "k1", "k2", "k3", "k4"});
  EXPECT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kUnavailable);
}

TEST(FailureInjection, CorruptedServerAnswerDetected) {
  // A tamperer flips bits in the record share: reconstruction yields a
  // record whose fingerprint cannot match — reported as COLLISION or a
  // protocol error, never silently-wrong data.
  zltp::PirStore store(StoreConfig());
  ASSERT_TRUE(store.Publish("page", ToBytes("truth")).ok());
  zltp::ZltpPirServer server0(store, 0);
  zltp::ZltpPirServer server1(store, 1);
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  server0.ServeConnectionDetached(std::move(p0.b));
  server1.ServeConnectionDetached(std::move(p1.b));

  auto session = EstablishPair(
      std::move(p0.a),
      std::make_unique<net::CorruptingTransport>(std::move(p1.a)));
  // The hello itself may already fail to parse; if it succeeds, the GET
  // must not return fabricated content.
  if (!session.ok()) {
    SUCCEED();
    return;
  }
  auto value = session->PrivateGet("page");
  if (value.ok()) {
    // Astronomically unlikely: corruption preserved the fingerprint AND
    // the payload. Treat as failure.
    FAIL() << "corrupted answer authenticated: " << ToString(*value);
  }
}

TEST(FailureInjection, ShardOutageFailsFanout) {
  zltp::ShardTopology topology;
  topology.domain_bits = 10;
  topology.top_bits = 1;  // 2 shards
  topology.record_size = 64;

  zltp::ShardDataServer shard0(topology, 0);
  zltp::ShardDataServer shard1(topology, 1);
  net::TransportPair l0 = net::CreateInMemoryPair();
  net::TransportPair l1 = net::CreateInMemoryPair();
  shard0.ServeConnectionDetached(std::move(l0.b));
  shard1.ServeConnectionDetached(std::move(l1.b));

  std::vector<std::unique_ptr<net::Transport>> links;
  links.push_back(std::move(l0.a));
  // Shard 1's link is already dead.
  links.push_back(std::make_unique<net::DyingTransport>(std::move(l1.a), 0));
  zltp::ShardFanout fanout(topology, std::move(links));

  const pir::QueryKeys q = pir::MakeIndexQuery(3, 10);
  auto answer = fanout.Answer(q.key0);
  EXPECT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kUnavailable);
}

TEST(FailureInjection, BrowserSurfacesChannelFailure) {
  using namespace lightweb;
  UniverseConfig config;
  config.name = "failing";
  config.code_domain_bits = 10;
  config.code_blob_size = 4096;
  config.data_domain_bits = 12;
  config.data_blob_size = 256;
  config.fetches_per_page = 2;
  Universe universe(config);
  Publisher pub("p");
  SiteBuilder site("a.example");
  site.AddRoute("/*rest", {"a.example/data.json"}, "{{data0.x}}");
  ASSERT_TRUE(pub.PublishSite(universe, site).ok());
  json::Object blob;
  blob["x"] = "y";
  ASSERT_TRUE(pub.PublishData(universe, "a.example/data.json",
                              json::Value(blob)).ok());

  zltp::ZltpPirServer code0(universe.code_store(), 0);
  zltp::ZltpPirServer code1(universe.code_store(), 1);
  zltp::ZltpPirServer data0(universe.data_store(), 0);
  zltp::ZltpPirServer data1(universe.data_store(), 1);
  net::TransportPair c0 = net::CreateInMemoryPair();
  net::TransportPair c1 = net::CreateInMemoryPair();
  net::TransportPair d0 = net::CreateInMemoryPair();
  net::TransportPair d1 = net::CreateInMemoryPair();
  code0.ServeConnectionDetached(std::move(c0.b));
  code1.ServeConnectionDetached(std::move(c1.b));
  data0.ServeConnectionDetached(std::move(d0.b));
  data1.ServeConnectionDetached(std::move(d1.b));

  auto code_session =
      EstablishPair(std::move(c0.a), std::move(c1.a));
  // The data channel dies after the hello.
  auto data_session = EstablishPair(
      std::make_unique<net::DyingTransport>(std::move(d0.a), 2),
      std::move(d1.a));
  ASSERT_TRUE(code_session.ok());
  ASSERT_TRUE(data_session.ok());

  BrowserConfig bconfig;
  bconfig.fetches_per_page = universe.fetches_per_page();
  Browser browser(
      std::make_unique<ZltpChannel>(
          std::make_unique<zltp::PirSession>(std::move(*code_session))),
      std::make_unique<ZltpChannel>(
          std::make_unique<zltp::PirSession>(std::move(*data_session))),
      bconfig);

  auto page = browser.Visit("a.example/anything");
  EXPECT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kUnavailable);
}

TEST(FailureInjection, PageLoadSurvivesMidLoadServerCrash) {
  // The acceptance scenario from docs/ROBUSTNESS.md: one of the data
  // servers drops the connection in the middle of a page load; the session
  // redials, re-runs the hello, re-issues the batch with fresh DPF shares,
  // and the browser sees a page load that simply succeeded.
  using namespace lightweb;
  UniverseConfig config;
  config.name = "blippy";
  config.code_domain_bits = 10;
  config.code_blob_size = 4096;
  config.data_domain_bits = 12;
  config.data_blob_size = 256;
  config.fetches_per_page = 2;
  Universe universe(config);
  Publisher pub("p");
  SiteBuilder site("a.example");
  site.AddRoute("/*rest", {"a.example/data.json"}, "{{data0.x}}");
  ASSERT_TRUE(pub.PublishSite(universe, site).ok());
  json::Object blob;
  blob["x"] = "y";
  ASSERT_TRUE(pub.PublishData(universe, "a.example/data.json",
                              json::Value(blob)).ok());

  zltp::ZltpPirServer code0(universe.code_store(), 0);
  zltp::ZltpPirServer code1(universe.code_store(), 1);
  zltp::ZltpPirServer data0(universe.data_store(), 0);
  zltp::ZltpPirServer data1(universe.data_store(), 1);
  auto dial = [](zltp::ZltpPirServer& s) -> net::TransportFactory {
    return [&s]() -> Result<std::unique_ptr<net::Transport>> {
      net::TransportPair p = net::CreateInMemoryPair();
      s.ServeConnectionDetached(std::move(p.b));
      return std::move(p.a);
    };
  };

  FakeClock fake;
  auto connect = [&](zltp::ZltpPirServer& s0, zltp::ZltpPirServer& s1,
                     bool first_connection_dies) {
    zltp::EstablishOptions options;
    options.factory0 = dial(s0);
    options.factory1 = dial(s1);
    if (first_connection_dies) {
      net::TransportFactory inner = options.factory0;
      auto dials = std::make_shared<std::atomic<int>>(0);
      options.factory0 =
          [inner, dials]() -> Result<std::unique_ptr<net::Transport>> {
        LW_ASSIGN_OR_RETURN(std::unique_ptr<net::Transport> t, inner());
        if (dials->fetch_add(1) == 0) {
          // Hello (2 ops) plus one mid-batch send survive, then crash.
          return std::unique_ptr<net::Transport>(
          std::make_unique<net::DyingTransport>(std::move(t), 3));
        }
        return t;
      };
    }
    options.retry.max_attempts = 3;
    options.retry.jitter = 0.0;
    options.clock = &fake;
    return zltp::PirSession::Establish(std::move(options));
  };

  auto code_session = connect(code0, code1, false);
  auto data_session = connect(data0, data1, /*first_connection_dies=*/true);
  ASSERT_TRUE(code_session.ok()) << code_session.status().ToString();
  ASSERT_TRUE(data_session.ok()) << data_session.status().ToString();

  BrowserConfig bconfig;
  bconfig.fetches_per_page = universe.fetches_per_page();
  auto data_channel = std::make_unique<ZltpChannel>(
      std::make_unique<zltp::PirSession>(std::move(*data_session)));
  zltp::Session& data_ref = data_channel->session();
  Browser browser(
      std::make_unique<ZltpChannel>(
          std::make_unique<zltp::PirSession>(std::move(*code_session))),
      std::move(data_channel), bconfig);

  auto page = browser.Visit("a.example/anything");
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_NE(page->text.find("y"), std::string::npos);
  EXPECT_GE(data_ref.traffic().redials, 1u)
      << "the blip must have been recovered by a redial, not avoided";
  EXPECT_GE(data_ref.traffic().retries, 1u);
}

}  // namespace
}  // namespace lw
