// Failure injection: transports that die mid-protocol, servers vanishing
// between requests, and shard outages. The client stack must surface clean
// UNAVAILABLE/PROTOCOL errors — never hang, crash, or fabricate data.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>

#include "lightweb/browser.h"
#include "lightweb/channel.h"
#include "lightweb/publisher.h"
#include "lightweb/universe.h"
#include "net/transport.h"
#include "pir/keyword.h"
#include "pir/packing.h"
#include "pir/two_server.h"
#include "zltp/client.h"
#include "zltp/frontend.h"
#include "zltp/server.h"
#include "zltp/store.h"

namespace lw {
namespace {

// Wraps a transport and kills the connection after a fixed number of
// operations (sends + receives), simulating a mid-protocol crash.
class DyingTransport final : public net::Transport {
 public:
  DyingTransport(std::unique_ptr<net::Transport> inner, int ops_before_death)
      : inner_(std::move(inner)), remaining_(ops_before_death) {}

  Status Send(const net::Frame& frame) override {
    if (Expired()) return UnavailableError("injected failure");
    return inner_->Send(frame);
  }
  Result<net::Frame> Receive() override {
    if (Expired()) return UnavailableError("injected failure");
    return inner_->Receive();
  }
  void Close() override { inner_->Close(); }

 private:
  bool Expired() {
    if (remaining_.fetch_sub(1) <= 0) {
      inner_->Close();
      return true;
    }
    return false;
  }

  std::unique_ptr<net::Transport> inner_;
  std::atomic<int> remaining_;
};

// Corrupts every received frame's payload (bit flips), simulating an
// in-path tamperer.
class CorruptingTransport final : public net::Transport {
 public:
  explicit CorruptingTransport(std::unique_ptr<net::Transport> inner)
      : inner_(std::move(inner)) {}

  Status Send(const net::Frame& frame) override { return inner_->Send(frame); }
  Result<net::Frame> Receive() override {
    auto frame = inner_->Receive();
    if (frame.ok() && !frame->payload.empty()) {
      frame->payload[frame->payload.size() / 2] ^= 0x40;
    }
    return frame;
  }
  void Close() override { inner_->Close(); }

 private:
  std::unique_ptr<net::Transport> inner_;
};

zltp::PirStoreConfig StoreConfig() {
  zltp::PirStoreConfig c;
  c.domain_bits = 12;
  c.record_size = 128;
  c.keyword_seed = Bytes(16, 0x5a);
  return c;
}

TEST(FailureInjection, SessionDiesDuringEstablish) {
  zltp::PirStore store(StoreConfig());
  zltp::ZltpPirServer server0(store, 0);
  zltp::ZltpPirServer server1(store, 1);
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  server0.ServeConnectionDetached(std::move(p0.b));
  server1.ServeConnectionDetached(std::move(p1.b));

  // Connection 0 dies before the hello completes.
  auto session = zltp::PirSession::Establish(
      std::make_unique<DyingTransport>(std::move(p0.a), 1),
      std::move(p1.a));
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kUnavailable);
}

TEST(FailureInjection, ServerDiesBetweenRequests) {
  zltp::PirStore store(StoreConfig());
  ASSERT_TRUE(store.Publish("k", ToBytes("v")).ok());
  zltp::ZltpPirServer server0(store, 0);
  zltp::ZltpPirServer server1(store, 1);
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  server0.ServeConnectionDetached(std::move(p0.b));
  server1.ServeConnectionDetached(std::move(p1.b));

  // Hello (2 ops) + first GET (2 ops) survive; the link dies afterwards.
  auto session = zltp::PirSession::Establish(
      std::make_unique<DyingTransport>(std::move(p0.a), 4),
      std::move(p1.a));
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->PrivateGet("k").ok());

  auto second = session->PrivateGet("k");
  EXPECT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kUnavailable);
  // Subsequent calls keep failing cleanly rather than crashing.
  EXPECT_FALSE(session->PrivateGet("k").ok());
  session->Close();
}

TEST(FailureInjection, BatchFailsCleanlyWhenServerDies) {
  zltp::PirStore store(StoreConfig());
  for (int i = 0; i < 5; ++i) {
    (void)store.Publish("k" + std::to_string(i), ToBytes("v"));
  }
  zltp::ZltpPirServer server0(store, 0);
  zltp::ZltpPirServer server1(store, 1);
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  server0.ServeConnectionDetached(std::move(p0.b));
  server1.ServeConnectionDetached(std::move(p1.b));

  auto session = zltp::PirSession::Establish(
      std::move(p0.a),
      std::make_unique<DyingTransport>(std::move(p1.a), 6));
  ASSERT_TRUE(session.ok());
  auto batch = session->PrivateGetBatch({"k0", "k1", "k2", "k3", "k4"});
  EXPECT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kUnavailable);
}

TEST(FailureInjection, CorruptedServerAnswerDetected) {
  // A tamperer flips bits in the record share: reconstruction yields a
  // record whose fingerprint cannot match — reported as COLLISION or a
  // protocol error, never silently-wrong data.
  zltp::PirStore store(StoreConfig());
  ASSERT_TRUE(store.Publish("page", ToBytes("truth")).ok());
  zltp::ZltpPirServer server0(store, 0);
  zltp::ZltpPirServer server1(store, 1);
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  server0.ServeConnectionDetached(std::move(p0.b));
  server1.ServeConnectionDetached(std::move(p1.b));

  auto session = zltp::PirSession::Establish(
      std::move(p0.a),
      std::make_unique<CorruptingTransport>(std::move(p1.a)));
  // The hello itself may already fail to parse; if it succeeds, the GET
  // must not return fabricated content.
  if (!session.ok()) {
    SUCCEED();
    return;
  }
  auto value = session->PrivateGet("page");
  if (value.ok()) {
    // Astronomically unlikely: corruption preserved the fingerprint AND
    // the payload. Treat as failure.
    FAIL() << "corrupted answer authenticated: " << ToString(*value);
  }
}

TEST(FailureInjection, ShardOutageFailsFanout) {
  zltp::ShardTopology topology;
  topology.domain_bits = 10;
  topology.top_bits = 1;  // 2 shards
  topology.record_size = 64;

  zltp::ShardDataServer shard0(topology, 0);
  zltp::ShardDataServer shard1(topology, 1);
  net::TransportPair l0 = net::CreateInMemoryPair();
  net::TransportPair l1 = net::CreateInMemoryPair();
  shard0.ServeConnectionDetached(std::move(l0.b));
  shard1.ServeConnectionDetached(std::move(l1.b));

  std::vector<std::unique_ptr<net::Transport>> links;
  links.push_back(std::move(l0.a));
  // Shard 1's link is already dead.
  links.push_back(std::make_unique<DyingTransport>(std::move(l1.a), 0));
  zltp::ShardFanout fanout(topology, std::move(links));

  const pir::QueryKeys q = pir::MakeIndexQuery(3, 10);
  auto answer = fanout.Answer(q.key0);
  EXPECT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kUnavailable);
}

TEST(FailureInjection, BrowserSurfacesChannelFailure) {
  using namespace lightweb;
  UniverseConfig config;
  config.name = "failing";
  config.code_domain_bits = 10;
  config.code_blob_size = 4096;
  config.data_domain_bits = 12;
  config.data_blob_size = 256;
  config.fetches_per_page = 2;
  Universe universe(config);
  Publisher pub("p");
  SiteBuilder site("a.example");
  site.AddRoute("/*rest", {"a.example/data.json"}, "{{data0.x}}");
  ASSERT_TRUE(pub.PublishSite(universe, site).ok());
  json::Object blob;
  blob["x"] = "y";
  ASSERT_TRUE(pub.PublishData(universe, "a.example/data.json",
                              json::Value(blob)).ok());

  zltp::ZltpPirServer code0(universe.code_store(), 0);
  zltp::ZltpPirServer code1(universe.code_store(), 1);
  zltp::ZltpPirServer data0(universe.data_store(), 0);
  zltp::ZltpPirServer data1(universe.data_store(), 1);
  net::TransportPair c0 = net::CreateInMemoryPair();
  net::TransportPair c1 = net::CreateInMemoryPair();
  net::TransportPair d0 = net::CreateInMemoryPair();
  net::TransportPair d1 = net::CreateInMemoryPair();
  code0.ServeConnectionDetached(std::move(c0.b));
  code1.ServeConnectionDetached(std::move(c1.b));
  data0.ServeConnectionDetached(std::move(d0.b));
  data1.ServeConnectionDetached(std::move(d1.b));

  auto code_session =
      zltp::PirSession::Establish(std::move(c0.a), std::move(c1.a));
  // The data channel dies after the hello.
  auto data_session = zltp::PirSession::Establish(
      std::make_unique<DyingTransport>(std::move(d0.a), 2),
      std::move(d1.a));
  ASSERT_TRUE(code_session.ok());
  ASSERT_TRUE(data_session.ok());

  BrowserConfig bconfig;
  bconfig.fetches_per_page = universe.fetches_per_page();
  Browser browser(
      std::make_unique<ZltpPirChannel>(std::move(*code_session)),
      std::make_unique<ZltpPirChannel>(std::move(*data_session)), bconfig);

  auto page = browser.Visit("a.example/anything");
  EXPECT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kUnavailable);
}

}  // namespace
}  // namespace lw
