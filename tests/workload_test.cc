// Workload generator tests: determinism, size statistics, JSON validity,
// Zipf sampling, and session generation.
#include <gtest/gtest.h>

#include <map>

#include "json/json.h"
#include "lightweb/path.h"
#include "workload/workload.h"

namespace lw::workload {
namespace {

TEST(Corpus, Deterministic) {
  const SyntheticCorpus a(C4Like(1000));
  const SyntheticCorpus b(C4Like(1000));
  for (std::uint64_t i : {0u, 1u, 999u}) {
    EXPECT_EQ(a.GetPage(i).path, b.GetPage(i).path);
    EXPECT_EQ(a.GetPage(i).payload, b.GetPage(i).payload);
  }
  const SyntheticCorpus c(C4Like(1000, /*seed=*/99));
  EXPECT_NE(a.GetPage(5).payload, c.GetPage(5).payload);
}

TEST(Corpus, PathsAreValidLightwebPaths) {
  const SyntheticCorpus corpus(C4Like(500));
  for (std::uint64_t i = 0; i < 500; i += 37) {
    const auto page = corpus.GetPage(i);
    auto parsed = lightweb::ParsePath(page.path);
    ASSERT_TRUE(parsed.ok()) << page.path;
    EXPECT_EQ(parsed->domain, corpus.DomainOf(i));
  }
}

TEST(Corpus, PayloadsAreValidJson) {
  const SyntheticCorpus corpus(C4Like(200));
  for (std::uint64_t i = 0; i < 200; i += 11) {
    const auto page = corpus.GetPage(i);
    auto v = json::Parse(ToString(page.payload));
    ASSERT_TRUE(v.ok()) << "page " << i << ": " << v.status().ToString();
    EXPECT_EQ(v->GetNumber("id", -1), static_cast<double>(i));
  }
}

TEST(Corpus, MeanSizeMatchesSpec) {
  // C4: mean compressed page ≈ 0.9 KiB; Wikipedia ≈ 0.4 KiB.
  const SyntheticCorpus c4(C4Like(20000));
  const double c4_mean = c4.SampleMeanPayloadBytes(2000);
  EXPECT_NEAR(c4_mean, 0.9 * 1024, 0.25 * 1024);

  const SyntheticCorpus wiki(WikipediaLike(20000));
  const double wiki_mean = wiki.SampleMeanPayloadBytes(2000);
  EXPECT_NEAR(wiki_mean, 0.4 * 1024, 0.15 * 1024);
  EXPECT_LT(wiki_mean, c4_mean);
}

TEST(Corpus, SizesNeverExceedRecordBudget) {
  const SyntheticCorpus corpus(C4Like(5000));
  for (std::uint64_t i = 0; i < 5000; i += 13) {
    EXPECT_LE(corpus.GetPage(i).payload.size(),
              corpus.spec().max_page_bytes);
    EXPECT_GE(corpus.GetPage(i).payload.size(), 30u);
  }
}

TEST(Zipf, HeadHeavierThanTail) {
  ZipfSampler zipf(1000, 1.0);
  Rng rng(42);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 20000; ++i) counts[zipf.Sample(rng)]++;
  // Rank 0 should dominate rank 100 by roughly 100× (s=1).
  EXPECT_GT(counts[0], 50 * std::max(counts[100], 1) / 10);
  // All samples in range.
  for (const auto& [k, v] : counts) EXPECT_LT(k, 1000u);
}

TEST(Zipf, UniformWhenSIsZero) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(1);
  std::map<std::uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[zipf.Sample(rng)]++;
  for (std::uint64_t k = 0; k < 10; ++k) {
    EXPECT_GT(counts[k], 700);
    EXPECT_LT(counts[k], 1300);
  }
}

TEST(Sessions, VisitsAreValidCorpusPages) {
  const SyntheticCorpus corpus(C4Like(2000));
  SessionGenerator gen(corpus);
  for (int i = 0; i < 200; ++i) {
    const std::string path = gen.NextVisit();
    EXPECT_TRUE(lightweb::ParsePath(path).ok()) << path;
  }
}

TEST(Sessions, StayOnDomainBias) {
  const SyntheticCorpus corpus(C4Like(4096));
  SessionGenerator gen(corpus, 1.0, /*stay_on_domain=*/0.9, 3);
  std::string prev_domain;
  int same = 0, total = 0;
  for (int i = 0; i < 300; ++i) {
    const std::string path = gen.NextVisit();
    const std::string domain = lightweb::ParsePath(path)->domain;
    if (!prev_domain.empty()) {
      ++total;
      same += (domain == prev_domain);
    }
    prev_domain = domain;
  }
  // With 0.9 stickiness, well over half of transitions stay on-domain.
  EXPECT_GT(same, total / 2);
}

}  // namespace
}  // namespace lw::workload
