// ZLTP protocol tests: message codecs, the PirStore (single-node and
// sharded), batching, and full client/server sessions over in-memory and
// TCP transports in both modes of operation.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "net/tcp.h"
#include "net/transport.h"
#include "oram/enclave.h"
#include "oram/storage.h"
#include "pir/packing.h"
#include "pir/two_server.h"
#include "util/clock.h"
#include "util/rand.h"
#include "zltp/batch.h"
#include "zltp/client.h"
#include "zltp/messages.h"
#include "zltp/server.h"
#include "zltp/store.h"

namespace lw::zltp {
namespace {

PirStoreConfig SmallStoreConfig(int domain_bits = 12,
                                std::size_t record_size = 128,
                                int shard_top_bits = 0) {
  PirStoreConfig c;
  c.domain_bits = domain_bits;
  c.record_size = record_size;
  c.keyword_seed = Bytes(16, 0x5a);
  c.shard_top_bits = shard_top_bits;
  return c;
}

// ------------------------------------------------------------- messages

TEST(Messages, ClientHelloRoundTrip) {
  ClientHello m;
  m.supported_modes = {Mode::kTwoServerPir, Mode::kEnclave};
  auto decoded = DecodeClientHello(Encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->version, kProtocolVersion);
  EXPECT_EQ(decoded->supported_modes, m.supported_modes);
}

TEST(Messages, ServerHelloRoundTrip) {
  ServerHello m;
  m.mode = Mode::kTwoServerPir;
  m.server_role = 1;
  m.domain_bits = 22;
  m.record_size = 4096;
  m.keyword_seed = Bytes(16, 7);
  auto decoded = DecodeServerHello(Encode(m));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->server_role, 1);
  EXPECT_EQ(decoded->domain_bits, 22);
  EXPECT_EQ(decoded->record_size, 4096u);
  EXPECT_EQ(decoded->keyword_seed, m.keyword_seed);
  EXPECT_TRUE(decoded->enclave_public_key.empty());
}

TEST(Messages, GetRequestResponseRoundTrip) {
  GetRequest req;
  req.request_id = 42;
  req.body = ToBytes("dpf-key-bytes");
  auto dreq = DecodeGetRequest(Encode(req));
  ASSERT_TRUE(dreq.ok());
  EXPECT_EQ(dreq->request_id, 42u);
  EXPECT_EQ(dreq->body, req.body);

  GetResponse resp;
  resp.request_id = 42;
  resp.body = ToBytes("record");
  auto dresp = DecodeGetResponse(Encode(resp));
  ASSERT_TRUE(dresp.ok());
  EXPECT_EQ(dresp->request_id, 42u);
}

TEST(Messages, ErrorRoundTrip) {
  ErrorMsg e;
  e.code = StatusCode::kNotFound;
  e.message = "nope";
  auto decoded = DecodeError(Encode(e));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->code, StatusCode::kNotFound);
  EXPECT_EQ(decoded->message, "nope");
  EXPECT_EQ(StatusFromError(*decoded).code(), StatusCode::kNotFound);
}

TEST(Messages, DecodeRejectsWrongType) {
  EXPECT_FALSE(DecodeServerHello(Encode(ClientHello{})).ok());
  EXPECT_FALSE(DecodeGetRequest(EncodeBye()).ok());
}

TEST(Messages, DecodeRejectsTruncated) {
  net::Frame f = Encode(GetRequest{1, ToBytes("body")});
  f.payload.resize(f.payload.size() - 2);
  EXPECT_FALSE(DecodeGetRequest(f).ok());
}

TEST(Messages, DecodeRejectsTrailingGarbageEveryType) {
  // Pre-fix, decoders stopped at the last expected field and accepted any
  // suffix, so one frame had many byte representations. Strict framing
  // (ExpectEnd) makes encoding a bijection — and every fuzz roundtrip
  // check depends on that.
  ClientHello ch;
  ch.supported_modes = {Mode::kTwoServerPir};
  net::Frame f1 = Encode(ch);
  f1.payload.push_back(0);
  EXPECT_FALSE(DecodeClientHello(f1).ok());

  ServerHello sh;
  sh.domain_bits = 20;
  sh.keyword_seed = Bytes(16, 7);
  net::Frame f2 = Encode(sh);
  f2.payload.push_back(0);
  EXPECT_FALSE(DecodeServerHello(f2).ok());

  net::Frame f3 = Encode(GetRequest{1, ToBytes("body")});
  f3.payload.push_back(0);
  EXPECT_FALSE(DecodeGetRequest(f3).ok());

  net::Frame f4 = Encode(GetResponse{1, ToBytes("share")});
  f4.payload.push_back(0);
  EXPECT_FALSE(DecodeGetResponse(f4).ok());

  net::Frame f5 = Encode(ErrorMsg{StatusCode::kNotFound, "nope"});
  f5.payload.push_back(0);
  EXPECT_FALSE(DecodeError(f5).ok());
}

TEST(Messages, ServerHelloRejectsOutOfRangeFields) {
  // Pre-fix these decoded fine and poisoned the client's universe/DPF
  // configuration (domain_bits drives allocation sizes downstream).
  ServerHello m;
  m.domain_bits = 20;
  m.keyword_seed = Bytes(16, 7);

  ServerHello bad_bits = m;
  bad_bits.domain_bits = 41;  // > dpf::kMaxDomainBits
  EXPECT_FALSE(DecodeServerHello(Encode(bad_bits)).ok());

  ServerHello bad_seed = m;
  bad_seed.keyword_seed = Bytes(17, 7);  // not empty and not kSeedSize
  EXPECT_FALSE(DecodeServerHello(Encode(bad_seed)).ok());

  ServerHello bad_key = m;
  bad_key.enclave_public_key = Bytes(33, 1);  // not empty and not 32
  EXPECT_FALSE(DecodeServerHello(Encode(bad_key)).ok());

  // Still-legal shapes: enclave mode with domain_bits 0 and empty seed.
  ServerHello enclave;
  enclave.mode = Mode::kEnclave;
  enclave.enclave_public_key = Bytes(32, 9);
  EXPECT_TRUE(DecodeServerHello(Encode(enclave)).ok());
}

// -------------------------------------------------------------- PirStore

TEST(PirStore, PublishAndDirectLookup) {
  PirStore store(SmallStoreConfig());
  ASSERT_TRUE(store.Publish("a.com/x", ToBytes("payload-x")).ok());
  EXPECT_TRUE(store.Contains("a.com/x"));
  EXPECT_EQ(ToString(store.DirectLookup("a.com/x").value()), "payload-x");
  EXPECT_EQ(store.record_count(), 1u);
}

TEST(PirStore, RepublishUpdatesContent) {
  PirStore store(SmallStoreConfig());
  ASSERT_TRUE(store.Publish("a.com/x", ToBytes("v1")).ok());
  ASSERT_TRUE(store.Publish("a.com/x", ToBytes("v2")).ok());
  EXPECT_EQ(ToString(store.DirectLookup("a.com/x").value()), "v2");
  EXPECT_EQ(store.record_count(), 1u);
}

TEST(PirStore, OversizedPayloadRejected) {
  PirStore store(SmallStoreConfig(12, 64));
  EXPECT_FALSE(store.Publish("k", Bytes(100, 1)).ok());
  EXPECT_FALSE(store.Contains("k"));  // registration rolled back
  // And publishing something valid under the same key afterwards works.
  EXPECT_TRUE(store.Publish("k", Bytes(10, 1)).ok());
}

TEST(PirStore, UnpublishRemoves) {
  PirStore store(SmallStoreConfig());
  ASSERT_TRUE(store.Publish("k", ToBytes("v")).ok());
  ASSERT_TRUE(store.Unpublish("k").ok());
  EXPECT_FALSE(store.Contains("k"));
  EXPECT_FALSE(store.DirectLookup("k").ok());
  EXPECT_FALSE(store.Unpublish("k").ok());
}

TEST(PirStore, CollisionReported) {
  // Tiny domain: many keys must collide.
  PirStore store(SmallStoreConfig(4, 64));
  int collisions = 0;
  for (int i = 0; i < 64; ++i) {
    const Status s =
        store.Publish("key-" + std::to_string(i), ToBytes("v"));
    if (!s.ok()) {
      EXPECT_EQ(s.code(), StatusCode::kCollision);
      ++collisions;
    }
  }
  EXPECT_GT(collisions, 0);
}

TEST(PirStore, AnswerQueryRetrievesRecord) {
  PirStore store(SmallStoreConfig());
  ASSERT_TRUE(store.Publish("page", ToBytes("content")).ok());
  const std::uint64_t index = store.mapper().IndexOf("page");
  const pir::QueryKeys q = pir::MakeIndexQuery(index, store.domain_bits());
  const Bytes a0 = store.AnswerQuery(q.key0).value();
  const Bytes a1 = store.AnswerQuery(q.key1).value();
  const Bytes record = pir::CombineAnswers(a0, a1).value();
  auto un = pir::UnpackRecord(record);
  ASSERT_TRUE(un.ok());
  EXPECT_EQ(ToString(un->payload), "content");
  EXPECT_EQ(un->fingerprint, store.mapper().Fingerprint("page"));
}

TEST(PirStore, AnswerRejectsWrongDomain) {
  PirStore store(SmallStoreConfig(12, 128));
  const pir::QueryKeys q = pir::MakeIndexQuery(0, 10);  // wrong domain
  EXPECT_FALSE(store.AnswerQuery(q.key0).ok());
}

class ShardedStoreTest : public ::testing::TestWithParam<int> {};

TEST_P(ShardedStoreTest, ShardedAnswersMatchSingleNode) {
  const int top_bits = GetParam();
  PirStore single(SmallStoreConfig(10, 96, 0));
  PirStore sharded(SmallStoreConfig(10, 96, top_bits));
  for (int i = 0; i < 50; ++i) {
    const std::string key = "site.com/page-" + std::to_string(i);
    const Bytes payload = ToBytes("content-" + std::to_string(i));
    const Status s1 = single.Publish(key, payload);
    const Status s2 = sharded.Publish(key, payload);
    EXPECT_EQ(s1.ok(), s2.ok());  // same seed → same collisions
  }
  EXPECT_EQ(sharded.shard_count(), std::size_t{1} << top_bits);
  EXPECT_EQ(single.record_count(), sharded.record_count());

  Rng rng(3);
  for (int t = 0; t < 20; ++t) {
    const std::uint64_t index = rng.UniformInt(1 << 10);
    const pir::QueryKeys q = pir::MakeIndexQuery(index, 10);
    EXPECT_EQ(single.AnswerQuery(q.key0).value(),
              sharded.AnswerQuery(q.key0).value())
        << "index " << index;
  }
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedStoreTest,
                         ::testing::Values(1, 2, 4, 6));

TEST(PirStore, BatchMatchesIndividual) {
  for (int top_bits : {0, 3}) {
    PirStore store(SmallStoreConfig(10, 96, top_bits));
    for (int i = 0; i < 30; ++i) {
      (void)store.Publish("p" + std::to_string(i), ToBytes("v"));
    }
    std::vector<dpf::DpfKey> keys;
    std::vector<Bytes> individual;
    Rng rng(11);
    for (int i = 0; i < 7; ++i) {
      const pir::QueryKeys q =
          pir::MakeIndexQuery(rng.UniformInt(1 << 10), 10);
      keys.push_back(q.key0);
      individual.push_back(store.AnswerQuery(q.key0).value());
    }
    auto batch = store.AnswerBatch(keys);
    ASSERT_TRUE(batch.ok());
    EXPECT_EQ(*batch, individual) << "top_bits=" << top_bits;
  }
}

TEST(PirStore, KeysEnumeratesPublished) {
  PirStore store(SmallStoreConfig());
  ASSERT_TRUE(store.Publish("a", ToBytes("1")).ok());
  ASSERT_TRUE(store.Publish("b", ToBytes("2")).ok());
  auto keys = store.Keys();
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b"}));
}

// ---------------------------------------------------------------- batcher

TEST(BatchScheduler, SingleSubmitWorks) {
  PirStore store(SmallStoreConfig());
  ASSERT_TRUE(store.Publish("k", ToBytes("v")).ok());
  BatchScheduler batcher(store, BatchConfig{});
  const pir::QueryKeys q =
      pir::MakeIndexQuery(store.mapper().IndexOf("k"), store.domain_bits());
  auto a0 = batcher.Submit(q.key0);
  ASSERT_TRUE(a0.ok());
  EXPECT_EQ(*a0, store.AnswerQuery(q.key0).value());
}

TEST(BatchScheduler, ConcurrentSubmitsShareBatches) {
  PirStore store(SmallStoreConfig());
  for (int i = 0; i < 20; ++i) {
    (void)store.Publish("k" + std::to_string(i), ToBytes("v"));
  }
  BatchConfig config;
  config.max_batch = 8;
  config.max_wait = std::chrono::milliseconds(50);
  BatchScheduler batcher(store, config);

  constexpr int kClients = 24;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      const pir::QueryKeys q = pir::MakeIndexQuery(
          static_cast<std::uint64_t>(c), store.domain_bits());
      auto answer = batcher.Submit(q.key0);
      if (!answer.ok() || *answer != store.AnswerQuery(q.key0).value()) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  const auto stats = batcher.stats();
  EXPECT_EQ(stats.requests, static_cast<std::uint64_t>(kClients));
  // With a 50 ms window, the 24 clients must have shared batches.
  EXPECT_LT(stats.batches, static_cast<std::uint64_t>(kClients));
  EXPECT_GT(stats.average_batch_size(), 1.0);
}

TEST(BatchScheduler, RejectsWrongDomainWithoutPoisoningBatch) {
  PirStore store(SmallStoreConfig(12, 128));
  BatchScheduler batcher(store, BatchConfig{});
  const pir::QueryKeys bad = pir::MakeIndexQuery(0, 8);
  EXPECT_FALSE(batcher.Submit(bad.key0).ok());
  const pir::QueryKeys good = pir::MakeIndexQuery(0, 12);
  EXPECT_TRUE(batcher.Submit(good.key0).ok());
}

TEST(BatchScheduler, StopFailsPendingAndFutureSubmits) {
  PirStore store(SmallStoreConfig());
  BatchScheduler batcher(store, BatchConfig{});
  batcher.Stop();
  const pir::QueryKeys q = pir::MakeIndexQuery(0, store.domain_bits());
  EXPECT_EQ(batcher.Submit(q.key0).status().code(),
            StatusCode::kUnavailable);
}

// Spins (real time) until the scheduler has admitted `n` requests, so tests
// driving a FakeClock can sequence submissions against batch formation
// without ever sleeping for a fixed interval and hoping.
void WaitForAdmitted(const BatchScheduler& batcher, std::uint64_t n) {
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (batcher.stats().requests < n) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up)
        << "scheduler never admitted " << n << " requests";
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

TEST(BatchScheduler, QueueLimitShedsWithResourceExhausted) {
  PirStore store(SmallStoreConfig());
  ASSERT_TRUE(store.Publish("k", ToBytes("v")).ok());
  FakeClock clock;
  BatchConfig config;
  config.max_batch = 8;
  config.max_wait = std::chrono::milliseconds(1000);  // of fake time
  config.queue_limit = 2;
  config.clock = &clock;
  BatchScheduler batcher(store, config);

  // Two admitted riders park in the queue: the co-rider window is open and
  // fake time is frozen, so the batch cannot close underneath the test.
  const pir::QueryKeys q = pir::MakeIndexQuery(1, store.domain_bits());
  std::vector<std::thread> riders;
  std::atomic<int> ok_answers{0};
  for (int i = 0; i < 2; ++i) {
    riders.emplace_back([&] {
      if (batcher.Submit(q.key0).ok()) ++ok_answers;
    });
  }
  WaitForAdmitted(batcher, 2);

  // The third submission finds the queue at queue_limit and is refused
  // immediately — admission control answers without blocking.
  const auto shed = batcher.Submit(q.key0);
  EXPECT_EQ(shed.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(batcher.stats().shed, 1u);

  // Opening the window lets the parked riders complete normally: shedding
  // rejected the overflow request only, not the queue contents. Advance in
  // window-sized steps: the worker stamps the batch-open time when it first
  // sees a rider, so a single jump could land before that stamp.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ok_answers.load() < 2) {
    ASSERT_LT(std::chrono::steady_clock::now(), give_up);
    clock.Advance(std::chrono::milliseconds(1100));
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (auto& t : riders) t.join();
  EXPECT_EQ(ok_answers.load(), 2);
  const auto stats = batcher.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.wait_closes, 1u);
}

TEST(BatchScheduler, ExpiredCoRiderFailsWhileFreshOnesRide) {
  PirStore store(SmallStoreConfig());
  ASSERT_TRUE(store.Publish("k", ToBytes("v")).ok());
  FakeClock clock;
  BatchConfig config;
  config.max_batch = 8;
  config.max_wait = std::chrono::milliseconds(100);
  config.deadline_budget = std::chrono::milliseconds(5);
  config.clock = &clock;
  BatchScheduler batcher(store, config);

  // Rider A enqueues at t=0 with deadline t=5ms.
  const pir::QueryKeys qa = pir::MakeIndexQuery(1, store.domain_bits());
  Result<Bytes> answer_a = InternalError("unset");
  std::thread rider_a([&] { answer_a = batcher.Submit(qa.key0); });
  WaitForAdmitted(batcher, 1);

  // Rider B enqueues at t=3ms with deadline t=8ms.
  clock.Advance(std::chrono::milliseconds(3));
  const pir::QueryKeys qb = pir::MakeIndexQuery(2, store.domain_bits());
  Result<Bytes> answer_b = InternalError("unset");
  std::thread rider_b([&] { answer_b = batcher.Submit(qb.key0); });
  WaitForAdmitted(batcher, 2);

  // Jump to t=7ms: past the earliest deadline, so the batch closes
  // (deadline-driven — 5ms beats the 100ms co-rider window), rider A is
  // already expired at formation, and rider B still makes it.
  clock.Advance(std::chrono::milliseconds(4));
  rider_a.join();
  rider_b.join();
  EXPECT_EQ(answer_a.status().code(), StatusCode::kDeadlineExceeded);
  ASSERT_TRUE(answer_b.ok()) << answer_b.status().ToString();
  EXPECT_EQ(*answer_b, store.AnswerQuery(qb.key0).value());

  const auto stats = batcher.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.deadline_closes, 1u);
  // average_batch_size counts only riders that actually rode.
  EXPECT_DOUBLE_EQ(stats.average_batch_size(), 1.0);
}

TEST(BatchScheduler, StopAnswersEveryInFlightRequest) {
  PirStore store(SmallStoreConfig());
  for (int i = 0; i < 10; ++i) {
    (void)store.Publish("k" + std::to_string(i), ToBytes("v"));
  }
  // A long window parks all riders in the queue until Stop() drains them.
  BatchConfig config;
  config.max_batch = 64;
  config.max_wait = std::chrono::milliseconds(10000);
  BatchScheduler batcher(store, config);

  constexpr int kClients = 8;
  std::vector<std::thread> threads;
  std::atomic<int> wrong{0};
  for (int c = 0; c < kClients; ++c) {
    threads.emplace_back([&, c] {
      const pir::QueryKeys q = pir::MakeIndexQuery(
          static_cast<std::uint64_t>(c), store.domain_bits());
      const auto answer = batcher.Submit(q.key0);
      // Stop() promises a real answer for everything already admitted.
      if (!answer.ok() || *answer != store.AnswerQuery(q.key0).value()) {
        ++wrong;
      }
    });
  }
  WaitForAdmitted(batcher, kClients);
  batcher.Stop();
  for (auto& t : threads) t.join();
  EXPECT_EQ(wrong.load(), 0);
  EXPECT_EQ(batcher.stats().requests, static_cast<std::uint64_t>(kClients));
}

TEST(BatchScheduler, PipelinedAndSerialProduceIdenticalAnswers) {
  PirStore store(SmallStoreConfig(12, 128, /*shard_top_bits=*/2));
  for (int i = 0; i < 32; ++i) {
    (void)store.Publish("k" + std::to_string(i), ToBytes("v"));
  }
  constexpr int kQueries = 24;
  std::vector<pir::QueryKeys> queries;
  std::vector<Bytes> expected;
  Rng rng(3);
  for (int i = 0; i < kQueries; ++i) {
    queries.push_back(pir::MakeIndexQuery(rng.UniformInt(1 << 12),
                                          store.domain_bits()));
    expected.push_back(store.AnswerQuery(queries.back().key0).value());
  }

  for (const bool pipelined : {true, false}) {
    BatchConfig config;
    config.max_batch = 4;
    config.max_wait = std::chrono::milliseconds(5);
    config.pipelined = pipelined;
    BatchScheduler batcher(store, config);
    std::vector<Bytes> answers(kQueries);
    std::atomic<int> failures{0};
    std::vector<std::thread> threads;
    for (int i = 0; i < kQueries; ++i) {
      threads.emplace_back([&, i] {
        auto answer = batcher.Submit(queries[i].key0);
        if (answer.ok()) {
          answers[i] = std::move(*answer);
        } else {
          ++failures;
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(failures.load(), 0) << "pipelined=" << pipelined;
    EXPECT_EQ(answers, expected) << "pipelined=" << pipelined;
  }
}

// --------------------------------------------- end-to-end PIR sessions

class PirSessionTest : public ::testing::Test {
 protected:
  PirSessionTest()
      : store_(SmallStoreConfig()),
        server0_(store_, 0),
        server1_(store_, 1) {}

  // In the real system the two logical servers hold replicas in separate
  // trust domains; sharing one PirStore in-process is equivalent for
  // correctness tests.
  Result<PirSession> Connect() {
    net::TransportPair p0 = net::CreateInMemoryPair();
    net::TransportPair p1 = net::CreateInMemoryPair();
    server0_.ServeConnectionDetached(std::move(p0.b));
    server1_.ServeConnectionDetached(std::move(p1.b));
    return PirSession::Establish(
      EstablishOptions::FromTransports(
      std::move(p0.a), std::move(p1.a)));
  }

  PirStore store_;
  ZltpPirServer server0_;
  ZltpPirServer server1_;
};

TEST_F(PirSessionTest, EstablishNegotiatesParameters) {
  auto session = Connect();
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->domain_bits(), store_.domain_bits());
  EXPECT_EQ(session->record_size(), store_.record_size());
  EXPECT_EQ(session->keyword_seed(), store_.config().keyword_seed);
  session->Close();
}

TEST_F(PirSessionTest, PrivateGetRoundTrip) {
  ASSERT_TRUE(store_.Publish("nytimes.com/africa", ToBytes("uganda news")).ok());
  auto session = Connect();
  ASSERT_TRUE(session.ok());
  auto value = session->PrivateGet("nytimes.com/africa");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(ToString(*value), "uganda news");
  session->Close();
}

TEST_F(PirSessionTest, MissingKeyIsNotFound) {
  auto session = Connect();
  ASSERT_TRUE(session.ok());
  auto value = session->PrivateGet("never-published");
  EXPECT_FALSE(value.ok());
  EXPECT_EQ(value.status().code(), StatusCode::kNotFound);
  session->Close();
}

TEST_F(PirSessionTest, ManyKeysRoundTrip) {
  std::vector<std::string> published;
  for (int i = 0; i < 40; ++i) {
    const std::string key = "site/page" + std::to_string(i);
    if (store_.Publish(key, ToBytes("content" + std::to_string(i))).ok()) {
      published.push_back(key);
    }
  }
  ASSERT_GT(published.size(), 30u);
  auto session = Connect();
  ASSERT_TRUE(session.ok());
  for (const auto& key : published) {
    auto value = session->PrivateGet(key);
    ASSERT_TRUE(value.ok()) << key << ": " << value.status().ToString();
    EXPECT_EQ(ToString(*value),
              "content" + key.substr(std::string("site/page").size()));
  }
  session->Close();
}

TEST_F(PirSessionTest, DummyGetIndistinguishableTrafficCost) {
  ASSERT_TRUE(store_.Publish("real-page", ToBytes("data")).ok());
  auto session = Connect();
  ASSERT_TRUE(session.ok());

  const auto before = session->traffic();
  ASSERT_TRUE(session->PrivateGet("real-page").ok());
  const auto after_real = session->traffic();
  ASSERT_TRUE(session->DummyGet().ok());
  const auto after_dummy = session->traffic();

  const std::uint64_t real_sent = after_real.bytes_sent - before.bytes_sent;
  const std::uint64_t dummy_sent =
      after_dummy.bytes_sent - after_real.bytes_sent;
  EXPECT_EQ(real_sent, dummy_sent);
  const std::uint64_t real_recv =
      after_real.bytes_received - before.bytes_received;
  const std::uint64_t dummy_recv =
      after_dummy.bytes_received - after_real.bytes_received;
  EXPECT_EQ(real_recv, dummy_recv);
}

TEST_F(PirSessionTest, PublishAfterConnectIsVisible) {
  auto session = Connect();
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->PrivateGet("late").ok());
  ASSERT_TRUE(store_.Publish("late", ToBytes("arrived")).ok());
  EXPECT_EQ(ToString(session->PrivateGet("late").value()), "arrived");
}

TEST(PirSessionErrors, BothConnectionsSameRoleRejected) {
  PirStore store(SmallStoreConfig());
  ZltpPirServer server0(store, 0);
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  server0.ServeConnectionDetached(std::move(p0.b));
  server0.ServeConnectionDetached(std::move(p1.b));  // same role twice!
  auto session = PirSession::Establish(
      EstablishOptions::FromTransports(
      std::move(p0.a), std::move(p1.a)));
  EXPECT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kFailedPrecondition);
}

TEST(PirSessionErrors, MismatchedUniversesRejected) {
  PirStore store_a(SmallStoreConfig(12, 128));
  PirStore store_b(SmallStoreConfig(14, 128));  // different domain
  ZltpPirServer server0(store_a, 0);
  ZltpPirServer server1(store_b, 1);
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  server0.ServeConnectionDetached(std::move(p0.b));
  server1.ServeConnectionDetached(std::move(p1.b));
  auto session = PirSession::Establish(
      EstablishOptions::FromTransports(
      std::move(p0.a), std::move(p1.a)));
  EXPECT_FALSE(session.ok());
}

TEST(PirSessionErrors, ServerRejectsUnsupportedMode) {
  PirStore store(SmallStoreConfig());
  ZltpPirServer server(store, 0);
  net::TransportPair p = net::CreateInMemoryPair();
  server.ServeConnectionDetached(std::move(p.b));
  // An enclave-only client hello.
  ClientHello hello;
  hello.supported_modes = {Mode::kEnclave};
  ASSERT_TRUE(p.a->Send(Encode(hello)).ok());
  auto reply = p.a->Receive();
  ASSERT_TRUE(reply.ok());
  auto error = DecodeError(*reply);
  ASSERT_TRUE(error.ok());
  EXPECT_EQ(error->code, StatusCode::kFailedPrecondition);
}

// ------------------------------------------------- enclave-mode session

TEST(EnclaveSessionTest, EndToEnd) {
  oram::EnclaveConfig config;
  config.capacity = 64;
  config.value_size = 128;
  oram::MemoryStorage storage(oram::KvEnclave::RequiredStorageBuckets(config));
  oram::KvEnclave enclave(config, storage);
  ASSERT_TRUE(enclave.Put("wiki/Uganda", ToBytes("landlocked country")).ok());

  ZltpEnclaveServer server(enclave);
  net::TransportPair p = net::CreateInMemoryPair();
  server.ServeConnectionDetached(std::move(p.b));

  auto session = EnclaveSession::Establish(EstablishOptions::FromTransports(std::move(p.a)));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto value = session->PrivateGet("wiki/Uganda");
  ASSERT_TRUE(value.ok()) << value.status().ToString();
  EXPECT_EQ(ToString(*value), "landlocked country");

  auto missing = session->PrivateGet("wiki/Atlantis");
  EXPECT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  session->Close();
}

// ------------------------------------------------- pipelined batch GETs

TEST_F(PirSessionTest, BatchMatchesIndividualGets) {
  std::vector<std::string> keys;
  for (int i = 0; i < 12; ++i) {
    const std::string key = "batch/page" + std::to_string(i);
    if (store_.Publish(key, ToBytes("v" + std::to_string(i))).ok()) {
      keys.push_back(key);
    }
  }
  keys.push_back("batch/unpublished");  // NOT_FOUND inside the batch
  auto session = Connect();
  ASSERT_TRUE(session.ok());

  auto batch = session->PrivateGetBatch(keys, /*extra_dummies=*/2);
  ASSERT_TRUE(batch.ok()) << batch.status().ToString();
  ASSERT_EQ(batch->size(), keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    auto individual = session->PrivateGet(keys[i]);
    EXPECT_EQ((*batch)[i].ok(), individual.ok()) << keys[i];
    if (individual.ok()) {
      EXPECT_EQ((*batch)[i].value(), *individual);
    } else {
      EXPECT_EQ((*batch)[i].status().code(), individual.status().code());
    }
  }
  session->Close();
}

TEST_F(PirSessionTest, BatchCountsDummiesInTraffic) {
  ASSERT_TRUE(store_.Publish("k", ToBytes("v")).ok());
  auto session = Connect();
  ASSERT_TRUE(session.ok());
  const auto before = session->traffic();
  auto batch = session->PrivateGetBatch({"k"}, /*extra_dummies=*/4);
  ASSERT_TRUE(batch.ok());
  const auto after = session->traffic();
  // 5 requests on the wire: the observer cannot tell real from dummy.
  EXPECT_EQ(after.requests - before.requests, 5u);
  session->Close();
}

TEST_F(PirSessionTest, EmptyBatchIsNoop) {
  auto session = Connect();
  ASSERT_TRUE(session.ok());
  auto batch = session->PrivateGetBatch({}, 0);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE(batch->empty());
  EXPECT_FALSE(session->PrivateGetBatch({}, -1).ok());
}

TEST(PirBatchCoBatching, PipelinedRequestsShareServerScans) {
  PirStore store(SmallStoreConfig());
  for (int i = 0; i < 10; ++i) {
    (void)store.Publish("p" + std::to_string(i), ToBytes("v"));
  }
  BatchConfig batch_config;
  batch_config.max_batch = 16;
  batch_config.max_wait = std::chrono::milliseconds(50);
  ZltpPirServer server0(store, 0, batch_config);
  ZltpPirServer server1(store, 1, batch_config);
  net::TransportPair p0 = net::CreateInMemoryPair();
  net::TransportPair p1 = net::CreateInMemoryPair();
  server0.ServeConnectionDetached(std::move(p0.b));
  server1.ServeConnectionDetached(std::move(p1.b));
  auto session = PirSession::Establish(
      EstablishOptions::FromTransports(
      std::move(p0.a), std::move(p1.a)));
  ASSERT_TRUE(session.ok());

  std::vector<std::string> keys;
  for (int i = 0; i < 8; ++i) keys.push_back("p" + std::to_string(i));
  auto batch = session->PrivateGetBatch(keys);
  ASSERT_TRUE(batch.ok());
  for (const auto& r : *batch) EXPECT_TRUE(r.ok());

  // The 8 pipelined requests must have shared server-side scans.
  const auto stats = server0.batch_stats();
  EXPECT_EQ(stats.requests, 8u);
  EXPECT_LT(stats.batches, 8u);
  EXPECT_GT(stats.average_batch_size(), 1.5);
  session->Close();
}

TEST(PirThreaded, RoundTripThroughWorkerPool) {
  // The server's DPF expansion + scan run on its thread pool; results must
  // be identical to the serial server for any pool size.
  PirStore store(SmallStoreConfig());
  std::vector<std::string> published;
  for (int i = 0; i < 12; ++i) {
    const std::string key = "pooled/p" + std::to_string(i);
    if (store.Publish(key, ToBytes("value" + std::to_string(i))).ok()) {
      published.push_back(key);
    }
  }
  ASSERT_GT(published.size(), 8u);

  for (const int threads : {2, 3}) {
    ServerOptions options;
    options.num_threads = threads;
    ZltpPirServer server0(store, 0, options);
    ZltpPirServer server1(store, 1, options);
    net::TransportPair p0 = net::CreateInMemoryPair();
    net::TransportPair p1 = net::CreateInMemoryPair();
    server0.ServeConnectionDetached(std::move(p0.b));
    server1.ServeConnectionDetached(std::move(p1.b));
    auto session = PirSession::Establish(
      EstablishOptions::FromTransports(
      std::move(p0.a), std::move(p1.a)));
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    for (const auto& key : published) {
      auto value = session->PrivateGet(key);
      ASSERT_TRUE(value.ok())
          << key << " threads=" << threads << ": "
          << value.status().ToString();
      EXPECT_EQ(ToString(*value),
                "value" + key.substr(std::string("pooled/p").size()));
    }
    session->Close();
  }
}

// ----------------------------------------------------- sessions over TCP

TEST(TcpSessionTest, PirOverRealSockets) {
  PirStore store(SmallStoreConfig());
  ASSERT_TRUE(store.Publish("tcp-page", ToBytes("over the wire")).ok());
  ZltpPirServer server0(store, 0);
  ZltpPirServer server1(store, 1);

  auto l0 = net::TcpListener::Listen(0);
  auto l1 = net::TcpListener::Listen(0);
  ASSERT_TRUE(l0.ok() && l1.ok());

  std::thread acceptor([&] {
    auto c0 = l0->Accept();
    ASSERT_TRUE(c0.ok());
    server0.ServeConnectionDetached(std::move(*c0));
    auto c1 = l1->Accept();
    ASSERT_TRUE(c1.ok());
    server1.ServeConnectionDetached(std::move(*c1));
  });

  auto t0 = net::TcpConnect("127.0.0.1", l0->bound_port());
  auto t1 = net::TcpConnect("127.0.0.1", l1->bound_port());
  ASSERT_TRUE(t0.ok() && t1.ok());
  acceptor.join();

  auto session = PirSession::Establish(
      EstablishOptions::FromTransports(
      std::move(*t0), std::move(*t1)));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(ToString(session->PrivateGet("tcp-page").value()),
            "over the wire");
  session->Close();
}

}  // namespace
}  // namespace lw::zltp
