// Replays the checked-in fuzz corpora under gtest (the same corpora the
// tier-1 ctest `fuzz.replay` runs via the CLI), exercises ReplayCorpus's
// error paths, and pins down what each checked-in regression input proves:
// every one of them crashed or mis-roundtripped a decoder before its fix.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "dpf/dpf.h"
#include "fuzz/replay.h"
#include "fuzz/targets.h"
#include "json/json.h"
#include "net/transport.h"
#include "util/bytes.h"
#include "zltp/messages.h"

namespace lw {
namespace {

#ifndef LW_FUZZ_CORPUS_DIR
#error "LW_FUZZ_CORPUS_DIR must point at fuzz/corpus"
#endif

std::string CorpusPath(const std::string& rel) {
  return std::string(LW_FUZZ_CORPUS_DIR) + "/" + rel;
}

Bytes ReadCorpusFile(const std::string& rel) {
  std::ifstream in(CorpusPath(rel), std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing corpus input " << rel;
  Bytes out;
  char c;
  while (in.get(c)) out.push_back(static_cast<std::uint8_t>(c));
  return out;
}

std::string ReadCorpusText(const std::string& rel) {
  const Bytes b = ReadCorpusFile(rel);
  return std::string(b.begin(), b.end());
}

// ------------------------------------------------------------------ replay

TEST(FuzzReplay, ReplaysEveryTargetAndInput) {
  const auto stats = fuzz::ReplayCorpus(LW_FUZZ_CORPUS_DIR);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->targets, fuzz::AllTargets().size());
  EXPECT_GE(stats->inputs, 30u) << "corpus looks truncated";
}

TEST(FuzzReplay, MissingRootIsAnError) {
  const auto stats = fuzz::ReplayCorpus("definitely/not/a/corpus");
  EXPECT_FALSE(stats.ok());
}

TEST(FuzzReplay, UnknownSubdirectoryIsAnError) {
  // A stray directory means someone added a target without wiring it into
  // AllTargets() (or typo'd a corpus move) — fail loudly, don't skip.
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / "lw_fuzz_replay_test_unknown";
  fs::remove_all(root);
  for (const fuzz::Target& t : fuzz::AllTargets()) {
    fs::create_directories(root / t.name);
    std::ofstream(root / t.name / "seed.bin", std::ios::binary) << "x";
  }
  fs::create_directories(root / "no_such_target");
  std::ofstream(root / "no_such_target" / "seed.bin", std::ios::binary)
      << "x";
  const auto stats = fuzz::ReplayCorpus(root.string());
  EXPECT_FALSE(stats.ok());
  fs::remove_all(root);
}

TEST(FuzzReplay, MissingTargetCorpusIsAnError) {
  // Every target must have at least one input, or its decoder silently
  // loses regression coverage.
  namespace fs = std::filesystem;
  const fs::path root =
      fs::temp_directory_path() / "lw_fuzz_replay_test_missing";
  fs::remove_all(root);
  const auto& targets = fuzz::AllTargets();
  for (std::size_t i = 0; i + 1 < targets.size(); ++i) {
    fs::create_directories(root / targets[i].name);
    std::ofstream(root / targets[i].name / "seed.bin", std::ios::binary)
        << "x";
  }
  const auto stats = fuzz::ReplayCorpus(root.string());
  EXPECT_FALSE(stats.ok());
  fs::remove_all(root);
}

// ------------------------------------------- what the regression inputs pin
// Each assertion documents the pre-fix behavior the input used to trigger.

TEST(FuzzRegressions, JsonHugeExponentIsRejectedNotInfinity) {
  // Pre-fix: 1e999 parsed to +inf, canonical Write emitted "null", and the
  // write/parse fixpoint check in FuzzJson aborted.
  const auto v = json::Parse(ReadCorpusText("json/regression-huge-exponent.json"));
  EXPECT_FALSE(v.ok());
  const auto neg =
      json::Parse(ReadCorpusText("json/regression-neg-huge-exponent.json"));
  EXPECT_FALSE(neg.ok());
}

TEST(FuzzRegressions, JsonLoneSurrogatesAreRejected) {
  EXPECT_FALSE(
      json::Parse(ReadCorpusText("json/regression-lone-surrogate.json")).ok());
  EXPECT_FALSE(
      json::Parse(ReadCorpusText("json/regression-low-surrogate.json")).ok());
}

TEST(FuzzRegressions, JsonMaxDepthSeedIsAcceptedDeeperIsNot) {
  const auto ok = json::Parse(ReadCorpusText("json/seed-max-depth.json"));
  EXPECT_TRUE(ok.ok()) << "exact kMaxDepth nesting must stay parseable";
  EXPECT_FALSE(
      json::Parse(ReadCorpusText("json/regression-deep-nesting.json")).ok());
}

TEST(FuzzRegressions, JsonNulByteInStringRoundTrips) {
  const auto v = json::Parse(ReadCorpusText("json/regression-nul-in-string.json"));
  ASSERT_TRUE(v.ok()) << v.status().ToString();
  const std::string once = json::Write(*v);
  const auto again = json::Parse(once);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(*again == *v);
}

net::Frame FrameFromCorpus(const std::string& rel) {
  // zltp corpus format (FuzzZltp): byte 0 selects the type, rest is payload.
  const Bytes raw = ReadCorpusFile(rel);
  net::Frame f;
  EXPECT_FALSE(raw.empty());
  f.type = static_cast<std::uint8_t>(1 + raw[0] % 5);
  f.payload.assign(raw.begin() + 1, raw.end());
  return f;
}

TEST(FuzzRegressions, ZltpTrailingGarbageIsRejected) {
  EXPECT_FALSE(
      zltp::DecodeServerHello(
          FrameFromCorpus("zltp/regression-serverhello-trailing.bin"))
          .ok());
  EXPECT_FALSE(
      zltp::DecodeClientHello(
          FrameFromCorpus("zltp/regression-clienthello-trailing.bin"))
          .ok());
}

TEST(FuzzRegressions, ZltpServerHelloFieldRangesAreEnforced) {
  // Pre-fix: a 17-byte keyword seed and domain_bits 41 decoded fine and
  // poisoned the client's universe/DPF config.
  EXPECT_FALSE(zltp::DecodeServerHello(
                   FrameFromCorpus("zltp/regression-serverhello-seed17.bin"))
                   .ok());
  EXPECT_FALSE(
      zltp::DecodeServerHello(
          FrameFromCorpus("zltp/regression-serverhello-domainbits41.bin"))
          .ok());
}

TEST(FuzzRegressions, DpfKeyRangeAndTrailingChecks) {
  EXPECT_FALSE(
      dpf::DpfKey::Deserialize(ReadCorpusFile("dpf/regression-domainbits0.bin"))
          .ok());
  EXPECT_FALSE(
      dpf::DpfKey::Deserialize(ReadCorpusFile("dpf/regression-domainbits41.bin"))
          .ok());
  EXPECT_FALSE(
      dpf::DpfKey::Deserialize(ReadCorpusFile("dpf/regression-trailing-byte.bin"))
          .ok());
  const auto good = dpf::DpfKey::Deserialize(
      ReadCorpusFile("dpf/seed-key-d2.bin"));
  EXPECT_TRUE(good.ok()) << good.status().ToString();
}

}  // namespace
}  // namespace lw
