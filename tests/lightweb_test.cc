// Lightweb system tests: universes, publishers, the browser end-to-end over
// in-process PIR (and real ZLTP sessions), access control, dynamic content,
// the fixed-fetch traffic invariant, caching, and peering.
#include <gtest/gtest.h>

#include <set>

#include "lightweb/access.h"
#include "lightweb/browser.h"
#include "lightweb/cdn.h"
#include "lightweb/channel.h"
#include "lightweb/paced.h"
#include "lightweb/publisher.h"
#include "lightweb/universe.h"
#include "net/transport.h"
#include "util/rand.h"
#include "zltp/client.h"
#include "zltp/server.h"

namespace lw::lightweb {
namespace {

UniverseConfig SmallUniverse(std::string name = "test") {
  UniverseConfig c;
  c.name = std::move(name);
  c.code_domain_bits = 10;
  c.code_blob_size = 4096;
  c.data_domain_bits = 14;
  c.data_blob_size = 512;
  c.fetches_per_page = 3;
  c.master_seed = Bytes(16, 0x11);
  return c;
}

// Builds a small news site and publishes it.
Publisher MakeNewsSite(Universe& universe) {
  Publisher pub("planet-media");
  SiteBuilder site("planet.com");
  site.SetSiteName("The Daily Planet")
      .AddRoute("/world/:region", {"planet.com/data/world/{region}.json"},
                "# {{site}} — {{region}}\n"
                "{{#each data0.headlines}}- [{{.title}}]({{.link}})\n{{/each}}")
      .AddRoute("/story/:id", {"planet.com/data/story/{id}.json"},
                "# {{data0.title}}\n\n{{data0.body}}\n\n[home](planet.com/)")
      .AddRoute("/*rest", {"planet.com/data/home.json"},
                "# {{site}}\n{{#each data0.sections}}"
                "- [{{.}}](planet.com/world/{{.}})\n{{/each}}");
  EXPECT_TRUE(pub.PublishSite(universe, site).ok());

  json::Object home;
  home["sections"] = json::Array{"africa", "europe"};
  EXPECT_TRUE(
      pub.PublishData(universe, "planet.com/data/home.json", json::Value(home))
          .ok());

  json::Object africa;
  africa["headlines"] = json::Array{[] {
    json::Object h;
    h["title"] = "Lake Victoria rises";
    h["link"] = "planet.com/story/lv1";
    return json::Value(h);
  }()};
  EXPECT_TRUE(pub.PublishData(universe, "planet.com/data/world/africa.json",
                              json::Value(africa))
                  .ok());

  json::Object story;
  story["title"] = "Lake Victoria rises";
  story["body"] = "Water levels reached a new high this week.";
  EXPECT_TRUE(pub.PublishData(universe, "planet.com/data/story/lv1.json",
                              json::Value(story))
                  .ok());
  return pub;
}

Browser MakeBrowser(const Universe& universe) {
  BrowserConfig config;
  config.fetches_per_page = universe.fetches_per_page();
  return Browser(
      std::make_unique<InProcessPirChannel>(universe.code_store()),
      std::make_unique<InProcessPirChannel>(universe.data_store()), config);
}

// ------------------------------------------------------------- universe

TEST(Universe, DomainOwnership) {
  Universe u(SmallUniverse());
  ASSERT_TRUE(u.ClaimDomain("planet.com", "pub-a").ok());
  EXPECT_TRUE(u.ClaimDomain("planet.com", "pub-a").ok());  // idempotent
  EXPECT_EQ(u.ClaimDomain("planet.com", "pub-b").code(),
            StatusCode::kCollision);
  EXPECT_EQ(u.OwnerOf("planet.com").value(), "pub-a");
  EXPECT_FALSE(u.OwnerOf("other.com").ok());
  EXPECT_FALSE(u.ClaimDomain("BAD_DOMAIN", "pub-a").ok());
}

TEST(Universe, PushRequiresOwnership) {
  Universe u(SmallUniverse());
  ASSERT_TRUE(u.ClaimDomain("planet.com", "pub-a").ok());
  EXPECT_EQ(u.PushData("pub-b", "planet.com/x", ToBytes("{}")).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(u.PushData("pub-a", "unclaimed.com/x", ToBytes("{}")).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(u.PushData("pub-a", "planet.com/x", ToBytes("{}")).ok());
}

TEST(Universe, PushCodeValidatesProgram) {
  Universe u(SmallUniverse());
  ASSERT_TRUE(u.ClaimDomain("planet.com", "p").ok());
  EXPECT_FALSE(u.PushCode("p", "planet.com", "not json at all").ok());
  // Route exceeding the fetch budget (3) is rejected.
  SiteBuilder greedy("planet.com");
  greedy.AddRoute("/", {"planet.com/1", "planet.com/2", "planet.com/3",
                        "planet.com/4"},
                  "too many");
  EXPECT_EQ(u.PushCode("p", "planet.com", greedy.BuildCodeBlob()).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Universe, RemoveData) {
  Universe u(SmallUniverse());
  ASSERT_TRUE(u.ClaimDomain("a.com", "p").ok());
  ASSERT_TRUE(u.PushData("p", "a.com/x", ToBytes("{}")).ok());
  EXPECT_EQ(u.total_pages(), 1u);
  ASSERT_TRUE(u.RemoveData("p", "a.com/x").ok());
  EXPECT_EQ(u.total_pages(), 0u);
}

// -------------------------------------------------------------- browser

TEST(BrowserTest, VisitRendersHomePage) {
  Universe universe(SmallUniverse());
  MakeNewsSite(universe);
  Browser browser = MakeBrowser(universe);

  auto page = browser.Visit("planet.com");
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_EQ(page->site_name, "The Daily Planet");
  EXPECT_NE(page->text.find("# The Daily Planet"), std::string::npos);
  ASSERT_EQ(page->links.size(), 2u);
  EXPECT_EQ(page->links[0].target, "planet.com/world/africa");
}

TEST(BrowserTest, NavigateViaLinks) {
  Universe universe(SmallUniverse());
  MakeNewsSite(universe);
  Browser browser = MakeBrowser(universe);

  auto home = browser.Visit("planet.com");
  ASSERT_TRUE(home.ok());
  auto region = browser.Visit(home->links[0].target);
  ASSERT_TRUE(region.ok());
  EXPECT_NE(region->text.find("Lake Victoria rises"), std::string::npos);
  ASSERT_FALSE(region->links.empty());
  auto story = browser.Visit(region->links[0].target);
  ASSERT_TRUE(story.ok());
  EXPECT_NE(story->text.find("Water levels reached a new high"),
            std::string::npos);
}

TEST(BrowserTest, FixedFetchCountInvariant) {
  // THE traffic-analysis defense (paper §3.2): every page view issues
  // exactly fetches_per_page data-channel queries, no matter how many real
  // blobs the route needs (here: home=1, about-like misses, story=1).
  Universe universe(SmallUniverse());
  MakeNewsSite(universe);
  Browser browser = MakeBrowser(universe);
  const auto& data_channel = browser.data_channel();
  const int budget = universe.fetches_per_page();

  std::uint64_t last = data_channel.observed_queries();
  for (const char* path :
       {"planet.com", "planet.com/world/africa", "planet.com/story/lv1",
        "planet.com/world/nowhere", "planet.com/story/missing"}) {
    auto page = browser.Visit(path);
    ASSERT_TRUE(page.ok()) << path;
    const std::uint64_t now = data_channel.observed_queries();
    EXPECT_EQ(now - last, static_cast<std::uint64_t>(budget))
        << "path " << path << " broke the fixed-fetch invariant";
    EXPECT_EQ(page->real_fetches + page->dummy_fetches, budget);
    last = now;
  }
}

TEST(BrowserTest, CodeBlobCached) {
  Universe universe(SmallUniverse());
  MakeNewsSite(universe);
  Browser browser = MakeBrowser(universe);

  const auto& code_channel = browser.code_channel();
  ASSERT_TRUE(browser.Visit("planet.com").ok());
  const std::uint64_t after_first = code_channel.observed_queries();
  EXPECT_EQ(after_first, 1u);
  ASSERT_TRUE(browser.Visit("planet.com/world/africa").ok());
  ASSERT_TRUE(browser.Visit("planet.com/story/lv1").ok());
  EXPECT_EQ(code_channel.observed_queries(), after_first);  // cache hits
  EXPECT_EQ(browser.code_cache_hits(), 2u);

  browser.InvalidateCode("planet.com");
  ASSERT_TRUE(browser.Visit("planet.com").ok());
  EXPECT_EQ(code_channel.observed_queries(), after_first + 1);
}

TEST(BrowserTest, CodeCacheLruEviction) {
  UniverseConfig config = SmallUniverse();
  Universe universe(config);
  // Three one-route sites.
  for (const char* domain : {"a-site.com", "b-site.com", "c-site.com"}) {
    Publisher pub(std::string("pub-") + domain);
    SiteBuilder site(domain);
    site.AddRoute("/*rest", {}, std::string("hello from ") + domain);
    ASSERT_TRUE(pub.PublishSite(universe, site).ok());
  }
  BrowserConfig bconfig;
  bconfig.fetches_per_page = universe.fetches_per_page();
  bconfig.code_cache_capacity = 2;
  Browser browser(
      std::make_unique<InProcessPirChannel>(universe.code_store()),
      std::make_unique<InProcessPirChannel>(universe.data_store()), bconfig);

  ASSERT_TRUE(browser.Visit("a-site.com").ok());  // miss
  ASSERT_TRUE(browser.Visit("b-site.com").ok());  // miss
  ASSERT_TRUE(browser.Visit("a-site.com").ok());  // hit
  ASSERT_TRUE(browser.Visit("c-site.com").ok());  // miss, evicts b
  ASSERT_TRUE(browser.Visit("b-site.com").ok());  // miss again
  EXPECT_EQ(browser.code_cache_misses(), 4u);
  EXPECT_EQ(browser.code_cache_hits(), 1u);
}

TEST(BrowserTest, UnknownDomainFails) {
  Universe universe(SmallUniverse());
  Browser browser = MakeBrowser(universe);
  auto page = browser.Visit("ghost.com/page");
  EXPECT_FALSE(page.ok());
  EXPECT_EQ(page.status().code(), StatusCode::kNotFound);
}

TEST(BrowserTest, MissingDataBlobRendersBestEffort) {
  Universe universe(SmallUniverse());
  MakeNewsSite(universe);
  Browser browser = MakeBrowser(universe);
  auto page = browser.Visit("planet.com/world/atlantis");  // no such blob
  ASSERT_TRUE(page.ok());
  ASSERT_EQ(page->fetch_status.size(), 1u);
  EXPECT_EQ(page->fetch_status[0].code(), StatusCode::kNotFound);
  EXPECT_NE(page->text.find("atlantis"), std::string::npos);
}

// ------------------------------------------------------ dynamic content

TEST(BrowserTest, DynamicContentViaLocalStorage) {
  // The weather.com example from §3.3: the page uses the locally cached
  // postal code to pick the data blob — no server-side state, no leakage.
  Universe universe(SmallUniverse());
  Publisher pub("weather-co");
  SiteBuilder site("weather.com");
  site.SetSiteName("Weather Now")
      .AddRoute("/", {"weather.com/by-zip/{local.postal_code|default}.json"},
                "Weather for {{local.postal_code}}: {{data0.forecast}}");
  ASSERT_TRUE(pub.PublishSite(universe, site).ok());

  json::Object berkeley;
  berkeley["forecast"] = "fog then sun";
  ASSERT_TRUE(pub.PublishData(universe, "weather.com/by-zip/94703.json",
                              json::Value(berkeley))
                  .ok());
  json::Object nyc;
  nyc["forecast"] = "humid";
  ASSERT_TRUE(pub.PublishData(universe, "weather.com/by-zip/10001.json",
                              json::Value(nyc))
                  .ok());

  Browser browser = MakeBrowser(universe);
  browser.local_storage("weather.com").Set("postal_code", "94703");
  auto page = browser.Visit("weather.com");
  ASSERT_TRUE(page.ok());
  EXPECT_NE(page->text.find("fog then sun"), std::string::npos);

  browser.local_storage("weather.com").Set("postal_code", "10001");
  page = browser.Visit("weather.com");
  ASSERT_TRUE(page.ok());
  EXPECT_NE(page->text.find("humid"), std::string::npos);
}

TEST(BrowserTest, LocalStorageIsDomainSeparated) {
  Universe universe(SmallUniverse());
  Browser browser = MakeBrowser(universe);
  browser.local_storage("a-site.com").Set("secret", "for-a");
  EXPECT_FALSE(browser.local_storage("b-site.com").Get("secret").has_value());
  EXPECT_EQ(*browser.local_storage("a-site.com").Get("secret"), "for-a");
}

// ------------------------------------------------------- access control

TEST(AccessControl, SubscriberReadsPaywalledPage) {
  Universe universe(SmallUniverse());
  Publisher pub("times-co");
  SiteBuilder site("times.com");
  site.AddRoute("/premium/:id", {"times.com/data/premium/{id}.json"},
                "{{#if data0.body}}{{data0.body}}{{/if}}"
                "{{^if data0.body}}[ subscribe to read ]{{/if}}");
  ASSERT_TRUE(pub.PublishSite(universe, site).ok());

  json::Object article;
  article["body"] = "Exclusive: the truth about everything.";
  ASSERT_TRUE(pub.PublishProtectedData(
                     universe, "times.com/data/premium/42.json",
                     json::Value(article))
                  .ok());

  // Non-subscriber: fetch succeeds (CDN can't tell), decrypt fails,
  // page renders the paywall branch.
  Browser visitor = MakeBrowser(universe);
  auto page = visitor.Visit("times.com/premium/42");
  ASSERT_TRUE(page.ok());
  EXPECT_NE(page->text.find("[ subscribe to read ]"), std::string::npos);
  ASSERT_EQ(page->fetch_status.size(), 1u);
  EXPECT_EQ(page->fetch_status[0].code(), StatusCode::kPermissionDenied);

  // Subscriber with the current epoch key reads the article.
  Browser subscriber = MakeBrowser(universe);
  subscriber.keyring("times.com")
      .AddEpochKey(pub.keyring().current_epoch(),
                   pub.IssueClientKey(pub.keyring().current_epoch()));
  page = subscriber.Visit("times.com/premium/42");
  ASSERT_TRUE(page.ok());
  EXPECT_NE(page->text.find("Exclusive: the truth"), std::string::npos);
}

TEST(AccessControl, KeyRotationRevokesLapsedSubscribers) {
  Universe universe(SmallUniverse());
  Publisher pub("times-co");
  SiteBuilder site("times.com");
  site.AddRoute("/p/:id", {"times.com/data/p/{id}.json"}, "{{data0.body}}");
  ASSERT_TRUE(pub.PublishSite(universe, site).ok());

  const std::uint32_t old_epoch = pub.keyring().current_epoch();
  json::Object v1;
  v1["body"] = "epoch-1 content";
  ASSERT_TRUE(
      pub.PublishProtectedData(universe, "times.com/data/p/1.json",
                               json::Value(v1))
          .ok());

  Browser lapsed = MakeBrowser(universe);
  lapsed.keyring("times.com")
      .AddEpochKey(old_epoch, pub.IssueClientKey(old_epoch));
  // Can read epoch-1 content.
  auto page = lapsed.Visit("times.com/p/1");
  ASSERT_TRUE(page.ok());
  EXPECT_NE(page->text.find("epoch-1 content"), std::string::npos);

  // Publisher rotates and publishes new content; the lapsed subscriber
  // cannot read it.
  pub.keyring().RotateEpoch();
  json::Object v2;
  v2["body"] = "epoch-2 content";
  ASSERT_TRUE(
      pub.PublishProtectedData(universe, "times.com/data/p/2.json",
                               json::Value(v2))
          .ok());
  page = lapsed.Visit("times.com/p/2");
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->text.find("epoch-2 content"), std::string::npos);
  EXPECT_EQ(page->fetch_status[0].code(), StatusCode::kPermissionDenied);
}

TEST(AccessControl, CiphertextBoundToPath) {
  PublisherKeyring pub;
  const Bytes ct = pub.Encrypt("times.com/a", ToBytes("secret"));
  ClientKeyring client;
  client.AddEpochKey(pub.current_epoch(), pub.EpochKey(pub.current_epoch()));
  EXPECT_TRUE(client.Decrypt("times.com/a", ct).ok());
  // Replaying the ciphertext under a different path fails.
  EXPECT_FALSE(client.Decrypt("times.com/b", ct).ok());
}

// -------------------------------------------------------------- peering

TEST(Peering, PushPropagatesToPeerUniverse) {
  Universe akamai(SmallUniverse("akamai"));
  Universe fastly(SmallUniverse("fastly"));
  akamai.AddPeer(fastly);

  Publisher pub = MakeNewsSite(akamai);
  (void)pub;
  EXPECT_GT(fastly.total_pages(), 0u);
  EXPECT_EQ(fastly.total_pages(), akamai.total_pages());

  // A browser pointed at the PEER universe reads the same site.
  Browser browser = MakeBrowser(fastly);
  auto page = browser.Visit("planet.com/world/africa");
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_NE(page->text.find("Lake Victoria rises"), std::string::npos);
}

TEST(Peering, OwnershipConsistentAcrossPeers) {
  Universe a(SmallUniverse("a"));
  Universe b(SmallUniverse("b"));
  a.AddPeer(b);
  Publisher pub("owner-1");
  SiteBuilder site("site.com");
  site.AddRoute("/*rest", {}, "hi");
  ASSERT_TRUE(pub.PublishSite(a, site).ok());
  EXPECT_EQ(b.OwnerOf("site.com").value(), "owner-1");
  // A different publisher cannot hijack the domain on the peer.
  EXPECT_EQ(b.ClaimDomain("site.com", "owner-2").code(),
            StatusCode::kCollision);
}

// ------------------------------------------------------------------ CDN

TEST(CdnTest, UniverseManagement) {
  Cdn cdn("akamai");
  ASSERT_TRUE(cdn.CreateUniverse(SmallUniverse("news")).ok());
  ASSERT_TRUE(cdn.CreateUniverse(SmallUniverse("reference")).ok());
  EXPECT_FALSE(cdn.CreateUniverse(SmallUniverse("news")).ok());  // dup
  EXPECT_TRUE(cdn.GetUniverse("news").ok());
  EXPECT_FALSE(cdn.GetUniverse("ghost").ok());
  EXPECT_EQ(cdn.UniverseNames().size(), 2u);
}

TEST(CdnTest, TieredConfigsDifferInBlobSize) {
  const auto tiers = Cdn::TieredConfigs();
  ASSERT_EQ(tiers.size(), 3u);
  std::set<std::size_t> sizes;
  for (const auto& t : tiers) sizes.insert(t.data_blob_size);
  EXPECT_EQ(sizes.size(), 3u);  // all distinct
}

// ------------------------------------------------------ paced browsing

TEST(PacedBrowserTest, ConstantRateRegardlessOfActivity) {
  Universe universe(SmallUniverse());
  MakeNewsSite(universe);
  Browser browser = MakeBrowser(universe);
  // Warm the code cache so real and decoy loads look alike on the data
  // channel accounting below.
  ASSERT_TRUE(browser.Visit("planet.com").ok());
  const std::uint64_t baseline = browser.data_channel().observed_queries();

  PacedBrowser paced(browser);
  paced.Navigate("planet.com/world/africa");
  paced.Navigate("planet.com/story/lv1");

  int rendered = 0;
  for (int tick = 0; tick < 6; ++tick) {
    auto result = paced.Tick();
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    rendered += result->has_value();
    // THE invariant: every tick costs exactly one page load of traffic.
    EXPECT_EQ(browser.data_channel().observed_queries() - baseline,
              static_cast<std::uint64_t>(tick + 1) *
                  static_cast<std::uint64_t>(universe.fetches_per_page()));
  }
  EXPECT_EQ(rendered, 2);
  EXPECT_EQ(paced.real_loads(), 2u);
  EXPECT_EQ(paced.decoy_loads(), 4u);
  EXPECT_EQ(paced.pending(), 0u);
}

TEST(PacedBrowserTest, QueueDrainsInOrder) {
  Universe universe(SmallUniverse());
  MakeNewsSite(universe);
  Browser browser = MakeBrowser(universe);
  PacedBrowser paced(browser);
  paced.Navigate("planet.com/world/africa");
  paced.Navigate("planet.com/story/lv1");
  EXPECT_EQ(paced.pending(), 2u);

  auto first = paced.Tick();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(first->has_value());
  EXPECT_EQ((*first)->full_path, "planet.com/world/africa");
  auto second = paced.Tick();
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(second->has_value());
  EXPECT_EQ((*second)->full_path, "planet.com/story/lv1");
  auto third = paced.Tick();
  ASSERT_TRUE(third.ok());
  EXPECT_FALSE(third->has_value());  // decoy
}

// ------------------------------------- browser over real ZLTP sessions

TEST(BrowserOverZltp, FullStackWithNetworkedSessions) {
  Universe universe(SmallUniverse());
  MakeNewsSite(universe);

  zltp::ZltpPirServer code0(universe.code_store(), 0);
  zltp::ZltpPirServer code1(universe.code_store(), 1);
  zltp::ZltpPirServer data0(universe.data_store(), 0);
  zltp::ZltpPirServer data1(universe.data_store(), 1);

  auto connect = [](zltp::ZltpPirServer& s0, zltp::ZltpPirServer& s1) {
    net::TransportPair p0 = net::CreateInMemoryPair();
    net::TransportPair p1 = net::CreateInMemoryPair();
    s0.ServeConnectionDetached(std::move(p0.b));
    s1.ServeConnectionDetached(std::move(p1.b));
    zltp::EstablishOptions options;
    options.transport0 = std::move(p0.a);
    options.transport1 = std::move(p1.a);
    return zltp::PirSession::Establish(std::move(options));
  };
  auto code_session = connect(code0, code1);
  auto data_session = connect(data0, data1);
  ASSERT_TRUE(code_session.ok());
  ASSERT_TRUE(data_session.ok());

  BrowserConfig config;
  config.fetches_per_page = universe.fetches_per_page();
  Browser browser(std::make_unique<ZltpChannel>(std::make_unique<zltp::PirSession>(
                      std::move(*code_session))),
                  std::make_unique<ZltpChannel>(std::make_unique<zltp::PirSession>(
                      std::move(*data_session))),
                  config);

  auto page = browser.Visit("planet.com/world/africa");
  ASSERT_TRUE(page.ok()) << page.status().ToString();
  EXPECT_NE(page->text.find("Lake Victoria rises"), std::string::npos);
  // Fixed-fetch invariant holds over the real protocol too.
  EXPECT_EQ(browser.data_channel().observed_queries(),
            static_cast<std::uint64_t>(universe.fetches_per_page()));
}

}  // namespace
}  // namespace lw::lightweb
