// Tests for the networked sharded deployment (paper §5.2): shard data
// servers, the front-end fan-out, and a full client session against a
// two-logical-server deployment where each logical server is a front-end
// over 2^top_bits shard servers.
#include <gtest/gtest.h>

#include <thread>

#include "net/tcp.h"
#include "net/transport.h"
#include "pir/keyword.h"
#include "pir/packing.h"
#include "pir/two_server.h"
#include "util/rand.h"
#include "zltp/client.h"
#include "zltp/frontend.h"

namespace lw::zltp {
namespace {

ShardTopology SmallTopology() {
  ShardTopology t;
  t.domain_bits = 12;
  t.top_bits = 2;  // 4 shards
  t.record_size = 128;
  return t;
}

// A deployment: shard servers plus the loaded content, addressable by key.
struct Deployment {
  ShardTopology topology = SmallTopology();
  Bytes keyword_seed = Bytes(16, 0x77);
  std::vector<std::unique_ptr<ShardDataServer>> shards;
  pir::KeywordMapper mapper{Bytes(16, 0x77), 12};

  Deployment() {
    for (std::size_t s = 0; s < topology.shard_count(); ++s) {
      shards.push_back(std::make_unique<ShardDataServer>(topology, s));
    }
  }

  Status Publish(std::string_view key, ByteSpan payload) {
    const std::uint64_t index = mapper.IndexOf(key);
    LW_ASSIGN_OR_RETURN(
        const Bytes record,
        pir::PackRecord(mapper.Fingerprint(key), payload,
                        topology.record_size));
    const std::size_t shard =
        static_cast<std::size_t>(index & (topology.shard_count() - 1));
    return shards[shard]->Load(index, record);
  }

  // Wires a fresh fan-out: one in-memory link per shard, each served by a
  // detached shard thread.
  ShardFanout MakeFanout() {
    std::vector<std::unique_ptr<net::Transport>> links;
    for (auto& shard : shards) {
      net::TransportPair pair = net::CreateInMemoryPair();
      shard->ServeConnectionDetached(std::move(pair.b));
      links.push_back(std::move(pair.a));
    }
    return ShardFanout(topology, std::move(links));
  }
};

TEST(ShardDataServer, LoadRejectsForeignIndices) {
  const ShardTopology topology = SmallTopology();
  ShardDataServer shard(topology, /*shard_index=*/1);
  const Bytes record(topology.record_size, 1);
  // Index 5 ≡ 1 (mod 4): ours. Index 6 ≡ 2: foreign.
  EXPECT_TRUE(shard.Load(5, record).ok());
  EXPECT_FALSE(shard.Load(6, record).ok());
  EXPECT_EQ(shard.record_count(), 1u);
}

TEST(ShardDataServer, AnswerRejectsWrongDepth) {
  const ShardTopology topology = SmallTopology();
  ShardDataServer shard(topology, 0);
  const dpf::KeyPair pair = dpf::Generate(1, 12);
  // A sub-key with the wrong remaining depth.
  const auto bad = dpf::SplitForShards(pair.key0, 1);  // depth 11, not 10
  EXPECT_FALSE(shard.Answer(bad[0]).ok());
}

TEST(ShardFanout, MatchesUnshardedAnswer) {
  Deployment deployment;
  Rng rng(4);
  // Publish some records and mirror them into a reference single DB.
  pir::BlobDatabase reference(deployment.topology.domain_bits,
                              deployment.topology.record_size);
  for (int i = 0; i < 40; ++i) {
    const std::string key = "page-" + std::to_string(i);
    const Bytes payload = ToBytes("content-" + std::to_string(i));
    if (!deployment.Publish(key, payload).ok()) continue;
    const std::uint64_t index = deployment.mapper.IndexOf(key);
    const Bytes record =
        pir::PackRecord(deployment.mapper.Fingerprint(key), payload,
                        deployment.topology.record_size)
            .value();
    ASSERT_TRUE(reference.Upsert(index, record).ok());
  }

  ShardFanout fanout = deployment.MakeFanout();
  for (int t = 0; t < 10; ++t) {
    const std::uint64_t target = rng.UniformInt(1 << 12);
    const pir::QueryKeys q = pir::MakeIndexQuery(target, 12);
    auto sharded = fanout.Answer(q.key0);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    Bytes direct(deployment.topology.record_size);
    reference.Answer(dpf::EvalFull(q.key0), direct);
    EXPECT_EQ(*sharded, direct) << "target " << target;
  }
}

TEST(ShardFanout, RejectsWrongDomain) {
  Deployment deployment;
  ShardFanout fanout = deployment.MakeFanout();
  const pir::QueryKeys q = pir::MakeIndexQuery(0, 10);  // wrong domain
  EXPECT_FALSE(fanout.Answer(q.key0).ok());
}

TEST(FrontEnd, FullClientSessionAgainstShardedDeployment) {
  // Two logical servers (role 0/1), each a front-end over ITS OWN set of
  // shard data servers — the complete §5.2 topology, client-side unchanged.
  Deployment replica0, replica1;
  std::vector<std::string> published;
  for (int i = 0; i < 30; ++i) {
    const std::string key = "article/" + std::to_string(i);
    const Bytes payload = ToBytes("text " + std::to_string(i));
    const Status s0 = replica0.Publish(key, payload);
    const Status s1 = replica1.Publish(key, payload);
    ASSERT_EQ(s0.ok(), s1.ok());
    if (s0.ok()) published.push_back(key);
  }
  ASSERT_GT(published.size(), 25u);

  FrontEndServer frontend0(0, replica0.keyword_seed, replica0.MakeFanout());
  FrontEndServer frontend1(1, replica1.keyword_seed, replica1.MakeFanout());

  net::TransportPair c0 = net::CreateInMemoryPair();
  net::TransportPair c1 = net::CreateInMemoryPair();
  frontend0.ServeConnectionDetached(std::move(c0.b));
  frontend1.ServeConnectionDetached(std::move(c1.b));

  auto session = PirSession::Establish(
      EstablishOptions::FromTransports(
      std::move(c0.a), std::move(c1.a)));
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  EXPECT_EQ(session->domain_bits(), 12);

  for (const std::string& key : published) {
    auto value = session->PrivateGet(key);
    ASSERT_TRUE(value.ok()) << key << ": " << value.status().ToString();
    EXPECT_EQ(ToString(*value),
              "text " + key.substr(std::string("article/").size()));
  }
  auto missing = session->PrivateGet("never-published");
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  session->Close();
}

TEST(FrontEnd, RejectsEnclaveOnlyClient) {
  Deployment deployment;
  FrontEndServer frontend(0, deployment.keyword_seed,
                          deployment.MakeFanout());
  net::TransportPair pair = net::CreateInMemoryPair();
  frontend.ServeConnectionDetached(std::move(pair.b));

  ClientHello hello;
  hello.supported_modes = {Mode::kEnclave};
  ASSERT_TRUE(pair.a->Send(Encode(hello)).ok());
  auto reply = pair.a->Receive();
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(DecodeError(*reply).ok());
}

TEST(FrontEnd, ShardsOverTcp) {
  // The shard links can be real sockets too.
  Deployment deployment;
  ASSERT_TRUE(deployment.Publish("k", ToBytes("v")).ok());

  std::vector<std::unique_ptr<net::Transport>> links;
  std::vector<net::TcpListener> listeners;
  for (std::size_t s = 0; s < deployment.topology.shard_count(); ++s) {
    auto listener = net::TcpListener::Listen(0);
    ASSERT_TRUE(listener.ok());
    listeners.push_back(std::move(*listener));
  }
  std::thread acceptor([&] {
    for (std::size_t s = 0; s < listeners.size(); ++s) {
      auto conn = listeners[s].Accept();
      ASSERT_TRUE(conn.ok());
      deployment.shards[s]->ServeConnectionDetached(std::move(*conn));
    }
  });
  for (auto& listener : listeners) {
    auto conn = net::TcpConnect("127.0.0.1", listener.bound_port());
    ASSERT_TRUE(conn.ok());
    links.push_back(std::move(*conn));
  }
  acceptor.join();

  ShardFanout fanout(deployment.topology, std::move(links));
  const std::uint64_t index = deployment.mapper.IndexOf("k");
  const pir::QueryKeys q = pir::MakeIndexQuery(index, 12);
  auto a0 = fanout.Answer(q.key0);
  ASSERT_TRUE(a0.ok());
  auto a1 = fanout.Answer(q.key1);
  ASSERT_TRUE(a1.ok());
  const Bytes record = pir::CombineAnswers(*a0, *a1).value();
  auto un = pir::UnpackRecord(record);
  ASSERT_TRUE(un.ok());
  EXPECT_EQ(ToString(un->payload), "v");
}

}  // namespace
}  // namespace lw::zltp
