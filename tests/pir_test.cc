// PIR layer tests: blob database scans (single + batched), end-to-end
// two-server retrieval, record packing, keyword mapping/collisions, and the
// cuckoo index.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "pir/blob_db.h"
#include "pir/cuckoo.h"
#include "pir/keyword.h"
#include "pir/packing.h"
#include "pir/two_server.h"
#include "util/alloc.h"
#include "util/rand.h"
#include "util/thread_pool.h"

namespace lw::pir {
namespace {

Bytes RecordOf(std::uint8_t fill, std::size_t size) {
  return Bytes(size, fill);
}

// --------------------------------------------------------------- BlobDb

TEST(BlobDb, InsertGetRemove) {
  BlobDatabase db(8, 32);
  ASSERT_TRUE(db.Insert(3, RecordOf(0xaa, 32)).ok());
  ASSERT_TRUE(db.Insert(200, RecordOf(0xbb, 32)).ok());
  EXPECT_EQ(db.record_count(), 2u);
  EXPECT_TRUE(db.Contains(3));
  EXPECT_EQ(db.Get(3).value(), RecordOf(0xaa, 32));
  EXPECT_EQ(db.Get(200).value(), RecordOf(0xbb, 32));
  EXPECT_FALSE(db.Get(4).ok());
  ASSERT_TRUE(db.Remove(3).ok());
  EXPECT_FALSE(db.Contains(3));
  EXPECT_EQ(db.Get(200).value(), RecordOf(0xbb, 32));  // survivor intact
  EXPECT_FALSE(db.Remove(3).ok());
}

TEST(BlobDb, InsertRejectsDuplicateIndex) {
  BlobDatabase db(8, 16);
  ASSERT_TRUE(db.Insert(7, RecordOf(1, 16)).ok());
  const Status s = db.Insert(7, RecordOf(2, 16));
  EXPECT_EQ(s.code(), StatusCode::kCollision);
}

TEST(BlobDb, InsertRejectsBadSizes) {
  BlobDatabase db(8, 16);
  EXPECT_EQ(db.Insert(1, RecordOf(0, 15)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Insert(256, RecordOf(0, 16)).code(),
            StatusCode::kInvalidArgument);  // outside 2^8 domain
}

TEST(BlobDb, UpdateAndUpsert) {
  BlobDatabase db(8, 16);
  EXPECT_FALSE(db.Update(5, RecordOf(1, 16)).ok());
  ASSERT_TRUE(db.Upsert(5, RecordOf(1, 16)).ok());
  ASSERT_TRUE(db.Upsert(5, RecordOf(2, 16)).ok());
  EXPECT_EQ(db.Get(5).value(), RecordOf(2, 16));
  EXPECT_EQ(db.record_count(), 1u);
}

TEST(BlobDb, AnswerSelectsExactlyMarkedRows) {
  BlobDatabase db(6, 24);
  Rng rng(42);
  for (std::uint64_t i = 0; i < 64; i += 2) {
    Bytes rec(24);
    rng.Fill(rec);
    ASSERT_TRUE(db.Insert(i, rec).ok());
  }
  // Query for index 10 via a hand-built bit vector.
  dpf::BitVector bits(1, 0);
  bits[0] |= std::uint64_t{1} << 10;
  Bytes out(24);
  db.Answer(bits, out);
  EXPECT_EQ(out, db.Get(10).value());
}

TEST(BlobDb, AnswerXorsMultipleRows) {
  BlobDatabase db(6, 8);
  ASSERT_TRUE(db.Insert(1, RecordOf(0x0f, 8)).ok());
  ASSERT_TRUE(db.Insert(2, RecordOf(0xf0, 8)).ok());
  dpf::BitVector bits(1, 0b110);  // rows 1 and 2
  Bytes out(8);
  db.Answer(bits, out);
  EXPECT_EQ(out, RecordOf(0xff, 8));
}

TEST(BlobDb, EmptyBitsGiveZeroAnswer) {
  BlobDatabase db(6, 8);
  ASSERT_TRUE(db.Insert(1, RecordOf(0xaa, 8)).ok());
  dpf::BitVector bits(1, 0);
  Bytes out(8, 0xcc);
  db.Answer(bits, out);
  EXPECT_EQ(out, RecordOf(0, 8));
}

TEST(BlobDb, XorBytesAllLengths) {
  Rng rng(7);
  for (std::size_t n : {0u, 1u, 7u, 8u, 31u, 32u, 33u, 100u, 4096u}) {
    Bytes a(n), b(n);
    rng.Fill(a);
    rng.Fill(b);
    Bytes expected(n);
    for (std::size_t i = 0; i < n; ++i) expected[i] = a[i] ^ b[i];
    XorBytes(a.data(), b.data(), n);
    EXPECT_EQ(a, expected) << "n=" << n;
  }
}

TEST(BlobDb, XorBytesMisalignedOffsets) {
  // The kernel picks an aligned fast path when both pointers are 32-byte
  // aligned; every misaligned combination must produce the same bytes.
  Rng rng(11);
  AlignedBytes dst_buf(4096 + 64), src_buf(4096 + 64);
  for (const std::size_t dst_off : {0u, 1u, 8u, 31u, 32u, 33u}) {
    for (const std::size_t src_off : {0u, 1u, 8u, 31u, 32u, 33u}) {
      const std::size_t n = 1000;
      rng.Fill(MutableByteSpan(dst_buf.data(), dst_buf.size()));
      rng.Fill(MutableByteSpan(src_buf.data(), src_buf.size()));
      Bytes expected(n);
      for (std::size_t i = 0; i < n; ++i) {
        expected[i] = dst_buf[dst_off + i] ^ src_buf[src_off + i];
      }
      XorBytes(dst_buf.data() + dst_off, src_buf.data() + src_off, n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(dst_buf[dst_off + i], expected[i])
            << "dst_off=" << dst_off << " src_off=" << src_off << " i=" << i;
      }
    }
  }
}

// ----------------------------------------------------------- xor kernels

// Pins the active XOR tier for one test and restores it on exit, so tier
// equivalence tests cannot leak a pinned tier into later tests.
class ScopedXorTier {
 public:
  ScopedXorTier() : saved_(ActiveXorTier()) {}
  ~ScopedXorTier() { SetXorTier(saved_); }

 private:
  XorTier saved_;
};

TEST(XorKernel, ScalarTierIsAlwaysAvailable) {
  ScopedXorTier restore;
  EXPECT_TRUE(SetXorTier(XorTier::kScalar));
  EXPECT_EQ(ActiveXorTier(), XorTier::kScalar);
}

TEST(XorKernel, AllSupportedTiersProduceIdenticalBytes) {
  // The runtime dispatch means different hosts execute different code for
  // the same scan; every tier this host can run must agree with the scalar
  // reference on every length/alignment combination, or answers would
  // depend on the fleet's CPU mix. Unsupported tiers are skipped (that IS
  // the graceful-fallback contract on AVX2-only or non-x86 hosts).
  ScopedXorTier restore;
  Rng rng(99);
  for (const XorTier tier :
       {XorTier::kScalar, XorTier::kAvx2, XorTier::kAvx512}) {
    if (!SetXorTier(tier)) {
      EXPECT_LT(static_cast<int>(BestSupportedXorTier()),
                static_cast<int>(tier))
          << "SetXorTier refused a tier detection claims is supported";
      continue;
    }
    ASSERT_EQ(ActiveXorTier(), tier);
    for (const std::size_t n : {0u, 1u, 31u, 32u, 63u, 64u, 65u, 127u,
                                128u, 1000u, 4096u}) {
      Bytes a(n), b(n);
      rng.Fill(a);
      rng.Fill(b);
      Bytes expected(n);
      for (std::size_t i = 0; i < n; ++i) expected[i] = a[i] ^ b[i];
      XorBytes(a.data(), b.data(), n);
      EXPECT_EQ(a, expected) << XorTierName(tier) << " n=" << n;
    }
  }
}

TEST(XorKernel, XorRowMultiMatchesRepeatedXorBytes) {
  ScopedXorTier restore;
  Rng rng(7);
  for (const XorTier tier :
       {XorTier::kScalar, XorTier::kAvx2, XorTier::kAvx512}) {
    if (!SetXorTier(tier)) continue;
    for (const std::size_t n : {1u, 64u, 100u, 512u}) {
      Bytes row(n);
      rng.Fill(row);
      constexpr std::size_t kAccs = 5;
      std::vector<Bytes> dsts(kAccs, Bytes(n));
      std::vector<Bytes> expected(kAccs, Bytes(n));
      for (std::size_t k = 0; k < kAccs; ++k) {
        rng.Fill(dsts[k]);
        for (std::size_t i = 0; i < n; ++i) {
          expected[k][i] = dsts[k][i] ^ row[i];
        }
      }
      std::vector<std::uint8_t*> ptrs;
      for (auto& d : dsts) ptrs.push_back(d.data());
      XorRowMulti(row.data(), ptrs.data(), ptrs.size(), n);
      for (std::size_t k = 0; k < kAccs; ++k) {
        EXPECT_EQ(dsts[k], expected[k])
            << XorTierName(tier) << " n=" << n << " acc=" << k;
      }
    }
  }
}

TEST(XorKernel, SetTierByNameParsesKnownNamesOnly) {
  ScopedXorTier restore;
  EXPECT_TRUE(SetXorTierByName("scalar"));
  EXPECT_EQ(ActiveXorTier(), XorTier::kScalar);
  EXPECT_TRUE(SetXorTierByName("auto"));
  EXPECT_EQ(ActiveXorTier(), BestSupportedXorTier());
  EXPECT_FALSE(SetXorTierByName("sse9000"));
  EXPECT_EQ(ActiveXorTier(), BestSupportedXorTier());  // unchanged
}

// ------------------------------------------------------------ hugepages

TEST(Hugepages, SmallAllocationsSkipTheHugepagePath) {
  const std::uint64_t before = HugepageAdvisedBytes();
  HugeBytes small(4096, 0x5a);
  EXPECT_EQ(small[0], 0x5a);
  // Sub-hugepage vectors keep plain cache-line alignment and are never
  // madvised — 2 MiB-aligning a 4 KiB buffer would waste the reservation.
  EXPECT_EQ(HugepageAdvisedBytes(), before);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(small.data()) %
                kCacheLineSize,
            0u);
}

TEST(Hugepages, KillSwitchDisablesAdviseAndMemoryStaysValid) {
  SetHugepagesEnabled(false);
  const std::uint64_t before = HugepageAdvisedBytes();
  {
    HugeBytes arena(3 * kHugePageSize, 0x11);
    EXPECT_EQ(HugepageAdvisedBytes(), before);  // kill switch honored
    arena[arena.size() - 1] = 0x22;
    EXPECT_EQ(arena[0], 0x11);
    EXPECT_EQ(arena[arena.size() - 1], 0x22);
  }
  SetHugepagesEnabled(true);
}

TEST(Hugepages, LargeAllocationsAreHugepageAlignedWhenEnabled) {
  SetHugepagesEnabled(true);
  const std::uint64_t before = HugepageAdvisedBytes();
  HugeBytes arena(2 * kHugePageSize);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(arena.data()) % kHugePageSize,
            0u);
  // The madvise itself is best-effort (THP may be off on this host), so the
  // counter may or may not move — but it must never move backwards, and on
  // hosts where it moved it must cover this arena.
  const std::uint64_t advised = HugepageAdvisedBytes() - before;
  EXPECT_TRUE(advised == 0 || advised >= arena.size())
      << "advised " << advised << " of " << arena.size();
  std::fill(arena.begin(), arena.end(), 0xab);  // every page is writable
  EXPECT_EQ(arena[arena.size() - 1], 0xab);
}

TEST(Hugepages, BlobDatabaseScansCorrectlyOverHugepageArena) {
  // 2^12 rows x 512-byte stride = a 2 MiB record arena — exactly the size
  // where BlobDatabase's backing store flips onto the hugepage path. The
  // scan must not notice.
  BlobDatabase db(12, 512);
  Rng rng(5);
  Bytes r1(512), r2(512);
  rng.Fill(r1);
  rng.Fill(r2);
  ASSERT_TRUE(db.Insert(100, r1).ok());
  ASSERT_TRUE(db.Insert(3000, r2).ok());
  dpf::BitVector bits((1 << 12) / 64, 0);
  bits[100 / 64] |= std::uint64_t{1} << (100 % 64);
  bits[3000 / 64] |= std::uint64_t{1} << (3000 % 64);
  Bytes out(512);
  db.Answer(bits, out);
  Bytes expected(512);
  for (std::size_t i = 0; i < 512; ++i) expected[i] = r1[i] ^ r2[i];
  EXPECT_EQ(out, expected);
}

TEST(BlobDb, RowsAreCacheLineAligned) {
  // Record storage is padded per row to 64 bytes so each scanned record
  // starts on its own cache line (and takes XorBytes' aligned path).
  BlobDatabase db(8, 100);  // 100 -> stride 128
  EXPECT_EQ(db.row_stride(), 128u);
  EXPECT_EQ(db.row_stride() % kCacheLineSize, 0u);
  Rng rng(5);
  for (std::uint64_t i = 0; i < 9; ++i) {
    Bytes rec(100);
    rng.Fill(rec);
    ASSERT_TRUE(db.Insert(i * 3, rec).ok());
  }
  for (std::size_t row = 0; row < db.record_count(); ++row) {
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(db.row_data(row)) %
                  kCacheLineSize,
              0u)
        << "row " << row;
  }
  // An exact multiple of the line size gets no padding.
  BlobDatabase exact(8, 128);
  EXPECT_EQ(exact.row_stride(), 128u);
}

// --------------------------------------------- parallel / fused scans
//
// The sharded scan (private per-worker accumulators + tree reduction) and
// the fused batch scan must match the serial single-query reference
// bit-for-bit, across pool sizes and domain sizes.

class BlobDbParallelTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BlobDbParallelTest, ParallelAnswerMatchesSerial) {
  const auto [threads, d] = GetParam();
  ThreadPool pool(threads);
  const std::uint64_t domain = std::uint64_t{1} << d;
  const std::size_t record_size = 96;  // not a multiple of 64: real padding
  BlobDatabase db(d, record_size);
  Rng rng(static_cast<std::uint64_t>(threads * 7 + d));
  const std::uint64_t records = std::min<std::uint64_t>(domain, 300);
  for (std::uint64_t i = 0; i < records; ++i) {
    Bytes rec(record_size);
    rng.Fill(rec);
    ASSERT_TRUE(db.Upsert(rng.UniformInt(domain), rec).ok());
  }

  // Random selection vectors stress every row-subset shape, not just
  // one-hot DPF outputs.
  const std::size_t words = (domain + 63) / 64;
  for (int round = 0; round < 4; ++round) {
    dpf::BitVector bits(words);
    for (std::uint64_t& w : bits) w = rng.Next();
    Bytes serial(record_size), parallel(record_size, 0xee);
    db.Answer(bits, serial);
    db.Answer(bits, parallel, &pool);
    EXPECT_EQ(parallel, serial) << "threads=" << threads << " d=" << d;
  }
}

TEST_P(BlobDbParallelTest, FusedBatchMatchesSerialAnswers) {
  const auto [threads, d] = GetParam();
  ThreadPool pool(threads);
  const std::uint64_t domain = std::uint64_t{1} << d;
  const std::size_t record_size = 48;
  BlobDatabase db(d, record_size);
  Rng rng(static_cast<std::uint64_t>(threads * 131 + d));
  const std::uint64_t records = std::min<std::uint64_t>(domain, 200);
  for (std::uint64_t i = 0; i < records; ++i) {
    Bytes rec(record_size);
    rng.Fill(rec);
    ASSERT_TRUE(db.Upsert(rng.UniformInt(domain), rec).ok());
  }

  const std::size_t words = (domain + 63) / 64;
  std::vector<dpf::BitVector> queries;
  std::vector<Bytes> expected;
  for (int qi = 0; qi < 5; ++qi) {
    dpf::BitVector bits(words);
    for (std::uint64_t& w : bits) w = rng.Next();
    queries.push_back(bits);
    Bytes a(record_size);
    db.Answer(bits, a);
    expected.push_back(a);
  }

  std::vector<Bytes> serial_batch, parallel_batch;
  db.AnswerBatch(queries, serial_batch);
  db.AnswerBatch(queries, parallel_batch, &pool);
  ASSERT_EQ(serial_batch.size(), expected.size());
  ASSERT_EQ(parallel_batch.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(serial_batch[i], expected[i]) << "query " << i;
    EXPECT_EQ(parallel_batch[i], expected[i])
        << "query " << i << " threads=" << threads << " d=" << d;
  }
}

INSTANTIATE_TEST_SUITE_P(PoolsAndDomains, BlobDbParallelTest,
                         ::testing::Combine(::testing::Values(1, 2, 3, 8),
                                            ::testing::Values(1, 5, 12, 18)));

// -------------------------------------------- end-to-end two-server PIR

class TwoServerPirTest : public ::testing::TestWithParam<int> {};

TEST_P(TwoServerPirTest, RetrievesEveryRecordPrivately) {
  const int d = GetParam();
  const std::size_t record_size = 64;
  // Two replicas, as in the two-server model.
  BlobDatabase server0(d, record_size);
  BlobDatabase server1(d, record_size);
  Rng rng(static_cast<std::uint64_t>(d));
  const std::uint64_t domain = std::uint64_t{1} << d;

  std::vector<std::uint64_t> indices;
  for (int i = 0; i < 20; ++i) {
    const std::uint64_t idx = rng.UniformInt(domain);
    if (server0.Contains(idx)) continue;
    Bytes rec(record_size);
    rng.Fill(rec);
    ASSERT_TRUE(server0.Insert(idx, rec).ok());
    ASSERT_TRUE(server1.Insert(idx, rec).ok());
    indices.push_back(idx);
  }

  for (const std::uint64_t target : indices) {
    const QueryKeys q = MakeIndexQuery(target, d);
    Bytes a0(record_size), a1(record_size);
    server0.Answer(dpf::EvalFull(q.key0), a0);
    server1.Answer(dpf::EvalFull(q.key1), a1);
    auto rec = CombineAnswers(a0, a1);
    ASSERT_TRUE(rec.ok());
    EXPECT_EQ(*rec, server0.Get(target).value());
  }
}

INSTANTIATE_TEST_SUITE_P(Domains, TwoServerPirTest,
                         ::testing::Values(6, 8, 10, 12));

TEST(TwoServerPir, AbsentIndexYieldsZeros) {
  const int d = 8;
  BlobDatabase s0(d, 32), s1(d, 32);
  ASSERT_TRUE(s0.Insert(1, RecordOf(0xaa, 32)).ok());
  ASSERT_TRUE(s1.Insert(1, RecordOf(0xaa, 32)).ok());
  const QueryKeys q = MakeIndexQuery(99, d);  // unoccupied index
  Bytes a0(32), a1(32);
  s0.Answer(dpf::EvalFull(q.key0), a0);
  s1.Answer(dpf::EvalFull(q.key1), a1);
  EXPECT_EQ(CombineAnswers(a0, a1).value(), RecordOf(0, 32));
}

TEST(TwoServerPir, BatchAnswerMatchesIndividualAnswers) {
  const int d = 9;
  const std::size_t record_size = 48;
  BlobDatabase db(d, record_size);
  Rng rng(99);
  for (std::uint64_t i = 0; i < 100; ++i) {
    Bytes rec(record_size);
    rng.Fill(rec);
    ASSERT_TRUE(db.Insert(i * 5, rec).ok());
  }

  std::vector<dpf::BitVector> queries;
  std::vector<Bytes> individual;
  for (std::uint64_t t : {std::uint64_t{0}, std::uint64_t{25},
                          std::uint64_t{495}, std::uint64_t{511}}) {
    const QueryKeys q = MakeIndexQuery(t, d);
    queries.push_back(dpf::EvalFull(q.key0));
    Bytes a(record_size);
    db.Answer(queries.back(), a);
    individual.push_back(a);
  }

  std::vector<Bytes> batched;
  db.AnswerBatch(queries, batched);
  ASSERT_EQ(batched.size(), individual.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    EXPECT_EQ(batched[i], individual[i]) << "query " << i;
  }
}

TEST(TwoServerPir, CombineRejectsSizeMismatch) {
  EXPECT_FALSE(CombineAnswers(Bytes(8), Bytes(9)).ok());
}

TEST(TwoServerPir, CommunicationAccounting) {
  // Upload is the serialized DPF key; verify the helper agrees with reality.
  const QueryKeys q = MakeIndexQuery(5, 22);
  EXPECT_EQ(q.key0.Serialize().size(), QueryUploadBytes(22));
  // Paper §5.1: with d=22 and 4 KiB buckets, total communication per request
  // is on the order of 10 KiB (they report 13.6 KiB with their key format).
  const std::size_t total = TotalCommunicationBytes(22, 4096);
  EXPECT_GT(total, 8u * 1024);
  EXPECT_LT(total, 16u * 1024);
}

// ----------------------------------------------------------- packing

TEST(Packing, RoundTrip) {
  const Bytes payload = ToBytes("{\"title\":\"hello\"}");
  auto rec = PackRecord(0x1234567890abcdefULL, payload, 64);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size(), 64u);
  auto un = UnpackRecord(*rec);
  ASSERT_TRUE(un.ok());
  EXPECT_EQ(un->fingerprint, 0x1234567890abcdefULL);
  EXPECT_EQ(un->payload, payload);
}

TEST(Packing, EmptyPayload) {
  auto rec = PackRecord(7, {}, 16);
  ASSERT_TRUE(rec.ok());
  auto un = UnpackRecord(*rec);
  ASSERT_TRUE(un.ok());
  EXPECT_EQ(un->fingerprint, 7u);
  EXPECT_TRUE(un->payload.empty());
}

TEST(Packing, MaxPayloadExactFit) {
  const std::size_t record_size = 64;
  const Bytes payload(MaxPayloadSize(record_size), 0x5a);
  auto rec = PackRecord(1, payload, record_size);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(UnpackRecord(*rec)->payload, payload);
}

TEST(Packing, RejectsOversizedPayload) {
  const Bytes payload(53, 1);  // 53 + 12 > 64
  EXPECT_FALSE(PackRecord(1, payload, 64).ok());
}

TEST(Packing, RejectsTinyRecordSize) {
  EXPECT_FALSE(PackRecord(1, {}, 4).ok());
}

TEST(Packing, AllZeroRecordUnpacksToNothing) {
  // An absent key reconstructs to all zeros; unpack must treat that as
  // fingerprint 0 / empty payload rather than failing.
  auto un = UnpackRecord(Bytes(64, 0));
  ASSERT_TRUE(un.ok());
  EXPECT_EQ(un->fingerprint, 0u);
  EXPECT_TRUE(un->payload.empty());
}

TEST(Packing, RejectsCorruptLength) {
  Bytes rec = PackRecord(1, ToBytes("x"), 32).value();
  rec[8] = 0xff;  // length now larger than the record
  rec[9] = 0xff;
  EXPECT_FALSE(UnpackRecord(rec).ok());
}

// ----------------------------------------------------------- keyword

TEST(Keyword, DeterministicMapping) {
  const Bytes seed = SecureRandom(16);
  KeywordMapper m1(seed, 20), m2(seed, 20);
  EXPECT_EQ(m1.IndexOf("nytimes.com/world"), m2.IndexOf("nytimes.com/world"));
  EXPECT_EQ(m1.Fingerprint("nytimes.com/world"),
            m2.Fingerprint("nytimes.com/world"));
}

TEST(Keyword, IndexWithinDomain) {
  const Bytes seed = SecureRandom(16);
  KeywordMapper m(seed, 10);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LT(m.IndexOf("key-" + std::to_string(i)), 1u << 10);
  }
}

TEST(Keyword, FingerprintIndependentOfIndexHash) {
  // Two keys that collide on index should still have distinct fingerprints
  // (with overwhelming probability), enabling client-side detection.
  const Bytes seed = SecureRandom(16);
  KeywordMapper m(seed, 4);  // tiny domain forces collisions
  std::uint64_t idx0 = m.IndexOf("key-0");
  for (int i = 1; i < 100; ++i) {
    const std::string k = "key-" + std::to_string(i);
    if (m.IndexOf(k) == idx0) {
      EXPECT_NE(m.Fingerprint(k), m.Fingerprint("key-0"));
      return;
    }
  }
  FAIL() << "expected at least one collision in a 16-slot domain";
}

TEST(KeywordRegistry, DetectsCollisions) {
  const Bytes seed = SecureRandom(16);
  KeywordRegistry reg(seed, 4);
  int collisions = 0;
  for (int i = 0; i < 64; ++i) {
    auto r = reg.Register("page-" + std::to_string(i));
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kCollision);
      ++collisions;
    }
  }
  EXPECT_GT(collisions, 0);
  EXPECT_LE(reg.size(), 16u);
}

TEST(KeywordRegistry, RegisterIsIdempotent) {
  const Bytes seed = SecureRandom(16);
  KeywordRegistry reg(seed, 16);
  const std::uint64_t idx = reg.Register("example.com/a").value();
  EXPECT_EQ(reg.Register("example.com/a").value(), idx);
  EXPECT_EQ(reg.size(), 1u);
}

TEST(KeywordRegistry, UnregisterFreesIndex) {
  const Bytes seed = SecureRandom(16);
  KeywordRegistry reg(seed, 16);
  ASSERT_TRUE(reg.Register("a").ok());
  EXPECT_TRUE(reg.IsRegistered("a"));
  ASSERT_TRUE(reg.Unregister("a").ok());
  EXPECT_FALSE(reg.IsRegistered("a"));
  EXPECT_FALSE(reg.Unregister("a").ok());
  EXPECT_TRUE(reg.Register("a").ok());
}

TEST(KeywordRegistry, KeyAt) {
  const Bytes seed = SecureRandom(16);
  KeywordRegistry reg(seed, 16);
  const std::uint64_t idx = reg.Register("hello").value();
  EXPECT_EQ(reg.KeyAt(idx).value(), "hello");
  EXPECT_FALSE(reg.KeyAt(idx + 1 < (1u << 16) ? idx + 1 : idx - 1).ok());
}

// ------------------------------------------------------------- cuckoo

TEST(Cuckoo, InsertsWellBeyondDirectHashingCapacity) {
  // 2-choice cuckoo hashing succeeds w.h.p. below the 50% load threshold;
  // direct hashing would collide long before 35% (birthday bound).
  // Deterministic seed keeps the test reproducible.
  const Bytes seed(16, 0x42);
  CuckooIndex cuckoo(seed, 10);
  for (int i = 0; i < 360; ++i) {
    auto r = cuckoo.Insert("key-" + std::to_string(i));
    ASSERT_TRUE(r.ok()) << "insert " << i << ": " << r.status().ToString();
  }
  EXPECT_EQ(cuckoo.size(), 360u);

  // Direct hashing with the same keys/domain hits a collision well before
  // that (this is the E9 ablation claim in miniature).
  KeywordRegistry direct(seed, 10);
  bool collided = false;
  for (int i = 0; i < 360 && !collided; ++i) {
    collided = !direct.Register("key-" + std::to_string(i)).ok();
  }
  EXPECT_TRUE(collided);
}

TEST(Cuckoo, FindReturnsACandidateSlot) {
  const Bytes seed = SecureRandom(16);
  CuckooIndex cuckoo(seed, 10);
  for (int i = 0; i < 300; ++i) {
    const std::string k = "key-" + std::to_string(i);
    ASSERT_TRUE(cuckoo.Insert(k).ok());
  }
  for (int i = 0; i < 300; ++i) {
    const std::string k = "key-" + std::to_string(i);
    const std::uint64_t slot = cuckoo.Find(k).value();
    const auto [h1, h2] = cuckoo.Candidates(k);
    EXPECT_TRUE(slot == h1 || slot == h2) << k;
    EXPECT_EQ(cuckoo.KeyAt(slot).value(), k);
  }
}

TEST(Cuckoo, RejectsDuplicateInsert) {
  const Bytes seed = SecureRandom(16);
  CuckooIndex cuckoo(seed, 8);
  ASSERT_TRUE(cuckoo.Insert("a").ok());
  EXPECT_EQ(cuckoo.Insert("a").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(Cuckoo, RemoveThenReinsert) {
  const Bytes seed = SecureRandom(16);
  CuckooIndex cuckoo(seed, 8);
  ASSERT_TRUE(cuckoo.Insert("a").ok());
  ASSERT_TRUE(cuckoo.Remove("a").ok());
  EXPECT_FALSE(cuckoo.Find("a").ok());
  EXPECT_FALSE(cuckoo.Remove("a").ok());
  EXPECT_TRUE(cuckoo.Insert("a").ok());
}

TEST(Cuckoo, MovesKeepIndexConsistent) {
  const Bytes seed = SecureRandom(16);
  CuckooIndex cuckoo(seed, 6);  // small table to force evictions
  std::set<std::string> inserted;
  for (int i = 0; i < 40; ++i) {
    const std::string k = "k" + std::to_string(i);
    auto moves = cuckoo.Insert(k);
    if (!moves.ok()) break;  // table may genuinely fill up
    inserted.insert(k);
    for (const auto& mv : *moves) {
      // Every reported move must land the key where Find() now says it is.
      EXPECT_EQ(cuckoo.Find(mv.key).value(), mv.to);
    }
  }
  // All successfully inserted keys remain findable at consistent slots.
  for (const auto& k : inserted) {
    const std::uint64_t slot = cuckoo.Find(k).value();
    EXPECT_EQ(cuckoo.KeyAt(slot).value(), k);
  }
}

TEST(Cuckoo, FailedInsertLeavesIndexUnchanged) {
  const Bytes seed = SecureRandom(16);
  CuckooIndex cuckoo(seed, 3, /*max_kicks=*/4);  // 8 slots, short chains
  std::vector<std::string> ok_keys;
  std::string failed;
  for (int i = 0; i < 64 && failed.empty(); ++i) {
    const std::string k = "x" + std::to_string(i);
    if (cuckoo.Insert(k).ok()) {
      ok_keys.push_back(k);
    } else {
      failed = k;
    }
  }
  ASSERT_FALSE(failed.empty()) << "expected an insert failure on 8 slots";
  EXPECT_FALSE(cuckoo.Find(failed).ok());
  for (const auto& k : ok_keys) {
    EXPECT_TRUE(cuckoo.Find(k).ok()) << k;
  }
}

}  // namespace
}  // namespace lw::pir
