// Unit tests for the util substrate: bytes, hex, Result/Status, Reader/Writer,
// and the deterministic RNG.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>

#include "util/bytes.h"
#include "util/check.h"
#include "util/hex.h"
#include "util/io.h"
#include "util/log.h"
#include "util/rand.h"
#include "util/status.h"

namespace lw {
namespace {

TEST(Bytes, RoundTripString) {
  const Bytes b = ToBytes("hello");
  EXPECT_EQ(ToString(b), "hello");
  EXPECT_EQ(b.size(), 5u);
}

TEST(Bytes, XorInto) {
  Bytes a = {0x0f, 0xf0, 0xaa};
  const Bytes b = {0xff, 0xff, 0xaa};
  XorInto(a, b);
  EXPECT_EQ(a, (Bytes{0xf0, 0x0f, 0x00}));
}

TEST(Bytes, LittleEndianRoundTrip) {
  std::uint8_t buf[8];
  StoreLE32(buf, 0xdeadbeef);
  EXPECT_EQ(LoadLE32(buf), 0xdeadbeefu);
  StoreLE64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(LoadLE64(buf), 0x0123456789abcdefULL);
}

TEST(Bytes, BigEndian) {
  std::uint8_t buf[4];
  StoreBE32(buf, 0x01020304);
  EXPECT_EQ(buf[0], 0x01);
  EXPECT_EQ(buf[3], 0x04);
  EXPECT_EQ(LoadBE32(buf), 0x01020304u);
}

TEST(Hex, EncodeDecode) {
  const Bytes b = {0x00, 0x01, 0xab, 0xff};
  EXPECT_EQ(HexEncode(b), "0001abff");
  auto decoded = HexDecode("0001abff");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, b);
}

TEST(Hex, DecodeUppercase) {
  auto decoded = HexDecode("ABFF");
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, (Bytes{0xab, 0xff}));
}

TEST(Hex, DecodeRejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(Hex, DecodeRejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(Status, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  const Status s = NotFoundError("no such key");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such key");
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(Result, HoldsStatus) {
  Result<int> r = InvalidArgumentError("bad");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

TEST(Result, ValueOnErrorThrows) {
  Result<int> r = InternalError("boom");
  EXPECT_THROW(r.value(), InvariantViolation);
}

Result<int> Halve(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  LW_ASSIGN_OR_RETURN(const int h, Halve(x));
  return Halve(h);
}

TEST(Result, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2=3 is odd
}

TEST(Check, ThrowsOnViolation) {
  EXPECT_THROW(LW_CHECK(1 == 2), InvariantViolation);
  EXPECT_NO_THROW(LW_CHECK(1 == 1));
}

TEST(Io, WriterReaderRoundTrip) {
  Writer w;
  w.U8(7);
  w.U16(0xbeef);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.String("lightweb");
  w.LengthPrefixed(Bytes{1, 2, 3});

  Reader r(w.bytes());
  EXPECT_EQ(r.U8().value(), 7);
  EXPECT_EQ(r.U16().value(), 0xbeef);
  EXPECT_EQ(r.U32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.U64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.String().value(), "lightweb");
  EXPECT_EQ(r.LengthPrefixed().value(), (Bytes{1, 2, 3}));
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(Io, ReaderRejectsTruncation) {
  Writer w;
  w.U32(5);
  Reader r(w.bytes());
  EXPECT_FALSE(r.U64().ok());
}

TEST(Io, ReaderRejectsBadLengthPrefix) {
  Writer w;
  w.U32(1000);  // claims 1000 bytes, none present
  Reader r(w.bytes());
  auto res = r.LengthPrefixed();
  EXPECT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kProtocolError);
}

TEST(Io, ExpectEndFailsWithTrailingBytes) {
  Writer w;
  w.U8(1);
  w.U8(2);
  Reader r(w.bytes());
  ASSERT_TRUE(r.U8().ok());
  EXPECT_FALSE(r.ExpectEnd().ok());
}

TEST(Io, WriterRejectsFieldLongerThanU32Prefix) {
  // Pre-fix, a >4GiB field had its length silently truncated to u32 and the
  // peer mis-framed everything after it. The span below fabricates a huge
  // size; the guard must throw before any element is dereferenced.
  if constexpr (sizeof(std::size_t) > 4) {
    static const std::uint8_t byte = 0;
    const std::size_t huge = std::size_t{1} << 32;
    const ByteSpan oversized(&byte, huge);
    Writer w;
    EXPECT_THROW(w.LengthPrefixed(oversized), InvariantViolation);
    const std::string_view oversized_str(
        reinterpret_cast<const char*>(&byte), huge);
    EXPECT_THROW(w.String(oversized_str), InvariantViolation);
    EXPECT_EQ(w.size(), 0u) << "failed writes must not emit partial bytes";
  }
}

TEST(Io, WriterAcceptsMaxU32Boundary) {
  // The boundary itself (exactly 2^32-1 would allocate 4 GiB, so spot-check
  // a normal large-ish field instead) stays accepted.
  Writer w;
  const Bytes b(1 << 16, 0x5a);
  w.LengthPrefixed(b);
  Reader r(w.bytes());
  const auto back = r.LengthPrefixed();
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, b);
  EXPECT_TRUE(r.ExpectEnd().ok());
}

TEST(Rand, SecureRandomProducesDistinctBuffers) {
  const Bytes a = SecureRandom(32);
  const Bytes b = SecureRandom(32);
  EXPECT_EQ(a.size(), 32u);
  EXPECT_NE(a, b);  // astronomically unlikely to collide
}

TEST(Rand, DeterministicRngReproducible) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rand, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 4);
}

TEST(Rand, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformInt(10), 10u);
  }
}

TEST(Rand, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rand, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.UniformDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rand, FillProducesAllLengths) {
  Rng rng(9);
  for (std::size_t n : {0u, 1u, 7u, 8u, 9u, 31u}) {
    Bytes buf(n, 0xcc);
    rng.Fill(buf);
    EXPECT_EQ(buf.size(), n);
  }
}

// Streams an observable side effect so the test can tell whether LW_LOG
// evaluated its operands.
int CountedOperand(int* calls) {
  ++*calls;
  return *calls;
}

TEST(Log, DisabledLineNeverEvaluatesOperands) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int calls = 0;
  LW_LOG(Debug) << "dead line " << CountedOperand(&calls);
  LW_LOG(Info) << "also dead " << CountedOperand(&calls);
  EXPECT_EQ(calls, 0) << "LW_LOG must short-circuit before streaming";
  LW_LOG(Error) << "live line " << CountedOperand(&calls);
  EXPECT_EQ(calls, 1) << "enabled lines still evaluate operands";
  SetLogLevel(saved);
}

TEST(Log, UsableInUnbracedIfElse) {
  const LogLevel saved = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  int calls = 0;
  // LW_LOG is a single expression; this must parse with the else binding
  // to the outer if.
  if (calls == 0)
    LW_LOG(Debug) << "branch " << CountedOperand(&calls);
  else
    ++calls;
  EXPECT_EQ(calls, 0);
  SetLogLevel(saved);
}

}  // namespace
}  // namespace lw
