// Universe snapshot tests: full round trip including access-controlled
// (ciphertext) blobs, ownership, and rejection of mismatched targets.
#include <gtest/gtest.h>

#include "lightweb/browser.h"
#include "lightweb/channel.h"
#include "lightweb/publisher.h"
#include "lightweb/snapshot.h"
#include "lightweb/universe.h"

namespace lw::lightweb {
namespace {

UniverseConfig SnapConfig() {
  UniverseConfig c;
  c.name = "snap";
  c.code_domain_bits = 10;
  c.code_blob_size = 4096;
  c.data_domain_bits = 14;
  c.data_blob_size = 512;
  c.fetches_per_page = 2;
  c.master_seed = Bytes(16, 0x3c);
  return c;
}

Publisher FillUniverse(Universe& universe) {
  Publisher pub("snap-pub");
  SiteBuilder site("snap.example");
  site.SetSiteName("Snapshot Site")
      .AddRoute("/p/:id", {"snap.example/data/{id}.json"},
                "{{data0.body}}");
  EXPECT_TRUE(pub.PublishSite(universe, site).ok());
  json::Object pub_blob;
  pub_blob["body"] = "public text";
  EXPECT_TRUE(pub.PublishData(universe, "snap.example/data/free.json",
                              json::Value(pub_blob))
                  .ok());
  json::Object prem;
  prem["body"] = "premium text";
  EXPECT_TRUE(pub.PublishProtectedData(universe,
                                       "snap.example/data/prem.json",
                                       json::Value(prem))
                  .ok());
  return pub;
}

TEST(Snapshot, RoundTripRestoresEverything) {
  Universe original(SnapConfig());
  Publisher pub = FillUniverse(original);

  auto snapshot = SaveUniverseSnapshot(original);
  ASSERT_TRUE(snapshot.ok()) << snapshot.status().ToString();

  // Restore into a fresh universe (different master seed: restore is
  // content-level, not index-level).
  UniverseConfig fresh_config = SnapConfig();
  fresh_config.master_seed = Bytes(16, 0x99);
  Universe restored(fresh_config);
  ASSERT_TRUE(LoadUniverseSnapshot(restored, *snapshot).ok());

  EXPECT_EQ(restored.total_pages(), original.total_pages());
  EXPECT_EQ(restored.total_domains(), original.total_domains());
  EXPECT_EQ(restored.OwnerOf("snap.example").value(), "snap-pub");

  // Public page renders from the restored universe.
  BrowserConfig bconfig;
  bconfig.fetches_per_page = restored.fetches_per_page();
  Browser browser(
      std::make_unique<InProcessPirChannel>(restored.code_store()),
      std::make_unique<InProcessPirChannel>(restored.data_store()),
      bconfig);
  auto page = browser.Visit("snap.example/p/free");
  ASSERT_TRUE(page.ok());
  EXPECT_NE(page->text.find("public text"), std::string::npos);

  // The protected blob survived as ciphertext: a keyed client decrypts it.
  Browser subscriber(
      std::make_unique<InProcessPirChannel>(restored.code_store()),
      std::make_unique<InProcessPirChannel>(restored.data_store()),
      bconfig);
  subscriber.keyring("snap.example")
      .AddEpochKey(pub.keyring().current_epoch(),
                   pub.IssueClientKey(pub.keyring().current_epoch()));
  page = subscriber.Visit("snap.example/p/prem");
  ASSERT_TRUE(page.ok());
  EXPECT_NE(page->text.find("premium text"), std::string::npos);
  // ...and the unkeyed one cannot.
  page = browser.Visit("snap.example/p/prem");
  ASSERT_TRUE(page.ok());
  EXPECT_EQ(page->text.find("premium text"), std::string::npos);
}

TEST(Snapshot, LoadRejectsMismatchedConfig) {
  Universe original(SnapConfig());
  FillUniverse(original);
  const std::string snapshot = SaveUniverseSnapshot(original).value();

  UniverseConfig other = SnapConfig();
  other.data_blob_size = 1024;  // different fixed blob size
  Universe target(other);
  EXPECT_EQ(LoadUniverseSnapshot(target, snapshot).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Snapshot, LoadRejectsMismatchedDomainBits) {
  // Pre-fix only the blob sizes were compared, so a snapshot taken at a
  // different domain size loaded into a universe whose PIR servers then
  // scanned the wrong table shape.
  Universe original(SnapConfig());
  FillUniverse(original);
  const std::string snapshot = SaveUniverseSnapshot(original).value();

  UniverseConfig data_bits = SnapConfig();
  data_bits.data_domain_bits = 15;
  Universe target1(data_bits);
  EXPECT_EQ(LoadUniverseSnapshot(target1, snapshot).code(),
            StatusCode::kFailedPrecondition);

  UniverseConfig code_bits = SnapConfig();
  code_bits.code_domain_bits = 11;
  Universe target2(code_bits);
  EXPECT_EQ(LoadUniverseSnapshot(target2, snapshot).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Snapshot, LoadRejectsNonEmptyTarget) {
  Universe original(SnapConfig());
  FillUniverse(original);
  const std::string snapshot = SaveUniverseSnapshot(original).value();

  Universe target(SnapConfig());
  ASSERT_TRUE(target.ClaimDomain("occupied.example", "someone").ok());
  EXPECT_EQ(LoadUniverseSnapshot(target, snapshot).code(),
            StatusCode::kFailedPrecondition);
}

TEST(Snapshot, LoadRejectsGarbage) {
  Universe target(SnapConfig());
  EXPECT_FALSE(LoadUniverseSnapshot(target, "not json").ok());
  EXPECT_FALSE(LoadUniverseSnapshot(target, "{}").ok());
  EXPECT_FALSE(
      LoadUniverseSnapshot(target, R"({"format":"something-else"})").ok());
}

TEST(Snapshot, FileRoundTrip) {
  Universe original(SnapConfig());
  FillUniverse(original);
  const std::string path = "/tmp/lw_snapshot_test.json";
  ASSERT_TRUE(SaveUniverseSnapshotToFile(original, path).ok());

  UniverseConfig fresh = SnapConfig();
  fresh.master_seed.clear();  // random
  Universe restored(fresh);
  ASSERT_TRUE(LoadUniverseSnapshotFromFile(restored, path).ok());
  EXPECT_EQ(restored.total_pages(), original.total_pages());
  EXPECT_FALSE(
      LoadUniverseSnapshotFromFile(restored, "/no/such/file").ok());
}

}  // namespace
}  // namespace lw::lightweb
