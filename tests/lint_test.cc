// Tests for lwlint (tools/lint): one true positive per rule from fixture
// files under tools/lint/testdata/, plus the allow/allowfile escape hatches,
// path gating of the crypto-only rules, and the comment/string stripper.

#include <algorithm>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "lint.h"

namespace lw::lint {
namespace {

#ifndef LWLINT_TESTDATA_DIR
#error "LWLINT_TESTDATA_DIR must point at tools/lint/testdata"
#endif

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(LWLINT_TESTDATA_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing fixture " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Lints a fixture under an assumed repo path (the path decides which rule
// subsets apply; fixtures live outside src/ so the real tree stays clean).
std::vector<Finding> LintFixture(const std::string& name,
                                 const std::string& as_path) {
  return LintSource(as_path, ReadFixture(name));
}

bool HasFinding(const std::vector<Finding>& findings, const std::string& rule,
                int line) {
  return std::any_of(findings.begin(), findings.end(), [&](const Finding& f) {
    return f.rule == rule && f.line == line;
  });
}

std::vector<Finding> FindingsFor(const std::vector<Finding>& findings,
                                 const std::string& rule) {
  std::vector<Finding> out;
  for (const Finding& f : findings) {
    if (f.rule == rule) out.push_back(f);
  }
  return out;
}

TEST(Lwlint, CtCompareMemcmpAndEqualityOnSecrets) {
  const auto findings = LintFixture("ct_compare.cc", "src/crypto/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "ct-compare", 5)) << "memcmp on key";
  EXPECT_TRUE(HasFinding(findings, "ct-compare", 9)) << "== on tag";
  EXPECT_EQ(FindingsFor(findings, "ct-compare").size(), 2u)
      << "public-length comparison must not fire";
}

TEST(Lwlint, CtCompareMemcmpFiresOutsideCrypto) {
  // memcmp-on-secret is banned everywhere; only ==/!= is crypto-scoped.
  const auto findings = LintFixture("ct_compare.cc", "src/zltp/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "ct-compare", 5));
  EXPECT_FALSE(HasFinding(findings, "ct-compare", 9))
      << "==/!= rule is scoped to src/crypto";
}

TEST(Lwlint, SecretIndexDirectAndNestedLookups) {
  const auto findings =
      LintFixture("secret_index.cc", "src/crypto/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "secret-index", 5)) << "kTable[key[0]]";
  EXPECT_TRUE(HasFinding(findings, "secret-index", 9)) << "nested kTable[s[3]]";
  EXPECT_EQ(FindingsFor(findings, "secret-index").size(), 2u)
      << "public loop index must not fire";
}

TEST(Lwlint, SecretIndexNestedRuleIsCryptoOnly) {
  const auto findings = LintFixture("secret_index.cc", "src/util/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "secret-index", 5))
      << "secret-named index is banned everywhere";
  EXPECT_FALSE(HasFinding(findings, "secret-index", 9))
      << "nested-lookup heuristic only applies under src/crypto";
}

TEST(Lwlint, SecretIndexWhitelistedFileIsExempt) {
  const auto findings =
      LintFixture("secret_index.cc", "src/crypto/aes128.cc");
  EXPECT_TRUE(FindingsFor(findings, "secret-index").empty())
      << "aes128.cc software S-box is whitelisted";
}

TEST(Lwlint, InsecureRandFiresOnRandAndSrand) {
  const auto findings =
      LintFixture("insecure_rand.cc", "src/util/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "insecure-rand", 5)) << "std::srand";
  EXPECT_TRUE(HasFinding(findings, "insecure-rand", 6)) << "std::rand";
  EXPECT_EQ(FindingsFor(findings, "insecure-rand").size(), 2u)
      << "rand() inside a string literal must not fire";
}

TEST(Lwlint, NakedNewAndDelete) {
  const auto findings = LintFixture("naked_new.cc", "src/util/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "naked-new", 9)) << "new Widget()";
  EXPECT_TRUE(HasFinding(findings, "naked-new", 13)) << "delete w";
  EXPECT_EQ(FindingsFor(findings, "naked-new").size(), 2u)
      << "make_unique and `= delete` must not fire";
}

TEST(Lwlint, UncheckedResultValueWithoutGuard) {
  const auto findings =
      LintFixture("unchecked_result.cc", "src/util/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "unchecked-result", 7));
  EXPECT_EQ(FindingsFor(findings, "unchecked-result").size(), 1u)
      << "value() guarded by a nearby ok() must not fire";
}

TEST(Lwlint, UncheckedReaderDerefDiscardAndGuards) {
  const auto findings =
      LintFixture("unchecked_reader.cc", "src/zltp/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "unchecked-reader", 5))
      << "*r.U32() dereferences the Result temporary";
  EXPECT_TRUE(HasFinding(findings, "unchecked-reader", 9))
      << "r.LengthPrefixed()->size() reads through the temporary";
  EXPECT_TRUE(HasFinding(findings, "unchecked-reader", 13))
      << "r.U16(); discards the read entirely";
  EXPECT_EQ(FindingsFor(findings, "unchecked-reader").size(), 3u)
      << "LW_ASSIGN_OR_RETURN and ok()-guarded uses must not fire";
}

TEST(Lwlint, VarTimeLoopEarlyExitAndSecretBound) {
  const auto findings =
      LintFixture("var_time_loop.cc", "src/crypto/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "var-time-loop", 5))
      << "early return inside a loop";
  EXPECT_TRUE(HasFinding(findings, "var-time-loop", 13))
      << "secret-dependent while bound";
  EXPECT_EQ(FindingsFor(findings, "var-time-loop").size(), 2u)
      << "fixed-bound accumulate loop must not fire";
}

TEST(Lwlint, MetricLabelFromRequestData) {
  const auto findings = LintFixture("metric_label.cc", "src/obs/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "metric-label-from-request", 23))
      << "name concatenated from a blob name";
  EXPECT_TRUE(HasFinding(findings, "metric-label-from-request", 28))
      << "name taken from a request payload";
  EXPECT_TRUE(HasFinding(findings, "metric-label-from-request", 33))
      << "keyword-derived label";
  EXPECT_EQ(FindingsFor(findings, "metric-label-from-request").size(), 3u)
      << "literal and kConstant names, and the allow hatch, must not fire";
}

TEST(Lwlint, ReceiveWithoutDeadlineOutsideNet) {
  const auto findings =
      LintFixture("receive_deadline.cc", "src/zltp/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "receive-without-deadline", 13))
      << "bare t.Receive()";
  EXPECT_TRUE(HasFinding(findings, "receive-without-deadline", 17))
      << "bare t->Receive()";
  EXPECT_EQ(FindingsFor(findings, "receive-without-deadline").size(), 2u)
      << "deadline-passing calls and the long-poll allow must not fire";
}

TEST(Lwlint, ReceiveWithoutDeadlineExemptInsideNet) {
  // src/net defines the convenience overload itself; the rule is for its
  // callers, not the transport layer.
  const auto findings =
      LintFixture("receive_deadline.cc", "src/net/fixture.cc");
  EXPECT_TRUE(FindingsFor(findings, "receive-without-deadline").empty());
}

TEST(Lwlint, RawSteadyClockInSchedulingCode) {
  const auto findings =
      LintFixture("raw_steady_clock.cc", "src/zltp/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "raw-steady-clock", 16))
      << "fully qualified steady_clock::now()";
  EXPECT_TRUE(HasFinding(findings, "raw-steady-clock", 23))
      << "steady_clock::now() after a using-declaration";
  EXPECT_EQ(FindingsFor(findings, "raw-steady-clock").size(), 2u)
      << "injected Clock reads, TraceNow(), and the allow hatch must not "
         "fire";
}

TEST(Lwlint, RawSteadyClockFiresInNetToo) {
  const auto findings =
      LintFixture("raw_steady_clock.cc", "src/net/fixture.cc");
  EXPECT_EQ(FindingsFor(findings, "raw-steady-clock").size(), 2u);
}

TEST(Lwlint, RawSteadyClockExemptOutsideSchedulingCode) {
  // src/obs owns the instrumentation clock (TraceNow) and bench/test code
  // measures real wall time on purpose; only scheduling code is held to
  // the injectable-clock discipline.
  const auto findings =
      LintFixture("raw_steady_clock.cc", "src/obs/fixture.cc");
  EXPECT_TRUE(FindingsFor(findings, "raw-steady-clock").empty());
}

TEST(Lwlint, BlockingInReactorOwnedCode) {
  const auto findings =
      LintFixture("blocking_in_reactor.cc", "src/net/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "blocking-in-reactor", 19))
      << "blocking accept()";
  EXPECT_TRUE(HasFinding(findings, "blocking-in-reactor", 23))
      << "recv without MSG_DONTWAIT";
  EXPECT_TRUE(HasFinding(findings, "blocking-in-reactor", 27))
      << "send without MSG_DONTWAIT";
  EXPECT_TRUE(HasFinding(findings, "blocking-in-reactor", 68))
      << "blocking connect() without EINPROGRESS handling";
  EXPECT_EQ(FindingsFor(findings, "blocking-in-reactor").size(), 4u)
      << "accept4, MSG_DONTWAIT calls, method calls, the EINPROGRESS "
         "non-blocking dial, and the allow hatches must not fire";
}

TEST(Lwlint, BlockingInReactorIsNetOnly) {
  // Thread-per-connection serving outside src/net (and bench/test client
  // code) blocks on purpose; only the reactor's territory is held to the
  // non-blocking discipline.
  const auto findings =
      LintFixture("blocking_in_reactor.cc", "src/zltp/fixture.cc");
  EXPECT_TRUE(FindingsFor(findings, "blocking-in-reactor").empty());
}

TEST(Lwlint, VarTimeLoopIsCryptoOnly) {
  const auto findings =
      LintFixture("var_time_loop.cc", "src/zltp/fixture.cc");
  EXPECT_TRUE(FindingsFor(findings, "var-time-loop").empty());
}

TEST(Lwlint, AllowSuppressesSameLineAndLineAbove) {
  const auto findings =
      LintFixture("allow_escape.cc", "src/util/fixture.cc");
  EXPECT_FALSE(HasFinding(findings, "insecure-rand", 5)) << "same-line allow";
  EXPECT_FALSE(HasFinding(findings, "insecure-rand", 10)) << "line-above allow";
  EXPECT_TRUE(HasFinding(findings, "insecure-rand", 14))
      << "allow(naked-new) must not suppress a different rule";
  EXPECT_TRUE(HasFinding(findings, "stale-allow", 14))
      << "the wrong-rule allow suppresses nothing, so it is itself stale";
  EXPECT_EQ(findings.size(), 2u);
}

TEST(Lwlint, TaintBranchOnSecretParamAndLoops) {
  const auto findings = LintFixture("taint_branch.cc", "src/zltp/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "secret-taint-branch", 5))
      << "if condition directly on an LW_SECRET parameter";
  EXPECT_TRUE(HasFinding(findings, "secret-taint-branch", 11))
      << "while bound on a secret";
  EXPECT_TRUE(HasFinding(findings, "secret-taint-branch", 20))
      << "middle clause of a classic for";
  EXPECT_EQ(findings.size(), 3u) << "the public branch must not fire";
}

TEST(Lwlint, TaintFlowsThroughAssignmentChains) {
  // The acceptance bar for the dataflow engine: a secret walked through two
  // local assignments still reaches branch and index sinks, while the same
  // shape with a ct:: sanitizer at the source stays clean.
  const auto findings = LintFixture("taint_chain.cc", "src/zltp/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "secret-taint-branch", 8))
      << "branch on a value two assignments away from the secret";
  EXPECT_TRUE(HasFinding(findings, "secret-taint-index", 9))
      << "subscript on a value two assignments away from the secret";
  EXPECT_EQ(findings.size(), 2u)
      << "the ct::EqMask-sanitized chain must not fire";
}

TEST(Lwlint, CtSanitizedPatternsAreCleanInCrypto) {
  // The sanctioned constant-time idioms, linted under src/crypto where
  // every heuristic is armed.
  EXPECT_TRUE(
      LintFixture("taint_sanitized.cc", "src/crypto/fixture.cc").empty());
}

TEST(Lwlint, DeclassifyAllowCutsPropagation) {
  const auto findings =
      LintFixture("taint_declassified.cc", "src/oram/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "secret-taint-branch", 17))
      << "without an allow the copy stays tainted";
  EXPECT_EQ(findings.size(), 1u)
      << "allow(secret-taint) at the assignment must stop propagation, and "
         "a used allow must not be reported as stale";
}

TEST(Lwlint, TaintIndexSubscriptAndPointerOffset) {
  const auto findings = LintFixture("taint_index.cc", "src/util/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "secret-taint-index", 8))
      << "direct subscript";
  EXPECT_TRUE(HasFinding(findings, "secret-taint-index", 13))
      << ".data() + secret pointer offset";
  EXPECT_EQ(findings.size(), 2u) << "the public index must not fire";
}

TEST(Lwlint, TaintCallVariableTimeCallees) {
  const auto findings = LintFixture("taint_call.cc", "src/pir/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "secret-taint-call", 9))
      << "memcmp on a secret buffer";
  EXPECT_TRUE(HasFinding(findings, "secret-taint-call", 14))
      << "unordered_map::count keyed by a secret";
  EXPECT_EQ(findings.size(), 2u) << "the public probe must not fire";
}

TEST(Lwlint, StaleAllowsAreReportedAndAcknowledgeable) {
  const auto findings = LintFixture("stale_allow.cc", "src/util/fixture.cc");
  EXPECT_TRUE(HasFinding(findings, "stale-allow", 6)) << "same-line stale";
  EXPECT_TRUE(HasFinding(findings, "stale-allow", 9)) << "own-line stale";
  EXPECT_EQ(findings.size(), 2u)
      << "allow(stale-allow) must acknowledge the third hatch";
}

TEST(Lwlint, TokenizerEdgeCasesAreInert) {
  // Raw strings full of banned spellings, digit separators and a macro with
  // a line continuation: all tokenizer territory, none may fire.
  EXPECT_TRUE(
      LintFixture("tokenizer_edge.cc", "src/crypto/fixture.cc").empty());
}

TEST(Lwlint, AllowfileSuppressesWholeFile) {
  const auto findings =
      LintFixture("allowfile_escape.cc", "src/util/fixture.cc");
  EXPECT_TRUE(findings.empty());
}

TEST(Lwlint, CommentsAndStringsAreIgnored) {
  const std::string source =
      "// new Widget() and rand() live in this comment\n"
      "/* delete p; memcmp(key, other_key, 16) */\n"
      "const char* s = \"new T; rand(); tag == expected\";\n";
  EXPECT_TRUE(LintSource("src/crypto/fixture.cc", source).empty());
}

TEST(Lwlint, AllowListAcceptsCommaSeparatedRules) {
  const std::string source =
      "// lwlint: allow(insecure-rand, naked-new)\n"
      "int* p = new int(rand());\n";
  EXPECT_TRUE(LintSource("src/util/fixture.cc", source).empty());
}

TEST(Lwlint, AllRulesHaveFixtureCoverage) {
  // Every registered rule fires at least once across the fixture set,
  // so adding a rule without a true-positive fixture fails here.
  std::vector<Finding> all;
  for (const char* name :
       {"ct_compare.cc", "secret_index.cc", "insecure_rand.cc",
        "naked_new.cc", "unchecked_result.cc", "unchecked_reader.cc",
        "var_time_loop.cc", "allow_escape.cc", "metric_label.cc",
        "receive_deadline.cc", "taint_branch.cc", "taint_chain.cc",
        "taint_index.cc", "taint_call.cc", "stale_allow.cc"}) {
    auto f = LintFixture(name, std::string("src/crypto/") + name);
    all.insert(all.end(), f.begin(), f.end());
  }
  {
    // raw-steady-clock is path-gated to scheduling code, so its fixture
    // lints under a src/zltp path rather than src/crypto.
    auto f = LintFixture("raw_steady_clock.cc", "src/zltp/raw_steady_clock.cc");
    all.insert(all.end(), f.begin(), f.end());
  }
  {
    // blocking-in-reactor is gated to src/net, the reactor's territory.
    auto f = LintFixture("blocking_in_reactor.cc",
                         "src/net/blocking_in_reactor.cc");
    all.insert(all.end(), f.begin(), f.end());
  }
  for (const std::string& rule : AllRules()) {
    EXPECT_FALSE(FindingsFor(all, rule).empty())
        << "no fixture exercises rule " << rule;
  }
}

TEST(Lwlint, FormatFindingMatchesCompilerStyle) {
  const Finding f{"src/crypto/aead.cc", 42, "ct-compare", "boom"};
  EXPECT_EQ(FormatFinding(f), "src/crypto/aead.cc:42: [ct-compare] boom");
}

TEST(Lwlint, LintPathsReportsMissingPath) {
  const auto findings = LintPaths({"definitely/not/a/path"});
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].rule, "io-error");
}

TEST(Lwlint, SourceTreeIsClean) {
  // The production guarantee, from inside the test suite: zero findings on
  // the real src/ tree (the lwlint.src ctest checks the same via the CLI).
  const auto findings = LintPaths({std::string(LWLINT_SOURCE_DIR) + "/src"});
  for (const Finding& f : findings) {
    ADD_FAILURE() << FormatFinding(f);
  }
}

}  // namespace
}  // namespace lw::lint
